"""Conservative time-window sharding: N child simulators, one logical clock.

A city-scale run does not fit one event heap: E7 already shows the heap
high-water mark and per-event dispatch cost dominating at a few thousand
UEs, and the paper's scaling claim is about 10^5-10^6 users. The classic
answer (Chandy/Misra/Bryant conservative synchronisation) applies cleanly
here because the topology gives us real lookahead: every path between two
cell sites crosses a backhaul link with non-zero propagation latency.

The decomposition:

* each **shard** is an ordinary :class:`~repro.simcore.simulator.Simulator`
  owning a subset of the cells (radio arenas, eNB relays, local core
  stubs, UEs, fluid background load);
* every cross-shard interaction goes through a **boundary proxy**
  (:mod:`repro.net.shardlink`) that buffers egress instead of scheduling
  into the remote heap;
* the façade advances all shards in lockstep windows of length
  ``L = min(latency of all cross-shard couplings)`` and exchanges the
  buffered records at each barrier.

Why this is safe: a message sent during window ``[T, T+L)`` was sent at
``t >= T`` and crosses a coupling with latency ``>= L``, so it is due at
``t + L >= T + L`` — never inside a window that has already run. Each
window is *exclusive* of its right edge (events at exactly ``T+L`` run in
the next window), which makes the union of windows identical to one
monolithic run of the same event set.

Determinism: all shards share the root seed, and named RNG streams hash
the stream *name* into the seed derivation, so a component draws the same
sequence no matter which shard hosts it. Cross-shard records are injected
sorted by ``(deliver_at, sent_at, src_shard, seq)``; with one shard the
proxies short-circuit to plain in-heap scheduling, so ``shards=1`` *is*
the monolithic run.
"""

from __future__ import annotations

import math
import time
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.simcore.simulator import Simulator

__all__ = [
    "ShardBoundary",
    "ShardHost",
    "ShardedSimulator",
    "ZeroLookaheadError",
]

# A cross-shard record: (deliver_at, sent_at, src_shard, seq, dst_shard,
# endpoint_key, payload). The first four fields are the deterministic
# injection sort key; ``payload`` is whatever the endpoint pair agreed on.
Record = Tuple[float, float, int, int, int, str, Any]

_INJECT_KEY = lambda r: (r[0], r[1], r[2], r[3])  # noqa: E731


class ZeroLookaheadError(ValueError):
    """A cross-shard coupling has zero (or negative) latency.

    Conservative windows need ``lookahead > 0``: with a zero-latency
    coupling a message sent at time ``t`` is due at ``t`` in another
    shard, so no window of positive length is safe to run. Either give
    the link/channel a real propagation delay or co-locate both ends in
    one shard (co-located couplings are exempt — they schedule directly
    into the local heap and never constrain the window).
    """


class ShardBoundary:
    """One shard's face to the rest of the federation.

    Proxies register their ingress **endpoints** here (keyed by a
    globally unique string), declare their outgoing **couplings** (name,
    destination shard, latency — the inputs to the lookahead
    computation), and **buffer** egress records. The façade drains the
    buffer at each window barrier and injects the records into the
    destination shard's boundary.

    When the destination of a record is this same shard (``shards=1``,
    or a proxy pair that happens to be co-located), :meth:`buffer`
    short-circuits to a plain ``sim.post_at`` so the event lands in the
    local heap exactly as a non-proxy component would have scheduled it.
    """

    __slots__ = ("sim", "shard_index", "n_shards", "endpoints", "couplings",
                 "sent", "received", "_outbox", "_seq")

    def __init__(self, sim: Simulator, shard_index: int, n_shards: int) -> None:
        if not 0 <= shard_index < n_shards:
            raise ValueError(f"shard index {shard_index} outside 0..{n_shards - 1}")
        self.sim = sim
        self.shard_index = shard_index
        self.n_shards = n_shards
        self.endpoints: Dict[str, Any] = {}
        self.couplings: List[Tuple[str, int, float]] = []
        self.sent = 0
        self.received = 0
        self._outbox: List[Record] = []
        self._seq = 0

    def register(self, key: str, endpoint: Any) -> None:
        """Register an ingress endpoint (must expose ``_deliver_remote``)."""
        if key in self.endpoints:
            raise ValueError(f"duplicate boundary endpoint key {key!r}")
        self.endpoints[key] = endpoint

    def couple(self, name: str, dst_shard: int, latency_s: float) -> None:
        """Declare an outgoing cross-shard coupling for lookahead purposes.

        Co-located couplings (``dst_shard == shard_index``) are ignored:
        they never leave the local heap and must not shrink the window.
        """
        if not 0 <= dst_shard < self.n_shards:
            raise ValueError(f"destination shard {dst_shard} outside 0..{self.n_shards - 1}")
        if dst_shard != self.shard_index:
            self.couplings.append((name, dst_shard, float(latency_s)))

    def buffer(self, key: str, dst_shard: int, deliver_at: float,
               sent_at: float, payload: Any) -> None:
        """Hand a payload to the boundary for delivery in ``dst_shard``."""
        if dst_shard == self.shard_index:
            endpoint = self.endpoints[key]
            self.sim.post_at(deliver_at, endpoint._deliver_remote, payload, sent_at)
            return
        self._seq += 1
        self.sent += 1
        self._outbox.append(
            (deliver_at, sent_at, self.shard_index, self._seq, dst_shard, key, payload))

    def drain(self) -> List[Record]:
        """Take (and clear) everything buffered since the last drain."""
        records, self._outbox = self._outbox, []
        return records


class ShardHost:
    """A built shard: the child simulator, its boundary, and its harvest.

    The builder callable handed to :class:`ShardedSimulator` returns one
    of these per shard spec. ``harvest`` (optional) is called once after
    the horizon is reached and its return value becomes this shard's
    entry in the façade's result list — it runs *inside* the shard's
    process in fork mode, so it should return plain picklable data.
    """

    __slots__ = ("sim", "boundary", "windows", "_harvest")

    def __init__(self, sim: Simulator, boundary: ShardBoundary,
                 harvest: Optional[Callable[["ShardHost"], Any]] = None) -> None:
        if boundary.sim is not sim:
            raise ValueError("boundary belongs to a different simulator")
        self.sim = sim
        self.boundary = boundary
        self.windows = 0
        self._harvest = harvest

    def inject(self, records: Sequence[Record]) -> None:
        """Schedule cross-shard records into the local heap.

        Every record must be due at or after the local clock; an earlier
        deadline means some coupling declared more lookahead than the
        latency it actually applies, which would silently reorder
        history — fail loudly instead.
        """
        sim = self.sim
        endpoints = self.boundary.endpoints
        now = sim.now
        for deliver_at, sent_at, src_shard, _seq, _dst, key, payload in records:
            if deliver_at < now:
                raise RuntimeError(
                    f"shard {self.boundary.shard_index}: record from shard "
                    f"{src_shard} for {key!r} due at {deliver_at:.9f} is in the "
                    f"past (now={now:.9f}); a coupling overstated its lookahead")
            sim.post_at(deliver_at, endpoints[key]._deliver_remote, payload, sent_at)
        self.boundary.received += len(records)

    def advance(self, until: float, final: bool) -> None:
        """Run the local heap through one window ending at ``until``.

        Non-final windows are half-open ``[prev, until)``: events at
        exactly ``until`` belong to the next window (they may race with
        cross-shard arrivals due at ``until``). The final window is
        inclusive so the run ends having executed everything up to and
        including the horizon.
        """
        if final:
            self.sim.run(until=until)
        else:
            self.sim.run(until=math.nextafter(until, -math.inf))
            self.sim.now = until
        self.windows += 1

    def harvest(self) -> Any:
        return self._harvest(self) if self._harvest is not None else None

    def stats(self) -> Dict[str, Any]:
        sim = self.sim
        return {
            "shard": self.boundary.shard_index,
            "events": sim.events_executed,
            "heap_hwm": sim.heap_high_water,
            "windows": self.windows,
            "sent": self.boundary.sent,
            "received": self.boundary.received,
        }


class _SerialShards:
    """In-process drive: shards advance round-robin inside one process."""

    def __init__(self, builder: Callable[[Any], ShardHost], specs: Sequence[Any]) -> None:
        self.hosts = [builder(spec) for spec in specs]
        for index, host in enumerate(self.hosts):
            if host.boundary.shard_index != index:
                raise ValueError(
                    f"builder returned shard {host.boundary.shard_index} for spec {index}")

    def couplings(self) -> List[List[Tuple[str, int, float]]]:
        return [list(host.boundary.couplings) for host in self.hosts]

    def start_time(self) -> float:
        return max(host.sim.now for host in self.hosts)

    def step(self, until: float, final: bool,
             injections: Sequence[Sequence[Record]],
             ) -> Tuple[List[List[Record]], List[float]]:
        egress: List[List[Record]] = []
        exec_s: List[float] = []
        for host, records in zip(self.hosts, injections):
            t0 = time.perf_counter()
            host.inject(records)
            host.advance(until, final)
            exec_s.append(time.perf_counter() - t0)
            egress.append(host.boundary.drain())
        return egress, exec_s

    def harvest(self) -> Tuple[List[Any], List[Dict[str, Any]]]:
        return ([host.harvest() for host in self.hosts],
                [host.stats() for host in self.hosts])

    def close(self) -> None:  # symmetric with the fork driver
        pass


class ShardedSimulator:
    """Façade that runs one scenario as N lockstep child simulators.

    Parameters:
        builder: picklable callable ``spec -> ShardHost``. In fork mode
            it runs inside each worker process, so it must be a
            module-level function and the specs must be picklable.
        specs: one spec per shard, in shard-index order. The builder
            must return a host whose boundary carries the matching
            shard index.
        mode: ``"serial"`` (all shards in-process, round-robin) or
            ``"fork"`` (one forked worker per shard, window barriers
            over pipes). Results are identical; fork buys wall-clock
            on multi-core boxes. Inside an existing worker process the
            façade silently degrades to serial.
        window_s: override the window length; must not exceed the
            computed lookahead. Mostly for tests.
        label: stamped into each per-shard stats dict (telemetry).
    """

    def __init__(self, builder: Callable[[Any], ShardHost], specs: Sequence[Any],
                 mode: str = "serial", window_s: Optional[float] = None,
                 label: str = "") -> None:
        if not specs:
            raise ValueError("need at least one shard spec")
        if mode not in ("serial", "fork"):
            raise ValueError(f"unknown shard drive mode {mode!r}")
        self._builder = builder
        self._specs = list(specs)
        self._mode = mode
        self._window_s = window_s
        self._label = label
        self.windows = 0
        self.lookahead_s: Optional[float] = None
        self.undelivered: List[Record] = []
        self.stats: List[Dict[str, Any]] = []

    @property
    def n_shards(self) -> int:
        return len(self._specs)

    @staticmethod
    def _lookahead(couplings: Sequence[Sequence[Tuple[str, int, float]]],
                   ) -> Optional[float]:
        """Min latency over all cross-shard couplings; None when there are none."""
        lookahead: Optional[float] = None
        for per_shard in couplings:
            for name, _dst, latency_s in per_shard:
                if latency_s <= 0.0:
                    raise ZeroLookaheadError(
                        f"cross-shard coupling {name!r} has latency "
                        f"{latency_s!r} s; conservative sharding needs every "
                        f"cross-shard link latency > 0 (see DESIGN.md)")
                if lookahead is None or latency_s < lookahead:
                    lookahead = latency_s
        return lookahead

    def run(self, until: float) -> List[Any]:
        """Advance every shard to ``until`` and return per-shard harvests."""
        from repro.runner.parallel import in_worker

        n = self.n_shards
        if self._mode == "fork" and n > 1 and not in_worker():
            from repro.runner.shardpool import ShardWorkerPool
            driver: Any = ShardWorkerPool(self._builder, self._specs)
        else:
            driver = _SerialShards(self._builder, self._specs)
        try:
            return self._drive(driver, until)
        finally:
            driver.close()

    def _drive(self, driver: Any, until: float) -> List[Any]:
        n = self.n_shards
        lookahead = self._lookahead(driver.couplings())
        self.lookahead_s = lookahead
        window = self._window_s
        if window is not None:
            if window <= 0.0:
                raise ValueError("window_s must be > 0")
            if lookahead is not None and window > lookahead:
                raise ValueError(
                    f"window_s={window!r} exceeds lookahead {lookahead!r}")
        else:
            window = lookahead  # None => no cross couplings => one window

        t = driver.start_time()
        horizon = float(until)
        if horizon < t:
            raise ValueError(f"horizon {horizon} is before shard clocks ({t})")
        pending: List[List[Record]] = [[] for _ in range(n)]
        exec_s = [0.0] * n
        barrier_wait_s = [0.0] * n
        self.windows = 0
        self.undelivered = []

        while True:
            if t < horizon:
                nxt = horizon if window is None else min(horizon, t + window)
            elif any(pending):
                # Horizon reached but cross-shard records are still due at
                # or before it (sent during the final window). Keep
                # exchanging at the horizon until the federation is quiet;
                # each round-trip adds >= lookahead of *future* time, so
                # anything re-emitted lands beyond the horizon and the
                # loop terminates.
                nxt = horizon
            else:
                break
            final = nxt >= horizon
            injections = pending
            pending = [[] for _ in range(n)]
            for records in injections:
                records.sort(key=_INJECT_KEY)
            egress, step_exec = driver.step(nxt, final, injections)
            self.windows += 1
            slowest = max(step_exec) if step_exec else 0.0
            for index, spent in enumerate(step_exec):
                exec_s[index] += spent
                barrier_wait_s[index] += slowest - spent
            for shard_records in egress:
                for record in shard_records:
                    if record[0] <= horizon:
                        pending[record[4]].append(record)
                    else:
                        # Due after the horizon: the monolithic run would
                        # leave this delivery queued and unexecuted too.
                        self.undelivered.append(record)
            t = nxt

        results, stats = driver.harvest()
        for index, entry in enumerate(stats):
            entry["exec_s"] = exec_s[index]
            entry["barrier_wait_s"] = barrier_wait_s[index]
            entry["windows_driven"] = self.windows
            if self._label:
                entry["label"] = self._label
        self.stats = stats

        from repro.telemetry.hub import HUB
        HUB.note_shards(stats)
        return results
