"""E9 — §4.3 / ref [28]: sizing X2 bandwidth, and minimizing it.

"The X2 interface is relatively low bandwidth, but when backhaul
constrained the level of coordination can be minimized."

We run the dLTE X2 vocabulary at different coordination levels (load-
report periods) over a full peer mesh and measure bytes/second per AP,
then express each level as a fraction of progressively thinner backhaul
links. The claim reproduced: even aggressive (100 ms) reporting is a few
kbit/s per peer — negligible beside user traffic — and the minimal mode
fits comfortably in a 64 kbps trickle.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.coordination.x2 import LoadInformation, X2Endpoint
from repro.metrics.tables import ResultTable
from repro.simcore.simulator import Simulator

#: coordination levels: label -> load-report period (s)
LEVELS: List[Tuple[str, float]] = [
    ("aggressive (100 ms)", 0.100),
    ("standard (1 s)", 1.0),
    ("minimal (10 s)", 10.0),
]

BACKHAUL_BUDGETS_BPS = [64e3, 256e3, 1e6]


def _reporting_run(n_peers: int, period_s: float, duration_s: float,
                   seed: int) -> float:
    """Bytes/s of X2 traffic *sent by one AP* at a reporting period."""
    sim = Simulator(seed)
    endpoints = [X2Endpoint(sim, f"ap{i}") for i in range(n_peers)]
    for i in range(n_peers):
        for j in range(i + 1, n_peers):
            endpoints[i].connect_peer(endpoints[j], one_way_delay_s=0.02)

    def reporter(ep: X2Endpoint):
        while True:
            ep.broadcast(LoadInformation(sender_ap=ep.ap_id,
                                         prb_utilization=0.5,
                                         attached_ues=10))
            yield sim.timeout(period_s)

    for ep in endpoints:
        sim.process(reporter(ep), name=f"report:{ep.ap_id}")
    sim.run(until=duration_s)
    return endpoints[0].bytes_sent / duration_s


def run(peer_counts: Optional[List[int]] = None,
        duration_s: float = 60.0, seed: int = 4) -> ResultTable:
    """X2 bytes/s per AP by peer count and coordination level."""
    counts = peer_counts or [2, 4, 8, 16]
    table = ResultTable(
        "E9: X2 coordination bandwidth per AP (bytes/s)",
        ["n_peers"] + [label for label, _p in LEVELS])
    for n_peers in counts:
        row: Dict[str, object] = {"n_peers": n_peers}
        for label, period in LEVELS:
            row[label] = _reporting_run(n_peers, period, duration_s, seed)
        table.add_row(**row)
    return table


def backhaul_fit(n_peers: int = 8, duration_s: float = 60.0,
                 seed: int = 4) -> ResultTable:
    """Fraction of thin backhaul each coordination level consumes."""
    table = ResultTable(
        f"E9: coordination share of constrained backhaul ({n_peers} peers)",
        ["level", "x2_bps"] +
        [f"of_{int(b/1e3)}kbps_pct" for b in BACKHAUL_BUDGETS_BPS])
    for label, period in LEVELS:
        rate_Bps = _reporting_run(n_peers, period, duration_s, seed)
        rate_bps = rate_Bps * 8.0
        row: Dict[str, object] = {"level": label, "x2_bps": rate_bps}
        for budget in BACKHAUL_BUDGETS_BPS:
            row[f"of_{int(budget/1e3)}kbps_pct"] = 100.0 * rate_bps / budget
        table.add_row(**row)
    return table


def handover_burst_bytes() -> float:
    """One X2 handover's worth of signaling (request + ack), bytes."""
    from repro.coordination.x2 import HandoverRequest, HandoverRequestAck

    return (HandoverRequest(sender_ap="a").size_bytes
            + HandoverRequestAck(sender_ap="b").size_bytes)
