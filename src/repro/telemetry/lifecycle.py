"""Runner-lifecycle tracing: where *wall-clock* time goes in ``--jobs N``.

The simulator's own telemetry observes the simulated world; this module
observes the real-time machinery around it — the parallel path that the
bench baseline flagged as inverted (``--jobs 4`` at 0.74x). Each
parallel map records, per task: queue wait, execution, result
pickle/serialize size and time, ship-home latency, and hub-merge time;
plus per-map worker fork/spawn cost. From those, :meth:`summary`
decomposes measured parallel wall time into fork vs IPC vs load
imbalance vs idle — the numbers printed on the ``--profile`` line and
emitted as ``"type": "runner"`` records into ``--trace-out`` JSONL.

All measurements are wall-clock (``time.monotonic``, comparable across
forked processes on Linux) and purely observational: recording happens
only while a hub run is active, and the serial path records nothing —
which is why runner records are, by construction, the one telemetry
family that differs between serial and parallel runs. Exports keep them
under the dedicated ``runner`` source tag so byte-identity checks can
exclude exactly this family.

The ``runner.`` metric family (see OBSERVABILITY.md):

- ``runner.task.queue_wait_s`` / ``exec_s`` / ``serialize_s`` /
  ``ship_s`` / ``merge_s`` — histograms, one sample per task;
- ``runner.task.serialize_bytes`` — counter, total pickled result bytes;
- ``runner.tasks`` / ``runner.maps`` — counters;
- ``runner.map.fork_s`` — histogram, pool creation cost per map.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional

from repro.telemetry.registry import MetricsRegistry

__all__ = ["MapLifecycle", "RunnerLifecycle", "TaskLifecycle"]


class TaskLifecycle:
    """Wall-clock phase breakdown of one parallel task."""

    __slots__ = ("slot", "label", "pid", "queue_wait_s", "exec_s",
                 "serialize_s", "serialize_bytes", "ship_s", "merge_s")

    def __init__(self, slot: int, label: str, pid: int,
                 queue_wait_s: float, exec_s: float, serialize_s: float,
                 serialize_bytes: int, ship_s: float,
                 merge_s: float = 0.0) -> None:
        self.slot = slot
        self.label = label
        self.pid = pid
        self.queue_wait_s = queue_wait_s
        self.exec_s = exec_s
        self.serialize_s = serialize_s
        self.serialize_bytes = serialize_bytes
        self.ship_s = ship_s
        self.merge_s = merge_s

    @property
    def busy_s(self) -> float:
        """Worker-side seconds this task kept its worker occupied."""
        return self.exec_s + self.serialize_s

    def to_dict(self, map_index: int) -> Dict[str, Any]:
        return {"type": "runner", "record": "task", "map": map_index,
                "slot": self.slot, "label": self.label, "pid": self.pid,
                "queue_wait_s": self.queue_wait_s, "exec_s": self.exec_s,
                "serialize_s": self.serialize_s,
                "serialize_bytes": self.serialize_bytes,
                "ship_s": self.ship_s, "merge_s": self.merge_s}


class MapLifecycle:
    """One parallel map: fork cost, wall time, and its tasks."""

    __slots__ = ("mode", "jobs", "fork_s", "wall_s", "tasks", "started_at")

    def __init__(self, mode: str, jobs: int) -> None:
        self.mode = mode          # "pool" | "supervised"
        self.jobs = jobs
        self.fork_s = 0.0
        self.wall_s = 0.0
        self.tasks: List[TaskLifecycle] = []
        self.started_at = time.monotonic()

    def finish(self) -> None:
        """Close the map's wall-clock window (idempotent enough: last wins)."""
        self.wall_s = time.monotonic() - self.started_at

    # -- per-map decomposition --------------------------------------------

    def busy_by_pid(self) -> Dict[int, float]:
        per: Dict[int, float] = {}
        for task in self.tasks:
            per[task.pid] = per.get(task.pid, 0.0) + task.busy_s
        return per

    @property
    def busy_s(self) -> float:
        return sum(task.busy_s for task in self.tasks)

    @property
    def imbalance_s(self) -> float:
        """Busiest-worker seconds above the mean — pure load skew."""
        per = self.busy_by_pid()
        if len(per) < 2:
            return 0.0
        return max(per.values()) - sum(per.values()) / len(per)

    @property
    def idle_s(self) -> float:
        """Worker-seconds not spent executing or pickling results."""
        span = max(0.0, self.wall_s - self.fork_s)
        return max(0.0, self.jobs * span - self.busy_s)

    def to_dict(self, map_index: int) -> Dict[str, Any]:
        return {"type": "runner", "record": "map", "map": map_index,
                "mode": self.mode, "jobs": self.jobs, "fork_s": self.fork_s,
                "wall_s": self.wall_s, "tasks": len(self.tasks),
                "imbalance_s": self.imbalance_s, "idle_s": self.idle_s}


class RunnerLifecycle:
    """Per-run accumulator of parallel-map lifecycles (owned by the hub)."""

    def __init__(self) -> None:
        self.maps: List[MapLifecycle] = []
        self.registry = MetricsRegistry()

    def begin_map(self, mode: str, jobs: int) -> MapLifecycle:
        """Open a map record; call :meth:`finish_map` when it completes."""
        record = MapLifecycle(mode, jobs)
        self.maps.append(record)
        return record

    def record_task(self, record: MapLifecycle, slot: int, label: str,
                    pid: int, queue_wait_s: float, exec_s: float,
                    serialize_s: float, serialize_bytes: int,
                    ship_s: float) -> TaskLifecycle:
        """Record one completed task (merge time is added later)."""
        task = TaskLifecycle(slot, label, pid, queue_wait_s, exec_s,
                             serialize_s, serialize_bytes, ship_s)
        record.tasks.append(task)
        return task

    def finish_map(self, record: MapLifecycle) -> None:
        """Close a map and mirror its numbers into the runner. metrics."""
        record.finish()
        reg = self.registry
        reg.counter("runner.maps").inc()
        reg.histogram("runner.map.fork_s", mode=record.mode) \
            .observe(record.fork_s)
        for task in record.tasks:
            reg.counter("runner.tasks").inc()
            reg.histogram("runner.task.queue_wait_s").observe(task.queue_wait_s)
            reg.histogram("runner.task.exec_s").observe(task.exec_s)
            reg.histogram("runner.task.serialize_s").observe(task.serialize_s)
            reg.counter("runner.task.serialize_bytes") \
                .inc(task.serialize_bytes)
            reg.histogram("runner.task.ship_s").observe(task.ship_s)
            reg.histogram("runner.task.merge_s").observe(task.merge_s)

    # -- export ------------------------------------------------------------

    def records(self) -> List[Dict[str, Any]]:
        """JSONL-ready dicts: one per map, then one per task."""
        out: List[Dict[str, Any]] = []
        for index, record in enumerate(self.maps):
            out.append(record.to_dict(index))
            out.extend(task.to_dict(index) for task in record.tasks)
        return out

    def summary(self) -> Optional[Dict[str, float]]:
        """Aggregate decomposition across every map (None if no maps)."""
        if not self.maps:
            return None
        tasks = [task for record in self.maps for task in record.tasks]
        jobs = max(record.jobs for record in self.maps)
        wall_s = sum(record.wall_s for record in self.maps)
        fork_s = sum(record.fork_s for record in self.maps)
        serialize_s = sum(task.serialize_s for task in tasks)
        ship_s = sum(task.ship_s for task in tasks)
        merge_s = sum(task.merge_s for task in tasks)
        idle_s = sum(record.idle_s for record in self.maps)
        busy_s = sum(record.busy_s for record in self.maps)
        # per-map accounting identity: wall ~= fork + (busy + idle)/jobs;
        # coverage reports how much of the measured wall the recorded
        # phases explain (clock skew / untracked parent work shows up as
        # a shortfall)
        covered = sum(r.fork_s + (r.busy_s + r.idle_s) / r.jobs
                      for r in self.maps)
        return {
            "maps": len(self.maps),
            "tasks": len(tasks),
            "jobs": jobs,
            "wall_s": wall_s,
            "fork_s": fork_s,
            "queue_wait_s": sum(task.queue_wait_s for task in tasks),
            "exec_s": sum(task.exec_s for task in tasks),
            "serialize_s": serialize_s,
            "serialize_bytes": sum(task.serialize_bytes for task in tasks),
            "ship_s": ship_s,
            "merge_s": merge_s,
            "ipc_s": serialize_s + ship_s + merge_s,
            "busy_s": busy_s,
            "idle_s": idle_s,
            "imbalance_s": sum(record.imbalance_s for record in self.maps),
            "coverage": covered / wall_s if wall_s > 0 else 1.0,
        }

    def summary_line(self) -> str:
        """One human line for the ``--profile`` output."""
        s = self.summary()
        if s is None:
            return "no parallel maps"
        kib = s["serialize_bytes"] / 1024.0
        return (f"{s['maps']} map(s), {s['tasks']} task(s) over "
                f"{s['jobs']} worker(s); wall {s['wall_s']:.3f} s: "
                f"fork {s['fork_s']:.3f} s, exec {s['exec_s']:.3f} s, "
                f"ipc {s['ipc_s']:.3f} s "
                f"(pickle {s['serialize_s']:.3f} s/{kib:.0f} KiB, "
                f"ship {s['ship_s']:.3f} s, merge {s['merge_s']:.3f} s), "
                f"imbalance {s['imbalance_s']:.3f} s, "
                f"idle {s['idle_s']:.3f} s, "
                f"queue-wait {s['queue_wait_s']:.3f} s; "
                f"coverage {s['coverage']:.0%}")
