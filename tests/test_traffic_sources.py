"""Heavy-traffic generators: seed reproducibility and stream isolation.

E18's SLA tables are only trustworthy if the workload is a pure
function of ``(seed, config)``: same seed -> byte-identical emit
schedule, different source names -> independent RNG streams, and the
diurnal curve draws no randomness at all. These tests pin exactly that
contract for the PR-9 sources (Pareto flows, video segments, VoIP
talk-spurts) and the ``APP_PROFILES`` factory.
"""

import numpy as np
import pytest

from repro.simcore.simulator import Simulator
from repro.workloads.traffic import (APP_PROFILES, DiurnalCurve,
                                     ParetoFlowSource, VideoStreamSource,
                                     VoipSource, make_app_source)


def _schedule(build, seed=7, until=50.0):
    """Run a freshly built source and return its (time, bytes) emits."""
    sim = Simulator(seed=seed)
    emits = []
    source = build(sim, lambda n: emits.append((sim.now, n)))
    source.start()
    sim.run(until=until)
    return emits


# -- seed reproducibility --------------------------------------------------

@pytest.mark.parametrize("build", [
    lambda sim, emit: ParetoFlowSource(sim, emit, rate_per_s=2.0,
                                       name="web"),
    lambda sim, emit: VoipSource(sim, emit, name="voip"),
    lambda sim, emit: VideoStreamSource(sim, emit, name="video"),
    lambda sim, emit: make_app_source("web", sim, emit, name="web",
                                      rate_per_s=3.0),
], ids=["pareto", "voip", "video", "profile"])
def test_same_seed_same_emit_schedule(build):
    first = _schedule(build, seed=7)
    assert first                       # the source actually emitted
    assert first == _schedule(build, seed=7)


def test_different_seeds_differ_for_random_sources():
    build = lambda sim, emit: ParetoFlowSource(sim, emit, rate_per_s=2.0,
                                               name="web")
    assert _schedule(build, seed=7) != _schedule(build, seed=8)


def test_distinct_source_names_get_independent_streams():
    # two sources with different names in ONE sim must not share draws:
    # removing one must not perturb the other's schedule
    def solo(sim, emit):
        return ParetoFlowSource(sim, emit, rate_per_s=2.0, name="web-a")

    def paired(sim, emit):
        noise = ParetoFlowSource(sim, lambda n: None, rate_per_s=5.0,
                                 name="web-b")
        noise.start()
        return ParetoFlowSource(sim, emit, rate_per_s=2.0, name="web-a")

    assert _schedule(solo, seed=7) == _schedule(paired, seed=7)


def test_same_name_means_same_stream():
    # the stream key is the *name*: identically named sources in two
    # runs replay the same draws even across distinct source objects
    emits_a = _schedule(lambda sim, emit: ParetoFlowSource(
        sim, emit, rate_per_s=2.0, name="shared"), seed=3)
    emits_b = _schedule(lambda sim, emit: ParetoFlowSource(
        sim, emit, rate_per_s=2.0, mean_bytes=200_000, name="shared"), seed=3)
    # same arrival times (same exponential draws) regardless of object
    assert [t for t, _ in emits_a] == [t for t, _ in emits_b]


# -- diurnal curve ---------------------------------------------------------

def test_diurnal_curve_is_pure_arithmetic():
    curve = DiurnalCurve(period_s=60.0, trough=0.2, peak_at=30.0)
    assert curve.factor(30.0) == pytest.approx(1.0)
    assert curve.factor(0.0) == pytest.approx(0.2)
    assert curve.factor(60.0) == pytest.approx(0.2)
    # bounded everywhere, periodic, and deterministic (no RNG to vary)
    times = np.linspace(0.0, 180.0, 361)
    values = [curve.factor(t) for t in times]
    assert min(values) >= 0.2 - 1e-12
    assert max(values) <= 1.0 + 1e-12
    assert values == [curve.factor(t) for t in times]


def test_diurnal_curve_validates():
    with pytest.raises(ValueError):
        DiurnalCurve(period_s=0.0)
    with pytest.raises(ValueError):
        DiurnalCurve(trough=0.0)
    with pytest.raises(ValueError):
        DiurnalCurve(trough=1.5)


def test_diurnal_thinning_reduces_arrivals_deterministically():
    def build(trough):
        curve = DiurnalCurve(period_s=1e9, trough=trough, peak_at=1e9 / 2)
        return lambda sim, emit: ParetoFlowSource(
            sim, emit, rate_per_s=5.0, diurnal=curve, name="web")

    # sitting at the trough of a (practically frozen) curve, thinning
    # keeps ~trough of the arrivals; the thinned-out ones are counted
    full = _schedule(build(1.0), seed=7, until=100.0)
    thin = _schedule(build(0.2), seed=7, until=100.0)
    assert 0 < len(thin) < len(full)
    # identical seeds: the surviving arrivals are a deterministic set
    assert thin == _schedule(build(0.2), seed=7, until=100.0)


# -- distribution shape and validation -------------------------------------

def test_pareto_sizes_are_heavy_tailed_with_target_mean():
    emits = _schedule(lambda sim, emit: ParetoFlowSource(
        sim, emit, rate_per_s=50.0, mean_bytes=100_000, alpha=1.3,
        name="web"), seed=1, until=200.0)
    sizes = np.array([n for _, n in emits], dtype=float)
    assert len(sizes) > 2000
    # heavy tail: the top 10% of flows carry most of the bytes
    top = np.sort(sizes)[-len(sizes) // 10:]
    assert top.sum() > 0.5 * sizes.sum()
    # mean within a loose factor of the target (alpha=1.3 converges slowly)
    assert 30_000 < sizes.mean() < 500_000
    assert sizes.max() <= 50_000_000   # the cap holds


def test_pareto_validation():
    sim = Simulator(seed=0)
    with pytest.raises(ValueError):
        ParetoFlowSource(sim, lambda n: None, rate_per_s=0.0)
    with pytest.raises(ValueError):
        ParetoFlowSource(sim, lambda n: None, rate_per_s=1.0, alpha=1.0)
    with pytest.raises(ValueError):
        ParetoFlowSource(sim, lambda n: None, rate_per_s=1.0,
                         mean_bytes=1000, max_bytes=500)


def test_voip_alternates_talk_and_silence():
    emits = _schedule(lambda sim, emit: VoipSource(
        sim, emit, frame_bytes=200, frame_interval_s=0.02, name="voip"),
        seed=5, until=120.0)
    assert all(n == 200 for _, n in emits)
    gaps = np.diff([t for t, _ in emits])
    # CBR frames inside a spurt, long silences between spurts
    assert (np.abs(gaps - 0.02) < 1e-9).sum() > 100
    assert (gaps > 0.5).sum() >= 3


def test_voip_validation():
    sim = Simulator(seed=0)
    with pytest.raises(ValueError):
        VoipSource(sim, lambda n: None, frame_bytes=0)
    with pytest.raises(ValueError):
        VoipSource(sim, lambda n: None, mean_silence_s=0.0)


def test_video_emits_exact_cbr_segments():
    emits = _schedule(lambda sim, emit: VideoStreamSource(
        sim, emit, bitrate_bps=1.0e6, segment_s=2.0, name="video"),
        seed=0, until=10.0)
    # one segment every 2 s from t=0, of bitrate*segment/8 bytes each
    assert [t for t, _ in emits] == [0.0, 2.0, 4.0, 6.0, 8.0, 10.0]
    assert all(n == 250_000 for _, n in emits)


def test_video_validation():
    sim = Simulator(seed=0)
    with pytest.raises(ValueError):
        VideoStreamSource(sim, lambda n: None, bitrate_bps=0.0)


# -- app profile factory ---------------------------------------------------

def test_app_profiles_cover_the_three_classes():
    assert set(APP_PROFILES) == {"web", "video", "voip"}


def test_make_app_source_applies_overrides():
    sim = Simulator(seed=0)
    source = make_app_source("web", sim, lambda n: None, name="ue1-web",
                             rate_per_s=9.0)
    assert isinstance(source, ParetoFlowSource)
    assert source.rate_per_s == 9.0
    assert source.name == "ue1-web"
    # untouched profile defaults survive
    assert source.scale_bytes == pytest.approx(120_000 * 0.3 / 1.3)


def test_make_app_source_rejects_unknown_app():
    sim = Simulator(seed=0)
    with pytest.raises(ValueError):
        make_app_source("gaming", sim, lambda n: None, name="x")
