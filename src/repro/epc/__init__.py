"""The Evolved Packet Core — full and stubbed.

The paper's architectural move (§4.1) is to take the four EPC functions a
client requires — HSS, MME, S-GW, P-GW — and collapse them into a "local
core stub" at every access point, paring away mobility management,
inter-component networking, and billing. To measure what that buys, we
need both shapes:

* :class:`CentralizedEpc` — the carrier baseline: one HSS, one MME, one
  S-GW and P-GW, shared by every eNodeB over backhaul control channels,
  with finite per-message processing capacity (so attach storms queue).
* :class:`LocalCoreStub` — the dLTE shape: the same attach/AKA/bearer
  machinery as one in-process agent per AP, authenticating against
  *published* keys (§4.2) instead of a private HSS database.

Both run the standard EPS attach procedure message-for-message, so E7's
latency/load comparison is apples-to-apples.
"""

from repro.epc.agents import ControlAgent, ControlChannel, ControlMessage
from repro.epc.crypto import AuthVector, generate_auth_vector, ue_compute_response
from repro.epc.centralized import CentralizedEpc
from repro.epc.hss import Hss
from repro.epc.keys import PublishedKeyRegistry
from repro.epc.mme import Mme
from repro.epc.nas import (
    AttachAccept,
    AttachComplete,
    AttachRequest,
    AuthenticationRequest,
    AuthenticationResponse,
    SecurityModeCommand,
    SecurityModeComplete,
)
from repro.epc.pgw import Pgw
from repro.epc.sgw import Sgw
from repro.epc.stub import LocalCoreStub
from repro.epc.subscriber import SubscriberDb, SubscriberProfile
from repro.epc.ue import UserEquipment

__all__ = [
    "ControlAgent", "ControlChannel", "ControlMessage",
    "AuthVector", "generate_auth_vector", "ue_compute_response",
    "CentralizedEpc",
    "Hss", "Mme", "Sgw", "Pgw",
    "PublishedKeyRegistry",
    "AttachRequest", "AttachAccept", "AttachComplete",
    "AuthenticationRequest", "AuthenticationResponse",
    "SecurityModeCommand", "SecurityModeComplete",
    "LocalCoreStub",
    "SubscriberDb", "SubscriberProfile",
    "UserEquipment",
]
