"""Integration tests: the four architectures built and run end to end."""

import pytest

from repro.core import (
    CentralizedLTENetwork,
    DLTENetwork,
    EsimDevice,
    PrivateLTENetwork,
    WiFiNetwork,
    design_space_table,
)
from repro.epc.keys import PublishedKeyRegistry
from repro.epc.subscriber import make_profile
from repro.simcore import Simulator
from repro.workloads import RuralTown

TOWN = RuralTown(radius_m=1500, n_ues=8, n_aps=2, seed=1)


@pytest.fixture(scope="module")
def dlte_report():
    return DLTENetwork.build(TOWN, seed=1).run()


@pytest.fixture(scope="module")
def carrier_report():
    return CentralizedLTENetwork.build(TOWN, seed=1).run()


@pytest.fixture(scope="module")
def wifi_report():
    return WiFiNetwork.build(TOWN, seed=1).run()


# -- every architecture serves its users ----------------------------------------------

def test_dlte_everyone_attaches(dlte_report):
    assert dlte_report.attach_failures == 0
    assert len(dlte_report.attach_latencies_s) == 8


def test_carrier_everyone_attaches(carrier_report):
    assert carrier_report.attach_failures == 0


def test_wifi_everyone_associates(wifi_report):
    assert wifi_report.attach_failures == 0


def test_all_ues_get_throughput(dlte_report, carrier_report, wifi_report):
    for report in (dlte_report, carrier_report, wifi_report):
        assert len(report.throughput_bps) == 8
        assert all(v > 0 for v in report.throughput_bps.values())


def test_all_pings_answered(dlte_report, carrier_report, wifi_report):
    for report in (dlte_report, carrier_report, wifi_report):
        assert len(report.rtt_s) == 8
        assert all(0 < rtt < 1.0 for rtt in report.rtt_s.values())


# -- the paper's architectural contrasts --------------------------------------------------

def test_dlte_attach_faster_than_carrier(dlte_report, carrier_report):
    """§4.1: collapsing the EPC removes backhaul round trips."""
    assert dlte_report.mean_attach_s < carrier_report.mean_attach_s / 2


def test_dlte_path_shorter_than_carrier(dlte_report, carrier_report):
    """Fig. 1: local breakout vs the EPC triangle."""
    assert dlte_report.mean_rtt_s < carrier_report.mean_rtt_s
    assert (max(dlte_report.hop_counts.values())
            < max(carrier_report.hop_counts.values()))


def test_only_carrier_pays_tunnel_overhead(dlte_report, carrier_report):
    assert dlte_report.tunnel_overhead_bytes == 0
    assert carrier_report.tunnel_overhead_bytes == 36


def test_dlte_and_wifi_share_local_breakout(dlte_report, wifi_report):
    """dLTE's user plane is WiFi-shaped: same hop structure."""
    assert (max(dlte_report.hop_counts.values())
            == max(wifi_report.hop_counts.values()))


def test_dlte_clients_numbered_from_ap_pools():
    net = DLTENetwork.build(TOWN, seed=1)
    net.run()
    for ue_id, host in net.ue_hosts.items():
        assert host.address is not None
        assert any(ap.pool.contains(host.address)
                   for ap in net.aps.values())


def test_dlte_aps_peer_over_x2(dlte_report):
    assert dlte_report.extras["x2_peers_total"] == 2  # both APs paired


def test_dlte_fair_sharing_splits_grid():
    net = DLTENetwork.build(TOWN, seed=1)
    net.run()
    slices = [ap.cell.allowed_prbs for ap in net.aps.values()]
    assert not (slices[0] & slices[1])
    assert len(slices[0]) + len(slices[1]) == 50


def test_dlte_uncoordinated_ablation_interferes():
    net = DLTENetwork.build(TOWN, seed=1, coordination_mode="none")
    report = net.run()
    for ap in net.aps.values():
        assert ap.cell.interferers
    assert report.attach_failures == 0


def test_dlte_cooperative_mode_runs():
    net = DLTENetwork.build(TOWN, seed=1, coordination_mode="cooperative")
    report = net.run()
    assert net.cluster is not None
    assert report.attach_failures == 0
    slices = [ap.cell.allowed_prbs for ap in net.aps.values()]
    assert not (slices[0] & slices[1])


def test_dlte_rejects_unknown_mode():
    with pytest.raises(ValueError):
        DLTENetwork.build(TOWN, coordination_mode="anarchy")


def test_private_lte_faster_than_carrier(carrier_report):
    private = PrivateLTENetwork.build(TOWN, seed=1).run()
    assert private.mean_rtt_s < carrier_report.mean_rtt_s
    assert private.attach_failures == 0


# -- Table 1 ----------------------------------------------------------------------------------

def test_design_space_quadrants():
    caps = [DLTENetwork.CAPABILITIES, CentralizedLTENetwork.CAPABILITIES,
            WiFiNetwork.CAPABILITIES, PrivateLTENetwork.CAPABILITIES]
    table = design_space_table(caps)
    text = table.render()
    assert "dLTE" in text
    # dLTE is alone in the licensed/open cell
    assert DLTENetwork.CAPABILITIES.quadrant == ("Licensed", "Open")
    others = [c for c in caps if c.name != "dLTE"]
    assert all(c.quadrant != ("Licensed", "Open") for c in others)


def test_capability_axes():
    assert DLTENetwork.CAPABILITIES.open_core
    assert not DLTENetwork.CAPABILITIES.in_network_mobility
    assert CentralizedLTENetwork.CAPABILITIES.pstn_interconnect
    assert not WiFiNetwork.CAPABILITIES.licensed_radio
    assert not PrivateLTENetwork.CAPABILITIES.open_core


# -- e-SIM ------------------------------------------------------------------------------------

def test_esim_multi_profile():
    device = EsimDevice("phone-1")
    carrier = make_profile("001010000000001", published=False)
    device.install("carrier", carrier)
    dlte = device.generate_dlte_profile("999010000000001")
    assert device.slots == ["carrier", "dlte"]
    assert device.profile_for_network(open_network=True) is dlte
    assert device.profile_for_network(open_network=False) is carrier


def test_esim_publishes_on_generation():
    sim = Simulator(0)
    registry = PublishedKeyRegistry(sim)
    device = EsimDevice("phone-2")
    profile = device.generate_dlte_profile("999010000000002", registry)
    assert registry.peek(profile.imsi) == profile.key


def test_esim_missing_identity_raises():
    device = EsimDevice("phone-3")
    with pytest.raises(LookupError):
        device.profile_for_network(open_network=True)
    with pytest.raises(KeyError):
        device.profile("nope")
    with pytest.raises(ValueError):
        EsimDevice("")


def test_esim_keys_differ_per_device():
    a = EsimDevice("phone-a").generate_dlte_profile("999010000000003")
    b = EsimDevice("phone-b").generate_dlte_profile("999010000000003")
    assert a.key != b.key
