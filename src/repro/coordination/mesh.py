"""Multi-hop backhaul sharing between neighbouring APs (§7 future work).

"We are planning to explore multi-hop approaches to sharing and
aggregating bandwidth between neighboring LTE APs. Such networks could
provide redundancy for users in emergencies when the backhaul link goes
down."

Model: APs are nodes; each may own a backhaul uplink of some capacity;
inter-AP radio links (capacity set by the link budget between sites)
form the mesh edges. When an AP's own backhaul dies, its traffic rides
the mesh to the nearest AP that still has one. E11 measures surviving
capacity and per-AP reachability under failure injection.

Built on networkx for path computation.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import networkx as nx


class BackhaulMesh:
    """An AP mesh with per-node backhaul and per-edge radio capacity."""

    def __init__(self) -> None:
        self.graph = nx.Graph()
        self._backhaul_bps: Dict[str, float] = {}
        self._failed: set = set()

    # -- construction --------------------------------------------------------------

    def add_ap(self, ap_id: str, backhaul_bps: float = 0.0) -> None:
        """Add an AP; ``backhaul_bps=0`` means no uplink of its own."""
        if backhaul_bps < 0:
            raise ValueError("backhaul capacity must be non-negative")
        self.graph.add_node(ap_id)
        self._backhaul_bps[ap_id] = backhaul_bps

    def connect(self, a: str, b: str, radio_bps: float) -> None:
        """Add a mesh radio link between two APs."""
        if radio_bps <= 0:
            raise ValueError("radio link capacity must be positive")
        if a not in self.graph or b not in self.graph:
            raise KeyError("both APs must be added before connecting")
        self.graph.add_edge(a, b, capacity_bps=radio_bps)

    # -- failure injection --------------------------------------------------------------

    def fail_backhaul(self, ap_id: str) -> None:
        """Kill one AP's uplink (mesh links survive)."""
        if ap_id not in self.graph:
            raise KeyError(f"unknown AP {ap_id}")
        self._failed.add(ap_id)

    def restore_backhaul(self, ap_id: str) -> None:
        """Bring an uplink back."""
        self._failed.discard(ap_id)

    def backhaul_bps(self, ap_id: str) -> float:
        """Effective own-uplink capacity (0 when failed)."""
        if ap_id in self._failed:
            return 0.0
        return self._backhaul_bps.get(ap_id, 0.0)

    # -- analysis ------------------------------------------------------------------------

    def gateways(self) -> List[str]:
        """APs currently holding a working uplink."""
        return [ap for ap in self.graph.nodes if self.backhaul_bps(ap) > 0]

    def route_to_internet(self, ap_id: str) -> Optional[Tuple[List[str], float]]:
        """Best path from ``ap_id`` to any working gateway.

        Returns (path, bottleneck_bps) where the bottleneck includes the
        gateway's uplink, or None when the AP is cut off. "Best" = the
        path maximizing the bottleneck (widest path), ties broken by hop
        count.
        """
        if ap_id not in self.graph:
            raise KeyError(f"unknown AP {ap_id}")
        if self.backhaul_bps(ap_id) > 0:
            return ([ap_id], self.backhaul_bps(ap_id))
        best: Optional[Tuple[List[str], float]] = None
        for gateway in self.gateways():
            for path in _bounded_simple_paths(self.graph, ap_id, gateway):
                bottleneck = min(
                    min(self.graph.edges[u, v]["capacity_bps"]
                        for u, v in zip(path, path[1:])),
                    self.backhaul_bps(gateway))
                if (best is None or bottleneck > best[1]
                        or (bottleneck == best[1] and len(path) < len(best[0]))):
                    best = (path, bottleneck)
        return best

    def reachable_fraction(self) -> float:
        """Fraction of APs that can still reach the Internet."""
        nodes = list(self.graph.nodes)
        if not nodes:
            return 0.0
        ok = sum(1 for ap in nodes if self.route_to_internet(ap) is not None)
        return ok / len(nodes)

    def total_capacity_bps(self) -> float:
        """Aggregate working uplink capacity across the mesh."""
        return sum(self.backhaul_bps(ap) for ap in self.graph.nodes)


def _bounded_simple_paths(graph: nx.Graph, src: str, dst: str,
                          cutoff: int = 6):
    """Simple paths up to ``cutoff`` hops (meshes are small; keep it cheap)."""
    return nx.all_simple_paths(graph, src, dst, cutoff=cutoff)
