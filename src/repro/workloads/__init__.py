"""Workloads: traffic generators and deployment topologies."""

from repro.workloads.topology import FarmCorridor, RuralTown
from repro.workloads.traffic import (
    CbrSource,
    FlashCrowdAttachSource,
    OnOffSource,
    PoissonChurnAttachSource,
    PoissonSource,
    VideoStreamSource,
    WebSessionSource,
)

__all__ = [
    "RuralTown",
    "FarmCorridor",
    "CbrSource",
    "PoissonSource",
    "OnOffSource",
    "WebSessionSource",
    "VideoStreamSource",
    "FlashCrowdAttachSource",
    "PoissonChurnAttachSource",
]
