#!/usr/bin/env python
"""A client drives past dLTE APs: endpoint mobility in action (§4.2).

dLTE deliberately does not preserve a client's IP address across APs;
the transport protocol is expected to cope. This script streams a
download while the client hops APs every few seconds, once over TCP
(the connection dies and re-handshakes at every hop) and once over QUIC
(the connection migrates), printing the delivery timeline around each
handover.

Run:  python examples/roaming_client.py
"""

from repro.experiments.e6_mobility import (
    CorridorHarness,
    DLTE_REATTACH_S,
    RADIO_BLACKOUT_S,
    SERVER_ADDR,
)
from repro.transport import (
    BulkTransferApp,
    QuicConnection,
    QuicListener,
    TcpConnection,
    TcpListener,
)

DWELL_S = 4.0
N_HANDOVERS = 3


def drive(arm: str) -> None:
    harness = CorridorHarness(n_aps=4, seed=11)
    sim = harness.sim
    harness.attach_dlte(0)
    if arm == "tcp":
        TcpListener(sim, harness.server_demux)
        conn_cls = TcpConnection
    else:
        QuicListener(sim, harness.server_demux)
        conn_cls = QuicConnection
    app = BulkTransferApp(sim, harness.client_demux, SERVER_ADDR, conn_cls,
                          total_bytes=10**9)
    app.start()
    sim.run(until=1.0)

    print(f"\n=== {arm.upper()} over dLTE: handover every {DWELL_S:g} s ===")
    ap = 0
    for hop in range(N_HANDOVERS):
        before = app._acked_total()
        sim.run(until=sim.now + DWELL_S)
        target = (ap + 1) % harness.n_aps
        harness._detach()
        sim.run(until=sim.now + RADIO_BLACKOUT_S + DLTE_REATTACH_S)
        new_addr = harness.attach_dlte(target)
        app.on_address_change(new_addr)
        at = sim.now
        # watch the first second after the handover
        sim.run(until=at + 1.0)
        after = app._acked_total()
        rate = (after - before) * 8 / (DWELL_S + 1.0) / 1e6
        print(f"  hop {hop + 1}: ap{ap} -> ap{target} at t={at:.2f}s, "
              f"new address {new_addr}, "
              f"window rate {rate:.2f} Mbps, "
              f"reconnects so far: {app.reconnects}")
        ap = target
    stalls = app.stall_intervals(min_gap_s=0.15)
    worst = max((t1 - t0 for t0, t1 in stalls), default=0.0)
    print(f"  worst delivery stall: {worst:.2f} s; "
          f"total reconnects: {app.reconnects}")


def main() -> None:
    drive("tcp")
    drive("quic")
    print("\nSame road, same APs, same renumbering: TCP re-handshakes at")
    print("every AP while QUIC's connection ID just follows the client —")
    print("the difference that makes dLTE's no-mobility-management design")
    print("workable with modern transports (§4.2).")


if __name__ == "__main__":
    main()
