"""Event tracing: see what a simulation did without print-debugging.

A :class:`Tracer` is a bounded, filterable record of annotated events.
Components call ``sim.trace("category", "message", key=value, ...)``;
with no tracer installed the call is a near-free no-op, so production
runs pay nothing. Tests and debugging sessions install a tracer, run,
and query by category/time/field.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, Iterable, List, Optional


@dataclass(frozen=True)
class TraceEvent:
    """One recorded event."""

    time_s: float
    category: str
    message: str
    fields: Dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        extras = " ".join(f"{k}={v}" for k, v in sorted(self.fields.items()))
        return (f"[{self.time_s:12.6f}] {self.category}: {self.message}"
                + (f" ({extras})" if extras else ""))


class Tracer:
    """A bounded trace buffer with category filtering.

    Args:
        max_events: ring-buffer capacity (oldest events drop first).
        categories: if given, only these categories are recorded.
    """

    def __init__(self, max_events: int = 100_000,
                 categories: Optional[Iterable[str]] = None) -> None:
        if max_events < 1:
            raise ValueError("need room for at least one event")
        self._events: Deque[TraceEvent] = deque(maxlen=max_events)
        self._categories = frozenset(categories) if categories else None
        self.recorded = 0
        self.filtered = 0

    def record(self, time_s: float, category: str, message: str,
               **fields: Any) -> None:
        """Append an event (subject to the category filter)."""
        if self._categories is not None and category not in self._categories:
            self.filtered += 1
            return
        self.recorded += 1
        self._events.append(TraceEvent(time_s=time_s, category=category,
                                       message=message, fields=fields))

    # -- queries --------------------------------------------------------------------

    def events(self, category: Optional[str] = None,
               since_s: float = float("-inf"),
               until_s: float = float("inf")) -> List[TraceEvent]:
        """Events matching the filters, in arrival order."""
        return [e for e in self._events
                if (category is None or e.category == category)
                and since_s <= e.time_s <= until_s]

    def count(self, category: Optional[str] = None) -> int:
        """Number of retained events in a category (all if None)."""
        return len(self.events(category))

    def categories(self) -> List[str]:
        """Distinct categories seen, sorted."""
        return sorted({e.category for e in self._events})

    def dump(self, category: Optional[str] = None) -> str:
        """Human-readable rendering of the (filtered) trace."""
        return "\n".join(str(e) for e in self.events(category))

    def clear(self) -> None:
        """Drop all retained events (counters keep running)."""
        self._events.clear()

    # -- persistence ----------------------------------------------------------------
    #
    # Traces used to die with the process; the JSONL round-trip lets a
    # run's trace be saved, reloaded, and diffed against another run's.

    def to_jsonl(self, path: str) -> int:
        """Write retained events as JSONL; returns the line count.

        Non-JSON field values (addresses, enums) are stringified, so a
        reloaded trace compares by rendering, not object identity.
        """
        count = 0
        with open(path, "w") as fh:
            for event in self._events:
                fh.write(json.dumps(
                    {"type": "trace", "time_s": event.time_s,
                     "category": event.category, "message": event.message,
                     "fields": event.fields}, default=str) + "\n")
                count += 1
        return count

    @classmethod
    def from_jsonl(cls, path: str, max_events: int = 1_000_000,
                   categories: Optional[Iterable[str]] = None) -> "Tracer":
        """Rebuild a tracer from a :meth:`to_jsonl` file.

        Lines with a ``type`` other than ``"trace"`` (e.g. span records
        in a combined export) are skipped. The usual category filter
        applies on reload, so one saved trace can be re-read narrowed.
        """
        tracer = cls(max_events=max_events, categories=categories)
        with open(path) as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                record = json.loads(line)
                if record.get("type", "trace") != "trace":
                    continue
                tracer.record(record["time_s"], record["category"],
                              record["message"], **record.get("fields", {}))
        return tracer

    def __len__(self) -> int:
        return len(self._events)
