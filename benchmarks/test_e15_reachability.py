"""Bench E15 — public addressing vs NAT: who can host a service (§4.2)."""

from conftest import emit, once

from repro.experiments import e15_reachability


def test_e15_reachability(benchmark):
    table = once(benchmark, e15_reachability.run)
    emit(table)
    rows = {row["arm"]: row for row in table.rows}
    dlte = rows["dLTE (public address)"]
    nat = rows["NATed hotspot"]
    # both can dial out...
    assert dlte["outbound_ok"] == "yes"
    assert nat["outbound_ok"] == "yes"
    # ...but only the publicly-addressed client can be dialed
    assert dlte["inbound_ok"] == "yes"
    assert nat["inbound_ok"] == "no"
    assert nat["nat_unsolicited_drops"] >= 1
    assert dlte["nat_unsolicited_drops"] == 0
