"""Shared transport machinery: demux, segments, reliability, congestion.

Both transport families share a sender (sequence space, cumulative acks,
Reno congestion control, RTO with exponential backoff, fast retransmit)
and a receiver (reorder buffer, cumulative acking). Subclasses define the
handshake and what happens when the local address changes — which is the
entire TCP-vs-QUIC contrast the paper leans on.

Segments ride the simulated network as :class:`repro.net.Packet` objects;
``flow_id`` carries the connection id and ``payload`` the segment header.
"""

from __future__ import annotations

import enum
import itertools
from typing import Callable, Dict, Optional

from repro.net.addressing import IPv4Address
from repro.net.nodes import Host
from repro.net.packet import ECN_CE, ECN_ECT, Packet, PacketPool
from repro.simcore.simulator import ScheduledCall, Simulator

#: Maximum segment size (application bytes per data segment).
MSS_BYTES = 1200
#: Transport+IP header overhead charged per segment.
HEADER_BYTES = 40
#: Initial congestion window, segments (RFC 6928).
INITIAL_CWND = 10
#: Initial slow-start threshold, segments.
INITIAL_SSTHRESH = 64
#: RTO bounds, seconds.
MIN_RTO_S = 0.2
MAX_RTO_S = 30.0

_conn_ids = itertools.count(1)

#: Process-wide free list for segment shells. Transport segments live
#: exactly one network traversal: emitted here, consumed by the peer's
#: ``on_segment``, which releases data/ack shells back after the
#: handler returns. Handshake segments are never recycled (listeners
#: and subclasses may keep them), and recycling affects object identity
#: only — never simulation results (see PERFORMANCE.md).
_SEGMENT_POOL = PacketPool(capacity=1024)


class ConnectionState(enum.Enum):
    """Lifecycle of a transport connection."""

    IDLE = "idle"
    CONNECTING = "connecting"
    ESTABLISHED = "established"
    BROKEN = "broken"          # 4-tuple invalidated (TCP after migration)
    CLOSED = "closed"


class TransportDemux:
    """Routes a host's inbound packets to transport endpoints by flow id.

    One demux per host; endpoints register themselves. Unmatched flows go
    to an optional listener (server accept path).
    """

    def __init__(self, host: Host) -> None:
        self.host = host
        self._endpoints: Dict[str, "TransportConnection"] = {}
        self.listener: Optional["Listener"] = None
        host.on_packet = self.dispatch

    def register(self, conn_id: str, endpoint: "TransportConnection") -> None:
        """Bind ``conn_id`` to ``endpoint`` (replacing any prior binding)."""
        self._endpoints[conn_id] = endpoint

    def unregister(self, conn_id: str) -> None:
        """Remove a binding if present."""
        self._endpoints.pop(conn_id, None)

    def dispatch(self, packet: Packet) -> None:
        """Deliver to the owning endpoint, else offer to the listener."""
        endpoint = self._endpoints.get(packet.flow_id)
        if endpoint is not None:
            endpoint.on_segment(packet)
        elif self.listener is not None:
            self.listener.on_unmatched(packet)


class Listener:
    """Server-side accept loop: spawns an endpoint per new connection."""

    def __init__(self, sim: Simulator, demux: TransportDemux,
                 connection_factory: Callable[..., "TransportConnection"]) -> None:
        self.sim = sim
        self.demux = demux
        self.connection_factory = connection_factory
        self.accepted: Dict[str, TransportConnection] = {}
        self.on_accept: Optional[Callable[["TransportConnection"], None]] = None
        demux.listener = self

    def on_unmatched(self, packet: Packet) -> None:
        kind = (packet.payload or {}).get("kind")
        if kind not in ("syn", "0rtt"):
            return  # stray segment for a dead connection; ignore (RST-less)
        conn = self.connection_factory(
            sim=self.sim, demux=self.demux, conn_id=packet.flow_id,
            peer_addr=packet.src, is_server=True)
        self.accepted[packet.flow_id] = conn
        conn.accept(packet)
        if self.on_accept is not None:
            self.on_accept(conn)


class TransportConnection:
    """One endpoint of a reliable, congestion-controlled connection.

    Subclass contract: implement :meth:`connect` (client handshake),
    :meth:`accept` (server handshake reaction), and
    :meth:`on_local_address_change`.

    ECN (``ecn=True``, default off): the sender marks its data segments
    ECT; when an AQM under congestion rewrites one to CE, the receiver
    echoes ``ece`` on its next cumulative ack and the sender halves
    ``cwnd`` — once per window, like a fast retransmit without the
    retransmission (RFC 3168, simplified). The receive side echoes CE
    unconditionally (echoing requires having *seen* a mark, which
    requires the peer opted in), so only the sending side needs the
    flag set; with it off the whole path costs one boolean check.
    """

    #: RTT multiples for the retransmission timer.
    RTO_FACTOR = 2.0

    def __init__(self, sim: Simulator, demux: TransportDemux,
                 conn_id: Optional[str] = None,
                 peer_addr: Optional[IPv4Address] = None,
                 is_server: bool = False, ecn: bool = False) -> None:
        self.sim = sim
        self.demux = demux
        self.host = demux.host
        self.conn_id = conn_id or f"conn-{next(_conn_ids)}"
        self.peer_addr = peer_addr
        self.is_server = is_server
        self.ecn = ecn
        self.state = ConnectionState.IDLE
        demux.register(self.conn_id, self)

        # send side
        self.snd_nxt = 0              # next new segment seq
        self.snd_una = 0              # oldest unacked seq
        self.cwnd = float(INITIAL_CWND)
        self.ssthresh = float(INITIAL_SSTHRESH)
        self._send_queue_bytes = 0
        self._sent_sizes: Dict[int, int] = {}   # seq -> app bytes
        self._sent_times: Dict[int, float] = {}
        self._dupacks = 0
        # RTO timer, lazily re-armed: ``_rto_deadline`` is the time the
        # RTO should actually fire; ``_rto_timer`` is a probe event that
        # chases the deadline. Acks only move the deadline (a float
        # store) instead of cancelling and re-pushing a heap entry per
        # ack, so steady-state transfer leaves no timer garbage in the
        # run queue (see Simulator heap hygiene / PERFORMANCE.md).
        self._rto_timer: Optional[ScheduledCall] = None
        self._rto_deadline: Optional[float] = None
        self._rto_backoff = 1.0
        # NewReno-style recovery: below _recovery_point, partial acks
        # drive retransmissions. Two regimes: _burst_recovery=True (after
        # an RTO or a path migration, where the whole window is suspect)
        # refills the window go-back-N style; False (after a fast
        # retransmit, i.e. an isolated queue drop) resends exactly the
        # next hole per partial ack, classic NewReno. _retx_done makes
        # each hole resend at most once per recovery epoch.
        self._recovery_point = 0
        self._burst_recovery = False
        self._retx_done: set = set()
        #: cwnd cut point for ECE: acks below this belong to a window
        #: that already reacted, so at most one halving per RTT
        self._ece_cut = 0

        # receive side
        self.rcv_nxt = 0
        self._reorder: Dict[int, int] = {}      # seq -> app bytes
        #: a CE mark arrived and has not been echoed yet
        self._ece_pending = False

        # RTT estimation
        self.srtt_s: Optional[float] = None

        # app hooks and accounting
        self.on_receive: Optional[Callable[[int], None]] = None   # app bytes
        self.on_established: Optional[Callable[[], None]] = None
        self.on_broken: Optional[Callable[[], None]] = None
        self.bytes_delivered = 0      # receiver side, in-order app bytes
        self.bytes_acked = 0          # sender side
        self.retransmissions = 0
        self.segments_lost_no_link = 0
        self.ce_received = 0          # receiver side, CE-marked segments
        self.ecn_responses = 0        # sender side, cwnd cuts from ECE
        self.established_at: Optional[float] = None

    # -- subclass API --------------------------------------------------------

    def connect(self) -> None:
        """Client: begin the handshake toward ``peer_addr``."""
        raise NotImplementedError

    def accept(self, packet: Packet) -> None:
        """Server: react to the first segment of a new connection."""
        raise NotImplementedError

    def on_local_address_change(self, new_addr: IPv4Address) -> None:
        """The host's address changed (handover). Family-specific."""
        raise NotImplementedError

    # -- app send path ---------------------------------------------------------

    def send_app_data(self, n_bytes: int) -> None:
        """Queue application bytes for transmission."""
        if n_bytes <= 0:
            raise ValueError("must send a positive number of bytes")
        if self.state in (ConnectionState.CLOSED, ConnectionState.BROKEN):
            raise RuntimeError(f"cannot send on {self.state.value} connection")
        self._send_queue_bytes += n_bytes
        if self.state is ConnectionState.ESTABLISHED:
            self._pump()

    @property
    def unsent_bytes(self) -> int:
        """Application bytes queued but not yet segmented."""
        return self._send_queue_bytes

    @property
    def inflight(self) -> int:
        """Segments sent and not yet cumulatively acked."""
        return self.snd_nxt - self.snd_una

    def _pump(self) -> None:
        """Send new segments while the window and queue allow."""
        while self._send_queue_bytes > 0 and self.inflight < int(self.cwnd):
            chunk = min(self._send_queue_bytes, MSS_BYTES)
            seq = self.snd_nxt
            self.snd_nxt += 1
            self._send_queue_bytes -= chunk
            self._sent_sizes[seq] = chunk
            self._sent_times[seq] = self.sim.now
            self._emit({"kind": "data", "seq": seq}, size=chunk + HEADER_BYTES,
                       ect=True)
        self._arm_rto()

    # -- segment I/O --------------------------------------------------------------

    def _emit(self, header: Dict, size: int = HEADER_BYTES,
              ect: bool = False) -> None:
        if self.peer_addr is None:
            raise RuntimeError(f"{self.conn_id}: no peer address")
        packet = _SEGMENT_POOL.acquire(
            self.host.address, self.peer_addr, size, flow_id=self.conn_id,
            payload=header, created_at=self.sim.now)
        if ect and self.ecn:
            packet.ecn = ECN_ECT
        try:
            self.host.send(packet)
        except (KeyError, RuntimeError):
            # interface down (mid-handover radio blackout): the segment
            # is simply lost; the retransmission machinery recovers it.
            self.segments_lost_no_link += 1

    def on_segment(self, packet: Packet) -> None:
        """Demux entry point; dispatches on the segment kind."""
        header = packet.payload or {}
        kind = header.get("kind")
        handler = getattr(self, f"_on_{kind}", None)
        if handler is None:
            return
        handler(packet, header)
        if kind == "data" or kind == "ack":
            # the segment's life ends here: nothing downstream keeps a
            # reference (the reorder buffer stores sizes, not packets),
            # so the shell goes back to the free list
            _SEGMENT_POOL.release(packet)

    # -- data / ack handling -----------------------------------------------------

    def _on_data(self, packet: Packet, header: Dict) -> None:
        if self.state is not ConnectionState.ESTABLISHED:
            return
        self._note_peer_packet(packet)
        if packet.ecn == ECN_CE:
            self.ce_received += 1
            self._ece_pending = True
        seq = header["seq"]
        app_bytes = max(packet.size_bytes - HEADER_BYTES, 0)
        if seq >= self.rcv_nxt and seq not in self._reorder:
            self._reorder[seq] = app_bytes
        delivered_now = 0
        while self.rcv_nxt in self._reorder:
            delivered_now += self._reorder.pop(self.rcv_nxt)
            self.rcv_nxt += 1
        if delivered_now:
            self.bytes_delivered += delivered_now
            if self.on_receive is not None:
                self.on_receive(delivered_now)
        if self._ece_pending:
            self._ece_pending = False
            self._emit({"kind": "ack", "ack": self.rcv_nxt, "ece": True})
        else:
            self._emit({"kind": "ack", "ack": self.rcv_nxt})

    def _on_ack(self, packet: Packet, header: Dict) -> None:
        if self.state is not ConnectionState.ESTABLISHED:
            return
        self._note_peer_packet(packet)
        if self.ecn and "ece" in header:
            self._on_ece()
        ack = header["ack"]
        if ack > self.snd_una:
            newly = range(self.snd_una, ack)
            for seq in newly:
                self.bytes_acked += self._sent_sizes.pop(seq, 0)
                sent_at = self._sent_times.pop(seq, None)
                if sent_at is not None:
                    self._update_rtt(self.sim.now - sent_at)
            n_acked = ack - self.snd_una
            self.snd_una = ack
            self._dupacks = 0
            self._rto_backoff = 1.0
            self._grow_cwnd(n_acked)
            if self.snd_una < self._recovery_point:
                if self._burst_recovery:
                    # the whole window was lost (blackout/RTO): refill
                    # go-back-N style, paced by the window, once each
                    budget = max(int(self.cwnd), 1)
                    end = min(self.snd_una + budget, self._recovery_point)
                    candidates = range(self.snd_una, end)
                else:
                    # isolated drop: resend exactly the next hole
                    candidates = range(self.snd_una, self.snd_una + 1)
                for seq in candidates:
                    if seq not in self._retx_done:
                        self._retx_done.add(seq)
                        self._retransmit(seq)
            else:
                self._retx_done.clear()
                self._burst_recovery = False
            self._arm_rto()
            self._pump()
        elif ack == self.snd_una and self.inflight > 0:
            if self.snd_una < self._recovery_point:
                return  # go-back-N in progress: dupacks are expected
            self._dupacks += 1
            if self._dupacks == 3:
                self._fast_retransmit()

    def _note_peer_packet(self, packet: Packet) -> None:
        """Hook: QUIC updates the peer address from authenticated packets."""

    def _on_ece(self) -> None:
        """React to an echoed congestion mark: halve once per window.

        Same multiplicative decrease as a fast retransmit, but nothing
        was lost so nothing is resent — this is the whole point of ECN
        under sustained overload (E18): congestion feedback without the
        retransmission storms that collapse drop-tail goodput.
        """
        if self.snd_una < self._ece_cut:
            return  # this window already reacted
        self._ece_cut = self.snd_nxt
        self.ssthresh = max(self.cwnd / 2.0, 2.0)
        self.cwnd = self.ssthresh
        self.ecn_responses += 1

    def _grow_cwnd(self, n_acked: int) -> None:
        for _ in range(n_acked):
            if self.cwnd < self.ssthresh:
                self.cwnd += 1.0               # slow start
            else:
                self.cwnd += 1.0 / self.cwnd   # congestion avoidance

    def _update_rtt(self, sample_s: float) -> None:
        if self.srtt_s is None:
            self.srtt_s = sample_s
        else:
            self.srtt_s = 0.875 * self.srtt_s + 0.125 * sample_s

    # -- loss recovery -------------------------------------------------------------

    @property
    def rto_s(self) -> float:
        """Current retransmission timeout with backoff applied."""
        base = (self.RTO_FACTOR * self.srtt_s) if self.srtt_s else 1.0
        return min(max(base, MIN_RTO_S) * self._rto_backoff, MAX_RTO_S)

    def _arm_rto(self) -> None:
        if self.inflight == 0 or self.state is not ConnectionState.ESTABLISHED:
            self._rto_deadline = None
            return
        deadline = self.sim.now + self.rto_s
        self._rto_deadline = deadline
        timer = self._rto_timer
        if timer is None:
            self._rto_timer = self.sim.at(deadline, self._rto_probe)
        elif timer.time > deadline:
            # deadline moved *earlier* (backoff reset after recovery):
            # the pending probe would sleep past it — replace it
            timer.cancel()
            self._rto_timer = self.sim.at(deadline, self._rto_probe)
        # else: the probe fires at or before the deadline and chases it

    def _rto_probe(self) -> None:
        """Timer event: fire the RTO, chase a moved deadline, or die."""
        self._rto_timer = None
        deadline = self._rto_deadline
        if deadline is None:
            return
        if self.sim.now < deadline:
            self._rto_timer = self.sim.at(deadline, self._rto_probe)
            return
        self._on_rto()

    def _on_rto(self) -> None:
        self._rto_deadline = None
        if self.inflight == 0 or self.state is not ConnectionState.ESTABLISHED:
            return
        self.ssthresh = max(self.cwnd / 2.0, 2.0)
        self.cwnd = 1.0
        self._rto_backoff = min(self._rto_backoff * 2.0, 64.0)
        self._recovery_point = self.snd_nxt
        self._burst_recovery = True
        # an RTO restarts recovery: earlier retransmissions may be gone too
        self._retx_done = {self.snd_una}
        self._retransmit(self.snd_una)
        self._arm_rto()
        self._on_persistent_loss()

    def _on_persistent_loss(self) -> None:
        """Hook: subclasses may give up (e.g. broken TCP path)."""

    def _fast_retransmit(self) -> None:
        self.ssthresh = max(self.cwnd / 2.0, 2.0)
        self.cwnd = self.ssthresh
        # NewReno: stay in recovery until everything outstanding at the
        # loss signal is repaired — each partial ack resends the next
        # hole (see _on_ack) instead of waiting out an RTO per hole.
        self._recovery_point = self.snd_nxt
        self._burst_recovery = False
        self._retx_done = {self.snd_una}
        self._retransmit(self.snd_una)

    def _retransmit(self, seq: int) -> None:
        size = self._sent_sizes.get(seq)
        if size is None:
            return
        self.retransmissions += 1
        self._sent_times[seq] = self.sim.now
        self._emit({"kind": "data", "seq": seq}, size=size + HEADER_BYTES,
                   ect=True)

    # -- lifecycle ---------------------------------------------------------------

    def _become_established(self) -> None:
        self.state = ConnectionState.ESTABLISHED
        self.established_at = self.sim.now
        if self.on_established is not None:
            self.on_established()
        self._pump()

    def _become_broken(self) -> None:
        if self.state is ConnectionState.BROKEN:
            return
        self.state = ConnectionState.BROKEN
        self._rto_deadline = None
        if self._rto_timer is not None:
            self._rto_timer.cancel()
            self._rto_timer = None
        if self.on_broken is not None:
            self.on_broken()

    def close(self) -> None:
        """Tear down and unregister the endpoint."""
        self.state = ConnectionState.CLOSED
        self._rto_deadline = None
        if self._rto_timer is not None:
            self._rto_timer.cancel()
            self._rto_timer = None
        self.demux.unregister(self.conn_id)

    def __repr__(self) -> str:
        return (f"<{type(self).__name__} {self.conn_id} {self.state.value} "
                f"cwnd={self.cwnd:.1f} inflight={self.inflight}>")
