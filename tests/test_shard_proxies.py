"""Shard-boundary proxy equivalence and conservation.

The co-location contract (net/shardlink.py): a CrossShardChannel /
CrossShardLink pair whose halves live in the same shard must be
indistinguishable — delivery times, sender identities, counters — from
the monolithic ControlChannel / Link it stands in for. These tests pin
that contract, the cross-shard conservation laws, the queued-packet
promotion chain, and the documented divergences (down-mid-flight,
unsupported AQM).
"""

import pytest

from repro.epc.agents import CallbackAgent, ControlChannel
from repro.net.links import Link
from repro.net.packet import Packet
from repro.net.shardlink import (
    CrossShardChannel,
    CrossShardLink,
    CrossShardLinkExit,
    RemoteAgentStub,
)
from repro.simcore import ShardBoundary, ShardHost, ShardedSimulator, Simulator


def _packet(seq, size=1250):
    return Packet(src=None, dst=None, size_bytes=size, flow_id="t", seq=seq)


def _colocated(seed=3):
    sim = Simulator(seed)
    return sim, ShardBoundary(sim, 0, 1)


# -- control channel: co-located half pair == ControlChannel ---------------


def _run_channel_script(sim, a, b, send):
    """Drive the same traffic over any channel-ish send function."""
    for t, sender, value in [(0.00, a, 1), (0.00, b, 10), (0.05, a, 2),
                             (0.12, b, 20), (0.12, a, 3)]:
        sim.at(t, send, sender, value)
    sim.run(until=1.0)


def test_colocated_channel_matches_control_channel():
    logs = {}
    counts = {}
    # monolithic reference
    sim = Simulator(3)
    log_a, log_b = [], []
    a = CallbackAgent(sim, "a", lambda m: log_a.append(
        (sim.now, m.payload, m.sender.name, m.sent_at)))
    b = CallbackAgent(sim, "b", lambda m: log_b.append(
        (sim.now, m.payload, m.sender.name, m.sent_at)))
    channel = ControlChannel(sim, a, b, 0.02, "ch")
    _run_channel_script(sim, a, b, channel.send)
    logs["mono"] = (log_a, log_b)
    counts["mono"] = channel.messages

    # co-located cross-shard half pair sharing the name
    sim, boundary = _colocated()
    log_a, log_b = [], []
    a = CallbackAgent(sim, "a", lambda m: log_a.append(
        (sim.now, m.payload, m.sender.name, m.sent_at)))
    b = CallbackAgent(sim, "b", lambda m: log_b.append(
        (sim.now, m.payload, m.sender.name, m.sent_at)))
    half_a = CrossShardChannel(sim, boundary, a, "b", 0, 0.02, "ch")
    half_b = CrossShardChannel(sim, boundary, b, "a", 0, 0.02, "ch")

    def send(sender, value):
        (half_a if sender is a else half_b).send(sender, value)

    _run_channel_script(sim, a, b, send)
    assert (log_a, log_b) == logs["mono"]
    assert half_a.messages + half_b.messages == counts["mono"]
    assert half_a.received == len(log_a)
    assert half_b.received == len(log_b)


def test_colocated_channel_resolves_real_peer_identity():
    sim, boundary = _colocated()
    seen = []
    a = CallbackAgent(sim, "a")
    b = CallbackAgent(sim, "b", lambda m: seen.append(m.sender))
    half_a = CrossShardChannel(sim, boundary, a, "b", 0, 0.01, "ch")
    half_b = CrossShardChannel(sim, boundary, b, "a", 0, 0.01, "ch")
    # both halves registered: other_end is the real object, not a stub
    assert half_a.other_end(a) is b
    assert half_b.other_end(b) is a
    half_a.send(a, "hello")
    sim.run(until=1.0)
    # relays compare `message.sender is channel.other_end(self)` — the
    # co-located path must carry the real sender for that check to hold
    assert seen == [a]
    assert seen[0] is half_b.other_end(b)


def test_cross_half_peer_is_stub_with_remote_name():
    sim, boundary = _colocated()
    a = CallbackAgent(sim, "a")
    # peer half never registered locally => remote: expect the stub
    half = CrossShardChannel(sim, boundary, a, "far", 0, 0.01, "ch")
    peer = half.other_end(a)
    assert isinstance(peer, RemoteAgentStub)
    assert peer.name == "far"
    assert half.other_end(a) is peer  # stable identity across calls


def test_channel_down_drops_at_sending_half_only():
    sim, boundary = _colocated()
    got_a, got_b = [], []
    a = CallbackAgent(sim, "a", lambda m: got_a.append(m.payload))
    b = CallbackAgent(sim, "b", lambda m: got_b.append(m.payload))
    half_a = CrossShardChannel(sim, boundary, a, "b", 0, 0.01, "ch")
    half_b = CrossShardChannel(sim, boundary, b, "a", 0, 0.01, "ch")
    half_a.set_up(False)
    half_a.send(a, "lost")
    half_b.send(b, "through")  # reverse direction unaffected
    sim.run(until=1.0)
    assert got_b == []
    assert got_a == ["through"]
    assert half_a.dropped == 1
    assert half_b.dropped == 0


def test_channel_validations():
    sim, boundary = _colocated()
    a = CallbackAgent(sim, "a")
    stranger = CallbackAgent(sim, "stranger")
    half = CrossShardChannel(sim, boundary, a, "b", 0, 0.01, "ch")
    with pytest.raises(ValueError, match="not an end"):
        half.other_end(stranger)
    with pytest.raises(ValueError, match="not the local end"):
        half.send(stranger, "x")
    with pytest.raises(ValueError, match="non-negative"):
        CrossShardChannel(sim, boundary, a, "b", 0, -0.01, "neg")


# -- data link: co-located CrossShardLink == plain Link --------------------


def test_colocated_link_matches_plain_link():
    # 1250 B at 1 Mbit/s = 10 ms serialization; queue of 2; five sends
    # at t=0 -> one in service, two queued, two overflow drops
    sim = Simulator(3)
    mono_log = []
    link = Link(sim, rate_bps=1e6, delay_s=0.01, queue_packets=2,
                name="ref")
    link.connect(lambda p: mono_log.append((sim.now, p.seq)))
    accepted_mono = [link.send(_packet(i)) for i in range(5)]
    sim.run(until=1.0)

    sim, boundary = _colocated()
    cross_log = []
    xlink = CrossShardLink(sim, boundary, rate_bps=1e6, delay_s=0.01,
                           dst_shard=0, queue_packets=2, name="x")
    CrossShardLinkExit(sim, boundary, "x",
                       lambda p: cross_log.append((sim.now, p.seq)))
    accepted_cross = [xlink.send(_packet(i)) for i in range(5)]
    sim.run(until=1.0)

    assert accepted_cross == accepted_mono == [True, True, True, False, False]
    assert cross_log == mono_log
    assert mono_log == [(0.01 * (k + 2), k) for k in range(3)]
    assert xlink.offered == link.offered == 5
    assert xlink.dropped_overflow == link.dropped_overflow == 2
    assert xlink.delivered == link.delivered == 3
    assert xlink.bytes_sent == link.bytes_sent


def test_cross_link_conservation_colocated():
    sim, boundary = _colocated()
    exit_ = CrossShardLinkExit(sim, boundary, "x", lambda p: None)
    xlink = CrossShardLink(sim, boundary, rate_bps=1e6, delay_s=0.01,
                           dst_shard=0, queue_packets=3, name="x")
    for i in range(6):
        xlink.send(_packet(i))
    sim.run(until=1.0)
    assert xlink.offered == xlink.delivered + xlink.dropped + xlink.in_flight
    assert xlink.in_flight == 0
    assert xlink.crossed == exit_.received == 4
    assert exit_.received_bytes == 4 * 1250


def test_cross_link_down_keeps_crossed_packets():
    # Documented divergence from Link: packets that already crossed the
    # boundary are beyond this shard's reach, so cutting the link drops
    # the queue but not the crossing in progress.
    sim, boundary = _colocated()
    exit_log = []
    xlink = CrossShardLink(sim, boundary, rate_bps=1e6, delay_s=0.01,
                           dst_shard=0, queue_packets=5, name="x")
    CrossShardLinkExit(sim, boundary, "x",
                       lambda p: exit_log.append(p.seq))
    for i in range(3):
        xlink.send(_packet(i))
    sim.at(0.005, xlink.set_up, False)  # mid-serialization of packet 0
    sim.run(until=1.0)
    # packet 0 crossed at send time; packets 1 and 2 died in the queue
    assert exit_log == [0]
    assert xlink.dropped_down == 2
    assert xlink.crossed == 1


def test_cross_link_unsupported_surface():
    sim, boundary = _colocated()
    xlink = CrossShardLink(sim, boundary, rate_bps=1e6, delay_s=0.01,
                           dst_shard=0, name="x")
    with pytest.raises(NotImplementedError, match="AQM"):
        xlink.set_aqm(object())
    with pytest.raises(NotImplementedError, match="CrossShardLinkExit"):
        xlink.connect(lambda p: None)
    with pytest.raises(RuntimeError, match="boundary"):
        xlink.receiver(_packet(0))


# -- promotion chain across a real shard boundary --------------------------


def _build_burst_shard(spec):
    """Shard 0 bursts packets into a rate-limited cross link; shard 1
    records arrival times at the exit."""
    shard = spec["shard"]
    sim = Simulator(3)
    boundary = ShardBoundary(sim, shard, 2)
    out = {}
    if shard == 0:
        xlink = CrossShardLink(sim, boundary, rate_bps=1e6, delay_s=0.03,
                               dst_shard=1, queue_packets=8, name="burst")
        for i in range(4):
            sim.at(0.0, xlink.send, _packet(i))
        out["link"] = xlink
    else:
        log = []
        CrossShardLinkExit(sim, boundary, "burst",
                           lambda p, log=log: log.append((sim.now, p.seq)))
        out["log"] = log

    def harvest(host):
        if "link" in out:
            return {"crossed": out["link"].crossed,
                    "delivered": out["link"].delivered}
        return {"log": out["log"]}

    return ShardHost(sim, boundary, harvest=harvest)


def test_cross_shard_burst_promotion_chain():
    # The hazard: with delivery happening in another shard, nothing in
    # shard 0's heap would ever promote the queued packets unless the
    # link arms its own wake-up per serialization. Four queued packets
    # must serialize back to back: arrivals at 10k ms + 30 ms (shard 1).
    specs = [{"shard": s} for s in range(2)]
    sharded = ShardedSimulator(_build_burst_shard, specs)
    results = sharded.run(until=1.0)
    merged = {}
    for r in results:
        merged.update(r)
    assert merged["crossed"] == merged["delivered"] == 4
    # written as the link computes them (done + delay on accumulated
    # done-times), which equals k*0.01 + 0.03 exactly for these values
    assert merged["log"] == [((k + 1) * 0.01 + 0.03, k) for k in range(4)]
    # lookahead came from the link's propagation delay
    assert sharded.lookahead_s == 0.03
