"""Result tables: what every benchmark prints.

A :class:`ResultTable` is the bridge between an experiment run and the
row/series format EXPERIMENTS.md records: named columns, typed rows, and
a fixed-width text rendering that the bench harness prints.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence


class ResultTable:
    """Ordered columns, appended rows, text rendering."""

    def __init__(self, title: str, columns: Sequence[str]) -> None:
        if not columns:
            raise ValueError("a table needs at least one column")
        if len(set(columns)) != len(columns):
            raise ValueError("duplicate column names")
        self.title = title
        self.columns = list(columns)
        self.rows: List[Dict[str, Any]] = []

    def add_row(self, **values: Any) -> None:
        """Append a row; keys must exactly match the columns."""
        missing = set(self.columns) - set(values)
        extra = set(values) - set(self.columns)
        if missing or extra:
            raise ValueError(
                f"row mismatch for {self.title!r}: missing={sorted(missing)} "
                f"extra={sorted(extra)}")
        self.rows.append(dict(values))

    def column(self, name: str) -> List[Any]:
        """All values of one column, in row order."""
        if name not in self.columns:
            raise KeyError(f"no column {name!r} in {self.title!r}")
        return [row[name] for row in self.rows]

    @staticmethod
    def _fmt(value: Any) -> str:
        if isinstance(value, float):
            if value == 0:
                return "0"
            if abs(value) >= 1000 or abs(value) < 0.01:
                return f"{value:.3g}"
            return f"{value:.3f}".rstrip("0").rstrip(".")
        return str(value)

    def render(self) -> str:
        """Fixed-width text table with the title as a header."""
        cells = [[self._fmt(row[c]) for c in self.columns] for row in self.rows]
        widths = [max(len(c), *(len(r[i]) for r in cells)) if cells else len(c)
                  for i, c in enumerate(self.columns)]
        def line(parts: List[str]) -> str:
            return "  ".join(p.ljust(w) for p, w in zip(parts, widths)).rstrip()
        out = [self.title, "=" * len(self.title), line(self.columns),
               line(["-" * w for w in widths])]
        out.extend(line(r) for r in cells)
        return "\n".join(out)

    def __len__(self) -> int:
        return len(self.rows)
