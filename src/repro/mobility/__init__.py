"""Client mobility: movement models and handover triggering.

§4.2's mobility story is architectural (endpoint transports vs MME
tunnel-juggling), but both sides need the same physical inputs: clients
that move, and an A3-style measurement rule that decides *when* the
client should change APs. This package provides both; the per-
architecture *consequences* of a handover (path switch vs re-attach +
transport migration) live with the architectures in ``repro.core``.
"""

from repro.mobility.models import LinearMover, RandomWaypointMover
from repro.mobility.handover import A3HandoverTrigger, dwell_time_s

__all__ = [
    "LinearMover",
    "RandomWaypointMover",
    "A3HandoverTrigger",
    "dwell_time_s",
]
