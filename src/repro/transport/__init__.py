"""Endpoint transport: TCP-like and QUIC-like connections over the substrate.

§4.2 of the paper stakes dLTE's mobility story on modern transports:
"current-generation transport protocols make this approach more feasible
than it was in the past, incorporating zero RTT secure flow resumption,
… and multiple IP address support for client managed handoff."

We implement both generations as event-level protocols over the simulated
IP network — real packets, acks, congestion windows, retransmission
timers — differing exactly where the paper says they differ:

* :class:`TcpConnection` — 2-RTT setup (TCP+TLS1.3 handshakes), cumulative
  acks, Reno congestion control, and **death on address change**: the
  4-tuple names the connection, so a dLTE re-attach forces RTO detection
  plus a full re-handshake and slow-start.
* :class:`QuicConnection` — 1-RTT fresh setup, **0-RTT resumption** to
  known servers, and **connection-ID addressing**: the connection survives
  an address change; only the congestion state resets (RFC 9000 behaviour).
"""

from repro.transport.base import (
    ConnectionState,
    Listener,
    TransportConnection,
    TransportDemux,
)
from repro.transport.quic import QuicConnection, QuicListener
from repro.transport.tcp import TcpConnection, TcpListener
from repro.transport.apps import BulkTransferApp, RequestResponseApp

__all__ = [
    "ConnectionState",
    "TransportConnection",
    "TransportDemux",
    "Listener",
    "TcpConnection",
    "TcpListener",
    "QuicConnection",
    "QuicListener",
    "BulkTransferApp",
    "RequestResponseApp",
]
