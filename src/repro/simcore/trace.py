"""Event tracing: see what a simulation did without print-debugging.

A :class:`Tracer` is a bounded, filterable record of annotated events.
Components call ``sim.trace("category", "message", key=value, ...)``;
with no tracer installed the call is a near-free no-op, so production
runs pay nothing. Tests and debugging sessions install a tracer, run,
and query by category/time/field.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, Iterable, List, Optional


@dataclass(frozen=True)
class TraceEvent:
    """One recorded event."""

    time_s: float
    category: str
    message: str
    fields: Dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        extras = " ".join(f"{k}={v}" for k, v in sorted(self.fields.items()))
        return (f"[{self.time_s:12.6f}] {self.category}: {self.message}"
                + (f" ({extras})" if extras else ""))


class Tracer:
    """A bounded trace buffer with category filtering.

    Args:
        max_events: ring-buffer capacity (oldest events drop first).
        categories: if given, only these categories are recorded.
    """

    def __init__(self, max_events: int = 100_000,
                 categories: Optional[Iterable[str]] = None) -> None:
        if max_events < 1:
            raise ValueError("need room for at least one event")
        self._events: Deque[TraceEvent] = deque(maxlen=max_events)
        self._categories = frozenset(categories) if categories else None
        self.recorded = 0
        self.filtered = 0

    def record(self, time_s: float, category: str, message: str,
               **fields: Any) -> None:
        """Append an event (subject to the category filter)."""
        if self._categories is not None and category not in self._categories:
            self.filtered += 1
            return
        self.recorded += 1
        self._events.append(TraceEvent(time_s=time_s, category=category,
                                       message=message, fields=fields))

    # -- queries --------------------------------------------------------------------

    def events(self, category: Optional[str] = None,
               since_s: float = float("-inf"),
               until_s: float = float("inf")) -> List[TraceEvent]:
        """Events matching the filters, in arrival order."""
        return [e for e in self._events
                if (category is None or e.category == category)
                and since_s <= e.time_s <= until_s]

    def count(self, category: Optional[str] = None) -> int:
        """Number of retained events in a category (all if None)."""
        return len(self.events(category))

    def categories(self) -> List[str]:
        """Distinct categories seen, sorted."""
        return sorted({e.category for e in self._events})

    def dump(self, category: Optional[str] = None) -> str:
        """Human-readable rendering of the (filtered) trace."""
        return "\n".join(str(e) for e in self.events(category))

    def clear(self) -> None:
        """Drop all retained events (counters keep running)."""
        self._events.clear()

    def __len__(self) -> int:
        return len(self._events)
