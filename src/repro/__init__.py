"""dLTE reproduction: a distributed, WiFi-like LTE architecture.

This package is a from-scratch, laptop-scale reproduction of

    Johnson, Sevilla, Jang, Heimerl.
    "dLTE: Building a more WiFi-like Cellular Network
    (Instead of the Other Way Around)". HotNets-XVII, 2018.

It contains a discrete-event simulation of the full dLTE architecture
(local EPC stubs, an open spectrum registry, peer-to-peer X2 coordination,
endpoint-managed mobility) together with the baselines the paper compares
against (centralized carrier LTE, legacy independent-AP WiFi, and private
LTE), and an experiment harness that turns every quantified claim in the
paper into a measurable result.

Quickstart::

    from repro import DLTENetwork, RuralTown

    town = RuralTown(radius_m=1500, n_ues=40, seed=1)
    net = DLTENetwork.build(town)
    report = net.run(duration_s=10.0)
    print(report.summary())

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record.
"""

from repro.simcore import Simulator
from repro.core.network import (
    CentralizedLTENetwork,
    DLTENetwork,
    PrivateLTENetwork,
    WiFiNetwork,
)
from repro.core.report import NetworkReport
from repro.workloads.topology import FarmCorridor, RuralTown

__version__ = "1.0.0"

__all__ = [
    "Simulator",
    "DLTENetwork",
    "CentralizedLTENetwork",
    "WiFiNetwork",
    "PrivateLTENetwork",
    "NetworkReport",
    "RuralTown",
    "FarmCorridor",
    "__version__",
]
