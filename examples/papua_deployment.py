#!/usr/bin/env python
"""The §5 deployment, recreated: one dLTE site covering a Papua town.

"We have deployed a standalone network in partnership with a rural
school in Papua, Indonesia. … One site covers the entire town, and is
deployed on the gym where power and backhaul were available. The
deployment cost less than $8000 in materials."

This script prices the bill of materials, checks the coverage radius
against the town, brings the site up (license, stub, users with
published e-SIM keys), and runs the data-only OTT workload the real
deployment carries (web + WhatsApp-style messaging + video).

Run:  python examples/papua_deployment.py
"""

from repro import DLTENetwork, RuralTown
from repro.deploy import dlte_site_plan
from repro.experiments.e3_range import max_usable_range
from repro.workloads import CbrSource, VideoStreamSource, WebSessionSource


def main() -> None:
    # -- the economics (E12) ------------------------------------------------
    plan = dlte_site_plan(sectors=2)
    print("Site bill of materials:")
    for item in plan.bom:
        print(f"  {item.quantity} x {item.name}: ${item.total_usd:,.0f}")
    print(f"  TOTAL: ${plan.capex_usd:,.0f} "
          f"(paper: 'less than $8000 in materials')\n")

    # -- the physics (E3) ------------------------------------------------------
    reach_km = max_usable_range("lte5", True, 43.0, 15.0) / 1000.0
    town = RuralTown(radius_m=1800, n_ues=30, n_aps=1, seed=7,
                     backhaul_delay_s=0.040)  # rural ISP, one hop to a POP
    print(f"Band 5 usable range from the gym roof: {reach_km:.1f} km; "
          f"the town radius is {town.radius_m/1000:g} km -> one site "
          f"covers everything.\n")

    # -- the network -------------------------------------------------------------
    network = DLTENetwork.build(town, band_name="lte5", seed=7)
    report = network.run(duration_s=10.0)
    print(report.summary())

    # -- the data-only OTT workload (voice/messaging are apps, not telecom) ----
    sim = network.sim
    demand_bytes = {"web": 0, "messaging": 0, "video": 0}

    def sink(kind):
        def emit(n_bytes: int) -> None:
            demand_bytes[kind] += n_bytes
        return emit

    sources = [
        WebSessionSource(sim, sink("web"), mean_page_bytes=800_000,
                         mean_think_s=20.0, name="web"),
        CbrSource(sim, sink("messaging"), rate_bps=16_000, name="whatsapp"),
        VideoStreamSource(sim, sink("video"), bitrate_bps=1.2e6,
                          name="video"),
    ]
    for source in sources:
        source.start()
    sim.run(until=sim.now + 300.0)

    print("\n5 minutes of OTT demand at the site:")
    for kind, total in sorted(demand_bytes.items()):
        print(f"  {kind}: {total/1e6:.1f} MB")
    mean_mbps = report.mean_throughput_bps / 1e6
    print(f"\nPer-user downlink averages {mean_mbps:.1f} Mbps — "
          f"comfortable for a data-only town network with voice and "
          f"messaging as over-the-top services.")


if __name__ == "__main__":
    main()
