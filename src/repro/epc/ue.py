"""UE control plane: the SIM side of attach.

A stock UE runs the same procedure against a carrier MME or a dLTE stub
— the paper's backwards-compatibility requirement ("maintain
compatibility between the dLTE access point and standard clients",
§4.1). The UE verifies AUTN (mutual authentication), answers the
challenge, and records attach timing for E7.
"""

from __future__ import annotations

import enum
from typing import Callable, Optional

from repro.epc.agents import ControlAgent, ControlChannel, ControlMessage
from repro.epc.crypto import ue_compute_response, ue_verify_network
from repro.epc.nas import (
    AttachAccept,
    AttachComplete,
    AttachReject,
    AttachRequest,
    AuthenticationReject,
    AuthenticationRequest,
    AuthenticationResponse,
    DetachRequest,
    Paging,
    PathSwitchAck,
    SecurityModeCommand,
    SecurityModeComplete,
    ServiceAccept,
    ServiceRequest,
    UeContextRelease,
)
from repro.epc.subscriber import SubscriberProfile
from repro.net.addressing import IPv4Address
from repro.simcore.simulator import Simulator


class UeState(enum.Enum):
    """UE NAS state."""

    IDLE = "idle"
    ATTACHING = "attaching"
    ATTACHED = "attached"
    REJECTED = "rejected"


class UserEquipment(ControlAgent):
    """The control-plane side of a handset."""

    #: class defaults so the ``state`` property works during __init__;
    #: the observer hook is how the invariant checker audits NAS
    #: transition legality without touching the uninstrumented path
    #: (one attribute test per state change, zero per-event cost).
    _state = UeState.IDLE
    _state_observer: Optional[Callable[["UserEquipment", "UeState",
                                        "UeState"], None]] = None

    @property
    def state(self) -> UeState:
        """Current NAS state; assignments notify any installed observer."""
        return self._state

    @state.setter
    def state(self, value: UeState) -> None:
        observer = self._state_observer
        if observer is not None:
            observer(self, self._state, value)
        self._state = value

    def __init__(self, sim: Simulator, profile: SubscriberProfile,
                 name: Optional[str] = None,
                 service_time_s: float = 0.1e-3) -> None:
        super().__init__(sim, name or f"ue-{profile.imsi[-6:]}",
                         service_time_s)
        self.profile = profile
        self.state = UeState.IDLE
        self.air: Optional[ControlChannel] = None
        self.ue_address: Optional[IPv4Address] = None
        self.guti = ""
        #: challenges already answered. dLTE clients roam between
        #: *independent* cores whose SQN counters do not relate, so the
        #: replay guard is nonce-based: a (RAND) pair may only ever be
        #: accepted once. (Carrier AKA uses monotone SQN instead; both
        #: prevent replaying a recorded challenge.)
        self._seen_rands: set = set()
        # timing
        self.attach_started_at: Optional[float] = None
        self.attach_completed_at: Optional[float] = None
        # retry machinery (supervised attach; see start_attach_with_retry)
        self.attach_attempts = 0
        self.attach_retries_exhausted = 0
        self._attach_outcome = None  # Event the retry loop waits on
        #: T3346 analogue: the backoff the network assigned with its
        #: last congestion reject; the retry loop honors it as a floor.
        self.server_backoff_s = 0.0
        self.congestion_rejects = 0
        self.on_attached: Optional[Callable[["UserEquipment"], None]] = None
        self.on_rejected: Optional[Callable[["UserEquipment", str], None]] = None
        self.on_service_resumed: Optional[
            Callable[["UserEquipment"], None]] = None
        self.network_auth_failures = 0
        # ECM state (idle-mode modelling)
        self.ecm_connected = True
        self.went_idle_at: Optional[float] = None
        self.service_resumed_at: Optional[float] = None
        self.pages_received = 0
        metrics = sim.metrics
        self._m_attach_s = metrics.histogram("nas.attach.latency_s")
        self._m_attempts = metrics.counter("nas.attach.attempts")
        self._m_rejects = metrics.counter("nas.attach.rejected")
        self._m_pages = metrics.counter("nas.pages_received")
        #: the end-to-end nas.attach span for the attempt in flight
        self._attach_span = None

    @property
    def ue_id(self) -> str:
        """Stable procedure correlation id."""
        return self.name

    @property
    def attach_latency_s(self) -> Optional[float]:
        """Attach duration, or None if not (yet) attached."""
        if self.attach_started_at is None or self.attach_completed_at is None:
            return None
        return self.attach_completed_at - self.attach_started_at

    def connect_air(self, channel: ControlChannel) -> None:
        """Bind the RRC/air channel toward the serving eNodeB."""
        self.air = channel

    # -- procedures ---------------------------------------------------------------

    def start_attach(self) -> None:
        """Kick off the EPS attach."""
        if self.air is None:
            raise RuntimeError(f"{self.name}: no air channel (out of coverage)")
        self.state = UeState.ATTACHING
        self.attach_started_at = self.sim.now
        self.attach_completed_at = None
        self._m_attempts.inc()
        self._end_attach_span(status="superseded")
        self._attach_span = self.sim.span("nas.attach", ue=self.ue_id)
        self.air.send(self, AttachRequest(ue_id=self.ue_id,
                                          imsi=self.profile.imsi))

    def _end_attach_span(self, status: str, **attrs) -> None:
        span = self._attach_span
        if span is not None:
            self._attach_span = None
            span.end(status=status, **attrs)

    def start_attach_with_retry(self, max_attempts: int = 8,
                                timeout_s: float = 2.0,
                                base_backoff_s: float = 0.5,
                                max_backoff_s: float = 16.0,
                                jitter_frac: float = 0.25) -> "Process":  # noqa: F821
        """Attach under supervision: retry on rejection or silence.

        Each attempt is given ``timeout_s`` to complete (the T3410
        analogue); a failed or unanswered attempt backs off
        exponentially — ``base_backoff_s * 2^k`` capped at
        ``max_backoff_s`` — plus deterministic per-UE jitter drawn from
        the simulator's named RNG, so a whole town retrying after an AP
        restart does not thundering-herd the stub. Out-of-coverage UEs
        (no air channel yet) keep waiting through the same backoff until
        coverage returns. Returns the supervising process.
        """
        if max_attempts < 1:
            raise ValueError("need at least one attach attempt")
        return self.sim.process(
            self._attach_retry_loop(max_attempts, timeout_s, base_backoff_s,
                                    max_backoff_s, jitter_frac),
            name=f"attach-retry:{self.name}")

    def _attach_retry_loop(self, max_attempts: int, timeout_s: float,
                           base_backoff_s: float, max_backoff_s: float,
                           jitter_frac: float):
        rng = self.sim.rng(f"nas-backoff:{self.name}")
        backoff = base_backoff_s
        for attempt in range(max_attempts):
            self.server_backoff_s = 0.0
            if self.air is not None:
                self.attach_attempts += 1
                outcome = self.sim.event(f"attach-outcome:{self.name}")
                self._attach_outcome = outcome
                self.start_attach()
                yield self.sim.any_of([outcome,
                                       self.sim.timeout(timeout_s)])
                self._attach_outcome = None
                if self.state is UeState.ATTACHED:
                    return
            if attempt == max_attempts - 1:
                break
            # the server-assigned T3346 timer (congestion reject) floors
            # the local exponential backoff; jitter scales with the wait
            # actually taken, so a refused crowd spreads over the whole
            # assigned window instead of returning in one wave.
            wait = backoff
            if self.server_backoff_s > wait:
                wait = self.server_backoff_s
            jitter = float(rng.uniform(0.0, jitter_frac * wait))
            self.sim.trace("nas", f"{self.name}: attach retry backoff",
                           attempt=attempt + 1, backoff_s=wait + jitter)
            yield self.sim.timeout(wait + jitter)
            backoff = min(backoff * 2.0, max_backoff_s)
        self.attach_retries_exhausted += 1
        self.sim.trace("nas", f"{self.name}: attach retries exhausted",
                       attempts=self.attach_attempts)

    def _settle_attach(self) -> None:
        """Wake the retry supervisor (if any) on a terminal NAS outcome."""
        outcome = self._attach_outcome
        if outcome is not None and not outcome.triggered:
            outcome.succeed(self.state)

    def radio_lost(self) -> None:
        """The serving cell vanished (AP crash, out of coverage).

        NAS state collapses to IDLE: the bearer, address, and RRC
        connection are gone with the cell. A retry supervisor keeps
        waiting for coverage; a fresh attach needs a new air channel.
        """
        self.air = None
        self.state = UeState.IDLE
        self.ue_address = None
        self.ecm_connected = True
        self._end_attach_span(status="radio-lost")
        self._settle_attach()

    def detach(self) -> None:
        """Leave the network, releasing the bearer."""
        if self.state is UeState.ATTACHED and self.air is not None:
            self.air.send(self, DetachRequest(ue_id=self.ue_id))
        self.state = UeState.IDLE
        self.ue_address = None

    def go_idle(self) -> None:
        """Release the RRC connection (battery save); stays attached."""
        if self.state is not UeState.ATTACHED:
            raise RuntimeError("only an attached UE can go idle")
        if not self.ecm_connected:
            return
        self.ecm_connected = False
        self.went_idle_at = self.sim.now
        self.service_resumed_at = None
        self.air.send(self, UeContextRelease(ue_id=self.ue_id))

    # -- NAS handling ------------------------------------------------------------------

    def handle(self, message: ControlMessage) -> None:
        payload = message.payload
        if isinstance(payload, AuthenticationRequest):
            self._on_auth_request(payload)
        elif isinstance(payload, SecurityModeCommand):
            self.air.send(self, SecurityModeComplete(ue_id=self.ue_id))
        elif isinstance(payload, AttachAccept):
            self._on_attach_accept(payload)
        elif isinstance(payload, (AttachReject, AuthenticationReject)):
            backoff_s = getattr(payload, "backoff_s", 0.0)
            if backoff_s > 0.0:
                self.server_backoff_s = backoff_s
                self.congestion_rejects += 1
            self.state = UeState.REJECTED
            self._m_rejects.inc()
            self._end_attach_span(
                status="rejected", cause=getattr(payload, "cause", "rejected"))
            self._settle_attach()
            if self.on_rejected is not None:
                self.on_rejected(self, getattr(payload, "cause", "rejected"))
        elif isinstance(payload, Paging):
            self._on_paging()
        elif isinstance(payload, ServiceAccept):
            self._on_service_accept()
        elif isinstance(payload, PathSwitchAck):
            pass  # handover confirmed; nothing to do at NAS level

    def _on_auth_request(self, request: AuthenticationRequest) -> None:
        # Mutual auth: refuse networks that cannot prove knowledge of K,
        # and refuse replayed challenges.
        fresh = request.rand not in self._seen_rands
        if not fresh or not ue_verify_network(
                self.profile.key, request.rand, request.autn,
                sqn=request.sqn):
            self.network_auth_failures += 1
            self.state = UeState.REJECTED
            self._m_rejects.inc()
            self._end_attach_span(status="rejected", cause="network-auth")
            self._settle_attach()
            if self.on_rejected is not None:
                cause = ("replayed-challenge" if not fresh
                         else "network-auth-failure")
                self.on_rejected(self, cause)
            return
        self._seen_rands.add(request.rand)
        res = ue_compute_response(self.profile.key, request.rand)
        self.air.send(self, AuthenticationResponse(ue_id=self.ue_id, res=res))

    def _on_paging(self) -> None:
        self.pages_received += 1
        self._m_pages.inc()
        if not self.ecm_connected and self.state is UeState.ATTACHED:
            self.air.send(self, ServiceRequest(ue_id=self.ue_id))

    def _on_service_accept(self) -> None:
        if not self.ecm_connected:
            self.ecm_connected = True
            self.service_resumed_at = self.sim.now
            if self.on_service_resumed is not None:
                self.on_service_resumed(self)

    def _on_attach_accept(self, accept: AttachAccept) -> None:
        self.ue_address = accept.ue_address
        self.guti = accept.guti
        self.state = UeState.ATTACHED
        self.attach_completed_at = self.sim.now
        self._m_attach_s.observe(self.attach_completed_at
                                 - self.attach_started_at)
        self._end_attach_span(status="ok")
        self.air.send(self, AttachComplete(ue_id=self.ue_id))
        self._settle_attach()
        if self.on_attached is not None:
            self.on_attached(self)
