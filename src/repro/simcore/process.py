"""Generator-based cooperative processes.

Protocol code (attach procedures, handover sequences, traffic sources)
reads far more naturally as a coroutine than as a callback chain::

    def attach(self):
        yield self.sim.timeout(0.01)            # radio setup
        reply = yield self.send_and_wait(msg)   # wait on an Event
        ...

A :class:`Process` drives such a generator: each yielded :class:`Event`
suspends the process until the event triggers; the event's value is sent
back into the generator (or its exception thrown in). A process is itself
an Event, succeeding with the generator's return value, so processes
compose (a parent can ``yield`` a child).
"""

from __future__ import annotations

from typing import Generator

from repro.simcore.events import Event


class ProcessKilled(Exception):
    """Thrown into a process generator by :meth:`Process.kill`."""


class Process(Event):
    """Runs a generator, suspending on yielded events."""

    __slots__ = ("_gen", "_waiting_on")

    def __init__(self, sim: "Simulator", gen: Generator, name: str = "") -> None:  # noqa: F821
        super().__init__(sim, name=name or getattr(gen, "__name__", "process"))
        self._gen = gen
        self._waiting_on: Event | None = None
        sim.call_soon(self._resume, None)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return not self.triggered

    def kill(self, reason: str = "") -> None:
        """Throw :class:`ProcessKilled` into the process at the current time.

        A process may catch the exception to clean up; if it does not, the
        process event *fails* with the ProcessKilled.
        """
        if self.triggered:
            return
        self.sim.call_soon(self._throw, ProcessKilled(reason or self.name))

    # -- driving the generator ---------------------------------------------

    def _resume(self, _trigger: object) -> None:
        if self.triggered:
            return
        self._step(lambda: self._gen.send(None))

    def _on_event(self, event: Event) -> None:
        if self.triggered:
            return
        self._waiting_on = None
        if event.ok:
            self._step(lambda: self._gen.send(event.value))
        else:
            exc = event.exception or RuntimeError("event failed without exception")
            self._step(lambda: self._gen.throw(exc))

    def _throw(self, exc: BaseException) -> None:
        if self.triggered:
            return
        if self._waiting_on is not None:
            self._waiting_on = None
        self._step(lambda: self._gen.throw(exc))

    def _step(self, advance) -> None:
        try:
            target = advance()
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except ProcessKilled as killed:
            self.fail(killed)
            return
        except Exception as exc:
            self.fail(exc)
            return
        if not isinstance(target, Event):
            self._gen.close()
            self.fail(TypeError(
                f"process {self.name!r} yielded {target!r}; processes may "
                f"only yield simcore Events (e.g. sim.timeout(...))"))
            return
        self._waiting_on = target
        target.add_callback(self._on_event)

    def __repr__(self) -> str:
        state = "alive" if self.is_alive else ("ok" if self.ok else "failed")
        return f"<Process {self.name!r} {state}>"
