"""Unit tests for traffic sources, topologies, and mobility."""

import math

import pytest

from repro.enodeb.cell import Cell
from repro.geo import Point
from repro.mobility import (
    A3HandoverTrigger,
    LinearMover,
    RandomWaypointMover,
    dwell_time_s,
)
from repro.phy import LinkBudget, OkumuraHata, Radio, get_band
from repro.simcore import Simulator
from repro.workloads import (
    CbrSource,
    FarmCorridor,
    OnOffSource,
    PoissonSource,
    RuralTown,
    VideoStreamSource,
    WebSessionSource,
)


@pytest.fixture
def sim():
    return Simulator(seed=0)


# -- traffic --------------------------------------------------------------------

def test_cbr_rate(sim):
    emitted = []
    src = CbrSource(sim, emitted.append, rate_bps=96_000, packet_bytes=1200)
    src.start()
    sim.run(until=10)
    # 96 kbps = 10 packets/s of 1200 B
    assert len(emitted) == 100
    assert src.bytes_emitted == 120_000


def test_cbr_stop(sim):
    src = CbrSource(sim, lambda b: None, rate_bps=8000)
    src.start()
    sim.run(until=1)
    src.stop()
    count = src.bursts_emitted
    sim.run(until=5)
    assert src.bursts_emitted == count


def test_cbr_double_start_rejected(sim):
    src = CbrSource(sim, lambda b: None, rate_bps=8000)
    src.start()
    with pytest.raises(RuntimeError):
        src.start()


def test_poisson_mean_rate(sim):
    emitted = []
    src = PoissonSource(sim, emitted.append, rate_pps=50)
    src.start()
    sim.run(until=20)
    assert 800 < len(emitted) < 1200  # ~1000 expected


def test_onoff_bursts(sim):
    src = OnOffSource(sim, lambda b: None, on_rate_bps=1e6,
                      mean_on_s=1.0, mean_off_s=1.0)
    src.start()
    sim.run(until=30)
    # roughly half duty cycle at 1 Mbps
    assert 0.2e6 / 8 * 30 < src.bytes_emitted < 0.8e6 / 8 * 30


def test_web_sessions_heavy_tailed(sim):
    sizes = []
    src = WebSessionSource(sim, sizes.append, mean_page_bytes=1_000_000,
                           mean_think_s=5.0)
    src.start()
    sim.run(until=600)
    assert len(sizes) > 50
    assert max(sizes) > 3 * (sum(sizes) / len(sizes))  # a heavy tail


def test_video_segments(sim):
    sizes = []
    src = VideoStreamSource(sim, sizes.append, bitrate_bps=2e6, segment_s=4)
    src.start()
    sim.run(until=40)
    # first segment at t=0, then every 4 s through t=40 inclusive
    assert len(sizes) == 11
    assert all(s == int(2e6 * 4 / 8) for s in sizes)


def test_sources_validate():
    sim = Simulator(0)
    with pytest.raises(ValueError):
        CbrSource(sim, lambda b: None, rate_bps=0)
    with pytest.raises(ValueError):
        PoissonSource(sim, lambda b: None, rate_pps=-1)
    with pytest.raises(ValueError):
        OnOffSource(sim, lambda b: None, on_rate_bps=1e6, mean_on_s=0)
    with pytest.raises(ValueError):
        VideoStreamSource(sim, lambda b: None, bitrate_bps=-5)


# -- topologies --------------------------------------------------------------------

def test_rural_town_single_site_at_center():
    town = RuralTown(radius_m=1500, n_ues=20, n_aps=1, seed=1)
    assert town.ap_positions() == [Point(0, 0)]
    ues = town.ue_positions()
    assert len(ues) == 20
    assert all(Point(0, 0).distance_to(u) <= 1500 for u in ues)


def test_rural_town_multi_site_ring():
    town = RuralTown(radius_m=2000, n_ues=5, n_aps=4, seed=1)
    aps = town.ap_positions()
    assert len(aps) == 4
    assert aps[0] == Point(0, 0)
    for ap in aps[1:]:
        assert Point(0, 0).distance_to(ap) == pytest.approx(1200, rel=0.01)


def test_rural_town_seed_reproducible():
    a = RuralTown(n_ues=10, seed=7).ue_positions()
    b = RuralTown(n_ues=10, seed=7).ue_positions()
    assert a == b


def test_rural_town_validates():
    with pytest.raises(ValueError):
        RuralTown(radius_m=0)
    with pytest.raises(ValueError):
        RuralTown(n_aps=0)


def test_farm_corridor_geometry():
    corridor = FarmCorridor(n_aps=5, ap_spacing_m=2000)
    assert corridor.length_m == 8000
    aps = corridor.ap_positions()
    assert aps[0] == Point(0, 0) and aps[-1] == Point(8000, 0)
    starts = corridor.ue_starts()
    assert all(0 <= p.x <= 4000 for p in starts)


# -- movers -------------------------------------------------------------------------

def test_linear_mover_reaches_destination(sim):
    mover = LinearMover(sim, Point(0, 0), Point(100, 0), speed_m_s=10,
                        update_interval_s=0.5)
    mover.start()
    sim.run(until=20)
    assert mover.arrived
    assert mover.position == Point(100, 0)
    assert mover.distance_traveled_m == pytest.approx(100)


def test_linear_mover_speed(sim):
    positions = []
    mover = LinearMover(sim, Point(0, 0), Point(1000, 0), speed_m_s=20,
                        update_interval_s=1.0,
                        on_move=lambda p: positions.append((sim.now, p.x)))
    mover.start()
    sim.run(until=10)
    assert positions[0] == (1.0, 20.0)
    assert positions[-1] == (10.0, 200.0)


def test_linear_mover_zero_speed_stays(sim):
    mover = LinearMover(sim, Point(5, 5), Point(100, 100), speed_m_s=0)
    mover.start()
    sim.run(until=10)
    assert mover.position == Point(5, 5)


def test_random_waypoint_stays_in_area(sim):
    mover = RandomWaypointMover(sim, Point(0, 0), speed_m_s=30,
                                area_center=Point(0, 0), area_radius_m=500,
                                update_interval_s=0.5, name="rw-test")
    mover.start()
    sim.run(until=120)
    assert mover.distance_traveled_m > 100
    assert Point(0, 0).distance_to(mover.position) <= 500 + 1e-6


def test_mover_stop(sim):
    mover = LinearMover(sim, Point(0, 0), Point(1e6, 0), speed_m_s=10)
    mover.start()
    sim.run(until=5)
    mover.stop()
    frozen = mover.position
    sim.run(until=50)
    assert mover.position == frozen


def test_mover_validates(sim):
    with pytest.raises(ValueError):
        LinearMover(sim, Point(0, 0), Point(1, 0), speed_m_s=-1)
    with pytest.raises(ValueError):
        RandomWaypointMover(sim, Point(0, 0), 1, Point(0, 0), area_radius_m=0)


# -- handover trigger ----------------------------------------------------------------

def _cells_pair():
    band = get_band("lte5")
    budget = LinkBudget(OkumuraHata(environment="open"), band.dl_mhz,
                        band.bandwidth_hz)
    west = Cell("west", band, Point(0, 0), budget)
    east = Cell("east", band, Point(4000, 0), budget)
    return [west, east]


def test_dwell_time():
    assert dwell_time_s(1000, 10) == 100
    with pytest.raises(ValueError):
        dwell_time_s(0, 10)
    with pytest.raises(ValueError):
        dwell_time_s(1000, 0)


def test_a3_triggers_when_neighbor_wins():
    cells = _cells_pair()
    events = []
    trigger = A3HandoverTrigger(cells, "west", hysteresis_db=3,
                                time_to_trigger_s=0.5,
                                on_handover=lambda s, t: events.append((s, t)))
    ue = Radio(Point(500, 0), tx_power_dbm=23)
    # near west: no trigger
    assert trigger.measure(0.0, ue) is None
    # move well past the midpoint: east wins by >3 dB
    ue_far = Radio(Point(3500, 0), tx_power_dbm=23)
    assert trigger.measure(1.0, ue_far) is None      # TTT starts
    assert trigger.measure(1.2, ue_far) is None      # still within TTT
    assert trigger.measure(1.6, ue_far) == "east"    # TTT satisfied
    assert events == [("west", "east")]
    assert trigger.serving == "east"
    assert trigger.handovers == 1


def test_a3_hysteresis_blocks_midpoint_flapping():
    cells = _cells_pair()
    trigger = A3HandoverTrigger(cells, "west", hysteresis_db=3,
                                time_to_trigger_s=0.0)
    midpoint = Radio(Point(2000, 0), tx_power_dbm=23)
    for t in range(10):
        assert trigger.measure(float(t), midpoint) is None
    assert trigger.handovers == 0


def test_a3_ttt_resets_if_candidate_fades():
    cells = _cells_pair()
    trigger = A3HandoverTrigger(cells, "west", hysteresis_db=3,
                                time_to_trigger_s=1.0)
    far = Radio(Point(3500, 0), tx_power_dbm=23)
    near = Radio(Point(500, 0), tx_power_dbm=23)
    assert trigger.measure(0.0, far) is None     # candidate appears
    assert trigger.measure(0.5, near) is None    # fades: reset
    assert trigger.measure(1.1, far) is None     # TTT restarts
    assert trigger.measure(1.5, far) is None     # not yet
    assert trigger.measure(2.2, far) == "east"


def test_a3_validates():
    cells = _cells_pair()
    with pytest.raises(KeyError):
        A3HandoverTrigger(cells, "ghost")
    with pytest.raises(ValueError):
        A3HandoverTrigger(cells, "west", hysteresis_db=-1)
