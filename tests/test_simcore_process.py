"""Unit tests for generator-based processes (repro.simcore.process)."""

import pytest

from repro.simcore import ProcessKilled, Simulator


@pytest.fixture
def sim():
    return Simulator(seed=0)


def test_process_runs_and_returns(sim):
    def worker():
        yield sim.timeout(1)
        yield sim.timeout(2)
        return "finished"

    proc = sim.process(worker())
    sim.run()
    assert proc.triggered and proc.ok
    assert proc.value == "finished"
    assert sim.now == 3


def test_process_receives_event_value(sim):
    def worker():
        value = yield sim.timeout(1, value="hello")
        return value

    proc = sim.process(worker())
    sim.run()
    assert proc.value == "hello"


def test_process_sees_event_failure_as_exception(sim):
    ev = sim.event()

    def worker():
        try:
            yield ev
        except ValueError as exc:
            return f"caught {exc}"

    proc = sim.process(worker())
    sim.schedule(1, ev.fail, ValueError("oops"))
    sim.run()
    assert proc.value == "caught oops"


def test_uncaught_exception_fails_process(sim):
    def worker():
        yield sim.timeout(1)
        raise RuntimeError("exploded")

    proc = sim.process(worker())
    sim.run()
    assert proc.triggered and not proc.ok
    assert isinstance(proc.exception, RuntimeError)


def test_processes_compose(sim):
    def child():
        yield sim.timeout(2)
        return "child-result"

    def parent():
        result = yield sim.process(child())
        return f"got {result}"

    proc = sim.process(parent())
    sim.run()
    assert proc.value == "got child-result"
    assert sim.now == 2


def test_kill_interrupts_wait(sim):
    def worker():
        yield sim.timeout(100)
        return "never"

    proc = sim.process(worker(), name="victim")
    sim.schedule(1, proc.kill, "shutdown")
    sim.run(until=5)
    assert proc.triggered and not proc.ok
    assert isinstance(proc.exception, ProcessKilled)


def test_kill_can_be_caught_for_cleanup(sim):
    cleaned = []

    def worker():
        try:
            yield sim.timeout(100)
        except ProcessKilled:
            cleaned.append(sim.now)
            return "cleaned-up"

    proc = sim.process(worker())
    sim.schedule(3, proc.kill)
    sim.run(until=10)
    assert cleaned == [3]
    assert proc.ok and proc.value == "cleaned-up"


def test_kill_after_completion_is_noop(sim):
    def worker():
        yield sim.timeout(1)
        return "done"

    proc = sim.process(worker())
    sim.run()
    proc.kill()
    sim.run()
    assert proc.ok and proc.value == "done"


def test_yielding_non_event_fails_process(sim):
    def worker():
        yield 42

    proc = sim.process(worker())
    sim.run()
    assert not proc.ok
    assert isinstance(proc.exception, TypeError)


def test_is_alive_lifecycle(sim):
    def worker():
        yield sim.timeout(5)

    proc = sim.process(worker())
    assert proc.is_alive
    sim.run()
    assert not proc.is_alive


def test_process_waiting_on_any_of(sim):
    def worker():
        winner = yield sim.any_of([sim.timeout(5, "slow"), sim.timeout(1, "quick")])
        return winner.value

    proc = sim.process(worker())
    sim.run(until=2)
    assert proc.value == "quick"


def test_many_processes_interleave_deterministically(sim):
    log = []

    def worker(name, period):
        for _ in range(3):
            yield sim.timeout(period)
            log.append((sim.now, name))

    sim.process(worker("a", 1.0))
    sim.process(worker("b", 1.5))
    sim.run()
    # At t=3.0 both fire; b's timeout was scheduled first (at t=1.5, before
    # a's at t=2.0) so FIFO ordering puts b ahead.
    assert log == [(1.0, "a"), (1.5, "b"), (2.0, "a"), (3.0, "b"),
                   (3.0, "a"), (4.5, "b")]
