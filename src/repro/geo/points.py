"""Immutable planar points in meters.

The reproduction models deployments at town scale (a few km), where a flat
local tangent plane is accurate to well under a meter — so positions are
plain (x, y) meters, not lat/lon.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class Point:
    """A position on the local tangent plane, in meters."""

    x: float
    y: float

    def distance_to(self, other: "Point") -> float:
        """Euclidean distance to ``other`` in meters."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def bearing_to(self, other: "Point") -> float:
        """Angle from this point to ``other``, radians in (-pi, pi]."""
        return math.atan2(other.y - self.y, other.x - self.x)

    def offset(self, dx: float, dy: float) -> "Point":
        """A new point translated by (dx, dy) meters."""
        return Point(self.x + dx, self.y + dy)

    def toward(self, other: "Point", step_m: float) -> "Point":
        """A point ``step_m`` meters from here along the line to ``other``.

        Overshooting is clamped: if ``step_m`` exceeds the distance, the
        result is ``other`` itself.
        """
        total = self.distance_to(other)
        if total <= step_m or total == 0.0:
            return other
        frac = step_m / total
        return Point(self.x + (other.x - self.x) * frac,
                     self.y + (other.y - self.y) * frac)

    def __iter__(self):
        yield self.x
        yield self.y


def distance_m(a: Point, b: Point) -> float:
    """Euclidean distance between two points, meters."""
    return a.distance_to(b)
