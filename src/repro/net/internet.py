"""The Internet core: a latency fabric between attachment points.

dLTE coordinates "directly with peer APs via the Internet" (Fig. 1) and
serves clients from OTT services across it, so the Internet itself is a
first-class substrate. We model it as one router with per-attachment
access delays: the path A->B costs A's access delay + B's access delay
(+ forwarding), which captures the triangle-free geometry of a well-
peered core without modelling individual ASes.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.net.addressing import IPv4Address
from repro.net.nodes import NetworkNode, Router
from repro.simcore.simulator import Simulator


class InternetCore(Router):
    """A single well-connected core router.

    Attach edge nodes with :meth:`attach`, giving each the one-way access
    delay from that edge into the core (e.g. 10 ms for a rural satellite-
    free fiber POP, 300 ms for GEO satellite backhaul).
    """

    def __init__(self, sim: Simulator, name: str = "internet",
                 forwarding_delay_s: float = 1e-4) -> None:
        super().__init__(sim, name, forwarding_delay_s)
        self._access_delay_s: Dict[str, float] = {}

    def attach(self, edge: NetworkNode, prefix: str,
               access_delay_s: float = 0.010,
               access_rate_bps: float = float("inf"),
               queue_packets: int = 1000) -> None:
        """Connect ``edge`` and route ``prefix`` toward it.

        Creates symmetric links carrying the access delay, and installs
        the route so any attached node can reach any prefix.
        """
        if access_delay_s < 0:
            raise ValueError("access delay must be non-negative")
        self.attach_link(edge, access_rate_bps, access_delay_s, queue_packets)
        edge.attach_link(self, access_rate_bps, access_delay_s, queue_packets)
        self.add_route(prefix, edge.name)
        self._access_delay_s[edge.name] = access_delay_s
        if isinstance(edge, Router) and edge.default_route is None:
            edge.default_route = self.name

    def rtt_between_s(self, edge_a: str, edge_b: str) -> float:
        """Round-trip time between two attached edges (for planning)."""
        try:
            one_way = (self._access_delay_s[edge_a]
                       + self._access_delay_s[edge_b]
                       + self.forwarding_delay_s)
        except KeyError as missing:
            raise KeyError(f"edge {missing} is not attached to {self.name}") from None
        return 2.0 * one_way

    def access_delay_s(self, edge: str) -> Optional[float]:
        """The configured one-way access delay for an edge, if attached."""
        return self._access_delay_s.get(edge)
