"""Bench E13 — idle-mode wake-up: TA paging vs dLTE's no-mobility-management."""

from conftest import emit, once

from repro.experiments import e13_idle_paging


def test_e13_idle_paging(benchmark):
    table = once(benchmark, e13_idle_paging.run)
    emit(table)
    carrier_rows = [row for row in table.rows
                    if row["architecture"].startswith("carrier")]
    dlte = [row for row in table.rows
            if row["architecture"].startswith("dLTE")][0]
    # paging fan-out is linear in fleet size (the TA broadcast)
    for row in carrier_rows:
        assert row["paging_messages"] == row["n_sites"]
    # dLTE sends zero pages and wakes >4x faster
    assert dlte["paging_messages"] == 0
    for row in carrier_rows:
        assert dlte["wake_latency_ms"] < row["wake_latency_ms"] / 4
    # carrier wake latency is dominated by backhaul RTTs, constant in
    # fleet size — the fan-out costs messages, not (directly) time
    latencies = [row["wake_latency_ms"] for row in carrier_rows]
    assert max(latencies) - min(latencies) < 5.0
