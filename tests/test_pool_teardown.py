"""Regression tests: no orphan workers, and worker errors stay legible.

The PR-1 incident class this guards: a Ctrl-C (or parent death) during
``--all --jobs N`` leaving fork workers running forever. The tests
drive a real child interpreter, interrupt it mid-map, and assert every
worker PID is gone. Worker exceptions must likewise surface the
*original* traceback annotated with the failing task — not a bare
``RemoteTraceback`` soup.
"""

import os
import signal
import subprocess
import sys
import textwrap
import time

import pytest

from repro.runner import WorkerTaskError, parallel_map

REPO_SRC = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")

DRIVER = textwrap.dedent("""
    import os, sys, time

    def task(arg):
        slot, pid_dir = arg
        with open(os.path.join(pid_dir, f"{slot}.pid"), "w") as fh:
            fh.write(str(os.getpid()))
        time.sleep(120)  # far longer than the test: must be torn down

    if __name__ == "__main__":
        kind, pid_dir = sys.argv[1], sys.argv[2]
        items = [(i, pid_dir) for i in range(2)]
        if kind == "parallel":
            from repro.runner import parallel_map
            parallel_map(task, items, jobs=2)
        else:
            from repro.runner import supervised_map
            supervised_map(task, items, jobs=2)
""")


def _wait_for(predicate, timeout_s=20.0, what="condition"):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.05)
    raise AssertionError(f"timed out waiting for {what}")


def _alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - exists, other owner
        return True
    return True


@pytest.mark.parametrize("kind", ["parallel", "supervised"])
def test_sigint_leaves_no_orphan_workers(tmp_path, kind):
    driver = tmp_path / "driver.py"
    driver.write_text(DRIVER)
    pid_dir = tmp_path / "pids"
    pid_dir.mkdir()
    env = dict(os.environ, PYTHONPATH=REPO_SRC)
    child = subprocess.Popen(
        [sys.executable, str(driver), kind, str(pid_dir)],
        env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
    try:
        _wait_for(lambda: len(os.listdir(pid_dir)) == 2,
                  what="both workers to start")
        worker_pids = [int((pid_dir / name).read_text())
                       for name in os.listdir(pid_dir)]
        child.send_signal(signal.SIGINT)
        child.wait(timeout=20)
        # the parent is gone; every worker must be reaped with it
        _wait_for(lambda: not any(_alive(pid) for pid in worker_pids),
                  what="workers to be reaped")
    finally:
        if child.poll() is None:
            child.kill()
            child.wait()


def _explode(item):
    raise KeyError(f"missing-{item}")


def test_parallel_map_surfaces_original_traceback():
    with pytest.raises(WorkerTaskError) as excinfo:
        parallel_map(_explode, ["seed-17", "seed-18"], jobs=2)
    err = excinfo.value
    message = str(err)
    # annotated with the failing task and the item (which names its seed)
    assert err.slot in (0, 1)
    assert "seed-17" in message or "seed-18" in message
    # and the worker-side traceback text, not a pickled wrapper
    assert err.exc_type == "KeyError"
    assert "_explode" in message
    assert "missing-seed" in message
