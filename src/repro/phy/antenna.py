"""Directional antennas: the 3GPP sector pattern.

The paper's §5 site is *sectorized*: "two commercial eNodeBs (for two
sectors), two 15dBi antennas" on one gym roof. A sector antenna trades
omnidirectional coverage for gain: the standard 3GPP TR 36.814 azimuth
pattern is

    A(theta) = -min(12 * (theta / theta_3dB)^2, A_max)

relative to boresight, with a typical 65-70 degree 3-dB beamwidth and a
20-25 dB front-to-back floor. Two back-to-back 65-degree sectors at
15 dBi cover a town with ~9 dB more EIRP toward their lobes than one
6 dBi omni — which is how a $700 antenna line-item buys kilometers of
extra radius.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.geo.points import Point


def _wrap_angle(angle_rad: float) -> float:
    """Wrap to (-pi, pi]."""
    wrapped = math.fmod(angle_rad + math.pi, 2 * math.pi)
    if wrapped <= 0:
        wrapped += 2 * math.pi
    return wrapped - math.pi


@dataclass(frozen=True)
class SectorAntenna:
    """A 3GPP-pattern sector antenna.

    Attributes:
        boresight_rad: pointing direction (radians, x-axis = 0).
        peak_gain_dbi: gain at boresight.
        beamwidth_rad: 3-dB beamwidth (default 65 degrees).
        front_to_back_db: maximum attenuation off the back (A_max).
    """

    boresight_rad: float
    peak_gain_dbi: float = 15.0
    beamwidth_rad: float = math.radians(65.0)
    front_to_back_db: float = 25.0

    def __post_init__(self) -> None:
        if self.beamwidth_rad <= 0:
            raise ValueError("beamwidth must be positive")
        if self.front_to_back_db < 0:
            raise ValueError("front-to-back ratio must be non-negative")

    def gain_dbi(self, toward_rad: float) -> float:
        """Gain toward an absolute direction."""
        theta = _wrap_angle(toward_rad - self.boresight_rad)
        rolloff = 12.0 * (theta / self.beamwidth_rad) ** 2
        return self.peak_gain_dbi - min(rolloff, self.front_to_back_db)

    def gain_toward(self, own_position: Point, other: Point) -> float:
        """Gain toward another point on the plane."""
        if own_position == other:
            return self.peak_gain_dbi
        return self.gain_dbi(own_position.bearing_to(other))


@dataclass(frozen=True)
class OmniAntenna:
    """An omnidirectional antenna (the WiFi/default case)."""

    peak_gain_dbi: float = 6.0

    def gain_dbi(self, toward_rad: float) -> float:
        """Same gain everywhere."""
        return self.peak_gain_dbi

    def gain_toward(self, own_position: Point, other: Point) -> float:
        """Same gain everywhere."""
        return self.peak_gain_dbi


def sector_boresights(n_sectors: int) -> list:
    """Evenly-spaced boresights for an ``n``-sector site (first at 0)."""
    if n_sectors < 1:
        raise ValueError("need at least one sector")
    return [2 * math.pi * i / n_sectors for i in range(n_sectors)]
