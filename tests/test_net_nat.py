"""Unit tests for the NAT gateway (repro.net.nat)."""

import ipaddress

import pytest

from repro.experiments.e15_reachability import ReachabilityHarness
from repro.net import Host, InternetCore, NatRouter, Packet, Router
from repro.simcore import Simulator

IP = ipaddress.IPv4Address


def _nat_setup(seed=0):
    sim = Simulator(seed)
    internet = InternetCore(sim)
    nat = NatRouter(sim, "nat", IP("198.51.100.1"),
                    private_prefix="192.168.0.0/24")
    internet.attach(nat, "198.51.100.0/24", access_delay_s=0.01)
    client = Host(sim, "client", IP("192.168.0.10"))
    client.connect_bidirectional(nat)
    nat.add_route("192.168.0.10/32", "client")
    nat.default_route = "internet"
    edge = Router(sim, "edge")
    internet.attach(edge, "203.0.113.0/24", access_delay_s=0.01)
    server = Host(sim, "server", IP("203.0.113.10"))
    server.connect_bidirectional(edge)
    edge.add_route("203.0.113.10/32", "server")
    return sim, nat, client, server


def test_outbound_masquerades_source():
    sim, nat, client, server = _nat_setup()
    got = []
    server.on_packet = got.append
    client.send(Packet(src=client.address, dst=server.address,
                       size_bytes=100, flow_id="f1"))
    sim.run()
    assert len(got) == 1
    assert got[0].src == nat.public_address       # private addr hidden
    assert nat.translated_out == 1
    assert nat.binding_for("f1") == client.address


def test_reply_translated_back_through_binding():
    sim, nat, client, server = _nat_setup()
    server.on_packet = lambda p: server.send(
        Packet(src=server.address, dst=p.src, size_bytes=80,
               flow_id=p.flow_id))
    got = []
    client.on_packet = got.append
    client.send(Packet(src=client.address, dst=server.address,
                       size_bytes=100, flow_id="f2"))
    sim.run()
    assert len(got) == 1
    assert got[0].dst == client.address
    assert nat.translated_in == 1


def test_unsolicited_inbound_dropped():
    sim, nat, client, server = _nat_setup()
    got = []
    client.on_packet = got.append
    server.send(Packet(src=server.address, dst=nat.public_address,
                       size_bytes=100, flow_id="cold-call"))
    sim.run()
    assert got == []
    assert nat.unsolicited_drops == 1
    assert nat.active_bindings == 0


def test_private_to_private_not_translated():
    sim, nat, client, server = _nat_setup()
    other = Host(sim, "other", IP("192.168.0.20"))
    other.connect_bidirectional(nat)
    nat.add_route("192.168.0.20/32", "other")
    got = []
    other.on_packet = got.append
    client.send(Packet(src=client.address, dst=other.address,
                       size_bytes=60, flow_id="lan"))
    sim.run()
    assert len(got) == 1
    assert got[0].src == client.address  # LAN traffic keeps its source
    assert nat.translated_out == 0


def test_bindings_accumulate_per_flow():
    sim, nat, client, server = _nat_setup()
    server.on_packet = lambda p: None
    for i in range(5):
        client.send(Packet(src=client.address, dst=server.address,
                           size_bytes=100, flow_id=f"flow{i}"))
    sim.run()
    assert nat.active_bindings == 5


def test_harness_reachable_address_semantics():
    nat_h = ReachabilityHarness(nat=True)
    open_h = ReachabilityHarness(nat=False)
    assert nat_h.client_reachable_address == nat_h.gateway.public_address
    assert open_h.client_reachable_address == open_h.client.address
