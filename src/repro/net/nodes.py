"""Forwarding nodes: hosts and longest-prefix-match routers."""

from __future__ import annotations

import ipaddress
from typing import Callable, Dict, List, Optional, Tuple, Union

from repro.net.addressing import IPv4Address
from repro.net.links import Link
from repro.net.packet import Packet
from repro.simcore.simulator import Simulator

PrefixLike = Union[str, ipaddress.IPv4Network]


class NetworkNode:
    """Base node: named, owns outgoing links, receives packets."""

    def __init__(self, sim: Simulator, name: str) -> None:
        self.sim = sim
        self.name = name
        self.links: Dict[str, Link] = {}  # neighbour name -> link
        self.received = 0

    def attach_link(self, neighbor: "NetworkNode", rate_bps: float = float("inf"),
                    delay_s: float = 0.0, queue_packets: int = 100) -> Link:
        """Create (or replace) the unidirectional link to ``neighbor``."""
        link = Link(self.sim, rate_bps, delay_s, queue_packets,
                    name=f"{self.name}->{neighbor.name}")
        link.connect(neighbor.receive)
        self.links[neighbor.name] = link
        return link

    def connect_bidirectional(self, other: "NetworkNode",
                              rate_bps: float = float("inf"),
                              delay_s: float = 0.0,
                              queue_packets: int = 100) -> Tuple[Link, Link]:
        """Symmetric links both ways; returns (out_link, in_link)."""
        out = self.attach_link(other, rate_bps, delay_s, queue_packets)
        back = other.attach_link(self, rate_bps, delay_s, queue_packets)
        return out, back

    def receive(self, packet: Packet) -> None:
        """Entry point for packets arriving on any inbound link."""
        self.received += 1
        packet.record_hop(self.name)
        self.handle(packet)

    def handle(self, packet: Packet) -> None:
        """Node-specific processing; default drops silently-but-counted."""

    def send_via(self, neighbor_name: str, packet: Packet) -> bool:
        """Push a packet onto the link toward a named neighbour."""
        try:
            link = self.links[neighbor_name]
        except KeyError:
            raise KeyError(
                f"{self.name} has no link to {neighbor_name!r}; "
                f"neighbours: {sorted(self.links)}") from None
        return link.send(packet)

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name}>"


class Host(NetworkNode):
    """An endpoint with one or more addresses and an application callback."""

    def __init__(self, sim: Simulator, name: str,
                 address: Optional[IPv4Address] = None) -> None:
        super().__init__(sim, name)
        self.addresses: List[IPv4Address] = [address] if address else []
        self.on_packet: Optional[Callable[[Packet], None]] = None
        self.default_gateway: Optional[str] = None

    @property
    def address(self) -> Optional[IPv4Address]:
        """Primary address (first configured), or None."""
        return self.addresses[0] if self.addresses else None

    def add_address(self, address: IPv4Address) -> None:
        """Configure an additional address (multihoming / re-attach)."""
        if address not in self.addresses:
            self.addresses.append(address)

    def remove_address(self, address: IPv4Address) -> None:
        """Drop an address (e.g. on leaving an AP)."""
        self.addresses.remove(address)

    def handle(self, packet: Packet) -> None:
        if self.on_packet is not None:
            self.on_packet(packet)

    def send(self, packet: Packet) -> bool:
        """Send via the default gateway (or the only link)."""
        gateway = self.default_gateway
        if gateway is None:
            if len(self.links) != 1:
                raise RuntimeError(
                    f"{self.name}: no default gateway and {len(self.links)} links")
            gateway = next(iter(self.links))
        return self.send_via(gateway, packet)


class Router(NetworkNode):
    """Longest-prefix-match forwarding over static routes."""

    def __init__(self, sim: Simulator, name: str,
                 forwarding_delay_s: float = 20e-6) -> None:
        super().__init__(sim, name)
        self.forwarding_delay_s = forwarding_delay_s
        self._routes: List[Tuple[ipaddress.IPv4Network, str]] = []
        self.default_route: Optional[str] = None
        self.forwarded = 0
        self.no_route = 0
        # local delivery hooks, e.g. a co-located control-plane agent
        self.local_handler: Optional[Callable[[Packet], None]] = None
        self.local_addresses: List[IPv4Address] = []

    def add_route(self, prefix: PrefixLike, neighbor_name: str) -> None:
        """Install a static route; most-specific prefix wins on lookup."""
        net = ipaddress.IPv4Network(prefix)
        self._routes.append((net, neighbor_name))
        self._routes.sort(key=lambda r: r[0].prefixlen, reverse=True)

    def remove_routes_to(self, neighbor_name: str) -> int:
        """Withdraw every route via a neighbour; returns count removed."""
        before = len(self._routes)
        self._routes = [r for r in self._routes if r[1] != neighbor_name]
        return before - len(self._routes)

    def lookup(self, dst: IPv4Address) -> Optional[str]:
        """Next-hop neighbour for ``dst`` (longest match, then default)."""
        for net, neighbor in self._routes:
            if dst in net:
                return neighbor
        return self.default_route

    def handle(self, packet: Packet) -> None:
        if packet.dst in self.local_addresses and self.local_handler:
            self.local_handler(packet)
            return
        sim = self.sim
        sim.post_at(sim.now + self.forwarding_delay_s, self._forward, packet)

    def _forward(self, packet: Packet) -> None:
        if packet.dst is None:
            self.no_route += 1
            return
        neighbor = self.lookup(packet.dst)
        if neighbor is None or neighbor not in self.links:
            self.no_route += 1
            return
        self.forwarded += 1
        self.links[neighbor].send(packet)
