"""EPS-AKA authentication primitives (milenage-shaped, hash-based).

LTE authenticates by symmetric challenge-response: the HSS and the SIM
share a secret K; the network issues (RAND, AUTN) and the SIM proves
possession by returning RES. We keep the exact message/verification
structure (vector generation at the HSS, RES computation at the UE,
network authentication via AUTN) but derive the functions from SHA-256
instead of the AES-based MILENAGE f-boxes — the architecture experiments
depend on *where* keys live and *who* can verify, not on the cipher.

The paper's twist (§4.2): dLTE users *publish* K. Publication does not
change any of this math — any AP holding the published K can run the
same AKA — which is precisely why dLTE stubs interoperate with stock
SIMs.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass


def _kdf(key: bytes, label: bytes, *parts: bytes, length: int = 16) -> bytes:
    """Derive ``length`` bytes from key material with domain separation."""
    mac = hmac.new(key, label + b"".join(parts), hashlib.sha256)
    return mac.digest()[:length]


@dataclass(frozen=True)
class AuthVector:
    """One EPS authentication vector, as the HSS hands to an MME.

    Attributes:
        rand: the 16-byte challenge.
        xres: expected response (the MME compares the UE's RES to this).
        autn: network authentication token (the UE verifies this).
        kasme: derived session key anchoring the security context.
        sqn: the sequence number folded into AUTN (carried alongside
            here; the real AUTN conceals it as SQN xor AK).
    """

    rand: bytes
    xres: bytes
    autn: bytes
    kasme: bytes
    sqn: int = 0


def generate_auth_vector(key: bytes, rand: bytes, sqn: int = 0) -> AuthVector:
    """HSS side: build the vector for a challenge ``rand``.

    ``sqn`` is the sequence number folded into AUTN for replay
    protection; the reproduction keeps it explicit so tests can exercise
    stale-vector rejection.
    """
    if len(rand) != 16:
        raise ValueError("RAND must be 16 bytes")
    sqn_bytes = sqn.to_bytes(6, "big")
    xres = _kdf(key, b"f2-res", rand)
    autn = _kdf(key, b"f1-autn", rand, sqn_bytes)
    kasme = _kdf(key, b"kasme", rand, sqn_bytes, length=32)
    return AuthVector(rand=rand, xres=xres, autn=autn, kasme=kasme, sqn=sqn)


def ue_compute_response(key: bytes, rand: bytes) -> bytes:
    """SIM side: RES for a challenge (matches ``xres`` iff keys match)."""
    if len(rand) != 16:
        raise ValueError("RAND must be 16 bytes")
    return _kdf(key, b"f2-res", rand)


def ue_verify_network(key: bytes, rand: bytes, autn: bytes, sqn: int = 0) -> bool:
    """SIM side: check AUTN so the UE knows the network holds K too.

    Mutual authentication is what lets a stock handset trust a dLTE stub
    that learned K from the publication registry.
    """
    expected = _kdf(key, b"f1-autn", rand, sqn.to_bytes(6, "big"))
    return hmac.compare_digest(expected, autn)
