"""Large-scale fading: spatially-consistent lognormal shadowing.

Shadowing must be *consistent*: the same (tx, rx) pair must see the same
shadowing draw every time it is evaluated within a coherence cell,
otherwise a stationary UE would see its link flicker. We hash the pair of
grid-quantized positions into a per-link seed, so shadowing is a
deterministic field over space — two UEs behind the same hill both fade.
"""

from __future__ import annotations

import zlib

import numpy as np

from repro.geo.points import Point


class ShadowingField:
    """Deterministic lognormal shadowing field.

    Args:
        sigma_db: standard deviation of the shadowing in dB (typical macro
            values: 6-10 dB; 0 disables shadowing).
        coherence_m: grid cell size over which shadowing is constant.
        seed: field seed; different seeds give independent terrains.
    """

    def __init__(self, sigma_db: float = 8.0, coherence_m: float = 50.0,
                 seed: int = 0) -> None:
        if sigma_db < 0:
            raise ValueError("sigma must be non-negative")
        if coherence_m <= 0:
            raise ValueError("coherence distance must be positive")
        self.sigma_db = sigma_db
        self.coherence_m = coherence_m
        self.seed = seed

    def _cell(self, p: Point) -> tuple:
        return (int(p.x // self.coherence_m), int(p.y // self.coherence_m))

    def shadowing_db(self, tx: Point, rx: Point) -> float:
        """Shadowing loss (dB, signed) for the (tx, rx) link.

        Symmetric in its arguments (radio reciprocity).
        """
        if self.sigma_db == 0:
            return 0.0
        a, b = sorted([self._cell(tx), self._cell(rx)])
        key = f"{self.seed}:{a[0]},{a[1]}:{b[0]},{b[1]}".encode()
        rng = np.random.default_rng(zlib.crc32(key))
        return float(rng.normal(0.0, self.sigma_db))
