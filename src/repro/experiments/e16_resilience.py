"""E16 (extension) — §4.3/§7: resilience under identical fault schedules.

"Commodity ISP-grade hardware will be less reliable than traditional
telecom equipment" — dLTE's answer is that failure *domains* shrink: an
AP crash takes down one site's clients, while the federation's survivors
keep serving theirs and reclaim the dead AP's spectrum via the peer
monitor. A carrier network inverts the bet: each box is sturdier, but
every tunnel hairpins through one EPC site — lose that building and the
*whole town* goes dark at once.

Two arms over the same town, hit by the same-shaped fault schedule
(driven by :class:`~repro.faults.FaultInjector` on each arm's clock):

* **dLTE (federated)** — the busiest AP power-fails at ``fail_at_s`` and
  comes back ``outage_s`` later. Its clients drop; the survivors' peer
  monitors declare it dead and re-split the spectrum; on restart the AP
  replays the §4.3 lifecycle and its clients re-attach under retry
  supervision.
* **Centralized LTE** — the EPC site becomes unreachable for the same
  window (every S1 channel and the EPC gateway's uplink go down).

A probe loop pings the OTT server from every client at a fixed cadence,
yielding reachability over time, the minimum reachable fraction, probes
lost, and time-to-recover after the restore. Everything is deterministic
from ``(seed, schedule)``.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Set, Tuple

from repro.core.network import (
    SERVER_ADDR,
    CentralizedLTENetwork,
    DLTENetwork,
)
from repro.epc.ue import UeState
from repro.faults import FaultInjector, compose_scenario, prepare_scenario
from repro.metrics.tables import ResultTable
from repro.net.packet import Packet
from repro.workloads.topology import RuralTown


class _ResilienceArm:
    """One architecture under probe: send pings, tally reachability."""

    def __init__(self, name: str, net) -> None:
        self.name = name
        self.net = net
        self.sim = net.sim
        self.injector = FaultInjector(net.sim)
        self.probes_sent = 0
        self.pongs_received = 0
        self.timeline: List[Tuple[float, float]] = []  # (time, reach frac)

    def probe_round(self, window_s: float) -> float:
        """Ping the server from every addressed client; return the
        fraction of *all* clients that answered (address-less clients —
        e.g. mid-re-attach — count as unreachable)."""
        sim = self.sim
        hosts = self.net.ue_hosts
        got: Set[str] = set()

        def handler_for(ue_id: str):
            def on_packet(packet: Packet) -> None:
                payload = packet.payload
                if isinstance(payload, dict) and payload.get("kind") == "pong":
                    got.add(ue_id)
            return on_packet

        t_probe = sim.now
        for ue_id in sorted(hosts):
            host = hosts[ue_id]
            if host.address is None:
                continue
            host.on_packet = handler_for(ue_id)
            host.send(Packet(src=host.address, dst=SERVER_ADDR,
                             size_bytes=100,
                             payload={"kind": "ping", "t0": sim.now},
                             created_at=sim.now))
            self.probes_sent += 1
        sim.run(until=sim.now + window_s)
        self.pongs_received += len(got)
        frac = len(got) / max(1, len(hosts))
        self.timeline.append((t_probe, frac))
        return frac

    @property
    def probes_lost(self) -> int:
        return self.probes_sent - self.pongs_received

    def reach_at_or_after(self, t_s: float, level: float) -> Optional[float]:
        """First probe time >= ``t_s`` whose reach >= ``level``."""
        for when, frac in self.timeline:
            if when >= t_s and frac >= level:
                return when
        return None


def _settle_dlte(net: DLTENetwork, heartbeat_s: float) -> None:
    """License + peer + attach + start monitors (E16's control phase)."""
    granted = {"n": 0}

    def on_granted(_ok: bool) -> None:
        granted["n"] += 1
        if granted["n"] == len(net.aps):
            for ap in net.aps.values():
                ap.discover_and_peer(net.aps)

    for ap in net.aps.values():
        ap.register_spectrum(on_granted)
    net.sim.run(until=net.sim.now + 2.0)
    for k, ue in enumerate(net.ues.values()):
        net.sim.schedule(0.010 * k, ue.start_attach)
    net.sim.run(until=net.sim.now + 3.0 + 0.010 * len(net.ues))
    for ap in net.aps.values():
        ap.start_peer_monitor(heartbeat_s=heartbeat_s)


def _settle_centralized(net: CentralizedLTENetwork) -> None:
    for k, ue in enumerate(net.ues.values()):
        net.sim.schedule(0.010 * k, ue.start_attach)
    net.sim.run(until=net.sim.now + 5.0 + 0.010 * len(net.ues))


def _busiest_ap(net: DLTENetwork) -> str:
    """The AP serving the most clients (deterministic tie-break)."""
    counts: Dict[str, int] = {ap_id: 0 for ap_id in net.aps}
    for serving in net._serving_ap.values():
        counts[serving] += 1
    return max(sorted(counts), key=lambda ap_id: counts[ap_id])


def _dlte_surviving_frac(net: DLTENetwork, victims) -> float:
    """Fraction of clients whose serving AP is not directly attacked."""
    hit = sum(1 for s in net._serving_ap.values() if s in set(victims))
    return (len(net._serving_ap) - hit) / max(1, len(net._serving_ap))


def run(seed: int = 11, n_aps: int = 3, n_ues: int = 12,
        radius_m: float = 2500.0, heartbeat_s: float = 1.0,
        probe_interval_s: float = 1.0, fail_at_s: float = 5.0,
        outage_s: float = 15.0, horizon_s: float = 40.0,
        scenario: str = "", invariants: bool = False
        ) -> Tuple[ResultTable, ResultTable]:
    """Reachability over time + resilience summary for both arms.

    ``scenario`` swaps the default single-site outage for a named chaos
    scenario from :mod:`repro.faults.scenarios` (same storm on both
    arms); ``invariants`` arms a live
    :class:`~repro.invariants.InvariantChecker` on each arm and raises
    if any conservation law broke during the campaign.
    """
    town = RuralTown(radius_m=radius_m, n_ues=n_ues, n_aps=n_aps, seed=seed)

    dlte_net = DLTENetwork.build(town, seed=seed)
    if scenario:
        prepare_scenario(scenario, dlte_net)
    dlte = _ResilienceArm("dLTE (federated)", dlte_net)
    checkers = []
    if invariants:
        from repro.invariants import watch_network
        checkers.append(watch_network(dlte_net))
    _settle_dlte(dlte_net, heartbeat_s)

    cent_net = CentralizedLTENetwork.build(town, seed=seed)
    if scenario:
        prepare_scenario(scenario, cent_net)
    cent = _ResilienceArm("Centralized LTE", cent_net)
    if invariants:
        from repro.invariants import watch_network
        checkers.append(watch_network(cent_net))
    _settle_centralized(cent_net)

    t0 = {"dlte": dlte.sim.now, "cent": cent.sim.now}
    if scenario:
        # the same named storm on both clocks (see faults/scenarios.py)
        plan_d = compose_scenario(scenario, dlte_net, dlte.injector,
                                  t0["dlte"] + fail_at_s)
        plan_c = compose_scenario(scenario, cent_net, cent.injector,
                                  t0["cent"] + fail_at_s)
        restore_at_by_arm = {id(dlte): plan_d.end_s, id(cent): plan_c.end_s}
        surviving_by_arm = {
            id(dlte): _dlte_surviving_frac(dlte_net, plan_d.victims),
            id(cent): 0.0 if plan_c.faults else 1.0,
        }
    else:
        # default shape: one site dark for outage_s — dLTE loses its
        # busiest AP, centralized loses the EPC site.
        crash_ap = _busiest_ap(dlte_net)
        surviving_frac = _dlte_surviving_frac(dlte_net, (crash_ap,))
        dlte.injector.outage(
            lambda: dlte_net.crash_ap(crash_ap),
            lambda: dlte_net.restart_ap(crash_ap),
            at_s=t0["dlte"] + fail_at_s, duration_s=outage_s,
            name=f"power-fail:{crash_ap}")
        cent.injector.outage(
            cent_net.fail_epc, cent_net.restore_epc,
            at_s=t0["cent"] + fail_at_s, duration_s=outage_s,
            name="power-fail:epc-site")
        restore_at_by_arm = {
            id(dlte): t0["dlte"] + fail_at_s + outage_s,
            id(cent): t0["cent"] + fail_at_s + outage_s,
        }
        surviving_by_arm = {id(dlte): surviving_frac, id(cent): 0.0}

    storm = (f"chaos scenario {scenario!r}" if scenario
             else "one site outage")
    timeline = ResultTable(
        f"E16: reachability over time under {storm}",
        ["time_s", "arm", "reachable_frac"])
    n_probes = int(horizon_s / probe_interval_s)
    for _ in range(n_probes):
        for arm, start in ((dlte, t0["dlte"]), (cent, t0["cent"])):
            frac = arm.probe_round(probe_interval_s)
            timeline.add_row(time_s=arm.timeline[-1][0] - start,
                             arm=arm.name, reachable_frac=frac)

    summary = ResultTable(
        "E16: resilience summary — failure domains, not failure rates",
        ["arm", "min_reach_frac", "surviving_frac", "time_to_recover_s",
         "probes_sent", "probes_lost", "stuck_ues"])
    for arm, start in ((dlte, t0["dlte"]), (cent, t0["cent"])):
        restore_at = restore_at_by_arm[id(arm)]
        baseline = arm.timeline[0][1]
        during = [f for t, f in arm.timeline
                  if start + fail_at_s <= t < restore_at]
        recovered_at = arm.reach_at_or_after(restore_at, baseline)
        recover_s = (recovered_at - restore_at if recovered_at is not None
                     else math.inf)
        stuck = sum(1 for ue in arm.net.ues.values()
                    if ue.state is not UeState.ATTACHED)
        summary.add_row(arm=arm.name,
                        min_reach_frac=min(during) if during else 1.0,
                        surviving_frac=surviving_by_arm[id(arm)],
                        time_to_recover_s=recover_s,
                        probes_sent=arm.probes_sent,
                        probes_lost=arm.probes_lost,
                        stuck_ues=stuck)
    for checker in checkers:
        checker.verify()
    return timeline, summary
