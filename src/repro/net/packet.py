"""The packet: what every layer of the reproduction passes around."""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.net.addressing import IPv4Address

#: IPv4 + transport header budget charged to every packet.
IP_HEADER_BYTES = 20
UDP_HEADER_BYTES = 8

_packet_ids = itertools.count(1)


def _next_packet_id() -> int:
    return next(_packet_ids)


#: ECN codepoints (two-bit field, RFC 3168): transports that opt in mark
#: their data segments ECT; an AQM under congestion rewrites ECT -> CE
#: instead of dropping; the receiver echoes CE back as ECE.
ECN_NOT_ECT = 0
ECN_ECT = 1
ECN_CE = 3


@dataclass(slots=True)
class Packet:
    """A simulated IP datagram.

    Slotted and lazily listed: ``hops`` and ``encap_stack`` start as
    ``None`` and materialise on first use, because the transport fast
    path creates millions of packets that never traverse a recorded
    node or a tunnel — two list allocations per packet for nothing
    (see PERFORMANCE.md).

    Attributes:
        src / dst: IP endpoints. Tunnels rewrite these and stash the
            originals on the ``encap_stack``.
        size_bytes: total on-wire size including headers; tunneling adds
            to it, decapsulation subtracts.
        flow_id: transport flow tag, "" for control traffic.
        seq: transport sequence number (flow-scoped).
        payload: opaque application/control content (e.g. a NAS message).
        created_at: simulated birth time, for latency accounting.
        hops: network nodes traversed, appended by the forwarding engine —
            this is how F1 reports path length. ``None`` until the first
            hop is recorded.
        encap_stack: saved (src, dst, size) frames pushed by tunnels.
            ``None`` until the first encapsulation.
        ecn: the ECN codepoint (:data:`ECN_NOT_ECT` default; transports
            set :data:`ECN_ECT`, congested AQMs rewrite to
            :data:`ECN_CE`).
    """

    src: Optional[IPv4Address]
    dst: Optional[IPv4Address]
    size_bytes: int
    flow_id: str = ""
    seq: int = 0
    payload: Any = None
    created_at: float = 0.0
    packet_id: int = 0
    hops: Optional[List[str]] = None
    encap_stack: Optional[List[Dict[str, Any]]] = None
    ecn: int = ECN_NOT_ECT

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ValueError(f"packet size must be positive, got {self.size_bytes}")
        if self.packet_id == 0:
            self.packet_id = next(_packet_ids)

    @property
    def hop_count(self) -> int:
        """Number of forwarding nodes traversed so far."""
        hops = self.hops
        return len(hops) if hops is not None else 0

    @property
    def tunnel_depth(self) -> int:
        """How many encapsulation layers are currently on the packet."""
        stack = self.encap_stack
        return len(stack) if stack is not None else 0

    def record_hop(self, node_name: str) -> None:
        """Append a traversed node (called by the forwarding engine)."""
        hops = self.hops
        if hops is None:
            hops = self.hops = []
        hops.append(node_name)

    def age(self, now: float) -> float:
        """Seconds since the packet was created."""
        return now - self.created_at


class PacketPool:
    """A free-list of :class:`Packet` objects for the datapath fast lane.

    Transport segments are born and die within one round trip; at
    steady state a flow churns through packets as fast as the event
    loop can carry them. The pool recycles the object shells so the
    fast path skips the dataclass ``__init__``/``__post_init__`` and
    the allocator. Recycled packets get a **fresh** ``packet_id`` so
    identity-based bookkeeping can never confuse two lives of the same
    shell.

    Lifecycle contract (see PERFORMANCE.md): only the owner that
    acquired a packet may release it, exactly once, and only when no
    other component can still hold a reference — the transport layer
    releases data/ack segments after the receive handler returns, and
    never releases handshake packets or anything it stashed.
    """

    __slots__ = ("_free", "capacity", "acquired", "recycled")

    def __init__(self, capacity: int = 512) -> None:
        self._free: List[Packet] = []
        self.capacity = capacity
        self.acquired = 0
        self.recycled = 0

    def acquire(self, src: Optional[IPv4Address], dst: Optional[IPv4Address],
                size_bytes: int, flow_id: str = "", seq: int = 0,
                payload: Any = None, created_at: float = 0.0) -> Packet:
        """A fresh-looking packet, recycled when the free list allows."""
        self.acquired += 1
        free = self._free
        if not free:
            return Packet(src=src, dst=dst, size_bytes=size_bytes,
                          flow_id=flow_id, seq=seq, payload=payload,
                          created_at=created_at)
        if size_bytes <= 0:
            raise ValueError(f"packet size must be positive, got {size_bytes}")
        self.recycled += 1
        packet = free.pop()
        packet.src = src
        packet.dst = dst
        packet.size_bytes = size_bytes
        packet.flow_id = flow_id
        packet.seq = seq
        packet.payload = payload
        packet.created_at = created_at
        packet.packet_id = _next_packet_id()
        return packet

    def release(self, packet: Packet) -> None:
        """Return a dead packet's shell to the free list."""
        free = self._free
        if len(free) >= self.capacity:
            return
        packet.payload = None
        packet.hops = None
        packet.encap_stack = None
        packet.ecn = ECN_NOT_ECT
        free.append(packet)

    def __len__(self) -> int:
        return len(self._free)
