"""Unit tests for control-plane agents, channels, and the eNB relay."""

import pytest

from repro.enodeb import EnbControlRelay
from repro.epc.agents import (
    CallbackAgent,
    ControlAgent,
    ControlChannel,
    ControlMessage,
)
from repro.epc.nas import AttachRequest, AuthenticationRequest
from repro.simcore import Simulator


# -- ControlAgent: serial processing ------------------------------------------------

def test_agent_processes_serially():
    sim = Simulator(0)
    done = []
    agent = CallbackAgent(sim, "a", handler=lambda m: done.append(sim.now),
                          service_time_s=0.010)
    for _ in range(3):
        agent.enqueue(ControlMessage(payload="x", sender=agent))
    sim.run()
    assert done == [pytest.approx(0.010), pytest.approx(0.020),
                    pytest.approx(0.030)]
    assert agent.processed == 3
    assert agent.busy_time_s == pytest.approx(0.030)


def test_agent_queue_depth_and_peak():
    sim = Simulator(0)
    agent = CallbackAgent(sim, "a", service_time_s=0.010)
    for _ in range(5):
        agent.enqueue(ControlMessage(payload="x", sender=agent))
    # one in service, four waiting
    assert agent.queue_depth == 4
    assert agent.peak_queue_depth == 4
    sim.run()
    assert agent.queue_depth == 0
    assert agent.peak_queue_depth == 4  # history preserved


def test_agent_utilization():
    sim = Simulator(0)
    agent = CallbackAgent(sim, "a", service_time_s=0.5)
    agent.enqueue(ControlMessage(payload="x", sender=agent))
    sim.run(until=1.0)
    assert agent.utilization(1.0) == pytest.approx(0.5)
    assert agent.utilization(0.0) == 0.0


def test_agent_validates_service_time():
    with pytest.raises(ValueError):
        CallbackAgent(Simulator(0), "a", service_time_s=-1)


def test_base_agent_requires_handle():
    sim = Simulator(0)
    agent = ControlAgent(sim, "abstract")
    agent.enqueue(ControlMessage(payload="x", sender=agent))
    with pytest.raises(NotImplementedError):
        sim.run()


# -- ControlChannel -----------------------------------------------------------------------

def test_channel_delay_and_accounting():
    sim = Simulator(0)
    got = []
    a = CallbackAgent(sim, "a")
    b = CallbackAgent(sim, "b", handler=lambda m: got.append(sim.now))
    channel = ControlChannel(sim, a, b, one_way_delay_s=0.025)
    channel.send(a, AttachRequest(ue_id="u", imsi="1" * 15))
    sim.run()
    assert got == [pytest.approx(0.025)]
    assert channel.messages == 1
    assert channel.bytes == 120  # AttachRequest.size_bytes


def test_channel_other_end():
    sim = Simulator(0)
    a, b = CallbackAgent(sim, "a"), CallbackAgent(sim, "b")
    channel = ControlChannel(sim, a, b, 0.01)
    assert channel.other_end(a) is b
    assert channel.other_end(b) is a
    stranger = CallbackAgent(sim, "c")
    with pytest.raises(ValueError):
        channel.other_end(stranger)


def test_channel_validates_delay():
    sim = Simulator(0)
    a, b = CallbackAgent(sim, "a"), CallbackAgent(sim, "b")
    with pytest.raises(ValueError):
        ControlChannel(sim, a, b, one_way_delay_s=-0.1)


# -- EnbControlRelay -------------------------------------------------------------------------

def _relay_setup():
    sim = Simulator(0)
    relay = EnbControlRelay(sim, "enb")
    core_msgs, ue_msgs = [], []
    core = CallbackAgent(sim, "core", handler=lambda m: core_msgs.append(
        m.payload))
    ue = CallbackAgent(sim, "ue-x", handler=lambda m: ue_msgs.append(
        m.payload))
    s1 = ControlChannel(sim, relay, core, 0.01, "s1")
    relay.connect_core(s1)
    air = ControlChannel(sim, ue, relay, 0.005, "air")
    relay.attach_ue("ue-x", air)
    return sim, relay, core, ue, air, s1, core_msgs, ue_msgs


def test_relay_uplink_nas():
    sim, relay, core, ue, air, s1, core_msgs, ue_msgs = _relay_setup()
    air.send(ue, AttachRequest(ue_id="ue-x", imsi="1" * 15))
    sim.run()
    assert len(core_msgs) == 1
    assert relay.nas_relayed == 1


def test_relay_downlink_by_ue_id():
    sim, relay, core, ue, air, s1, core_msgs, ue_msgs = _relay_setup()
    s1.send(core, AuthenticationRequest(ue_id="ue-x", rand=b"r" * 16))
    sim.run()
    assert len(ue_msgs) == 1


def test_relay_drops_downlink_for_unknown_ue():
    sim, relay, core, ue, air, s1, core_msgs, ue_msgs = _relay_setup()
    s1.send(core, AuthenticationRequest(ue_id="ghost", rand=b"r" * 16))
    sim.run()
    assert ue_msgs == []


def test_relay_detach_stops_delivery():
    sim, relay, core, ue, air, s1, core_msgs, ue_msgs = _relay_setup()
    relay.detach_ue("ue-x")
    assert relay.connected_ues == 0
    assert not relay.serves("ue-x")
    s1.send(core, AuthenticationRequest(ue_id="ue-x", rand=b"r" * 16))
    sim.run()
    assert ue_msgs == []


def test_relay_path_switch_requires_s1():
    sim = Simulator(0)
    relay = EnbControlRelay(sim, "enb")
    with pytest.raises(RuntimeError):
        relay.request_path_switch("ue-x")
