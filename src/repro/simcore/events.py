"""Waitable events for the simulation kernel.

An :class:`Event` is a one-shot synchronization point: processes yield it to
suspend, and some other actor later calls :meth:`Event.succeed` (or
:meth:`Event.fail`) to resume every waiter. :class:`Timeout` is the
degenerate event that the simulator itself triggers after a delay.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional


class EventCancelled(Exception):
    """Raised inside a process waiting on an event that was cancelled."""


class Event:
    """A one-shot waitable occurrence.

    States: *pending* -> one of *succeeded* / *failed* / *cancelled*.
    Callbacks registered while pending run (via the simulator, at the
    current simulated time) when the event fires.
    """

    __slots__ = ("sim", "_callbacks", "_ok", "_done", "value", "_exc", "name")

    def __init__(self, sim: "Simulator", name: str = "") -> None:  # noqa: F821
        self.sim = sim
        self.name = name
        self._callbacks: List[Callable[["Event"], None]] = []
        self._ok: Optional[bool] = None
        self._done = False
        self.value: Any = None
        self._exc: Optional[BaseException] = None

    # -- state queries ----------------------------------------------------

    @property
    def triggered(self) -> bool:
        """True once the event has succeeded, failed, or been cancelled."""
        return self._done

    @property
    def ok(self) -> bool:
        """True when the event completed via :meth:`succeed`."""
        return bool(self._ok)

    @property
    def exception(self) -> Optional[BaseException]:
        """The failure exception, if the event failed."""
        return self._exc

    # -- transitions ------------------------------------------------------

    def succeed(self, value: Any = None) -> "Event":
        """Mark the event successful, delivering ``value`` to waiters."""
        self._finish(ok=True, value=value, exc=None)
        return self

    def fail(self, exc: BaseException) -> "Event":
        """Mark the event failed; waiting processes see ``exc`` raised."""
        if not isinstance(exc, BaseException):
            raise TypeError("Event.fail requires an exception instance")
        self._finish(ok=False, value=None, exc=exc)
        return self

    def cancel(self, reason: str = "") -> "Event":
        """Cancel the event; waiters see :class:`EventCancelled`."""
        if self._done:
            return self
        self._finish(ok=False, value=None,
                     exc=EventCancelled(reason or self.name or "cancelled"))
        return self

    def _finish(self, ok: bool, value: Any, exc: Optional[BaseException]) -> None:
        if self._done:
            raise RuntimeError(f"event {self.name!r} already triggered")
        self._done = True
        self._ok = ok
        self.value = value
        self._exc = exc
        callbacks, self._callbacks = self._callbacks, []
        for cb in callbacks:
            self.sim.call_soon(cb, self)

    # -- waiting ----------------------------------------------------------

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Run ``callback(event)`` when the event triggers.

        If the event already triggered the callback is scheduled to run
        immediately (at the current simulated time), preserving the
        invariant that callbacks never run synchronously inside the caller.
        """
        if self._done:
            self.sim.call_soon(callback, self)
        else:
            self._callbacks.append(callback)

    def __repr__(self) -> str:
        state = ("pending" if not self._done
                 else "ok" if self._ok else type(self._exc).__name__)
        return f"<Event {self.name!r} {state}>"


class Timeout(Event):
    """An event that the simulator triggers after a fixed delay."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None) -> None:  # noqa: F821
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        super().__init__(sim, name=f"timeout({delay:g})")
        self.delay = delay
        sim.schedule(delay, self.succeed, value)


class AnyOf(Event):
    """Triggers when the first of several events triggers.

    The value is the event that fired first. Failures propagate: if the
    first event to trigger failed, this event fails with the same exception.
    """

    __slots__ = ("events",)

    def __init__(self, sim: "Simulator", events: List[Event]) -> None:  # noqa: F821
        if not events:
            raise ValueError("AnyOf requires at least one event")
        super().__init__(sim, name="any_of")
        self.events = list(events)
        for ev in self.events:
            ev.add_callback(self._on_child)

    def _on_child(self, child: Event) -> None:
        if self._done:
            return
        if child.ok:
            self.succeed(child)
        else:
            self.fail(child.exception or EventCancelled("child cancelled"))


class AllOf(Event):
    """Triggers when every one of several events has succeeded.

    The value is the list of child values, in construction order. The first
    child failure fails the composite immediately.
    """

    __slots__ = ("events", "_remaining")

    def __init__(self, sim: "Simulator", events: List[Event]) -> None:  # noqa: F821
        super().__init__(sim, name="all_of")
        self.events = list(events)
        self._remaining = len(self.events)
        if self._remaining == 0:
            sim.call_soon(lambda _e: None, self)
            self.succeed([])
            return
        for ev in self.events:
            ev.add_callback(self._on_child)

    def _on_child(self, child: Event) -> None:
        if self._done:
            return
        if not child.ok:
            self.fail(child.exception or EventCancelled("child cancelled"))
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed([ev.value for ev in self.events])
