"""Unit tests for repro.phy.units and repro.phy.bands."""

import pytest

from repro.phy import (
    LTE_BANDS,
    WIFI_BANDS,
    db_to_linear,
    dbm_to_watts,
    get_band,
    linear_to_db,
    thermal_noise_dbm,
    watts_to_dbm,
)


def test_db_roundtrip():
    for db in (-30, -3, 0, 3, 10, 60):
        assert linear_to_db(db_to_linear(db)) == pytest.approx(db)


def test_known_db_values():
    assert db_to_linear(3) == pytest.approx(2.0, rel=1e-2)
    assert db_to_linear(10) == pytest.approx(10.0)
    assert db_to_linear(0) == 1.0


def test_dbm_watts_roundtrip():
    assert dbm_to_watts(30) == pytest.approx(1.0)       # 30 dBm = 1 W
    assert dbm_to_watts(0) == pytest.approx(1e-3)        # 0 dBm = 1 mW
    assert watts_to_dbm(dbm_to_watts(23)) == pytest.approx(23)


def test_log_of_nonpositive_rejected():
    with pytest.raises(ValueError):
        linear_to_db(0)
    with pytest.raises(ValueError):
        watts_to_dbm(-1)


def test_thermal_noise_canonical_values():
    # -174 dBm/Hz; 10 MHz -> -104 dBm; 20 MHz -> -101 dBm.
    assert thermal_noise_dbm(10e6) == pytest.approx(-104.0, abs=0.2)
    assert thermal_noise_dbm(20e6) == pytest.approx(-101.0, abs=0.2)


def test_thermal_noise_includes_noise_figure():
    base = thermal_noise_dbm(10e6)
    assert thermal_noise_dbm(10e6, noise_figure_db=7) == pytest.approx(base + 7)


def test_thermal_noise_rejects_bad_bandwidth():
    with pytest.raises(ValueError):
        thermal_noise_dbm(0)


# -- bands --------------------------------------------------------------------

def test_paper_named_bands_present():
    # §3.2 names bands 5, 30, 31 explicitly.
    assert LTE_BANDS["lte5"].number == 5
    assert LTE_BANDS["lte31"].number == 31
    assert LTE_BANDS["lte30tvws"].number == 30


def test_band5_is_850mhz_fdd_licensed():
    band = get_band("lte5")
    assert 800 < band.dl_mhz < 900
    assert band.duplex == "FDD"
    assert band.licensed
    assert band.is_sub_ghz


def test_wifi_bands_are_ism_unlicensed():
    for band in WIFI_BANDS.values():
        assert not band.licensed
        assert band.duplex == "ISM"
        assert not band.is_sub_ghz


def test_licensed_subghz_allows_more_eirp_than_ism():
    # The quantitative heart of §3.2 "Spectrum Bands".
    assert (LTE_BANDS["lte5"].max_eirp_dbm
            > WIFI_BANDS["wifi2g4"].max_eirp_dbm)
    assert (LTE_BANDS["lte31"].max_eirp_dbm
            > WIFI_BANDS["wifi5g"].max_eirp_dbm)


def test_unknown_band_raises_with_choices():
    with pytest.raises(KeyError, match="lte5"):
        get_band("nope")
