"""E11 — §7 future work: multi-hop backhaul sharing between APs.

"Such networks could provide redundancy for users in emergencies when
the backhaul link goes down, and bring LTE's scheduling primitives …
to bear on mesh designs."

A string/ring of AP sites, some with their own uplink. We fail uplinks
progressively and measure, with and without mesh radio links between
neighbouring APs: the fraction of sites still reaching the Internet and
the surviving aggregate capacity.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.coordination.mesh import BackhaulMesh
from repro.geo.points import Point
from repro.metrics.tables import ResultTable
from repro.phy.bands import get_band
from repro.phy.linkbudget import LinkBudget, Radio
from repro.phy.mcs import lte_efficiency_for_sinr
from repro.phy.propagation import model_for_frequency


def mesh_link_rate_bps(distance_m: float, band_name: str = "lte5") -> float:
    """Point-to-point AP-to-AP radio rate at a separation.

    Both ends are elevated, high-gain fixed radios, so mesh links are
    far better than AP-to-handset links at the same distance.
    """
    band = get_band(band_name)
    budget = LinkBudget(model_for_frequency(band.dl_mhz), band.dl_mhz,
                        band.bandwidth_hz)
    a = Radio(Point(0, 0), tx_power_dbm=43, antenna_gain_dbi=18,
              height_m=30.0, noise_figure_db=5.0)
    b = Radio(Point(distance_m, 0), tx_power_dbm=43, antenna_gain_dbi=18,
              height_m=30.0, noise_figure_db=5.0)
    snr = budget.snr_db(a, b)
    return lte_efficiency_for_sinr(snr) * band.bandwidth_hz


def build_corridor_mesh(n_aps: int = 6, spacing_m: float = 3000.0,
                        gateways: Optional[List[int]] = None,
                        with_mesh_links: bool = True) -> BackhaulMesh:
    """A line of APs; ``gateways`` indexes own an uplink (default: ends)."""
    mesh = BackhaulMesh()
    gateway_set = set(gateways if gateways is not None else [0, n_aps - 1])
    for i in range(n_aps):
        mesh.add_ap(f"ap{i}", backhaul_bps=20e6 if i in gateway_set else 0.0)
    if with_mesh_links:
        rate = mesh_link_rate_bps(spacing_m)
        for i in range(n_aps - 1):
            mesh.connect(f"ap{i}", f"ap{i+1}", radio_bps=rate)
    return mesh


def run(n_aps: int = 6, spacing_m: float = 3000.0) -> ResultTable:
    """Reachability and capacity vs failed uplinks, mesh on/off.

    Both arms give every AP its own uplink; uplinks fail from the front
    of the corridor. The meshed arm routes around failures; the isolated
    (no-mesh) arm simply loses those sites.
    """
    table = ResultTable(
        f"E11: backhaul failures over a {n_aps}-AP corridor",
        ["failed_uplinks", "meshed_reachable_pct", "meshed_capacity_mbps",
         "isolated_reachable_pct", "isolated_capacity_mbps"])
    for n_failed in range(0, n_aps):
        meshed = build_corridor_mesh(n_aps, spacing_m,
                                     gateways=list(range(n_aps)),
                                     with_mesh_links=True)
        isolated = build_corridor_mesh(n_aps, spacing_m,
                                       gateways=list(range(n_aps)),
                                       with_mesh_links=False)
        for k in range(n_failed):
            meshed.fail_backhaul(f"ap{k}")
            isolated.fail_backhaul(f"ap{k}")
        table.add_row(
            failed_uplinks=n_failed,
            meshed_reachable_pct=100.0 * meshed.reachable_fraction(),
            meshed_capacity_mbps=meshed.total_capacity_bps() / 1e6,
            isolated_reachable_pct=100.0 * isolated.reachable_fraction(),
            isolated_capacity_mbps=isolated.total_capacity_bps() / 1e6)
    return table


def aggregation_gain(n_aps: int = 4, spacing_m: float = 3000.0
                     ) -> Tuple[float, float]:
    """(single-uplink capacity, meshed aggregate) for bandwidth sharing.

    The §7 aggregation idea: a meshed AP can use *all* reachable
    gateways' uplinks, not just its own.
    """
    mesh = build_corridor_mesh(n_aps, spacing_m,
                               gateways=list(range(n_aps)))
    single = mesh.backhaul_bps("ap0")
    return single, mesh.total_capacity_bps()
