"""5G New Radio primitives (§7 future work).

"The forthcoming 5G-New Radio cellular waveform offers more improvements
for area connectivity, with support for new bands, three dimensional
beamforming, massive MIMO antenna arrays … Incorporating 5G technology
into the dLTE framework would further improve the capabilities of the
dLTE system."

The pieces that matter at architecture scale:

* **Numerologies** — subcarrier spacing 15·2^mu kHz with slots of
  1/2^mu ms: wider carriers and (at high mu) much shorter scheduling
  intervals (lower air latency).
* **New bands** — n28 (700 MHz, rural reach) through n78 (3.5 GHz, wide
  channels).
* **Massive MIMO beamforming** — array gain ~10·log10(N) dB that buys
  back the link budget mid-band loses to propagation.
* **256QAM** — peak spectral efficiency up to ~7.4 b/s/Hz.

E14 plugs these into the same dLTE link-budget machinery to measure what
an NR upgrade buys a rural federation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.phy.bands import Band
from repro.phy.mcs import LTE_CQI_TABLE, McsEntry

#: LTE baseline scheduling interval for comparison, seconds.
LTE_TTI_S = 1e-3


@dataclass(frozen=True)
class Numerology:
    """One NR numerology (3GPP TS 38.211)."""

    mu: int

    def __post_init__(self) -> None:
        if not 0 <= self.mu <= 4:
            raise ValueError("NR numerologies are mu = 0..4")

    @property
    def scs_khz(self) -> float:
        """Subcarrier spacing: 15 * 2^mu kHz."""
        return 15.0 * (2 ** self.mu)

    @property
    def slot_duration_s(self) -> float:
        """Slot length: 1 ms / 2^mu."""
        return 1e-3 / (2 ** self.mu)

    @property
    def slots_per_subframe(self) -> int:
        """Slots per 1 ms subframe."""
        return 2 ** self.mu

    @property
    def prb_bandwidth_hz(self) -> float:
        """12 subcarriers per PRB."""
        return 12.0 * self.scs_khz * 1e3


#: NR bands relevant to the rural story (name -> Band), with the
#: numerologies they commonly run.
NR_BANDS: Dict[str, Band] = {
    # n28: the 700 MHz coverage layer — dLTE's band-5 ethos, more width
    "nr-n28": Band("nr-n28", 28, 758.0, 703.0, "FDD", True, 60.0, 23.0, 20e6),
    # n78: the 3.5 GHz capacity layer (CBRS-adjacent), wide channels
    "nr-n78": Band("nr-n78", 78, 3550.0, 3550.0, "TDD", True, 47.0, 23.0, 100e6),
}

#: typical numerology per band.
NR_NUMEROLOGY: Dict[str, Numerology] = {
    "nr-n28": Numerology(0),
    "nr-n78": Numerology(1),
}

#: NR adds 256QAM on top of the LTE table: two extra operating points.
NR_MCS_EXTENSION: List[McsEntry] = [
    McsEntry(16, "256QAM", 0.8537, 6.2266, 25.0),
    McsEntry(17, "256QAM", 0.9258, 7.4063, 28.0),
]

NR_MCS_TABLE: List[McsEntry] = list(LTE_CQI_TABLE) + NR_MCS_EXTENSION


def nr_efficiency_for_sinr(sinr_db: float) -> float:
    """NR spectral efficiency (b/s/Hz): the LTE ladder plus 256QAM."""
    best = 0.0
    for entry in NR_MCS_TABLE:
        if entry.min_sinr_db <= sinr_db:
            best = max(best, entry.efficiency_bps_hz)
    return best


def beamforming_gain_db(n_elements: int) -> float:
    """Array gain of an N-element massive-MIMO panel.

    Ideal coherent combining: 10 log10(N). A 64-element panel buys
    ~18 dB — roughly the propagation gap between 3.5 GHz and 700 MHz at
    town ranges, which is exactly how mid-band NR reaches rural cells.
    """
    if n_elements < 1:
        raise ValueError("need at least one element")
    return 10.0 * math.log10(n_elements)


def air_interface_latency_s(numerology: Numerology,
                            scheduling_slots: int = 4) -> float:
    """One-way user-plane air latency: a few slots of scheduling pipeline.

    LTE at 1 ms TTIs needs the same ~4 intervals, so mu=2 (0.25 ms
    slots) cuts air latency 4x — the §7 "improvements for area
    connectivity" in its latency form.
    """
    if scheduling_slots < 1:
        raise ValueError("need at least one slot")
    return scheduling_slots * numerology.slot_duration_s
