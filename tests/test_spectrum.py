"""Unit tests for grants, contention geometry, and the three registries."""

import pytest

from repro.geo import Point
from repro.phy import get_band
from repro.simcore import Simulator
from repro.spectrum import (
    ApRecord,
    BlockchainRegistry,
    FederatedRegistry,
    SasRegistry,
    SpectrumGrant,
    contention_radius_m,
    in_contention,
)

BAND5 = get_band("lte5")
CBRS = get_band("lte48cbrs")


def _record(ap_id, x=0.0, y=0.0, band=BAND5, eirp=58.0):
    return ApRecord(ap_id, Point(x, y), band, eirp)


# -- grants / geometry ------------------------------------------------------------

def test_ap_record_validates_id():
    with pytest.raises(ValueError):
        ApRecord("", Point(0, 0), BAND5, 40)


def test_grant_active_window():
    g = SpectrumGrant("g1", _record("a"), granted_at=10.0, expires_at=20.0)
    assert not g.active_at(5)
    assert g.active_at(15)
    assert not g.active_at(25)
    forever = SpectrumGrant("g2", _record("a"), granted_at=0.0)
    assert forever.active_at(1e9)


def test_contention_radius_band_ordering():
    """Sub-GHz footprints dwarf midband ones at the same EIRP."""
    assert (contention_radius_m(BAND5, 47.0)
            > 2 * contention_radius_m(CBRS, 47.0))


def test_contention_radius_grows_with_eirp():
    assert contention_radius_m(BAND5, 60) > contention_radius_m(BAND5, 40)


def test_in_contention_same_band_nearby():
    assert in_contention(_record("a", 0), _record("b", 5000))


def test_no_contention_across_bands():
    assert not in_contention(_record("a", 0),
                             _record("b", 100, band=CBRS))


def test_no_contention_when_far():
    far = 10 * contention_radius_m(BAND5, 58.0)
    assert not in_contention(_record("a", 0), _record("b", far))


# -- SAS ------------------------------------------------------------------------------

def test_sas_grant_latency_is_rtt_plus_processing():
    sim = Simulator(0)
    sas = SasRegistry(sim, rtt_s=0.05, processing_s=0.01)
    done = []
    sas.request_grant(_record("a"), lambda g: done.append((sim.now, g)))
    sim.run()
    assert done[0][0] == pytest.approx(0.06)
    assert done[0][1] is not None
    assert sas.active_grants == 1


def test_sas_neighbor_discovery():
    sim = Simulator(0)
    sas = SasRegistry(sim)
    for i in range(3):
        sas.request_grant(_record(f"ap{i}", x=i * 2000), lambda g: None)
    sim.run()
    got = []
    sas.discover_neighbors("ap0", lambda lst: got.append({r.ap_id for r in lst}))
    sim.run()
    assert got == [{"ap1", "ap2"}]


def test_sas_unknown_ap_discovers_nothing():
    sim = Simulator(0)
    sas = SasRegistry(sim)
    got = []
    sas.discover_neighbors("ghost", got.append)
    sim.run()
    assert got == [[]]


def test_sas_failure_blocks_everything():
    """Single point of failure: the SAS down means no joins, no discovery."""
    sim = Simulator(0)
    sas = SasRegistry(sim)
    sas.request_grant(_record("a"), lambda g: None)
    sim.run()
    sas.fail()
    assert not sas.is_available()
    results = []
    sas.request_grant(_record("b"), results.append)
    sas.discover_neighbors("a", results.append)
    sim.run()
    assert results == [None, []]
    sas.restore()
    sas.request_grant(_record("b"), results.append)
    sim.run()
    assert results[-1] is not None


def test_sas_density_admission():
    sim = Simulator(0)
    sas = SasRegistry(sim, max_density_per_domain=2)
    results = []
    for i in range(4):
        sas.request_grant(_record(f"ap{i}", x=i * 1000.0), results.append)
        sim.run()
    granted = [r for r in results if r is not None]
    assert len(granted) == 2
    assert sas.refused == 2


def test_sas_deregister():
    sim = Simulator(0)
    sas = SasRegistry(sim)
    sas.request_grant(_record("a"), lambda g: None)
    sim.run()
    sas.deregister("a")
    assert sas.active_grants == 0
    sas.deregister("a")  # idempotent


def test_sas_lease_and_heartbeat():
    sim = Simulator(0)
    sas = SasRegistry(sim, lease_s=60.0)
    got = {}
    sas.request_grant(_record("a"), lambda g: got.setdefault("grant", g))
    sim.run()
    grant = got["grant"]
    assert grant.expires_at == pytest.approx(sim.now + 60.0, abs=0.1)
    # heartbeat extends the lease
    sim.run(until=30.0)
    renewed = {}
    sas.heartbeat("a", lambda g: renewed.setdefault("g", g))
    sim.run(until=31.0)
    assert renewed["g"].expires_at > grant.expires_at
    assert renewed["g"].grant_id == grant.grant_id
    assert sas.heartbeats_served == 1


def test_sas_heartbeat_fails_when_down_or_unknown():
    sim = Simulator(0)
    sas = SasRegistry(sim, lease_s=60.0)
    sas.request_grant(_record("a"), lambda g: None)
    sim.run()
    results = []
    sas.heartbeat("ghost", results.append)
    sim.run()
    assert results == [None]
    sas.fail()
    sas.heartbeat("a", results.append)
    sim.run()
    assert results == [None, None]


def test_sas_without_lease_issues_perpetual_grants():
    sim = Simulator(0)
    sas = SasRegistry(sim)  # lease_s=None
    got = {}
    sas.request_grant(_record("a"), lambda g: got.setdefault("g", g))
    sim.run()
    assert got["g"].expires_at is None
    assert got["g"].active_at(1e9)


def test_sas_lease_validation():
    with pytest.raises(ValueError):
        SasRegistry(Simulator(0), lease_s=0)


# -- federated ----------------------------------------------------------------------------

def test_federated_grant_and_discovery():
    sim = Simulator(0)
    fed = FederatedRegistry(sim, region_size_m=50_000)
    done = []
    for i in range(3):
        fed.request_grant(_record(f"ap{i}", x=i * 2000), done.append)
    sim.run()
    assert all(g is not None for g in done)
    got = []
    fed.discover_neighbors("ap0", lambda lst: got.append({r.ap_id for r in lst}))
    sim.run()
    assert got == [{"ap1", "ap2"}]


def test_federated_referral_cached():
    """First contact pays the root referral; repeats do not."""
    sim = Simulator(0)
    fed = FederatedRegistry(sim, rtt_s=0.04, referral_rtt_s=0.04,
                            processing_s=0.0)
    times = []
    fed.request_grant(_record("a"), lambda g: times.append(sim.now))
    sim.run()
    assert times[0] == pytest.approx(0.08)             # rtt + referral
    # first discovery fans into uncontacted regions (referral again);
    # the second discovery hits cached authorities: one plain rtt
    fed.discover_neighbors("a", lambda lst: times.append(sim.now))
    sim.run()
    fed.discover_neighbors("a", lambda lst: times.append(sim.now))
    sim.run()
    assert times[1] - times[0] == pytest.approx(0.08)
    assert times[2] - times[1] == pytest.approx(0.04)


def test_federated_partial_failure():
    """One region dark, other regions keep serving (no global off switch)."""
    sim = Simulator(0)
    fed = FederatedRegistry(sim, region_size_m=10_000)
    results = {}
    fed.request_grant(_record("near", x=1000),
                      lambda g: results.setdefault("near", g))
    fed.request_grant(_record("far", x=55_000),
                      lambda g: results.setdefault("far", g))
    sim.run()
    assert results["near"] and results["far"]
    fed.fail_region(fed.region_key(Point(1000, 0)))
    assert fed.is_available()  # the federation survives
    late = {}
    fed.request_grant(_record("near2", x=1500),
                      lambda g: late.setdefault("near2", g))
    fed.request_grant(_record("far2", x=56_000),
                      lambda g: late.setdefault("far2", g))
    sim.run()
    assert late["near2"] is None       # dark region refuses
    assert late["far2"] is not None    # other region unaffected


def test_federated_cross_region_discovery():
    """Neighbors straddling a region border are still found."""
    sim = Simulator(0)
    fed = FederatedRegistry(sim, region_size_m=5_000)
    fed.request_grant(_record("west", x=4_000), lambda g: None)
    fed.request_grant(_record("east", x=6_000), lambda g: None)
    sim.run()
    got = []
    fed.discover_neighbors("west", lambda lst: got.append([r.ap_id for r in lst]))
    sim.run()
    assert got == [["east"]]


def test_federated_deregister():
    sim = Simulator(0)
    fed = FederatedRegistry(sim)
    fed.request_grant(_record("a"), lambda g: None)
    sim.run()
    assert fed.active_grants == 1
    fed.deregister("a")
    assert fed.active_grants == 0


# -- blockchain ------------------------------------------------------------------------------

def test_blockchain_join_waits_for_confirmations():
    sim = Simulator(7)
    chain = BlockchainRegistry(sim, block_interval_s=10.0, confirmations=2,
                               propagation_s=0.0)
    done = []
    chain.request_grant(_record("a"), lambda g: done.append((sim.now, g)))
    sim.run(until=500)
    assert done and done[0][1] is not None
    # needs 1 (inclusion) + 2 (confirmations) blocks: >= ~3 exponential draws
    assert done[0][0] > 2 * 1.0  # far slower than any RTT-based registry
    assert chain.height >= 3
    assert chain.verify_chain()


def test_blockchain_reads_are_local_and_instant():
    sim = Simulator(7)
    chain = BlockchainRegistry(sim, block_interval_s=1.0, confirmations=1)
    for i in range(3):
        chain.request_grant(_record(f"ap{i}", x=i * 1000.0), lambda g: None)
    sim.run(until=100)
    assert chain.active_grants == 3
    t0 = sim.now
    got = []
    chain.discover_neighbors("ap0", lambda lst: got.append((sim.now, len(lst))))
    sim.run(until=sim.now + 1)
    assert got == [(t0, 2)]  # same tick: zero read latency


def test_blockchain_never_unavailable():
    sim = Simulator(7)
    chain = BlockchainRegistry(sim)
    assert chain.is_available()
    assert not hasattr(chain, "fail")  # no single node to kill


def test_blockchain_hash_linkage_detects_tampering():
    sim = Simulator(7)
    chain = BlockchainRegistry(sim, block_interval_s=1.0, confirmations=1)
    for i in range(4):
        chain.request_grant(_record(f"ap{i}", x=i * 1000.0), lambda g: None)
    sim.run(until=60)
    assert chain.verify_chain()
    # tamper: splice in a forged middle block
    from repro.spectrum.blockchain import Block
    forged = Block(height=1, prev_hash="forged", mined_at=0.0, grants=())
    chain.chain[1] = forged
    assert not chain.verify_chain()


def test_blockchain_validates_params():
    sim = Simulator(0)
    with pytest.raises(ValueError):
        BlockchainRegistry(sim, block_interval_s=0)
    with pytest.raises(ValueError):
        BlockchainRegistry(sim, confirmations=0)
