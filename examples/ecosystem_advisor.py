#!/usr/bin/env python
"""Provisioning advice: grow the federation without wrecking it (§7).

"We are interested in how both human-in-the-loop and automated systems
can help avoid the degradation of WiFi typical in chaotic deployments."

A valley has two incumbent dLTE APs (pulled from the spectrum registry).
A newcomer wants to add a site and asks the advisor: which of my three
candidate locations helps the ecosystem most, and at what power?

Run:  python examples/ecosystem_advisor.py
"""

from repro.deploy import ProvisioningAdvisor
from repro.geo import Point
from repro.phy import get_band
from repro.spectrum import ApRecord, SasRegistry
from repro.simcore import Simulator


def main() -> None:
    band = get_band("lte5")
    sim = Simulator(seed=4)
    registry = SasRegistry(sim)

    incumbents = [
        ApRecord("school-ap", Point(0, 0), band, 58.0),
        ApRecord("coop-ap", Point(30_000, 0), band, 52.0),
    ]
    for record in incumbents:
        registry.request_grant(record, lambda g: None)
    sim.run()
    print(f"The registry knows {registry.active_grants} incumbents.\n")

    advisor = ProvisioningAdvisor(band, incumbents, seed=4)
    candidates = {
        "next to the school": Point(3_000, 0),
        "the gap between towns": Point(15_000, 8_000),
        "the unserved east valley": Point(90_000, 5_000),
    }

    print("Candidate sites at full power (58 dBm EIRP):")
    ranked = advisor.rank(list(candidates.values()), eirp_dbm=58.0)
    names = {pos: name for name, pos in candidates.items()}
    for assessment in ranked:
        print(f"  {names[assessment.position]:28s} "
              f"new coverage {assessment.new_coverage_km2:7.0f} km2, "
              f"overlap {assessment.overlap_fraction:5.1%}, "
              f"forces {assessment.new_peers} incumbent(s) to coordinate "
              f"-> score {assessment.score:8.0f}")

    best_site = ranked[0].position
    print(f"\nRecommended site: {names[best_site]}.")

    print("\nAnd for the runner-up near town, should they turn it down?")
    near = candidates["the gap between towns"]
    choice = advisor.recommend_eirp(near, [36.0, 47.0, 58.0])
    print(f"  Best power there: {choice.eirp_dbm:g} dBm "
          f"({choice.new_coverage_km2:.0f} km2 new, "
          f"{choice.new_peers} forced peering(s)).")
    print("\nThe advisor's objective is the paper's: coverage the valley")
    print("lacks, with the least coordination burden on the neighbours —")
    print("organic growth without WiFi-style chaos.")


if __name__ == "__main__":
    main()
