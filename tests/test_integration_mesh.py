"""Integration: mesh backhaul failover in a live dLTE network (§7).

An AP's Internet uplink dies; with mesh links enabled its clients keep
reaching the OTT server through a neighbouring AP's uplink — real
packets over the relayed path, round trip measured.
"""

import ipaddress

import pytest

from repro.core import DLTENetwork
from repro.core.network import SERVER_ADDR
from repro.net import Packet
from repro.workloads import RuralTown

IP = ipaddress.IPv4Address


@pytest.fixture
def meshed_net():
    town = RuralTown(radius_m=2000, n_ues=6, n_aps=2, seed=9)
    net = DLTENetwork.build(town, seed=9)
    net.run(duration_s=3.0)
    net.enable_mesh()
    return net


def _clients_of(net, ap):
    return [ue_id for ue_id, host in net.ue_hosts.items()
            if host.address is not None and ap.pool.contains(host.address)]


def _ping(net, ue_id, timeout_s=5.0):
    host = net.ue_hosts[ue_id]
    got = []
    host.on_packet = lambda p: got.append((net.sim.now, p))
    t0 = net.sim.now
    host.send(Packet(src=host.address, dst=SERVER_ADDR, size_bytes=100,
                     payload={"kind": "ping", "t0": t0}, created_at=t0))
    net.sim.run(until=t0 + timeout_s)
    pongs = [(t, p) for t, p in got
             if isinstance(p.payload, dict) and p.payload.get("kind") == "pong"]
    if not pongs:
        return None, None
    t, p = pongs[0]
    return t - t0, p.payload["request_hops"]


def test_mesh_links_built(meshed_net):
    net = meshed_net
    aps = list(net.aps.values())
    assert aps[1].router.name in aps[0].router.links
    assert aps[0].router.name in aps[1].router.links


def test_clients_survive_backhaul_failure(meshed_net):
    net = meshed_net
    ap0, ap1 = (net.aps["ap0"], net.aps["ap1"])
    victims = _clients_of(net, ap1)
    assume_any = victims or _clients_of(net, ap0)
    assert assume_any, "no clients attached at all?"
    if not victims:
        ap0, ap1 = ap1, ap0
        victims = _clients_of(net, ap1)

    rtt_before, hops_before = _ping(net, victims[0])
    assert rtt_before is not None

    net.fail_backhaul(ap1.ap_id)
    rtt_after, hops_after = _ping(net, victims[0])
    assert rtt_after is not None, "client cut off despite mesh"
    # the relayed path is longer: more hops, more latency
    assert hops_after > hops_before
    assert rtt_after > rtt_before
    # and the relay runs through the surviving AP's router
    host = net.ue_hosts[victims[0]]
    got = []
    host.on_packet = lambda p: got.append(p)
    t0 = net.sim.now
    host.send(Packet(src=host.address, dst=SERVER_ADDR, size_bytes=100,
                     payload={"kind": "ping", "t0": t0}, created_at=t0))
    net.sim.run(until=t0 + 5.0)
    pong = [p for p in got if isinstance(p.payload, dict)
            and p.payload.get("kind") == "pong"][0]
    assert f"{ap0.ap_id}-gw" in pong.hops


def test_unaffected_ap_clients_keep_short_path(meshed_net):
    net = meshed_net
    ap0, ap1 = net.aps["ap0"], net.aps["ap1"]
    keepers = _clients_of(net, ap0)
    if not keepers:
        pytest.skip("no clients on ap0 in this seed")
    rtt_before, hops_before = _ping(net, keepers[0])
    net.fail_backhaul(ap1.ap_id)
    rtt_after, hops_after = _ping(net, keepers[0])
    assert hops_after == hops_before  # their path is untouched


def test_fail_without_mesh_raises():
    town = RuralTown(radius_m=2000, n_ues=2, n_aps=2, seed=9)
    net = DLTENetwork.build(town, seed=9)
    net.run(duration_s=3.0)
    with pytest.raises(RuntimeError, match="enable_mesh"):
        net.fail_backhaul("ap0")
