#!/usr/bin/env python
"""Diff two benchmark reports cell by cell.

Reads two ``BENCH_*.json`` files (see ``bench_runner.py``) and prints a
per-cell table of calibration-normalized times with absolute and
relative deltas, so "what actually got faster (or slower), and by how
much" is one command instead of eyeballing JSON::

    python benchmarks/compare.py benchmarks/BENCH_old.json \
        benchmarks/BENCH_new.json

Normalized times (wall / calibration) are the comparable quantity
across machines; raw wall seconds are shown for context only. Cells
present in just one report are listed but not scored. Exits non-zero
only on malformed input — this is a reporting tool, the pass/fail gate
is ``bench_runner.py --check``.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Optional


def load_report(path: str) -> Dict[str, object]:
    """Load one BENCH_*.json, validating the fields compare needs."""
    with open(path) as fh:
        report = json.load(fh)
    if "results" not in report or not isinstance(report["results"], dict):
        raise ValueError(f"{path}: not a bench report (no 'results' map)")
    return report


def compare_rows(old: Dict[str, object],
                 new: Dict[str, object]) -> List[Dict[str, object]]:
    """One row per cell in either report, ordered old-report-first.

    Each row has ``name``, ``old``/``new`` (normalized, None when
    absent), ``old_wall``/``new_wall``, ``ratio`` (new/old) and
    ``speedup`` (old/new) when both sides are present, plus optional
    ``old_hwm``/``new_hwm`` heap high-water marks.
    """
    old_results: Dict[str, dict] = old["results"]  # type: ignore[assignment]
    new_results: Dict[str, dict] = new["results"]  # type: ignore[assignment]
    names = list(old_results) + [n for n in new_results if n not in old_results]
    rows: List[Dict[str, object]] = []
    for name in names:
        a = old_results.get(name)
        b = new_results.get(name)
        row: Dict[str, object] = {
            "name": name,
            "old": a["normalized"] if a else None,
            "new": b["normalized"] if b else None,
            "old_wall": a["wall_s"] if a else None,
            "new_wall": b["wall_s"] if b else None,
            "old_hwm": a.get("heap_hwm") if a else None,
            "new_hwm": b.get("heap_hwm") if b else None,
            "ratio": None,
            "speedup": None,
        }
        if a and b and a["normalized"] > 0:
            row["ratio"] = b["normalized"] / a["normalized"]
            if b["normalized"] > 0:
                row["speedup"] = a["normalized"] / b["normalized"]
        rows.append(row)
    return rows


def _fmt(value: Optional[float], width: int, places: int = 2) -> str:
    if value is None:
        return "-".rjust(width)
    return f"{value:{width}.{places}f}"


def _fmt_hwm(value: Optional[int]) -> str:
    return "-" if value is None else str(value)


def render(rows: List[Dict[str, object]], old_path: str,
           new_path: str) -> str:
    """Human-readable diff table."""
    lines = [
        f"bench diff: {old_path} -> {new_path}",
        f"  {'cell':<20} {'old':>8} {'new':>8} {'ratio':>7} "
        f"{'speedup':>8}  {'wall old->new':>16}  heap hwm",
    ]
    for row in rows:
        ratio = row["ratio"]
        note = ""
        if row["old"] is None or row["new"] is None:
            note = "  (only in one report)"
        elif ratio is None:
            note = "  (too fast to compare)"
        wall = (f"{_fmt(row['old_wall'], 7, 3)}->"
                f"{_fmt(row['new_wall'], 7, 3)}")
        hwm = f"{_fmt_hwm(row['old_hwm'])}->{_fmt_hwm(row['new_hwm'])}"
        lines.append(
            f"  {row['name']:<20} {_fmt(row['old'], 8)} {_fmt(row['new'], 8)} "
            f"{_fmt(ratio, 7)} {_fmt(row['speedup'], 8)}  {wall:>16}  "
            f"{hwm}{note}")
    scored = [r for r in rows if r["ratio"] is not None]
    if scored:
        faster = sum(1 for r in scored if r["ratio"] < 0.99)
        slower = sum(1 for r in scored if r["ratio"] > 1.01)
        lines.append(f"  {len(scored)} comparable cells: {faster} faster, "
                     f"{slower} slower, {len(scored) - faster - slower} "
                     f"within 1%")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("old", help="baseline BENCH_*.json")
    parser.add_argument("new", help="candidate BENCH_*.json")
    args = parser.parse_args(argv)
    try:
        old = load_report(args.old)
        new = load_report(args.new)
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        print(f"compare: {exc}", file=sys.stderr)
        return 2
    print(render(compare_rows(old, new), args.old, args.new))
    return 0


if __name__ == "__main__":
    sys.exit(main())
