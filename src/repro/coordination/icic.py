"""Inter-cell interference coordination: static frequency reuse.

The classical alternative to per-epoch negotiation: color the cells and
give each color a fixed fraction of the grid. Reuse-1 (everyone uses
everything, maximum interference) and reuse-3 (disjoint thirds, zero
co-channel interference, one third the spectrum) bracket what dLTE's
dynamic fair sharing achieves adaptively; E5's ablation uses them as
reference points.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Sequence

from repro.coordination.fair_sharing import compute_weighted_partition


def reuse_partition(cell_names: Sequence[str], n_prbs: int,
                    reuse_factor: int) -> Dict[str, FrozenSet[int]]:
    """Assign each cell a 1/``reuse_factor`` slice by round-robin coloring.

    ``reuse_factor=1`` gives every cell the full grid (cells sharing a
    color share PRBs — i.e. interfere). Cells are colored in sorted-name
    order, so the mapping is deterministic.
    """
    if reuse_factor < 1:
        raise ValueError("reuse factor must be >= 1")
    if n_prbs < 0:
        raise ValueError("n_prbs must be non-negative")
    if not cell_names:
        raise ValueError("need at least one cell")
    if len(set(cell_names)) != len(cell_names):
        raise ValueError("duplicate cell names")
    if reuse_factor == 1:
        full = frozenset(range(n_prbs))
        return {name: full for name in cell_names}
    colors = compute_weighted_partition(
        n_prbs, {f"color{i}": 1.0 for i in range(reuse_factor)})
    ordered = sorted(cell_names)
    return {name: colors[f"color{i % reuse_factor}"]
            for i, name in enumerate(ordered)}


def co_channel_cells(partition: Dict[str, FrozenSet[int]]) -> Dict[str, List[str]]:
    """For each cell, the other cells whose PRB sets overlap its own."""
    out: Dict[str, List[str]] = {}
    for name, prbs in partition.items():
        out[name] = [other for other, other_prbs in partition.items()
                     if other != name and prbs & other_prbs]
    return out
