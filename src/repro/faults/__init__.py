"""Fault injection: deterministic, schedulable failure scenarios (E16).

The subsystem that makes the paper's robustness claims *measurable*:
link cuts and flaps, probabilistic loss, AP crash/restart, core and
registry outages — all named, logged, and reproducible from
``(seed, schedule)``.
"""

from repro.faults.injector import FaultInjector, FaultRecord

__all__ = ["FaultInjector", "FaultRecord"]
