"""Integration: federation churn — an AP dies, survivors reclaim spectrum.

The open-federation counterpart of carrier ops: nobody pages an
engineer; the X2 peer-status extension notices and the fair-sharing
protocol reconverges.
"""

import pytest

from repro.core import DLTENetwork
from repro.epc.ue import UeState
from repro.faults import FaultInjector
from repro.workloads import RuralTown


@pytest.fixture
def federation():
    town = RuralTown(radius_m=2500, n_ues=4, n_aps=3, seed=11)
    net = DLTENetwork.build(town, seed=11)
    net.run(duration_s=3.0)
    for ap in net.aps.values():
        ap.start_peer_monitor(heartbeat_s=1.0)
    net.sim.run(until=net.sim.now + 2.0)
    return net


def test_three_way_split_before_churn(federation):
    net = federation
    sizes = sorted(len(ap.cell.allowed_prbs) for ap in net.aps.values())
    assert sizes == [16, 17, 17]


def test_survivors_reclaim_dead_aps_spectrum(federation):
    net = federation
    victim = net.aps["ap2"]
    # the owner unplugs the box: monitor stops, X2 goes silent
    victim.peer_monitor.stop()
    victim.x2.handlers.clear()

    net.sim.run(until=net.sim.now + 8.0)  # > missed_limit x heartbeat

    survivors = [net.aps["ap0"], net.aps["ap1"]]
    for ap in survivors:
        assert "ap2" not in ap.x2.peer_ids
        assert ap.peer_monitor.peers_lost == 1
    slices = [ap.cell.allowed_prbs for ap in survivors]
    assert len(slices[0]) == 25 and len(slices[1]) == 25
    assert not (slices[0] & slices[1])


def test_rejoin_after_churn(federation):
    """The unplugged AP comes back: rediscovers, re-peers, re-shares."""
    net = federation
    victim = net.aps["ap2"]
    victim.peer_monitor.stop()
    victim.x2.handlers.clear()
    net.sim.run(until=net.sim.now + 8.0)
    assert all("ap2" not in net.aps[a].x2.peer_ids for a in ("ap0", "ap1"))

    # power restored: rebuild the X2 handler chain and re-peer
    victim.x2.add_handler(victim.coordinator._on_x2)
    victim.x2.add_handler(victim._on_x2_message)
    victim.discover_and_peer(net.aps)
    net.sim.run(until=net.sim.now + 3.0)

    sizes = sorted(len(ap.cell.allowed_prbs) for ap in net.aps.values())
    assert sizes == [16, 17, 17]
    union = frozenset().union(*(ap.cell.allowed_prbs
                                for ap in net.aps.values()))
    assert len(union) == 50


def _busiest_ap(net):
    served = {}
    for ue_id, ap_id in net._serving_ap.items():
        served.setdefault(ap_id, []).append(ue_id)
    victim_id = max(sorted(served), key=lambda a: len(served[a]))
    return victim_id, served[victim_id]


def test_crash_restart_lifecycle_leaves_no_stuck_state(federation):
    """Power-cycle an AP through the network helpers: clients drop,
    survivors reclaim, the restart re-peers and every client re-attaches."""
    net = federation
    sim = net.sim
    victim_id, its_ue_ids = _busiest_ap(net)
    victim = net.aps[victim_id]
    its_ues = [net.ues[u] for u in its_ue_ids]
    assert its_ues  # the busiest AP serves someone

    net.crash_ap(victim_id)
    assert not victim.alive and victim.crashes == 1
    assert victim.stub.sessions == {}
    assert victim.pool.in_use == 0  # every address back in the pool
    for ue in its_ues:
        assert ue.state is UeState.IDLE
        assert ue.air is None and ue.ue_address is None

    sim.run(until=sim.now + 8.0)  # > missed_limit x heartbeat
    survivors = [ap for ap in net.aps.values() if ap.ap_id != victim_id]
    for ap in survivors:
        assert victim_id not in ap.x2.peer_ids
        assert ap.peer_monitor.is_dead(victim_id)

    net.restart_ap(victim_id)
    sim.run(until=sim.now + 10.0)
    assert victim.alive
    for ue in its_ues:  # clients re-attached with fresh sessions
        assert ue.state is UeState.ATTACHED
        assert ue.ue_address is not None
        assert ue.attach_retries_exhausted == 0
    for ap in survivors:  # peers re-admitted the recovered AP
        assert victim_id in ap.x2.peer_ids
        assert not ap.peer_monitor.is_dead(victim_id)
        assert ap.peer_monitor.peers_rejoined == 1
    # spectrum reconverged to the full 3-way split
    sizes = sorted(len(ap.cell.allowed_prbs) for ap in net.aps.values())
    assert sizes == [16, 17, 17]


def test_injected_crash_restart_via_fault_injector(federation):
    """The same lifecycle driven by the FaultInjector schedule."""
    net = federation
    sim = net.sim
    victim_id, its_ue_ids = _busiest_ap(net)
    injector = FaultInjector(sim)

    class _ApAdapter:
        ap_id = victim_id

        @staticmethod
        def crash():
            net.crash_ap(victim_id)

        @staticmethod
        def restart():
            net.restart_ap(victim_id)

    injector.crash(_ApAdapter, at_s=sim.now + 2.0, restart_after_s=8.0)
    sim.run(until=sim.now + 25.0)
    assert [r.action for r in injector.log] == ["crash", "restart"]
    assert net.aps[victim_id].alive
    for ue_id in its_ue_ids:
        assert net.ues[ue_id].state is UeState.ATTACHED
    sizes = sorted(len(ap.cell.allowed_prbs) for ap in net.aps.values())
    assert sizes == [16, 17, 17]
