"""Bill-of-materials cost models for rural deployments.

§5: "The deployment cost less than $8000 in materials, including two
commercial eNodeBs (for two sectors), two 15dBi antennas, an off the
shelf computer for the EPC, and cabling."

E12 reproduces that number bottom-up from a BoM and compares coverage
per dollar across dLTE, WiFi, and the carrier-femtocell alternative the
paper criticizes in §2.1 ("users of this hardware still pay the carrier
for this privilege"). Prices are 2018-era representative figures; the
experiment depends on their ratios, not their cents.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional

from repro.phy.linkbudget import LinkBudget, Radio
from repro.phy.mcs import select_lte_cqi, select_wifi_mcs
from repro.phy.propagation import model_for_frequency
from repro.geo.points import Point


@dataclass(frozen=True)
class BomItem:
    """One line of a bill of materials."""

    name: str
    unit_cost_usd: float
    quantity: int = 1

    def __post_init__(self) -> None:
        if self.unit_cost_usd < 0 or self.quantity < 0:
            raise ValueError("cost and quantity must be non-negative")

    @property
    def total_usd(self) -> float:
        """Line total."""
        return self.unit_cost_usd * self.quantity


#: The paper's Papua site, itemized (two sectors on one gym roof).
PAPUA_REFERENCE_BOM: List[BomItem] = [
    BomItem("commercial eNodeB (band 5 sector)", 2500.0, 2),
    BomItem("15 dBi sector antenna", 350.0, 2),
    BomItem("EPC computer (off the shelf)", 600.0, 1),
    BomItem("cabling, mounts, surge protection", 800.0, 1),
]


@dataclass
class DeploymentPlan:
    """A costed site design with a coverage estimate."""

    name: str
    bom: List[BomItem]
    coverage_radius_m: float
    recurring_usd_per_month: float = 0.0

    @property
    def capex_usd(self) -> float:
        """Up-front materials cost."""
        return sum(item.total_usd for item in self.bom)

    @property
    def coverage_km2(self) -> float:
        """Area served by one site."""
        return coverage_area_km2(self.coverage_radius_m)

    @property
    def km2_per_kusd(self) -> float:
        """Coverage per thousand dollars of capex — E12's headline."""
        if self.capex_usd == 0:
            return float("inf")
        return self.coverage_km2 / (self.capex_usd / 1000.0)

    def five_year_cost_usd(self) -> float:
        """Capex plus five years of recurring fees."""
        return self.capex_usd + 60.0 * self.recurring_usd_per_month


def coverage_area_km2(radius_m: float) -> float:
    """Disk area in km^2."""
    if radius_m < 0:
        raise ValueError("radius must be non-negative")
    return math.pi * (radius_m / 1000.0) ** 2


def _edge_radius_m(freq_mhz: float, bandwidth_hz: float, tx_power_dbm: float,
                   antenna_gain_dbi: float, is_lte: bool,
                   max_range_m: float) -> float:
    """Largest distance where the downlink still decodes its lowest rate."""
    budget = LinkBudget(model_for_frequency(freq_mhz), freq_mhz, bandwidth_hz)
    ap = Radio(Point(0, 0), tx_power_dbm=tx_power_dbm,
               antenna_gain_dbi=antenna_gain_dbi, height_m=30.0)
    lo, hi = 100.0, max_range_m
    for _ in range(60):
        mid = (lo + hi) / 2.0
        ue = Radio(Point(mid, 0), tx_power_dbm=23, height_m=1.5)
        snr = budget.snr_db(ap, ue)
        alive = (select_lte_cqi(snr) if is_lte else select_wifi_mcs(snr))
        if alive is not None:
            lo = mid
        else:
            hi = mid
    return lo


def dlte_site_plan(sectors: int = 2) -> DeploymentPlan:
    """The paper's dLTE site: eNodeB sectors + stub computer, no fees."""
    if sectors < 1:
        raise ValueError("need at least one sector")
    bom = [
        BomItem("commercial eNodeB (band 5 sector)", 2500.0, sectors),
        BomItem("15 dBi sector antenna", 350.0, sectors),
        BomItem("EPC computer (off the shelf)", 600.0, 1),
        BomItem("cabling, mounts, surge protection", 800.0, 1),
    ]
    radius = _edge_radius_m(881.5, 10e6, 43.0, 15.0, is_lte=True,
                            max_range_m=100_000.0)
    return DeploymentPlan("dLTE (band 5)", bom, coverage_radius_m=radius)


def wifi_site_plan() -> DeploymentPlan:
    """A long-range WiFi site: cheaper box, far smaller footprint."""
    bom = [
        BomItem("outdoor 802.11 AP", 300.0, 1),
        BomItem("13 dBi antenna", 150.0, 1),
        BomItem("cabling, mounts, surge protection", 400.0, 1),
    ]
    # WiFi's radius is the smaller of link budget and ACK-timing limits
    from repro.mac.timing import WIFI_DEFAULT_ACK_RANGE_M

    radius = min(_edge_radius_m(2437.0, 20e6, 23.0, 13.0, is_lte=False,
                                max_range_m=50_000.0),
                 WIFI_DEFAULT_ACK_RANGE_M)
    return DeploymentPlan("WiFi (2.4 GHz)", bom, coverage_radius_m=radius)


def carrier_femtocell_plan(monthly_fee_usd: float = 20.0) -> DeploymentPlan:
    """The §2.1 alternative: carrier femtocell + ongoing carrier fees.

    The user "bear[s] all costs for backhaul, power, maintenance, and
    the equipment itself" yet still pays the carrier; coverage is
    indoor-grade.
    """
    bom = [BomItem("carrier femtocell (e.g. LTE network extender)",
                   250.0, 1)]
    return DeploymentPlan("Carrier femtocell", bom,
                          coverage_radius_m=50.0,
                          recurring_usd_per_month=monthly_fee_usd)
