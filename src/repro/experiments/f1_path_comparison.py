"""F1 — Figure 1: the user-plane path, dLTE vs carrier LTE.

The figure's claim in numbers: dLTE hands traffic to the Internet at the
AP; carrier LTE tunnels every packet through a distant EPC first. We
build both networks over the same town and OTT server and measure ping
RTT, forwarding hops, tunnel overhead, and attach latency, sweeping the
EPC's distance (Internet access delay) to show the penalty growing while
dLTE stays flat.
"""

from __future__ import annotations

from typing import List

from repro.core.network import CentralizedLTENetwork, DLTENetwork
from repro.metrics.tables import ResultTable
from repro.workloads.topology import RuralTown


def run(n_ues: int = 8, epc_delays_s: List[float] = (0.010, 0.030, 0.060),
        seed: int = 1) -> ResultTable:
    """One row per (architecture, EPC distance)."""
    table = ResultTable(
        "F1: user-plane path comparison (dLTE vs carrier LTE)",
        ["architecture", "epc_delay_ms", "rtt_ms", "hops",
         "tunnel_overhead_B", "attach_ms"])
    town = RuralTown(radius_m=1500, n_ues=n_ues, n_aps=1, seed=seed)

    dlte = DLTENetwork.build(town, seed=seed).run()
    table.add_row(architecture="dLTE", epc_delay_ms="n/a",
                  rtt_ms=dlte.mean_rtt_s * 1e3,
                  hops=max(dlte.hop_counts.values()),
                  tunnel_overhead_B=0,
                  attach_ms=dlte.mean_attach_s * 1e3)

    for epc_delay in epc_delays_s:
        carrier = CentralizedLTENetwork.build(
            town, seed=seed, epc_access_delay_s=epc_delay).run()
        table.add_row(architecture="Telecom LTE",
                      epc_delay_ms=epc_delay * 1e3,
                      rtt_ms=carrier.mean_rtt_s * 1e3,
                      hops=max(carrier.hop_counts.values()),
                      tunnel_overhead_B=carrier.tunnel_overhead_bytes,
                      attach_ms=carrier.mean_attach_s * 1e3)
    return table


def local_breakout_ablation(seed: int = 1) -> ResultTable:
    """Ablation: dLTE's advantage is *local breakout*, not the stub alone.

    A private-LTE-style on-premises EPC (1 ms away) nearly closes the
    latency gap — showing the penalty is the tunnel's geometry, which is
    the architectural point of Fig. 1.
    """
    from repro.core.network import PrivateLTENetwork

    table = ResultTable(
        "F1 ablation: where the core sits",
        ["architecture", "core_location", "rtt_ms", "hops"])
    town = RuralTown(radius_m=1500, n_ues=6, n_aps=1, seed=seed)
    rows = [
        ("dLTE", "on the AP", DLTENetwork.build(town, seed=seed)),
        ("Private LTE", "on premises (1 ms)",
         PrivateLTENetwork.build(town, seed=seed)),
        ("Telecom LTE", "carrier DC (30 ms)",
         CentralizedLTENetwork.build(town, seed=seed)),
    ]
    for name, location, net in rows:
        report = net.run()
        table.add_row(architecture=name, core_location=location,
                      rtt_ms=report.mean_rtt_s * 1e3,
                      hops=max(report.hop_counts.values()))
    return table
