"""Unit tests for Event / Timeout / AnyOf / AllOf (repro.simcore.events)."""

import pytest

from repro.simcore import Event, EventCancelled, Simulator


@pytest.fixture
def sim():
    return Simulator(seed=0)


def test_event_starts_pending(sim):
    ev = sim.event("e")
    assert not ev.triggered
    assert not ev.ok


def test_succeed_delivers_value(sim):
    ev = sim.event()
    got = []
    ev.add_callback(lambda e: got.append(e.value))
    ev.succeed(42)
    sim.run()
    assert got == [42]
    assert ev.ok and ev.triggered


def test_fail_delivers_exception(sim):
    ev = sim.event()
    boom = RuntimeError("boom")
    ev.fail(boom)
    sim.run()
    assert ev.triggered and not ev.ok
    assert ev.exception is boom


def test_fail_requires_exception_instance(sim):
    with pytest.raises(TypeError):
        sim.event().fail("not an exception")


def test_double_trigger_rejected(sim):
    ev = sim.event()
    ev.succeed()
    with pytest.raises(RuntimeError):
        ev.succeed()
    with pytest.raises(RuntimeError):
        ev.fail(ValueError())


def test_cancel_is_idempotent(sim):
    ev = sim.event()
    ev.cancel("gone")
    ev.cancel("again")  # no raise
    assert ev.triggered and not ev.ok
    assert isinstance(ev.exception, EventCancelled)


def test_callback_after_trigger_still_runs(sim):
    ev = sim.event()
    ev.succeed("v")
    got = []
    ev.add_callback(lambda e: got.append(e.value))
    sim.run()
    assert got == ["v"]


def test_callbacks_never_run_synchronously(sim):
    ev = sim.event()
    got = []
    ev.add_callback(lambda e: got.append(1))
    ev.succeed()
    assert got == []  # deferred until the loop runs
    sim.run()
    assert got == [1]


def test_timeout_fires_at_right_time(sim):
    t = sim.timeout(3.5, value="done")
    fired_at = []
    t.add_callback(lambda e: fired_at.append(sim.now))
    sim.run()
    assert fired_at == [3.5]
    assert t.value == "done"


def test_timeout_negative_rejected(sim):
    with pytest.raises(ValueError):
        sim.timeout(-1)


def test_any_of_fires_on_first(sim):
    slow = sim.timeout(10, "slow")
    fast = sim.timeout(2, "fast")
    race = sim.any_of([slow, fast])
    winner = []
    race.add_callback(lambda e: winner.append((sim.now, e.value.value)))
    sim.run(until=3)
    assert winner == [(2, "fast")]


def test_any_of_propagates_failure(sim):
    ev = sim.event()
    race = sim.any_of([ev, sim.timeout(100)])
    ev.fail(ValueError("bad"))
    sim.run(until=1)
    assert race.triggered and not race.ok
    assert isinstance(race.exception, ValueError)


def test_any_of_empty_rejected(sim):
    with pytest.raises(ValueError):
        sim.any_of([])


def test_all_of_waits_for_all(sim):
    t1, t2, t3 = sim.timeout(1, "a"), sim.timeout(3, "b"), sim.timeout(2, "c")
    combo = sim.all_of([t1, t2, t3])
    done = []
    combo.add_callback(lambda e: done.append((sim.now, e.value)))
    sim.run()
    assert done == [(3, ["a", "b", "c"])]  # values in construction order


def test_all_of_empty_succeeds_immediately(sim):
    combo = sim.all_of([])
    assert combo.triggered and combo.ok
    assert combo.value == []


def test_all_of_fails_fast(sim):
    ev = sim.event()
    combo = sim.all_of([ev, sim.timeout(100)])
    ev.fail(KeyError("x"))
    sim.run(until=1)
    assert combo.triggered and not combo.ok
    assert isinstance(combo.exception, KeyError)


def test_multiple_waiters_all_notified(sim):
    ev = sim.event()
    got = []
    for i in range(5):
        ev.add_callback(lambda e, i=i: got.append(i))
    ev.succeed()
    sim.run()
    assert got == [0, 1, 2, 3, 4]
