"""The centralized SAS: one API-driven grant database (CBRS model).

"In the United States, the Citizen's Broadband Radio Service will use
automated Spectrum Access Systems, contracted by the FCC and reachable
via API, to dole out geolocated licenses … based on local demand" (§4.3,
ref [38]).

Characteristics measured in E10: fast joins and queries (one RTT plus
processing), but a single point of failure — when the SAS is down,
nobody can join or discover.
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, List, Optional

from repro.simcore.simulator import Simulator
from repro.spectrum.grants import ApRecord, SpectrumGrant, in_contention
from repro.spectrum.registry import (
    DiscoverCallback,
    GrantCallback,
    SpectrumRegistry,
)


class SasRegistry(SpectrumRegistry):
    """One central grant server.

    Args:
        rtt_s: client-to-SAS round trip.
        processing_s: server-side handling per request.
        max_density_per_domain: refuse a grant when the contention domain
            already holds this many grants (local-demand admission, as a
            SAS would enforce).
    """

    #: CBRS-style lease: a grant is valid this long past its last
    #: successful heartbeat; None disables leasing (perpetual grants).
    DEFAULT_LEASE_S = 240.0

    def __init__(self, sim: Simulator, rtt_s: float = 0.050,
                 processing_s: float = 0.010,
                 max_density_per_domain: Optional[int] = None,
                 lease_s: Optional[float] = None) -> None:
        super().__init__(sim)
        if rtt_s < 0 or processing_s < 0:
            raise ValueError("latencies must be non-negative")
        if lease_s is not None and lease_s <= 0:
            raise ValueError("lease must be positive (or None)")
        self.rtt_s = rtt_s
        self.processing_s = processing_s
        self.max_density_per_domain = max_density_per_domain
        self.lease_s = lease_s
        self._grants: Dict[str, SpectrumGrant] = {}
        self._grant_ids = itertools.count(1)
        self._down = False
        self.refused = 0
        self.heartbeats_served = 0
        self.grants_expired = 0
        self._sweeping = False

    # -- availability ------------------------------------------------------------

    def fail(self) -> None:
        """Take the SAS offline (E10 failure injection)."""
        self._down = True

    def restore(self) -> None:
        """Bring the SAS back."""
        self._down = False

    def is_available(self) -> bool:
        return not self._down

    # -- lease expiry ------------------------------------------------------------
    #
    # ``SpectrumGrant.active_at`` is the single authority on whether a
    # grant is in force: density admission, discovery, and renewal all
    # consult it, and the sweep merely reclaims the book-keeping for
    # grants it already says are dead.

    def purge_expired(self) -> int:
        """Drop every grant whose lease has lapsed; returns the count."""
        now = self.sim.now
        lapsed = [ap_id for ap_id, g in self._grants.items()
                  if not g.active_at(now)]
        for ap_id in lapsed:
            grant = self._grants.pop(ap_id)
            self.grants_expired += 1
            self._m_expired.inc()
            self.sim.trace("spectrum", "grant expired",
                           ap=ap_id, grant=grant.grant_id)
        return len(lapsed)

    def start_expiry_sweep(self, interval_s: Optional[float] = None) -> None:
        """Run :meth:`purge_expired` periodically (idempotent).

        Defaults to half the lease; a no-op for lease-free registries.
        """
        if self._sweeping or self.lease_s is None:
            return
        self._sweeping = True
        period = interval_s if interval_s is not None else self.lease_s / 2.0
        if period <= 0:
            raise ValueError("sweep interval must be positive")

        def sweep():
            while self._sweeping:
                yield self.sim.timeout(period)
                self.purge_expired()

        self.sim.process(sweep(), name="sas-expiry-sweep")

    def stop_expiry_sweep(self) -> None:
        """Stop the periodic sweep (the lazy checks keep working)."""
        self._sweeping = False

    def _active_grant(self, ap_id: str) -> Optional[SpectrumGrant]:
        grant = self._grants.get(ap_id)
        if grant is not None and not grant.active_at(self.sim.now):
            return None
        return grant

    # -- operations --------------------------------------------------------------

    def request_grant(self, record: ApRecord, callback: GrantCallback) -> None:
        if self._down:
            self.sim.schedule(self.rtt_s, callback, None)  # timeout-ish
            return
        self.sim.schedule(self.rtt_s + self.processing_s,
                          self._decide_grant, record, callback)

    def _decide_grant(self, record: ApRecord, callback: GrantCallback) -> None:
        if self._down:
            callback(None)
            return
        if self.max_density_per_domain is not None:
            contenders = sum(
                1 for g in self._grants.values()
                if g.active_at(self.sim.now)
                and in_contention(g.record, record))
            if contenders >= self.max_density_per_domain:
                self.refused += 1
                self._m_refused.inc()
                callback(None)
                return
        expires = (self.sim.now + self.lease_s
                   if self.lease_s is not None else None)
        grant = SpectrumGrant(grant_id=f"sas-{next(self._grant_ids)}",
                              record=record, granted_at=self.sim.now,
                              expires_at=expires)
        self._grants[record.ap_id] = grant
        self.grants_issued += 1
        self._m_grants.inc()
        callback(grant)

    # -- CBRS heartbeat: leases must be renewed or transmission stops ---------------

    def heartbeat(self, ap_id: str,
                  callback: "Callable[[Optional[SpectrumGrant]], None]"
                  ) -> None:
        """Renew a grant's lease; ``callback(renewed_grant_or_None)``.

        CBRS semantics: a CBSD that cannot heartbeat must cease
        transmission when its lease lapses — so a SAS outage eventually
        silences *running* APs, not just joining ones (measured in E10).
        """
        if self._down:
            self.sim.schedule(self.rtt_s, callback, None)
            return
        self.sim.schedule(self.rtt_s + self.processing_s,
                          self._renew, ap_id, callback)

    def _renew(self, ap_id: str,
               callback: "Callable[[Optional[SpectrumGrant]], None]") -> None:
        if self._down:
            callback(None)
            return
        old = self._active_grant(ap_id)
        if old is None:
            # unknown or lapsed: a CBSD whose lease ran out during an
            # outage must re-register, not merely heartbeat
            self.purge_expired()
            callback(None)
            return
        self.heartbeats_served += 1
        self._m_heartbeats.inc()
        expires = (self.sim.now + self.lease_s
                   if self.lease_s is not None else None)
        renewed = SpectrumGrant(grant_id=old.grant_id, record=old.record,
                                granted_at=old.granted_at,
                                expires_at=expires)
        self._grants[ap_id] = renewed
        callback(renewed)

    def discover_neighbors(self, ap_id: str,
                           callback: DiscoverCallback) -> None:
        if self._down:
            self.sim.schedule(self.rtt_s, callback, [])
            return
        self.sim.schedule(self.rtt_s + self.processing_s,
                          self._answer_neighbors, ap_id, callback)

    def _answer_neighbors(self, ap_id: str, callback: DiscoverCallback) -> None:
        if self._down:
            callback([])
            return
        self.queries_served += 1
        self._m_queries.inc()
        me = self._active_grant(ap_id)
        if me is None:
            callback([])
            return
        now = self.sim.now
        neighbors = [g.record for other_id, g in self._grants.items()
                     if other_id != ap_id and g.active_at(now)
                     and in_contention(g.record, me.record)]
        callback(neighbors)

    def deregister(self, ap_id: str) -> None:
        self._grants.pop(ap_id, None)

    @property
    def active_grants(self) -> int:
        """Grants currently in force (``active_at`` now)."""
        now = self.sim.now
        return sum(1 for g in self._grants.values() if g.active_at(now))
