"""Exporter edge cases: label escaping, deferred quantiles, folded stacks.

Three corners the happy-path telemetry tests never hit:

* Prometheus text exposition requires backslash-escaping of ``\\``,
  ``"`` and newlines inside label values — a label carrying any of them
  must still produce a one-line, parseable series;
* the histogram's deferred P² pending buffer must survive being read
  *mid-run* (which flushes it) and then observed into again before the
  export read — estimates must match an eagerly-flushed twin exactly;
* the collapsed-stack (``.folded``) export must emit the
  ``frame;frame;leaf <integer>`` grammar flamegraph tooling parses,
  for both wall-clock callback sites and simulated-time span trees.
"""

import pytest

from repro.telemetry.exporters import (tagged_rows, write_folded,
                                       write_metrics_text)
from repro.telemetry.registry import Histogram, MetricsRegistry
from repro.telemetry.spans import SpanTracker


# -- Prometheus label-value escaping ------------------------------------------


def test_label_values_with_quotes_backslashes_newlines(tmp_path):
    registry = MetricsRegistry()
    registry.counter("odd.labels", path='C:\\temp\\"run"',
                     note="line one\nline two").inc(3)
    path = tmp_path / "metrics.txt"
    write_metrics_text(tagged_rows([("s0", registry)]), str(path))
    text = path.read_text()
    lines = text.splitlines()
    # escaping keeps the series on one physical line
    assert len(lines) == 1
    line = lines[0]
    assert line.endswith(" 3")
    assert r'path="C:\\temp\\\"run\""' in line
    assert r'note="line one\nline two"' in line
    # round-trip: unescaping recovers the original values
    unescaped = (line.replace("\\n", "\n").replace('\\"', '"')
                 .replace("\\\\", "\\"))
    assert 'C:\\temp\\"run"' in unescaped
    assert "line one\nline two" in unescaped


def test_plain_labels_stay_untouched(tmp_path):
    registry = MetricsRegistry()
    registry.counter("plain", arm="dlte").inc()
    path = tmp_path / "metrics.txt"
    write_metrics_text(tagged_rows([("s0", registry)]), str(path))
    assert 'arm="dlte"' in path.read_text()


# -- deferred quantile buffer mid-run reads -----------------------------------


def test_pending_replay_after_midrun_read_matches_eager():
    deferred = Histogram("h", {})
    eager = Histogram("h", {})
    samples1 = [float(i % 17) for i in range(200)]
    samples2 = [float((i * 7) % 23) for i in range(300)]
    for v in samples1:
        deferred.observe(v)
        eager.observe(v)
        eager.quantile(0.5)  # flush the twin every sample
    # mid-run read: flushes the 200 pending samples into the trackers
    mid = deferred.quantile(0.95)
    assert mid == eager.quantile(0.95)
    # keep observing: the buffer refills after the flush...
    for v in samples2:
        deferred.observe(v)
        eager.observe(v)
        eager.quantile(0.5)
    # ...and the export-time row replays only the *new* tail, in order
    row_d, row_e = deferred.row(), eager.row()
    assert row_d["count"] == row_e["count"] == 500
    for key in ("p50", "p95", "p99", "sum", "min", "max"):
        assert row_d[key] == row_e[key], key


def test_pending_buffer_flushes_at_cap():
    histogram = Histogram("h", {})
    for i in range(Histogram.PENDING_CAP + 10):
        histogram.observe(float(i))
    # cap reached mid-run: at most the post-flush tail is pending
    assert len(histogram._pending) == 10
    assert histogram.count == Histogram.PENDING_CAP + 10


# -- folded-stack export ------------------------------------------------------


class _FakeStats:
    def __init__(self, site, wall_s):
        self.site = site
        self.wall_s = wall_s


class _FakeProfiler:
    def __init__(self, stats):
        self.sites = {s.site: s for s in stats}
        self._stats = stats

    def top_sites(self, n):
        return self._stats[:n]


def test_folded_wall_lines_are_integer_microseconds(tmp_path):
    profiler = _FakeProfiler([
        _FakeStats("repro.epc.agents.ControlAgent._finish", 0.0884),
        _FakeStats("weird;site.fn", 0.001),
        _FakeStats("too.fast", 0.0000001),  # rounds to 0 us: dropped
    ])
    path = tmp_path / "p.folded"
    count = write_folded(str(path), profiler=profiler)
    lines = path.read_text().splitlines()
    assert count == len(lines) == 2
    assert "wall;repro;epc;agents;ControlAgent;_finish 88400" in lines
    # semicolons inside a site never produce phantom frames
    assert "wall;weird_site;fn 1000" in lines
    for line in lines:
        stack, _, value = line.rpartition(" ")
        assert stack and int(value) > 0


def test_folded_span_trees_subtract_child_time(tmp_path):
    clock = {"now": 0.0}
    tracker = SpanTracker(lambda: clock["now"])
    root = tracker.begin("attach")
    clock["now"] = 0.5
    child = tracker.begin("paging", parent=root)
    clock["now"] = 0.8
    child.end()
    clock["now"] = 1.0
    root.end()
    path = tmp_path / "spans.folded"
    count = write_folded(str(path), span_trackers=[("dlte", tracker)])
    assert count == 2
    lines = dict(line.rsplit(" ", 1)
                 for line in path.read_text().splitlines())
    # root self-time: 1.0 total - 0.3 child = 0.7 s
    assert int(lines["sim:dlte;attach"]) == 700000
    assert int(lines["sim:dlte;attach;paging"]) == 300000


def test_folded_empty_inputs_write_empty_file(tmp_path):
    path = tmp_path / "empty.folded"
    assert write_folded(str(path)) == 0
    assert path.read_text() == ""
