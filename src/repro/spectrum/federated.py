"""The federated registry: DNS-like regional delegation.

"Different registry designs are also possible, such as a federated
system similar to the DNS" (§4.3). Space is divided into square regions,
each owned by an authority node. A client talks to the authority for its
own region (one referral RTT on first contact, cached after); neighbor
discovery near region edges fans out to adjacent authorities.

Characteristics measured in E10: joins almost as fast as the SAS,
discovery slightly slower near borders, and *partial* failure — one
authority down blacks out only its region.
"""

from __future__ import annotations

import itertools
import math
from typing import Dict, List, Optional, Set, Tuple

from repro.geo.points import Point
from repro.simcore.simulator import Simulator
from repro.spectrum.grants import ApRecord, SpectrumGrant, contention_radius_m, in_contention
from repro.spectrum.registry import (
    DiscoverCallback,
    GrantCallback,
    SpectrumRegistry,
)

RegionKey = Tuple[int, int]


class FederatedRegistry(SpectrumRegistry):
    """Regional authorities over a square grid.

    Args:
        region_size_m: edge length of each authority's region.
        rtt_s: client-to-authority round trip.
        referral_rtt_s: extra root-referral RTT on first contact with a
            region (cached per client afterwards; we model the cache as
            per-AP).
    """

    def __init__(self, sim: Simulator, region_size_m: float = 20_000.0,
                 rtt_s: float = 0.040, referral_rtt_s: float = 0.040,
                 processing_s: float = 0.005) -> None:
        super().__init__(sim)
        if region_size_m <= 0:
            raise ValueError("region size must be positive")
        self.region_size_m = region_size_m
        self.rtt_s = rtt_s
        self.referral_rtt_s = referral_rtt_s
        self.processing_s = processing_s
        self._grants: Dict[RegionKey, Dict[str, SpectrumGrant]] = {}
        self._region_of: Dict[str, RegionKey] = {}
        self._grant_ids = itertools.count(1)
        self._failed_regions: Set[RegionKey] = set()
        self._known_regions: Dict[str, Set[RegionKey]] = {}  # ap -> cached
        self.refused = 0

    # -- geometry ---------------------------------------------------------------

    def region_key(self, position: Point) -> RegionKey:
        """The authority owning ``position``."""
        return (int(math.floor(position.x / self.region_size_m)),
                int(math.floor(position.y / self.region_size_m)))

    def _regions_within(self, position: Point, radius_m: float) -> List[RegionKey]:
        """All regions a footprint of ``radius_m`` around ``position`` touches."""
        lo_x, hi_x = position.x - radius_m, position.x + radius_m
        lo_y, hi_y = position.y - radius_m, position.y + radius_m
        keys = []
        for gx in range(int(math.floor(lo_x / self.region_size_m)),
                        int(math.floor(hi_x / self.region_size_m)) + 1):
            for gy in range(int(math.floor(lo_y / self.region_size_m)),
                            int(math.floor(hi_y / self.region_size_m)) + 1):
                keys.append((gx, gy))
        return keys

    # -- availability ---------------------------------------------------------------

    def fail_region(self, key: RegionKey) -> None:
        """Take one regional authority offline."""
        self._failed_regions.add(key)

    def restore_region(self, key: RegionKey) -> None:
        """Bring a regional authority back."""
        self._failed_regions.discard(key)

    def is_available(self) -> bool:
        """True when at least one authority is serving (partial by design)."""
        return True  # the federation as a whole has no single off switch

    def region_available(self, key: RegionKey) -> bool:
        """Is a specific region's authority up?"""
        return key not in self._failed_regions

    # -- operations --------------------------------------------------------------------

    def _contact_latency(self, ap_id: str, region: RegionKey) -> float:
        known = self._known_regions.setdefault(ap_id, set())
        if region in known:
            return self.rtt_s + self.processing_s
        known.add(region)
        return self.rtt_s + self.referral_rtt_s + self.processing_s

    def request_grant(self, record: ApRecord, callback: GrantCallback) -> None:
        region = self.region_key(record.position)
        latency = self._contact_latency(record.ap_id, region)
        if region in self._failed_regions:
            self.refused += 1
            self._m_refused.inc()
            self.sim.schedule(latency, callback, None)
            return
        self.sim.schedule(latency, self._issue, region, record, callback)

    def _issue(self, region: RegionKey, record: ApRecord,
               callback: GrantCallback) -> None:
        if region in self._failed_regions:
            callback(None)
            return
        grant = SpectrumGrant(grant_id=f"fed-{next(self._grant_ids)}",
                              record=record, granted_at=self.sim.now)
        self._grants.setdefault(region, {})[record.ap_id] = grant
        self._region_of[record.ap_id] = region
        self.grants_issued += 1
        self._m_grants.inc()
        callback(grant)

    def discover_neighbors(self, ap_id: str,
                           callback: DiscoverCallback) -> None:
        home = self._region_of.get(ap_id)
        if home is None:
            self.sim.schedule(self.rtt_s, callback, [])
            return
        me = self._grants[home][ap_id]
        radius = 2 * contention_radius_m(me.record.band, me.record.eirp_dbm)
        regions = self._regions_within(me.record.position, radius)
        # one (possibly referred) round trip per distinct authority,
        # queried in parallel: latency is the max of the contacts
        latency = max(self._contact_latency(ap_id, r) for r in regions)
        self.sim.schedule(latency, self._answer, ap_id, me, regions, callback)

    def _answer(self, ap_id: str, me: SpectrumGrant,
                regions: List[RegionKey], callback: DiscoverCallback) -> None:
        neighbors: List[ApRecord] = []
        for region in regions:
            if region in self._failed_regions:
                continue  # that slice of the map is dark
            for other_id, grant in self._grants.get(region, {}).items():
                if other_id != ap_id and in_contention(grant.record, me.record):
                    neighbors.append(grant.record)
        self.queries_served += 1
        self._m_queries.inc()
        callback(neighbors)

    def deregister(self, ap_id: str) -> None:
        region = self._region_of.pop(ap_id, None)
        if region is not None:
            self._grants.get(region, {}).pop(ap_id, None)

    @property
    def active_grants(self) -> int:
        """Grants across all regions."""
        return sum(len(g) for g in self._grants.values())
