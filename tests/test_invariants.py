"""Tests for the runtime invariant layer (repro.invariants).

The checker must (a) catch deliberately broken conservation laws — the
negative tests seed a bug and demand a violation — and (b) be perfectly
passive when armed on a healthy run: same tables, no violations.
"""

import dataclasses

import pytest

from repro.core.network import CentralizedLTENetwork, DLTENetwork
from repro.epc.ue import UeState
from repro.invariants import (
    InvariantChecker,
    InvariantError,
    watch_federation,
    watch_network,
)
from repro.net.links import Link
from repro.net.packet import Packet
from repro.simcore import Simulator
from repro.workloads import RuralTown

TOWN = RuralTown(radius_m=1500, n_ues=6, n_aps=2, seed=3)


def _pkt(size=100):
    return Packet(src=None, dst=None, size_bytes=size)


def _loaded_link(seed=0):
    sim = Simulator(seed)
    link = Link(sim, rate_bps=8000.0, delay_s=1e-3, queue_packets=4,
                name="audited")
    link.connect(lambda p: None)
    return sim, link


# -- link conservation --------------------------------------------------------------


def test_healthy_link_has_no_violations():
    sim, link = _loaded_link()
    checker = InvariantChecker(sim)
    checker.watch_link(link)
    for _ in range(10):
        link.send(_pkt())
    sim.run()
    assert checker.check_now() == []
    checker.verify()  # must not raise
    assert checker.checks_run >= 2


def test_seeded_packet_leak_is_caught():
    # deliberately break conservation: a packet "delivered" that was
    # never offered — the negative test the acceptance demands
    sim, link = _loaded_link()
    checker = InvariantChecker(sim)
    checker.watch_link(link)
    for _ in range(5):
        link.send(_pkt())
    sim.run()
    link.delivered += 1  # the seeded bug
    violations = checker.check_now()
    assert len(violations) == 1
    assert violations[0].check == "link-conservation"
    assert "packet leak" in violations[0].detail
    with pytest.raises(InvariantError, match="packet leak"):
        checker.verify()
    # the violation also lands in the sim's metrics
    assert sim.metrics.counter("invariants.violations").value >= 1


def test_unattributed_drop_is_caught():
    sim, link = _loaded_link()
    checker = InvariantChecker(sim)
    checker.watch_link(link)
    link.send(_pkt())
    sim.run()
    link.dropped += 1  # a drop with no cause counter: must be flagged
    link.delivered -= 1  # keep the totals law intact; isolate attribution
    details = [v.detail for v in checker.check_now()]
    assert any("unattributed drops" in d for d in details)


def test_armed_sweep_records_mid_run_violation():
    sim, link = _loaded_link()
    checker = InvariantChecker(sim)
    checker.watch_link(link)
    checker.arm(period_s=0.5)
    sim.at(1.0, lambda: setattr(link, "delivered", link.delivered + 7))
    sim.run(until=3.0)
    assert checker.violations
    # caught by the first sweep at or after the tampering, not only at
    # the end-of-run verify
    assert 1.0 <= checker.violations[0].time_s <= 1.5


# -- clock monotonicity -------------------------------------------------------------


def test_clock_check_passes_on_healthy_sim():
    sim = Simulator(0)
    checker = InvariantChecker(sim)
    checker.watch_clock()
    sim.at(1.0, lambda: None)
    sim.run()
    assert checker.check_now() == []


# -- NAS legality -------------------------------------------------------------------


def test_illegal_attach_transition_is_caught():
    sim = Simulator(0)
    checker = InvariantChecker(sim)

    class FakeUe:
        name = "ue-fake"
        _state_observer = None

    ue = FakeUe()
    checker.watch_ue(ue)
    # IDLE -> ATTACHED without ATTACHING: illegal, checked per-transition
    ue._state_observer(ue, UeState.IDLE, UeState.ATTACHED)
    assert len(checker.violations) == 1
    assert checker.violations[0].check == "nas-legality"
    # the legal path records nothing
    ue._state_observer(ue, UeState.ATTACHING, UeState.ATTACHED)
    assert len(checker.violations) == 1


# -- whole-network wiring -----------------------------------------------------------


def _report_fingerprint(report):
    return dataclasses.asdict(report)


def test_watch_network_covers_dlte_and_stays_clean():
    net = DLTENetwork.build(TOWN, seed=3)
    checker = watch_network(net)
    assert len(checker._checks) > 5  # links, NATs, tunnels, clock, spectrum
    net.run(duration_s=5.0)
    checker.verify()
    assert checker.checks_run > 0
    assert checker.violations == []


def test_watch_network_covers_centralized():
    net = CentralizedLTENetwork.build(TOWN, seed=3)
    checker = watch_network(net)
    net.run(duration_s=5.0)
    checker.verify()


def test_armed_checker_changes_no_tables():
    # passivity: an armed checker must not perturb the simulation —
    # the instrumented run's report is identical field-for-field
    plain = DLTENetwork.build(TOWN, seed=3).run(duration_s=5.0)
    watched_net = DLTENetwork.build(TOWN, seed=3)
    checker = watch_network(watched_net)
    watched = watched_net.run(duration_s=5.0)
    assert _report_fingerprint(watched) == _report_fingerprint(plain)
    checker.verify()


def test_federation_flags_overlapping_slices():
    net = DLTENetwork.build(TOWN, seed=3)
    net.run(duration_s=3.0)
    sim = net.sim
    checker = InvariantChecker(sim)
    watch_federation(checker, net.aps, registry=net.spectrum_registry)
    assert checker.check_now() == []  # converged slices are disjoint
    # seed a split-brain: both APs claim the full grid simultaneously
    for ap in net.aps.values():
        ap.cell.allowed_prbs = frozenset(range(3))
    details = [v.check for v in checker.check_now()]
    assert "spectrum-non-overlap" in details
