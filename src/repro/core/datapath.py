"""User-plane data paths: local breakout vs EPC tunneling (Figure 1).

dLTE needs no machinery here — the stub terminates GTP on-box and the
AP's router forwards plain IP. Carrier LTE's user plane is this module:

* :class:`EnbDataPlane` — at each cell site: uplink traffic is GTP-
  encapsulated toward the EPC; downlink GTP from the EPC is terminated
  and handed to the client.
* :class:`EpcDataPlane` — at the EPC site (S-GW/P-GW user plane,
  co-located): terminates uplink tunnels and forwards to the Internet;
  wraps downlink traffic for whichever eNodeB currently serves the UE.

Every user packet therefore crosses the Internet *twice* on the carrier
path (AP -> EPC -> Internet), carrying 36 bytes of GTP overhead on the
first leg — exactly the triangle F1 measures.
"""

from __future__ import annotations

import itertools
from typing import Dict, Optional

from repro.net.addressing import IPv4Address
from repro.net.nodes import Host, NetworkNode
from repro.net.packet import Packet
from repro.net.tunnel import GtpTunnel, TunnelEndpoint
from repro.simcore.simulator import Simulator

_teids = itertools.count(5000)


class EnbDataPlane(NetworkNode):
    """Cell-site user plane: the S1-U end of the bearer."""

    def __init__(self, sim: Simulator, name: str, address: IPv4Address,
                 epc_address: IPv4Address, uplink_via: str) -> None:
        super().__init__(sim, name)
        self.address = address
        self.epc_address = epc_address
        self.uplink_via = uplink_via          # neighbour name toward the EPC
        self.tunnels = TunnelEndpoint(address)
        self._ue_host_by_addr: Dict[IPv4Address, str] = {}
        self._uplink_teid: Optional[int] = None
        #: optional per-bearer QoS gate (repro.epc.qos.BearerPolicer);
        #: None keeps the seed's unpoliced path at one is-None check
        self.policer = None

    def open_bearer(self) -> int:
        """Create the site's uplink tunnel toward the EPC (idempotent)."""
        if self._uplink_teid is None:
            teid = next(_teids)
            self.tunnels.add_tunnel(GtpTunnel(teid, self.address,
                                              self.epc_address))
            self._uplink_teid = teid
        return self._uplink_teid

    def register_ue(self, ue_address: IPv4Address, ue_host: Host) -> None:
        """Bind a UE's bearer address to its host (downlink delivery)."""
        self._ue_host_by_addr[ue_address] = ue_host.name

    def deregister_ue(self, ue_address: IPv4Address) -> None:
        """Remove the binding on detach/handover-away."""
        self._ue_host_by_addr.pop(ue_address, None)

    def handle(self, packet: Packet) -> None:
        if packet.dst == self.address and packet.tunnel_depth > 0:
            # downlink: terminate GTP, deliver to the client
            self.tunnels.decapsulate(packet)
            host_name = self._ue_host_by_addr.get(packet.dst)
            if host_name is not None and host_name in self.links:
                self.send_via(host_name, packet)
            return
        # uplink from a UE: wrap and push toward the EPC
        if self._uplink_teid is None:
            return  # no bearer yet: drop
        if self.policer is not None and not self.policer.admit(packet):
            return  # shed at the cell site, accounted by the policer
        self.tunnels.encapsulate(packet, self._uplink_teid)
        self.send_via(self.uplink_via, packet)


class EpcDataPlane(NetworkNode):
    """EPC-site user plane: S-GW/P-GW combined (co-located gateways)."""

    def __init__(self, sim: Simulator, name: str, address: IPv4Address,
                 internet_via: str,
                 processing_delay_s: float = 0.2e-3) -> None:
        super().__init__(sim, name)
        self.address = address
        self.internet_via = internet_via
        self.processing_delay_s = processing_delay_s
        self.tunnels = TunnelEndpoint(address)
        self._enb_by_ue_addr: Dict[IPv4Address, IPv4Address] = {}
        self._teid_by_enb: Dict[IPv4Address, int] = {}
        self.uplink_packets = 0
        self.downlink_packets = 0
        #: optional per-bearer QoS gate (repro.epc.qos.BearerPolicer)
        self.policer = None

    def register_ue(self, ue_address: IPv4Address,
                    enb_address: IPv4Address) -> None:
        """Point a UE's downlink bearer at its serving eNodeB.

        Re-registering with a new eNodeB is the data-plane half of an
        MME path switch.
        """
        self._enb_by_ue_addr[ue_address] = enb_address
        if enb_address not in self._teid_by_enb:
            teid = next(_teids)
            self.tunnels.add_tunnel(GtpTunnel(teid, self.address, enb_address))
            self._teid_by_enb[enb_address] = teid

    def deregister_ue(self, ue_address: IPv4Address) -> None:
        """Release a UE's downlink binding."""
        self._enb_by_ue_addr.pop(ue_address, None)

    def handle(self, packet: Packet) -> None:
        self.sim.schedule(self.processing_delay_s, self._process, packet)

    def _process(self, packet: Packet) -> None:
        if packet.dst == self.address and packet.tunnel_depth > 0:
            # uplink: terminate the bearer, forward to the Internet
            self.tunnels.decapsulate(packet)
            if self.policer is not None and not self.policer.admit(packet):
                return  # shed at the S-GW/P-GW, accounted by the policer
            self.uplink_packets += 1
            self.send_via(self.internet_via, packet)
            return
        # downlink: find the serving eNodeB and wrap
        enb_address = self._enb_by_ue_addr.get(packet.dst)
        if enb_address is None:
            return  # UE unknown (detached): drop
        if self.policer is not None and not self.policer.admit(packet):
            return
        self.downlink_packets += 1
        self.tunnels.encapsulate(packet, self._teid_by_enb[enb_address])
        self.send_via(self.internet_via, packet)
