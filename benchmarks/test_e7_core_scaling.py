"""Bench E7 — centralized EPC vs per-site stubs under attach storms (§4.1)."""

from conftest import emit, once

from repro.experiments import e7_core_scaling


def test_e7_core_scaling(benchmark):
    table = once(benchmark, e7_core_scaling.run)
    emit(table)
    central = [row for row in table.rows
               if row["architecture"] == "centralized EPC"]
    stubs = [row for row in table.rows if row["architecture"] == "dLTE stubs"]

    # stubs: flat attach latency regardless of federation size
    stub_means = [row["mean_attach_ms"] for row in stubs]
    assert max(stub_means) - min(stub_means) < 5.0

    # centralized: latency explodes once the shared MME saturates
    central_means = [row["mean_attach_ms"] for row in central]
    assert central_means[-1] > 5 * central_means[0]
    assert central[-1]["core_peak_queue"] > 100
    assert stubs[-1]["core_peak_queue"] < 5

    # even unloaded, the stub attach is several times faster (no
    # backhaul round trips in the control plane)
    assert central_means[0] > 3 * stub_means[0]
