"""Unit tests for the CSMA/DCF simulation, Bianchi model, and timing limits."""

import numpy as np
import pytest

from repro.mac import (
    CsmaNode,
    CsmaSimulation,
    LTE_MAX_CELL_RANGE_M,
    WIFI_DEFAULT_ACK_RANGE_M,
    bianchi_throughput,
    lte_timing_advance_steps,
    max_range_supported_m,
    propagation_delay_s,
)


def _fully_connected(n, frame_slots=50, seed=0):
    ids = [f"s{i}" for i in range(n)] + ["ap"]
    everyone = frozenset(ids)
    nodes = [CsmaNode(f"s{i}", hears=everyone - {f"s{i}"}, destination="ap")
             for i in range(n)]
    nodes.append(CsmaNode("ap", hears=everyone - {"ap"}, saturated=False))
    return CsmaSimulation(nodes, np.random.default_rng(seed),
                          frame_slots=frame_slots)


def test_single_node_no_collisions():
    sim = _fully_connected(1)
    res = sim.run(50_000)
    assert res.total_collided == 0
    # mean backoff ~8 slots between 50-slot frames -> ~0.86 utilization
    assert res.channel_utilization > 0.8


def test_two_connected_nodes_rarely_collide():
    res = _fully_connected(2).run(100_000)
    assert res.collision_rate < 0.25
    assert res.channel_utilization > 0.6


def test_utilization_degrades_with_contention():
    """More contenders -> more collisions, the CSMA scaling pathology."""
    few = _fully_connected(2).run(150_000)
    many = _fully_connected(20).run(150_000)
    assert many.collision_rate > few.collision_rate


def test_simulation_matches_bianchi_fully_connected():
    for n in (3, 10):
        sim = _fully_connected(n, frame_slots=50, seed=n)
        res = sim.run(300_000)
        analytic = bianchi_throughput(n, frame_slots=50)
        assert res.channel_utilization == pytest.approx(analytic, abs=0.06)


def test_hidden_terminal_much_worse_than_connected():
    """E8 core effect: hidden pairs collide far more than connected ones."""
    connected = _fully_connected(2, seed=3).run(200_000)
    nodes = [
        CsmaNode("a", hears=frozenset({"ap"}), destination="ap"),
        CsmaNode("c", hears=frozenset({"ap"}), destination="ap"),
        CsmaNode("ap", hears=frozenset({"a", "c"}), saturated=False),
    ]
    hidden = CsmaSimulation(nodes, np.random.default_rng(3), 50).run(200_000)
    # BEB partially adapts (CW grows), but hidden pairs still collide
    # roughly twice as often and deliver less useful channel time.
    assert hidden.collision_rate > 1.5 * connected.collision_rate
    assert hidden.channel_utilization < connected.channel_utilization


def test_harmless_overlap_outside_receiver_range():
    # a->b and c->d far apart: both transmit concurrently, neither receiver
    # hears the other transmitter, so spatial reuse succeeds.
    nodes = [
        CsmaNode("a", hears=frozenset({"b"}), destination="b"),
        CsmaNode("b", hears=frozenset({"a"}), saturated=False),
        CsmaNode("c", hears=frozenset({"d"}), destination="d"),
        CsmaNode("d", hears=frozenset({"c"}), saturated=False),
    ]
    res = CsmaSimulation(nodes, np.random.default_rng(1), 50).run(100_000)
    assert res.total_collided == 0
    # two parallel links exceed one channel's worth of delivery
    assert res.channel_utilization > 1.5


def test_duplicate_ids_rejected():
    nodes = [CsmaNode("x"), CsmaNode("x")]
    with pytest.raises(ValueError):
        CsmaSimulation(nodes, np.random.default_rng(0))


def test_bad_frame_slots_rejected():
    with pytest.raises(ValueError):
        CsmaSimulation([CsmaNode("x")], np.random.default_rng(0), frame_slots=0)


def test_deliveries_conserved():
    sim = _fully_connected(5, seed=9)
    res = sim.run(100_000)
    for node in sim.nodes.values():
        assert node.sent >= node.delivered + node.collided - 1  # one in flight


def test_bianchi_monotone_decreasing_in_n():
    values = [bianchi_throughput(n, 50) for n in (1, 5, 20, 50)]
    assert all(a >= b for a, b in zip(values, values[1:]))
    assert 0 < values[-1] < values[0] <= 1.0


def test_bianchi_longer_frames_amortize_overhead():
    assert bianchi_throughput(10, 200) > bianchi_throughput(10, 20)


def test_bianchi_validates():
    with pytest.raises(ValueError):
        bianchi_throughput(0)


# -- timing / range limits -----------------------------------------------------

def test_propagation_delay():
    assert propagation_delay_s(299_792_458.0) == pytest.approx(1.0)
    with pytest.raises(ValueError):
        propagation_delay_s(-1)


def test_ta_zero_at_zero_distance():
    assert lte_timing_advance_steps(0) == 0


def test_ta_steps_grow_with_distance():
    assert lte_timing_advance_steps(10_000) > lte_timing_advance_steps(1000) > 0


def test_ta_covers_100km_but_not_beyond():
    lte_timing_advance_steps(99_000)  # fine
    with pytest.raises(ValueError):
        lte_timing_advance_steps(110_000)


def test_ta_step_is_about_78m():
    # one TA step corresponds to ~78 m of one-way range
    assert lte_timing_advance_steps(78) == 1
    assert lte_timing_advance_steps(156) == 2


def test_range_limits_lte_vs_wifi():
    """§3.2: LTE's scheduler compensates delay; stock WiFi dies ~km scale."""
    assert max_range_supported_m("lte") == LTE_MAX_CELL_RANGE_M
    assert max_range_supported_m("wifi") == WIFI_DEFAULT_ACK_RANGE_M
    assert LTE_MAX_CELL_RANGE_M > 30 * WIFI_DEFAULT_ACK_RANGE_M
    with pytest.raises(ValueError):
        max_range_supported_m("zigbee")
