"""Hybrid ARQ with chase combining.

§3.2: "hybrid ARQ increases throughput under weak signal conditions."

The model: a transport block sent at an MCS whose threshold exceeds the
actual SINR fails its first decode with a BLER that grows with the SINR
shortfall. Each HARQ retransmission is soft-combined (chase combining),
adding ~3 dB of effective SINR per copy, so blocks that miss by a few dB
still get through after one or two retransmissions instead of being lost.
WiFi's plain ARQ retransmits without combining: a retry faces the same
error probability as the original, so weak links collapse instead of
degrading.

``harq_goodput_factor`` gives the expected efficiency multiplier
(successful deliveries per transmission attempt) from which E4 computes
goodput; :class:`HarqProcess` is the event-level per-block state machine
used inside the LTE MAC.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.phy.vmath import exp_exact

#: Effective SINR gain of soft-combining one extra copy (chase combining).
COMBINING_GAIN_DB = 3.0

#: Logistic BLER steepness: ~1.5 dB from 90% to 10% BLER.
_BLER_SLOPE_PER_DB = 1.5


def block_error_rate(sinr_db: float, mcs_threshold_db: float) -> float:
    """Initial-transmission BLER for an MCS at an operating SINR.

    Calibrated so BLER = 10% exactly at the table threshold (the tables'
    definition of "threshold"), rising logistically below it.
    """
    shortfall = mcs_threshold_db - sinr_db
    # logistic centred so that bler(threshold) = 0.1:
    # sigmoid(-log 9) = 0.1, and each dB of shortfall adds slope to x.
    x = _BLER_SLOPE_PER_DB * shortfall - math.log(9.0)
    return 1.0 / (1.0 + math.exp(-x))


def harq_goodput_factor(sinr_db: float, mcs_threshold_db: float,
                        max_retx: int = 3,
                        combining: bool = True) -> float:
    """Expected successfully-delivered blocks per transmission attempt.

    With combining, attempt k (0-based) sees an effective SINR of
    ``sinr + k * 3 dB``. Without (plain ARQ), every attempt sees the raw
    SINR. The factor multiplies the nominal MCS efficiency to give
    goodput; it accounts both for lost blocks (all attempts fail) and the
    airtime consumed by retransmissions.
    """
    if max_retx < 0:
        raise ValueError("max_retx must be non-negative")
    p_reach = 1.0  # probability the process reaches attempt k
    expected_attempts = 0.0
    p_delivered = 0.0
    for k in range(max_retx + 1):
        eff_sinr = sinr_db + (COMBINING_GAIN_DB * k if combining else 0.0)
        bler = block_error_rate(eff_sinr, mcs_threshold_db)
        expected_attempts += p_reach
        p_delivered += p_reach * (1.0 - bler)
        p_reach *= bler
    if expected_attempts == 0.0:
        return 0.0
    return p_delivered / expected_attempts


def harq_goodput_factor_many(sinr_db: Sequence[float],
                             mcs_threshold_db: Sequence[float],
                             max_retx: int = 3,
                             combining: bool = True) -> np.ndarray:
    """Vectorized :func:`harq_goodput_factor` over per-UE arrays.

    Bit-identical to the scalar loop: the attempt recursion is the same
    closed form unrolled over ``max_retx + 1`` array steps (IEEE
    add/mul/div are exactly specified), and the one transcendental —
    the logistic's ``exp`` — goes through the libm element map
    (``repro.phy.vmath.exp_exact``), because numpy's SIMD ``exp``
    rounds differently on ~5% of inputs. This is the batch TTI
    engine's HARQ step; the scalar function stays the reference.
    """
    if max_retx < 0:
        raise ValueError("max_retx must be non-negative")
    sinr = np.asarray(sinr_db, dtype=float)
    thresh = np.asarray(mcs_threshold_db, dtype=float)
    log9 = math.log(9.0)
    p_reach = np.ones_like(sinr)
    expected_attempts = np.zeros_like(sinr)
    p_delivered = np.zeros_like(sinr)
    for k in range(max_retx + 1):
        eff_sinr = sinr + (COMBINING_GAIN_DB * k if combining else 0.0)
        shortfall = thresh - eff_sinr
        x = _BLER_SLOPE_PER_DB * shortfall - log9
        bler = 1.0 / (1.0 + exp_exact(-x))
        expected_attempts = expected_attempts + p_reach
        p_delivered = p_delivered + p_reach * (1.0 - bler)
        p_reach = p_reach * bler
    return p_delivered / expected_attempts


@dataclass
class HarqProcess:
    """Per-transport-block HARQ state (one of the 8 LTE stop-and-wait lanes).

    Drive it with :meth:`attempt`: feed the SINR of each transmission and a
    uniform random draw; it tracks soft-combining gain and reports delivery
    or exhaustion.
    """

    process_id: int
    max_retx: int = 3
    combining: bool = True
    attempts: int = 0
    delivered: bool = False
    exhausted: bool = False
    _history: List[float] = field(default_factory=list)

    def effective_sinr_db(self, raw_sinr_db: float) -> float:
        """SINR after combining gain from prior failed attempts."""
        if not self.combining:
            return raw_sinr_db
        return raw_sinr_db + COMBINING_GAIN_DB * self.attempts

    def attempt(self, raw_sinr_db: float, mcs_threshold_db: float,
                uniform_draw: float) -> bool:
        """Make one (re)transmission attempt; returns True on decode success.

        Raises if the process already finished (delivered or exhausted).
        """
        if self.delivered or self.exhausted:
            raise RuntimeError(f"HARQ process {self.process_id} already finished")
        eff = self.effective_sinr_db(raw_sinr_db)
        bler = block_error_rate(eff, mcs_threshold_db)
        self._history.append(eff)
        success = uniform_draw >= bler
        self.attempts += 1
        if success:
            self.delivered = True
        elif self.attempts > self.max_retx:
            self.exhausted = True
        return success

    def reset(self) -> None:
        """Recycle the process for a new transport block."""
        self.attempts = 0
        self.delivered = False
        self.exhausted = False
        self._history.clear()

    @property
    def finished(self) -> bool:
        """True once delivered or out of retransmissions."""
        return self.delivered or self.exhausted
