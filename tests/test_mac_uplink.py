"""Unit tests for the SC-FDMA contiguous uplink scheduler."""

import pytest

from repro.mac import (
    ContiguousUplinkScheduler,
    SchedulableUser,
    contiguity_loss,
    contiguous_runs,
)


def _users(*sinrs):
    return [SchedulableUser(f"u{i}", s) for i, s in enumerate(sinrs)]


# -- runs ------------------------------------------------------------------------

def test_runs_of_contiguous_set():
    assert contiguous_runs(frozenset(range(5))) == [(0, 5)]


def test_runs_of_fragmented_set():
    prbs = frozenset({0, 1, 2, 10, 11, 40})
    assert contiguous_runs(prbs) == [(0, 3), (10, 2), (40, 1)]


def test_runs_empty():
    assert contiguous_runs(frozenset()) == []


# -- contiguity of grants -------------------------------------------------------------

def _assert_contiguous(grants):
    for uid, prbs in grants.items():
        if prbs:
            lst = sorted(prbs)
            assert lst == list(range(lst[0], lst[0] + len(lst))), uid


def test_every_grant_is_one_block():
    sched = ContiguousUplinkScheduler()
    grants = sched.allocate(_users(10, 15, 5, 20), frozenset(range(50)))
    _assert_contiguous(grants)
    # grants are disjoint
    all_prbs = [p for g in grants.values() for p in g]
    assert len(all_prbs) == len(set(all_prbs))


def test_everyone_gets_a_block_on_a_clean_grid():
    sched = ContiguousUplinkScheduler()
    grants = sched.allocate(_users(10, 10, 10), frozenset(range(30)))
    assert all(len(g) >= 1 for g in grants.values())
    assert sum(len(g) for g in grants.values()) >= 27  # near-full use


def test_grants_respect_fragmented_allowed_set():
    sched = ContiguousUplinkScheduler()
    allowed = frozenset(range(0, 10)) | frozenset(range(30, 35))
    grants = sched.allocate(_users(10, 10), allowed)
    _assert_contiguous(grants)
    for g in grants.values():
        assert frozenset(g) <= allowed
        # a block never spans the gap
        if g:
            assert max(g) - min(g) == len(g) - 1


def test_unreachable_users_excluded():
    sched = ContiguousUplinkScheduler()
    grants = sched.allocate(_users(-30, 10), frozenset(range(20)))
    assert "u0" not in grants


def test_contiguity_loss_zero_on_unfragmented_grid():
    loss = contiguity_loss(_users(10, 10, 10), frozenset(range(48)))
    assert loss == pytest.approx(0.0, abs=0.05)


def test_contiguity_loss_grows_with_fragmentation():
    # many tiny fragments, few users: blocks can't cover the crumbs
    fragments = frozenset().union(
        *(range(i * 10, i * 10 + 2) for i in range(5)))  # 5 x 2-PRB shards
    loss_fragmented = contiguity_loss(_users(10, 10), fragments)
    loss_clean = contiguity_loss(_users(10, 10), frozenset(range(10)))
    assert loss_fragmented > loss_clean


def test_contiguity_loss_edge_cases():
    assert contiguity_loss([], frozenset(range(10))) == 0.0
    assert contiguity_loss(_users(10), frozenset()) == 0.0


def test_fair_sharing_slices_are_scfdma_friendly():
    """The fair-sharing partition is contiguous by construction, so the
    uplink packer wastes nothing inside a slice."""
    from repro.coordination.fair_sharing import compute_weighted_partition

    partition = compute_weighted_partition(50, {"a": 1, "b": 2, "c": 1})
    for slice_ in partition.values():
        loss = contiguity_loss(_users(10, 12), slice_)
        assert loss == pytest.approx(0.0, abs=0.1)
