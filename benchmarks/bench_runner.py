#!/usr/bin/env python
"""Macro benchmark harness: time representative experiments, track them.

Times a fixed set of experiment workloads (in-process, best-of-N) and
writes ``BENCH_<date>.json``. A committed baseline plus ``--check``
turns the harness into a CI regression gate: any tracked workload more
than ``--threshold`` (default 25%) slower than baseline fails the run.

Cross-machine comparability: every run first times a fixed pure-Python
calibration kernel (event scheduling through the simulator, the same
dispatch loop the experiments exercise). Tracked comparisons use each
workload's wall time *normalized by the calibration time*, so a slower
CI runner shifts both numbers together and only real per-workload
regressions trip the gate.

Attribution: after the timing loop each cell gets one *untimed*
profiled pass whose top callback sites land in the report
(``results[<cell>]["profile"]``); ``compare.py`` joins two reports'
tables to name the code behind a delta. ``--skip-profile`` drops the
pass, ``--folded-dir DIR`` additionally writes per-cell collapsed-stack
profiles for flamegraph tooling.

Usage::

    python benchmarks/bench_runner.py --quick            # CI set
    python benchmarks/bench_runner.py                    # full set
    python benchmarks/bench_runner.py --jobs 4           # adds the
        parallel suite: --all-style multi-experiment run at N workers
        vs serial, reporting the speedup
    python benchmarks/bench_runner.py --quick --check \
        --baseline benchmarks/BENCH_2026-08-06.json      # regression gate
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.experiments import ALL_EXPERIMENTS  # noqa: E402
from repro.runner import derive_seed, set_jobs  # noqa: E402

#: Root seed for the harness; per-spec seeds are derived from it, so a
#: spec's workload never depends on which other specs ran before it.
BENCH_ROOT_SEED = 2026


@dataclass
class Spec:
    """One tracked workload: an experiment entry point plus arguments."""

    name: str
    exp_id: str
    kwargs: Dict[str, object] = field(default_factory=dict)
    repeats: int = 3
    quick: bool = True
    seeded: bool = False  # pass a derived per-spec seed= kwarg

    def build_call(self) -> Callable[[], object]:
        module = ALL_EXPERIMENTS[self.exp_id]
        kwargs = dict(self.kwargs)
        if self.seeded:
            kwargs["seed"] = derive_seed(BENCH_ROOT_SEED, self.name)
        return lambda: module.run(**kwargs)


#: The tracked set. Quick specs are the CI gate (kept under ~30 s serial
#: on the reference box); the full set adds the heavier sweeps.
SPECS: List[Spec] = [
    Spec("T1", "T1", repeats=5),
    Spec("F1", "F1", repeats=3),
    Spec("E3-range", "E3", repeats=5),
    Spec("E4-weak-signal", "E4", repeats=5),
    Spec("E7-small", "E7", {"ap_counts": [1, 8, 32]}, repeats=3,
         seeded=True),
    # one larger datapath cell: a single 64-AP town at double UE density
    # (~10x the control traffic of E7-small's biggest point)
    Spec("E7-town", "E7", {"ap_counts": [64], "ue_per_ap": 16}, repeats=1,
         seeded=True),
    Spec("E13-paging", "E13", repeats=3, seeded=True),
    Spec("E16-small", "E16", {"n_aps": 3, "n_ues": 8}, repeats=5,
         seeded=True),
    # overload path: a protected attach storm exercising bounded queues,
    # admission control, and the UE retry/backoff machinery end to end
    Spec("E17-storm", "E17", {"intensities": [1, 8], "horizon_s": 12.0},
         repeats=3, seeded=True),
    # massed-UE TTI engine: two cells at 512 UEs each, the scale where
    # the batch arena's array path dominates the scalar per-UE walk
    Spec("E5-massed", "E5", {"n_aps": 2, "ue_per_ap": 512}, repeats=1,
         seeded=True),
    # data-plane overload: the AQM+ECN vs drop-tail goodput sweep at a
    # smoke-sized horizon; tracks the managed-link path plus the
    # peak-queue / ECN-mark columns below
    Spec("E18-overload", "E18",
         {"loads": (0.5, 4.0), "n_aps": 1, "ue_per_ap": 3,
          "settle_s": 4.0, "warmup_s": 1.0, "measure_s": 6.0},
         repeats=1, seeded=True),
    # city sharding: the conservative-window engine end to end — attach
    # storm + packet foreground + fluid background over two shards in
    # serial mode (the fork path is measured by the --shards section)
    Spec("E19-city", "E19",
         {"n_cells": 8, "ue_per_cell": 2, "background_per_cell": 40,
          "shards": 2, "horizon_s": 4.0},
         repeats=1, seeded=True),
    # full set only: the heavy sweeps the --jobs work targets
    Spec("E5-coordination", "E5", repeats=2, quick=False, seeded=True),
    Spec("E6-small", "E6", {"dwells_s": [3.0, 1.0]}, repeats=1,
         quick=False, seeded=True),
    Spec("E7-full", "E7", repeats=1, quick=False, seeded=True),
    Spec("E8-hidden-terminal", "E8", repeats=1, quick=False),
    Spec("E9-x2", "E9", repeats=2, quick=False),
]

#: Multi-experiment suite used for the parallel speedup measurement
#: (everything fast enough to repeat, plus the cell-parallel E7).
PARALLEL_SUITE = ["T1", "F1", "E3", "E4", "E7", "E9", "E13", "E16"]


def _calibrate() -> float:
    """Time the fixed calibration kernel: 50k events through the
    simulator dispatch loop (pure Python, no numpy, no I/O)."""
    from repro.simcore import Simulator

    best = float("inf")
    for _ in range(3):
        sim = Simulator(0)
        for i in range(50_000):
            sim.schedule(i * 1e-6, _nop)
        start = time.perf_counter()
        sim.run()
        best = min(best, time.perf_counter() - start)
    return best


def _nop() -> None:
    return None


def _time_call(fn: Callable[[], object], repeats: int) -> tuple:
    """Best-of-N wall time plus the run's resource high-water marks.

    Each repeat is bracketed with a telemetry-hub run so every simulator
    the workload builds is collected; the hub hands back the max
    ``Simulator.heap_high_water``, the deepest control-agent queue, and
    the total messages shed by overload protection, which the report
    tracks alongside wall time (heap and queue hygiene are perf
    properties too — see PERFORMANCE.md). Collection is passive (no
    profiler, no tracer) and the bookkeeping happens outside the timed
    window.
    """
    from repro.telemetry.hub import HUB

    best = float("inf")
    heap_hwm = 0
    agent_peak = 0
    shed = 0
    link_peak = 0
    ecn_marks = 0
    shards: List[Dict[str, object]] = []
    for _ in range(max(1, repeats)):
        HUB.start_run()
        try:
            start = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - start)
        except BaseException:
            HUB.abort_run()
            raise
        run = HUB.finish_run()
        heap_hwm = max(heap_hwm, run.heap_high_water)
        agent_peak = max(agent_peak, run.agent_peak_queue)
        shed = max(shed, run.agents_shed)
        link_peak = max(link_peak, run.link_peak_queue)
        ecn_marks = max(ecn_marks, run.ecn_marks)
        if run.shard_stats:
            # deterministic across repeats except the timings; keep the
            # last repeat's view (one row per shard per sharded run)
            shards = [{
                "shard": s.get("shard"),
                "label": s.get("label", ""),
                "events": s.get("events"),
                "heap_hwm": s.get("heap_hwm"),
                "windows": s.get("windows"),
                "exec_s": round(s.get("exec_s", 0.0), 4),
                "barrier_wait_s": round(s.get("barrier_wait_s", 0.0), 4),
            } for s in run.shard_stats]
    return best, heap_hwm, agent_peak, shed, link_peak, ecn_marks, shards


def _profile_call(fn: Callable[[], object], top_n: int,
                  folded_path: Optional[str]) -> List[Dict[str, object]]:
    """One untimed profiled pass: per-callback-site attribution rows.

    Runs the workload once under the hub's sampling-free profiler and
    returns the top-N callback sites as ``{site, calls, wall_ms, frac}``
    rows — the data ``compare.py`` uses to attribute a normalized delta
    to the code that moved. Profiling overhead is real (every dispatch
    is timed), which is why this pass is separate from the best-of-N
    timing loop and its wall time is discarded. When ``folded_path`` is
    set the same pass also writes a collapsed-stack profile for
    flamegraph tooling.
    """
    from repro.telemetry.exporters import write_folded
    from repro.telemetry.hub import HUB

    HUB.start_run(profile=True)
    try:
        fn()
    except BaseException:
        HUB.abort_run()
        raise
    run = HUB.finish_run()
    if folded_path and run.profiler is not None:
        write_folded(folded_path, profiler=run.profiler,
                     span_trackers=run.span_trackers)
    if run.profiler is None:
        return []
    return run.profiler.top_rows(top_n)


def _run_suite(ids: List[str], jobs: int) -> float:
    """Wall-clock one CLI-equivalent multi-experiment pass at ``jobs``."""
    import contextlib
    import io

    from repro.__main__ import _run_all_parallel, run_experiment

    set_jobs(jobs)
    try:
        start = time.perf_counter()
        with contextlib.redirect_stdout(io.StringIO()):
            if jobs > 1:
                _run_all_parallel(ids, jobs, None, None, False)
            else:
                for exp_id in ids:
                    run_experiment(exp_id, multi=True)
        return time.perf_counter() - start
    finally:
        set_jobs(1)


#: The E19 configuration the --shards scaling curve is measured on.
SHARDING_CONFIG: Dict[str, object] = {
    "n_cells": 16, "ue_per_cell": 2, "background_per_cell": 48,
    "horizon_s": 4.0,
}


def _run_sharding(max_shards: int) -> Dict[str, object]:
    """Wall-clock E19 at 1/2/4 shards (fork mode past one shard).

    The sharded engine's determinism bar is enforced for free here: the
    rendered table must be byte-identical at every shard count, or the
    section reports ``identical_output: false`` (and the bench is
    telling you the engine is broken, not slow). Speedups are relative
    to the one-shard run; like the ``parallel`` section, ``cpus`` is
    recorded so ``compare.py`` can refuse to judge a timeshared box.
    """
    from repro.experiments import e19_city

    counts = [c for c in (1, 2, 4) if c <= max(max_shards, 1)]
    seed = derive_seed(BENCH_ROOT_SEED, "sharding")
    points: List[Dict[str, object]] = []
    renders: List[str] = []
    base_wall: Optional[float] = None
    for shards in counts:
        mode = "fork" if shards > 1 else "serial"
        start = time.perf_counter()
        table = e19_city.run(shards=shards, mode=mode, seed=seed,
                             **SHARDING_CONFIG)
        wall = time.perf_counter() - start
        renders.append(table.render())
        if base_wall is None:
            base_wall = wall
        points.append({
            "shards": shards,
            "mode": mode,
            "wall_s": round(wall, 3),
            "speedup": round(base_wall / wall, 2) if wall > 0
            else float("nan"),
        })
        print(f"  sharding {shards}x ({mode:<6}) {wall:8.3f} s  "
              f"({points[-1]['speedup']:.2f}x vs 1 shard)")
    identical = all(r == renders[0] for r in renders)
    if not identical:
        print("  sharding: WARNING — output differs across shard counts")
    return {
        "experiment": "E19",
        "config": dict(SHARDING_CONFIG),
        "cpus": os.cpu_count(),
        "points": points,
        "identical_output": identical,
    }


def run_benchmarks(quick: bool, jobs: int, profile: bool = True,
                   folded_dir: Optional[str] = None,
                   top_n: int = 12, shards: int = 1) -> Dict[str, object]:
    specs = [s for s in SPECS if s.quick or not quick]
    print("calibrating dispatch kernel ...", flush=True)
    calibration_s = _calibrate()
    print(f"  calibration: {calibration_s * 1e3:.1f} ms / 50k events")
    if folded_dir:
        os.makedirs(folded_dir, exist_ok=True)
    results: Dict[str, Dict[str, object]] = {}
    for spec in specs:
        (wall, heap_hwm, agent_peak, shed, link_peak,
         ecn_marks, shard_rows) = _time_call(spec.build_call(), spec.repeats)
        results[spec.name] = {
            "wall_s": round(wall, 4),
            "normalized": round(wall / calibration_s, 3),
            "heap_hwm": heap_hwm,
            "agent_peak_queue": agent_peak,
            "agents_shed": shed,
            "link_peak_queue": link_peak,
            "ecn_marks": ecn_marks,
        }
        if shard_rows:
            results[spec.name]["shards"] = shard_rows
        if profile:
            folded_path = (os.path.join(folded_dir, f"{spec.name}.folded")
                           if folded_dir else None)
            results[spec.name]["profile"] = _profile_call(
                spec.build_call(), top_n, folded_path)
        print(f"  {spec.name:<20} {wall:8.3f} s   "
              f"({wall / calibration_s:8.2f}x cal, heap hwm {heap_hwm}, "
              f"peak queue {agent_peak}, shed {shed}, "
              f"link peak {link_peak}, ecn {ecn_marks})")
    report: Dict[str, object] = {
        "date": time.strftime("%Y-%m-%d"),
        "quick": quick,
        "cpus": os.cpu_count(),
        "calibration_s": round(calibration_s, 4),
        "results": results,
    }
    if jobs > 1:
        serial_s = _run_suite(PARALLEL_SUITE, 1)
        parallel_s = _run_suite(PARALLEL_SUITE, jobs)
        speedup = serial_s / parallel_s if parallel_s > 0 else float("nan")
        report["parallel"] = {
            "suite": PARALLEL_SUITE,
            "jobs": jobs,
            # honest hardware context: a 1-CPU box timesharing N workers
            # cannot speed up, and compare.py refuses to judge the
            # speedup when cpus < jobs
            "cpus": os.cpu_count(),
            "serial_s": round(serial_s, 3),
            "parallel_s": round(parallel_s, 3),
            "speedup": round(speedup, 2),
        }
        print(f"  parallel suite       {serial_s:8.3f} s serial vs "
              f"{parallel_s:.3f} s at --jobs {jobs} "
              f"({speedup:.2f}x)")
    if shards > 1:
        report["sharding"] = _run_sharding(shards)
    return report


def check_regressions(report: Dict[str, object], baseline_path: str,
                      threshold: float) -> List[str]:
    """Names of tracked workloads slower than baseline by > threshold.

    Comparisons use calibration-normalized times; workloads present in
    only one of the two reports are skipped (new or retired specs do
    not fail the gate).
    """
    with open(baseline_path) as fh:
        baseline = json.load(fh)
    failures = []
    for name, current in report["results"].items():
        ref = baseline.get("results", {}).get(name)
        if ref is None:
            continue
        if ref["normalized"] < 0.05 and current["normalized"] < 0.05:
            # too fast to time meaningfully on either box — tracked for
            # visibility, exempt from the gate
            print(f"  {name:<20} (sub-threshold, skipped)")
            continue
        ratio = current["normalized"] / max(ref["normalized"], 0.05)
        flag = "REGRESSION" if ratio > 1.0 + threshold else "ok"
        print(f"  {name:<20} {ref['normalized']:8.2f} -> "
              f"{current['normalized']:8.2f}  ({ratio:5.2f}x)  {flag}")
        if ratio > 1.0 + threshold:
            failures.append(name)
    return failures


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="CI set only (sub-second to few-second specs)")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="also measure the multi-experiment suite at "
                             "N workers vs serial")
    parser.add_argument("--shards", type=int, default=1, metavar="N",
                        help="also measure the E19 shard-count scaling "
                             "curve (1/2/4 capped at N, fork mode)")
    parser.add_argument("--out", metavar="PATH",
                        help="output path (default benchmarks/"
                             "BENCH_<date>.json)")
    parser.add_argument("--baseline", metavar="PATH",
                        help="baseline BENCH_*.json to compare against")
    parser.add_argument("--check", action="store_true",
                        help="exit non-zero if any tracked workload "
                             "regresses past --threshold vs --baseline")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="allowed normalized slowdown (default 0.25)")
    parser.add_argument("--skip-profile", action="store_true",
                        help="skip the per-cell profiled attribution pass "
                             "(faster; the report loses 'profile' tables)")
    parser.add_argument("--folded-dir", metavar="DIR",
                        help="also write a per-cell collapsed-stack "
                             "<cell>.folded profile into DIR")
    args = parser.parse_args(argv)

    report = run_benchmarks(quick=args.quick, jobs=args.jobs,
                            profile=not args.skip_profile,
                            folded_dir=args.folded_dir,
                            shards=args.shards)
    out = args.out or os.path.join(
        os.path.dirname(os.path.abspath(__file__)),
        f"BENCH_{report['date']}.json")
    with open(out, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {out}")

    if args.baseline:
        print(f"comparing against {args.baseline} "
              f"(threshold {args.threshold:.0%}):")
        failures = check_regressions(report, args.baseline, args.threshold)
        if args.check and failures:
            print(f"FAILED: regressions in {', '.join(failures)}")
            return 1
        if not failures:
            print("no regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
