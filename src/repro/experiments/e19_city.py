"""E19 — "the city": 10^5 UEs across hundreds of cells, sharded.

The paper's §4.1 scaling argument at the scale it actually claims:
"the one stub per site model naturally scales as the total number of
APs increases" — so take an urban grid of cell sites
(:class:`~repro.workloads.topology.CityGrid`), give every site a
packet-fidelity **foreground** population that attach-storms the core
and then pushes data over backhaul, plus a **fluid** background
population (:class:`~repro.workloads.fluid.FluidCellLoad`) occupying
the radio arena, and run both architectures:

* **centralized EPC** — one MME/HSS in shard 0; every eNB's S1 crosses
  the city (and usually a shard boundary) over 30 ms backhaul, and all
  user data trombones to the core's packet gateway sink;
* **dLTE stubs** — a local core at every site: attach traffic and data
  break out locally, so shards exchange *nothing* and the simulation —
  like the architecture — is embarrassingly parallel.

The run decomposes over a :class:`~repro.simcore.sharded.ShardedSimulator`:
cells are striped into shards (:class:`~repro.deploy.partition.ShardPlan`),
S1 and backhaul become cross-shard proxies (:mod:`repro.net.shardlink`),
and the conservative window is the 30 ms backhaul latency. The result
table is **identical at any shard count and in either drive mode** —
shards are an execution detail, so the table carries no shard column;
``tests/test_e19_city.py`` holds that line byte-for-byte.

``invariants=True`` arms the cross-boundary conservation audit: every
packet serialized onto a boundary link must be accounted for as
received by its exit or still in flight past the horizon, and S1
message counts must balance per direction the same way.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.deploy.partition import ShardPlan
from repro.enodeb.cell import Cell
from repro.enodeb.relay import EnbControlRelay
from repro.epc.agents import ControlChannel
from repro.epc.centralized import CentralizedEpc
from repro.epc.stub import LocalCoreStub
from repro.epc.subscriber import make_profile
from repro.epc.ue import UeState, UserEquipment
from repro.metrics.stats import percentile
from repro.metrics.tables import ResultTable
from repro.net.addressing import AddressPool
from repro.net.packet import Packet
from repro.net.shardlink import (
    CrossShardChannel,
    CrossShardLink,
    CrossShardLinkExit,
)
from repro.phy.bands import get_band
from repro.phy.linkbudget import LinkBudget
from repro.phy.propagation import model_for_frequency
from repro.simcore.sharded import ShardBoundary, ShardHost, ShardedSimulator
from repro.simcore.simulator import Simulator
from repro.workloads.fluid import FluidCellLoad
from repro.workloads.topology import CityGrid

AIR_DELAY_S = 0.005
#: WAN backhaul to the centralized core — also the conservative lookahead.
BACKHAUL_DELAY_S = 0.030
#: local breakout at a dLTE site (metro switch, not a WAN)
LOCAL_BREAKOUT_DELAY_S = 0.002
LOCAL_S1_DELAY_S = 0.1e-3
STORM_WINDOW_S = 1.0
BACKHAUL_RATE_BPS = 100e6
DATA_PACKET_BYTES = 400
DATA_PACKET_SPACING_S = 0.02


class _PacketSink:
    """Terminal data-plane endpoint (the PGW's far side / local ISP)."""

    __slots__ = ("packets", "bytes")

    def __init__(self) -> None:
        self.packets = 0
        self.bytes = 0

    def take(self, packet: Packet) -> None:
        self.packets += 1
        self.bytes += packet.size_bytes


def _send_ping(sim: Simulator, link: CrossShardLink, ue: UserEquipment,
               seq: int) -> None:
    link.send(Packet(src=ue.ue_address, dst=None,
                     size_bytes=DATA_PACKET_BYTES,
                     flow_id=f"fg:{ue.name}", seq=seq,
                     created_at=sim.now))


def _start_train(sim: Simulator, link: CrossShardLink, ue: UserEquipment,
                 n_packets: int) -> None:
    for seq in range(n_packets):
        sim.schedule(seq * DATA_PACKET_SPACING_S, _send_ping, sim, link, ue, seq)


def _build_shard(spec: Dict[str, Any]) -> ShardHost:
    """Build one shard of the city (either architecture). Module-level
    and driven by a plain dict so the fork pool can ship it."""
    arch: str = spec["arch"]
    shard: int = spec["shard"]
    n_shards: int = spec["n_shards"]
    assignment = spec["assignment"]
    p: Dict[str, Any] = spec["params"]
    n_cells: int = p["n_cells"]
    ue_per_cell: int = p["ue_per_cell"]
    total_fg = n_cells * ue_per_cell
    centralized = arch == "centralized EPC"

    sim = Simulator(p["seed"])
    boundary = ShardBoundary(sim, shard, n_shards)
    positions = CityGrid(n_cells=n_cells,
                         spacing_m=p["cell_spacing_m"]).cell_positions()
    band = get_band("lte5")
    budget = LinkBudget(model_for_frequency(band.dl_mhz), band.dl_mhz,
                        band.bandwidth_hz)

    epc: Optional[CentralizedEpc] = None
    core_exits: Dict[str, CrossShardLinkExit] = {}
    core_sink = _PacketSink()
    mme_halves: Dict[int, CrossShardChannel] = {}
    if centralized and shard == 0:
        # The core city site: one EPC, S1 halves and data exits for
        # *every* cell in the city (local ones co-locate transparently).
        epc = CentralizedEpc(sim, AddressPool("10.0.0.0/12"))
        for g in range(total_fg):
            epc.provision(make_profile(f"9993{g:011d}"))
        for i in range(n_cells):
            half = CrossShardChannel(sim, boundary, epc.mme, f"enb{i}",
                                     remote_shard=assignment[i],
                                     one_way_delay_s=BACKHAUL_DELAY_S,
                                     name=f"s1:enb{i}")
            epc.mme.connect_enb(f"enb{i}", half)
            mme_halves[i] = half
            core_exits[f"bh:c{i}"] = CrossShardLinkExit(
                sim, boundary, f"bh:c{i}", core_sink.take)

    local_cells = [i for i in range(n_cells) if assignment[i] == shard]
    cells: Dict[int, Dict[str, Any]] = {}
    for i in local_cells:
        enb = EnbControlRelay(sim, f"enb{i}")
        stub: Optional[LocalCoreStub] = None
        if centralized:
            s1 = CrossShardChannel(sim, boundary, enb, "epc-mme",
                                   remote_shard=0,
                                   one_way_delay_s=BACKHAUL_DELAY_S,
                                   name=f"s1:enb{i}")
            enb.connect_core(s1)
            bh = CrossShardLink(sim, boundary, BACKHAUL_RATE_BPS,
                                BACKHAUL_DELAY_S, dst_shard=0,
                                name=f"bh:c{i}")
            exit_ = core_exits.get(f"bh:c{i}")  # only set when shard == 0
            sink = core_sink
        else:
            stub = LocalCoreStub(sim, f"stub{i}",
                                 AddressPool(f"10.{(i % 250) + 1}.0.0/16"))
            s1 = ControlChannel(sim, enb, stub, LOCAL_S1_DELAY_S, f"s1:{i}")
            enb.connect_core(s1)
            stub.connect_enb(s1)
            # local breakout: same proxy class, co-located, so the
            # conservation audit covers both architectures uniformly
            sink = _PacketSink()
            bh = CrossShardLink(sim, boundary, BACKHAUL_RATE_BPS,
                                LOCAL_BREAKOUT_DELAY_S, dst_shard=shard,
                                name=f"bh:c{i}")
            exit_ = CrossShardLinkExit(sim, boundary, f"bh:c{i}", sink.take)

        cell = Cell(f"cell{i}", band, positions[i], budget)
        fluid = FluidCellLoad(sim, cell, p["background_per_cell"],
                              p["demand_bps_per_ue"], epoch_s=p["epoch_s"],
                              jitter=p["jitter"])
        fluid.start(p["horizon_s"])

        ues: List[UserEquipment] = []
        for k in range(ue_per_cell):
            g = i * ue_per_cell + k
            profile = make_profile(f"9993{g:011d}")
            if stub is not None:
                stub.preload_key(profile.imsi, profile.key)
            ue = UserEquipment(sim, profile, name=f"ue{g}")
            air = ControlChannel(sim, ue, enb, AIR_DELAY_S, f"air:{g}")
            ue.connect_air(air)
            enb.attach_ue(ue.ue_id, air)
            if p["data_packets"]:
                ue.on_attached = (
                    lambda u, link=bh, n=p["data_packets"]:
                    _start_train(sim, link, u, n))
            sim.schedule(STORM_WINDOW_S * g / max(total_fg, 1),
                         ue.start_attach)
            ues.append(ue)
        cells[i] = {"enb": enb, "s1": s1, "bh": bh, "exit": exit_,
                    "stub": stub, "cell": cell, "fluid": fluid,
                    "ues": ues, "sink": sink}

    def harvest(host: ShardHost) -> Dict[str, Any]:
        out_cells = []
        for i in local_cells:
            c = cells[i]
            latencies = [ue.attach_latency_s for ue in c["ues"]
                         if ue.state is UeState.ATTACHED]
            fluid = c["fluid"]
            bh = c["bh"]
            entry = {
                "cell": i,
                "latencies": latencies,
                "failures": sum(1 for ue in c["ues"]
                                if ue.state is not UeState.ATTACHED),
                "bg_offered_bits": fluid.offered_bits,
                "bg_served_bits": fluid.served_bits,
                "bg_epochs": fluid.epochs,
                "s1_up_messages": c["s1"].messages,
                "s1_up_bytes": c["s1"].bytes,
                "s1_received": c["s1"].received
                if isinstance(c["s1"], CrossShardChannel) else None,
                "bh_offered": bh.offered,
                "bh_crossed": bh.crossed,
                "bh_dropped": bh.dropped,
                "bh_in_flight": bh.in_flight,
                "stub_peak_queue": (c["stub"].peak_queue_depth
                                    if c["stub"] is not None else None),
            }
            if c["exit"] is not None:
                entry["exit_received"] = c["exit"].received
            out_cells.append(entry)
        out: Dict[str, Any] = {"shard": shard, "cells": out_cells}
        if epc is not None:
            out["core"] = {
                "peak_queue": float(epc.mme.peak_queue_depth),
                "utilization": epc.mme.utilization(sim.now),
                "attached": epc.attached_ues,
            }
            out["exit_received"] = {name: ex.received
                                    for name, ex in core_exits.items()}
            out["s1_down"] = {i: {"messages": h.messages, "bytes": h.bytes,
                                  "received": h.received}
                              for i, h in mme_halves.items()}
        return out

    return ShardHost(sim, boundary, harvest=harvest)


def _merge_arm(arch: str, shard_results: List[Dict[str, Any]],
               sharded: ShardedSimulator, params: Dict[str, Any],
               ) -> Dict[str, Any]:
    """Combine per-shard harvests; all reductions run in global cell
    order so float sums match the monolithic (shards=1) run exactly."""
    by_cell = sorted((entry for result in shard_results
                      for entry in result["cells"]),
                     key=lambda entry: entry["cell"])
    latencies: List[float] = []
    for entry in by_cell:
        latencies.extend(entry["latencies"])
    failures = sum(entry["failures"] for entry in by_cell)
    bg_offered = sum(entry["bg_offered_bits"] for entry in by_cell)
    bg_served = sum(entry["bg_served_bits"] for entry in by_cell)
    s1_up_bytes = sum(entry["s1_up_bytes"] for entry in by_cell)
    crossed = sum(entry["bh_crossed"] for entry in by_cell)
    dropped = sum(entry["bh_dropped"] for entry in by_cell)

    if arch == "centralized EPC":
        core = next(r["core"] for r in shard_results if "core" in r)
        core_peak = core["peak_queue"]
        delivered = sum(next(r for r in shard_results if "exit_received" in r)
                        ["exit_received"].values())
        s1_down = next(r for r in shard_results if "s1_down" in r)["s1_down"]
        wan_ctl_bytes = s1_up_bytes + sum(h["bytes"] for h in s1_down.values())
    else:
        core_peak = float(max(entry["stub_peak_queue"] for entry in by_cell))
        delivered = sum(entry["exit_received"] for entry in by_cell)
        wan_ctl_bytes = 0
    return {
        "latencies": latencies,
        "failures": failures,
        "bg_offered_bits": bg_offered,
        "bg_served_bits": bg_served,
        "core_peak_queue": core_peak,
        "data_delivered": delivered,
        "data_crossed": crossed,
        "data_dropped": dropped,
        "wan_ctl_bytes": wan_ctl_bytes,
        "by_cell": by_cell,
        "shard_results": shard_results,
    }


def _audit_arm(arch: str, merged: Dict[str, Any],
               sharded: ShardedSimulator,
               assignment: Tuple[int, ...]) -> None:
    """Cross-boundary conservation: every packet/message that left its
    shard is received by its exit or withheld past the horizon —
    nothing is lost or duplicated at a window barrier.

    Only *cross-shard* flows are audited: a co-located proxy pair
    delivers through a single kernel event exactly as the monolithic
    run does, so its in-transit tail at the horizon lives in the local
    heap and is invisible to the end-point counters — and there is no
    window machinery on that path to audit in the first place. The
    ``undelivered`` records are cross-shard by construction, so the
    withheld sums need no extra filtering."""
    withheld: Dict[str, int] = {}
    for record in sharded.undelivered:
        withheld[record[5]] = withheld.get(record[5], 0) + 1
    exit_withheld = sum(count for key, count in withheld.items()
                        if key.endswith("@exit"))

    if arch != "centralized EPC":
        # dLTE's breakout links are all co-located; the only auditable
        # claim is that the window machinery never touched them
        if exit_withheld or withheld:
            raise RuntimeError(
                f"E19 {arch}: records crossed a shard boundary on an "
                f"architecture with none: {withheld}")
        return

    # data plane: cells homed outside the core's shard reach it over a
    # genuinely cross-shard backhaul link
    cross = [entry for entry in merged["by_cell"]
             if assignment[entry["cell"]] != 0]
    crossed = sum(entry["bh_crossed"] for entry in cross)
    exits = next(r for r in merged["shard_results"]
                 if "exit_received" in r)["exit_received"]
    received = sum(count for name, count in exits.items()
                   if assignment[int(name[len("bh:c"):])] != 0)
    if crossed != received + exit_withheld:
        raise RuntimeError(
            f"E19 {arch}: packet conservation violated at shard "
            f"boundaries: crossed={crossed}, exit-received={received}, "
            f"withheld-past-horizon={exit_withheld}")

    # control plane: the S1 halves of the same cross-homed cells
    s1_down = next(r for r in merged["shard_results"]
                   if "s1_down" in r)["s1_down"]
    up_sent = sum(entry["s1_up_messages"] for entry in cross)
    up_received = sum(h["received"] for i, h in s1_down.items()
                      if assignment[i] != 0)
    up_withheld = sum(count for key, count in withheld.items()
                      if key.endswith("@epc-mme"))
    if up_sent != up_received + up_withheld:
        raise RuntimeError(
            f"E19 {arch}: S1 uplink conservation violated: "
            f"sent={up_sent}, received={up_received}, "
            f"withheld={up_withheld}")
    down_sent = sum(h["messages"] for i, h in s1_down.items()
                    if assignment[i] != 0)
    down_received = sum(entry["s1_received"] for entry in cross)
    down_withheld = sum(
        count for key, count in withheld.items()
        if "@enb" in key and not key.endswith("@epc-mme"))
    if down_sent != down_received + down_withheld:
        raise RuntimeError(
            f"E19 {arch}: S1 downlink conservation violated: "
            f"sent={down_sent}, received={down_received}, "
            f"withheld={down_withheld}")


def run(n_cells: int = 12, ue_per_cell: int = 4,
        background_per_cell: int = 96, shards: int = 2,
        mode: str = "serial", seed: int = 7, horizon_s: float = 6.0,
        demand_bps_per_ue: float = 20e3, data_packets: int = 3,
        epoch_s: float = 0.1, jitter: float = 0.25,
        cell_spacing_m: float = 500.0,
        invariants: bool = False) -> ResultTable:
    """City-scale attach storm + data + fluid background, both shapes.

    Defaults are a small city so the smoke path stays fast; the
    acceptance configuration is ``n_cells=200, ue_per_cell=8,
    background_per_cell=492`` — 10^5 UEs. ``shards``/``mode`` change
    only the execution schedule, never the table: per-cell results are
    merged in global cell order, so output is byte-identical at any
    shard count, serial or fork.
    """
    positions = CityGrid(n_cells=n_cells,
                         spacing_m=cell_spacing_m).cell_positions()
    plan = ShardPlan.stripes(positions, shards)
    params = {
        "n_cells": n_cells, "ue_per_cell": ue_per_cell,
        "background_per_cell": background_per_cell, "seed": seed,
        "horizon_s": horizon_s, "demand_bps_per_ue": demand_bps_per_ue,
        "data_packets": data_packets, "epoch_s": epoch_s,
        "jitter": jitter, "cell_spacing_m": cell_spacing_m,
    }
    table = ResultTable(
        f"E19: the city — {n_cells} cells, "
        f"{n_cells * (ue_per_cell + background_per_cell)} UEs "
        f"({ue_per_cell} foreground + {background_per_cell} fluid "
        f"background per cell)",
        ["architecture", "n_cells", "n_ues", "attached", "failures",
         "mean_attach_ms", "p95_attach_ms", "core_peak_queue",
         "data_delivered", "bg_served_mbit", "bg_utilization",
         "wan_ctl_mb"])
    for arch in ("centralized EPC", "dLTE stubs"):
        specs = [{"arch": arch, "shard": shard, "n_shards": plan.n_shards,
                  "assignment": plan.assignment, "params": params}
                 for shard in range(plan.n_shards)]
        sharded = ShardedSimulator(_build_shard, specs, mode=mode,
                                   label=f"E19:{arch}")
        shard_results = sharded.run(until=horizon_s)
        merged = _merge_arm(arch, shard_results, sharded, params)
        if invariants:
            _audit_arm(arch, merged, sharded, plan.assignment)
        latencies = merged["latencies"]
        table.add_row(
            architecture=arch, n_cells=n_cells,
            n_ues=n_cells * (ue_per_cell + background_per_cell),
            attached=len(latencies), failures=merged["failures"],
            mean_attach_ms=(sum(latencies) / len(latencies) * 1e3
                            if latencies else float("nan")),
            p95_attach_ms=(percentile(latencies, 95) * 1e3
                           if latencies else float("nan")),
            core_peak_queue=merged["core_peak_queue"],
            data_delivered=merged["data_delivered"],
            bg_served_mbit=merged["bg_served_bits"] / 1e6,
            bg_utilization=(merged["bg_served_bits"]
                            / merged["bg_offered_bits"]
                            if merged["bg_offered_bits"] else 0.0),
            wan_ctl_mb=merged["wan_ctl_bytes"] / 1e6)
    return table
