"""Fluid background traffic: aggregate per-cell load without per-packet events.

At city scale the background population (10^5 UEs browsing, idling,
syncing) cannot afford one event per packet — SimuLTE's measurements
put per-packet event cost as the binding constraint for LTE simulation
well before that point. The hybrid abstraction: **foreground** flows
keep full packet fidelity on the data path, while **background** UEs
per cell collapse into one :class:`FluidCellLoad` that advances in
epochs and moves *bits*, not packets.

Per epoch the load runs exactly one TTI of the cell's real scheduler
over a small set of representative radio contexts (so capacity reflects
the actual PHY: link budget, CQI, HARQ, PRB allocation) and scales it
by the TTIs in the epoch::

    capacity_bits = sum(cell.schedule_tti().values()) * epoch_s / TTI_S
    served_bits   = min(demand_bits, capacity_bits)

Equivalence contract (tested in ``tests/test_fluid_traffic.py``): for a
**stationary** scheduler — one whose grants depend only on the fixed
radio geometry, e.g. max-C/I with static representatives and saturated
backlogs — the epoch integral equals the dense per-TTI loop exactly
(up to float summation order: ``K`` equal additions versus one
multiply by ``K``). History-bearing schedulers (proportional fair) update
their EWMA once per epoch instead of once per TTI; the fluid tier
treats the epoch as CQI-coherent, which is the documented seed-matched
approximation. Determinism: representative placement and demand jitter
draw from the named stream ``fluid:{cell}``, so a fluid cell produces
identical numbers at any shard count and in any process.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.enodeb.cell import Cell, UeRadioContext
from repro.geo.points import Point
from repro.phy.linkbudget import Radio
from repro.simcore.simulator import Simulator

__all__ = ["FluidCellLoad", "TTI_S"]

#: LTE subframe duration — one scheduling opportunity.
TTI_S = 1e-3


class FluidCellLoad:
    """Aggregate downlink load of ``n_ues`` background users on one cell.

    Args:
        sim: the event kernel (one epoch event per ``epoch_s``).
        cell: the radio arena to draw capacity from. The fluid load owns
            the cell's arena population — foreground flows ride the
            backhaul packet path, not the radio arena — so the single
            representative TTI measures background capacity.
        n_ues: background population size this load stands in for.
        demand_bps_per_ue: offered downlink rate per background user.
        epoch_s: integration step; smaller tracks demand jitter finer at
            more events. Must be a multiple of the TTI in spirit —
            fractional TTIs are allowed and scale linearly.
        rep_ues: representative radio contexts placed in the cell
            (capacity sampling resolution; capped at ``n_ues``).
        radius_m: placement disk radius around the cell site.
        jitter: demand modulation amplitude (0 disables): each epoch's
            demand is scaled by ``1 + jitter * (2u - 1)`` with ``u``
            from the cell's fluid stream.
    """

    def __init__(self, sim: Simulator, cell: Cell, n_ues: int,
                 demand_bps_per_ue: float, epoch_s: float = 0.1,
                 rep_ues: int = 8, radius_m: float = 600.0,
                 jitter: float = 0.0) -> None:
        if n_ues < 0:
            raise ValueError("background population must be >= 0")
        if epoch_s <= 0:
            raise ValueError("epoch must be positive")
        if not 0.0 <= jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")
        self.sim = sim
        self.cell = cell
        self.n_ues = n_ues
        self.demand_bps_per_ue = demand_bps_per_ue
        self.epoch_s = epoch_s
        self.jitter = jitter
        self.name = f"fluid:{cell.name}"
        self.offered_bits = 0.0
        self.served_bits = 0.0
        self.epochs = 0
        self._horizon_s: Optional[float] = None
        self._rng = sim.rng(self.name)
        reps = min(rep_ues, n_ues) if n_ues else 0
        center = cell.position
        for index in range(reps):
            # sqrt for area-uniform placement, same recipe as
            # geo.uniform_disk_placement but on the cell's own stream
            r = radius_m * math.sqrt(self._rng.random())
            theta = 2.0 * math.pi * self._rng.random()
            radio = Radio(position=Point(center.x + r * math.cos(theta),
                                         center.y + r * math.sin(theta)),
                          tx_power_dbm=23.0, height_m=1.5)
            cell.add_ue(UeRadioContext(ue_id=f"{self.name}#{index}",
                                       radio=radio))
        self._reps = reps

    def start(self, horizon_s: float) -> None:
        """Begin integrating; the first epoch closes at ``now + epoch_s``."""
        self._horizon_s = horizon_s
        if self.n_ues and self._reps:
            self.sim.post_at(self.sim.now + self.epoch_s, self._epoch)

    def _epoch(self) -> None:
        demand_bits = self.n_ues * self.demand_bps_per_ue * self.epoch_s
        if self.jitter:
            demand_bits *= 1.0 + self.jitter * (2.0 * self._rng.random() - 1.0)
        # one representative TTI of the real scheduler, scaled to the epoch
        tti_bits = sum(self.cell.schedule_tti().values())
        capacity_bits = tti_bits * (self.epoch_s / TTI_S)
        self.offered_bits += demand_bits
        self.served_bits += min(demand_bits, capacity_bits)
        self.epochs += 1
        now = self.sim.now
        horizon = self._horizon_s
        if horizon is None or now + self.epoch_s <= horizon:
            self.sim.post_at(now + self.epoch_s, self._epoch)

    @property
    def utilization(self) -> float:
        """served/offered over the run so far (1.0 when capacity holds up)."""
        return (self.served_bits / self.offered_bits) if self.offered_bits else 0.0
