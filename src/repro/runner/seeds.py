"""Per-task seed derivation: the same task gets the same seed anywhere.

Parallel runs are only byte-identical to serial ones if no task's
randomness depends on *when* or *where* it executes. A task must
therefore never draw from a generator shared with other tasks; it
derives its own seed from the experiment's root seed plus a structured
key naming the task — ``derive_seed(seed, "e7", "dlte", n_aps)`` — the
same recipe :class:`~repro.simcore.rng.RngRegistry` uses for named
streams (CRC of the name, not ``hash()``, which is salted per process).
"""

from __future__ import annotations

import zlib

__all__ = ["derive_seed"]

#: Large prime multiplier separating root seeds (same as RngRegistry.fork).
_SEED_PRIME = 1_000_003


def derive_seed(root_seed: int, *key: object) -> int:
    """A stable, non-negative seed for the task named by ``key``.

    The key parts are rendered with ``str`` and CRC-mixed, so any
    hashable-ish task descriptor (strings, ints, floats, tuples) works.
    Stable across processes, Python versions, and execution order:
    a task computes the same seed whether it runs serially, first, last,
    or on any multiprocessing worker.
    """
    text = "\x1f".join(str(part) for part in key)
    mix = zlib.crc32(text.encode("utf-8"))
    return (int(root_seed) * _SEED_PRIME + mix) & 0x7FFF_FFFF
