"""Unit tests for NetworkReport (repro.core.report)."""

import pytest

from repro.core.report import NetworkReport


def _report(**kw):
    defaults = dict(architecture="test-arch", n_aps=2, n_ues=3)
    defaults.update(kw)
    return NetworkReport(**defaults)


def test_empty_report_properties():
    report = _report()
    assert report.mean_attach_s is None
    assert report.mean_rtt_s is None
    assert report.mean_throughput_bps == 0.0


def test_means():
    report = _report(
        attach_latencies_s=[0.1, 0.2, 0.3],
        throughput_bps={"a": 1e6, "b": 3e6},
        rtt_s={"a": 0.05, "b": 0.15})
    assert report.mean_attach_s == pytest.approx(0.2)
    assert report.mean_throughput_bps == pytest.approx(2e6)
    assert report.mean_rtt_s == pytest.approx(0.10)


def test_summary_mentions_everything():
    report = _report(
        attach_latencies_s=[0.08],
        attach_failures=1,
        throughput_bps={"a": 2e6},
        rtt_s={"a": 0.07},
        hop_counts={"a": 4},
        tunnel_overhead_bytes=36,
        control_bytes=1234,
        extras={"x2_peers_total": 2.0})
    text = report.summary()
    assert "test-arch" in text
    assert "80.0 ms" in text           # attach
    assert "failures 1" in text
    assert "2.00 Mbps" in text
    assert "70.0 ms" in text           # RTT
    assert "4-4 hops" in text
    assert "36" in text                # tunnel overhead
    assert "1234" in text              # control bytes
    assert "x2_peers_total: 2" in text


def test_summary_omits_missing_sections():
    text = _report().summary()
    assert "attach" not in text
    assert "RTT" not in text
    assert "tunnel" not in text
