"""Spectrum grants and RF contention geometry.

A grant ties an AP to a band at a location. Two grants *contend* when
they share a band and their interference footprints overlap — that is
the "same RF contention domain" whose membership the registry must
report (§4.3). Footprint radius scales with wavelength and EIRP, so
sub-GHz rural cells have much larger coordination neighbourhoods than
CBRS midband ones.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

from repro.geo.points import Point
from repro.phy.bands import Band


@dataclass(frozen=True)
class ApRecord:
    """What an AP registers: identity, location, radio parameters.

    ``contact`` is the Internet rendezvous (host:port-like string) that
    peers use for X2-over-Internet coordination after discovery.
    """

    ap_id: str
    position: Point
    band: Band
    eirp_dbm: float
    contact: str = ""

    def __post_init__(self) -> None:
        if not self.ap_id:
            raise ValueError("ap_id must be non-empty")


@dataclass(frozen=True)
class SpectrumGrant:
    """A registry-issued license to operate.

    Attributes:
        grant_id: registry-unique id.
        record: the AP the grant covers.
        granted_at: simulated issue time.
        expires_at: lease end (None = does not expire).
    """

    grant_id: str
    record: ApRecord
    granted_at: float
    expires_at: Optional[float] = None

    def active_at(self, time_s: float) -> bool:
        """True when the grant is in force at ``time_s``."""
        return (time_s >= self.granted_at
                and (self.expires_at is None or time_s < self.expires_at))


def contention_radius_m(band: Band, eirp_dbm: float) -> float:
    """Interference footprint radius for an AP on ``band`` at ``eirp_dbm``.

    A planning-grade approximation: the distance at which the received
    level falls to a -100 dBm interference floor under a rural
    two-slope model. Doubles roughly per 6 dB of EIRP and shrinks with
    frequency — the point is the *ordering* (band 5 footprints are
    several times larger than CBRS footprints), which drives how many
    peers a dLTE AP must coordinate with.
    """
    interference_floor_dbm = -100.0
    # free space to 1 km, then exponent-3.5 beyond (rural clutter)
    fspl_1km = 20.0 * math.log10(band.dl_mhz) + 32.44
    budget_db = eirp_dbm - interference_floor_dbm - fspl_1km
    if budget_db <= 0:
        # footprint inside 1 km: invert free space directly
        return 1000.0 * 10.0 ** (budget_db / 20.0)
    return 1000.0 * 10.0 ** (budget_db / 35.0)


def in_contention(a: ApRecord, b: ApRecord) -> bool:
    """True when two registered APs share an RF contention domain."""
    if a.band.name != b.band.name:
        return False
    reach = (contention_radius_m(a.band, a.eirp_dbm)
             + contention_radius_m(b.band, b.eirp_dbm))
    return a.position.distance_to(b.position) <= reach
