"""Frequency band catalogue.

§3.2 of the paper: "LTE supports over forty different bands … basestations
and clients are commonly available at reasonable prices in bands with
better propagation and higher allowed power than the ISM bands, such as
bands 5 (850MHz), 30, or even 31 (450MHz)."

We catalogue the bands the paper names (plus the common mid-band ones and
CBRS band 48), with downlink/uplink center frequencies and representative
regulatory EIRP limits, and the WiFi ISM bands for comparison. Regulatory
limits are simplified to a single rural-deployment EIRP number per band;
the experiments only rely on the *relative* ordering (sub-GHz licensed
allows far more EIRP than 2.4/5 GHz ISM), which is robust.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional


@dataclass(frozen=True)
class Band:
    """One operating band.

    Attributes:
        name: catalogue key, e.g. ``"lte5"`` or ``"wifi2g4"``.
        number: 3GPP band number, or None for WiFi.
        dl_mhz: downlink center frequency in MHz.
        ul_mhz: uplink center frequency in MHz (equal to dl for TDD/ISM).
        duplex: ``"FDD"``, ``"TDD"``, or ``"ISM"``.
        licensed: True for bands requiring a (possibly lightweight) license.
        max_eirp_dbm: representative regulatory EIRP cap for a fixed AP.
        max_client_eirp_dbm: EIRP cap for the client/handset side.
        bandwidth_hz: typical usable channel bandwidth.
    """

    name: str
    number: Optional[int]
    dl_mhz: float
    ul_mhz: float
    duplex: str
    licensed: bool
    max_eirp_dbm: float
    max_client_eirp_dbm: float
    bandwidth_hz: float

    @property
    def is_sub_ghz(self) -> bool:
        """True for the long-propagation (< 1 GHz) bands."""
        return self.dl_mhz < 1000.0


#: LTE bands the paper names, plus common comparison points.
LTE_BANDS: Dict[str, Band] = {
    # Band 31 (450 MHz): the extreme rural-coverage option the paper cites.
    "lte31": Band("lte31", 31, 462.5, 452.5, "FDD", True, 60.0, 23.0, 5e6),
    # Band 5 (850 MHz): the band of the paper's Papua deployment (§5).
    "lte5": Band("lte5", 5, 881.5, 836.5, "FDD", True, 60.0, 23.0, 10e6),
    # Band 30 (2.3 GHz region; the paper calls it "800MHz TV White Space" —
    # we follow the paper's intent of a TVWS-like sub-GHz allocation).
    "lte30tvws": Band("lte30tvws", 30, 800.0, 755.0, "FDD", True, 56.0, 23.0, 10e6),
    # Band 3 (1.8 GHz): a common urban macro band, for contrast.
    "lte3": Band("lte3", 3, 1842.5, 1747.5, "FDD", True, 60.0, 23.0, 20e6),
    # Band 48 (CBRS 3.55 GHz): the §4.3 SAS-governed band.
    "lte48cbrs": Band("lte48cbrs", 48, 3625.0, 3625.0, "TDD", True, 47.0, 23.0, 20e6),
}

#: WiFi ISM bands (802.11n-era assumptions, 20 MHz channels).
WIFI_BANDS: Dict[str, Band] = {
    "wifi2g4": Band("wifi2g4", None, 2437.0, 2437.0, "ISM", False, 36.0, 20.0, 20e6),
    "wifi5g": Band("wifi5g", None, 5240.0, 5240.0, "ISM", False, 30.0, 20.0, 20e6),
}

_ALL_BANDS: Dict[str, Band] = {**LTE_BANDS, **WIFI_BANDS}


def get_band(name: str) -> Band:
    """Look up a band by catalogue name; raises KeyError with choices."""
    try:
        return _ALL_BANDS[name]
    except KeyError:
        raise KeyError(
            f"unknown band {name!r}; choices: {sorted(_ALL_BANDS)}") from None
