"""Fork-worker pool for sharded simulation: one process per shard.

The :class:`~repro.simcore.sharded.ShardedSimulator` façade drives its
shards through a small driver interface (``couplings`` / ``start_time``
/ ``step`` / ``harvest`` / ``close``). This module is the multi-process
implementation: each shard gets a forked worker holding the built
:class:`~repro.simcore.sharded.ShardHost`, and every window is one
pipe round-trip per shard — the parent broadcasts ``(step, until,
final, records)``, the workers advance concurrently, and the parent
gathers each shard's egress and execution wall-clock at the barrier.

Differences from :func:`repro.runner.parallel.parallel_map` (which fans
*independent* cells): shard workers are **stateful** — the simulator
lives in the worker across all windows, so per-window traffic is just
the cross-shard records, not the world. The pool reuses the runner's
conventions: fork start method, :func:`~repro.runner.parallel.mark_worker`
(nested pools degrade to serial), SIGINT shielding, and the telemetry
hub's worker export/absorb protocol so ``--profile`` output merges
per-shard data exactly like a serial drive.
"""

from __future__ import annotations

import multiprocessing
import signal
import traceback
from typing import Any, Callable, Dict, List, Sequence, Tuple

from repro.runner.parallel import mark_worker
from repro.telemetry.hub import HUB

__all__ = ["ShardWorkerError", "ShardWorkerPool"]


class ShardWorkerError(RuntimeError):
    """A shard worker raised (or died); carries the worker-side traceback."""

    def __init__(self, shard: int, exc_type: str, traceback_text: str) -> None:
        super().__init__(
            f"shard {shard} worker failed with {exc_type}; "
            f"original traceback:\n{traceback_text}")
        self.shard = shard
        self.exc_type = exc_type
        self.traceback_text = traceback_text


def _shard_worker_main(conn, builder: Callable[[Any], Any], spec: Any,
                       collect: bool, profile: bool, trace: bool) -> None:
    """Worker loop: build the shard, then serve window steps until harvest."""
    mark_worker()  # also aborts any hub run inherited via fork
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):  # pragma: no cover - exotic platforms
        pass
    if collect:
        HUB.start_run(profile=profile, trace=trace)
    try:
        host = builder(spec)
        conn.send(("ready", host.sim.now, list(host.boundary.couplings)))
        import time as _time
        while True:
            msg = conn.recv()
            op = msg[0]
            if op == "step":
                _op, until, final, records = msg
                t0 = _time.perf_counter()
                host.inject(records)
                host.advance(until, final)
                spent = _time.perf_counter() - t0
                conn.send(("ok", host.boundary.drain(), spent))
            elif op == "harvest":
                result = host.harvest()
                stats = host.stats()
                payload = HUB.export_worker_run() if collect else None
                conn.send(("done", result, stats, payload))
                return
            else:  # pragma: no cover - protocol bug
                raise RuntimeError(f"unknown shard op {op!r}")
    except BaseException as exc:
        if collect and HUB.active:
            HUB.abort_run()
        try:
            conn.send(("error", type(exc).__name__, traceback.format_exc()))
        except Exception:  # pragma: no cover - parent already gone
            pass
    finally:
        conn.close()


class ShardWorkerPool:
    """Driver that runs each shard in its own forked process."""

    def __init__(self, builder: Callable[[Any], Any], specs: Sequence[Any]) -> None:
        ctx = multiprocessing.get_context("fork")
        self._collect = HUB.active
        self._procs: List[Any] = []
        self._conns: List[Any] = []
        self._start_time = 0.0
        self._couplings: List[List[Tuple[str, int, float]]] = []
        profile, trace = HUB.profiling, HUB.tracing
        try:
            for spec in specs:
                parent_conn, child_conn = ctx.Pipe()
                proc = ctx.Process(
                    target=_shard_worker_main,
                    args=(child_conn, builder, spec,
                          self._collect, profile, trace),
                    daemon=True)
                proc.start()
                child_conn.close()
                self._procs.append(proc)
                self._conns.append(parent_conn)
            starts = []
            for shard, conn in enumerate(self._conns):
                reply = self._recv(shard, conn, expect="ready")
                starts.append(reply[1])
                self._couplings.append(reply[2])
            self._start_time = max(starts)
        except BaseException:
            self.close()
            raise

    def _recv(self, shard: int, conn, expect: str):
        try:
            reply = conn.recv()
        except (EOFError, OSError):
            raise ShardWorkerError(shard, "WorkerDied",
                                   "worker exited without a reply "
                                   "(killed or crashed hard)") from None
        if reply[0] == "error":
            raise ShardWorkerError(shard, reply[1], reply[2])
        if reply[0] != expect:  # pragma: no cover - protocol bug
            raise ShardWorkerError(shard, "Protocol",
                                   f"expected {expect!r}, got {reply[0]!r}")
        return reply

    def couplings(self) -> List[List[Tuple[str, int, float]]]:
        return self._couplings

    def start_time(self) -> float:
        return self._start_time

    def step(self, until: float, final: bool,
             injections: Sequence[Sequence[Any]],
             ) -> Tuple[List[List[Any]], List[float]]:
        for conn, records in zip(self._conns, injections):
            conn.send(("step", until, final, records))
        egress: List[List[Any]] = []
        exec_s: List[float] = []
        for shard, conn in enumerate(self._conns):
            reply = self._recv(shard, conn, expect="ok")
            egress.append(reply[1])
            exec_s.append(reply[2])
        return egress, exec_s

    def harvest(self) -> Tuple[List[Any], List[Dict[str, Any]]]:
        for conn in self._conns:
            conn.send(("harvest",))
        results: List[Any] = []
        stats: List[Dict[str, Any]] = []
        payloads: List[Any] = []
        for shard, conn in enumerate(self._conns):
            reply = self._recv(shard, conn, expect="done")
            results.append(reply[1])
            stats.append(reply[2])
            payloads.append(reply[3])
        if self._collect:
            # Absorb in shard order so merged telemetry matches a
            # serial drive's adoption order.
            for payload in payloads:
                if payload is not None:
                    HUB.absorb_worker_run(payload)
        for proc in self._procs:
            proc.join(timeout=5.0)
        return results, stats

    def close(self) -> None:
        for conn in self._conns:
            try:
                conn.close()
            except Exception:  # pragma: no cover
                pass
        for proc in self._procs:
            if proc.is_alive():
                proc.terminate()
            proc.join(timeout=5.0)
        self._procs = []
        self._conns = []
