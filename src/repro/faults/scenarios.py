"""Chaos scenarios: named, deterministic multi-fault schedules.

A single outage (E16's original shape) exercises one failure domain;
real deployments die in *compound* ways — a backhaul that flaps instead
of failing clean, sites cascading down one after another, the spectrum
registry vanishing exactly when leases need renewing. Each scenario
here composes several :class:`~repro.faults.FaultInjector` primitives
into one named schedule with a known envelope, so experiments can run
"the same storm" over different architectures and seeds.

Determinism: scenarios take only the built network and a start time;
every offset below is a fixed constant and every victim choice is a
sorted/deterministic pick, so a scenario's fault schedule is a pure
function of ``(scenario name, network, start_s)``.

Scenarios degrade honestly across architectures: a centralized arm has
no core stubs to cascade and no SAS to lose, so those scenarios map to
their closest single-point analogue (EPC-site outage) or to an empty
plan — an empty plan is a *finding* (the fault class cannot hurt this
architecture), not an error.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.faults.injector import FaultInjector

__all__ = ["ChaosScenario", "SCENARIOS", "ScenarioPlan", "compose_scenario",
           "get_scenario", "list_scenarios", "prepare_scenario"]

#: Lease used by :data:`sas-outage-during-lease-renewal` (seconds). The
#: renewal loop heartbeats at half this (margin_frac=0.5), so an outage
#: longer than the lease is guaranteed to straddle at least one renewal
#: tick *and* lapse at least one lease.
SCENARIO_LEASE_S = 6.0


@dataclass(frozen=True)
class ScenarioPlan:
    """The composed schedule: what was injected and when it is over.

    Attributes:
        scenario: the scenario name.
        start_s: absolute simulated time the first fault fires.
        end_s: absolute time by which every fault has healed/restored —
            the earliest moment recovery measurement makes sense.
        faults: injector fault names scheduled (empty = this scenario
            cannot touch this architecture).
        victims: AP ids whose service the scenario directly attacks
            (empty when the blast radius is network-wide or zero).
    """

    scenario: str
    start_s: float
    end_s: float
    faults: Tuple[str, ...] = ()
    victims: Tuple[str, ...] = ()

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s


@dataclass(frozen=True)
class ChaosScenario:
    """A named scenario: optional build-time prep + schedule composer."""

    name: str
    description: str
    compose: Callable[..., ScenarioPlan]
    #: called after build, *before* the control phase (registration /
    #: attach), for scenarios needing build-time state such as leases
    prepare: Optional[Callable[..., None]] = None


def _busiest_ap(net) -> str:
    """The AP serving the most clients (deterministic tie-break)."""
    counts: Dict[str, int] = {ap_id: 0 for ap_id in net.aps}
    for serving in net._serving_ap.values():
        counts[serving] += 1
    return max(sorted(counts), key=lambda ap_id: counts[ap_id])


def _backhaul_pair(net, router) -> list:
    """Both directional links between ``router`` and the Internet core."""
    return [net.internet.links[router.name],
            router.links[net.internet.name]]


# -- flapping backhaul ------------------------------------------------------

FLAP_DOWN_S = 0.8
FLAP_UP_S = 1.2
FLAP_CYCLES = 4


def _flapping_backhaul(net, injector: FaultInjector,
                       start_s: float) -> ScenarioPlan:
    """The busiest site's fiber flaps: 4 x (0.8 s down, 1.2 s up).

    Unlike a clean cut, a flap repeatedly tears down mid-flight traffic
    and lures retries into the next down-phase; the dLTE victim is the
    busiest AP's backhaul, the centralized victim the EPC site's uplink
    (through which *every* site's traffic hairpins).
    """
    victims: Tuple[str, ...] = ()
    if getattr(net, "aps", None):
        victim = _busiest_ap(net)
        router = net.aps[victim].router
        victims = (victim,)
    else:
        router = net.epc_router
    faults = [
        injector.link_flap(link, start_s, FLAP_DOWN_S, FLAP_UP_S,
                           FLAP_CYCLES, name=f"flap:{link.name}")
        for link in _backhaul_pair(net, router)]
    end_s = start_s + FLAP_CYCLES * (FLAP_DOWN_S + FLAP_UP_S)
    return ScenarioPlan(scenario="flapping-backhaul", start_s=start_s,
                        end_s=end_s, faults=tuple(faults), victims=victims)


# -- cascading stub crashes -------------------------------------------------

CASCADE_STEP_S = 2.0
CASCADE_OUTAGE_S = 6.0


def _cascading_stub_crashes(net, injector: FaultInjector,
                            start_s: float) -> ScenarioPlan:
    """Sites fall like dominoes: each AP (stub and all) crashes 2 s
    after the previous one, each staying dark 6 s.

    With the default stagger the outage windows overlap, so the
    federation is rebalancing spectrum around one corpse when the next
    appears — the worst case for the §4.3 peer monitor. On a
    centralized arm there are no per-site stubs; the closest analogue
    is the EPC site dark for the same overall envelope.
    """
    faults: List[str] = []
    victims: Tuple[str, ...] = ()
    if getattr(net, "aps", None):
        victims = tuple(sorted(net.aps))
        for k, ap_id in enumerate(sorted(net.aps)):
            faults.append(injector.outage(
                lambda ap_id=ap_id: net.crash_ap(ap_id),
                lambda ap_id=ap_id: net.restart_ap(ap_id),
                at_s=start_s + k * CASCADE_STEP_S,
                duration_s=CASCADE_OUTAGE_S,
                name=f"cascade-crash:{ap_id}"))
        end_s = (start_s + (len(net.aps) - 1) * CASCADE_STEP_S
                 + CASCADE_OUTAGE_S)
    else:
        n_sites = len(getattr(net, "enb_data", {})) or 1
        end_s = start_s + (n_sites - 1) * CASCADE_STEP_S + CASCADE_OUTAGE_S
        faults.append(injector.outage(
            net.fail_epc, net.restore_epc, at_s=start_s,
            duration_s=end_s - start_s, name="cascade-crash:epc-site"))
    return ScenarioPlan(scenario="cascading-stub-crashes", start_s=start_s,
                        end_s=end_s, faults=tuple(faults), victims=victims)


# -- SAS outage during lease renewal ----------------------------------------

SAS_OUTAGE_S = 8.0


def _prepare_sas_leases(net) -> None:
    """Arm short CBRS leases before registration so every grant issued
    in the control phase expires unless heartbeat-renewed."""
    registry = getattr(net, "spectrum_registry", None)
    if registry is None or not hasattr(registry, "lease_s"):
        return
    registry.lease_s = SCENARIO_LEASE_S
    registry.start_expiry_sweep()


def _sas_outage_during_renewal(net, injector: FaultInjector,
                               start_s: float) -> ScenarioPlan:
    """The SAS goes dark for longer than one lease (8 s > 6 s lease).

    Every AP's heartbeat fails during the outage, its lease lapses
    (CBRS: it must cease transmission), and on restore it has to
    re-*register*, not merely renew — the single-point-of-failure cost
    of centralized spectrum access measured against running service.
    Centralized LTE holds licensed spectrum and no SAS dependency, so
    its plan is empty by construction.
    """
    registry = getattr(net, "spectrum_registry", None)
    if registry is None or not hasattr(registry, "fail"):
        return ScenarioPlan(scenario="sas-outage-during-lease-renewal",
                            start_s=start_s, end_s=start_s, faults=())
    fault = injector.registry_outage(registry, at_s=start_s,
                                     duration_s=SAS_OUTAGE_S,
                                     name="sas-outage")
    return ScenarioPlan(scenario="sas-outage-during-lease-renewal",
                        start_s=start_s, end_s=start_s + SAS_OUTAGE_S,
                        faults=(fault,))


# -- registry ---------------------------------------------------------------

SCENARIOS: Dict[str, ChaosScenario] = {
    scenario.name: scenario for scenario in (
        ChaosScenario(
            name="flapping-backhaul",
            description="busiest site's backhaul fiber flaps "
                        f"{FLAP_CYCLES}x ({FLAP_DOWN_S:g}s down / "
                        f"{FLAP_UP_S:g}s up)",
            compose=_flapping_backhaul),
        ChaosScenario(
            name="cascading-stub-crashes",
            description="every site crashes in a rolling cascade "
                        f"({CASCADE_STEP_S:g}s apart, "
                        f"{CASCADE_OUTAGE_S:g}s dark each)",
            compose=_cascading_stub_crashes),
        ChaosScenario(
            name="sas-outage-during-lease-renewal",
            description="spectrum registry dark longer than one lease "
                        f"({SAS_OUTAGE_S:g}s outage vs "
                        f"{SCENARIO_LEASE_S:g}s lease)",
            compose=_sas_outage_during_renewal,
            prepare=_prepare_sas_leases),
    )
}


def list_scenarios() -> List[str]:
    """All scenario names, sorted."""
    return sorted(SCENARIOS)


def get_scenario(name: str) -> ChaosScenario:
    """Look up a scenario; ValueError names the catalog on a miss."""
    try:
        return SCENARIOS[name]
    except KeyError:
        raise ValueError(f"unknown chaos scenario {name!r}; "
                         f"available: {', '.join(list_scenarios())}") from None


def prepare_scenario(name: str, net) -> None:
    """Run a scenario's build-time prep (no-op for most scenarios)."""
    scenario = get_scenario(name)
    if scenario.prepare is not None:
        scenario.prepare(net)


def compose_scenario(name: str, net, injector: FaultInjector,
                     start_s: float) -> ScenarioPlan:
    """Schedule ``name``'s faults on ``injector`` starting at ``start_s``."""
    return get_scenario(name).compose(net, injector, start_s)
