"""The uninstrumented dispatch path makes zero telemetry calls.

Guards the simcore fast path: with no tracer, no profiler, and no
metrics consumers, `Simulator.step`/`run` must not touch the telemetry
object at all — per-event cost is heap-pop plus callback, nothing else.
"""

from repro.simcore.simulator import Simulator
from repro.telemetry import RunProfiler


class CountingProxy:
    """Wraps an object and counts every attribute access on it."""

    def __init__(self, inner):
        object.__setattr__(self, "_inner", inner)
        object.__setattr__(self, "calls", 0)

    def __getattr__(self, name):
        object.__setattr__(self, "calls", self.calls + 1)
        return getattr(self._inner, name)


def test_uninstrumented_dispatch_makes_zero_telemetry_calls():
    sim = Simulator(0)
    proxy = CountingProxy(sim.telemetry)
    sim.telemetry = proxy
    fired = [0]

    def tick():
        fired[0] += 1

    for i in range(1000):
        sim.schedule(i * 1e-4, tick)
    sim.run()

    assert fired[0] == 1000
    assert sim.events_executed == 1000
    assert proxy.calls == 0


def test_uninstrumented_step_makes_zero_telemetry_calls():
    sim = Simulator(0)
    proxy = CountingProxy(sim.telemetry)
    sim.telemetry = proxy
    sim.schedule(0.001, lambda: None)
    assert sim.step()
    assert proxy.calls == 0


def test_trace_is_noop_without_observers():
    sim = Simulator(0)
    proxy = CountingProxy(sim.telemetry)
    sim.telemetry = proxy
    sim.trace("mac", "should vanish", detail=1)
    assert proxy.calls == 0


class CountingTracer:
    def __init__(self):
        self.records = 0

    def record(self, *args, **kwargs):
        self.records += 1


def test_observed_flag_tracks_tracer_and_profiler():
    sim = Simulator(0)
    assert not sim._observed
    tracer = CountingTracer()
    sim.tracer = tracer
    assert sim._observed
    sim.trace("mac", "kept")
    assert tracer.records == 1
    sim.tracer = None
    assert not sim._observed

    profiler = RunProfiler()
    sim.profiler = profiler
    assert sim._observed
    sim.profiler = None
    assert not sim._observed


def test_profiled_run_still_counts_events():
    sim = Simulator(0)
    sim.profiler = RunProfiler()
    for i in range(100):
        sim.schedule(i * 1e-3, lambda: None)
    sim.run()
    assert sim.events_executed == 100
    assert sim.profiler.events == 100
