#!/usr/bin/env python
"""Organic growth: new APs join the federation, the spectrum re-shares.

The paper's core architectural bet (§4.3): an open registry plus
peer-to-peer coordination lets anyone add an AP, and incumbents
automatically make room. This script brings up APs one at a time —
license grant, peer discovery, X2 peering, fair-share convergence —
printing the grid split after each join, then flips the federation into
cooperative mode to show resource fusion under asymmetric load.

Run:  python examples/open_federation.py
"""

from repro.coordination import CooperativeCluster
from repro.core import DLTEAccessPoint
from repro.enodeb.cell import UeRadioContext
from repro.epc.keys import PublishedKeyRegistry
from repro.geo import Point
from repro.net import InternetCore
from repro.phy import Radio, get_band
from repro.simcore import Simulator
from repro.spectrum import SasRegistry


def main() -> None:
    sim = Simulator(seed=3)
    internet = InternetCore(sim)
    spectrum = SasRegistry(sim)
    keys = PublishedKeyRegistry(sim)
    band = get_band("lte5")
    directory = {}

    positions = [Point(0, 0), Point(2500, 0), Point(1200, 2000),
                 Point(3800, 1500)]
    owners = ["the school", "the clinic", "a farm co-op", "a homestead"]

    print("An open federation grows, one independently-owned AP at a time:\n")
    for i, (position, owner) in enumerate(zip(positions, owners)):
        ap = DLTEAccessPoint(
            sim, f"ap{i}", position, band, internet, spectrum, keys,
            pool_prefix=f"10.{i + 1}.0.0/16", backhaul_delay_s=0.03)
        directory[ap.ap_id] = ap
        ap.register_spectrum()
        sim.run(until=sim.now + 0.5)
        assert ap.grant is not None, "license refused?"
        ap.discover_and_peer(directory)
        # incumbents also re-discover so everyone peers with the newcomer
        for other in directory.values():
            if other is not ap:
                other.discover_and_peer(directory)
        sim.run(until=sim.now + 1.0)

        print(f"t={sim.now:5.1f}s  {owner} brings up {ap.ap_id} "
              f"(grant {ap.grant.grant_id}):")
        for ap_id in sorted(directory):
            slice_ = sorted(directory[ap_id].cell.allowed_prbs)
            span = f"PRBs {slice_[0]}-{slice_[-1]}" if slice_ else "none"
            print(f"           {ap_id}: {len(slice_)}/50 PRBs ({span})")
        print()

    total_x2 = sum(ap.x2.bytes_sent for ap in directory.values())
    print(f"Total coordination traffic for all four joins: "
          f"{total_x2} bytes of X2.\n")

    # -- cooperative mode: fuse resources around a loaded AP -----------------
    print("The school's AP gets busy (10 clients); the owners opt into")
    print("cooperative mode and the federation re-balances:\n")
    for j in range(10):
        directory["ap0"].cell.add_ue(UeRadioContext(
            ue_id=f"student{j}",
            radio=Radio(Point(100 + 30 * j, 80), tx_power_dbm=23)))
    directory["ap3"].cell.add_ue(UeRadioContext(
        ue_id="homestead-1", radio=Radio(Point(3900, 1450), tx_power_dbm=23)))

    cluster = CooperativeCluster("valley")
    for ap in directory.values():
        cluster.join(ap.cell)
    partition = cluster.optimize()
    for name in sorted(partition):
        print(f"  {name}: {len(partition[name])}/50 PRBs")
    print("\nThe loaded cell now holds most of the spectrum; the idle")
    print("neighbours keep a sliver — resources follow demand, with no")
    print("central core anywhere (§4.3, cooperative mode).")


if __name__ == "__main__":
    main()
