"""Conservative time-window sharding: windows, lookahead, determinism.

The bar: a sharded run is the *same* simulation, not an approximation.
Every test here compares a federation against a monolithic reference
(plain simulator, plain channels) or against itself at another shard
count, expecting exact float equality.
"""

import math

import pytest

from repro.epc.agents import ControlAgent, ControlChannel
from repro.net.shardlink import CrossShardChannel
from repro.simcore.sharded import (
    ShardBoundary,
    ShardHost,
    ShardedSimulator,
    ZeroLookaheadError,
)
from repro.simcore.simulator import Simulator

L = 0.01  # the cross-shard latency (and therefore the window) used below


class Recorder(ControlAgent):
    """Logs (time, payload) arrivals; optionally echoes payload + 1."""

    def __init__(self, sim, name):
        super().__init__(sim, name, service_time_s=0.0)
        self.log = []
        self.reply_via = None
        self.limit = 0

    def handle(self, message):
        value = message.payload
        self.log.append((self.sim.now, value))
        if self.reply_via is not None and value < self.limit:
            self.reply_via.send(self, value + 1)


def _build_pingpong(spec):
    """Two recorders ping-ponging across the boundary; `a` also fires a
    burst of sends scheduled exactly at window edges (t = k*L)."""
    shard, n = spec["shard"], spec["n_shards"]
    sim = Simulator(11)
    boundary = ShardBoundary(sim, shard, n)
    delay = spec.get("delay", L)
    agents = {}
    if shard == 0:
        a = Recorder(sim, "a")
        half = CrossShardChannel(sim, boundary, a, "b", n - 1, delay, "pp")
        a.reply_via, a.limit = half, spec["limit"]
        for k in range(spec.get("burst", 3)):
            sim.at(k * delay, half.send, a, k * 100)
        agents["a"] = a
    if shard == n - 1:
        b = Recorder(sim, "b")
        half = CrossShardChannel(sim, boundary, b, "a", 0, delay, "pp")
        b.reply_via, b.limit = half, spec["limit"]
        agents["b"] = b

    def harvest(host):
        return {name: agent.log for name, agent in agents.items()}

    return ShardHost(sim, boundary, harvest=harvest)


def _merge(results):
    merged = {}
    for result in results:
        merged.update(result)
    return merged


def _monolithic_pingpong(limit, burst=3, until=1.0):
    """The reference: same scenario on one simulator, one ControlChannel."""
    sim = Simulator(11)
    a, b = Recorder(sim, "a"), Recorder(sim, "b")
    channel = ControlChannel(sim, a, b, L, "pp")
    a.reply_via = b.reply_via = channel
    a.limit = b.limit = limit
    for k in range(burst):
        sim.at(k * L, channel.send, a, k * 100)
    sim.run(until=until)
    return {"a": a.log, "b": b.log}


def test_sharded_matches_monolithic_exactly():
    reference = _monolithic_pingpong(limit=450)
    for n_shards in (1, 2):
        specs = [{"shard": s, "n_shards": n_shards, "limit": 450}
                 for s in range(n_shards)]
        sharded = ShardedSimulator(_build_pingpong, specs)
        merged = _merge(sharded.run(until=1.0))
        assert merged == reference  # exact float times, exact payloads


def test_window_edge_arrivals():
    # sends at t = k*L arrive at exactly (k+1)*L — every delivery lands
    # precisely on a window edge and must execute once, in the right
    # window, at the exact float time
    specs = [{"shard": s, "n_shards": 2, "limit": 0} for s in range(2)]
    sharded = ShardedSimulator(_build_pingpong, specs)
    merged = _merge(sharded.run(until=1.0))
    # expected times written exactly as the channel computes them
    # (k*L + L, not (k+1)*L — float product vs sum can differ by an ulp)
    assert merged["b"] == [(k * L + L, k * 100) for k in range(3)]
    assert sharded.lookahead_s == L


def test_empty_windows_and_idle_shard():
    # shard 1 of 3 hosts nothing; the run still advances every shard to
    # the horizon through hundreds of (mostly empty) windows
    def build(spec):
        if spec["shard"] == 1:
            sim = Simulator(11)
            return ShardHost(sim, ShardBoundary(sim, 1, spec["n_shards"]),
                             harvest=lambda host: {})
        return _build_pingpong(spec)

    specs = [{"shard": s, "n_shards": 3, "limit": 450} for s in range(3)]
    sharded = ShardedSimulator(build, specs)
    merged = _merge(sharded.run(until=1.0))
    assert merged == _monolithic_pingpong(limit=450)
    idle = sharded.stats[1]
    assert idle["events"] == 0
    assert idle["windows"] >= math.floor(1.0 / L)


def test_horizon_draining_and_withheld_records():
    # a sends at 2.5*L, b receives at 3.5*L — beyond the last full
    # window but at or before the horizon, so the façade must keep
    # exchanging at the horizon; b's echo (due 4.5*L) is withheld, just
    # as the monolithic run leaves it queued unexecuted
    horizon = 3.5 * L

    def build(spec):
        host = _build_pingpong({**spec, "burst": 0})
        if spec["shard"] == 0:
            a = host.sim  # schedule through the host's simulator
            # reach into the boundary to find a's half
            half = host.boundary.endpoints["pp@a"]
            a.at(2.5 * L, half.send, half.local_agent, 7)
        return host

    specs = [{"shard": s, "n_shards": 2, "limit": 1_000} for s in range(2)]
    sharded = ShardedSimulator(build, specs)
    merged = _merge(sharded.run(until=horizon))
    assert merged["b"] == [(3.5 * L, 7)]
    assert merged["a"] == []
    assert len(sharded.undelivered) == 1
    assert sharded.undelivered[0][0] == pytest.approx(4.5 * L)


def test_fork_mode_matches_serial():
    specs = [{"shard": s, "n_shards": 2, "limit": 450} for s in range(2)]
    serial = _merge(ShardedSimulator(_build_pingpong, specs).run(until=1.0))
    forked = _merge(ShardedSimulator(_build_pingpong, specs,
                                     mode="fork").run(until=1.0))
    assert forked == serial


def test_zero_lookahead_refused():
    specs = [{"shard": s, "n_shards": 2, "limit": 0, "delay": 0.0}
             for s in range(2)]
    sharded = ShardedSimulator(_build_pingpong, specs)
    with pytest.raises(ZeroLookaheadError, match="pp"):
        sharded.run(until=1.0)


def test_zero_delay_colocated_is_fine():
    # the same zero-delay channel is legal when both halves share a
    # shard: co-located couplings never constrain the window
    specs = [{"shard": 0, "n_shards": 1, "limit": 200, "delay": 0.0}]
    merged = _merge(ShardedSimulator(_build_pingpong, specs).run(until=1.0))
    assert merged["b"][0] == (0.0, 0)


def test_window_override_validated():
    specs = [{"shard": s, "n_shards": 2, "limit": 0} for s in range(2)]
    with pytest.raises(ValueError, match="exceeds lookahead"):
        ShardedSimulator(_build_pingpong, specs, window_s=2 * L).run(until=1.0)
    # a smaller window is allowed and changes nothing
    small = _merge(ShardedSimulator(_build_pingpong, specs,
                                    window_s=L / 4).run(until=1.0))
    assert small == _merge(ShardedSimulator(_build_pingpong, specs)
                           .run(until=1.0))


def test_overstated_lookahead_caught_at_injection():
    sim = Simulator(1)
    boundary = ShardBoundary(sim, 0, 2)
    sink = Recorder(sim, "sink")
    CrossShardChannel(sim, boundary, sink, "peer", 1, L, "x")
    host = ShardHost(sim, boundary)
    sim.run(until=0.5)
    stale = (0.25, 0.24, 1, 1, 0, "x@sink", 99)
    with pytest.raises(RuntimeError, match="overstated its lookahead"):
        host.inject([stale])


def test_boundary_rejects_duplicates_and_bad_shards():
    sim = Simulator(1)
    boundary = ShardBoundary(sim, 0, 2)
    boundary.register("k", object())
    with pytest.raises(ValueError, match="duplicate"):
        boundary.register("k", object())
    with pytest.raises(ValueError, match="outside"):
        boundary.couple("c", 5, 0.01)


def test_per_shard_stats_populated():
    specs = [{"shard": s, "n_shards": 2, "limit": 450} for s in range(2)]
    sharded = ShardedSimulator(_build_pingpong, specs, label="pingpong")
    sharded.run(until=1.0)
    assert len(sharded.stats) == 2
    for entry in sharded.stats:
        assert entry["label"] == "pingpong"
        assert entry["events"] > 0
        assert entry["heap_hwm"] >= 1
        assert entry["windows"] == sharded.windows
        assert entry["exec_s"] >= 0.0
        assert entry["barrier_wait_s"] >= 0.0
    # conservation at the boundary: everything a shard sent was either
    # injected into its peer or withheld past the horizon
    withheld = [0, 0]
    for record in sharded.undelivered:
        withheld[record[4]] += 1
    assert sharded.stats[0]["sent"] == sharded.stats[1]["received"] + withheld[1]
    assert sharded.stats[1]["sent"] == sharded.stats[0]["received"] + withheld[0]


# -- mid-window handover across a shard boundary ---------------------------

AIR = 0.005
WAN = 0.03
T_HO = 0.512  # 102.4 air-lookahead windows: strictly mid-window


def _build_handover(spec):
    """UE attaches via enb-a (shard 0), then at T_HO is re-homed to
    enb-b (last shard): new air leg crosses the boundary, and enb-b
    raises an S1 path switch the MME must ack back through the new leg."""
    from repro.enodeb.relay import EnbControlRelay
    from repro.epc.centralized import CentralizedEpc
    from repro.epc.subscriber import make_profile
    from repro.epc.ue import UserEquipment
    from repro.net.addressing import AddressPool

    shard, n = spec["shard"], spec["n_shards"]
    last = n - 1
    sim = Simulator(5)
    boundary = ShardBoundary(sim, shard, n)
    out = {}
    profile = make_profile("999310000000001")
    if shard == 0:
        epc = CentralizedEpc(sim, AddressPool("10.0.0.0/12"))
        epc.provision(profile)
        for enb_name, enb_shard in (("enb-a", 0), ("enb-b", last)):
            half = CrossShardChannel(sim, boundary, epc.mme, enb_name,
                                     enb_shard, WAN, f"s1:{enb_name}")
            epc.mme.connect_enb(enb_name, half)
        enb_a = EnbControlRelay(sim, "enb-a")
        enb_a.connect_core(CrossShardChannel(sim, boundary, enb_a,
                                             "epc-mme", 0, WAN, "s1:enb-a"))
        ue = UserEquipment(sim, profile, name="ue0")
        air_a = ControlChannel(sim, ue, enb_a, AIR, "air:a")
        ue.connect_air(air_a)
        enb_a.attach_ue("ue0", air_a)
        air_b_ue = CrossShardChannel(sim, boundary, ue, "enb-b", last,
                                     AIR, "air:b")
        sim.schedule(0.0, ue.start_attach)
        sim.at(T_HO, ue.connect_air, air_b_ue)
        out["ue"], out["air_b_ue"] = ue, air_b_ue
    if shard == last:
        enb_b = EnbControlRelay(sim, "enb-b")
        s1b = CrossShardChannel(sim, boundary, enb_b, "epc-mme", 0,
                                WAN, "s1:enb-b")
        enb_b.connect_core(s1b)
        air_b_enb = CrossShardChannel(sim, boundary, enb_b, "ue0", 0,
                                      AIR, "air:b")
        enb_b.attach_ue("ue0", air_b_enb)
        sim.at(T_HO, enb_b.request_path_switch, "ue0")
        out["s1b"], out["air_b_enb"] = s1b, air_b_enb

    def harvest(host):
        result = {}
        if "ue" in out:
            result["state"] = out["ue"].state.name
            result["latency"] = out["ue"].attach_latency_s
            result["ue_got_ack"] = out["air_b_ue"].received
        if "s1b" in out:
            result["pathswitch_up"] = out["s1b"].messages
            result["downlink_via_b"] = out["air_b_enb"].messages
        return result

    return ShardHost(sim, boundary, harvest=harvest)


def test_mid_window_handover_across_shards():
    reference = None
    for n_shards in (1, 2, 3):
        specs = [{"shard": s, "n_shards": n_shards}
                 for s in range(n_shards)]
        merged = _merge(ShardedSimulator(_build_handover, specs)
                        .run(until=1.0))
        assert merged["state"] == "ATTACHED"
        assert merged["pathswitch_up"] == 1  # enb-b raised the switch
        assert merged["ue_got_ack"] == 1     # ack came back over the new leg
        if reference is None:
            reference = merged
        else:
            assert merged == reference
