"""Control-plane execution model: serial agents and delayed channels.

Control-plane entities (MME, HSS, gateways, stubs) are *serial
processors*: each inbound message waits in a FIFO and then occupies the
agent for a per-message service time. This is what makes centralization
measurable — one MME shared by 200 APs saturates under an attach storm
(queueing delay explodes), while 200 independent stubs do not (§4.1:
"each stub can be independent of others, so the one stub per site model
naturally scales").

A :class:`ControlChannel` connects two agents with a fixed one-way
latency and counts bytes, giving E7/E9 their control-load numbers
without dragging the full IP substrate into the control plane.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Deque, Optional, Tuple
from collections import deque

from repro.simcore.simulator import Simulator


@dataclass(slots=True)
class ControlMessage:
    """Envelope: a NAS/S1AP/GTP-C payload plus reply routing."""

    payload: object
    sender: "ControlAgent"
    sent_at: float = 0.0
    queued_at: float = 0.0


class ControlAgent:
    """A named serial message processor.

    Subclasses implement :meth:`handle`. Metrics: messages processed,
    busy time, and peak queue depth — E7 reports all three.
    """

    def __init__(self, sim: Simulator, name: str,
                 service_time_s: float = 0.5e-3) -> None:
        if service_time_s < 0:
            raise ValueError("service time must be non-negative")
        self.sim = sim
        self.name = name
        self.service_time_s = service_time_s
        self._queue: Deque[ControlMessage] = deque()
        self._busy = False
        self.processed = 0
        self.busy_time_s = 0.0
        self.peak_queue_depth = 0
        self._m_processed = sim.metrics.counter("epc.agent.processed",
                                                agent=name)
        self._m_queue = sim.metrics.gauge("epc.agent.queue_depth", agent=name)
        self._m_wait = sim.metrics.histogram("epc.agent.queue_wait_s",
                                             agent=name)

    def enqueue(self, message: ControlMessage) -> None:
        """Accept an inbound message (called by channels)."""
        message.queued_at = self.sim.now
        queue = self._queue
        queue.append(message)
        depth = len(queue)
        if depth > self.peak_queue_depth:
            self.peak_queue_depth = depth
        self._m_queue.set(depth)
        if not self._busy:
            self._serve_next()

    def _serve_next(self) -> None:
        queue = self._queue
        if not queue:
            self._busy = False
            return
        self._busy = True
        message = queue.popleft()
        self._m_queue.set(len(queue))
        sim = self.sim
        self._m_wait.observe(sim.now - message.queued_at)
        sim.post_at(sim.now + self.service_time_s, self._finish, message)

    def _finish(self, message: ControlMessage) -> None:
        self.busy_time_s += self.service_time_s
        self.processed += 1
        self._m_processed.inc()
        self.handle(message)
        self._serve_next()

    @property
    def queue_depth(self) -> int:
        """Messages currently waiting (excluding the one in service)."""
        return len(self._queue)

    def utilization(self, elapsed_s: float) -> float:
        """Fraction of elapsed time spent processing."""
        return self.busy_time_s / elapsed_s if elapsed_s > 0 else 0.0

    def handle(self, message: ControlMessage) -> None:
        """Process one message; override in concrete agents."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name} q={len(self._queue)}>"


class ControlChannel:
    """A fixed-latency pipe between two agents, with byte accounting.

    A channel can be taken down (fault injection): while ``up`` is False
    every message offered in either direction is silently dropped and
    counted, which is how a severed S1/X2 path behaves from the control
    plane's point of view — requests just never come back.
    """

    def __init__(self, sim: Simulator, a: ControlAgent, b: ControlAgent,
                 one_way_delay_s: float, name: str = "") -> None:
        if one_way_delay_s < 0:
            raise ValueError("delay must be non-negative")
        self.sim = sim
        self.ends: Tuple[ControlAgent, ControlAgent] = (a, b)
        self.one_way_delay_s = one_way_delay_s
        self.name = name or f"{a.name}<->{b.name}"
        self.up = True
        self.messages = 0
        self.bytes = 0
        self.dropped = 0
        self._m_messages = sim.metrics.counter("epc.channel.messages",
                                               channel=self.name)
        self._m_bytes = sim.metrics.counter("epc.channel.bytes",
                                            channel=self.name)
        self._m_dropped = sim.metrics.counter("epc.channel.dropped",
                                              channel=self.name)

    def set_up(self, up: bool) -> None:
        """Raise or cut the channel (both directions)."""
        if up != self.up:
            self.sim.trace("fault",
                           f"channel {self.name} {'up' if up else 'down'}")
        self.up = up

    def other_end(self, agent: ControlAgent) -> ControlAgent:
        """The peer of ``agent`` on this channel."""
        a, b = self.ends
        if agent is a:
            return b
        if agent is b:
            return a
        raise ValueError(f"{agent.name} is not an end of channel {self.name}")

    def send(self, sender: ControlAgent, payload: object) -> None:
        """Deliver ``payload`` to the other end after the channel delay."""
        receiver = self.other_end(sender)
        if not self.up:
            self.dropped += 1
            self._m_dropped.inc()
            self.sim.trace("drop", f"channel {self.name}: down",
                           payload=type(payload).__name__)
            return
        self.messages += 1
        size = getattr(payload, "size_bytes", 0)
        self.bytes += size
        self._m_messages.inc()
        self._m_bytes.inc(size)
        sim = self.sim
        message = ControlMessage(payload=payload, sender=sender,
                                 sent_at=sim.now)
        sim.post_at(sim.now + self.one_way_delay_s, receiver.enqueue, message)


class CallbackAgent(ControlAgent):
    """An agent whose handler is a plain callable (for tests and UEs)."""

    def __init__(self, sim: Simulator, name: str,
                 handler: Optional[Callable[[ControlMessage], None]] = None,
                 service_time_s: float = 0.0) -> None:
        super().__init__(sim, name, service_time_s)
        self._handler = handler

    def handle(self, message: ControlMessage) -> None:
        if self._handler is not None:
            self._handler(message)
