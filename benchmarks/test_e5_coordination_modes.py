"""Bench E5 — the coordination-mode ladder (§4.3)."""

from conftest import emit, once

from repro.experiments import e5_coordination


def test_e5_coordination_modes(benchmark):
    table = once(benchmark, e5_coordination.run)
    emit(table)
    rows = {row["arm"]: row for row in table.rows}
    wifi = rows["legacy WiFi (CSMA)"]
    uncoord = rows["dLTE uncoordinated"]
    fair = rows["dLTE fair-sharing"]
    coop = rows["dLTE cooperative"]

    # fair sharing achieves WiFi-like fairness...
    assert abs(fair["jain_fairness"] - wifi["jain_fairness"]) < 0.15
    # ...with more useful throughput (no contention losses)
    assert fair["aggregate_mbps"] > wifi["aggregate_mbps"]
    # uncoordinated reuse-1 crushes the cell edge
    assert uncoord["min_ue_mbps"] < fair["min_ue_mbps"]
    assert uncoord["jain_fairness"] < fair["jain_fairness"]
    # cooperation beats plain fair sharing on fairness and the worst user
    assert coop["jain_fairness"] > fair["jain_fairness"]
    assert coop["min_ue_mbps"] > fair["min_ue_mbps"]
    # the paper's headline: cooperative dLTE dominates legacy WiFi on
    # every column
    assert coop["aggregate_mbps"] > wifi["aggregate_mbps"]
    assert coop["jain_fairness"] > wifi["jain_fairness"]
    assert coop["min_ue_mbps"] > wifi["min_ue_mbps"]


def test_e5_gbr_protection(benchmark):
    """§4.3: QoS-aware joint scheduling holds a GBR bearer under load."""
    table = once(benchmark, e5_coordination.gbr_protection)
    emit(table)
    for row in table.rows:
        assert row["guarantee_held"] == "yes"
        assert row["coop_video_mbps"] >= 3.0 * 0.95
    # the plain-PF cell dilutes the video as bulk users pile in
    pf = table.column("pf_video_mbps")
    assert pf == sorted(pf, reverse=True)
    assert pf[-1] < 1.5  # guarantee long gone without QoS scheduling


def test_e5_scales_with_ap_count(benchmark):
    """Ablation: the fair-sharing advantage persists as the domain grows."""
    def sweep():
        return [e5_coordination.run(n_aps=n, ue_per_ap=3, seed=2)
                for n in (2, 6)]

    tables = once(benchmark, sweep)
    emit(tables)
    for table in tables:
        rows = {row["arm"]: row for row in table.rows}
        assert (rows["dLTE fair-sharing"]["aggregate_mbps"]
                > rows["legacy WiFi (CSMA)"]["aggregate_mbps"])
