"""Per-cell UE arena: struct-of-arrays state for the batch TTI engine.

The scalar TTI path (``Cell.schedule_tti``) walks every attached UE every
TTI: a link-budget evaluation, a CQI bisect, a HARQ factor, a
``SchedulableUser`` object, and an EWMA dict update per UE. At hundreds
of UEs per cell that Python-object churn dominates the radio phase. The
arena re-expresses the same computation over contiguous per-cell arrays:

* one slot per attached UE, in attach (dict) order — the slot order IS
  the scalar iteration order, so every order-sensitive artifact (grant
  dict insertion order, telemetry observation order, EWMA accumulation)
  is reproduced exactly;
* PHY banks (downlink and uplink) holding SINR, CQI row index, spectral
  efficiency, per-PRB bits, and HARQ goodput factor per slot, refreshed
  *only* for rows whose inputs changed (a moved or re-parameterized UE)
  or when the cell-level environment signature changes (interferer set,
  serving radio, link budget, HARQ config);
* per-scheduler EWMA average-rate arrays replacing the per-user dict.

The contract is **bit identity** with the scalar reference: the vector
refresh routes its transcendental choke points through the libm element
maps in ``repro.phy.vmath`` (numpy's SIMD kernels round differently at
1 ulp on a few percent of inputs), replicates the scalar expressions'
association order, and falls back to the scalar evaluators per row for
geometries the vector path does not cover (directional antennas,
shadowing, per-transmitter interferer exclusions on the uplink). Those
fallback rows are still cached and still scheduled through the batch
machinery.

Row staleness is detected by value: each slot caches a tuple of its
radio's PHY-relevant fields (position included), compared every TTI, so
both radio replacement and in-place mutation invalidate the row.
Backlog / GBR / priority are synced every TTI without dirtying the PHY
banks (they never feed the radio math).

The batch engine is ON by default; flip it with ``set_batch_default``,
the ``batch_mode`` context manager, ``Cell(batch=...)``, or the
``REPRO_BATCH_TTI=0`` environment variable (the CLI's ``--scalar-tti``).
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.phy.harq import harq_goodput_factor_many
from repro.phy.linkbudget import Radio, _thermal_noise_cached
from repro.phy.mcs import (
    lte_efficiency_for_index,
    lte_min_sinr_for_index,
    select_lte_cqi_index_many,
)
from repro.phy.resource_grid import PRB_BANDWIDTH_HZ, TTI_S

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.enodeb.cell import Cell, UeRadioContext

__all__ = ["UeArena", "batch_default", "set_batch_default", "batch_mode"]


def _env_default() -> bool:
    raw = os.environ.get("REPRO_BATCH_TTI", "1").strip().lower()
    return raw not in ("0", "false", "no", "off")


_BATCH_DEFAULT = _env_default()


def batch_default() -> bool:
    """Current process-wide default for ``Cell(batch=None)``."""
    return _BATCH_DEFAULT


def set_batch_default(enabled: bool) -> bool:
    """Set the process-wide batch default; returns the previous value."""
    global _BATCH_DEFAULT
    previous = _BATCH_DEFAULT
    _BATCH_DEFAULT = bool(enabled)
    return previous


@contextmanager
def batch_mode(enabled: bool) -> Iterator[None]:
    """Scoped override of the batch default (tests, A/B comparisons)."""
    previous = set_batch_default(enabled)
    try:
        yield
    finally:
        set_batch_default(previous)


def _radio_sig(radio: Radio) -> tuple:
    """Value tuple of every radio field the PHY math reads."""
    p = radio.position
    return (p.x, p.y, radio.tx_power_dbm, radio.antenna_gain_dbi,
            radio.noise_figure_db, radio.cable_loss_db,
            radio.ul_papr_advantage_db, radio.antenna)


def _model_sig(model: object) -> tuple:
    """Value signature of a propagation/shadowing model."""
    attrs = getattr(model, "__dict__", None)
    items = tuple(sorted(attrs.items())) if attrs else ()
    return (type(model).__name__, items)


_EMPTY = np.empty(0)


class _PhyBank:
    """Cached per-slot radio quantities for one link direction."""

    __slots__ = ("env_sig", "vector_ok", "dirty", "sinr_l", "cqi", "eff",
                 "b", "harq", "sinr_arr", "eff_arr", "b_arr", "arrays_stale")

    def __init__(self) -> None:
        self.env_sig: Optional[tuple] = None
        self.vector_ok = False
        self.dirty: List[bool] = []
        self.sinr_l: List[float] = []
        self.cqi: List[int] = []
        self.eff: List[float] = []
        self.b: List[float] = []
        self.harq: List[float] = []
        self.sinr_arr = _EMPTY
        self.eff_arr = _EMPTY
        self.b_arr = _EMPTY
        self.arrays_stale = True

    def append_row(self) -> None:
        self.dirty.append(True)
        self.sinr_l.append(0.0)
        self.cqi.append(-1)
        self.eff.append(0.0)
        self.b.append(0.0)
        self.harq.append(0.0)
        self.arrays_stale = True

    def drop_row(self, slot: int) -> None:
        for lst in (self.dirty, self.sinr_l, self.cqi, self.eff,
                    self.b, self.harq):
            del lst[slot]
        self.arrays_stale = True

    def rebuild_arrays(self) -> None:
        self.sinr_arr = np.array(self.sinr_l, dtype=float)
        self.eff_arr = np.array(self.eff, dtype=float)
        self.b_arr = np.array(self.b, dtype=float)
        self.arrays_stale = False


class _RateStore:
    """One scheduler's EWMA average-rate state, arena-slot aligned."""

    __slots__ = ("avg",)

    def __init__(self, avg: np.ndarray) -> None:
        self.avg = avg


class UeArena:
    """Struct-of-arrays mirror of one cell's attached-UE set."""

    def __init__(self, cell: "Cell") -> None:
        self._cell = cell
        #: UE ids in slot (attach) order — mirrors ``Cell._ues`` exactly.
        self.ids: List[str] = []
        self.slot_of: Dict[str, int] = {}
        self._ctxs: List["UeRadioContext"] = []
        # per-slot cached radio value tuples + unpacked columns
        self._sigs: List[tuple] = []
        self._plain: List[bool] = []  # omni antenna -> vector-refreshable
        self._x: List[float] = []
        self._y: List[float] = []
        self._gain: List[float] = []
        self._cable: List[float] = []
        self._nf: List[float] = []
        self._power: List[float] = []
        self._papr: List[float] = []
        # scheduler-visible per-slot demand state
        self.backlog: List[float] = []
        self.gbr: List[float] = []
        self.priority: List[int] = []
        self.backlog_arr = _EMPTY
        self._backlog_stale = True
        self.dl = _PhyBank()
        self.ul = _PhyBank()
        self._stores: List[Tuple[object, _RateStore]] = []
        #: slots sorted by descending UE id (PF tie-break order), cached
        self.desc_order: List[int] = []
        self._desc_stale = True

    @property
    def n(self) -> int:
        return len(self.ids)

    # -- structural maintenance (driven by Cell.add_ue / remove_ue) --------

    def attach(self, ctx: "UeRadioContext") -> None:
        uid = ctx.ue_id
        self.slot_of[uid] = len(self.ids)
        self.ids.append(uid)
        self._ctxs.append(ctx)
        sig = _radio_sig(ctx.radio)
        self._sigs.append(sig)
        self._plain.append(sig[7] is None)
        self._x.append(sig[0])
        self._y.append(sig[1])
        self._power.append(sig[2])
        self._gain.append(sig[3])
        self._nf.append(sig[4])
        self._cable.append(sig[5])
        self._papr.append(sig[6])
        self.backlog.append(ctx.backlog_bits)
        self.gbr.append(ctx.gbr_bps)
        self.priority.append(ctx.priority)
        self._backlog_stale = True
        self._desc_stale = True
        self.dl.append_row()
        self.ul.append_row()
        for sched, store in self._stores:
            seed = sched._avg_rate_bps.get(uid, 0.0)
            store.avg = np.append(store.avg, seed)

    def detach(self, uid: str) -> None:
        slot = self.slot_of.pop(uid, None)
        if slot is None:
            return
        for lst in (self.ids, self._ctxs, self._sigs, self._plain,
                    self._x, self._y, self._power, self._gain, self._nf,
                    self._cable, self._papr, self.backlog, self.gbr,
                    self.priority):
            del lst[slot]
        ids = self.ids
        for i in range(slot, len(ids)):
            self.slot_of[ids[i]] = i
        self._backlog_stale = True
        self._desc_stale = True
        self.dl.drop_row(slot)
        self.ul.drop_row(slot)
        for _sched, store in self._stores:
            store.avg = np.delete(store.avg, slot)

    # -- EWMA stores -------------------------------------------------------

    def store_for(self, scheduler: object) -> _RateStore:
        """The scheduler's slot-aligned EWMA array (created on first use,
        seeded from its scalar dict so mid-run engagement is seamless)."""
        for sched, store in self._stores:
            if sched is scheduler:
                return store
        avg = np.array([scheduler._avg_rate_bps.get(uid, 0.0)
                        for uid in self.ids], dtype=float)
        store = _RateStore(avg)
        self._stores.append((scheduler, store))
        # shared-scheduler guard: Cell refuses the batch path when a
        # scheduler instance is already bound to a different cell's arena
        scheduler._array_store_arena = self
        return store

    def sync_stores_to_dicts(self) -> None:
        """Write array EWMA state back into each scheduler's dict (used
        when a cell leaves batch mode so the scalar path resumes with
        identical averages)."""
        for sched, store in self._stores:
            sched._avg_rate_bps.update(zip(self.ids, store.avg.tolist()))

    # -- per-TTI refresh ---------------------------------------------------

    def refresh_downlink(self) -> _PhyBank:
        return self._refresh(self.dl, downlink=True)

    def refresh_uplink(self) -> _PhyBank:
        return self._refresh(self.ul, downlink=False)

    def _refresh(self, bank: _PhyBank, downlink: bool) -> _PhyBank:
        if self._desc_stale:
            ids = self.ids
            self.desc_order = sorted(range(len(ids)), key=ids.__getitem__,
                                     reverse=True)
            self._desc_stale = False
        self._scan_rows()
        env = self._dl_env() if downlink else self._ul_env()
        if env != bank.env_sig:
            bank.env_sig = env
            bank.vector_ok = (self._dl_vector_ok() if downlink
                              else self._ul_vector_ok())
            dirty = bank.dirty
            for i in range(len(dirty)):
                dirty[i] = True
        stale = [i for i, d in enumerate(bank.dirty) if d]
        if stale:
            self._refresh_rows(bank, stale, downlink)
            dirty = bank.dirty
            for s in stale:
                dirty[s] = False
        if bank.arrays_stale:
            bank.rebuild_arrays()
        if self._backlog_stale:
            self.backlog_arr = np.array(self.backlog, dtype=float)
            self._backlog_stale = False
        return bank

    def _scan_rows(self) -> None:
        """Value-compare every row's inputs against the cached copies."""
        sigs = self._sigs
        backlog = self.backlog
        gbr = self.gbr
        prio = self.priority
        barr = self.backlog_arr
        bstale = self._backlog_stale
        dl_dirty = self.dl.dirty
        ul_dirty = self.ul.dirty
        for slot, ctx in enumerate(self._ctxs):
            r = ctx.radio
            p = r.position
            sig = (p.x, p.y, r.tx_power_dbm, r.antenna_gain_dbi,
                   r.noise_figure_db, r.cable_loss_db,
                   r.ul_papr_advantage_db, r.antenna)
            if sig != sigs[slot]:
                sigs[slot] = sig
                self._plain[slot] = sig[7] is None
                self._x[slot] = sig[0]
                self._y[slot] = sig[1]
                self._power[slot] = sig[2]
                self._gain[slot] = sig[3]
                self._nf[slot] = sig[4]
                self._cable[slot] = sig[5]
                self._papr[slot] = sig[6]
                dl_dirty[slot] = True
                ul_dirty[slot] = True
            bl = ctx.backlog_bits
            if bl != backlog[slot]:
                backlog[slot] = bl
                if not bstale:
                    barr[slot] = bl
            g = ctx.gbr_bps
            if g != gbr[slot]:
                gbr[slot] = g
            pr = ctx.priority
            if pr != prio[slot]:
                prio[slot] = pr

    # -- environment signatures -------------------------------------------

    def _dl_env(self) -> tuple:
        cell = self._cell
        lb = cell.link_budget
        inter = tuple(_radio_sig(c.radio) for c in cell.interferers
                      if c is not cell)
        shadow = None if lb.shadowing is None else _model_sig(lb.shadowing)
        return (id(lb), lb.freq_mhz, lb.bandwidth_hz, _model_sig(lb.model),
                shadow, cell.harq_enabled, cell.harq_max_retx,
                _radio_sig(cell.radio), inter)

    def _ul_env(self) -> tuple:
        cell = self._cell
        lb = cell.link_budget
        inter = tuple(_radio_sig(r) for r in lb.interferers)
        shadow = None if lb.shadowing is None else _model_sig(lb.shadowing)
        return (id(lb), lb.freq_mhz, lb.bandwidth_hz, _model_sig(lb.model),
                shadow, cell.harq_enabled, cell.harq_max_retx,
                _radio_sig(cell.radio), inter)

    def _dl_vector_ok(self) -> bool:
        cell = self._cell
        lb = cell.link_budget
        return (lb.shadowing is None and cell.radio.antenna is None
                and all(c.radio.antenna is None for c in cell.interferers
                        if c is not cell))

    def _ul_vector_ok(self) -> bool:
        cell = self._cell
        lb = cell.link_budget
        return (lb.shadowing is None and cell.radio.antenna is None
                and not lb.interferers)

    # -- row recomputation -------------------------------------------------

    def _refresh_rows(self, bank: _PhyBank, rows: List[int],
                      downlink: bool) -> None:
        cell = self._cell
        lb = cell.link_budget
        if bank.vector_ok:
            plain = self._plain
            vec = [s for s in rows if plain[s]]
            sca = [s for s in rows if not plain[s]]
        else:
            vec = []
            sca = rows
        sinr_l = bank.sinr_l
        if vec:
            xs = np.array([self._x[s] for s in vec])
            ys = np.array([self._y[s] for s in vec])
            gains = np.array([self._gain[s] for s in vec])
            cables = np.array([self._cable[s] for s in vec])
            if downlink:
                bw = lb.bandwidth_hz
                noise = np.array([_thermal_noise_cached(bw, self._nf[s])
                                  for s in vec])
                inter = [c.radio for c in cell.interferers if c is not cell]
                svals = lb.sinr_db_fixed_tx_many(
                    cell.radio, xs, ys, gains, cables, noise, inter)
            else:
                power = np.array([self._power[s] for s in vec])
                papr = np.array([self._papr[s] for s in vec])
                svals = lb.sinr_db_many_tx_fixed_rx(
                    xs, ys, power, papr, gains, cables, cell.radio)
            sv = svals.tolist()
            for i, s in enumerate(vec):
                sinr_l[s] = sv[i]
        if sca:
            ctxs = self._ctxs
            if downlink:
                for s in sca:
                    sinr_l[s] = cell.sinr_to(ctxs[s].radio)
            else:
                for s in sca:
                    sinr_l[s] = cell.uplink_sinr_from(ctxs[s].radio)
        svals = np.array([sinr_l[s] for s in rows], dtype=float)
        cqi = select_lte_cqi_index_many(svals)
        eff = lte_efficiency_for_index(cqi)
        thresh = lte_min_sinr_for_index(cqi)
        # same association order as bits_per_prb: (eff * 180e3) * 1e-3
        b = eff * PRB_BANDWIDTH_HZ * TTI_S
        # rows below CQI 1 get a junk factor (threshold 0.0) that the
        # delivery tail never consumes — eligibility requires eff > 0
        harq = harq_goodput_factor_many(svals, thresh,
                                        max_retx=cell.harq_max_retx)
        cl = cqi.tolist()
        el = eff.tolist()
        bl = b.tolist()
        hl = harq.tolist()
        cqi_l = bank.cqi
        eff_l = bank.eff
        b_l = bank.b
        harq_l = bank.harq
        for i, s in enumerate(rows):
            cqi_l[s] = cl[i]
            eff_l[s] = el[i]
            b_l[s] = bl[i]
            harq_l[s] = hl[i]
        bank.arrays_stale = True
