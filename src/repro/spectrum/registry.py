"""The registry interface every design implements.

The dLTE architecture's only requirement (§4.3): "the registry is open
and accurately reports which access points operate in each region." The
interface is asynchronous — every operation takes a callback fired after
the design's characteristic latency — so E10 can measure the designs
head-to-head, and failure injection is first-class so availability can
be measured too.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, List, Optional

from repro.spectrum.grants import ApRecord, SpectrumGrant
from repro.simcore.simulator import Simulator


class RegistryUnavailable(Exception):
    """Delivered (via callback error slot) when the serving node is down."""


GrantCallback = Callable[[Optional[SpectrumGrant]], None]
DiscoverCallback = Callable[[List[ApRecord]], None]


class SpectrumRegistry(ABC):
    """Base class: join (request a grant), discover peers, leave."""

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self.grants_issued = 0
        self.queries_served = 0
        kind = type(self).__name__
        metrics = sim.metrics
        self._m_grants = metrics.counter("spectrum.grants_issued",
                                         registry=kind)
        self._m_queries = metrics.counter("spectrum.queries_served",
                                          registry=kind)
        self._m_refused = metrics.counter("spectrum.grants_refused",
                                          registry=kind)
        self._m_expired = metrics.counter("spectrum.grants_expired",
                                          registry=kind)
        self._m_heartbeats = metrics.counter("spectrum.heartbeats_served",
                                             registry=kind)

    @abstractmethod
    def request_grant(self, record: ApRecord, callback: GrantCallback) -> None:
        """Ask for a license; ``callback(grant_or_None)`` when decided.

        None means refused or the registry was unreachable.
        """

    @abstractmethod
    def discover_neighbors(self, ap_id: str,
                           callback: DiscoverCallback) -> None:
        """Fetch the APs sharing the caller's contention domain.

        The callback receives an empty list when the AP is unknown or
        the registry is unreachable.
        """

    @abstractmethod
    def deregister(self, ap_id: str) -> None:
        """Withdraw an AP's grant (idempotent)."""

    @abstractmethod
    def is_available(self) -> bool:
        """Can the registry currently serve requests?"""
