"""Overload protection for control-plane agents (bounded queues + T3346).

The seed models overload as *infinite patience*: every
:class:`~repro.epc.agents.ControlAgent` carries an unbounded FIFO, so a
stadium-scale attach storm only ever shows up as queueing delay. Real
cores bound their queues and shed — and, per 3GPP's congestion-control
pattern (T3346), tell rejected UEs *when to come back* so the flash
crowd decays instead of synchronizing into a retry storm.

This module is pure policy: an immutable :class:`OverloadPolicy` plus a
NAS message classifier. Agents opt in via
``ControlAgent.configure_overload(policy)``; with no policy installed
the agent's hot path is byte-identical to the seed.

Shedding policies (``policy.shed``):

``drop-tail``
    Queue full -> the incoming message is shed (cause ``queue-full``).
``deadline``
    Before dropping tail, expire queued messages that have already
    waited longer than ``deadline_s`` (cause ``deadline``) — a message
    whose sender has long since timed out is pure wasted service time.
``priority``
    Evict the *lowest-priority, youngest* queued message to make room
    for a higher-priority arrival (cause ``priority``), so Detach,
    Paging, and ServiceRequest survive an AttachRequest flood. Equal or
    lower priority arrivals are shed instead (cause ``queue-full``).

Admission control is orthogonal to shedding: when the backlog reaches
``admission_limit``, *new work* (AttachRequest) is refused at enqueue
time — before it costs any service time — and agents that know how to
route a reply send ``AttachReject(cause="congestion",
backoff_s=policy.congestion_backoff_s)`` so the UE backs off for a
server-assigned interval instead of hammering the timeout.

Every shed is accounted by cause; the conservation law
``enqueued == served + shed + in_queue`` is auditable per agent via
:meth:`repro.invariants.InvariantChecker.watch_agent`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.epc import nas

__all__ = ["OverloadPolicy", "message_class",
           "CLASS_CRITICAL", "CLASS_PROCEDURE", "CLASS_NEW_WORK"]

#: must keep flowing under overload: teardown, reachability, idle-exit.
CLASS_CRITICAL = 0
#: mid-procedure steps — shedding these wastes work already invested.
CLASS_PROCEDURE = 1
#: brand-new work: first to shed, cheapest to refuse.
CLASS_NEW_WORK = 2

#: payload types that stay deliverable during an attach flood. Detach
#: releases resources (shedding it *worsens* overload), Paging and
#: ServiceRequest keep already-attached users reachable, context
#: release lets the core shrink state, session teardown frees bearers.
_CRITICAL_TYPES = (nas.DetachRequest, nas.Paging, nas.ServiceRequest,
                   nas.UeContextRelease, nas.DeleteSessionRequest)


def message_class(payload: object) -> int:
    """Priority class of a control payload (lower = more important)."""
    if isinstance(payload, nas.AttachRequest):
        return CLASS_NEW_WORK
    if isinstance(payload, _CRITICAL_TYPES):
        return CLASS_CRITICAL
    return CLASS_PROCEDURE


@dataclass(frozen=True)
class OverloadPolicy:
    """Bounded-queue + admission-control configuration for one agent.

    Attributes:
        queue_limit: max messages *waiting* (the one in service is not
            counted); arrivals beyond this are shed per ``shed``.
        shed: shedding policy — ``drop-tail``, ``deadline``, or
            ``priority`` (see module docstring).
        deadline_s: max queue wait before a message is considered dead
            (``deadline`` policy only).
        admission_limit: backlog depth at which new AttachRequests are
            refused with a congestion reject; ``None`` disables
            admission control (attaches then compete like any other
            message).
        congestion_backoff_s: the T3346 analogue carried in
            ``AttachReject.backoff_s`` — the server-assigned minimum
            wait before the UE may retry.
    """

    queue_limit: int
    shed: str = "drop-tail"
    deadline_s: float = 1.0
    admission_limit: Optional[int] = None
    congestion_backoff_s: float = 2.0

    def __post_init__(self) -> None:
        if self.queue_limit < 1:
            raise ValueError("queue_limit must be >= 1")
        if self.shed not in ("drop-tail", "deadline", "priority"):
            raise ValueError(f"unknown shedding policy {self.shed!r}")
        if self.deadline_s <= 0:
            raise ValueError("deadline_s must be positive")
        if self.admission_limit is not None and self.admission_limit < 1:
            raise ValueError("admission_limit must be >= 1")
        if self.congestion_backoff_s < 0:
            raise ValueError("congestion_backoff_s must be non-negative")
