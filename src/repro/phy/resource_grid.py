"""LTE time-frequency resource grid arithmetic.

LTE schedules in physical resource blocks (PRBs): 12 subcarriers x 15 kHz
= 180 kHz wide, one per 0.5 ms slot, allocated per 1 ms TTI (a PRB pair).
The grid is what makes LTE's coordination claims concrete: fair-sharing
and cooperative modes (§4.3) are implemented as PRB-set partitions, and
throughput is PRBs x per-PRB bits at the scheduled MCS.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List

#: Standard LTE channel bandwidth -> PRB count (3GPP TS 36.101).
_BANDWIDTH_TO_PRBS = {
    1.4e6: 6,
    3e6: 15,
    5e6: 25,
    10e6: 50,
    15e6: 75,
    20e6: 100,
}

#: One PRB spans 12 x 15 kHz subcarriers.
PRB_BANDWIDTH_HZ = 180e3

#: Scheduling interval (one subframe).
TTI_S = 1e-3

#: Resource elements per PRB pair usable for data, after control/reference
#: overhead (12 subcarriers x 14 symbols minus ~29% overhead).
DATA_RES_PER_PRB_PAIR = 120


def prbs_for_bandwidth(bandwidth_hz: float) -> int:
    """PRB count for a standard LTE channel bandwidth.

    Non-standard bandwidths are rejected rather than rounded: a config
    asking for 7 MHz is a bug, not a preference.
    """
    try:
        return _BANDWIDTH_TO_PRBS[bandwidth_hz]
    except KeyError:
        raise ValueError(
            f"{bandwidth_hz/1e6:g} MHz is not a standard LTE bandwidth; "
            f"choices: {sorted(b/1e6 for b in _BANDWIDTH_TO_PRBS)} MHz"
        ) from None


def bits_per_prb(efficiency_bps_hz: float) -> float:
    """Data bits carried by one PRB pair in one TTI at a spectral efficiency.

    Efficiency is defined over occupied bandwidth, so bits = eff x 180 kHz
    x 1 ms, capped by the modulation-symbol capacity of the data REs.
    """
    if efficiency_bps_hz < 0:
        raise ValueError("efficiency must be non-negative")
    return efficiency_bps_hz * PRB_BANDWIDTH_HZ * TTI_S


@dataclass
class ResourceGrid:
    """The PRB pool of one cell, with named reservations.

    Coordination modes carve the grid into slices: ``reserve`` assigns a
    PRB set to an owner (a neighbour cell under ICIC, or "local"), and the
    scheduler only allocates from the local slice. Reservations must not
    overlap; that invariant is what "coordination" means at this layer.
    """

    bandwidth_hz: float

    def __post_init__(self) -> None:
        self.n_prbs = prbs_for_bandwidth(self.bandwidth_hz)
        self._reservations: Dict[str, FrozenSet[int]] = {}

    @property
    def all_prbs(self) -> FrozenSet[int]:
        """The full PRB index set of the cell."""
        return frozenset(range(self.n_prbs))

    @property
    def reserved_prbs(self) -> FrozenSet[int]:
        """Union of all current reservations."""
        out: set = set()
        for prbs in self._reservations.values():
            out |= prbs
        return frozenset(out)

    @property
    def unreserved_prbs(self) -> FrozenSet[int]:
        """PRBs not held by any reservation."""
        return self.all_prbs - self.reserved_prbs

    def reserve(self, owner: str, prbs: Iterable[int]) -> FrozenSet[int]:
        """Reserve a PRB set for ``owner``; rejects overlap and bad indices."""
        wanted = frozenset(prbs)
        bad = [p for p in wanted if not 0 <= p < self.n_prbs]
        if bad:
            raise ValueError(f"PRB indices out of range 0..{self.n_prbs-1}: {sorted(bad)}")
        if owner in self._reservations:
            raise ValueError(f"owner {owner!r} already holds a reservation")
        taken = wanted & self.reserved_prbs
        if taken:
            raise ValueError(f"PRBs already reserved: {sorted(taken)}")
        self._reservations[owner] = wanted
        return wanted

    def release(self, owner: str) -> None:
        """Drop ``owner``'s reservation (KeyError if absent)."""
        del self._reservations[owner]

    def reservation(self, owner: str) -> FrozenSet[int]:
        """The PRB set held by ``owner`` (empty if none)."""
        return self._reservations.get(owner, frozenset())

    def partition_equal(self, owners: List[str]) -> Dict[str, FrozenSet[int]]:
        """Replace all reservations with an equal contiguous split.

        Used by fair-sharing mode: ``n`` owners each get ~n_prbs/n
        contiguous PRBs (remainder spread from the front). Returns the
        mapping actually installed.
        """
        if not owners:
            raise ValueError("cannot partition among zero owners")
        self._reservations.clear()
        base, extra = divmod(self.n_prbs, len(owners))
        start = 0
        result: Dict[str, FrozenSet[int]] = {}
        for i, owner in enumerate(owners):
            size = base + (1 if i < extra else 0)
            prbs = frozenset(range(start, start + size))
            self._reservations[owner] = prbs
            result[owner] = prbs
            start += size
        return result
