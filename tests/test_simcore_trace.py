"""Unit tests for the event tracer (repro.simcore.trace)."""

import pytest

from repro.core import DLTENetwork
from repro.simcore import Simulator, TraceEvent, Tracer
from repro.workloads import RuralTown


def test_trace_noop_without_tracer():
    sim = Simulator(0)
    sim.trace("anything", "goes nowhere", x=1)  # must not raise


def test_record_and_query():
    sim = Simulator(0)
    sim.tracer = Tracer()
    sim.schedule(1.0, lambda: sim.trace("cat", "hello", n=1))
    sim.schedule(2.0, lambda: sim.trace("dog", "world"))
    sim.run()
    assert len(sim.tracer) == 2
    cats = sim.tracer.events("cat")
    assert len(cats) == 1
    assert cats[0].time_s == 1.0
    assert cats[0].fields == {"n": 1}
    assert sim.tracer.categories() == ["cat", "dog"]


def test_time_window_query():
    tracer = Tracer()
    for t in (1.0, 2.0, 3.0, 4.0):
        tracer.record(t, "x", "tick")
    assert len(tracer.events(since_s=2.0, until_s=3.0)) == 2


def test_category_filter():
    tracer = Tracer(categories=["keep"])
    tracer.record(0.0, "keep", "yes")
    tracer.record(0.0, "drop", "no")
    assert tracer.count() == 1
    assert tracer.recorded == 1
    assert tracer.filtered == 1


def test_ring_buffer_bounds_memory():
    tracer = Tracer(max_events=10)
    for i in range(100):
        tracer.record(float(i), "x", f"event{i}")
    assert len(tracer) == 10
    assert tracer.events()[0].time_s == 90.0  # oldest dropped
    assert tracer.recorded == 100


def test_dump_renders_fields():
    tracer = Tracer()
    tracer.record(1.5, "attach", "session created", ue="ue3")
    text = tracer.dump()
    assert "attach" in text and "session created" in text and "ue=ue3" in text


def test_clear():
    tracer = Tracer()
    tracer.record(0.0, "x", "a")
    tracer.clear()
    assert len(tracer) == 0
    assert tracer.recorded == 1  # counters survive


def test_validates():
    with pytest.raises(ValueError):
        Tracer(max_events=0)


def test_event_is_frozen():
    event = TraceEvent(1.0, "c", "m")
    with pytest.raises(Exception):
        event.time_s = 2.0


def test_network_run_emits_protocol_traces():
    """The instrumented points fire during a real network run."""
    town = RuralTown(radius_m=1500, n_ues=4, n_aps=2, seed=2)
    net = DLTENetwork.build(town, seed=2)
    net.sim.tracer = Tracer()
    net.run(duration_s=3.0)
    assert net.sim.tracer.count("attach") == 4      # one per UE session
    assert net.sim.tracer.count("coordination") >= 2  # both APs installed
    for event in net.sim.tracer.events("attach"):
        assert "address" in event.fields
