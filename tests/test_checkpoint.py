"""Tests for the resumable sweep journal (repro.runner.checkpoint)."""

import json
import os

import pytest

from repro.runner import SweepCheckpoint


def test_roundtrip_and_reload(tmp_path):
    directory = str(tmp_path)
    with SweepCheckpoint(directory, run_id="campaign") as ckpt:
        assert not ckpt.done("exp:E5")
        ckpt.record("exp:E5", "table one\n")
        ckpt.record("exp:E9", {"nested": [1, 2, 3], "text": "π ≈ 3.14159"})
        assert ckpt.done("exp:E5")
        assert len(ckpt) == 2

    # a fresh instance over the same directory sees everything, verbatim
    with SweepCheckpoint(directory, run_id="campaign") as again:
        assert list(again.keys()) == ["exp:E5", "exp:E9"]
        assert again.get("exp:E5") == "table one\n"
        assert again.get("exp:E9") == {"nested": [1, 2, 3],
                                       "text": "π ≈ 3.14159"}
        with pytest.raises(KeyError):
            again.get("exp:NOPE")


def test_header_written_once(tmp_path):
    directory = str(tmp_path)
    with SweepCheckpoint(directory, run_id="r1"):
        pass
    with SweepCheckpoint(directory, run_id="r1") as ckpt:
        ckpt.record("k", 1)
    with open(ckpt.path) as handle:
        records = [json.loads(line) for line in handle if line.strip()]
    assert [r["kind"] for r in records] == ["header", "cell"]
    assert records[0]["run_id"] == "r1"


def test_record_idempotent_for_same_key(tmp_path):
    with SweepCheckpoint(str(tmp_path)) as ckpt:
        ckpt.record("k", "first")
        ckpt.record("k", "second")  # ignored: the journal is append-only
        assert ckpt.get("k") == "first"
    with open(ckpt.path) as handle:
        cells = [json.loads(line) for line in handle
                 if line.strip() and json.loads(line)["kind"] == "cell"]
    assert len(cells) == 1


def test_torn_tail_dropped_on_load(tmp_path):
    directory = str(tmp_path)
    with SweepCheckpoint(directory, run_id="r") as ckpt:
        ckpt.record("done-cell", "payload")
    # simulate a mid-write death: an unterminated, truncated final line
    with open(ckpt.path, "a") as handle:
        handle.write('{"kind": "cell", "key": "torn-ce')
    with SweepCheckpoint(directory, run_id="r") as resumed:
        assert resumed.dropped_torn_lines == 1
        assert resumed.done("done-cell")
        assert not resumed.done("torn-ce")  # the torn cell simply re-runs
        # the journal keeps accepting records after recovery
        resumed.record("torn-cell", "retried payload")
    with SweepCheckpoint(directory, run_id="r") as final:
        assert final.done("torn-cell")


def test_corruption_before_intact_records_refused(tmp_path):
    directory = str(tmp_path)
    with SweepCheckpoint(directory, run_id="r") as ckpt:
        ckpt.record("a", 1)
    with open(ckpt.path) as handle:
        lines = handle.readlines()
    lines.insert(1, "NOT JSON AT ALL\n")  # corruption *followed by* a cell
    with open(ckpt.path, "w") as handle:
        handle.writelines(lines)
    with pytest.raises(ValueError, match="corrupt manifest"):
        SweepCheckpoint(directory, run_id="r")


def test_run_id_mismatch_refused(tmp_path):
    directory = str(tmp_path)
    with SweepCheckpoint(directory, run_id="alpha") as ckpt:
        ckpt.record("k", 1)
    with pytest.raises(ValueError, match="belongs to run 'alpha'"):
        SweepCheckpoint(directory, run_id="beta")
    # omitting the run_id (or matching it) is fine
    with SweepCheckpoint(directory) as anon:
        assert anon.done("k")
    with SweepCheckpoint(directory, run_id="alpha") as same:
        assert same.done("k")


def test_directory_created_if_missing(tmp_path):
    directory = str(tmp_path / "deep" / "nested")
    with SweepCheckpoint(directory, run_id="r") as ckpt:
        ckpt.record("k", "v")
    assert os.path.exists(os.path.join(directory, "manifest.jsonl"))


def test_records_survive_without_close(tmp_path):
    # fsync-per-record means a never-closed handle loses nothing
    ckpt = SweepCheckpoint(str(tmp_path), run_id="r")
    ckpt.record("k", "v")
    with SweepCheckpoint(str(tmp_path), run_id="r") as other:
        assert other.get("k") == "v"
    ckpt.close()
