"""Unit tests for the radio cell (repro.enodeb.cell)."""

import pytest

from repro.enodeb.cell import Cell, UeRadioContext
from repro.geo import Point
from repro.phy import LinkBudget, OkumuraHata, Radio, get_band
from repro.phy.resource_grid import bits_per_prb


def _cell(x=0.0, harq=True, **kw):
    band = get_band("lte5")
    budget = LinkBudget(OkumuraHata(environment="open"), band.dl_mhz,
                        band.bandwidth_hz)
    return Cell(f"cell@{x}", band, Point(x, 0), budget, harq_enabled=harq,
                **kw)


def _ue(ue_id, x, **kw):
    return UeRadioContext(ue_id, Radio(Point(x, 100), tx_power_dbm=23), **kw)


def test_add_remove_ue():
    cell = _cell()
    cell.add_ue(_ue("a", 500))
    assert cell.attached_ues == ["a"]
    with pytest.raises(ValueError):
        cell.add_ue(_ue("a", 600))
    cell.remove_ue("a")
    assert cell.attached_ues == []
    cell.remove_ue("a")  # idempotent


def test_rsrp_decreases_with_distance():
    cell = _cell()
    near = Radio(Point(300, 0), tx_power_dbm=23)
    far = Radio(Point(8000, 0), tx_power_dbm=23)
    assert cell.rsrp_to(near) > cell.rsrp_to(far)


def test_sinr_accounts_for_interferers():
    cell = _cell()
    rival = _cell(x=1200)
    ue = Radio(Point(600, 50), tx_power_dbm=23)
    clean = cell.sinr_to(ue)
    cell.interferers = [rival]
    assert cell.sinr_to(ue) < clean


def test_schedule_tti_delivers_bits():
    cell = _cell()
    cell.add_ue(_ue("near", 400))
    delivered = cell.schedule_tti()
    assert delivered["near"] > 0
    # a near UE at 50 PRBs x CQI15 x ~1000 bits/PRB: bounded sanity
    assert delivered["near"] <= 50 * bits_per_prb(5.5547)


def test_schedule_tti_empty_cell():
    assert _cell().schedule_tti() == {}


def test_unreachable_ue_gets_nothing():
    cell = _cell()
    cell.add_ue(_ue("moon", 90_000))  # beyond the link budget
    assert cell.schedule_tti() == {}


def test_allowed_prbs_cap_throughput():
    full = _cell()
    full.add_ue(_ue("u", 500))
    half = _cell()
    half.add_ue(_ue("u", 500))
    half.allowed_prbs = frozenset(range(25))
    full_bits = full.schedule_tti()["u"]
    half_bits = half.schedule_tti()["u"]
    assert half_bits == pytest.approx(full_bits / 2, rel=0.05)


def test_harq_factor_reduces_weak_ue_goodput():
    with_harq = _cell(harq=True)
    plain = _cell(harq=False)
    for cell in (with_harq, plain):
        cell.add_ue(_ue("edge", 30_000))  # weak but alive
    w = with_harq.schedule_tti().get("edge", 0.0)
    p = plain.schedule_tti().get("edge", 0.0)
    # HARQ-adjusted goodput is below the raw MCS rate and below the
    # no-HARQ nominal (which ignores losses entirely in this model)
    assert 0 < w < p


def test_throughput_aggregation():
    cell = _cell()
    cell.add_ue(_ue("a", 400))
    results = [cell.schedule_tti() for _ in range(100)]
    rates = cell.throughput_bps(results)
    # 100 TTIs = 0.1 s; bits/TTI * 1000 = bps
    per_tti = sum(r.get("a", 0.0) for r in results) / 100
    assert rates["a"] == pytest.approx(per_tti * 1000)
    assert cell.throughput_bps([]) == {}


def test_uplink_tti_delivers_contiguous_blocks():
    cell = _cell()
    cell.add_ue(_ue("a", 400))
    cell.add_ue(_ue("b", 900))
    delivered = cell.schedule_uplink_tti()
    assert set(delivered) == {"a", "b"}
    assert all(bits > 0 for bits in delivered.values())


def test_uplink_weaker_than_downlink_at_range():
    """The asymmetry §3.2 designs around: the UE's 23 dBm PA vs the
    eNodeB's 43 dBm + antenna gain."""
    cell = _cell()
    cell.add_ue(_ue("edge", 15_000))
    down = cell.schedule_tti().get("edge", 0.0)
    up = cell.schedule_uplink_tti().get("edge", 0.0)
    assert up < down


def test_uplink_papr_credit_helps():
    cell_sc = _cell()
    cell_sc.add_ue(UeRadioContext(
        "u", Radio(Point(20_000, 100), tx_power_dbm=23,
                   ul_papr_advantage_db=3.0)))
    cell_ofdm = _cell()
    cell_ofdm.add_ue(UeRadioContext(
        "u", Radio(Point(20_000, 100), tx_power_dbm=23,
                   ul_papr_advantage_db=0.0)))
    sc = cell_sc.schedule_uplink_tti().get("u", 0.0)
    ofdm = cell_ofdm.schedule_uplink_tti().get("u", 0.0)
    assert sc > ofdm


def test_scheduler_state_cleared_on_remove():
    cell = _cell()
    cell.add_ue(_ue("a", 400))
    for _ in range(10):
        cell.schedule_tti()
    assert cell.scheduler.average_rate_bps("a") > 0
    cell.remove_ue("a")
    assert cell.scheduler.average_rate_bps("a") == 0.0
