"""IPv4 addressing and allocation pools.

dLTE gives every client a *publicly routable* address straight from the
AP's own allocation (§4.2: "clients are quickly assigned a new publicly
routable IP address as they change APs"). Each AP therefore owns an
:class:`AddressPool`; the centralized-LTE baseline instead allocates from
one pool at the P-GW. Built on the stdlib ``ipaddress`` module.
"""

from __future__ import annotations

import ipaddress
from typing import List, Optional, Set, Union

IPv4Address = ipaddress.IPv4Address


class PoolExhausted(Exception):
    """No free addresses remain in the pool."""


class AddressPool:
    """Allocates host addresses from an IPv4 prefix.

    Network and broadcast addresses of the prefix are never handed out.
    Released addresses are reused (lowest-first), modelling DHCP-style
    churn as clients roam between APs.
    """

    def __init__(self, prefix: Union[str, ipaddress.IPv4Network]) -> None:
        self.network = ipaddress.IPv4Network(prefix)
        if self.network.num_addresses < 4:
            raise ValueError(f"prefix {prefix} too small to allocate from")
        self._allocated: Set[IPv4Address] = set()
        self._released: List[IPv4Address] = []
        self._cursor = iter(self.network.hosts())

    @property
    def capacity(self) -> int:
        """Total allocatable host addresses."""
        return self.network.num_addresses - 2

    @property
    def in_use(self) -> int:
        """Currently allocated address count."""
        return len(self._allocated)

    def allocate(self) -> IPv4Address:
        """Hand out a free address; raises :class:`PoolExhausted` when full."""
        if self._released:
            self._released.sort()
            addr = self._released.pop(0)
            self._allocated.add(addr)
            return addr
        for addr in self._cursor:
            if addr not in self._allocated:
                self._allocated.add(addr)
                return addr
        raise PoolExhausted(f"pool {self.network} exhausted "
                            f"({self.capacity} addresses)")

    def release(self, addr: IPv4Address) -> None:
        """Return an address to the pool; rejects double-free and strangers."""
        if addr not in self._allocated:
            raise ValueError(f"{addr} was not allocated from {self.network}")
        self._allocated.remove(addr)
        self._released.append(addr)

    def contains(self, addr: Optional[IPv4Address]) -> bool:
        """True when ``addr`` falls inside this pool's prefix."""
        return addr is not None and addr in self.network

    def __repr__(self) -> str:
        return f"<AddressPool {self.network} {self.in_use}/{self.capacity} used>"
