"""Deterministic fault injection: named fault scenarios on a schedule.

The resilience claims of §4.3/§7 ("nobody goes dark", "redundancy … in
emergencies") are about what happens *when things break*: a backhaul
fiber is cut and spliced, an AP's power flaps, the one centralized EPC
falls over, the spectrum registry is unreachable. The
:class:`FaultInjector` turns those into first-class, schedulable events
on the existing :class:`~repro.simcore.simulator.Simulator` clock.

Every injection is *named* and *logged* (``injector.log``) and traced
(``sim.trace("fault", ...)``), and all randomness a fault needs (packet
loss draws) flows through the simulator's :class:`RngRegistry` — so a
whole fault campaign is reproducible from ``(seed, schedule)`` alone.

Fault kinds:

* :meth:`FaultInjector.link_down` — cut a :class:`~repro.net.links.Link`
  (optionally healing after a duration);
* :meth:`FaultInjector.link_flap` — periodic down/up cycles;
* :meth:`FaultInjector.link_loss` — probabilistic per-packet loss;
* :meth:`FaultInjector.channel_down` — sever a control-plane
  :class:`~repro.epc.agents.ControlChannel` (S1, X2);
* :meth:`FaultInjector.crash` — crash anything with a
  ``crash()``/``restart()`` lifecycle (a :class:`DLTEAccessPoint`, a
  :class:`LocalCoreStub`), optionally restarting it later;
* :meth:`FaultInjector.outage` — generic fail/restore pair (a
  centralized EPC site, any custom subsystem);
* :meth:`FaultInjector.registry_outage` — spectrum registry
  unavailability via the registry's own ``fail()``/``restore()``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.net.links import Link
from repro.simcore.simulator import Simulator


@dataclass(frozen=True)
class FaultRecord:
    """One executed fault action, for audit and assertions."""

    time_s: float
    name: str
    action: str

    def __str__(self) -> str:
        return f"[{self.time_s:10.3f}] {self.name}: {self.action}"


class FaultInjector:
    """Schedules named faults against simulation components.

    All methods take *absolute* simulated times (``at_s``), may be called
    before or during a run, and return immediately — the actions execute
    on the simulator clock. The injector never draws randomness itself;
    probabilistic loss is drawn inside :class:`Link` from a per-link
    named stream, keeping campaigns deterministic.
    """

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self.log: List[FaultRecord] = []
        self.faults_injected = 0
        self._names = set()
        # active injector-driven cuts per link: overlapping cut windows
        # must not heal a link that another cut still holds down
        self._link_cuts: dict = {}
        self._m_fired = sim.metrics.counter("faults.activations")

    # -- bookkeeping -------------------------------------------------------

    def _fire(self, name: str, action: str, fn: Callable, *args) -> None:
        self.faults_injected += 1
        self._m_fired.inc()
        self.log.append(FaultRecord(time_s=self.sim.now, name=name,
                                    action=action))
        self.sim.trace("fault", f"{name}: {action}")
        self.sim.telemetry.spans.event("fault.activation", fault=name,
                                       action=action)
        fn(*args)

    def _at(self, at_s: float, name: str, action: str,
            fn: Callable, *args) -> None:
        self.sim.at(at_s, self._fire, name, action, fn, *args)

    def _unique(self, name: Optional[str], default: str) -> str:
        base = name or default
        candidate, k = base, 1
        while candidate in self._names:
            k += 1
            candidate = f"{base}#{k}"
        self._names.add(candidate)
        return candidate

    # -- link faults -------------------------------------------------------
    #
    # Cuts are reference-counted per link: when two injected windows
    # overlap (a flap during a longer cut, two cuts on one fiber), the
    # link only comes back up when the *last* cut heals — an early heal
    # must not mask a fault that is still supposed to be active.

    def _cut(self, link: Link) -> None:
        count = self._link_cuts.get(id(link), 0)
        self._link_cuts[id(link)] = count + 1
        if count == 0:
            link.set_up(False)

    def _heal(self, link: Link) -> None:
        count = self._link_cuts.get(id(link), 0) - 1
        if count <= 0:
            self._link_cuts.pop(id(link), None)
            link.set_up(True)
        else:
            self._link_cuts[id(link)] = count

    def link_down(self, link: Link, at_s: float,
                  duration_s: Optional[float] = None,
                  name: Optional[str] = None) -> str:
        """Cut ``link`` at ``at_s``; heal after ``duration_s`` if given."""
        fault = self._unique(name, f"link-down:{link.name}")
        self._at(at_s, fault, "down", self._cut, link)
        if duration_s is not None:
            if duration_s <= 0:
                raise ValueError("duration must be positive")
            self._at(at_s + duration_s, fault, "up", self._heal, link)
        return fault

    def link_flap(self, link: Link, at_s: float, down_s: float, up_s: float,
                  cycles: int, name: Optional[str] = None) -> str:
        """Flap ``link``: ``cycles`` x (down ``down_s``, up ``up_s``)."""
        if down_s <= 0 or up_s <= 0:
            raise ValueError("flap phases must be positive")
        if cycles < 1:
            raise ValueError("need at least one flap cycle")
        fault = self._unique(name, f"link-flap:{link.name}")
        t = at_s
        for _ in range(cycles):
            self._at(t, fault, "down", self._cut, link)
            self._at(t + down_s, fault, "up", self._heal, link)
            t += down_s + up_s
        return fault

    def link_loss(self, link: Link, at_s: float, loss_rate: float,
                  duration_s: Optional[float] = None,
                  name: Optional[str] = None) -> str:
        """Impose per-packet loss on ``link``; clears after the duration."""
        if not 0.0 <= loss_rate <= 1.0:
            raise ValueError("loss rate must be in [0, 1]")
        fault = self._unique(name, f"link-loss:{link.name}")
        self._at(at_s, fault, f"loss={loss_rate:g}",
                 link.set_loss_rate, loss_rate)
        if duration_s is not None:
            if duration_s <= 0:
                raise ValueError("duration must be positive")
            self._at(at_s + duration_s, fault, "loss cleared",
                     link.set_loss_rate, 0.0)
        return fault

    # -- control-plane faults ----------------------------------------------

    def channel_down(self, channel, at_s: float,
                     duration_s: Optional[float] = None,
                     name: Optional[str] = None) -> str:
        """Sever a :class:`ControlChannel` (S1/X2) at ``at_s``."""
        fault = self._unique(name, f"channel-down:{channel.name}")
        self._at(at_s, fault, "down", channel.set_up, False)
        if duration_s is not None:
            if duration_s <= 0:
                raise ValueError("duration must be positive")
            self._at(at_s + duration_s, fault, "up", channel.set_up, True)
        return fault

    def crash(self, node, at_s: float,
              restart_after_s: Optional[float] = None,
              name: Optional[str] = None) -> str:
        """Crash a node with a ``crash()``/``restart()`` lifecycle.

        Works on anything exposing those two methods — an AP, a core
        stub, a whole-network adapter. Restart is scheduled relative to
        the crash time when ``restart_after_s`` is given.
        """
        label = getattr(node, "ap_id", None) or getattr(node, "name", None) \
            or type(node).__name__
        fault = self._unique(name, f"crash:{label}")
        self._at(at_s, fault, "crash", node.crash)
        if restart_after_s is not None:
            if restart_after_s <= 0:
                raise ValueError("restart delay must be positive")
            self._at(at_s + restart_after_s, fault, "restart", node.restart)
        return fault

    def outage(self, fail: Callable[[], None], restore: Callable[[], None],
               at_s: float, duration_s: float,
               name: Optional[str] = None) -> str:
        """Generic outage: ``fail()`` at ``at_s``, ``restore()`` after."""
        if duration_s <= 0:
            raise ValueError("duration must be positive")
        fault = self._unique(name, "outage")
        self._at(at_s, fault, "fail", fail)
        self._at(at_s + duration_s, fault, "restore", restore)
        return fault

    def registry_outage(self, registry, at_s: float, duration_s: float,
                        name: Optional[str] = None) -> str:
        """Take a spectrum registry offline for ``duration_s``."""
        return self.outage(registry.fail, registry.restore, at_s, duration_s,
                           name=name or f"registry-outage:"
                                        f"{type(registry).__name__}")

    # -- inspection --------------------------------------------------------

    def dump(self) -> str:
        """Human-readable log of every executed fault action."""
        return "\n".join(str(record) for record in self.log)

    def __repr__(self) -> str:
        return (f"<FaultInjector scheduled={len(self._names)} "
                f"fired={self.faults_injected}>")
