"""Command-line experiment runner: ``python -m repro [ids...]``.

Runs the named experiments (or all of them) and prints their tables —
the same rows the benchmarks assert on and EXPERIMENTS.md records.

Examples::

    python -m repro T1 E3 E12      # quick ones
    python -m repro --list
    python -m repro --all          # everything (minutes: E6 dominates)
    python -m repro --all --jobs 4 # same tables, fanned over 4 workers

Telemetry (see OBSERVABILITY.md)::

    python -m repro E16 --metrics-out e16.csv      # metrics snapshot
    python -m repro E16 --trace-out e16.jsonl      # traces + spans
    python -m repro E16 --profile                  # hot-path table
    python -m repro E16 --profile-out e16.folded   # flamegraph stacks
    python -m repro E7 --jobs 4 --profile          # + [E7 runner: ...]
                                                   # fork/IPC/imbalance line

With none of these flags, experiments run exactly as before —
telemetry recording is passive and results stay byte-identical. The
flight recorder is the always-on exception: every simulator rings its
recent events, and an invariant violation, supervisor kill, or
unhandled exception dumps a post-mortem JSON (``--postmortem-dir``,
``$REPRO_POSTMORTEM_DIR``, or the working directory).

Parallelism (``--jobs N``) operates at two levels, both deterministic:
sweep-heavy experiments (E6, E7) fan their independent cells over
workers and run in the parent process; everything else is fanned out
whole, one experiment per worker, with captured output reprinted in id
order. Tables are byte-identical to ``--jobs 1`` — only the wall-clock
lines differ.

Robustness (see ROBUSTNESS.md)::

    python -m repro --all --jobs 4 --retries 2        # survive crashes
    python -m repro --all --task-timeout 300          # kill hung workers
    python -m repro --all --jobs 4 --resume out/ckpt  # resumable sweep
    python -m repro E16 --exp-arg scenario=cascading-stub-crashes \
                        --exp-arg invariants=True     # chaos + invariants

``--retries``/``--task-timeout`` run the fan-out under the supervisor
(crashed or hung workers are killed and their tasks re-run from the same
derived seed, so the merged tables stay byte-identical); ``--resume``
journals finished experiments to ``<dir>/manifest.jsonl`` and a rerun
replays them byte-for-byte, executing only the unfinished ones.
"""

from __future__ import annotations

import argparse
import ast
import contextlib
import io
import os
import sys
import time
import traceback
from typing import List, Optional

from repro.experiments import ALL_EXPERIMENTS
from repro.mac.arena import set_batch_default
from repro.metrics.tables import ResultTable
from repro.runner import (
    SupervisorReport,
    SweepCheckpoint,
    set_jobs,
    supervised_map,
)
from repro.telemetry import flightrec
from repro.telemetry.hub import HUB
from repro.telemetry.exporters import (
    summary_table,
    write_events_jsonl,
    write_folded,
    write_metrics_csv,
    write_metrics_text,
)


def _print_result(result) -> None:
    if isinstance(result, ResultTable):
        print(result.render())
        print()
    elif isinstance(result, (tuple, list)):
        for item in result:
            _print_result(item)
    else:
        print(result)


def _suffixed(path: str, exp_id: str, multi: bool) -> str:
    """Per-experiment artifact name: ``out.csv`` -> ``out-E16.csv``."""
    if not multi:
        return path
    root, ext = os.path.splitext(path)
    return f"{root}-{exp_id}{ext}"


def _unwritable_reason(path: str) -> Optional[str]:
    """Why an artifact path cannot be written, or None if it can.

    Checked before any experiment runs (per-experiment suffixing keeps
    the directory, so validating the bare path covers all artifacts).
    """
    if os.path.isdir(path):
        return f"{path!r} is a directory"
    directory = os.path.dirname(path) or "."
    if not os.path.isdir(directory):
        return f"directory {directory!r} does not exist"
    if not os.access(directory, os.W_OK | os.X_OK):
        return f"directory {directory!r} is not writable"
    if os.path.exists(path) and not os.access(path, os.W_OK):
        return f"{path!r} exists and is not writable"
    return None


def _export_run(exp_id: str, run, metrics_out: Optional[str],
                trace_out: Optional[str], profile: bool,
                multi: bool, profile_out: Optional[str] = None) -> None:
    rows = run.metrics_rows()
    if metrics_out:
        path = _suffixed(metrics_out, exp_id, multi)
        if path.endswith(".csv"):
            n = write_metrics_csv(rows, path)
        else:
            n = write_metrics_text(rows, path)
        print(f"[{exp_id} metrics: {n} rows -> {path}]")
    if trace_out:
        path = _suffixed(trace_out, exp_id, multi)
        n = write_events_jsonl(path, tracers=run.tracers,
                               span_trackers=run.span_trackers,
                               lifecycle=run.lifecycle)
        print(f"[{exp_id} events: {n} lines -> {path}]")
    if profile_out:
        path = _suffixed(profile_out, exp_id, multi)
        n = write_folded(path, profiler=run.profiler,
                         span_trackers=run.span_trackers)
        print(f"[{exp_id} folded: {n} stacks -> {path}]")
    print(summary_table(rows, title=f"{exp_id} telemetry summary").render())
    print(f"[{exp_id} subsystems: {', '.join(run.subsystems())}]")
    if (profile or profile_out) and run.profiler is not None:
        prof = run.profiler
        print()
        print(f"[{exp_id} profile: {prof.events:,} events in "
              f"{prof.wall_s:.3f} s wall "
              f"({prof.events_per_sec:,.0f} events/s, "
              f"heap high-water {run.heap_high_water}, "
              f"agent peak queue {run.agent_peak_queue}, "
              f"shed {run.agents_shed})]")
        print(prof.hot_path_table().render())
        category_table = prof.category_table()
        if category_table.rows:
            print()
            print(category_table.render())
    if run.lifecycle is not None and run.lifecycle.maps:
        print(f"[{exp_id} runner: {run.lifecycle.summary_line()}]")
    if run.shard_stats:
        for entry in run.shard_stats:
            label = entry.get("label", "sharded")
            print(f"[{exp_id} shard {entry['shard']} ({label}): "
                  f"{entry['events']:,} events, "
                  f"heap hwm {entry['heap_hwm']}, "
                  f"{entry['windows']} windows, "
                  f"exec {entry['exec_s']:.3f} s, "
                  f"barrier wait {entry['barrier_wait_s']:.3f} s]")
    print()


def _dump_on_exception(exp_id: str, exc: BaseException) -> None:
    """Flight-recorder post-mortem for an unhandled experiment error.

    Skipped for Ctrl-C and for errors that already carry a dump (the
    invariant checker writes its own, richer one before raising).
    """
    if isinstance(exc, KeyboardInterrupt):
        return
    if getattr(exc, "postmortem_path", None):
        return
    path = flightrec.write_postmortem(
        "experiment-exception",
        detail="".join(traceback.format_exception_only(exc)).strip(),
        extra={"experiment": exp_id})
    if path:
        try:
            exc.postmortem_path = path
        except Exception:
            pass


def run_experiment(exp_id: str, metrics_out: Optional[str] = None,
                   trace_out: Optional[str] = None, profile: bool = False,
                   multi: bool = False,
                   exp_args: Optional[dict] = None,
                   profile_out: Optional[str] = None) -> None:
    """Run one experiment module's ``run()`` and print its tables.

    When any telemetry output is requested, the run is bracketed with
    :meth:`TelemetryHub.start_run` / ``finish_run`` so every simulator
    the experiment builds is collected, then artifacts are written.
    ``exp_args`` are passed through to the module's ``run()`` (the CLI's
    ``--exp-arg KEY=VAL``). An unhandled exception writes a
    flight-recorder post-mortem before propagating.
    """
    module = ALL_EXPERIMENTS[exp_id]
    kwargs = exp_args or {}
    collect = bool(metrics_out or trace_out or profile or profile_out)
    started = time.time()
    print(f"=== {exp_id}: {module.__doc__.strip().splitlines()[0]}")
    print()
    if collect:
        HUB.start_run(profile=profile or bool(profile_out),
                      trace=bool(trace_out))
        try:
            result = module.run(**kwargs)
        except BaseException as exc:
            HUB.abort_run()
            _dump_on_exception(exp_id, exc)
            raise
        run = HUB.finish_run()
    else:
        try:
            result = module.run(**kwargs)
        except BaseException as exc:
            _dump_on_exception(exp_id, exc)
            raise
    _print_result(result)
    if collect:
        _export_run(exp_id, run, metrics_out, trace_out, profile, multi,
                    profile_out=profile_out)
    print(f"[{exp_id} done in {time.time() - started:.1f} s]")
    print()


#: Experiments whose run() fans its own sweep cells over the worker
#: pool; they run in the parent so the whole pool serves their cells.
CELL_PARALLEL_IDS = ("E6", "E7", "E17", "E18", "E19")

#: Rough serial seconds per experiment (measured on the reference box);
#: only the ordering matters — longest-first submission of the fan-out.
_COST_HINTS = {"E8": 7.0, "E9": 2.5, "E5": 2.0, "E18": 2.0, "F1": 0.6,
               "E16": 0.1}


def _run_captured(task) -> str:
    """Worker body for experiment-level fan-out: run one experiment with
    stdout captured, so the parent can reprint outputs in id order."""
    exp_id, metrics_out, trace_out, profile, multi, profile_out, \
        exp_args = task
    buf = io.StringIO()
    with contextlib.redirect_stdout(buf):
        run_experiment(exp_id, metrics_out=metrics_out,
                       trace_out=trace_out, profile=profile, multi=multi,
                       profile_out=profile_out, exp_args=exp_args)
    return buf.getvalue()


def _run_all_parallel(ids: List[str], jobs: int,
                      metrics_out: Optional[str], trace_out: Optional[str],
                      profile: bool,
                      task_timeout_s: Optional[float] = None,
                      retries: int = 0,
                      checkpoint: Optional[SweepCheckpoint] = None,
                      profile_out: Optional[str] = None,
                      exp_args: Optional[dict] = None) -> None:
    """Two-phase supervised schedule over ``ids`` (see module docstring).

    Cell-parallel experiments run in the parent first, their sweeps
    spread over the pool; the rest are then fanned out whole under the
    supervisor (deadlines, heartbeats, bounded retry — see
    ROBUSTNESS.md). All output is buffered and reprinted in the original
    id order, so apart from timing lines the stream matches a serial
    run. With ``checkpoint``, finished experiments are journaled and a
    rerun replays them byte-for-byte.
    """
    multi = len(ids) > 1
    outputs = {}
    report = SupervisorReport()
    for exp_id in [i for i in ids if i in CELL_PARALLEL_IDS]:
        key = f"exp:{exp_id}"
        if checkpoint is not None and checkpoint.done(key):
            outputs[exp_id] = checkpoint.get(key)
            report.replayed_from_checkpoint += 1
            continue
        buf = io.StringIO()
        with contextlib.redirect_stdout(buf):
            run_experiment(exp_id, metrics_out=metrics_out,
                           trace_out=trace_out, profile=profile, multi=multi,
                           profile_out=profile_out, exp_args=exp_args)
        outputs[exp_id] = buf.getvalue()
        if checkpoint is not None:
            checkpoint.record(key, outputs[exp_id])
    rest = [i for i in ids if i not in CELL_PARALLEL_IDS]
    tasks = [(i, metrics_out, trace_out, profile, multi, profile_out,
              exp_args) for i in rest]
    texts = supervised_map(_run_captured, tasks, jobs=jobs,
                           costs=[_COST_HINTS.get(i, 1.0) for i in rest],
                           labels=[f"exp:{i}" for i in rest],
                           task_timeout_s=task_timeout_s, retries=retries,
                           checkpoint=checkpoint, report=report)
    outputs.update(zip(rest, texts))
    for exp_id in ids:
        sys.stdout.write(outputs[exp_id])
    # diagnostics go to stderr so stdout stays byte-identical to a
    # clean serial run regardless of crashes, retries, or resume
    if report.failures:
        print(f"[supervisor: {report.crashes} crash(es), "
              f"{report.hangs} hang(s), {report.exceptions} exception(s); "
              f"{report.retries} task retry(ies)]", file=sys.stderr)
    if report.replayed_from_checkpoint:
        print(f"[resume: {report.replayed_from_checkpoint} experiment(s) "
              f"replayed from {checkpoint.path}]", file=sys.stderr)


def main(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="dLTE reproduction: run paper experiments")
    parser.add_argument("ids", nargs="*",
                        help=f"experiment ids: {', '.join(ALL_EXPERIMENTS)}")
    parser.add_argument("--all", action="store_true",
                        help="run every experiment")
    parser.add_argument("--list", action="store_true",
                        help="list experiments and exit")
    parser.add_argument("--metrics-out", metavar="PATH",
                        help="write a metrics snapshot per experiment "
                             "(.csv for CSV, anything else for "
                             "Prometheus-style text)")
    parser.add_argument("--trace-out", metavar="PATH",
                        help="write trace events and spans as JSONL "
                             "per experiment")
    parser.add_argument("--profile", action="store_true",
                        help="time every event callback; print events/sec "
                             "and the top-10 hot paths")
    parser.add_argument("--profile-out", metavar="PATH",
                        help="write the profile as collapsed stacks "
                             "(flamegraph.pl/speedscope format) per "
                             "experiment; implies profiling")
    parser.add_argument("--postmortem-dir", metavar="DIR",
                        help="directory for flight-recorder post-mortem "
                             "dumps (default: $REPRO_POSTMORTEM_DIR or "
                             "the current directory; created if missing)")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="fan experiments and sweep cells over N "
                             "worker processes (default 1 = serial; "
                             "tables are byte-identical either way)")
    parser.add_argument("--task-timeout", type=float, default=None,
                        metavar="SECS",
                        help="per-experiment wall-clock deadline; a task "
                             "over it is declared hung, its worker killed, "
                             "and the task retried (see --retries)")
    parser.add_argument("--retries", type=int, default=0, metavar="N",
                        help="re-run a crashed or hung experiment up to N "
                             "times (tasks are self-seeding, so retried "
                             "output is byte-identical)")
    parser.add_argument("--resume", metavar="DIR",
                        help="journal finished experiments to "
                             "DIR/manifest.jsonl and, on rerun, replay "
                             "them byte-for-byte instead of re-executing")
    parser.add_argument("--scalar-tti", action="store_true",
                        help="run cells on the scalar reference TTI path "
                             "instead of the vectorized batch engine "
                             "(tables are byte-identical either way; "
                             "equivalent to REPRO_BATCH_TTI=0)")
    parser.add_argument("--exp-arg", action="append", default=[],
                        metavar="KEY=VAL", dest="exp_args",
                        help="pass KEY=VAL through to the experiment's "
                             "run() (single experiment only); VAL is "
                             "parsed as a Python literal when possible, "
                             "e.g. --exp-arg scenario=flapping-backhaul "
                             "--exp-arg invariants=True")
    args = parser.parse_args(argv)
    if args.jobs < 1:
        parser.error(f"--jobs must be >= 1, got {args.jobs}")
    if args.retries < 0:
        parser.error(f"--retries must be >= 0, got {args.retries}")
    if args.task_timeout is not None and args.task_timeout <= 0:
        parser.error(f"--task-timeout must be positive, "
                     f"got {args.task_timeout}")
    if args.resume and (args.metrics_out or args.trace_out or args.profile
                        or args.profile_out):
        parser.error("--resume cannot be combined with telemetry flags "
                     "(--metrics-out/--trace-out/--profile/--profile-out): "
                     "replayed experiments would not re-export their "
                     "telemetry")
    # fail fast on unwritable artifact paths: a typo'd directory must
    # error out now, not as a traceback after minutes of simulation
    for flag, value in (("--metrics-out", args.metrics_out),
                        ("--trace-out", args.trace_out),
                        ("--profile-out", args.profile_out)):
        if value:
            problem = _unwritable_reason(value)
            if problem:
                parser.error(f"{flag}: {problem}")
    if args.postmortem_dir:
        try:
            os.makedirs(args.postmortem_dir, exist_ok=True)
        except OSError as exc:
            parser.error(f"--postmortem-dir: cannot create "
                         f"{args.postmortem_dir!r}: {exc}")
        flightrec.set_dump_dir(args.postmortem_dir)
        # spawn-method workers don't inherit module state; the env var
        # reaches them either way
        os.environ["REPRO_POSTMORTEM_DIR"] = args.postmortem_dir
    exp_args = {}
    for pair in args.exp_args:
        key, sep, value = pair.partition("=")
        if not sep or not key:
            parser.error(f"--exp-arg expects KEY=VAL, got {pair!r}")
        try:
            exp_args[key] = ast.literal_eval(value)
        except (ValueError, SyntaxError):
            exp_args[key] = value
    if args.scalar_tti:
        set_batch_default(False)
        # spawn-method workers rebuild module state from the environment
        os.environ["REPRO_BATCH_TTI"] = "0"
    set_jobs(args.jobs)

    if args.list:
        for exp_id, module in ALL_EXPERIMENTS.items():
            headline = module.__doc__.strip().splitlines()[0]
            print(f"{exp_id:>4}  {headline}")
        return 0

    ids = list(ALL_EXPERIMENTS) if args.all else args.ids
    if not ids:
        parser.print_help()
        return 2
    unknown = [i for i in ids if i not in ALL_EXPERIMENTS]
    if unknown:
        print(f"unknown experiment ids: {unknown}; "
              f"choices: {list(ALL_EXPERIMENTS)}", file=sys.stderr)
        return 2
    if exp_args and len(ids) != 1:
        parser.error("--exp-arg needs exactly one experiment id")

    supervise = (args.resume is not None or args.retries > 0
                 or args.task_timeout is not None)
    if exp_args and args.resume:
        parser.error("--exp-arg cannot be combined with --resume: the "
                     "checkpoint journal is keyed by experiment id only")
    if (args.jobs > 1 and len(ids) > 1) or supervise:
        checkpoint = (SweepCheckpoint(args.resume, run_id="repro-cli")
                      if args.resume else None)
        try:
            _run_all_parallel(ids, args.jobs, args.metrics_out,
                              args.trace_out, args.profile,
                              task_timeout_s=args.task_timeout,
                              retries=args.retries, checkpoint=checkpoint,
                              profile_out=args.profile_out,
                              exp_args=exp_args or None)
        finally:
            if checkpoint is not None:
                checkpoint.close()
        return 0
    for exp_id in ids:
        run_experiment(exp_id, metrics_out=args.metrics_out,
                       trace_out=args.trace_out, profile=args.profile,
                       multi=len(ids) > 1, exp_args=exp_args or None,
                       profile_out=args.profile_out)
    return 0


if __name__ == "__main__":
    sys.exit(main())
