#!/usr/bin/env python
"""Diff two benchmark reports cell by cell.

Reads two ``BENCH_*.json`` files (see ``bench_runner.py``) and prints a
per-cell table of calibration-normalized times with absolute and
relative deltas, so "what actually got faster (or slower), and by how
much" is one command instead of eyeballing JSON::

    python benchmarks/compare.py benchmarks/BENCH_old.json \
        benchmarks/BENCH_new.json

Normalized times (wall / calibration) are the comparable quantity
across machines; raw wall seconds are shown for context only. Cells
present in just one report are listed but not scored. Exits non-zero
only on malformed input — this is a reporting tool, the pass/fail gate
is ``bench_runner.py --check``.

When both reports carry per-cell ``profile`` tables (bench_runner's
profiled pass), any cell whose normalized ratio moved past
``--threshold`` gets an *attribution* table: per-callback-site wall-ms
deltas, so a regression names the code that slowed down instead of just
the cell. ``--attribution-out`` writes the same tables as JSON for CI
artifacts. A ``parallel`` section is compared too, but the speedup is
not judged when the report records fewer CPUs than workers.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Optional


def load_report(path: str) -> Dict[str, object]:
    """Load one BENCH_*.json, validating the fields compare needs."""
    with open(path) as fh:
        report = json.load(fh)
    if "results" not in report or not isinstance(report["results"], dict):
        raise ValueError(f"{path}: not a bench report (no 'results' map)")
    return report


def compare_rows(old: Dict[str, object],
                 new: Dict[str, object]) -> List[Dict[str, object]]:
    """One row per cell in either report, ordered old-report-first.

    Each row has ``name``, ``old``/``new`` (normalized, None when
    absent), ``old_wall``/``new_wall``, ``ratio`` (new/old) and
    ``speedup`` (old/new) when both sides are present, plus optional
    ``old_hwm``/``new_hwm`` heap high-water marks.
    """
    old_results: Dict[str, dict] = old["results"]  # type: ignore[assignment]
    new_results: Dict[str, dict] = new["results"]  # type: ignore[assignment]
    names = list(old_results) + [n for n in new_results if n not in old_results]
    rows: List[Dict[str, object]] = []
    for name in names:
        a = old_results.get(name)
        b = new_results.get(name)
        row: Dict[str, object] = {
            "name": name,
            "old": a["normalized"] if a else None,
            "new": b["normalized"] if b else None,
            "old_wall": a["wall_s"] if a else None,
            "new_wall": b["wall_s"] if b else None,
            "old_hwm": a.get("heap_hwm") if a else None,
            "new_hwm": b.get("heap_hwm") if b else None,
            "ratio": None,
            "speedup": None,
        }
        if a and b and a["normalized"] > 0:
            row["ratio"] = b["normalized"] / a["normalized"]
            if b["normalized"] > 0:
                row["speedup"] = a["normalized"] / b["normalized"]
        rows.append(row)
    return rows


def attribution_rows(old_cell: dict, new_cell: dict,
                     top: int = 10) -> List[Dict[str, object]]:
    """Per-callback-site deltas explaining one cell's normalized move.

    Takes the two sides' ``profile`` tables (written by bench_runner's
    profiled pass: ``{site, calls, wall_ms, frac}`` rows) and joins them
    on site — the union, so code that appeared or vanished still shows
    up, at 0 ms on the side that lacks it. Rows are sorted by absolute
    wall-ms delta and truncated to ``top``; empty when either side was
    benchmarked with ``--skip-profile``.
    """
    old_prof = {r["site"]: r for r in old_cell.get("profile") or []}
    new_prof = {r["site"]: r for r in new_cell.get("profile") or []}
    if not old_prof or not new_prof:
        return []
    rows: List[Dict[str, object]] = []
    for site in set(old_prof) | set(new_prof):
        a = old_prof.get(site)
        b = new_prof.get(site)
        old_ms = a["wall_ms"] if a else 0.0
        new_ms = b["wall_ms"] if b else 0.0
        rows.append({
            "site": site,
            "old_ms": old_ms,
            "new_ms": new_ms,
            "delta_ms": round(new_ms - old_ms, 3),
            "old_calls": a["calls"] if a else 0,
            "new_calls": b["calls"] if b else 0,
        })
    rows.sort(key=lambda r: (-abs(r["delta_ms"]), r["site"]))
    return rows[:top]


def attribute(old: Dict[str, object], new: Dict[str, object],
              rows: List[Dict[str, object]], threshold: float,
              top: int = 10) -> Dict[str, List[Dict[str, object]]]:
    """Attribution tables for every cell that moved past ``threshold``.

    A cell qualifies when its normalized ratio left the
    ``[1 - threshold, 1 + threshold]`` band in either direction —
    regressions and wins both deserve an explanation.
    """
    old_results: Dict[str, dict] = old["results"]  # type: ignore[assignment]
    new_results: Dict[str, dict] = new["results"]  # type: ignore[assignment]
    out: Dict[str, List[Dict[str, object]]] = {}
    for row in rows:
        ratio = row["ratio"]
        if ratio is None or abs(ratio - 1.0) <= threshold:
            continue
        name = str(row["name"])
        sites = attribution_rows(old_results[name], new_results[name], top)
        if sites:
            out[name] = sites
    return out


def render_attribution(
        attributions: Dict[str, List[Dict[str, object]]]) -> str:
    """Per-site delta tables for the cells that moved."""
    if not attributions:
        return ""
    lines = ["", "attribution (per callback-site wall-ms deltas for cells "
             "that moved):"]
    for name, sites in attributions.items():
        lines.append(f"  {name}:")
        lines.append(f"    {'site':<52} {'old ms':>9} {'new ms':>9} "
                     f"{'delta':>9}  calls old->new")
        for site in sites:
            lines.append(
                f"    {str(site['site'])[:52]:<52} "
                f"{site['old_ms']:9.2f} {site['new_ms']:9.2f} "
                f"{site['delta_ms']:+9.2f}  "
                f"{site['old_calls']}->{site['new_calls']}")
    return "\n".join(lines)


def render_parallel(old: Dict[str, object],
                    new: Dict[str, object]) -> str:
    """Speedup comparison — honest about hardware.

    A box timesharing more workers than cores cannot show a real
    speedup, so when the new report records ``cpus < jobs`` the number
    is printed but explicitly not judged.
    """
    p_new = new.get("parallel")
    if not isinstance(p_new, dict):
        return ""
    p_old = old.get("parallel") if isinstance(old.get("parallel"), dict) \
        else None
    jobs = p_new.get("jobs")
    cpus = p_new.get("cpus", new.get("cpus"))
    lines = ["", f"parallel suite (--jobs {jobs}):"]
    old_speedup = p_old.get("speedup") if p_old else None
    lines.append(f"  speedup {old_speedup if old_speedup is not None else '-'}"
                 f" -> {p_new.get('speedup')}  "
                 f"(serial {p_new.get('serial_s')} s, parallel "
                 f"{p_new.get('parallel_s')} s)")
    if isinstance(cpus, int) and isinstance(jobs, int) and cpus < jobs:
        lines.append(f"  speedup not comparable: {cpus} cpus for "
                     f"{jobs} workers (timesharing, not parallelism)")
    return "\n".join(lines)


def render_sharding(old: Dict[str, object],
                    new: Dict[str, object]) -> str:
    """Shard-count scaling curve — held to the same hardware honesty
    bar as the parallel section: a box with fewer cores than shards is
    timesharing, and its speedup is printed but not judged. A broken
    determinism bar (``identical_output`` false) is always called out —
    that is a correctness failure wearing a benchmark's clothes."""
    s_new = new.get("sharding")
    if not isinstance(s_new, dict):
        return ""
    s_old = old.get("sharding") if isinstance(old.get("sharding"), dict) \
        else None
    cpus = s_new.get("cpus", new.get("cpus"))
    points = s_new.get("points") or []
    old_points = {p.get("shards"): p
                  for p in ((s_old or {}).get("points") or [])}
    lines = ["", f"sharding scaling ({s_new.get('experiment')}):"]
    for point in points:
        ref = old_points.get(point.get("shards"))
        old_speedup = ref.get("speedup") if ref else None
        lines.append(
            f"  {point.get('shards')} shards ({point.get('mode')}): "
            f"wall {point.get('wall_s')} s, speedup "
            f"{old_speedup if old_speedup is not None else '-'} -> "
            f"{point.get('speedup')}")
    max_shards = max((p.get("shards", 1) for p in points), default=1)
    if isinstance(cpus, int) and cpus < max_shards:
        lines.append(f"  speedup not comparable: {cpus} cpus for "
                     f"{max_shards} shards (timesharing, not parallelism)")
    if not s_new.get("identical_output", True):
        lines.append("  DETERMINISM FAILURE: output differs across shard "
                     "counts")
    return "\n".join(lines)


def _fmt(value: Optional[float], width: int, places: int = 2) -> str:
    if value is None:
        return "-".rjust(width)
    return f"{value:{width}.{places}f}"


def _fmt_hwm(value: Optional[int]) -> str:
    return "-" if value is None else str(value)


def render(rows: List[Dict[str, object]], old_path: str,
           new_path: str) -> str:
    """Human-readable diff table."""
    lines = [
        f"bench diff: {old_path} -> {new_path}",
        f"  {'cell':<20} {'old':>8} {'new':>8} {'ratio':>7} "
        f"{'speedup':>8}  {'wall old->new':>16}  heap hwm",
    ]
    for row in rows:
        ratio = row["ratio"]
        note = ""
        if row["old"] is None or row["new"] is None:
            note = "  (only in one report)"
        elif ratio is None:
            note = "  (too fast to compare)"
        wall = (f"{_fmt(row['old_wall'], 7, 3)}->"
                f"{_fmt(row['new_wall'], 7, 3)}")
        hwm = f"{_fmt_hwm(row['old_hwm'])}->{_fmt_hwm(row['new_hwm'])}"
        lines.append(
            f"  {row['name']:<20} {_fmt(row['old'], 8)} {_fmt(row['new'], 8)} "
            f"{_fmt(ratio, 7)} {_fmt(row['speedup'], 8)}  {wall:>16}  "
            f"{hwm}{note}")
    scored = [r for r in rows if r["ratio"] is not None]
    if scored:
        faster = sum(1 for r in scored if r["ratio"] < 0.99)
        slower = sum(1 for r in scored if r["ratio"] > 1.01)
        lines.append(f"  {len(scored)} comparable cells: {faster} faster, "
                     f"{slower} slower, {len(scored) - faster - slower} "
                     f"within 1%")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("old", help="baseline BENCH_*.json")
    parser.add_argument("new", help="candidate BENCH_*.json")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="normalized-ratio band beyond which a cell "
                             "gets a per-site attribution table "
                             "(default 0.25)")
    parser.add_argument("--top", type=int, default=10,
                        help="sites per attribution table (default 10)")
    parser.add_argument("--attribution-out", metavar="PATH",
                        help="also write the attribution tables as JSON "
                             "(for CI artifacts)")
    args = parser.parse_args(argv)
    try:
        old = load_report(args.old)
        new = load_report(args.new)
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        print(f"compare: {exc}", file=sys.stderr)
        return 2
    rows = compare_rows(old, new)
    print(render(rows, args.old, args.new))
    attributions = attribute(old, new, rows, args.threshold, args.top)
    text = render_attribution(attributions)
    if text:
        print(text)
    parallel = render_parallel(old, new)
    if parallel:
        print(parallel)
    sharding = render_sharding(old, new)
    if sharding:
        print(sharding)
    if args.attribution_out:
        with open(args.attribution_out, "w") as fh:
            json.dump({"old": args.old, "new": args.new,
                       "threshold": args.threshold,
                       "cells": attributions}, fh, indent=2, sort_keys=True)
            fh.write("\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
