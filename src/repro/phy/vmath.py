"""Bit-exact element maps for the vectorized PHY.

The batch TTI engine (``repro.mac.arena``) re-expresses the per-cell
radio refresh as array pipelines, but its contract is *byte-identical*
experiment tables against the scalar reference path. IEEE-754 add,
subtract, multiply and divide are exactly specified, so numpy and
plain Python produce bit-identical results for those — but the
transcendental kernels are not: numpy's SIMD ``np.log10`` / ``np.exp``
/ ``np.power`` round differently from libm (``math.log10`` etc.) on a
few percent of inputs (measured ~2-5% at 1 ulp on the reference box),
and ``np.hypot`` disagrees with ``math.hypot`` similarly.

A 1-ulp SINR difference crosses no CQI threshold, but it *does* change
the HARQ goodput factor's last bits and therefore the delivered-bits
tables. So the exact pipelines route their few transcendental choke
points through libm element-maps (one tight Python loop over a
contiguous float64 array) while numpy does all the exactly-specified
arithmetic around them. Refreshes only run when a UE moves, attaches,
or the interference environment changes — steady-state TTIs never
enter these maps — so the libm loops are off the per-TTI hot path by
construction.

``np.errstate`` is irrelevant here: inputs are pre-clamped by the
callers exactly as the scalar reference clamps them.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

__all__ = ["log10_exact", "exp_exact", "db_to_linear_exact", "hypot_exact"]


def _as_f64(values: Sequence[float]) -> np.ndarray:
    return np.ascontiguousarray(values, dtype=np.float64)


def log10_exact(values: Sequence[float]) -> np.ndarray:
    """Elementwise ``math.log10`` — bit-identical to the scalar path."""
    arr = _as_f64(values)
    f = math.log10
    return np.fromiter((f(v) for v in arr.tolist()), dtype=np.float64,
                       count=arr.size)


def exp_exact(values: Sequence[float]) -> np.ndarray:
    """Elementwise ``math.exp`` — bit-identical to the scalar path."""
    arr = _as_f64(values)
    f = math.exp
    return np.fromiter((f(v) for v in arr.tolist()), dtype=np.float64,
                       count=arr.size)


def db_to_linear_exact(db: Sequence[float]) -> np.ndarray:
    """Elementwise ``10.0 ** (db / 10.0)``, matching
    :func:`repro.phy.units.db_to_linear` bit for bit (CPython's float
    power is libm ``pow``; numpy's is not)."""
    arr = _as_f64(db) / 10.0
    return np.fromiter((10.0 ** v for v in arr.tolist()), dtype=np.float64,
                       count=arr.size)


def hypot_exact(dx: Sequence[float], dy: Sequence[float]) -> np.ndarray:
    """Elementwise ``math.hypot`` — matches ``Point.distance_to``."""
    ax = _as_f64(dx)
    ay = _as_f64(dy)
    f = math.hypot
    return np.fromiter((f(x, y) for x, y in zip(ax.tolist(), ay.tolist())),
                       dtype=np.float64, count=ax.size)
