"""Parallel runs must be byte-identical to serial runs.

The whole contract of ``--jobs N`` (see repro.runner) is that fanning
experiments and sweep cells over worker processes changes wall-clock
only: every rendered ResultTable — and, with telemetry on, the metrics
rows — must match the serial run byte for byte.

Experiments run here with small sweep parameters (the smoke-test sizes)
so the suite stays fast; the cells still cross the real multiprocessing
pool.
"""

import contextlib
import io

import pytest

from repro.experiments import ALL_EXPERIMENTS
from repro.metrics.tables import ResultTable
from repro.runner import get_jobs, set_jobs
from repro.telemetry.hub import HUB

#: (experiment id, kwargs) — small-but-real workload per experiment.
CASES = [
    ("T1", {}),
    ("F1", {}),
    ("E3", {"distances_m": [500, 5000]}),
    ("E4", {"sinrs_db": [-5, 5]}),
    ("E5", {"n_aps": 2, "ue_per_ap": 2, "seed": 1}),
    ("E6", {"dwells_s": [1.0]}),
    ("E7", {"ap_counts": [1, 2], "ue_per_ap": 2}),
    ("E8", {"ap_counts": [3]}),
    ("E9", {"peer_counts": [2], "duration_s": 5.0}),
    ("E10", {"n_aps": 5}),
    ("E11", {"n_aps": 3}),
    ("E12", {}),
    ("E13", {"enb_counts": [1, 2]}),
    ("E14", {"distances_m": [500, 8000]}),
    ("E15", {}),
    ("E16", {"n_ues": 4, "fail_at_s": 3.0, "outage_s": 6.0,
             "horizon_s": 15.0}),
    ("E17", {"intensities": (1, 4), "n_aps": 2, "ue_per_ap": 3,
             "horizon_s": 12.0}),
    ("E18", {"loads": (0.5, 5.0), "n_aps": 1, "ue_per_ap": 3,
             "settle_s": 4.0, "warmup_s": 1.0, "measure_s": 8.0}),
]


def _render(result) -> str:
    if isinstance(result, ResultTable):
        return result.render() + "\n"
    if isinstance(result, (tuple, list)):
        return "".join(_render(item) for item in result)
    return repr(result) + "\n"


def _run_at(exp_id, kwargs, jobs) -> str:
    old = get_jobs()
    set_jobs(jobs)
    try:
        return _render(ALL_EXPERIMENTS[exp_id].run(**kwargs))
    finally:
        set_jobs(old)


@pytest.mark.parametrize("exp_id,kwargs", CASES,
                         ids=[c[0] for c in CASES])
def test_tables_byte_identical_at_jobs_4(exp_id, kwargs):
    assert _run_at(exp_id, kwargs, 4) == _run_at(exp_id, kwargs, 1)


def _run_with_telemetry(exp_id, kwargs, jobs):
    """Tables + metrics rows with a profiling/tracing hub run active."""
    old = get_jobs()
    set_jobs(jobs)
    HUB.start_run(profile=True, trace=True)
    try:
        result = ALL_EXPERIMENTS[exp_id].run(**kwargs)
    except BaseException:
        HUB.abort_run()
        raise
    finally:
        set_jobs(old)
    run = HUB.finish_run()
    return _render(result), run.metrics_rows()


@pytest.mark.parametrize("exp_id,kwargs,fans_out", [
    ("E3", {"distances_m": [500, 5000]}, False),
    ("E6", {"dwells_s": [1.0]}, True),
    ("E7", {"ap_counts": [1, 2], "ue_per_ap": 2}, True),
], ids=["E3", "E6", "E7"])
def test_tables_byte_identical_with_telemetry_on(exp_id, kwargs, fans_out):
    tables_p, rows_p = _run_with_telemetry(exp_id, kwargs, 4)
    tables_s, rows_s = _run_with_telemetry(exp_id, kwargs, 1)
    assert tables_p == tables_s
    # worker telemetry shipped home and absorbed in task order: the
    # merged metrics match the serial run row for row. The one family
    # allowed to differ is the runner's own wall-clock lifecycle
    # ("sim" == "runner") — it describes the parallel machinery itself,
    # so it only exists when there is one (E3 never calls parallel_map,
    # so even at --jobs 4 it has none).
    sim_rows = [r for r in rows_p if r["sim"] != "runner"]
    assert sim_rows == [r for r in rows_s if r["sim"] != "runner"]
    assert any(r["sim"] == "runner" for r in rows_p) == fans_out
    assert not any(r["sim"] == "runner" for r in rows_s)


def test_trace_out_byte_identical_modulo_runner_lines(tmp_path):
    """``--trace-out`` composes with ``--jobs``: the merged JSONL equals
    the serial stream line for line, except for the runner-lifecycle
    records (``"type": "runner"``) that only a parallel run emits."""
    import json

    from repro.__main__ import main

    def run(jobs):
        path = tmp_path / f"trace-{jobs}.jsonl"
        argv = ["E7", "--trace-out", str(path),
                "--exp-arg", "ap_counts=[1, 2]", "--exp-arg", "ue_per_ap=2"]
        if jobs > 1:
            argv += ["--jobs", str(jobs)]
        buf = io.StringIO()
        with contextlib.redirect_stdout(buf):
            assert main(argv) == 0
        return path.read_text().splitlines()

    try:
        parallel = run(4)
        serial = run(1)
    finally:
        set_jobs(1)
    keep = [ln for ln in parallel
            if json.loads(ln).get("type") != "runner"]
    assert keep == serial
    assert any(json.loads(ln).get("type") == "runner" for ln in parallel)


def test_cli_jobs_flag_output_identical():
    """End-to-end: ``python -m repro <fast ids> --jobs 4`` prints the
    same stream as serial, apart from the wall-clock lines."""
    from repro.__main__ import main

    def capture(argv):
        buf = io.StringIO()
        with contextlib.redirect_stdout(buf):
            assert main(argv) == 0
        return [line for line in buf.getvalue().splitlines()
                if "done in" not in line]

    ids = ["T1", "E4", "E12", "E13"]
    try:
        assert capture(ids + ["--jobs", "4"]) == capture(ids)
    finally:
        set_jobs(1)


def test_cli_rejects_bad_jobs():
    from repro.__main__ import main

    with pytest.raises(SystemExit):
        main(["T1", "--jobs", "0"])
    set_jobs(1)
