"""Tests for the telemetry subsystem (repro.telemetry).

Covers the four parts — metrics registry, causal spans, run profiler,
exporters — plus the hub that collects them across an experiment run,
and the determinism guarantee the whole design leans on: recording is
passive, so instrumented runs are bit-identical to uninstrumented ones.
"""

import json
import math

import numpy as np
import pytest

from repro.core import DLTENetwork
from repro.simcore import Simulator
from repro.telemetry import (
    HUB,
    Counter,
    Histogram,
    MetricsRegistry,
    P2Quantile,
    RunProfiler,
    SpanTracker,
)
from repro.telemetry.exporters import (
    summary_table,
    tagged_rows,
    write_events_jsonl,
    write_metrics_csv,
    write_metrics_text,
)
from repro.workloads import RuralTown


@pytest.fixture(autouse=True)
def _no_leaked_hub_run():
    """Every test must leave the process-wide hub inactive."""
    yield
    if HUB.active:
        HUB.abort_run()
        pytest.fail("test leaked an active telemetry run")


# -- registry ---------------------------------------------------------------


class TestRegistry:
    def test_counter_get_or_create(self):
        registry = MetricsRegistry()
        c1 = registry.counter("net.link.dropped", link="a")
        c2 = registry.counter("net.link.dropped", link="a")
        assert c1 is c2
        c1.inc()
        c1.inc(3)
        assert registry.value("net.link.dropped", link="a") == 4.0

    def test_labels_distinguish_instruments(self):
        registry = MetricsRegistry()
        registry.counter("x", k="1").inc()
        registry.counter("x", k="2").inc(2)
        assert registry.value("x", k="1") == 1.0
        assert registry.value("x", k="2") == 2.0
        assert registry.total("x") == 3.0

    def test_counter_cannot_decrease(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("c").inc(-1)

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("name")
        with pytest.raises(TypeError):
            registry.gauge("name")

    def test_gauge_tracks_extremes(self):
        gauge = MetricsRegistry().gauge("q")
        for v in (3, 1, 7, 2):
            gauge.set(v)
        assert gauge.value == 2 and gauge.min == 1 and gauge.max == 7
        gauge.add(-2)
        assert gauge.value == 0 and gauge.min == 0

    def test_histogram_buckets_cumulative(self):
        hist = MetricsRegistry().histogram("h", buckets=[1.0, 10.0])
        for v in (0.5, 5.0, 50.0):
            hist.observe(v)
        # buckets get (1.0, 10.0, inf); each sample lands in its first bucket
        assert hist.bucket_counts == [1, 1, 1]
        assert hist.count == 3 and hist.sum == 55.5
        assert hist.min == 0.5 and hist.max == 50.0
        assert hist.mean == pytest.approx(18.5)

    def test_histogram_unsorted_buckets_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry().histogram("h", buckets=[10.0, 1.0])

    def test_query_prefix(self):
        registry = MetricsRegistry()
        registry.counter("mac.csma.collisions")
        registry.counter("mac.cell.ttis")
        registry.counter("net.link.dropped")
        assert len(registry.query("mac.*")) == 2
        assert len(registry.query("mac.csma.*")) == 1
        assert len(registry.query("net.link.dropped")) == 1
        assert registry.query("ma") == []  # no partial-component match

    def test_subsystems_and_snapshot(self):
        registry = MetricsRegistry()
        registry.counter("phy.x").inc()
        registry.gauge("mac.y").set(2)
        registry.histogram("epc.z").observe(1.0)
        assert registry.subsystems() == ["epc", "mac", "phy"]
        rows = registry.snapshot()
        assert [r["name"] for r in rows] == ["epc.z", "mac.y", "phy.x"]
        assert {r["kind"] for r in rows} == {"histogram", "gauge", "counter"}


class TestP2Quantile:
    def test_exact_for_small_samples(self):
        q = P2Quantile(0.5)
        for v in (5.0, 1.0, 3.0):
            q.observe(v)
        assert q.estimate == 3.0

    def test_median_converges_on_uniform(self):
        rng = np.random.default_rng(7)
        q = P2Quantile(0.5)
        for v in rng.uniform(0.0, 100.0, size=5000):
            q.observe(float(v))
        assert abs(q.estimate - 50.0) < 3.0

    def test_p99_converges_on_exponential(self):
        rng = np.random.default_rng(11)
        samples = rng.exponential(1.0, size=20_000)
        q = P2Quantile(0.99)
        for v in samples:
            q.observe(float(v))
        exact = float(np.percentile(samples, 99))
        assert abs(q.estimate - exact) / exact < 0.15

    def test_deterministic_in_observation_order(self):
        values = [float(v) for v in np.random.default_rng(3).normal(size=500)]
        a, b = P2Quantile(0.95), P2Quantile(0.95)
        for v in values:
            a.observe(v)
            b.observe(v)
        assert a.estimate == b.estimate

    def test_nan_before_any_sample(self):
        assert math.isnan(P2Quantile(0.5).estimate)

    def test_histogram_quantiles_plumbed(self):
        hist = MetricsRegistry().histogram("h")
        for v in range(1, 101):
            hist.observe(float(v))
        assert abs(hist.quantile(0.5) - 50.0) < 5.0
        assert abs(hist.quantile(0.95) - 95.0) < 5.0
        with pytest.raises(KeyError):
            hist.quantile(0.42)


# -- spans ------------------------------------------------------------------


class TestSpans:
    def test_explicit_begin_end_times_simulated_clock(self):
        sim = Simulator(0)
        span = sim.span("epc.attach", ue="ue1")
        sim.schedule(0.25, lambda: span.end(status="ok"))
        sim.run()
        assert span.finished and span.duration_s == 0.25
        assert span.status == "ok" and span.attrs == {"ue": "ue1"}

    def test_context_manager_nesting_sets_parent(self):
        sim = Simulator(0)
        tracker = sim.telemetry.spans
        with sim.span("outer") as outer:
            with sim.span("inner") as inner:
                pass
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None
        assert tracker.children_of(outer) == [inner]

    def test_end_is_idempotent(self):
        sim = Simulator(0)
        tracker = sim.telemetry.spans
        span = sim.span("p")
        span.end(status="ok")
        span.end(status="failed")  # ignored
        assert span.status == "ok" and tracker.ended == 1

    def test_duration_feeds_metrics_histogram(self):
        sim = Simulator(0)
        span = sim.span("nas.attach")
        sim.schedule(0.5, span.end)
        sim.run()
        hist = sim.metrics.histogram("span.nas.attach.duration_s",
                                     status="ok")
        assert hist.count == 1 and hist.sum == 0.5

    def test_zero_duration_event(self):
        sim = Simulator(0)
        span = sim.telemetry.spans.event("fault.activation", fault="f1")
        assert span.finished and span.duration_s == 0.0
        assert span.status == "event"

    def test_end_all_open(self):
        sim = Simulator(0)
        tracker = sim.telemetry.spans
        spans = [tracker.begin(f"p{i}") for i in range(3)]
        spans[0].end()
        assert tracker.end_all_open(status="aborted") == 2
        assert tracker.open_count == 0
        assert {s.status for s in spans} == {"ok", "aborted"}

    def test_error_exit_marks_span(self):
        sim = Simulator(0)
        with pytest.raises(RuntimeError):
            with sim.span("doomed"):
                raise RuntimeError("boom")
        assert sim.telemetry.spans.spans("doomed")[0].status == "error"

    def test_finished_ring_buffer_bounds_memory(self):
        sim = Simulator(0)
        tracker = SpanTracker(lambda: sim.now, max_finished=4)
        for i in range(10):
            tracker.begin(f"s{i}").end()
        assert len(tracker.finished) == 4
        assert tracker.ended == 10

    def test_durations_query(self):
        sim = Simulator(0)
        for delay in (0.1, 0.2):
            span = sim.span("epc.attach")
            sim.schedule(sim.now + delay, span.end)
        sim.run()
        durations = sim.telemetry.spans.durations_s("epc.attach")
        assert durations == pytest.approx([0.1, 0.2])


# -- profiler ---------------------------------------------------------------


class TestProfiler:
    def test_attributes_wall_time_per_site(self):
        sim = Simulator(0)
        sim.profiler = RunProfiler()

        def busy():
            sum(range(2000))

        for i in range(5):
            sim.schedule(0.1 * i, busy)
        sim.run()
        assert sim.profiler.events == 5
        [site] = sim.profiler.top_sites()
        assert site.calls == 5 and site.wall_s > 0
        assert "busy" in site.site
        assert sim.profiler.events_per_sec > 0

    def test_profiled_run_results_unchanged(self):
        """The profiler observes dispatch; it must not alter outcomes."""
        def build_and_run(profile):
            sim = Simulator(seed=5)
            if profile:
                sim.profiler = RunProfiler()
            samples = []
            def draw():
                samples.append(float(sim.rng("x").random()))
            for i in range(20):
                sim.schedule(0.01 * i, draw)
            sim.run()
            return samples, sim.events_executed

        assert build_and_run(False) == build_and_run(True)

    def test_counts_trace_categories_without_tracer(self):
        sim = Simulator(0)
        sim.profiler = RunProfiler()
        sim.schedule(0.0, lambda: sim.trace("drop", "x"))
        sim.schedule(0.1, lambda: sim.trace("drop", "y"))
        sim.run()
        assert sim.profiler.category_counts == {"drop": 2}

    def test_merge(self):
        a, b = RunProfiler(), RunProfiler()
        a.run_callback(sum, (range(10),))
        b.run_callback(sum, (range(10),))
        b.note_category("drop")
        a.merge(b)
        assert a.events == 2
        assert a.sites["builtins.sum"].calls == 2
        assert a.category_counts == {"drop": 1}

    def test_hot_path_table_shape(self):
        profiler = RunProfiler()
        profiler.run_callback(sum, (range(10),))
        table = profiler.hot_path_table()
        assert table.columns == ["callback_site", "calls", "wall_ms",
                                 "wall_frac", "us_per_call"]
        assert len(table) == 1
        assert table.rows[0]["wall_frac"] == pytest.approx(1.0)


# -- exporters --------------------------------------------------------------


def _sample_registry():
    registry = MetricsRegistry()
    registry.counter("net.link.dropped", link="a", cause="down").inc(3)
    registry.gauge("epc.agent.queue_depth", agent="mme").set(2)
    hist = registry.histogram("nas.attach.latency_s")
    hist.observe(0.05)
    hist.observe(0.07)
    return registry


class TestExporters:
    def test_csv_snapshot(self, tmp_path):
        path = str(tmp_path / "metrics.csv")
        rows = tagged_rows([("s0", _sample_registry())])
        assert write_metrics_csv(rows, path) == 3
        lines = open(path).read().splitlines()
        assert lines[0].startswith("sim,kind,name,labels")
        body = "\n".join(lines[1:])
        assert "net.link.dropped" in body
        assert "cause=down;link=a" in body
        assert "nas.attach.latency_s" in body

    def test_metrics_text_expands_histograms(self, tmp_path):
        path = str(tmp_path / "metrics.txt")
        rows = tagged_rows([("s0", _sample_registry())])
        write_metrics_text(rows, path)
        text = open(path).read()
        assert 'net_link_dropped{cause="down",link="a",sim="s0"} 3' in text
        assert 'nas_attach_latency_s_count{sim="s0"} 2' in text
        assert 'quantile="0.95"' in text

    def test_events_jsonl_mixes_traces_and_spans(self, tmp_path):
        from repro.simcore.trace import Tracer

        sim = Simulator(0)
        tracer = Tracer()
        tracer.record(1.0, "drop", "link x: overflow")
        span = sim.span("epc.attach", ue="u")
        span.end()
        path = str(tmp_path / "events.jsonl")
        count = write_events_jsonl(
            path, tracers=[("s0", tracer)],
            span_trackers=[("s0", sim.telemetry.spans)])
        records = [json.loads(line) for line in open(path)]
        assert count == len(records) == 2
        kinds = {r["type"] for r in records}
        assert kinds == {"trace", "span"}
        span_record = next(r for r in records if r["type"] == "span")
        assert span_record["name"] == "epc.attach"
        assert span_record["sim"] == "s0"

    def test_summary_table_groups_by_subsystem(self):
        rows = tagged_rows([("s0", _sample_registry())])
        table = summary_table(rows)
        subsystems = table.column("subsystem")
        assert subsystems == ["epc", "nas", "net"]
        net_row = table.rows[subsystems.index("net")]
        assert net_row["counter_total"] == 3.0


# -- hub: collection across a real experiment-style run ---------------------


class TestHub:
    def test_collects_simulators_built_during_run(self):
        HUB.start_run()
        sims = [Simulator(i) for i in range(2)]
        sims[0].metrics.counter("net.x").inc()
        sims[1].metrics.counter("epc.y").inc(2)
        run = HUB.finish_run()
        tags = [tag for tag, _ in run.registries]
        assert tags == ["s0", "s1"]
        assert run.subsystems() == ["epc", "net"]
        assert not HUB.active

    def test_start_twice_raises(self):
        HUB.start_run()
        with pytest.raises(RuntimeError):
            HUB.start_run()
        HUB.abort_run()

    def test_profile_arms_every_simulator(self):
        HUB.start_run(profile=True)
        sim = Simulator(0)
        sim.schedule(0.0, lambda: None)
        sim.run()
        run = HUB.finish_run()
        assert run.profiler is not None and run.profiler.events == 1

    def test_trace_arms_every_simulator(self):
        HUB.start_run(trace=True)
        sim = Simulator(0)
        sim.schedule(0.0, lambda: sim.trace("c", "m"))
        sim.run()
        run = HUB.finish_run()
        assert len(run.tracers) == 1
        assert run.tracers[0][1].count("c") == 1

    def test_network_run_covers_six_subsystems(self):
        """A real dLTE bring-up emits metrics from >= 6 subsystems."""
        HUB.start_run()
        try:
            town = RuralTown(radius_m=1500, n_ues=4, n_aps=2, seed=2)
            net = DLTENetwork.build(town, seed=2)
            net.run(duration_s=3.0)
        except BaseException:
            HUB.abort_run()
            raise
        run = HUB.finish_run()
        subsystems = set(run.subsystems())
        assert {"phy", "mac", "epc", "nas", "net", "spectrum"} <= subsystems
        rows = run.metrics_rows()
        by_name = {(r["sim"], r["name"], tuple(sorted(r["labels"].items())))
                   for r in rows}
        assert len(by_name) == len(rows)  # tagging keeps rows distinct
        attach = [r for r in rows if r["name"] == "epc.attach.completed"]
        assert sum(r["value"] for r in attach) == 4

    def test_attach_spans_recorded_end_to_end(self):
        HUB.start_run()
        try:
            town = RuralTown(radius_m=1500, n_ues=3, n_aps=1, seed=4)
            net = DLTENetwork.build(town, seed=4)
            net.run(duration_s=3.0)
        except BaseException:
            HUB.abort_run()
            raise
        run = HUB.finish_run()
        all_spans = [span for _tag, tracker in run.span_trackers
                     for span in tracker.spans("nas.attach")]
        ok = [s for s in all_spans if s.status == "ok"]
        assert len(ok) == 3
        for span in ok:
            assert span.duration_s > 0  # attach takes simulated time
