"""QUIC: the transport that makes dLTE's endpoint mobility workable.

Three properties, per §4.2 and RFC 9000/9001 behaviour:

1. Fresh setup costs 1 RTT (transport and crypto handshakes combined);
   resumption to a known server costs **0 RTTs** — application data rides
   the first flight.
2. The connection is named by its connection ID, not the 4-tuple: after
   an address change the client keeps sending, the server re-points its
   peer address at the first arriving packet, and data continues.
3. On migration the congestion controller resets to the initial window
   (the new path's capacity is unknown), but nothing re-handshakes.
"""

from __future__ import annotations

from typing import Dict, Set

from repro.net.addressing import IPv4Address
from repro.net.packet import Packet
from repro.transport.base import (
    ConnectionState,
    INITIAL_CWND,
    INITIAL_SSTHRESH,
    Listener,
    TransportConnection,
    TransportDemux,
)


class QuicConnection(TransportConnection):
    """One side of a QUIC connection."""

    #: strict RFC 9000 §9.4 behaviour (full congestion reset per
    #: migration); off by default for dLTE's adjacent-AP handovers.
    reset_cwnd_on_migration = False

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.migrations = 0
        self.used_0rtt = False

    # -- resumption ticket cache (per client host) --------------------------------

    def _ticket_cache(self) -> Set[IPv4Address]:
        # Tickets live on the host object so they are scoped to one
        # simulation (a class-level cache would leak across runs).
        cache = getattr(self.host, "_quic_tickets", None)
        if cache is None:
            cache = set()
            self.host._quic_tickets = cache
        return cache

    def has_ticket(self) -> bool:
        """True when a prior session with this server enables 0-RTT."""
        return self.peer_addr in self._ticket_cache()

    # -- handshake ------------------------------------------------------------------

    def connect(self) -> None:
        if self.state is not ConnectionState.IDLE:
            raise RuntimeError(f"connect() on {self.state.value} connection")
        self.state = ConnectionState.CONNECTING
        if self.has_ticket():
            # 0-RTT: established immediately; data may ride the first flight.
            self.used_0rtt = True
            self._emit({"kind": "0rtt"})
            self._become_established()
        else:
            self._emit({"kind": "syn"})  # Initial packet

    def accept(self, packet: Packet) -> None:
        header = packet.payload or {}
        self.state = ConnectionState.CONNECTING
        if header.get("kind") == "0rtt":
            self._become_established()
        else:
            self._emit({"kind": "synack"})  # Handshake flight
            self._become_established()

    def _on_synack(self, packet: Packet, header: Dict) -> None:
        if self.state is not ConnectionState.CONNECTING:
            return
        self._ticket_cache().add(self.peer_addr)
        self._become_established()

    # -- connection-ID addressing ---------------------------------------------------

    def _note_peer_packet(self, packet: Packet) -> None:
        """Authenticated packet with our connection ID: adopt its source.

        This is QUIC's passive migration path — the server side learns
        the client's new address simply by receiving from it.
        """
        if packet.src is not None and packet.src != self.peer_addr:
            self.peer_addr = packet.src

    def on_local_address_change(self, new_addr: IPv4Address) -> None:
        """Keep the connection; reset congestion state for the new path."""
        if self.state not in (ConnectionState.ESTABLISHED,
                              ConnectionState.CONNECTING):
            return
        self.migrations += 1
        self.sim.trace("transport", f"{self.conn_id}: migrating",
                       new_addr=str(new_addr), inflight=self.inflight)
        # Congestion state: RFC 9000 §9.4 says reset for a new path, but
        # permits keeping it when the new path shares the old one's
        # bottleneck. A dLTE handover moves one AP over on the same
        # rural backhaul class, so we keep the state and let the loss
        # signals (dupacks from a blackout burst, or nothing at all for
        # make-before-break) adjust it — see reset_cwnd_on_migration.
        if self.reset_cwnd_on_migration:
            self.cwnd = float(INITIAL_CWND)
            self.ssthresh = float(INITIAL_SSTHRESH)
        self._rto_backoff = 1.0
        if self.state is ConnectionState.ESTABLISHED:
            # Probe/resume immediately from the new address: retransmit the
            # oldest unacked segment (doubles as a PATH_CHALLENGE carrier)
            # or ping if idle, so the peer learns the new address now.
            # Whether the rest of the window survived depends on the
            # handover style: after a make-before-break the old path's
            # acks are still in flight and will catch up within an RTT;
            # after a blackout they never come. So probe now (teaching
            # the peer the new address), then decide after ~1.5 RTT: if
            # the ack clock has not caught up to the migration-time
            # window, declare it lost and burst-recover.
            if self.inflight > 0:
                self._retransmit(self.snd_una)
                self._arm_rto()
                snapshot = self.snd_nxt
                grace = 1.5 * (self.srtt_s or 0.1)
                self.sim.schedule(grace, self._judge_migration, snapshot)
            else:
                self._emit({"kind": "ping"})
            self._pump()

    def _judge_migration(self, snapshot: int) -> None:
        """Post-migration verdict: did the old window survive the switch?"""
        if self.state is not ConnectionState.ESTABLISHED:
            return
        if self.snd_una >= snapshot:
            return  # everything caught up: make-before-break, no loss
        self._recovery_point = snapshot
        self._burst_recovery = True
        self._retx_done = {self.snd_una}
        self._retransmit(self.snd_una)
        self._arm_rto()

    def _on_ping(self, packet: Packet, header: Dict) -> None:
        if self.state is ConnectionState.ESTABLISHED:
            self._note_peer_packet(packet)
            self._emit({"kind": "ack", "ack": self.rcv_nxt})


class QuicListener(Listener):
    """Accepts QUIC connections (fresh or 0-RTT) on a server host."""

    def __init__(self, sim, demux: TransportDemux, ecn: bool = False) -> None:
        def factory(**kwargs):
            return QuicConnection(ecn=ecn, **kwargs)
        super().__init__(sim, demux, factory)
