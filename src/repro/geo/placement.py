"""Placement generators for APs and UEs.

Each generator takes an explicit ``numpy.random.Generator`` so placements
are reproducible through the simulation's namespaced RNG registry.
"""

from __future__ import annotations

import math
from typing import List

import numpy as np

from repro.geo.points import Point


def uniform_disk_placement(rng: np.random.Generator, n: int, radius_m: float,
                           center: Point = Point(0.0, 0.0)) -> List[Point]:
    """``n`` points uniform over a disk (area-uniform, not radius-uniform)."""
    if n < 0:
        raise ValueError("n must be non-negative")
    if radius_m <= 0:
        raise ValueError("radius must be positive")
    radii = radius_m * np.sqrt(rng.random(n))
    angles = rng.random(n) * 2 * math.pi
    return [Point(center.x + r * math.cos(a), center.y + r * math.sin(a))
            for r, a in zip(radii, angles)]


def grid_placement(n_cols: int, n_rows: int, spacing_m: float,
                   origin: Point = Point(0.0, 0.0)) -> List[Point]:
    """A regular grid, row-major from ``origin``."""
    if n_cols <= 0 or n_rows <= 0:
        raise ValueError("grid dimensions must be positive")
    return [Point(origin.x + c * spacing_m, origin.y + r * spacing_m)
            for r in range(n_rows) for c in range(n_cols)]


def road_placement(n: int, spacing_m: float, y_m: float = 0.0,
                   start_x_m: float = 0.0) -> List[Point]:
    """``n`` points along a straight east-west road (AP string for E6)."""
    if n < 0:
        raise ValueError("n must be non-negative")
    return [Point(start_x_m + i * spacing_m, y_m) for i in range(n)]


def cluster_placement(rng: np.random.Generator, centers: List[Point],
                      per_cluster: int, spread_m: float) -> List[Point]:
    """Gaussian clusters around each center (hamlets around a town)."""
    if per_cluster < 0:
        raise ValueError("per_cluster must be non-negative")
    points: List[Point] = []
    for center in centers:
        offsets = rng.normal(0.0, spread_m, size=(per_cluster, 2))
        points.extend(Point(center.x + dx, center.y + dy) for dx, dy in offsets)
    return points
