"""Black-box flight recorder: post-mortem dumps of recent simulator state.

Every :class:`~repro.simcore.simulator.Simulator` keeps an always-on
bounded ring buffer of its most recently dispatched events — recording
is two in-place slot stores and an index bump per event, O(1) with zero
steady-state allocation, and touches nothing the byte-identical
contract depends on (no RNG, no scheduling, no telemetry calls). This
module tracks live simulators in a :class:`weakref.WeakSet` and, when
something goes wrong — an invariant violation, a supervisor
kill/timeout, an unhandled experiment exception — writes a structured
JSON post-mortem: the last N events per simulator, a metrics snapshot,
recent/open spans, and the heap/agent-queue high-water marks.

The dump is the *only* cost beyond the ring stores, and it happens only
on the failure path, so healthy runs pay nothing but the ring writes.

Dump location, first match wins: an explicit ``path=`` argument, the
directory set via :func:`set_dump_dir` (the CLI's ``--postmortem-dir``),
the ``REPRO_POSTMORTEM_DIR`` environment variable, the current
directory. Dump failures never mask the original error: any exception
while writing is swallowed (with a stderr note) and ``None`` returned.
"""

from __future__ import annotations

import itertools
import json
import os
import sys
import time
import weakref
from typing import Any, Dict, List, Optional, Sequence

__all__ = ["FLIGHT_CAPACITY", "SPAN_TAIL", "track", "tracked_sims",
           "set_dump_dir", "dump_dir", "snapshot_sim", "write_postmortem"]

#: Ring slots per simulator (the "last N events" of a dump). Override
#: with REPRO_FLIGHT_CAPACITY (clamped to >= 8) before simulators are
#: built; existing rings keep their size.
FLIGHT_CAPACITY = max(8, int(os.environ.get("REPRO_FLIGHT_CAPACITY", 256)))

#: Finished spans included per simulator in a dump (most recent first
#: in time order — the tail of the tracker's bounded deque).
SPAN_TAIL = 64

#: Live simulators -> construction sequence; weak keys so the recorder
#: never extends a simulator's lifetime.
_TRACKED: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()

#: Dump directory configured by the CLI (beats the env var).
_DUMP_DIR: Optional[str] = None

#: Monotone suffix so multiple dumps in one process never collide.
_SEQ = itertools.count()

_TRACK_SEQ = itertools.count()


def track(sim: Any) -> None:
    """Register a simulator for post-mortem snapshots (weakly held)."""
    _TRACKED[sim] = next(_TRACK_SEQ)


def tracked_sims() -> List[Any]:
    """Live tracked simulators, in construction order."""
    return [sim for sim, _seq in sorted(list(_TRACKED.items()),
                                        key=lambda kv: kv[1])]


def set_dump_dir(path: Optional[str]) -> None:
    """Set (or clear, with None) the process-wide dump directory."""
    global _DUMP_DIR
    _DUMP_DIR = path


def dump_dir() -> str:
    """Where post-mortems land: set_dump_dir > env > current directory."""
    return _DUMP_DIR or os.environ.get("REPRO_POSTMORTEM_DIR") or "."


def _site(fn: Any) -> str:
    """Callback-site label, matching the profiler's attribution."""
    try:
        return f"{fn.__module__}.{fn.__qualname__}"
    except AttributeError:
        return repr(fn)


def snapshot_sim(sim: Any) -> Dict[str, Any]:
    """One simulator's flight-recorder state as a JSON-ready dict."""
    snap: Dict[str, Any] = {
        "now_s": sim.now,
        "events_executed": sim.events_executed,
        "queue_length": sim.queue_length,
        "heap_high_water": getattr(sim, "heap_high_water", 0),
        "agent_peak_queue": getattr(sim, "agent_peak_queue", 0),
        "agents_shed": getattr(sim, "agents_shed", 0),
        "recent_events": [{"time_s": t, "site": _site(fn)}
                          for t, fn in sim.flight_events()],
    }
    telemetry = getattr(sim, "telemetry", None)
    if telemetry is not None:
        spans = telemetry.spans
        snap["recent_spans"] = [span.to_dict()
                                for span in list(spans.finished)[-SPAN_TAIL:]]
        snap["open_spans"] = [span.to_dict() for span in spans.open_spans()]
        snap["metrics"] = telemetry.metrics.snapshot()
    return snap


def write_postmortem(reason: str, detail: str = "",
                     path: Optional[str] = None,
                     sims: Optional[Sequence[Any]] = None,
                     extra: Optional[Dict[str, Any]] = None) -> Optional[str]:
    """Dump a post-mortem JSON file; returns its path (None on failure).

    ``reason`` is a short slug (``invariant-violation``,
    ``supervisor-kill``, ``experiment-exception``); ``detail`` a
    human-readable line. ``sims`` defaults to every tracked live
    simulator. ``extra`` keys are merged into the top-level record.
    The write is best-effort: it must never mask the error that
    triggered it.
    """
    try:
        if sims is None:
            sims = tracked_sims()
        record: Dict[str, Any] = {
            "type": "postmortem",
            "version": 1,
            "reason": reason,
            "detail": detail,
            "pid": os.getpid(),
            "argv": list(sys.argv),
            "written_at_unix": time.time(),
            "sims": [snapshot_sim(sim) for sim in sims],
        }
        if extra:
            record.update(extra)
        if path is None:
            name = f"postmortem-{reason}-{os.getpid()}-{next(_SEQ)}.json"
            path = os.path.join(dump_dir(), name)
        with open(path, "w") as fh:
            json.dump(record, fh, default=str, indent=1)
            fh.write("\n")
        print(f"[flight recorder: {reason} post-mortem -> {path}]",
              file=sys.stderr)
        return path
    except Exception as exc:  # pragma: no cover - defensive
        print(f"[flight recorder: failed to write {reason} post-mortem: "
              f"{exc}]", file=sys.stderr)
        return None
