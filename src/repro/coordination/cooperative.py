"""Cooperative mode: fused scheduling across consenting APs.

§4.3: "In cooperative mode, the APs programatically optimize for maximum
joint RF performance … Cooperation allows for client handoff across the
APs, QoS aware joint flow scheduling between APs, and the assignment of
the best AP to serve each client device. These improvements are
impossible to achieve under legacy WiFi's independent AP model."

A :class:`CooperativeCluster` spans the cells of the APs that opted in.
Each optimization pass:

1. **Best-AP assignment** — every UE is (re)assigned to the member cell
   with the strongest signal toward it, moving radio contexts across
   cells without any MME (this is the coordinated-handoff primitive).
2. **Demand-weighted resource fusion** — the shared grid is split among
   members in proportion to their post-assignment load, so an idle AP's
   spectrum serves its busy neighbour's clients.
3. **QoS-aware scheduling** — members run the QoS-aware scheduler so
   GBR bearers survive the fusion.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional

from repro.coordination.fair_sharing import compute_weighted_partition
from repro.enodeb.cell import Cell, UeRadioContext
from repro.mac.schedulers import QosAwareScheduler


class CooperativeCluster:
    """A set of cells jointly optimized.

    Cells must share one band/grid size (the cluster splits one spectrum
    pool). Membership is by consent: :meth:`join` / :meth:`leave`.
    """

    def __init__(self, name: str = "coop") -> None:
        self.name = name
        self.cells: Dict[str, Cell] = {}
        self.reassignments = 0
        self.optimization_passes = 0

    def join(self, cell: Cell, install_qos_scheduler: bool = True) -> None:
        """Add a consenting AP's cell to the cluster."""
        if self.cells and cell.grid.n_prbs != self._any_cell().grid.n_prbs:
            raise ValueError(
                f"cell {cell.name} grid ({cell.grid.n_prbs} PRBs) does not "
                f"match the cluster's ({self._any_cell().grid.n_prbs})")
        self.cells[cell.name] = cell
        if install_qos_scheduler:
            cell.scheduler = QosAwareScheduler()

    def leave(self, cell_name: str) -> None:
        """Remove a cell; its allowed set returns to the full grid."""
        cell = self.cells.pop(cell_name, None)
        if cell is not None:
            cell.allowed_prbs = cell.grid.all_prbs

    def _any_cell(self) -> Cell:
        return next(iter(self.cells.values()))

    @property
    def members(self) -> List[str]:
        """Current member cell names."""
        return sorted(self.cells)

    # -- the optimization pass ------------------------------------------------------

    def optimize(self) -> Dict[str, FrozenSet[int]]:
        """Run assignment + fusion; returns the installed PRB partition."""
        if not self.cells:
            raise RuntimeError("cluster has no members")
        self.optimization_passes += 1
        self._assign_best_ap()
        partition = self._fuse_resources()
        return partition

    def _assign_best_ap(self) -> None:
        """Move every UE context to the member cell that serves it best."""
        contexts: List[UeRadioContext] = []
        owner: Dict[str, str] = {}
        for cell in self.cells.values():
            for ue_id in list(cell.attached_ues):
                ctx = cell._ues[ue_id]
                contexts.append(ctx)
                owner[ue_id] = cell.name
                cell.remove_ue(ue_id)
        for ctx in contexts:
            best = max(self.cells.values(),
                       key=lambda c: (c.rsrp_to(ctx.radio), c.name))
            best.add_ue(ctx)
            if best.name != owner[ctx.ue_id]:
                self.reassignments += 1

    def _fuse_resources(self) -> Dict[str, FrozenSet[int]]:
        """Split the grid by per-cell demand (UE count, min weight 0.1)."""
        weights = {name: max(len(cell.attached_ues), 0) + 0.1
                   for name, cell in self.cells.items()}
        n_prbs = self._any_cell().grid.n_prbs
        partition = compute_weighted_partition(n_prbs, weights)
        for name, cell in self.cells.items():
            cell.allowed_prbs = partition[name]
        return partition

    # -- coordinated handoff -----------------------------------------------------------

    def handoff(self, ue_id: str, target_cell_name: str) -> None:
        """Explicitly move one UE to a named member cell."""
        target = self.cells.get(target_cell_name)
        if target is None:
            raise KeyError(f"{target_cell_name} is not a cluster member")
        for cell in self.cells.values():
            if ue_id in cell._ues:
                if cell.name == target_cell_name:
                    return
                ctx = cell._ues[ue_id]
                cell.remove_ue(ue_id)
                target.add_ue(ctx)
                self.reassignments += 1
                return
        raise KeyError(f"UE {ue_id} is not attached to any member cell")
