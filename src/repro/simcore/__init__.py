"""Discrete-event simulation kernel.

Every subsystem in the dLTE reproduction runs on this kernel: a binary-heap
event queue with a simulated clock, lightweight generator-based processes
(in the style of simpy), and per-component deterministic random streams.

The kernel is deliberately small and allocation-light: the MAC-layer
experiments schedule millions of events (one per TTI per cell), so
``Simulator.schedule`` and the run loop are the hot path of the whole
reproduction.
"""

from repro.simcore.events import Event, EventCancelled, Timeout
from repro.simcore.process import Process, ProcessKilled
from repro.simcore.rng import RngRegistry
from repro.simcore.sharded import (
    ShardBoundary,
    ShardHost,
    ShardedSimulator,
    ZeroLookaheadError,
)
from repro.simcore.simulator import ScheduledCall, Simulator
from repro.simcore.trace import TraceEvent, Tracer

__all__ = [
    "Event",
    "EventCancelled",
    "Timeout",
    "Process",
    "ProcessKilled",
    "RngRegistry",
    "ScheduledCall",
    "ShardBoundary",
    "ShardHost",
    "ShardedSimulator",
    "Simulator",
    "ZeroLookaheadError",
    "Tracer",
    "TraceEvent",
]
