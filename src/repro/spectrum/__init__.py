"""Spectrum access: licenses, contention domains, and open registries.

§4.3: "dLTE proposes a novel division of responsibilities for spectrum
management, using a lightweight open public license database for peer
discovery, and peer-to-peer organization for decentralized coordination."

The registry's one job is to answer, accurately, *which access points
operate in each region* — the paper explicitly does not require a
particular design. We implement the three designs it discusses:

* :class:`SasRegistry` — a centralized, API-driven Spectrum Access System
  (the CBRS model of ref [38]).
* :class:`FederatedRegistry` — DNS-like regional delegation.
* :class:`BlockchainRegistry` — a proof-of-work-paced public chain (the
  ref [27] model): slow to join, instant to read, impossible to take down.

E10 measures all three on join latency, discovery latency, and
availability under failure.
"""

from repro.spectrum.grants import (
    ApRecord,
    SpectrumGrant,
    contention_radius_m,
    in_contention,
)
from repro.spectrum.registry import RegistryUnavailable, SpectrumRegistry
from repro.spectrum.sas import SasRegistry
from repro.spectrum.federated import FederatedRegistry
from repro.spectrum.blockchain import Block, BlockchainRegistry

__all__ = [
    "ApRecord",
    "SpectrumGrant",
    "contention_radius_m",
    "in_contention",
    "SpectrumRegistry",
    "RegistryUnavailable",
    "SasRegistry",
    "FederatedRegistry",
    "Block",
    "BlockchainRegistry",
]
