"""Unit tests for repro.metrics (stats and result tables)."""

import pytest

from repro.metrics import ResultTable, TimeSeries, jain_fairness, percentile, summarize


# -- fairness ------------------------------------------------------------------

def test_jain_equal_allocation_is_one():
    assert jain_fairness([5, 5, 5, 5]) == pytest.approx(1.0)


def test_jain_single_winner_is_one_over_n():
    assert jain_fairness([10, 0, 0, 0]) == pytest.approx(0.25)


def test_jain_scale_invariant():
    assert jain_fairness([1, 2, 3]) == pytest.approx(jain_fairness([10, 20, 30]))


def test_jain_bounds():
    for alloc in ([1], [1, 9], [3, 3, 1], [0.1, 5, 5]):
        assert 0 < jain_fairness(alloc) <= 1.0


def test_jain_all_zero_degenerate():
    assert jain_fairness([0, 0]) == 1.0


def test_jain_validates():
    with pytest.raises(ValueError):
        jain_fairness([])
    with pytest.raises(ValueError):
        jain_fairness([1, -1])


# -- percentile / summarize ---------------------------------------------------------

def test_percentile_basics():
    data = list(range(101))
    assert percentile(data, 50) == 50
    assert percentile(data, 95) == 95
    assert percentile(data, 0) == 0


def test_percentile_validates():
    with pytest.raises(ValueError):
        percentile([1], 101)
    with pytest.raises(ValueError):
        percentile([], 50)


def test_summarize_fields():
    s = summarize([1, 2, 3, 4, 5])
    assert s["count"] == 5
    assert s["mean"] == 3
    assert s["median"] == 3
    assert s["min"] == 1 and s["max"] == 5
    with pytest.raises(ValueError):
        summarize([])


# -- time series ------------------------------------------------------------------------

def test_timeseries_record_and_rate():
    ts = TimeSeries("bytes")
    ts.record(0.0, 0)
    ts.record(10.0, 1000)
    assert ts.rate_per_s() == 100.0
    assert len(ts) == 2
    assert ts.times == [0.0, 10.0]
    assert ts.values == [0, 1000]


def test_timeseries_rejects_time_reversal():
    ts = TimeSeries()
    ts.record(5.0, 1)
    with pytest.raises(ValueError):
        ts.record(4.0, 2)


def test_timeseries_gap_detection():
    ts = TimeSeries()
    for t in (0.0, 0.1, 0.2, 1.5, 1.6):
        ts.record(t, t)
    assert ts.gaps_longer_than(0.5) == [(0.2, 1.5)]


def test_timeseries_degenerate_rate():
    ts = TimeSeries()
    assert ts.rate_per_s() == 0.0
    ts.record(1.0, 5)
    assert ts.rate_per_s() == 0.0


# -- result tables ------------------------------------------------------------------------

def test_table_add_and_column():
    t = ResultTable("demo", ["a", "b"])
    t.add_row(a=1, b=2)
    t.add_row(a=3, b=4)
    assert t.column("a") == [1, 3]
    assert len(t) == 2


def test_table_rejects_mismatched_rows():
    t = ResultTable("demo", ["a", "b"])
    with pytest.raises(ValueError, match="missing"):
        t.add_row(a=1)
    with pytest.raises(ValueError, match="extra"):
        t.add_row(a=1, b=2, c=3)


def test_table_rejects_bad_columns():
    with pytest.raises(ValueError):
        ResultTable("demo", [])
    with pytest.raises(ValueError):
        ResultTable("demo", ["x", "x"])
    t = ResultTable("demo", ["a"])
    with pytest.raises(KeyError):
        t.column("zzz")


def test_table_render_contains_everything():
    t = ResultTable("My Title", ["name", "value"])
    t.add_row(name="alpha", value=1.5)
    text = t.render()
    assert "My Title" in text
    assert "alpha" in text and "1.5" in text
    assert "name" in text and "value" in text


def test_table_float_formatting():
    t = ResultTable("fmt", ["v"])
    t.add_row(v=0.000123)
    t.add_row(v=123456.0)
    t.add_row(v=0)
    text = t.render()
    assert "0.000123" in text
    assert "1.23e+05" in text
