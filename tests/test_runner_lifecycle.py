"""Runner-lifecycle tracing: wall-clock decomposition of ``--jobs N``.

Unit tests drive :class:`RunnerLifecycle` directly with synthetic
numbers (the decomposition arithmetic must be exact); integration tests
run a real experiment through the pool and the supervisor and check the
records, the metrics family, the ``--profile`` summary line, and the
``--trace-out`` JSONL records that land for parallel runs only.
"""

import contextlib
import io
import json
import time

import pytest

from repro.runner import set_jobs
from repro.telemetry.hub import HUB
from repro.telemetry.lifecycle import RunnerLifecycle


# -- unit: the decomposition arithmetic ---------------------------------------


def _synthetic_map(lifecycle, jobs=2, tasks=()):
    record = lifecycle.begin_map("pool", jobs)
    record.fork_s = 0.1
    for slot, (pid, exec_s, ser_s, bytes_, ship_s, merge_s) in \
            enumerate(tasks):
        task = lifecycle.record_task(record, slot, f"t{slot}", pid,
                                     queue_wait_s=0.01, exec_s=exec_s,
                                     serialize_s=ser_s,
                                     serialize_bytes=bytes_, ship_s=ship_s)
        task.merge_s = merge_s
    lifecycle.finish_map(record)
    return record


def test_imbalance_is_busiest_worker_above_mean():
    lifecycle = RunnerLifecycle()
    record = _synthetic_map(lifecycle, jobs=2, tasks=[
        (100, 3.0, 0.0, 10, 0.0, 0.0),   # pid 100 busy 3.0 s
        (200, 1.0, 0.0, 10, 0.0, 0.0),   # pid 200 busy 1.0 s
    ])
    assert record.busy_s == pytest.approx(4.0)
    assert record.imbalance_s == pytest.approx(1.0)  # 3.0 - mean(2.0)


def test_idle_is_worker_seconds_not_spent_busy():
    lifecycle = RunnerLifecycle()
    record = lifecycle.begin_map("pool", 4)
    record.started_at = time.monotonic() - 2.0  # wall ~2 s
    record.fork_s = 0.5
    task = lifecycle.record_task(record, 0, "t0", 100, 0.0, 1.0, 0.0, 0, 0.0)
    lifecycle.finish_map(record)
    # 4 workers * (2.0 - 0.5) span = 6 worker-seconds, 1 busy -> ~5 idle
    assert record.idle_s == pytest.approx(5.0, abs=0.1)
    del task


def test_summary_aggregates_and_covers_the_wall():
    lifecycle = RunnerLifecycle()
    record = lifecycle.begin_map("supervised", 2)
    record.started_at = time.monotonic() - 1.0
    record.fork_s = 0.2
    lifecycle.record_task(record, 0, "a", 1, 0.05, 0.6, 0.1, 2048, 0.02)
    lifecycle.record_task(record, 1, "b", 2, 0.05, 0.5, 0.1, 2048, 0.02)
    lifecycle.finish_map(record)
    s = lifecycle.summary()
    assert s["maps"] == 1 and s["tasks"] == 2 and s["jobs"] == 2
    assert s["exec_s"] == pytest.approx(1.1)
    assert s["ipc_s"] == pytest.approx(s["serialize_s"] + s["ship_s"]
                                       + s["merge_s"])
    assert s["serialize_bytes"] == 4096
    # identity: wall ~= fork + (busy + idle)/jobs, so coverage ~ 1
    assert s["coverage"] == pytest.approx(1.0, abs=0.05)
    line = lifecycle.summary_line()
    assert "1 map(s), 2 task(s) over 2 worker(s)" in line
    assert "coverage" in line and "ipc" in line


def test_empty_lifecycle_summary_is_none():
    lifecycle = RunnerLifecycle()
    assert lifecycle.summary() is None
    assert lifecycle.summary_line() == "no parallel maps"
    assert lifecycle.records() == []
    assert len(lifecycle.registry) == 0


def test_metrics_family_mirrors_records():
    lifecycle = RunnerLifecycle()
    _synthetic_map(lifecycle, jobs=2, tasks=[
        (100, 1.0, 0.1, 1024, 0.01, 0.005),
        (200, 1.0, 0.1, 2048, 0.01, 0.005),
    ])
    rows = {(r["name"], r["kind"]): r for r in lifecycle.registry.snapshot()}
    assert rows[("runner.maps", "counter")]["value"] == 1
    assert rows[("runner.tasks", "counter")]["value"] == 2
    assert rows[("runner.task.serialize_bytes", "counter")]["value"] == 3072
    assert rows[("runner.task.exec_s", "histogram")]["count"] == 2
    assert rows[("runner.task.merge_s", "histogram")]["count"] == 2


# -- integration: real pool + supervisor runs ---------------------------------


def _run_e7(jobs, **hub_kwargs):
    from repro.experiments import ALL_EXPERIMENTS

    set_jobs(jobs)
    HUB.start_run(**hub_kwargs)
    try:
        ALL_EXPERIMENTS["E7"].run(ap_counts=[1, 2], ue_per_ap=2)
    except BaseException:
        HUB.abort_run()
        raise
    finally:
        set_jobs(1)
    return HUB.finish_run()


def test_pool_run_records_every_task():
    run = _run_e7(jobs=4)
    lifecycle = run.lifecycle
    assert len(lifecycle.maps) == 1
    record = lifecycle.maps[0]
    assert record.mode == "pool"
    # E7 at 2 ap_counts x 2 arms = 4 sweep cells -> 4 tasks
    assert len(record.tasks) == 4
    assert {t.slot for t in record.tasks} == {0, 1, 2, 3}
    for task in record.tasks:
        assert task.pid > 0
        assert task.exec_s > 0
        assert task.serialize_bytes > 0
        assert task.merge_s > 0  # unpickle + absorb both counted
    s = lifecycle.summary()
    assert s["coverage"] >= 0.95  # spans explain >= 95% of measured wall
    assert ("runner", lifecycle.registry) in run.registries


def test_serial_run_records_nothing():
    run = _run_e7(jobs=1)
    assert run.lifecycle.maps == []
    assert all(tag != "runner" for tag, _ in run.registries)


def test_cli_profile_line_and_trace_out_records(tmp_path, capsys):
    from repro.__main__ import main

    trace = tmp_path / "t.jsonl"
    assert main(["E7", "--jobs", "4", "--trace-out", str(trace),
                 "--profile", "--exp-arg", "ap_counts=[1, 2]",
                 "--exp-arg", "ue_per_ap=2"]) == 0
    set_jobs(1)
    out = capsys.readouterr().out
    assert "[E7 runner: " in out
    assert "fork" in out and "ipc" in out and "imbalance" in out
    records = [json.loads(line) for line in
               trace.read_text().splitlines()]
    runner = [r for r in records if r.get("type") == "runner"]
    assert sum(1 for r in runner if r["record"] == "map") == 1
    tasks = [r for r in runner if r["record"] == "task"]
    assert len(tasks) == 4
    assert all(r["serialize_bytes"] > 0 for r in tasks)


def _square(x):
    return x * x


def test_supervised_map_records_lifecycle_under_hub():
    from repro.runner.supervisor import supervised_map

    HUB.start_run()
    try:
        results = supervised_map(_square, [2, 3, 4], jobs=2,
                                 labels=["a", "b", "c"])
    except BaseException:
        HUB.abort_run()
        raise
    run = HUB.finish_run()
    assert results == [4, 9, 16]
    assert len(run.lifecycle.maps) == 1
    record = run.lifecycle.maps[0]
    assert record.mode == "supervised"
    assert len(record.tasks) == 3
    assert record.jobs == 2
