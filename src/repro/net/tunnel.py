"""GTP-U tunnels: how carrier LTE carries user traffic, and what dLTE removes.

In EPC-based LTE every user datagram is wrapped in GTP-U (outer IP + UDP
+ 8-byte GTP header, 36 bytes total) from the eNodeB to the S-GW and
again to the P-GW. dLTE's local core still speaks GTP between its eNodeB
and stub (the client expects a standard bearer) but the stub terminates
it on-box, so no tunnel crosses the backhaul (§4.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.net.addressing import IPv4Address
from repro.net.packet import Packet

#: Outer IPv4 (20) + UDP (8) + GTP-U (8) headers.
GTP_HEADER_BYTES = 36


@dataclass(frozen=True)
class GtpTunnel:
    """One direction of a GTP-U bearer between two tunnel endpoints."""

    teid: int
    local_addr: IPv4Address
    remote_addr: IPv4Address

    def __post_init__(self) -> None:
        if not 0 < self.teid < 2**32:
            raise ValueError(f"TEID must be a 32-bit positive value, got {self.teid}")


class TunnelEndpoint:
    """Encapsulates / decapsulates packets for a set of GTP tunnels.

    Lives inside an S-GW, P-GW, eNodeB, or dLTE stub. ``encapsulate``
    rewrites the packet toward the tunnel peer and grows it by the GTP
    overhead; ``decapsulate`` pops the outer header and restores the
    inner addresses. The saved inner header rides on the packet's
    ``encap_stack``, so nesting (eNB->S-GW inside S-GW->P-GW) works.
    """

    def __init__(self, address: IPv4Address) -> None:
        self.address = address
        self._by_teid: Dict[int, GtpTunnel] = {}
        self.encapsulated = 0
        self.decapsulated = 0

    def add_tunnel(self, tunnel: GtpTunnel) -> None:
        """Register a tunnel terminating here; TEIDs must be unique."""
        if tunnel.local_addr != self.address:
            raise ValueError(
                f"tunnel local addr {tunnel.local_addr} is not this "
                f"endpoint ({self.address})")
        if tunnel.teid in self._by_teid:
            raise ValueError(f"TEID {tunnel.teid} already registered")
        self._by_teid[tunnel.teid] = tunnel

    def remove_tunnel(self, teid: int) -> None:
        """Tear down a bearer (KeyError if unknown)."""
        del self._by_teid[teid]

    def tunnel(self, teid: int) -> Optional[GtpTunnel]:
        """Look up a registered tunnel."""
        return self._by_teid.get(teid)

    @property
    def active_tunnels(self) -> int:
        """Number of bearers currently registered."""
        return len(self._by_teid)

    def encapsulate(self, packet: Packet, teid: int) -> Packet:
        """Wrap ``packet`` for transport to the tunnel peer (in place)."""
        tunnel = self._by_teid.get(teid)
        if tunnel is None:
            raise KeyError(f"no tunnel with TEID {teid} at {self.address}")
        stack = packet.encap_stack
        if stack is None:
            stack = packet.encap_stack = []
        stack.append({
            "src": packet.src, "dst": packet.dst, "teid": teid,
        })
        packet.src = tunnel.local_addr
        packet.dst = tunnel.remote_addr
        packet.size_bytes += GTP_HEADER_BYTES
        self.encapsulated += 1
        return packet

    def decapsulate(self, packet: Packet) -> Packet:
        """Pop the outermost GTP layer (in place); validates addressing."""
        if not packet.encap_stack:
            raise ValueError("packet is not GTP-encapsulated")
        if packet.dst != self.address:
            raise ValueError(
                f"packet dst {packet.dst} is not this endpoint ({self.address})")
        inner = packet.encap_stack.pop()
        packet.src = inner["src"]
        packet.dst = inner["dst"]
        packet.size_bytes -= GTP_HEADER_BYTES
        self.decapsulated += 1
        return packet
