"""The eNodeB control-plane relay: NAS passes through, S1AP originates here.

NAS is end-to-end between UE and MME/stub; the eNodeB just relays it
(adding air-interface and S1 latency). S1AP messages the eNodeB itself
originates (PathSwitchRequest on handover) are also sent here.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.epc.agents import ControlAgent, ControlChannel, ControlMessage
from repro.epc.nas import NasMessage, PathSwitchRequest
from repro.net.addressing import IPv4Address
from repro.simcore.simulator import Simulator

#: NAS downlink messages are addressed by ue_id; everything arriving on
#: S1 with a ue_id we serve goes down; everything from the air goes up.


class EnbControlRelay(ControlAgent):
    """Relays NAS between per-UE air channels and the S1 channel."""

    def __init__(self, sim: Simulator, name: str,
                 service_time_s: float = 0.2e-3) -> None:
        super().__init__(sim, name, service_time_s)
        self.s1: Optional[ControlChannel] = None
        self._air: Dict[str, ControlChannel] = {}   # ue_id -> air channel
        self.address: Optional[IPv4Address] = None  # S1-U endpoint (data)
        self.nas_relayed = 0

    def connect_core(self, channel: ControlChannel) -> None:
        """Register the S1 channel toward the serving core."""
        self.s1 = channel

    def attach_ue(self, ue_id: str, air_channel: ControlChannel) -> None:
        """Register a UE's air channel (RRC connection established)."""
        self._air[ue_id] = air_channel

    def detach_ue(self, ue_id: str) -> None:
        """Release a UE's RRC connection."""
        self._air.pop(ue_id, None)

    @property
    def connected_ues(self) -> int:
        """UEs with an active RRC connection."""
        return len(self._air)

    def serves(self, ue_id: str) -> bool:
        """True when this eNodeB holds the UE's RRC connection."""
        return ue_id in self._air

    def handle(self, message: ControlMessage) -> None:
        payload = message.payload
        if not isinstance(payload, NasMessage):
            return
        came_from_core = (self.s1 is not None
                          and message.sender is self.s1.other_end(self))
        if came_from_core:
            air = self._air.get(payload.ue_id)
            if air is not None:
                self.nas_relayed += 1
                air.send(self, payload)
        else:
            if self.s1 is not None:
                self.nas_relayed += 1
                self.s1.send(self, payload)

    def request_path_switch(self, ue_id: str) -> None:
        """Handover arrival: ask the MME to re-point the S1-U bearer."""
        if self.s1 is None:
            raise RuntimeError(f"{self.name}: no S1 channel")
        self.s1.send(self, PathSwitchRequest(ue_id=ue_id, target_enb=self.name,
                                             enb_address=self.address))
