"""Integration: DLTENetwork runs on any registry paradigm (§4.3).

"The dLTE architecture does not require a particular license paradigm,
as long as the registry is open and accurately reports which access
points operate in each region." — so the same federation must come up,
peer, and serve users whether the registry is a SAS, a federation, or a
blockchain.
"""

import pytest

from repro.core import DLTENetwork
from repro.simcore import Simulator
from repro.spectrum import BlockchainRegistry, FederatedRegistry, SasRegistry
from repro.workloads import RuralTown

TOWN = RuralTown(radius_m=1500, n_ues=6, n_aps=2, seed=3)


def _build_with(registry_factory):
    # the network builder owns the Simulator, so thread the factory in
    net = DLTENetwork.build(TOWN, seed=3)
    # rebuild with the chosen registry on the same sim
    registry = registry_factory(net.sim)
    net.spectrum_registry = registry
    for ap in net.aps.values():
        ap.spectrum_registry = registry
    return net


@pytest.mark.parametrize("factory,label", [
    (lambda sim: SasRegistry(sim), "sas"),
    (lambda sim: FederatedRegistry(sim), "federated"),
    (lambda sim: BlockchainRegistry(sim, block_interval_s=0.5,
                                    confirmations=1,
                                    propagation_s=0.05), "blockchain"),
])
def test_federation_comes_up_on_any_registry(factory, label):
    net = _build_with(factory)
    report = net.run(duration_s=8.0)
    # licenses granted
    assert all(ap.grant is not None for ap in net.aps.values())
    # peers discovered and the grid split
    assert report.extras["x2_peers_total"] == 2
    slices = [ap.cell.allowed_prbs for ap in net.aps.values()]
    assert not (slices[0] & slices[1])
    # users served
    assert report.attach_failures == 0
    assert len(report.rtt_s) == 6


def test_registry_choice_changes_only_setup_time():
    """Same steady state, different join latency — the E10 trade-off
    seen from inside the architecture."""
    results = {}
    for label, factory in (
            ("sas", lambda sim: SasRegistry(sim)),
            ("blockchain", lambda sim: BlockchainRegistry(
                sim, block_interval_s=0.5, confirmations=1,
                propagation_s=0.05))):
        net = _build_with(factory)
        report = net.run(duration_s=8.0)
        results[label] = report
    # identical service once up
    assert (results["sas"].mean_rtt_s
            == pytest.approx(results["blockchain"].mean_rtt_s, rel=0.05))
    assert results["sas"].attach_failures == 0
    assert results["blockchain"].attach_failures == 0
