"""Deployment economics (§5, E12) and provisioning advice (§7)."""

from repro.deploy.advisor import ProvisioningAdvisor, SiteAssessment
from repro.deploy.costs import (
    BomItem,
    DeploymentPlan,
    PAPUA_REFERENCE_BOM,
    carrier_femtocell_plan,
    coverage_area_km2,
    dlte_site_plan,
    wifi_site_plan,
)

__all__ = [
    "ProvisioningAdvisor",
    "SiteAssessment",
    "BomItem",
    "DeploymentPlan",
    "PAPUA_REFERENCE_BOM",
    "dlte_site_plan",
    "wifi_site_plan",
    "carrier_femtocell_plan",
    "coverage_area_km2",
]
