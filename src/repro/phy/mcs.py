"""Rate tables: LTE CQI→efficiency and WiFi MCS→rate.

LTE adapts its modulation-and-coding in 15 CQI steps (3GPP TS 36.213
Table 7.2.3-1) reaching down to QPSK rate-0.08, usable near -7 dB SINR.
802.11n's lowest rate is BPSK rate-1/2, needing roughly +2 dB — and below
that the link is simply dead. That gap, plus HARQ (see ``phy.harq``), is
the quantitative core of the paper's "LTE outperforms WiFi over the more
tenuous links common in rugged areas" claim (§3.2), measured in E4.

SINR thresholds are the standard link-level-simulation operating points
(~10% initial BLER targets); absolute values vary by channel model in the
literature but the relative LTE-vs-WiFi structure is stable.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from functools import lru_cache
from typing import List, Optional, Sequence

import numpy as np


@dataclass(frozen=True)
class McsEntry:
    """One row of a rate table.

    Attributes:
        index: CQI (LTE) or MCS (WiFi) index.
        modulation: e.g. ``"QPSK"``, ``"64QAM"``.
        code_rate: channel code rate (0-1).
        efficiency_bps_hz: net spectral efficiency at this entry.
        min_sinr_db: SINR at which this entry first meets its BLER target.
    """

    index: int
    modulation: str
    code_rate: float
    efficiency_bps_hz: float
    min_sinr_db: float


#: 3GPP TS 36.213 Table 7.2.3-1 efficiencies with standard SINR thresholds.
LTE_CQI_TABLE: List[McsEntry] = [
    McsEntry(1, "QPSK", 0.0762, 0.1523, -6.7),
    McsEntry(2, "QPSK", 0.1172, 0.2344, -4.7),
    McsEntry(3, "QPSK", 0.1885, 0.3770, -2.3),
    McsEntry(4, "QPSK", 0.3008, 0.6016, 0.2),
    McsEntry(5, "QPSK", 0.4385, 0.8770, 2.4),
    McsEntry(6, "QPSK", 0.5879, 1.1758, 4.3),
    McsEntry(7, "16QAM", 0.3691, 1.4766, 5.9),
    McsEntry(8, "16QAM", 0.4785, 1.9141, 8.1),
    McsEntry(9, "16QAM", 0.6016, 2.4063, 10.3),
    McsEntry(10, "64QAM", 0.4551, 2.7305, 11.7),
    McsEntry(11, "64QAM", 0.5537, 3.3223, 14.1),
    McsEntry(12, "64QAM", 0.6504, 3.9023, 16.3),
    McsEntry(13, "64QAM", 0.7539, 4.5234, 18.7),
    McsEntry(14, "64QAM", 0.8525, 5.1152, 21.0),
    McsEntry(15, "64QAM", 0.9258, 5.5547, 22.7),
]

#: 802.11n single-stream, 20 MHz, 800 ns GI: rates in bits/s/Hz over 20 MHz.
#: (PHY rates 6.5..65 Mbps; min-sensitivity SNRs per standard practice.)
WIFI_MCS_TABLE: List[McsEntry] = [
    McsEntry(0, "BPSK", 0.5, 6.5e6 / 20e6, 2.0),
    McsEntry(1, "QPSK", 0.5, 13.0e6 / 20e6, 5.0),
    McsEntry(2, "QPSK", 0.75, 19.5e6 / 20e6, 9.0),
    McsEntry(3, "16QAM", 0.5, 26.0e6 / 20e6, 11.0),
    McsEntry(4, "16QAM", 0.75, 39.0e6 / 20e6, 15.0),
    McsEntry(5, "64QAM", 0.6667, 52.0e6 / 20e6, 18.0),
    McsEntry(6, "64QAM", 0.75, 58.5e6 / 20e6, 20.0),
    McsEntry(7, "64QAM", 0.8333, 65.0e6 / 20e6, 25.0),
]

_LTE_THRESHOLDS = [e.min_sinr_db for e in LTE_CQI_TABLE]
_WIFI_THRESHOLDS = [e.min_sinr_db for e in WIFI_MCS_TABLE]

# Array mirrors of the LTE table for the batch TTI engine: CQI selection
# over a whole cell becomes one ``np.searchsorted`` (identical semantics
# to the ``bisect_right`` the scalar path uses — both are pure index
# arithmetic, so batch and scalar agree bit for bit). Row -1 of the
# gather targets backs the "below CQI 1" case with zeros.
_LTE_THRESHOLDS_ARR = np.array(_LTE_THRESHOLDS)
_LTE_EFFICIENCY_ARR = np.array(
    [e.efficiency_bps_hz for e in LTE_CQI_TABLE] + [0.0])
_LTE_MIN_SINR_ARR = np.array(_LTE_THRESHOLDS + [0.0])


def select_lte_cqi_index_many(sinr_db: Sequence[float]) -> np.ndarray:
    """Vectorized CQI row selection: index into ``LTE_CQI_TABLE`` per
    SINR, or -1 where the link is below CQI 1.

    ``select_lte_cqi(s)`` equals ``LTE_CQI_TABLE[i]`` (or ``None`` for
    -1) for every element — the batch engine's CQI step.
    """
    sinr = np.asarray(sinr_db, dtype=float)
    return np.searchsorted(_LTE_THRESHOLDS_ARR, sinr, side="right") - 1


def lte_efficiency_for_index(indices: np.ndarray) -> np.ndarray:
    """Spectral efficiency per CQI row index (-1 maps to 0.0)."""
    return _LTE_EFFICIENCY_ARR[indices]


def lte_min_sinr_for_index(indices: np.ndarray) -> np.ndarray:
    """HARQ threshold (``min_sinr_db``) per CQI row index (-1 maps to
    0.0, never consumed: the batch engine masks dead links first)."""
    return _LTE_MIN_SINR_ARR[indices]


def _select(table: List[McsEntry], thresholds: List[float],
            sinr_db: float) -> Optional[McsEntry]:
    idx = bisect.bisect_right(thresholds, sinr_db) - 1
    if idx < 0:
        return None
    return table[idx]


# The selection itself is a bisect, but it sits on the per-TTI hot path
# (every scheduled UE, every TTI, usually at a small set of stationary
# SINRs), so an LRU in front turns the common case into one dict hit.
# Entries are immutable module-level rows — caching returns the same
# objects the uncached path would.

@lru_cache(maxsize=4096)
def select_lte_cqi(sinr_db: float) -> Optional[McsEntry]:
    """Highest LTE CQI whose threshold is met, or None below CQI 1."""
    return _select(LTE_CQI_TABLE, _LTE_THRESHOLDS, sinr_db)


@lru_cache(maxsize=4096)
def select_wifi_mcs(snr_db: float) -> Optional[McsEntry]:
    """Highest WiFi MCS whose threshold is met, or None below MCS 0."""
    return _select(WIFI_MCS_TABLE, _WIFI_THRESHOLDS, snr_db)


def lte_efficiency_for_sinr(sinr_db: float) -> float:
    """LTE net spectral efficiency (bits/s/Hz) at ``sinr_db``; 0 if dead."""
    entry = select_lte_cqi(sinr_db)
    return entry.efficiency_bps_hz if entry else 0.0


def wifi_rate_for_snr(snr_db: float, bandwidth_hz: float = 20e6) -> float:
    """WiFi PHY rate in bits/s at ``snr_db``; 0 if below MCS 0."""
    entry = select_wifi_mcs(snr_db)
    return entry.efficiency_bps_hz * bandwidth_hz if entry else 0.0
