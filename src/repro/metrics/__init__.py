"""Measurement utilities: fairness, percentiles, time series, tables."""

from repro.metrics.stats import (
    TimeSeries,
    jain_fairness,
    percentile,
    summarize,
)
from repro.metrics.tables import ResultTable

__all__ = [
    "TimeSeries",
    "jain_fairness",
    "percentile",
    "summarize",
    "ResultTable",
]
