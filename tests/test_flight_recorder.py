"""Flight recorder: bounded event ring + post-mortem dumps.

The recorder is always on — every Simulator keeps a fixed-size ring of
its most recent dispatched events at O(1) per event with no steady-state
allocation — and the ring only *leaves* the process when something dies:
an invariant violation, a supervisor kill, or an unhandled experiment
exception each dump a structured JSON post-mortem. These tests cover the
ring semantics, the snapshot/dump format, the dump-directory resolution
order, and the three trigger paths end to end.
"""

import json
import os

import pytest

from repro.invariants import InvariantChecker, InvariantError
from repro.simcore import Simulator
from repro.telemetry import flightrec


def _nop() -> None:
    return None


def _tick() -> None:
    return None


# -- ring semantics -----------------------------------------------------------


def test_ring_records_recent_events_oldest_first():
    sim = Simulator(0)
    for i in range(5):
        sim.schedule(i * 0.5, _nop)
    sim.run()
    events = sim.flight_events()
    assert len(events) == 5
    assert [t for t, _ in events] == [0.0, 0.5, 1.0, 1.5, 2.0]
    assert all(fn is _nop for _, fn in events)


def test_ring_wraps_keeping_only_the_tail():
    cap = flightrec.FLIGHT_CAPACITY
    sim = Simulator(0)
    n = cap + 17
    for i in range(n):
        sim.schedule(i * 1e-3, _tick if i >= n - cap else _nop)
    sim.run()
    events = sim.flight_events()
    assert len(events) == cap
    # the oldest surviving entry is event n-cap; order is oldest-first
    assert events[0][0] == pytest.approx((n - cap) * 1e-3)
    assert events[-1][0] == pytest.approx((n - 1) * 1e-3)
    assert all(fn is _tick for _, fn in events)


def test_ring_is_consistent_after_step_interleaved_with_run():
    sim = Simulator(0)
    for i in range(3):
        sim.schedule(i * 1.0, _nop)
    sim.step()  # record path outside the inlined run() loop
    sim.run()
    assert [t for t, _ in sim.flight_events()] == [0.0, 1.0, 2.0]


def test_empty_sim_has_no_flight_events():
    assert Simulator(0).flight_events() == []


# -- snapshot / dump format ---------------------------------------------------


def test_snapshot_is_json_ready_and_names_sites():
    sim = Simulator(0)
    for i in range(4):
        sim.schedule(i * 0.25, _nop)
    sim.run()
    snap = flightrec.snapshot_sim(sim)
    json.dumps(snap, default=str)  # must not raise
    assert snap["events_executed"] == 4
    assert snap["queue_length"] == 0
    sites = {e["site"] for e in snap["recent_events"]}
    assert sites == {f"{__name__}._nop"}


def test_write_postmortem_dump_parses_and_carries_extra(tmp_path):
    sim = Simulator(0)
    sim.schedule(0.0, _nop)
    sim.run()
    path = flightrec.write_postmortem(
        "unit-test", detail="forced", sims=[sim],
        extra={"task": {"label": "exp:E1"}})
    assert path is not None and os.path.exists(path)
    record = json.loads(open(path).read())
    assert record["type"] == "postmortem"
    assert record["reason"] == "unit-test"
    assert record["detail"] == "forced"
    assert record["task"] == {"label": "exp:E1"}
    assert len(record["sims"]) == 1
    assert record["sims"][0]["events_executed"] == 1


def test_postmortem_defaults_to_every_tracked_live_sim():
    a, b = Simulator(0), Simulator(1)
    a.schedule(0.0, _nop)
    a.run()
    path = flightrec.write_postmortem("unit-test")
    record = json.loads(open(path).read())
    # a and b are the youngest tracked sims, in construction order
    executed = [s["events_executed"] for s in record["sims"][-2:]]
    assert executed == [1, 0]
    del a, b


# -- dump-directory resolution ------------------------------------------------


def test_dump_dir_resolution_order(tmp_path, monkeypatch):
    env_dir = tmp_path / "from-env"
    env_dir.mkdir()
    monkeypatch.setenv("REPRO_POSTMORTEM_DIR", str(env_dir))
    assert flightrec.dump_dir() == str(env_dir)
    set_dir = tmp_path / "from-setter"
    set_dir.mkdir()
    flightrec.set_dump_dir(str(set_dir))
    try:
        # explicit setter (the --postmortem-dir flag) beats the env var
        assert flightrec.dump_dir() == str(set_dir)
        path = flightrec.write_postmortem("unit-test", sims=[])
        assert os.path.dirname(path) == str(set_dir)
    finally:
        flightrec.set_dump_dir(None)
    monkeypatch.delenv("REPRO_POSTMORTEM_DIR")
    assert flightrec.dump_dir() == "."  # cwd fallback


# -- trigger: invariant violation ---------------------------------------------


def test_invariant_violation_dumps_and_tags_the_error(tmp_path):
    sim = Simulator(0)
    checker = InvariantChecker(sim)
    checker.register("unit-law", "widget", lambda: ["it broke"])
    with pytest.raises(InvariantError) as excinfo:
        checker.verify()
    path = getattr(excinfo.value, "postmortem_path", None)
    assert path is not None and os.path.exists(path)
    record = json.loads(open(path).read())
    assert record["reason"] == "invariant-violation"
    assert record["violations"][0]["check"] == "unit-law"
    assert record["violations"][0]["detail"] == "it broke"
    # the dump names the watched simulator, not every live one
    assert len(record["sims"]) == 1


# -- trigger: unhandled experiment exception ----------------------------------


def test_experiment_exception_dumps_once_via_cli(tmp_path, monkeypatch):
    from repro.__main__ import main

    monkeypatch.setenv("REPRO_POSTMORTEM_DIR", str(tmp_path))
    with pytest.raises(TypeError):
        main(["E12", "--exp-arg", "no_such_kwarg=1"])
    dumps = [f for f in os.listdir(tmp_path)
             if f.startswith("postmortem-experiment-exception")]
    assert len(dumps) == 1
    record = json.loads(open(tmp_path / dumps[0]).read())
    assert record["experiment"] == "E12"
    assert "no_such_kwarg" in record["detail"]


# -- trigger: supervisor kill -------------------------------------------------


def _hangable(x: int) -> int:
    return x * x


def test_supervisor_hang_kill_writes_postmortems(tmp_path, monkeypatch):
    from repro.runner.supervisor import SupervisorReport, supervised_map

    pm_dir = tmp_path / "pm"
    pm_dir.mkdir()
    monkeypatch.setenv("REPRO_POSTMORTEM_DIR", str(pm_dir))
    monkeypatch.setenv("REPRO_CHAOS_PLAN", "job:0:hang")
    monkeypatch.setenv("REPRO_CHAOS_DIR", str(tmp_path))
    report = SupervisorReport()
    results = supervised_map(_hangable, [3, 4], jobs=2,
                             labels=["job:0", "job:1"],
                             task_timeout_s=2.0, retries=1, report=report)
    assert results == [9, 16]
    assert report.hangs == 1
    reasons = set()
    for name in os.listdir(pm_dir):
        record = json.loads(open(pm_dir / name).read())
        assert record["type"] == "postmortem"
        reasons.add(record["reason"])
    # the parent records the kill decision; the worker's SIGTERM handler
    # dumps its own last-events ring before exiting
    assert "supervisor-hang" in reasons
    assert "supervisor-kill" in reasons
