"""Integration: federation churn — an AP dies, survivors reclaim spectrum.

The open-federation counterpart of carrier ops: nobody pages an
engineer; the X2 peer-status extension notices and the fair-sharing
protocol reconverges.
"""

import pytest

from repro.core import DLTENetwork
from repro.workloads import RuralTown


@pytest.fixture
def federation():
    town = RuralTown(radius_m=2500, n_ues=4, n_aps=3, seed=11)
    net = DLTENetwork.build(town, seed=11)
    net.run(duration_s=3.0)
    for ap in net.aps.values():
        ap.start_peer_monitor(heartbeat_s=1.0)
    net.sim.run(until=net.sim.now + 2.0)
    return net


def test_three_way_split_before_churn(federation):
    net = federation
    sizes = sorted(len(ap.cell.allowed_prbs) for ap in net.aps.values())
    assert sizes == [16, 17, 17]


def test_survivors_reclaim_dead_aps_spectrum(federation):
    net = federation
    victim = net.aps["ap2"]
    # the owner unplugs the box: monitor stops, X2 goes silent
    victim.peer_monitor.stop()
    victim.x2.handlers.clear()

    net.sim.run(until=net.sim.now + 8.0)  # > missed_limit x heartbeat

    survivors = [net.aps["ap0"], net.aps["ap1"]]
    for ap in survivors:
        assert "ap2" not in ap.x2.peer_ids
        assert ap.peer_monitor.peers_lost == 1
    slices = [ap.cell.allowed_prbs for ap in survivors]
    assert len(slices[0]) == 25 and len(slices[1]) == 25
    assert not (slices[0] & slices[1])


def test_rejoin_after_churn(federation):
    """The unplugged AP comes back: rediscovers, re-peers, re-shares."""
    net = federation
    victim = net.aps["ap2"]
    victim.peer_monitor.stop()
    victim.x2.handlers.clear()
    net.sim.run(until=net.sim.now + 8.0)
    assert all("ap2" not in net.aps[a].x2.peer_ids for a in ("ap0", "ap1"))

    # power restored: rebuild the X2 handler chain and re-peer
    victim.x2.add_handler(victim.coordinator._on_x2)
    victim.x2.add_handler(victim._on_x2_message)
    victim.discover_and_peer(net.aps)
    net.sim.run(until=net.sim.now + 3.0)

    sizes = sorted(len(ap.cell.allowed_prbs) for ap in net.aps.values())
    assert sizes == [16, 17, 17]
    union = frozenset().union(*(ap.cell.allowed_prbs
                                for ap in net.aps.values()))
    assert len(union) == 50
