"""NAT: the gateway model dLTE explicitly avoids.

§4.2: dLTE clients get "a new publicly routable IP address" from the AP
— they are first-class Internet hosts. The common alternative (WiFi
hotspots, CGNAT'd carriers) hides clients behind a translator: outbound
flows work, but *unsolicited inbound* traffic has no binding and is
dropped, so clients cannot host services or accept peer-to-peer
connections. :class:`NatRouter` implements that asymmetry at flow
granularity so E15 can measure what public addressing is worth.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.net.addressing import IPv4Address
from repro.net.nodes import Router
from repro.net.packet import Packet
from repro.simcore.simulator import Simulator


class NatRouter(Router):
    """A flow-granular source NAT on the site's public address.

    Private clients live behind ``private_prefix``; every outbound flow
    installs a binding (flow_id -> private address); inbound packets are
    translated back through the binding or dropped as unsolicited.
    """

    def __init__(self, sim: Simulator, name: str,
                 public_address: IPv4Address, private_prefix: str,
                 forwarding_delay_s: float = 20e-6) -> None:
        import ipaddress

        super().__init__(sim, name, forwarding_delay_s)
        self.public_address = public_address
        self.private_network = ipaddress.IPv4Network(private_prefix)
        self._bindings: Dict[str, IPv4Address] = {}
        self.translated_out = 0
        self.translated_in = 0
        self.unsolicited_drops = 0

    def binding_for(self, flow_id: str) -> Optional[IPv4Address]:
        """The private address a flow is bound to, if any."""
        return self._bindings.get(flow_id)

    @property
    def active_bindings(self) -> int:
        """Currently installed flow bindings."""
        return len(self._bindings)

    def _is_private(self, address: Optional[IPv4Address]) -> bool:
        return address is not None and address in self.private_network

    def handle(self, packet: Packet) -> None:
        if packet.dst == self.public_address:
            self._inbound(packet)
            return
        if self._is_private(packet.src) and not self._is_private(packet.dst):
            # outbound: bind and masquerade
            if packet.flow_id:
                self._bindings[packet.flow_id] = packet.src
            packet.src = self.public_address
            self.translated_out += 1
        super().handle(packet)

    def _inbound(self, packet: Packet) -> None:
        private = self._bindings.get(packet.flow_id)
        if private is None:
            # unsolicited: no binding, nobody to deliver to
            self.unsolicited_drops += 1
            return
        packet.dst = private
        self.translated_in += 1
        super().handle(packet)
