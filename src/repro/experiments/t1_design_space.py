"""T1 — Table 1: the wireless design space, regenerated from code.

The paper's table places dLTE alone in the open-core/licensed-radio
quadrant. We regenerate the quadrants from each implemented
architecture's capability flags and also emit the full feature matrix
the quadrants summarize.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.core.capabilities import ArchitectureCapabilities, design_space_table
from repro.core.network import (
    CentralizedLTENetwork,
    DLTENetwork,
    PrivateLTENetwork,
    WiFiNetwork,
)
from repro.metrics.tables import ResultTable

ARCHITECTURES = (DLTENetwork, CentralizedLTENetwork, WiFiNetwork,
                 PrivateLTENetwork)


def run() -> Tuple[ResultTable, ResultTable]:
    """Returns (the Table-1 quadrants, the capability feature matrix)."""
    caps: List[ArchitectureCapabilities] = [
        arch.CAPABILITIES for arch in ARCHITECTURES]
    quadrants = design_space_table(caps)

    matrix = ResultTable(
        "T1 feature matrix (per architecture)",
        ["architecture", "open_core", "licensed", "coordinated",
         "net_mobility", "l2_security", "billing", "pstn", "organic_growth"])
    for cap in caps:
        matrix.add_row(
            architecture=cap.name,
            open_core="yes" if cap.open_core else "no",
            licensed="yes" if cap.licensed_radio else "no",
            coordinated="yes" if cap.coordinated_spectrum else "no",
            net_mobility="yes" if cap.in_network_mobility else "no",
            l2_security="yes" if cap.link_layer_security else "no",
            billing="yes" if cap.central_billing else "no",
            pstn="yes" if cap.pstn_interconnect else "no",
            organic_growth="yes" if cap.organic_growth else "no")
    return quadrants, matrix


def dlte_quadrant_is_unique() -> bool:
    """The paper's claim: dLTE alone occupies open-core + licensed."""
    occupants = [cap.name for cap in
                 (arch.CAPABILITIES for arch in ARCHITECTURES)
                 if cap.quadrant == ("Licensed", "Open")]
    return occupants == ["dLTE"]
