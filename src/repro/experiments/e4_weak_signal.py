"""E4 — §3.2 "LTE Waveform": goodput under weak signal.

Uplink saturation at a fixed SINR, three arms:

* LTE with HARQ chase combining (the paper's mechanism),
* LTE with plain ARQ (ablation: combining disabled),
* WiFi 802.11 with plain ARQ.

Plus the SC-FDMA PAPR credit: at the same PA, the LTE uplink runs ~3 dB
hotter, which shifts its whole curve right. The claim reproduced: LTE
degrades gracefully below WiFi's MCS0 floor while WiFi goes to zero.
"""

from __future__ import annotations

from typing import List, Optional

from repro.metrics.tables import ResultTable
from repro.phy.harq import harq_goodput_factor
from repro.phy.mcs import (
    select_lte_cqi,
    select_wifi_mcs,
)

SINR_SWEEP_DB = [-10, -8, -6, -4, -2, 0, 2, 4, 6, 10, 15, 20]

#: single-carrier uplink PAPR advantage (dB) applied to LTE arms
SCFDMA_ADVANTAGE_DB = 3.0


def lte_goodput_bps_hz(sinr_db: float, harq: bool = True,
                       max_retx: int = 3) -> float:
    """LTE link adaptation + (H)ARQ at an operating SINR.

    Link adaptation is goodput-optimal for the retransmission scheme in
    use: with chase combining the scheduler can afford an MCS *above*
    the channel (the combined retransmission finishes the decode), which
    is where HARQ's throughput gain comes from; plain ARQ must stay at
    or below the channel or every attempt fails alike.
    """
    from repro.phy.mcs import LTE_CQI_TABLE

    best = 0.0
    for entry in LTE_CQI_TABLE:
        factor = harq_goodput_factor(sinr_db, entry.min_sinr_db,
                                     max_retx=max_retx, combining=harq)
        best = max(best, entry.efficiency_bps_hz * factor)
    # below any usable operating point the link is dead
    return best if best > 0.01 else 0.0


def wifi_goodput_bps_hz(snr_db: float, max_retries: int = 3) -> float:
    """WiFi link adaptation + plain ARQ (no combining), goodput-optimal."""
    from repro.phy.mcs import WIFI_MCS_TABLE

    best = 0.0
    for entry in WIFI_MCS_TABLE:
        factor = harq_goodput_factor(snr_db, entry.min_sinr_db,
                                     max_retx=max_retries, combining=False)
        best = max(best, entry.efficiency_bps_hz * factor)
    return best if best > 0.01 else 0.0


def run(sinrs_db: Optional[List[float]] = None) -> ResultTable:
    """Goodput (b/s/Hz) vs SINR for the three arms."""
    sweep = sinrs_db or SINR_SWEEP_DB
    table = ResultTable(
        "E4: uplink goodput (bits/s/Hz) vs channel SINR",
        ["channel_sinr_db", "lte_harq", "lte_plain_arq", "wifi"])
    for sinr in sweep:
        lte_sinr = sinr + SCFDMA_ADVANTAGE_DB
        table.add_row(
            channel_sinr_db=sinr,
            lte_harq=lte_goodput_bps_hz(lte_sinr, harq=True),
            lte_plain_arq=lte_goodput_bps_hz(lte_sinr, harq=False),
            wifi=wifi_goodput_bps_hz(sinr))
    return table


def harq_retx_ablation(sinr_db: float = -5.0) -> ResultTable:
    """Ablation: how many retransmissions HARQ needs to help."""
    table = ResultTable(
        f"E4 ablation: HARQ max retransmissions at {sinr_db:g} dB SINR",
        ["max_retx", "goodput_bps_hz"])
    for max_retx in (0, 1, 2, 3, 4, 6):
        table.add_row(max_retx=max_retx,
                      goodput_bps_hz=lte_goodput_bps_hz(
                          sinr_db, harq=True, max_retx=max_retx))
    return table


def link_death_sinrs() -> ResultTable:
    """The floor of each arm: lowest SINR with nonzero goodput."""
    table = ResultTable(
        "E4 summary: link-death SINR per arm",
        ["arm", "dies_below_db"])
    def floor(fn) -> float:
        sinr = 25.0
        while sinr > -25.0 and fn(sinr) > 0:
            sinr -= 0.25
        return sinr + 0.25
    table.add_row(arm="lte_harq",
                  dies_below_db=floor(lambda s: lte_goodput_bps_hz(
                      s + SCFDMA_ADVANTAGE_DB, harq=True)))
    table.add_row(arm="lte_plain_arq",
                  dies_below_db=floor(lambda s: lte_goodput_bps_hz(
                      s + SCFDMA_ADVANTAGE_DB, harq=False)))
    table.add_row(arm="wifi", dies_below_db=floor(wifi_goodput_bps_hz))
    return table
