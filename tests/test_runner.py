"""Unit tests for the parallel runner substrate (repro.runner)."""

import pytest

from repro.runner import (
    ParallelRunner,
    derive_seed,
    get_jobs,
    in_worker,
    parallel_map,
    set_jobs,
)
from repro.runner import parallel as parallel_mod


def _square(x):
    return x * x


def _nested(x):
    # a worker that itself calls parallel_map must just loop serially
    return sum(parallel_map(_square, [x, x + 1], jobs=4))


def test_serial_map_matches_builtin():
    assert parallel_map(_square, [1, 2, 3], jobs=1) == [1, 4, 9]


def test_parallel_map_preserves_item_order():
    items = list(range(20))
    assert parallel_map(_square, items, jobs=4) == [i * i for i in items]


def test_costs_reorder_submission_not_results():
    items = [1, 2, 3, 4]
    costs = [0.1, 5.0, 0.2, 3.0]  # longest-first submission
    assert parallel_map(_square, items, jobs=2, costs=costs) == [1, 4, 9, 16]


def test_costs_must_align():
    with pytest.raises(ValueError):
        parallel_map(_square, [1, 2, 3], jobs=2, costs=[1.0])


def test_jobs_must_be_positive():
    with pytest.raises(ValueError):
        parallel_map(_square, [1], jobs=0)
    with pytest.raises(ValueError):
        set_jobs(0)


def test_single_item_runs_inline():
    assert parallel_map(_square, [7], jobs=8) == [49]


def test_nested_parallel_map_runs_serially():
    # each outer task calls parallel_map again; the inner call must not
    # try to fork grandchildren from a daemonic worker
    assert parallel_map(_nested, [1, 2, 3], jobs=2) == [5, 13, 25]


def test_set_get_jobs_roundtrip():
    old = get_jobs()
    try:
        set_jobs(3)
        assert get_jobs() == 3
        # parallel_map defaults to the process-wide setting
        assert parallel_map(_square, [1, 2, 3, 4]) == [1, 4, 9, 16]
    finally:
        set_jobs(old)


def test_in_worker_false_in_parent():
    assert not in_worker()


def test_worker_flag_visible_inside_workers():
    results = parallel_map(_report_worker, [0, 1, 2], jobs=2)
    assert all(results)


def _report_worker(_):
    return parallel_mod._IN_WORKER


def test_runner_object():
    runner = ParallelRunner(jobs=4)
    assert runner.parallel
    assert runner.map(_square, [2, 3]) == [4, 9]
    assert not ParallelRunner(jobs=1).parallel
    with pytest.raises(ValueError):
        ParallelRunner(jobs=0)
    assert "jobs=4" in repr(runner)


def test_derive_seed_deterministic_and_distinct():
    a = derive_seed(42, "E6", "carrier", 30.0)
    assert a == derive_seed(42, "E6", "carrier", 30.0)
    assert a != derive_seed(42, "E6", "carrier", 10.0)
    assert a != derive_seed(43, "E6", "carrier", 30.0)
    assert 0 <= a < 2 ** 31


def test_derive_seed_key_parts_do_not_collide():
    # ("ab", "c") and ("a", "bc") must hash differently
    assert derive_seed(1, "ab", "c") != derive_seed(1, "a", "bc")
