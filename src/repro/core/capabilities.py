"""Architecture capability flags and the Table-1 generator.

Rather than hard-coding the paper's design-space table, we *derive* it:
every architecture class declares its capabilities, and
:func:`design_space_table` sorts them into the quadrants. A test then
asserts that dLTE is alone in the open-core/licensed-radio cell — the
paper's "unexplored quadrant" claim, checked against the code.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.metrics.tables import ResultTable


@dataclass(frozen=True)
class ArchitectureCapabilities:
    """What a network architecture offers (the paper's comparison axes).

    Attributes:
        name: display name.
        open_core: can anyone add an AP without an operator's consent?
        licensed_radio: scheduled waveform on licensed/registered spectrum?
        coordinated_spectrum: APs coordinate RF (scheduling/ICIC) rather
            than contend blindly?
        in_network_mobility: does the network mask client movement
            (tunnel updates) vs leaving it to endpoints?
        link_layer_security: enforced L2 encryption/authentication?
        central_billing: operator billing integrated in the network?
        pstn_interconnect: circuit/VoLTE telephony interconnect?
        organic_growth: can coverage grow bottom-up, AP by AP, across
            owners? (open_core plus federation)
    """

    name: str
    open_core: bool
    licensed_radio: bool
    coordinated_spectrum: bool
    in_network_mobility: bool
    link_layer_security: bool
    central_billing: bool
    pstn_interconnect: bool
    organic_growth: bool

    @property
    def quadrant(self) -> Tuple[str, str]:
        """(radio axis, core axis) cell of Table 1."""
        radio = "Licensed" if self.licensed_radio else "Unlicensed"
        core = "Open" if self.open_core else "Closed"
        return (radio, core)


def design_space_table(
        capabilities: List[ArchitectureCapabilities]) -> ResultTable:
    """Regenerate the paper's Table 1 from capability declarations."""
    cells: Dict[Tuple[str, str], List[str]] = {
        ("Unlicensed", "Open"): [],
        ("Unlicensed", "Closed"): [],
        ("Licensed", "Open"): [],
        ("Licensed", "Closed"): [],
    }
    for cap in capabilities:
        cells[cap.quadrant].append(cap.name)
    table = ResultTable(
        "Table 1: the wireless design space (generated from capabilities)",
        ["radio", "open_core", "closed_core"])
    for radio in ("Unlicensed", "Licensed"):
        table.add_row(
            radio=radio,
            open_core=", ".join(sorted(cells[(radio, "Open")])) or "(empty)",
            closed_core=", ".join(sorted(cells[(radio, "Closed")])) or "(empty)",
        )
    return table
