"""LTE downlink/uplink PRB schedulers.

Each scheduler answers one question per TTI: which user gets each PRB of
the set this cell is allowed to use. The allowed set comes from the
coordination layer (full grid when standalone, a slice under fair
sharing, a jointly-optimized slice in cooperative mode), which is exactly
the paper's §4.3 division of labor: coordination decides the slices,
the local scheduler fills them.

Implemented policies:

* :class:`RoundRobinScheduler` — cyclic, rate-oblivious.
* :class:`MaxCiScheduler` — always the best-channel user (max capacity,
  min fairness).
* :class:`ProportionalFairScheduler` — the industry default: maximize
  instantaneous-rate / EWMA-average-rate.
* :class:`QosAwareScheduler` — PF with a strict-priority guarantee layer
  for bearers carrying a guaranteed bit rate (used by cooperative mode's
  "QoS aware joint flow scheduling").
"""

from __future__ import annotations

import heapq
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Sequence

import numpy as np

from repro.phy.mcs import lte_efficiency_for_sinr
from repro.phy.resource_grid import bits_per_prb


@dataclass
class SchedulableUser:
    """Per-TTI view of one attached user.

    Attributes:
        user_id: stable identity across TTIs (EWMA state keys off it).
        sinr_db: current wideband SINR toward this user.
        backlog_bits: queued demand; users with zero backlog are skipped.
        gbr_bps: guaranteed bit rate, 0 for best-effort.
        priority: lower value = more important, used by QoS scheduler.
    """

    user_id: str
    sinr_db: float
    backlog_bits: float = float("inf")
    gbr_bps: float = 0.0
    priority: int = 9

    @property
    def efficiency(self) -> float:
        """Spectral efficiency at the current SINR (0 when unreachable)."""
        return lte_efficiency_for_sinr(self.sinr_db)


class LteScheduler(ABC):
    """Base class: allocate a PRB set among users, track average rates.

    Two allocation entry points share the same policy code paths:
    :meth:`allocate` (the scalar reference, over ``SchedulableUser``
    objects) and :meth:`allocate_batch` (the batch TTI engine, over a
    :class:`repro.mac.arena.UeArena`'s arrays). The batch variants
    replicate the scalar float expressions term for term — association
    order, tie-breaks, dict insertion order — so both produce
    bit-identical grants and EWMA state.
    """

    #: EWMA horizon for PF average-rate tracking, in TTIs.
    PF_WINDOW_TTIS = 100.0

    #: set by ``UeArena.store_for`` when this instance's EWMA state has
    #: migrated into a cell arena's array store (shared-scheduler guard)
    _array_store_arena = None

    def __init__(self) -> None:
        self._avg_rate_bps: Dict[str, float] = {}

    def allocate(self, users: Sequence[SchedulableUser],
                 prbs: FrozenSet[int]) -> Dict[str, FrozenSet[int]]:
        """Assign each PRB in ``prbs`` to at most one user.

        Users with zero efficiency (below CQI 1) or zero backlog receive
        nothing. Returns {user_id: prb set}; unassigned PRBs are simply
        absent. Also updates the PF rate averages.
        """
        eligible = [u for u in users if u.efficiency > 0 and u.backlog_bits > 0]
        grants: Dict[str, List[int]] = {}
        if eligible and prbs:
            grants = self._assign(eligible, sorted(prbs))
        result = {uid: frozenset(g) for uid, g in grants.items() if g}
        self._update_averages(users, result)
        return result

    @abstractmethod
    def _assign(self, users: List[SchedulableUser],
                prbs: List[int]) -> Dict[str, List[int]]:
        """Policy-specific assignment over a non-empty eligible set."""

    # -- batch (arena) entry point ------------------------------------------

    def allocate_batch(self, arena, bank, prbs):
        """:meth:`allocate` over arena arrays, bit-identical results.

        ``arena`` is a ``repro.mac.arena.UeArena`` and ``bank`` one of
        its refreshed PHY banks. Only invoked by ``Cell`` for scheduler
        classes that define ``_assign_batch``.
        """
        store = arena.store_for(self)
        grants: Dict[str, List[int]] = {}
        elig: List[int] = []
        if arena.ids:
            mask = (bank.eff_arr > 0.0) & (arena.backlog_arr > 0.0)
            elig = np.nonzero(mask)[0].tolist()
        if elig and prbs:
            grants = self._assign_batch(arena, bank, store, elig,
                                        sorted(prbs))
        result = {uid: frozenset(g) for uid, g in grants.items() if g}
        self._update_averages_batch(arena, bank, store, result)
        return result

    def _update_averages_batch(self, arena, bank, store,
                               grants: Dict[str, FrozenSet[int]]) -> None:
        if not arena.ids:
            return
        alpha = 1.0 / self.PF_WINDOW_TTIS
        served = np.zeros(len(arena.ids))
        slot_of = arena.slot_of
        for uid, g in grants.items():
            served[slot_of[uid]] = len(g)
        inst = served * bank.b_arr * 1e3  # bits/s, same term order as scalar
        store.avg = (1 - alpha) * store.avg + alpha * inst

    # -- rate accounting ----------------------------------------------------

    def _update_averages(self, users: Sequence[SchedulableUser],
                         grants: Dict[str, FrozenSet[int]]) -> None:
        alpha = 1.0 / self.PF_WINDOW_TTIS
        for user in users:
            served = len(grants.get(user.user_id, ()))
            inst = served * bits_per_prb(user.efficiency) * 1e3  # bits/s
            prev = self._avg_rate_bps.get(user.user_id, 0.0)
            self._avg_rate_bps[user.user_id] = (1 - alpha) * prev + alpha * inst

    def average_rate_bps(self, user_id: str) -> float:
        """EWMA throughput of ``user_id`` (0 for never-seen users)."""
        arena = self._array_store_arena
        if arena is not None:
            slot = arena.slot_of.get(user_id)
            if slot is not None:
                for sched, store in arena._stores:
                    if sched is self:
                        return float(store.avg[slot])
        return self._avg_rate_bps.get(user_id, 0.0)

    def forget(self, user_id: str) -> None:
        """Drop EWMA state for a departed user."""
        self._avg_rate_bps.pop(user_id, None)


class RoundRobinScheduler(LteScheduler):
    """Cycle PRBs across users regardless of channel quality."""

    def __init__(self) -> None:
        super().__init__()
        self._next = 0

    def _assign(self, users: List[SchedulableUser],
                prbs: List[int]) -> Dict[str, List[int]]:
        grants: Dict[str, List[int]] = {u.user_id: [] for u in users}
        for i, prb in enumerate(prbs):
            user = users[(self._next + i) % len(users)]
            grants[user.user_id].append(prb)
        self._next = (self._next + len(prbs)) % max(len(users), 1)
        return grants

    def _assign_batch(self, arena, bank, store, elig: List[int],
                      prbs: List[int]) -> Dict[str, List[int]]:
        ids = arena.ids
        grants: Dict[str, List[int]] = {ids[s]: [] for s in elig}
        n = len(elig)
        nxt = self._next
        for i, prb in enumerate(prbs):
            grants[ids[elig[(nxt + i) % n]]].append(prb)
        self._next = (nxt + len(prbs)) % max(n, 1)
        return grants


class MaxCiScheduler(LteScheduler):
    """Give every PRB to the user with the best channel."""

    def _assign(self, users: List[SchedulableUser],
                prbs: List[int]) -> Dict[str, List[int]]:
        best = max(users, key=lambda u: (u.efficiency, u.user_id))
        return {best.user_id: list(prbs)}

    def _assign_batch(self, arena, bank, store, elig: List[int],
                      prbs: List[int]) -> Dict[str, List[int]]:
        ids = arena.ids
        eff = bank.eff
        best = max(elig, key=lambda s: (eff[s], ids[s]))
        return {ids[best]: list(prbs)}


class ProportionalFairScheduler(LteScheduler):
    """Maximize sum log-rate: pick argmax of instantaneous/average rate.

    PRBs are granted greedily one at a time; the in-TTI grant count feeds
    back into the metric so one TTI already spreads PRBs when averages tie.

    Granting a PRB only lowers the winner's own metric (``inst / (avg +
    n*inst)`` is decreasing in ``n``) and touches nobody else's, so the
    argmax scan over all users per PRB is replaced by a heap: pop the
    winner, grant, re-push with its updated metric — O(log U) per PRB
    instead of O(U) closure calls, with identical float arithmetic. Heap
    entries are ``(-metric, rank)`` where rank ascends in *descending*
    ``user_id`` order, replicating ``max(..., key=(metric, user_id))``
    tie-breaking exactly (this is the F1/E7 radio-phase hot path).
    """

    def _assign(self, users: List[SchedulableUser],
                prbs: List[int]) -> Dict[str, List[int]]:
        grants: Dict[str, List[int]] = {u.user_id: [] for u in users}
        floor = 1e3  # avoids div-by-zero for new users, biases toward them
        avg_map = self._avg_rate_bps
        order = sorted(users, key=lambda u: u.user_id, reverse=True)
        insts: List[float] = []
        avgs: List[float] = []
        lists: List[List[int]] = []
        entries: List = []
        for rank, user in enumerate(order):
            inst = bits_per_prb(user.efficiency) * 1e3
            avg = max(avg_map.get(user.user_id, 0.0), floor)
            insts.append(inst)
            avgs.append(avg)
            lists.append(grants[user.user_id])
            entries.append((-(inst / (avg + 0.0)), rank))
        heapq.heapify(entries)
        pop = heapq.heappop
        push = heapq.heappush
        for prb in prbs:
            _neg, rank = pop(entries)
            granted = lists[rank]
            granted.append(prb)
            inst = insts[rank]
            push(entries, (-(inst / (avgs[rank] + len(granted) * inst)), rank))
        return grants

    def _assign_batch(self, arena, bank, store, elig: List[int],
                      prbs: List[int]) -> Dict[str, List[int]]:
        # the scalar path's structures, gathered straight from the arena:
        # grants keyed in eligible (attach) order, heap ranks in
        # descending-uid order, Python floats throughout (via tolist) so
        # the heap arithmetic is the very same scalar arithmetic
        ids = arena.ids
        grants: Dict[str, List[int]] = {ids[s]: [] for s in elig}
        floor = 1e3
        eset = set(elig)
        desc = [s for s in arena.desc_order if s in eset]
        idx = np.array(desc)
        insts = (bank.b_arr[idx] * 1e3).tolist()
        avgs = np.maximum(store.avg[idx], floor).tolist()
        lists = [grants[ids[s]] for s in desc]
        entries: List = [(-(insts[r] / (avgs[r] + 0.0)), r)
                         for r in range(len(desc))]
        heapq.heapify(entries)
        pop = heapq.heappop
        push = heapq.heappush
        for prb in prbs:
            _neg, rank = pop(entries)
            granted = lists[rank]
            granted.append(prb)
            inst = insts[rank]
            push(entries, (-(inst / (avgs[rank] + len(granted) * inst)), rank))
        return grants


class QosAwareScheduler(ProportionalFairScheduler):
    """GBR-first scheduling: guarantee bit rates, then PF the remainder.

    Bearers with ``gbr_bps > 0`` are served in priority order until their
    guarantee is met for this TTI (gbr x TTI bits); remaining PRBs go to
    the PF policy over everyone. This is the scheduler cooperative mode
    installs for "QoS aware joint flow scheduling between APs" (§4.3).
    """

    def _assign(self, users: List[SchedulableUser],
                prbs: List[int]) -> Dict[str, List[int]]:
        grants: Dict[str, List[int]] = {u.user_id: [] for u in users}
        remaining = list(prbs)
        gbr_users = sorted((u for u in users if u.gbr_bps > 0),
                           key=lambda u: (u.priority, u.user_id))
        for user in gbr_users:
            needed_bits = user.gbr_bps * 1e-3  # per TTI
            per_prb = bits_per_prb(user.efficiency)
            while remaining and needed_bits > 0:
                grants[user.user_id].append(remaining.pop(0))
                needed_bits -= per_prb
        if remaining:
            pf = super()._assign(users, remaining)
            for uid, extra in pf.items():
                grants[uid].extend(extra)
        return grants

    def _assign_batch(self, arena, bank, store, elig: List[int],
                      prbs: List[int]) -> Dict[str, List[int]]:
        ids = arena.ids
        grants: Dict[str, List[int]] = {ids[s]: [] for s in elig}
        remaining = list(prbs)
        gbr = arena.gbr
        prio = arena.priority
        b = bank.b
        gbr_slots = sorted((s for s in elig if gbr[s] > 0),
                           key=lambda s: (prio[s], ids[s]))
        for s in gbr_slots:
            needed_bits = gbr[s] * 1e-3  # per TTI
            per_prb = b[s]
            granted = grants[ids[s]]
            while remaining and needed_bits > 0:
                granted.append(remaining.pop(0))
                needed_bits -= per_prb
        if remaining:
            pf = ProportionalFairScheduler._assign_batch(
                self, arena, bank, store, elig, remaining)
            for uid, extra in pf.items():
                grants[uid].extend(extra)
        return grants
