"""Shared helpers for the benchmark harness.

Each benchmark regenerates one experiment (a table/figure/claim from
DESIGN.md §3), prints its rows — the rows recorded in EXPERIMENTS.md —
and asserts the claim's *shape* (who wins, roughly by how much, where
crossovers fall). Run with::

    pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

from typing import Iterable, Union

from repro.metrics.tables import ResultTable


def emit(tables: Union[ResultTable, Iterable[ResultTable]]) -> None:
    """Print one or more result tables (visible with pytest -s)."""
    if isinstance(tables, ResultTable):
        tables = [tables]
    for table in tables:
        print()
        print(table.render())


def once(benchmark, fn, *args, **kwargs):
    """Run a macro-experiment exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1)
