"""Security-model tests: what §4.2's "intentionally undermined" auth
still guarantees, and what it deliberately gives up."""

import pytest

from repro.epc import LocalCoreStub, PublishedKeyRegistry, UserEquipment
from repro.epc.agents import CallbackAgent, ControlChannel
from repro.epc.nas import AuthenticationRequest
from repro.epc.subscriber import SubscriberProfile, make_profile
from repro.epc.ue import UeState
from repro.net import AddressPool
from repro.simcore import Simulator

from tests.test_epc_attach import attach_ue, build_stub


def test_replayed_challenge_rejected():
    """Recording and replaying a (RAND, AUTN) pair must fail."""
    sim = Simulator(1)
    prof = make_profile("001010000000033", published=True)
    ue = UserEquipment(sim, prof)
    captured = []

    relay = CallbackAgent(sim, "mitm",
                          handler=lambda m: captured.append(m.payload))
    air = ControlChannel(sim, ue, relay, 0.005, "air")
    ue.connect_air(air)

    # a legitimate-looking challenge (attacker somehow got one)
    from repro.epc.crypto import generate_auth_vector
    rand = bytes(range(16))
    vector = generate_auth_vector(prof.key, rand, sqn=0)
    challenge = AuthenticationRequest(ue_id=ue.ue_id, rand=rand,
                                      autn=vector.autn, sqn=0)
    rejections = []
    ue.on_rejected = lambda u, cause: rejections.append(cause)

    ue.state = UeState.ATTACHING
    ue.enqueue(type("M", (), {"payload": challenge, "sender": relay,
                              "sent_at": 0.0})())
    sim.run(until=1.0)
    assert rejections == []  # first time: answered

    ue.state = UeState.ATTACHING
    ue.enqueue(type("M", (), {"payload": challenge, "sender": relay,
                              "sent_at": 0.0})())
    sim.run(until=2.0)
    assert rejections == ["replayed-challenge"]
    assert ue.network_auth_failures == 1


def test_imposter_network_rejected():
    """An AP that does NOT hold the published key cannot fake AUTN."""
    sim = Simulator(1)
    stub, enb = build_stub(sim, registry=None)
    real = make_profile("001010000000044", published=True)
    # stub holds a WRONG key for this IMSI (e.g. stale registry data)
    wrong = make_profile("001010000000045")
    stub.preload_key(real.imsi, wrong.key)
    ue = attach_ue(sim, enb, real)
    sim.run(until=5)
    assert ue.state is UeState.REJECTED
    assert ue.network_auth_failures == 1


def test_private_keys_never_enter_registry():
    sim = Simulator(1)
    registry = PublishedKeyRegistry(sim)
    private = make_profile("001010000000046", published=False)
    with pytest.raises(ValueError):
        registry.publish(private)


def test_handover_context_carries_only_that_ue():
    """X2 context transfer must not bulk-leak the source's key cache."""
    from repro.coordination.x2 import HandoverRequest

    msg = HandoverRequest(sender_ap="a", ue_id="u1",
                          imsi="001010000000047", key_context=b"k" * 16)
    # the message schema has exactly one key slot; there is no cache field
    assert not hasattr(msg, "key_cache")
    assert msg.key_context == b"k" * 16


def test_published_key_lets_any_stub_authenticate():
    """The §4.2 design goal: publication = universal attachability."""
    sim = Simulator(1)
    registry = PublishedKeyRegistry(sim, lookup_rtt_s=0.02)
    prof = make_profile("001010000000048", published=True)
    registry.publish(prof)
    # two unrelated stubs, no pre-arrangement with the user
    results = []
    for i in range(2):
        stub, enb = build_stub(sim, registry,
                               pool_prefix=f"100.{64 + i}.0.0/24")
        ue = attach_ue(sim, enb, prof)
        sim.run(until=sim.now + 3.0)
        results.append(ue.state)
        ue.detach()
        sim.run(until=sim.now + 1.0)
    assert results == [UeState.ATTACHED, UeState.ATTACHED]


def test_open_network_admits_anyone_published_rejects_unpublished():
    """dLTE's L2 is open like 'Free WiFi': published users attach,
    unpublished users simply cannot complete AKA (not a policy wall,
    a key-possession fact)."""
    sim = Simulator(1)
    registry = PublishedKeyRegistry(sim, lookup_rtt_s=0.02)
    stranger = make_profile("001010000000049", published=False)
    member = make_profile("001010000000050", published=True)
    registry.publish(member)
    stub, enb = build_stub(sim, registry)
    ue_member = attach_ue(sim, enb, member)
    ue_stranger = attach_ue(sim, enb, stranger)
    sim.run(until=5.0)
    assert ue_member.state is UeState.ATTACHED
    assert ue_stranger.state is UeState.REJECTED
