"""E10 — §4.3: the three registry designs, measured.

"The dLTE architecture does not require a particular license paradigm,
as long as the registry is open and accurately reports which access
points operate in each region."

Three designs (SAS, federated, blockchain) under the same join/discover
workload, plus failure injection halfway through. Expected shape: SAS
fastest but fully dark when down; federated nearly as fast with only
regional darkness; blockchain orders-of-magnitude slower to *join* but
instant to read and impossible to take down.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.geo.placement import uniform_disk_placement
from repro.metrics.stats import summarize
from repro.metrics.tables import ResultTable
from repro.phy.bands import get_band
from repro.simcore.simulator import Simulator
from repro.spectrum.blockchain import BlockchainRegistry
from repro.spectrum.federated import FederatedRegistry
from repro.spectrum.grants import ApRecord
from repro.spectrum.sas import SasRegistry

import numpy as np


def _records(n_aps: int, seed: int) -> List[ApRecord]:
    rng = np.random.default_rng(seed)
    band = get_band("lte5")
    positions = uniform_disk_placement(rng, n_aps, 30_000.0)
    return [ApRecord(f"ap{i}", pos, band, 58.0)
            for i, pos in enumerate(positions)]


def _measure(registry_name: str, make_registry, n_aps: int,
             seed: int) -> Dict[str, float]:
    sim = Simulator(seed)
    registry = make_registry(sim)
    records = _records(n_aps, seed)
    join_latency: Dict[str, float] = {}
    join_requested: Dict[str, float] = {}

    def join(record: ApRecord) -> None:
        join_requested[record.ap_id] = sim.now
        registry.request_grant(
            record,
            lambda grant, ap=record.ap_id: (
                join_latency.__setitem__(ap, sim.now - join_requested[ap])
                if grant is not None else None))

    # APs join over the first 10 s
    for i, record in enumerate(records):
        sim.schedule(10.0 * i / n_aps, join, record)
    sim.run(until=600.0)

    # discovery latency from a sample of joined APs
    discover_latency: List[float] = []
    sample = [r.ap_id for r in records if r.ap_id in join_latency][:10]
    for ap_id in sample:
        t0 = sim.now
        registry.discover_neighbors(
            ap_id, lambda lst, t=t0: discover_latency.append(sim.now - t))
        sim.run(until=sim.now + 5.0)

    joins = list(join_latency.values())
    return {
        "join_mean_s": (sum(joins) / len(joins)) if joins else float("nan"),
        "join_p95_s": (summarize(joins)["p95"] if joins else float("nan")),
        "joined": float(len(joins)),
        "discover_mean_ms": (1e3 * sum(discover_latency)
                             / len(discover_latency)
                             if discover_latency else float("nan")),
    }


def run(n_aps: int = 40, seed: int = 6) -> ResultTable:
    """Join and discovery latency per registry design."""
    table = ResultTable(
        f"E10: registry designs ({n_aps} APs joining)",
        ["registry", "join_mean_s", "join_p95_s", "joined",
         "discover_mean_ms"])
    designs = [
        ("SAS (centralized)", lambda sim: SasRegistry(sim)),
        ("federated (DNS-like)", lambda sim: FederatedRegistry(sim)),
        ("blockchain (PoW)", lambda sim: BlockchainRegistry(
            sim, block_interval_s=10.0, confirmations=2)),
    ]
    for name, factory in designs:
        stats = _measure(name, factory, n_aps, seed)
        table.add_row(registry=name, join_mean_s=stats["join_mean_s"],
                      join_p95_s=stats["join_p95_s"],
                      joined=stats["joined"],
                      discover_mean_ms=stats["discover_mean_ms"])
    return table


def service_continuity_under_outage(n_aps: int = 10, lease_s: float = 60.0,
                                    outage_at_s: float = 100.0,
                                    horizon_s: float = 400.0,
                                    seed: int = 8) -> ResultTable:
    """CBRS leases make a SAS outage silence *running* APs.

    CBRS grants are heartbeat-renewed leases: an AP that cannot reach
    the SAS must stop transmitting when its lease lapses. A permanent
    outage therefore takes the whole federation off the air within one
    lease, while lease-free designs (perpetual grants) keep running —
    the availability story of E10 extended from the control plane into
    the *service* plane.
    """
    table = ResultTable(
        f"E10: service continuity through a registry outage at "
        f"t={outage_at_s:g}s (lease {lease_s:g}s)",
        ["registry", "aps_running_before", "aps_running_after",
         "mean_time_to_silence_s"])

    # -- SAS with CBRS leases ---------------------------------------------------
    sim = Simulator(seed)
    sas = SasRegistry(sim, lease_s=lease_s)
    grants: Dict[str, object] = {}
    silenced_at: Dict[str, float] = {}
    records = _records(n_aps, seed)

    def keep_alive(record):
        """Heartbeat every lease/3; go silent when the lease lapses."""
        while True:
            yield sim.timeout(lease_s / 3.0)
            done = sim.event()
            sas.heartbeat(record.ap_id,
                          lambda g, d=done: d.succeed(g))
            renewed = yield done
            if renewed is not None:
                grants[record.ap_id] = renewed
                continue
            # renewal failed: keep transmitting until the current lease
            # lapses, then go dark (the CBRS mandate)
            grant = grants.get(record.ap_id)
            lapse = (grant.expires_at if grant is not None
                     and grant.expires_at is not None else sim.now)
            silenced_at[record.ap_id] = max(lapse, sim.now)
            return

    for record in records:
        def on_grant(g, r=record):
            if g is not None:
                grants[r.ap_id] = g
                sim.process(keep_alive(r), name=f"hb:{r.ap_id}")
        sas.request_grant(record, on_grant)
    sim.schedule(outage_at_s, sas.fail)
    sim.run(until=horizon_s)
    running_after = n_aps - len(silenced_at)
    mean_silence = (sum(t - outage_at_s for t in silenced_at.values())
                    / len(silenced_at)) if silenced_at else float("nan")
    table.add_row(registry="SAS (CBRS leases)",
                  aps_running_before=len(grants),
                  aps_running_after=running_after,
                  mean_time_to_silence_s=mean_silence)

    # -- lease-free designs: grants are perpetual, outage changes nothing --------
    for name, factory, fail in (
            ("federated (perpetual grants)",
             lambda s: FederatedRegistry(s),
             lambda reg: reg.fail_region((0, 0))),
            ("blockchain (perpetual grants)",
             lambda s: BlockchainRegistry(s, block_interval_s=5.0,
                                          confirmations=1),
             lambda reg: None)):
        sim2 = Simulator(seed)
        registry = factory(sim2)
        joined = {"n": 0}
        for record in _records(n_aps, seed):
            registry.request_grant(
                record, lambda g: joined.__setitem__(
                    "n", joined["n"] + (1 if g else 0)))
        sim2.schedule(outage_at_s, fail, registry)
        sim2.run(until=horizon_s)
        table.add_row(registry=name, aps_running_before=joined["n"],
                      aps_running_after=joined["n"],
                      mean_time_to_silence_s=float("nan"))
    return table


def availability_under_failure(n_aps: int = 30, seed: int = 6
                               ) -> ResultTable:
    """Inject failure mid-join; count how many joins still succeed.

    SAS: total outage. Federated: only the failed region refuses.
    Blockchain: nothing to fail (mining is distributed).
    """
    table = ResultTable(
        "E10: join success with a failure injected at t=5s",
        ["registry", "joined", "refused_or_lost", "availability_pct"])

    def run_design(name, factory, fail):
        sim = Simulator(seed)
        registry = factory(sim)
        records = _records(n_aps, seed)
        outcomes: List[bool] = []
        for i, record in enumerate(records):
            sim.schedule(10.0 * i / n_aps,
                         lambda r=record: registry.request_grant(
                             r, lambda g: outcomes.append(g is not None)))
        sim.schedule(5.0, fail, registry)
        sim.run(until=600.0)
        joined = sum(outcomes)
        table.add_row(registry=name, joined=joined,
                      refused_or_lost=n_aps - joined,
                      availability_pct=100.0 * joined / n_aps)

    run_design("SAS (centralized)", lambda sim: SasRegistry(sim),
               lambda reg: reg.fail())
    run_design("federated (DNS-like)", lambda sim: FederatedRegistry(sim),
               lambda reg: reg.fail_region((0, 0)))
    run_design("blockchain (PoW)",
               lambda sim: BlockchainRegistry(sim, block_interval_s=10.0,
                                              confirmations=2),
               lambda reg: None)  # nothing to fail
    return table
