"""Overload protection: bounded agents, shedding, T3346, conservation.

Covers the control-plane overload layer end to end: the
:class:`~repro.epc.overload.OverloadPolicy` shedding disciplines on a
bare agent, MME/stub admission control answering floods with
``AttachReject(cause="congestion", backoff_s=T)``, the UE honoring the
server's timer with deterministic per-UE jitter, the ``enqueue``
re-entrancy contract, and the conservation law
``enqueued == processed + shed + in_flight`` under every scenario —
including composition with chaos storms and the flash-crowd workload.
"""

import pytest

from repro.enodeb import EnbControlRelay
from repro.epc import (
    CentralizedEpc,
    LocalCoreStub,
    PublishedKeyRegistry,
    UserEquipment,
)
from repro.epc.agents import CallbackAgent, ControlChannel, ControlMessage
from repro.epc.nas import AttachRequest, DetachRequest, Paging
from repro.epc.overload import (
    CLASS_CRITICAL,
    CLASS_NEW_WORK,
    CLASS_PROCEDURE,
    OverloadPolicy,
    message_class,
)
from repro.epc.subscriber import make_profile
from repro.epc.ue import UeState
from repro.invariants import InvariantChecker
from repro.net import AddressPool
from repro.simcore import Simulator, Tracer

AIR_DELAY = 0.005


def _msg(payload, sender=None):
    return ControlMessage(payload=payload, sender=sender)


def _flood(agent, n, payload_fn=None):
    for i in range(n):
        payload = payload_fn(i) if payload_fn else f"m{i}"
        agent.enqueue(_msg(payload))


def _assert_conserved(agent):
    assert agent.enqueued == agent.processed + agent.shed + agent.in_flight
    assert sum(agent.shed_by_cause.values()) == agent.shed


# -- policy construction -----------------------------------------------------------

def test_policy_validates():
    with pytest.raises(ValueError):
        OverloadPolicy(queue_limit=0)
    with pytest.raises(ValueError):
        OverloadPolicy(queue_limit=4, shed="lifo")
    with pytest.raises(ValueError):
        OverloadPolicy(queue_limit=4, shed="deadline", deadline_s=0.0)
    with pytest.raises(ValueError):
        OverloadPolicy(queue_limit=4, admission_limit=0)
    with pytest.raises(ValueError):
        OverloadPolicy(queue_limit=4, congestion_backoff_s=-1.0)


def test_message_classes():
    attach = AttachRequest(ue_id="u", imsi="001")
    assert message_class(attach) == CLASS_NEW_WORK
    assert message_class(DetachRequest(ue_id="u")) == CLASS_CRITICAL
    assert message_class(Paging(ue_id="u")) == CLASS_CRITICAL
    assert message_class("anything else") == CLASS_PROCEDURE


# -- shedding disciplines ----------------------------------------------------------

def test_unbounded_by_default():
    sim = Simulator(0)
    agent = CallbackAgent(sim, "a", service_time_s=1e-3)
    _flood(agent, 500)
    assert agent.overload is None
    assert agent.shed == 0
    assert agent.peak_queue_depth > 400  # the seed's infinite patience
    sim.run()
    assert agent.processed == 500
    _assert_conserved(agent)


def test_drop_tail_bounds_queue():
    sim = Simulator(0)
    agent = CallbackAgent(sim, "a", service_time_s=1e-3)
    agent.configure_overload(OverloadPolicy(queue_limit=8))
    _flood(agent, 100)
    assert agent.peak_queue_depth <= 8
    assert agent.shed_by_cause["queue-full"] == agent.shed > 0
    _assert_conserved(agent)
    sim.run()
    assert agent.processed + agent.shed == 100
    _assert_conserved(agent)


def test_deadline_shedding_expires_stale_waiters():
    sim = Simulator(0)
    agent = CallbackAgent(sim, "a", service_time_s=10.0)  # glacial server
    agent.configure_overload(
        OverloadPolicy(queue_limit=4, shed="deadline", deadline_s=0.5))
    _flood(agent, 5)  # 1 in service, 4 queued (at the limit) at t=0
    assert agent.shed_by_cause.get("queue-full", 0) == 0
    # by t=2 the queued messages have waited 2 s >> 0.5 s deadline; a
    # fresh arrival evicts them instead of being dropped itself
    sim.run(until=2.0)
    agent.enqueue(_msg("late"))
    assert agent.shed_by_cause["deadline"] == 4
    assert [m.payload for m in agent._queue] == ["late"]
    _assert_conserved(agent)
    sim.run()
    assert agent.processed == 2  # the first message and the late arrival
    _assert_conserved(agent)


def test_priority_shedding_lets_critical_messages_through():
    sim = Simulator(0)
    agent = CallbackAgent(sim, "a", service_time_s=1.0)
    agent.configure_overload(OverloadPolicy(queue_limit=3, shed="priority"))
    _flood(agent, 5, lambda i: AttachRequest(ue_id=f"u{i}", imsi="001"))
    # queue full of new-work attaches: another attach is refused ...
    agent.enqueue(_msg(AttachRequest(ue_id="u9", imsi="001")))
    assert agent.shed_by_cause["queue-full"] >= 1
    # ... but a Detach evicts the youngest attach and joins the queue
    before = agent.shed
    agent.enqueue(_msg(DetachRequest(ue_id="u1")))
    assert agent.shed == before + 1
    assert agent.shed_by_cause["priority"] == 1
    queued = [type(m.payload).__name__ for m in agent._queue]
    assert "DetachRequest" in queued
    _assert_conserved(agent)
    sim.run()
    _assert_conserved(agent)


def test_priority_never_evicts_equal_or_higher_class():
    sim = Simulator(0)
    agent = CallbackAgent(sim, "a", service_time_s=1.0)
    agent.configure_overload(OverloadPolicy(queue_limit=2, shed="priority"))
    _flood(agent, 3, lambda i: DetachRequest(ue_id=f"u{i}"))
    # queue is all critical: an arriving Paging (also critical) must not
    # evict a peer — it is itself refused
    agent.enqueue(_msg(Paging(ue_id="u9")))
    assert agent.shed_by_cause["queue-full"] == 1
    assert agent.shed_by_cause.get("priority", 0) == 0
    _assert_conserved(agent)


# -- enqueue re-entrancy (regression) ----------------------------------------------

def test_handler_may_enqueue_to_self():
    """A handler that feeds its own agent must defer, not recurse."""
    sim = Simulator(0)
    seen = []

    def handler(message):
        seen.append(message.payload)
        if message.payload == "first":
            agent.enqueue(_msg("echo"))  # re-entrant offer mid-handle

    agent = CallbackAgent(sim, "a", handler, service_time_s=1e-3)
    agent.enqueue(_msg("first"))
    sim.run()
    assert seen == ["first", "echo"]
    _assert_conserved(agent)


def test_mutual_enqueue_ping_pong():
    """Two agents feeding each other synchronously never re-enter."""
    sim = Simulator(0)
    hops = []

    def make_handler(me, peer_box):
        def handler(message):
            hops.append(me)
            if len(hops) < 10:
                peer_box[0].enqueue(_msg(f"hop{len(hops)}"))
        return handler

    box_a, box_b = [None], [None]
    a = CallbackAgent(sim, "a", make_handler("a", box_b),
                      service_time_s=1e-3)
    b = CallbackAgent(sim, "b", make_handler("b", box_a),
                      service_time_s=0.0)  # zero service: same-time kick
    box_a[0], box_b[0] = a, b
    a.enqueue(_msg("hop0"))
    sim.run()
    assert hops == ["a", "b"] * 5
    for agent in (a, b):
        _assert_conserved(agent)


# -- admission control + T3346 end to end ------------------------------------------

def _centralized(sim, n_ues, admission_limit, **retry):
    epc = CentralizedEpc(sim, AddressPool("10.0.0.0/16"))
    enb = EnbControlRelay(sim, "enb0")
    channel = epc.connect_enb(enb, backhaul_delay_s=0.03)
    enb.connect_core(channel)
    epc.mme.configure_overload(OverloadPolicy(
        queue_limit=64, admission_limit=admission_limit,
        congestion_backoff_s=1.0))
    ues = []
    for i in range(n_ues):
        prof = make_profile(f"0010100000{i:05d}")
        epc.provision(prof)
        ue = UserEquipment(sim, prof)
        air = ControlChannel(sim, ue, enb, AIR_DELAY, f"air:{ue.name}")
        ue.connect_air(air)
        enb.attach_ue(ue.ue_id, air)
        ue.start_attach_with_retry(**retry)
        ues.append(ue)
    return epc, ues


def test_mme_admission_rejects_with_congestion_backoff():
    sim = Simulator(3)
    epc, ues = _centralized(sim, n_ues=24, admission_limit=4,
                            max_attempts=4, timeout_s=2.0,
                            base_backoff_s=0.25, max_backoff_s=2.0)
    sim.run(until=30.0)
    rejected = [ue for ue in ues if ue.congestion_rejects > 0]
    assert rejected, "flood never tripped admission control"
    assert epc.mme.shed_by_cause["congestion"] >= len(rejected)
    # congestion rejects are refused at the door: cheaper than service
    assert epc.mme.attaches_rejected >= len(rejected)
    # ... and the backoff let everyone in eventually (24 UEs is well
    # within 30 s of retried capacity)
    assert all(ue.state is UeState.ATTACHED for ue in ues)
    _assert_conserved(epc.mme)


def test_stub_admission_rejects_with_congestion_backoff():
    sim = Simulator(4)
    registry = PublishedKeyRegistry(sim, lookup_rtt_s=0.005)
    stub = LocalCoreStub(sim, "stub", AddressPool("100.64.0.0/24"),
                         registry=registry)
    enb = EnbControlRelay(sim, "enb0")
    s1 = ControlChannel(sim, enb, stub, 0.1e-3, "s1-local")
    enb.connect_core(s1)
    stub.connect_enb(s1)
    stub.configure_overload(OverloadPolicy(
        queue_limit=64, admission_limit=2, congestion_backoff_s=0.5))
    ues = []
    for i in range(12):
        prof = make_profile(f"0010100000{i:05d}", published=True)
        registry.publish(prof)
        ue = UserEquipment(sim, prof)
        air = ControlChannel(sim, ue, enb, AIR_DELAY, f"air:{ue.name}")
        ue.connect_air(air)
        enb.attach_ue(ue.ue_id, air)
        ue.start_attach_with_retry(max_attempts=8, timeout_s=1.0,
                                   base_backoff_s=0.25, max_backoff_s=1.0,
                                   jitter_frac=0.5)
        ues.append(ue)
    sim.run(until=30.0)
    assert stub.shed_by_cause.get("congestion", 0) > 0
    assert any(ue.congestion_rejects > 0 for ue in ues)
    assert all(ue.state is UeState.ATTACHED for ue in ues)
    _assert_conserved(stub)


def test_ue_honors_server_backoff_timer():
    """After a congestion reject the UE waits at least the server's
    T3346 before the next attempt — even when its own exponential
    backoff would retry sooner."""
    sim = Simulator(5)
    tracer = Tracer(categories=["nas"])
    sim.tracer = tracer
    epc, ues = _centralized(sim, n_ues=12, admission_limit=2,
                            max_attempts=3, timeout_s=2.0,
                            base_backoff_s=0.01,  # eager retrier
                            max_backoff_s=0.02)
    sim.run(until=20.0)
    rejected = [ue for ue in ues if ue.congestion_rejects > 0]
    assert rejected
    waits = [event.fields["backoff_s"]
             for event in tracer.events("nas")
             if "attach retry backoff" in event.message]
    # every post-reject wait honors the 1.0 s server timer; the eager
    # 10 ms personal backoff alone can never reach it
    assert any(w >= 1.0 for w in waits)


# -- deterministic jitter (satellite: per-UE desync) -------------------------------

def _retry_waits(seed, n_ues=4):
    """Backoff waits per UE against a dead core (every attempt times
    out), keyed by UE name."""
    sim = Simulator(seed)
    tracer = Tracer(categories=["nas"])
    sim.tracer = tracer
    epc = CentralizedEpc(sim, AddressPool("10.0.0.0/16"))
    enb = EnbControlRelay(sim, "enb0")
    channel = epc.connect_enb(enb, backhaul_delay_s=0.03)
    enb.connect_core(channel)
    channel.set_up(False)  # dead core: pure timeout-driven retries
    for i in range(n_ues):
        prof = make_profile(f"0010100000{i:05d}")
        epc.provision(prof)
        ue = UserEquipment(sim, prof)
        air = ControlChannel(sim, ue, enb, AIR_DELAY, f"air:{ue.name}")
        ue.connect_air(air)
        enb.attach_ue(ue.ue_id, air)
        ue.start_attach_with_retry(max_attempts=4, timeout_s=0.5,
                                   base_backoff_s=0.5, max_backoff_s=4.0,
                                   jitter_frac=0.5)
    sim.run(until=30.0)
    waits = {}
    for event in tracer.events("nas"):
        if "attach retry backoff" in event.message:
            name = event.message.split(":")[0]
            waits.setdefault(name, []).append(event.fields["backoff_s"])
    return waits


def test_backoff_jitter_desynchronizes_ues():
    waits = _retry_waits(seed=7)
    assert len(waits) == 4 and all(len(w) == 3 for w in waits.values())
    # same attempt, different UEs: jitter must spread them apart
    first_waits = {name: w[0] for name, w in waits.items()}
    assert len(set(first_waits.values())) == len(first_waits)


def test_backoff_jitter_reproducible_from_seed():
    assert _retry_waits(seed=7) == _retry_waits(seed=7)
    assert _retry_waits(seed=7) != _retry_waits(seed=8)


# -- crash accounting --------------------------------------------------------------

def test_stub_crash_sheds_queue_with_cause():
    sim = Simulator(6)
    stub = LocalCoreStub(sim, "stub", AddressPool("100.64.0.0/24"),
                         service_time_s=1.0)
    _flood(stub, 5)
    assert stub.in_flight == 5
    stub.crash()
    assert stub.shed_by_cause["crash"] == 4  # waiters; 1 stays in service
    _assert_conserved(stub)
    sim.run(until=2.0)
    _assert_conserved(stub)


# -- conservation under the invariant checker --------------------------------------

def test_watch_agent_passes_under_overload():
    sim = Simulator(0)
    checker = InvariantChecker(sim)
    agent = CallbackAgent(sim, "a", service_time_s=1e-3)
    agent.configure_overload(OverloadPolicy(queue_limit=4, shed="priority"))
    checker.watch_agent(agent)
    _flood(agent, 50, lambda i: AttachRequest(ue_id=f"u{i}", imsi="001"))
    assert checker.check_now() == []
    sim.run()
    assert checker.check_now() == []
    assert agent.shed > 0


def test_flash_crowd_during_flapping_backhaul_composes():
    """Chaos x workload: a flash crowd lands while the busiest AP's
    backhaul flaps. Every invariant (including agent conservation) must
    stay green, and the shed ledger must balance across all agents."""
    from repro.core.network import DLTENetwork
    from repro.faults import FaultInjector, compose_scenario, prepare_scenario
    from repro.invariants import iter_control_agents, watch_network
    from repro.workloads.topology import RuralTown
    from repro.workloads.traffic import FlashCrowdAttachSource

    town = RuralTown(radius_m=1500, n_ues=8, n_aps=2, seed=5)
    net = DLTENetwork.build(town, seed=5)
    sim = net.sim
    prepare_scenario("flapping-backhaul", net)
    checker = watch_network(net)
    policy = OverloadPolicy(queue_limit=8, shed="priority",
                            admission_limit=6, congestion_backoff_s=1.0)
    for ap in net.aps.values():
        ap.stub.configure_overload(policy)

    storm = FlashCrowdAttachSource(
        sim, [net.ues[name] for name in sorted(net.ues)], window_s=0.5,
        retry_kwargs=dict(max_attempts=6, timeout_s=1.0,
                          base_backoff_s=0.5, max_backoff_s=4.0,
                          jitter_frac=0.5))
    storm.start()
    plan = compose_scenario("flapping-backhaul", net, FaultInjector(sim),
                            sim.now + 0.25)  # flaps start mid-crowd
    sim.run(until=max(sim.now + 20.0, plan.end_s + 10.0))

    checker.verify()  # raises if any law broke during the storm
    assert storm.attaches_started == 8
    for agent in iter_control_agents(net):
        _assert_conserved(agent)


def test_e17_composes_with_chaos_and_invariants():
    """The packaged experiment runs a storm under cascading stub
    crashes with the checker armed — and still renders a sane table."""
    from repro.experiments import e17_attach_storm

    table = e17_attach_storm.run(
        intensities=(1,), n_aps=2, ue_per_ap=3, horizon_s=12.0,
        scenario="cascading-stub-crashes", invariants=True)
    assert len(table) == 2
    assert all(0.0 <= s <= 1.0 for s in table.column("attach_success"))


def test_watch_agent_catches_cooked_books():
    sim = Simulator(0)
    checker = InvariantChecker(sim)
    agent = CallbackAgent(sim, "a", service_time_s=1e-3)
    checker.watch_agent(agent)
    agent.enqueued += 1  # a message the agent never saw
    violations = checker.check_now()
    assert violations and "leak" in violations[0].detail
