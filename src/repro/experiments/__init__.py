"""The experiment harness: every table, figure, and quantified claim.

One module per experiment id (see DESIGN.md §3). Each exposes a ``run``
function returning one or more :class:`repro.metrics.ResultTable`
objects; the benchmarks under ``benchmarks/`` execute them and print the
rows recorded in EXPERIMENTS.md.
"""

from repro.experiments import (
    e3_range,
    e4_weak_signal,
    e5_coordination,
    e6_mobility,
    e7_core_scaling,
    e8_hidden_terminal,
    e9_x2_bandwidth,
    e10_registries,
    e11_mesh_backhaul,
    e12_deployment_cost,
    e13_idle_paging,
    e14_nr_upgrade,
    e15_reachability,
    e16_resilience,
    e17_attach_storm,
    e18_sustained_overload,
    e19_city,
    f1_path_comparison,
    t1_design_space,
)

ALL_EXPERIMENTS = {
    "T1": t1_design_space,
    "F1": f1_path_comparison,
    "E3": e3_range,
    "E4": e4_weak_signal,
    "E5": e5_coordination,
    "E6": e6_mobility,
    "E7": e7_core_scaling,
    "E8": e8_hidden_terminal,
    "E9": e9_x2_bandwidth,
    "E10": e10_registries,
    "E11": e11_mesh_backhaul,
    "E12": e12_deployment_cost,
    "E13": e13_idle_paging,
    "E14": e14_nr_upgrade,
    "E15": e15_reachability,
    "E16": e16_resilience,
    "E17": e17_attach_storm,
    "E18": e18_sustained_overload,
    "E19": e19_city,
}

__all__ = ["ALL_EXPERIMENTS"]
