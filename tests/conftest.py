"""Shared test fixtures.

Flight-recorder post-mortems default to the current directory; tests
that intentionally crash experiments or kill workers would litter the
repo root with ``postmortem-*.json``, so every test gets a throwaway
dump directory unless it sets its own.
"""

import pytest

from repro.telemetry import flightrec


@pytest.fixture(autouse=True)
def _postmortems_to_tmp(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_POSTMORTEM_DIR", str(tmp_path))
    # tests drive main() which may override via --postmortem-dir; reset
    # module state so one test's choice never leaks into the next
    flightrec.set_dump_dir(None)
    yield
    flightrec.set_dump_dir(None)
