"""Unit tests for AKA crypto, subscriber DB, and the published-key registry."""

import pytest

from repro.epc import PublishedKeyRegistry, SubscriberDb
from repro.epc.crypto import (
    generate_auth_vector,
    ue_compute_response,
    ue_verify_network,
)
from repro.epc.subscriber import SubscriberProfile, make_profile
from repro.simcore import Simulator

RAND = bytes(range(16))
KEY = bytes(16)


def test_vector_fields_shaped():
    v = generate_auth_vector(KEY, RAND)
    assert len(v.rand) == 16 and len(v.xres) == 16
    assert len(v.autn) == 16 and len(v.kasme) == 32


def test_res_matches_xres_with_same_key():
    v = generate_auth_vector(KEY, RAND)
    assert ue_compute_response(KEY, RAND) == v.xres


def test_res_differs_with_wrong_key():
    v = generate_auth_vector(KEY, RAND)
    assert ue_compute_response(b"x" * 16, RAND) != v.xres


def test_ue_verifies_genuine_network():
    v = generate_auth_vector(KEY, RAND, sqn=5)
    assert ue_verify_network(KEY, RAND, v.autn, sqn=5)


def test_ue_rejects_imposter_network():
    v = generate_auth_vector(b"y" * 16, RAND, sqn=0)
    assert not ue_verify_network(KEY, RAND, v.autn, sqn=0)


def test_ue_rejects_replayed_sqn():
    v = generate_auth_vector(KEY, RAND, sqn=1)
    assert not ue_verify_network(KEY, RAND, v.autn, sqn=2)


def test_vectors_differ_per_rand():
    v1 = generate_auth_vector(KEY, RAND)
    v2 = generate_auth_vector(KEY, bytes(reversed(RAND)))
    assert v1.xres != v2.xres and v1.kasme != v2.kasme


def test_bad_rand_length_rejected():
    with pytest.raises(ValueError):
        generate_auth_vector(KEY, b"short")
    with pytest.raises(ValueError):
        ue_compute_response(KEY, b"short")


# -- profiles / DB --------------------------------------------------------------

def test_profile_validation():
    with pytest.raises(ValueError):
        SubscriberProfile(imsi="12345", key=bytes(16))
    with pytest.raises(ValueError):
        SubscriberProfile(imsi="001010000000001", key=b"short")


def test_make_profile_deterministic():
    a = make_profile("001010000000001")
    b = make_profile("001010000000001")
    assert a.key == b.key
    assert a.key != make_profile("001010000000002").key


def test_db_provision_lookup_deprovision():
    db = SubscriberDb()
    p = make_profile("001010000000001")
    db.provision(p)
    assert db.lookup(p.imsi) is p
    assert db.lookup("001019999999999") is None
    assert len(db) == 1
    db.deprovision(p.imsi)
    assert len(db) == 0
    with pytest.raises(KeyError):
        db.deprovision(p.imsi)


# -- published key registry -------------------------------------------------------

def test_registry_publish_and_async_lookup():
    sim = Simulator(0)
    reg = PublishedKeyRegistry(sim, lookup_rtt_s=0.05)
    p = make_profile("001010000000007", published=True)
    reg.publish(p)
    got = []
    reg.lookup(p.imsi, lambda key: got.append((sim.now, key)))
    sim.run()
    assert got == [(0.05, p.key)]


def test_registry_refuses_private_profiles():
    """The consent guard: carrier SIM keys never reach the open registry."""
    sim = Simulator(0)
    reg = PublishedKeyRegistry(sim)
    private = make_profile("001010000000008", published=False)
    with pytest.raises(ValueError, match="not marked published"):
        reg.publish(private)
    assert len(reg) == 0


def test_registry_unknown_imsi_returns_none():
    sim = Simulator(0)
    reg = PublishedKeyRegistry(sim, lookup_rtt_s=0.01)
    got = []
    reg.lookup("001010000000009", got.append)
    sim.run()
    assert got == [None]


def test_registry_revoke():
    sim = Simulator(0)
    reg = PublishedKeyRegistry(sim)
    p = make_profile("001010000000010", published=True)
    reg.publish(p)
    reg.revoke(p.imsi)
    assert reg.peek(p.imsi) is None
    with pytest.raises(KeyError):
        reg.revoke(p.imsi)


def test_registry_validates_rtt():
    with pytest.raises(ValueError):
        PublishedKeyRegistry(Simulator(0), lookup_rtt_s=-1)
