"""Deployment topologies: where APs and users stand.

Two scenario generators anchor the experiments:

* :class:`RuralTown` — the paper's §5 deployment shape: one (or a few)
  AP sites covering a town of a given radius, UEs clustered around the
  town center. "One site covers the entire town, and is deployed on the
  gym where power and backhaul were available."
* :class:`FarmCorridor` — the E6 road: APs strung along a straight road
  at a spacing, UEs traveling along it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.geo.placement import (grid_placement, road_placement,
                                 uniform_disk_placement)
from repro.geo.points import Point


@dataclass
class RuralTown:
    """A disk-shaped town with central AP site(s).

    Attributes:
        radius_m: town radius (the Papua site covers ~1-2 km).
        n_ues: resident user devices.
        n_aps: AP sites; the first is at the center (the gym), later ones
            spread evenly at 60% radius.
        seed: placement RNG seed.
        backhaul_delay_s: AP Internet access delay (rural ISP).
        backhaul_rate_bps: AP uplink capacity.
    """

    radius_m: float = 1500.0
    n_ues: int = 40
    n_aps: int = 1
    seed: int = 0
    backhaul_delay_s: float = 0.025
    backhaul_rate_bps: float = 50e6

    def __post_init__(self) -> None:
        if self.radius_m <= 0:
            raise ValueError("radius must be positive")
        if self.n_ues < 0 or self.n_aps < 1:
            raise ValueError("need n_ues >= 0 and n_aps >= 1")

    def ap_positions(self) -> List[Point]:
        """Site positions: center first, then a ring."""
        if self.n_aps == 1:
            return [Point(0.0, 0.0)]
        ring_r = 0.6 * self.radius_m
        angle = 2 * np.pi / (self.n_aps - 1)
        return [Point(0.0, 0.0)] + [
            Point(ring_r * float(np.cos(i * angle)),
                  ring_r * float(np.sin(i * angle)))
            for i in range(self.n_aps - 1)]

    def ue_positions(self) -> List[Point]:
        """Residents, uniform over the town disk."""
        rng = np.random.default_rng(self.seed)
        return uniform_disk_placement(rng, self.n_ues, self.radius_m)


@dataclass
class FarmCorridor:
    """APs along a straight road; UEs drive the road (E6's geometry).

    Attributes:
        n_aps: AP count along the road.
        ap_spacing_m: distance between adjacent AP sites.
        n_ues: travelers.
        seed: RNG seed for traveler start offsets.
    """

    n_aps: int = 4
    ap_spacing_m: float = 2000.0
    n_ues: int = 5
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_aps < 1 or self.ap_spacing_m <= 0:
            raise ValueError("need n_aps >= 1 and positive spacing")

    @property
    def length_m(self) -> float:
        """Road length from the first AP to the last."""
        return (self.n_aps - 1) * self.ap_spacing_m

    def ap_positions(self) -> List[Point]:
        """AP sites on the road."""
        return road_placement(self.n_aps, self.ap_spacing_m)

    def ue_starts(self) -> List[Point]:
        """Traveler starting points, spread along the first half."""
        rng = np.random.default_rng(self.seed)
        xs = rng.uniform(0.0, max(self.length_m / 2, 1.0), size=self.n_ues)
        return [Point(float(x), 20.0) for x in xs]  # 20 m off the AP line


@dataclass
class CityGrid:
    """A dense urban grid of cell sites (E19's geometry).

    The city-scale scenario: ``n_cells`` sites on a near-square street
    grid at ``spacing_m``, each serving a mix of packet-fidelity
    foreground UEs and a fluid background population. Laid out
    row-major, so :func:`repro.geo.partition.stripe_partition` cuts the
    city into compact vertical stripes.

    Attributes:
        n_cells: cell sites in the city.
        spacing_m: inter-site distance (urban macro ~500 m).
    """

    n_cells: int = 100
    spacing_m: float = 500.0

    def __post_init__(self) -> None:
        if self.n_cells < 1 or self.spacing_m <= 0:
            raise ValueError("need n_cells >= 1 and positive spacing")

    @property
    def n_cols(self) -> int:
        """Grid width: the ceiling square root, so the city is near-square."""
        return int(np.ceil(np.sqrt(self.n_cells)))

    def cell_positions(self) -> List[Point]:
        """Site positions, row-major on the grid, truncated to n_cells."""
        cols = self.n_cols
        rows = int(np.ceil(self.n_cells / cols))
        return grid_placement(cols, rows, self.spacing_m)[: self.n_cells]
