"""E7 — §4.1 "Local Cores": one shared core vs one stub per site.

An attach storm (every UE attaches within a short window) against:

* one centralized EPC serving all eNodeBs over backhaul, whose MME and
  HSS are serial processors — load concentrates, queues build;
* one :class:`LocalCoreStub` per AP — load is embarrassingly parallel,
  "the one stub per site model naturally scales as the total number of
  APs increases."

Reported vs AP count: mean/p95 attach latency, the MME's peak queue
depth, and its utilization during the storm.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.enodeb.relay import EnbControlRelay
from repro.epc.agents import ControlChannel
from repro.epc.centralized import CentralizedEpc
from repro.epc.stub import LocalCoreStub
from repro.epc.subscriber import make_profile
from repro.epc.ue import UeState, UserEquipment
from repro.metrics.stats import percentile
from repro.metrics.tables import ResultTable
from repro.net.addressing import AddressPool
from repro.runner import parallel_map
from repro.simcore.simulator import Simulator

AIR_DELAY_S = 0.005
BACKHAUL_DELAY_S = 0.030
STORM_WINDOW_S = 1.0


def _attach_storm_centralized(n_aps: int, ue_per_ap: int,
                              seed: int) -> Dict[str, float]:
    sim = Simulator(seed)
    epc = CentralizedEpc(sim, AddressPool("10.0.0.0/12"))
    enbs: List[EnbControlRelay] = []
    for i in range(n_aps):
        enb = EnbControlRelay(sim, f"enb{i}")
        channel = epc.connect_enb(enb, backhaul_delay_s=BACKHAUL_DELAY_S)
        enb.connect_core(channel)
        enbs.append(enb)
    ues = _spawn_ues(sim, enbs, n_aps, ue_per_ap,
                     provision=lambda p: epc.provision(p))
    sim.run(until=STORM_WINDOW_S + 30.0)
    return _harvest(sim, ues, extra={
        "core_peak_queue": float(epc.mme.peak_queue_depth),
        "core_utilization": epc.mme.utilization(sim.now),
    })


def _attach_storm_dlte(n_aps: int, ue_per_ap: int,
                       seed: int) -> Dict[str, float]:
    sim = Simulator(seed)
    stubs: List[LocalCoreStub] = []
    enbs: List[EnbControlRelay] = []
    for i in range(n_aps):
        stub = LocalCoreStub(sim, f"stub{i}",
                             AddressPool(f"10.{(i % 250) + 1}.0.0/16"))
        enb = EnbControlRelay(sim, f"enb{i}")
        s1 = ControlChannel(sim, enb, stub, 0.1e-3, f"s1:{i}")
        enb.connect_core(s1)
        stub.connect_enb(s1)
        stubs.append(stub)
        enbs.append(enb)

    def provision(profile):
        # published keys are pre-cached (steady state after first fetch)
        for stub in stubs:
            stub.preload_key(profile.imsi, profile.key)

    ues = _spawn_ues(sim, enbs, n_aps, ue_per_ap, provision=provision)
    sim.run(until=STORM_WINDOW_S + 30.0)
    peak = max(stub.peak_queue_depth for stub in stubs)
    util = max(stub.utilization(sim.now) for stub in stubs)
    return _harvest(sim, ues, extra={
        "core_peak_queue": float(peak),
        "core_utilization": util,
    })


def _spawn_ues(sim, enbs, n_aps, ue_per_ap, provision):
    ues: List[UserEquipment] = []
    total = n_aps * ue_per_ap
    for k in range(total):
        profile = make_profile(f"9991200{k:08d}")
        provision(profile)
        ue = UserEquipment(sim, profile, name=f"ue{k}")
        enb = enbs[k % n_aps]
        air = ControlChannel(sim, ue, enb, AIR_DELAY_S, f"air:{k}")
        ue.connect_air(air)
        enb.attach_ue(ue.ue_id, air)
        # uniform storm over the window
        sim.schedule(STORM_WINDOW_S * k / max(total, 1), ue.start_attach)
        ues.append(ue)
    return ues


def _harvest(sim, ues, extra) -> Dict[str, float]:
    latencies = [ue.attach_latency_s for ue in ues
                 if ue.state is UeState.ATTACHED]
    failures = sum(1 for ue in ues if ue.state is not UeState.ATTACHED)
    out = {
        "mean_attach_s": (sum(latencies) / len(latencies)
                          if latencies else float("nan")),
        "p95_attach_s": (percentile(latencies, 95)
                         if latencies else float("nan")),
        "failures": float(failures),
    }
    out.update(extra)
    return out


_ARCHITECTURES = (("centralized EPC", _attach_storm_centralized),
                  ("dLTE stubs", _attach_storm_dlte))


def _run_cell(task) -> Dict[str, float]:
    """Picklable cell body for :func:`repro.runner.parallel_map`."""
    arch, n_aps, ue_per_ap, seed = task
    fn = dict(_ARCHITECTURES)[arch]
    return fn(n_aps, ue_per_ap, seed)


def run(ap_counts: Optional[List[int]] = None, ue_per_ap: int = 8,
        seed: int = 3) -> ResultTable:
    """Attach-storm latency and core load vs AP count, both shapes.

    The MME/HSS process ~1 message/ms; each attach costs the MME four
    messages, so the shared core saturates near 250 attaches/s — i.e.
    between 32 and 128 APs at 8 UEs/AP over the 1 s storm — while the
    per-site stubs never see more than their own site's load.

    Each (architecture, AP count) cell is an independent simulation with
    a fixed seed, so under ``--jobs N`` the cells fan out over workers
    (UE count as the cost hint) with byte-identical output.
    """
    counts = ap_counts or [1, 8, 32, 128]
    table = ResultTable(
        f"E7: core scaling under an attach storm ({ue_per_ap} UEs/AP)",
        ["architecture", "n_aps", "n_ues", "mean_attach_ms",
         "p95_attach_ms", "core_peak_queue", "core_utilization"])
    cells = [(name, n_aps, ue_per_ap, seed)
             for n_aps in counts for name, _ in _ARCHITECTURES]
    results = parallel_map(_run_cell, cells,
                           costs=[n_aps for _, n_aps, _, _ in cells])
    for (name, n_aps, _, _), stats in zip(cells, results):
        table.add_row(architecture=name, n_aps=n_aps,
                      n_ues=n_aps * ue_per_ap,
                      mean_attach_ms=stats["mean_attach_s"] * 1e3,
                      p95_attach_ms=stats["p95_attach_s"] * 1e3,
                      core_peak_queue=stats["core_peak_queue"],
                      core_utilization=stats["core_utilization"])
    return table
