"""The event loop: a simulated clock over a binary-heap run queue."""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Generator, List, Optional, Tuple

from repro.simcore.events import AllOf, AnyOf, Event, Timeout
from repro.simcore.rng import RngRegistry
from repro.telemetry import Telemetry
from repro.telemetry import flightrec
from repro.telemetry.hub import HUB


class ScheduledCall:
    """Handle for a scheduled callback; supports cancellation.

    Cancellation is lazy: the heap entry stays queued and is skipped at
    dispatch. The owning simulator counts cancelled-but-queued entries
    and compacts the heap when they dominate (see
    :meth:`Simulator.live_queue_length`), so timer churn — arm, cancel,
    re-arm, the RTO pattern — cannot grow the heap or tax ``heappop``
    with log-N passes over garbage.
    """

    __slots__ = ("time", "cancelled", "_sim")

    def __init__(self, time: float, sim: "Optional[Simulator]" = None) -> None:
        self.time = time
        self.cancelled = False
        self._sim = sim

    def cancel(self) -> None:
        """Prevent the callback from running (no-op if already run)."""
        if not self.cancelled:
            self.cancelled = True
            if self._sim is not None:
                self._sim._note_cancelled()


class Simulator:
    """A discrete-event simulator with a float-seconds clock.

    Determinism: events at equal times run in scheduling (FIFO) order,
    enforced by a monotonic sequence number in the heap entries. All
    randomness flows through :attr:`rng`, a registry of named
    ``numpy.random.Generator`` streams derived from one seed, so a run is
    fully reproducible from ``(seed, topology)``.
    """

    def __init__(self, seed: int = 0, start_time: float = 0.0) -> None:
        self.now: float = start_time
        self.rng = RngRegistry(seed)
        self._heap: List[Tuple[float, int, ScheduledCall, Callable, tuple]] = []
        self._seq = itertools.count()
        self._running = False
        self.events_executed = 0
        #: cancelled entries still sitting in the heap (heap hygiene)
        self._cancelled = 0
        #: most entries the heap ever held at once — the memory/log-N
        #: footprint of a run; exported by the profiler and bench JSON
        self.heap_high_water = 0
        #: deepest ControlAgent queue seen in this sim and total messages
        #: shed by overload protection — maintained by repro.epc.agents,
        #: exported alongside heap_high_water (plain ints: passive)
        self.agent_peak_queue = 0
        self.agents_shed = 0
        #: deepest link egress queue seen and total ECN CE-marks applied
        #: — maintained by repro.net.links, same passive-int pattern
        self.link_peak_queue = 0
        self.ecn_marks = 0
        self._tracer = None
        self._profiler = None
        #: True iff a tracer or profiler is installed — the one flag the
        #: per-event hot path checks, so uninstrumented runs make zero
        #: telemetry calls per event (asserted by tests)
        self._observed = False
        #: always-on metrics + span bundle (recording is passive: no RNG,
        #: no scheduling — instrumented runs stay bit-identical)
        self.telemetry = Telemetry(lambda: self.now)
        #: flight-recorder ring of the last N dispatched events, written
        #: in place by the dispatch loop (two slot stores + an index
        #: bump per event — no allocation, no telemetry calls) and read
        #: only by post-mortem dumps (repro.telemetry.flightrec)
        self._fr_ring: List[list] = [[0.0, None]
                                     for _ in range(flightrec.FLIGHT_CAPACITY)]
        self._fr_idx = 0
        flightrec.track(self)
        HUB.adopt(self)

    # tracer/profiler stay plain assignable attributes to callers, but
    # route through properties so the dispatch loop and trace() can test
    # a single precomputed flag instead of two attributes per event.

    @property
    def tracer(self):
        """Optional simcore.trace.Tracer; see :meth:`trace`."""
        return self._tracer

    @tracer.setter
    def tracer(self, value) -> None:
        self._tracer = value
        self._observed = value is not None or self._profiler is not None

    @property
    def profiler(self):
        """Optional telemetry.RunProfiler; when set, dispatch times every
        callback (opt-in — costs a perf_counter pair per event; never
        changes simulation results)."""
        return self._profiler

    @profiler.setter
    def profiler(self, value) -> None:
        self._profiler = value
        self._observed = value is not None or self._tracer is not None

    def trace(self, category: str, message: str, **fields: Any) -> None:
        """Record a trace event if a tracer is installed (else no-op)."""
        if not self._observed:
            return
        if self._profiler is not None:
            self._profiler.note_category(category)
        if self._tracer is not None:
            self._tracer.record(self.now, category, message, **fields)

    @property
    def metrics(self):
        """This simulator's :class:`~repro.telemetry.MetricsRegistry`."""
        return self.telemetry.metrics

    def span(self, name: str, **attrs: Any):
        """Open a causal span on the simulated clock (see telemetry.spans)."""
        return self.telemetry.spans.begin(name, **attrs)

    # -- scheduling -------------------------------------------------------

    def schedule(self, delay: float, fn: Callable, *args: Any) -> ScheduledCall:
        """Run ``fn(*args)`` after ``delay`` simulated seconds."""
        if delay < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay})")
        return self.at(self.now + delay, fn, *args)

    def at(self, time: float, fn: Callable, *args: Any) -> ScheduledCall:
        """Run ``fn(*args)`` at absolute simulated ``time``."""
        if time < self.now:
            raise ValueError(f"cannot schedule at {time} < now {self.now}")
        handle = ScheduledCall(time, self)
        heap = self._heap
        heapq.heappush(heap, (time, next(self._seq), handle, fn, args))
        if len(heap) > self.heap_high_water:
            self.heap_high_water = len(heap)
        return handle

    def post_at(self, time: float, fn: Callable, *args: Any) -> None:
        """Fire-and-forget :meth:`at`: no cancellation handle is created.

        Hot paths that never cancel — link drains, agent service
        completions, router forwarding — account for almost every event
        in the packet-level experiments, and the per-event
        :class:`ScheduledCall` allocation was measurable there. The heap
        entry carries ``None`` in the handle slot and dispatch treats it
        as live. Unlike :meth:`at` the ``time >= now`` precondition is
        not validated; callers must guarantee it.
        """
        heap = self._heap
        heapq.heappush(heap, (time, next(self._seq), None, fn, args))
        if len(heap) > self.heap_high_water:
            self.heap_high_water = len(heap)

    # -- heap hygiene -------------------------------------------------------

    def _note_cancelled(self) -> None:
        """One queued entry was cancelled; compact when garbage dominates.

        Compaction drops cancelled entries and re-heapifies in place.
        Entries keep their original ``(time, seq)`` keys, so the pop
        order of live events — and therefore same-time FIFO semantics —
        is untouched.
        """
        self._cancelled += 1
        heap = self._heap
        if self._cancelled > 64 and self._cancelled * 2 > len(heap):
            heap[:] = [entry for entry in heap
                       if entry[2] is None or not entry[2].cancelled]
            heapq.heapify(heap)
            self._cancelled = 0

    @property
    def live_queue_length(self) -> int:
        """Queued entries that will actually run (excludes cancelled)."""
        return len(self._heap) - self._cancelled

    def call_soon(self, fn: Callable, *args: Any) -> ScheduledCall:
        """Run ``fn(*args)`` at the current time, after pending same-time work."""
        return self.at(self.now, fn, *args)

    # -- event factories ----------------------------------------------------

    def event(self, name: str = "") -> Event:
        """Create a fresh pending :class:`Event` bound to this simulator."""
        return Event(self, name)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that succeeds after ``delay`` seconds."""
        return Timeout(self, delay, value)

    def any_of(self, events: List[Event]) -> AnyOf:
        """Event that fires when the first of ``events`` fires."""
        return AnyOf(self, events)

    def all_of(self, events: List[Event]) -> AllOf:
        """Event that fires when all of ``events`` have succeeded."""
        return AllOf(self, events)

    def process(self, generator: Generator, name: str = "") -> "Process":  # noqa: F821
        """Start a generator-based process (see :class:`simcore.Process`)."""
        from repro.simcore.process import Process

        return Process(self, generator, name)

    # -- run loop -----------------------------------------------------------

    def step(self) -> bool:
        """Execute the next scheduled call. Returns False if queue empty."""
        heap = self._heap
        while heap:
            time, _seq, handle, fn, args = heapq.heappop(heap)
            if handle is not None and handle.cancelled:
                self._cancelled -= 1
                continue
            self.now = time
            self.events_executed += 1
            slot = self._fr_ring[self._fr_idx]
            slot[0] = time
            slot[1] = fn
            self._fr_idx += 1
            if self._fr_idx == len(self._fr_ring):
                self._fr_idx = 0
            if self._profiler is None:
                fn(*args)
            else:
                self._profiler.run_callback(fn, args)
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Run until the queue drains, ``until`` is reached, or event budget spent.

        Returns the simulated time at which the run stopped. When stopped by
        ``until``, the clock is advanced to exactly ``until`` and events
        scheduled at later times remain queued.

        The loop body is :meth:`step` inlined with the heap and heappop
        bound locally — this dispatch path dominates every packet-level
        experiment (E6/E7 spend >90% of wall time here), where the
        per-event method call and attribute lookups were measurable.
        """
        if self._running:
            raise RuntimeError("simulator is already running (re-entrant run())")
        self._running = True
        executed = 0
        heap = self._heap
        heappop = heapq.heappop
        bounded = max_events is not None
        # flight-recorder ring, bound locally like the heap: recording an
        # event is two in-place slot stores and an index bump (no
        # allocation, no telemetry calls — fastpath tests still hold)
        fr_ring = self._fr_ring
        fr_cap = len(fr_ring)
        fr_idx = self._fr_idx
        try:
            while heap:
                entry = heap[0]
                if until is not None and entry[0] > until:
                    self.now = until
                    break
                if bounded and executed >= max_events:
                    break
                time, _seq, handle, fn, args = heappop(heap)
                if handle is not None and handle.cancelled:
                    self._cancelled -= 1
                    continue
                self.now = time
                self.events_executed += 1
                executed += 1
                slot = fr_ring[fr_idx]
                slot[0] = time
                slot[1] = fn
                fr_idx += 1
                if fr_idx == fr_cap:
                    fr_idx = 0
                if self._profiler is None:
                    fn(*args)
                else:
                    self._profiler.run_callback(fn, args)
            else:
                if until is not None and until > self.now:
                    self.now = until
        finally:
            self._fr_idx = fr_idx
            self._running = False
        return self.now

    def flight_events(self) -> List[Tuple[float, Callable]]:
        """The flight-recorder tail: recent ``(time, callback)`` dispatches.

        Oldest first, at most ``flightrec.FLIGHT_CAPACITY`` entries (the
        ring's size at construction). Read by post-mortem dumps; callers
        must not mutate the returned callbacks.
        """
        ring = self._fr_ring
        cap = len(ring)
        count = min(self.events_executed, cap)
        start = (self._fr_idx - count) % cap
        return [(ring[(start + k) % cap][0], ring[(start + k) % cap][1])
                for k in range(count)]

    @property
    def queue_length(self) -> int:
        """Number of entries currently in the run queue (incl. cancelled)."""
        return len(self._heap)

    def __repr__(self) -> str:
        return (f"<Simulator t={self.now:.6f}s queued={len(self._heap)} "
                f"executed={self.events_executed}>")
