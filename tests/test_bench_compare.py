"""Tests for benchmarks/compare.py (the bench-report diff tool)."""

import json
import os
import subprocess
import sys

import pytest

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..",
                                "benchmarks"))

from compare import compare_rows, load_report, render  # noqa: E402

REPO = os.path.join(os.path.dirname(__file__), "..")


def _report(**cells):
    return {"date": "2026-08-06", "calibration_s": 0.05,
            "results": {name: {"wall_s": wall, "normalized": norm,
                               "heap_hwm": hwm}
                        for name, (wall, norm, hwm) in cells.items()}}


def test_compare_rows_ratio_and_speedup():
    old = _report(F1=(0.5, 10.0, 8), E7=(0.25, 5.0, 300))
    new = _report(F1=(0.13, 2.5, 8), E7=(0.14, 2.5, 256))
    rows = {r["name"]: r for r in compare_rows(old, new)}
    assert rows["F1"]["ratio"] == pytest.approx(0.25)
    assert rows["F1"]["speedup"] == pytest.approx(4.0)
    assert rows["E7"]["speedup"] == pytest.approx(2.0)
    assert rows["E7"]["old_hwm"] == 300 and rows["E7"]["new_hwm"] == 256


def test_compare_rows_handles_one_sided_cells():
    old = _report(F1=(0.5, 10.0, 8), retired=(0.1, 2.0, 0))
    new = _report(F1=(0.5, 10.0, 8), added=(0.2, 4.0, 10))
    rows = {r["name"]: r for r in compare_rows(old, new)}
    assert rows["retired"]["new"] is None
    assert rows["added"]["old"] is None
    assert rows["retired"]["ratio"] is None
    assert rows["added"]["ratio"] is None
    text = render(list(rows.values()), "old.json", "new.json")
    assert text.count("only in one report") == 2


def test_load_report_rejects_non_bench_json(tmp_path):
    path = tmp_path / "bogus.json"
    path.write_text(json.dumps({"hello": 1}))
    with pytest.raises(ValueError):
        load_report(str(path))


def test_cli_round_trip(tmp_path):
    old = tmp_path / "old.json"
    new = tmp_path / "new.json"
    old.write_text(json.dumps(_report(F1=(0.5, 10.0, 8))))
    new.write_text(json.dumps(_report(F1=(0.25, 5.0, 8))))
    proc = subprocess.run(
        [sys.executable, os.path.join(REPO, "benchmarks", "compare.py"),
         str(old), str(new)],
        capture_output=True, text=True)
    assert proc.returncode == 0
    assert "F1" in proc.stdout and "2.00" in proc.stdout
    assert "1 faster" in proc.stdout
