"""The architectures: dLTE and the three baselines it is compared against.

Table 1 of the paper divides the wireless design space along two axes —
open vs closed core, licensed vs unlicensed radio — and places dLTE in
the previously empty open-core/licensed-radio quadrant:

=================  ===================  =====================
(axis)             Open core            Closed core
=================  ===================  =====================
Unlicensed radio   legacy WiFi / mesh   enterprise WiFi,
                                        private LTE (MulteFire)
Licensed radio     **dLTE**             telecom LTE, 5G
=================  ===================  =====================

Each architecture here is a buildable network whose capability flags
regenerate that table (T1), and whose behaviour drives every other
experiment:

* :class:`DLTENetwork` — APs with local core stubs, an open spectrum
  registry, X2-over-Internet peering, endpoint mobility.
* :class:`CentralizedLTENetwork` — carrier LTE: one EPC, GTP tunnels,
  MME-managed mobility, closed HSS.
* :class:`WiFiNetwork` — legacy independent APs: CSMA, no coordination,
  open joining.
* :class:`PrivateLTENetwork` — LTE-in-a-box: local EPC but closed core
  (APs must attach through it; outsiders cannot join).
"""

from repro.core.capabilities import ArchitectureCapabilities, design_space_table
from repro.core.esim import EsimDevice
from repro.core.access_point import DLTEAccessPoint
from repro.core.network import (
    CentralizedLTENetwork,
    DLTENetwork,
    NetworkReport,
    PrivateLTENetwork,
    WiFiNetwork,
)

__all__ = [
    "ArchitectureCapabilities",
    "design_space_table",
    "EsimDevice",
    "DLTEAccessPoint",
    "DLTENetwork",
    "CentralizedLTENetwork",
    "WiFiNetwork",
    "PrivateLTENetwork",
    "NetworkReport",
]
