"""Supervised ordered map: deadlines, heartbeats, kill, and retry.

:func:`repro.runner.parallel.parallel_map` assumes every worker is
well-behaved: a crashed fork worker (OOM kill, segfault in a native
extension) or a hung task would strand the whole ``--all --jobs N``
regeneration. This module is the execution layer the paper's own
argument demands the harness have (§3: independently-failing parts must
not take the federation down): it runs the same ordered, self-seeding
task contract under *supervision*:

* **per-task deadlines** — a task that exceeds ``task_timeout_s`` of
  wall clock is declared hung and its worker is killed (SIGKILL);
* **heartbeats** — each worker beats on its result pipe from a side
  thread; a silent-but-alive worker (SIGSTOP, kernel-level wedge) is
  declared hung after ``heartbeat_timeout_s`` even with no deadline set;
* **crash detection** — a worker whose pipe hits EOF (process died) is
  reaped and replaced;
* **bounded retry with stable reseeding** — a killed or crashed task is
  re-executed up to ``retries`` times on a fresh worker. Tasks are
  self-seeding (:func:`repro.runner.seeds.derive_seed` keys the task,
  not the attempt), so a retried task reproduces byte-identical output;
* **structured failure records** — every crash/hang/exception becomes a
  :class:`TaskFailure` on the :class:`SupervisorReport`, and counters
  (``runner.supervisor.{crashes,hangs,exceptions,retries}``) land in the
  ambient telemetry registry so ``--metrics-out`` exports them. The
  counters are created lazily: a clean run's telemetry is byte-identical
  to an unsupervised one;
* **checkpoint/resume** — with a :class:`~repro.runner.checkpoint.
  SweepCheckpoint`, completed tasks are journaled as they finish and
  already-journaled tasks are replayed without executing (see
  ``--resume``).

Worker processes are tracked in a module-global registry with an
``atexit`` reaper, and every exit path (success, failure, Ctrl-C) kills
and joins the full worker set — no orphans survive the parent.

Chaos hooks for the kill-tests: when ``REPRO_CHAOS_PLAN`` is set (e.g.
``"E5:crash,E9:hang"``) and ``REPRO_CHAOS_DIR`` names a directory, a
worker about to run a task whose label appears in the plan first writes
a once-marker file there and then dies (``crash``) or spins past any
deadline (``hang``) — exactly once per label, so the retry succeeds.
"""

from __future__ import annotations

import atexit
import os
import pickle
import signal
import threading
import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from multiprocessing.connection import wait as _conn_wait

from repro.runner.parallel import _pool_context, get_jobs, in_worker, \
    mark_worker
from repro.telemetry import flightrec
from repro.telemetry.hub import HUB, ambient_registry

__all__ = ["SupervisedRunner", "SupervisorReport", "TaskFailedError",
           "TaskFailure", "supervised_map"]

#: Live supervisor worker processes, reaped at interpreter exit.
_LIVE_WORKERS: set = set()

#: Parent poll tick (seconds): bounds detection latency, not throughput.
_TICK_S = 0.05


def _reap_workers() -> None:
    """atexit hook: kill any supervisor worker the parent left behind."""
    for proc in list(_LIVE_WORKERS):
        try:
            if proc.is_alive():
                proc.kill()
                proc.join()
        except Exception:  # pragma: no cover - interpreter teardown
            pass
    _LIVE_WORKERS.clear()


atexit.register(_reap_workers)


@dataclass(frozen=True)
class TaskFailure:
    """One supervised-task failure event (crash, hang, or exception)."""

    label: str
    slot: int
    attempt: int
    kind: str  # "crash" | "hang" | "exception"
    detail: str
    elapsed_s: float

    def __str__(self) -> str:
        return (f"[{self.kind}] task {self.label!r} (slot {self.slot}, "
                f"attempt {self.attempt}, {self.elapsed_s:.1f}s): "
                f"{self.detail.splitlines()[-1] if self.detail else ''}")


class TaskFailedError(RuntimeError):
    """A supervised task exhausted its retry budget.

    Carries the final :class:`TaskFailure` plus the full failure history
    for the task, so the original worker-side traceback (for exception
    kinds) survives into the parent's error.
    """

    def __init__(self, failure: TaskFailure, item: Any,
                 history: Sequence[TaskFailure]) -> None:
        self.failure = failure
        self.item = item
        self.history = list(history)
        item_repr = repr(item)
        if len(item_repr) > 200:
            item_repr = item_repr[:197] + "..."
        lines = [f"supervised task {failure.label!r} (slot {failure.slot}, "
                 f"item {item_repr}) failed {len(self.history)} time(s); "
                 f"last failure: {failure.kind}"]
        if failure.detail:
            lines.append(failure.detail)
        super().__init__("\n".join(lines))


@dataclass
class SupervisorReport:
    """What a supervised run did beyond returning results."""

    failures: List[TaskFailure] = field(default_factory=list)
    retries: int = 0
    crashes: int = 0
    hangs: int = 0
    exceptions: int = 0
    completed: int = 0
    replayed_from_checkpoint: int = 0

    def record(self, failure: TaskFailure) -> None:
        """Append a failure and bump the matching counters."""
        self.failures.append(failure)
        if failure.kind == "crash":
            self.crashes += 1
        elif failure.kind == "hang":
            self.hangs += 1
        else:
            self.exceptions += 1
        # lazily-created counters: a clean run never touches the
        # registry, keeping its telemetry byte-identical
        registry = ambient_registry()
        registry.counter("runner.supervisor.failures",
                         kind=failure.kind).inc()

    def __str__(self) -> str:
        return (f"<SupervisorReport completed={self.completed} "
                f"retries={self.retries} crashes={self.crashes} "
                f"hangs={self.hangs} exceptions={self.exceptions} "
                f"replayed={self.replayed_from_checkpoint}>")


# -- chaos hooks (worker side) -------------------------------------------------


def _maybe_chaos(label: str) -> None:
    """Die or hang once per label when a chaos plan names this task."""
    plan = os.environ.get("REPRO_CHAOS_PLAN")
    if not plan:
        return
    # labels may themselves contain colons (e.g. "exp:E16"), so the
    # action is whatever follows the *last* colon
    actions = dict(entry.rsplit(":", 1) for entry in plan.split(",")
                   if ":" in entry)
    action = actions.get(label)
    if action is None:
        return
    chaos_dir = os.environ.get("REPRO_CHAOS_DIR")
    if not chaos_dir:
        raise RuntimeError("REPRO_CHAOS_PLAN set without REPRO_CHAOS_DIR")
    marker = os.path.join(chaos_dir, f"chaos-{label}.done")
    if os.path.exists(marker):
        return  # already fired: the retry runs clean
    with open(marker, "w") as handle:
        handle.write(action)
    if action == "crash":
        os.kill(os.getpid(), signal.SIGKILL)
    elif action == "hang":
        while True:  # pragma: no cover - killed by the supervisor
            time.sleep(3600)
    else:
        raise ValueError(f"unknown chaos action {action!r} for {label!r}")


# -- worker side ---------------------------------------------------------------


def _worker_main(conn, heartbeat_s: float) -> None:
    """Supervisor worker: serve tasks from ``conn`` until told to stop.

    Protocol (all on one duplex pipe, parent <-> worker):

    * parent -> worker: ``("task", token, slot, label, fn, item,
      collect, profile, trace)`` or ``("stop",)``;
    * worker -> parent: ``("beat", token)`` every ``heartbeat_s`` while
      a task runs, then ``("done", token, slot, result)`` or
      ``("fail", token, slot, exc_type, traceback_text)``.

    A side thread emits the beats; sends are serialized with a lock so
    a beat never interleaves a result mid-pickle.

    When the supervisor kills this worker (deadline/heartbeat), the
    first signal is SIGTERM: the handler below writes a flight-recorder
    post-mortem — the black box of whatever the worker was doing — then
    exits. SIGKILL follows after a grace period only if the worker is
    too wedged to run the handler.
    """
    mark_worker()
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):  # pragma: no cover - exotic platforms
        pass

    def _on_sigterm(signum, frame):
        flightrec.write_postmortem(
            "supervisor-kill",
            detail=f"worker pid {os.getpid()} terminated by supervisor "
                   f"(deadline or heartbeat timeout)")
        os._exit(70)

    try:
        signal.signal(signal.SIGTERM, _on_sigterm)
    except (ValueError, OSError):  # pragma: no cover - exotic platforms
        pass
    send_lock = threading.Lock()
    current_token: List[Optional[int]] = [None]
    stop_beats = threading.Event()

    def beat_loop() -> None:
        while not stop_beats.wait(heartbeat_s):
            token = current_token[0]
            if token is None:
                continue
            try:
                with send_lock:
                    conn.send(("beat", token))
            except (BrokenPipeError, OSError):  # parent died
                return

    beats = threading.Thread(target=beat_loop, daemon=True,
                             name="supervisor-heartbeat")
    beats.start()
    try:
        while True:
            message = conn.recv()
            if message[0] == "stop":
                return
            _kind, token, slot, label, fn, item, collect, profile, trace = \
                message
            current_token[0] = token
            _maybe_chaos(label)
            try:
                if collect:
                    if HUB.active:  # inherited via fork mid-run
                        HUB.abort_run()
                    HUB.start_run(profile=profile, trace=trace)
                    started_at = time.monotonic()
                    try:
                        result = fn(item)
                    except BaseException:
                        HUB.abort_run()
                        raise
                    exec_s = time.monotonic() - started_at
                    # pickle here, timed and sized, for runner-lifecycle
                    # tracing; the pipe then ships one cheap bytes object
                    t0 = time.monotonic()
                    blob = pickle.dumps((result, HUB.export_worker_run()),
                                        protocol=pickle.HIGHEST_PROTOCOL)
                    payload = (blob, {
                        "pid": os.getpid(), "started_at": started_at,
                        "exec_s": exec_s,
                        "serialize_s": time.monotonic() - t0,
                        "serialize_bytes": len(blob),
                        "finished_at": time.monotonic()})
                else:
                    payload = fn(item)
            except Exception as exc:
                current_token[0] = None
                with send_lock:
                    conn.send(("fail", token, slot, type(exc).__name__,
                               traceback.format_exc()))
            else:
                current_token[0] = None
                with send_lock:
                    conn.send(("done", token, slot, payload))
    except (EOFError, KeyboardInterrupt, BrokenPipeError, OSError):
        pass  # parent went away; die quietly
    finally:
        stop_beats.set()


# -- parent side ---------------------------------------------------------------


class _Worker:
    """Parent-side handle: process, pipe, and the task it holds."""

    __slots__ = ("proc", "conn", "token", "slot", "started_at", "last_beat")

    def __init__(self, ctx, heartbeat_s: float) -> None:
        parent_conn, child_conn = ctx.Pipe(duplex=True)
        self.conn = parent_conn
        self.proc = ctx.Process(target=_worker_main,
                                args=(child_conn, heartbeat_s),
                                daemon=True, name="repro-supervised-worker")
        self.proc.start()
        child_conn.close()  # the worker holds the only other end
        _LIVE_WORKERS.add(self.proc)
        self.token: Optional[int] = None
        self.slot: Optional[int] = None
        self.started_at = 0.0
        self.last_beat = 0.0

    @property
    def busy(self) -> bool:
        return self.token is not None

    def assign(self, token: int, slot: int, label: str, fn, item,
               collect: bool, profile: bool, trace: bool) -> None:
        now = time.monotonic()
        self.token, self.slot = token, slot
        self.started_at = self.last_beat = now
        self.conn.send(("task", token, slot, label, fn, item,
                        collect, profile, trace))

    def settle(self) -> None:
        """Mark idle after a result arrived."""
        self.token = self.slot = None

    def kill(self, grace_s: float = 1.0) -> None:
        """Terminate the process and drop it from the live registry.

        SIGTERM first: the worker's handler writes its flight-recorder
        post-mortem (the black box of the hung/doomed task) and exits.
        SIGKILL follows after ``grace_s`` only if the worker is wedged
        too hard to run the handler.
        """
        try:
            if self.proc.is_alive():
                self.proc.terminate()
                self.proc.join(grace_s)
                if self.proc.is_alive():
                    self.proc.kill()
            self.proc.join()
        finally:
            _LIVE_WORKERS.discard(self.proc)
            try:
                self.conn.close()
            except OSError:  # pragma: no cover
                pass

    def stop(self) -> None:
        """Ask the worker to exit cleanly; fall back to kill."""
        try:
            self.conn.send(("stop",))
        except (BrokenPipeError, OSError):
            pass
        self.proc.join(timeout=2.0)
        self.kill()


def supervised_map(fn: Callable[[Any], Any], items: Sequence[Any],
                   jobs: Optional[int] = None,
                   costs: Optional[Sequence[float]] = None,
                   labels: Optional[Sequence[str]] = None,
                   task_timeout_s: Optional[float] = None,
                   retries: int = 0,
                   heartbeat_s: float = 1.0,
                   heartbeat_timeout_s: Optional[float] = None,
                   checkpoint=None,
                   on_result: Optional[Callable[[int, str, Any], None]] = None,
                   report: Optional[SupervisorReport] = None) -> List[Any]:
    """Ordered map with supervision; results in item order.

    Same contract as :func:`~repro.runner.parallel.parallel_map` —
    picklable ``fn``/``items``, self-seeding tasks, optional longest-
    first ``costs``, telemetry shipped home under an active hub run —
    plus supervision:

    Args:
        labels: stable per-task names (default the item index as a
            string); used in failure records, chaos plans, and as
            checkpoint keys — must be unique.
        task_timeout_s: wall-clock deadline per attempt; exceeding it
            kills the worker and counts a hang.
        retries: extra attempts per task after a crash/hang/exception.
        heartbeat_s: worker beat interval.
        heartbeat_timeout_s: declare a silent worker hung after this
            long without a beat (default ``max(4 * heartbeat_s, 5 s)``);
            crashes are detected immediately via pipe EOF regardless.
        checkpoint: a :class:`~repro.runner.checkpoint.SweepCheckpoint`;
            tasks already journaled are replayed without executing, and
            completed tasks are journaled as they finish (results must
            be JSON-serializable). Incompatible with an active telemetry
            run (replayed tasks would contribute no telemetry).
        on_result: called as ``on_result(slot, label, result)`` in
            completion order, for incremental consumers (the CLI streams
            finished experiments into the checkpoint through this).
        report: a :class:`SupervisorReport` to fill in (one is created
            internally otherwise).

    Raises:
        TaskFailedError: a task failed ``retries + 1`` times; all
            workers are killed and joined before it propagates.

    Serial mode (``jobs=1`` or nested in a worker) executes inline with
    the same retry/annotation/checkpoint semantics but cannot preempt
    hangs — deadlines need workers. A single pending item at ``jobs>1``
    therefore still gets a worker, so ``--task-timeout`` protects
    one-experiment runs too.

    With an active hub run, each map also records runner-lifecycle
    timings (fork, queue wait, exec, pickle, ship, merge) into
    ``HUB.lifecycle`` — see OBSERVABILITY.md.
    """
    items = list(items)
    n = jobs if jobs is not None else get_jobs()
    if n < 1:
        raise ValueError(f"jobs must be >= 1, got {n}")
    if retries < 0:
        raise ValueError(f"retries must be >= 0, got {retries}")
    if heartbeat_s <= 0:
        raise ValueError("heartbeat interval must be positive")
    if labels is None:
        labels = [str(i) for i in range(len(items))]
    else:
        labels = [str(label) for label in labels]
        if len(labels) != len(items):
            raise ValueError("labels must align with items")
    if len(set(labels)) != len(labels):
        raise ValueError("labels must be unique")
    if costs is not None and len(costs) != len(items):
        raise ValueError("costs must align with items")
    if report is None:
        report = SupervisorReport()
    collecting = HUB.active
    if checkpoint is not None and collecting:
        raise ValueError("checkpoint/resume cannot run under an active "
                         "telemetry run: replayed tasks contribute no "
                         "telemetry, so exports would not match")

    results: List[Any] = [None] * len(items)
    telemetry_payloads: List[Any] = [None] * len(items)
    pending: List[int] = []
    for slot in range(len(items)):
        if checkpoint is not None and checkpoint.done(labels[slot]):
            results[slot] = checkpoint.get(labels[slot])
            report.replayed_from_checkpoint += 1
        else:
            pending.append(slot)
    if not pending:
        return results

    def finish(slot: int, value: Any) -> None:
        if collecting:
            results[slot], telemetry_payloads[slot] = value
        else:
            results[slot] = value
        report.completed += 1
        if checkpoint is not None:
            checkpoint.record(labels[slot], results[slot])
        if on_result is not None:
            on_result(slot, labels[slot], results[slot])

    if n == 1 or in_worker():
        _serial_supervised(fn, items, labels, pending, retries, report,
                           collecting, finish)
        record = None
    else:
        record = _parallel_supervised(fn, items, labels, pending, costs, n,
                                      task_timeout_s, retries, heartbeat_s,
                                      heartbeat_timeout_s, report,
                                      collecting, finish)

    if collecting:
        by_slot = ({task.slot: task for task in record.tasks}
                   if record is not None else {})
        for slot in range(len(items)):
            payload = telemetry_payloads[slot]
            if payload is not None:
                t0 = time.monotonic()
                HUB.absorb_worker_run(payload)
                task = by_slot.get(slot)
                if task is not None:
                    task.merge_s += time.monotonic() - t0
        lifecycle = HUB.lifecycle
        if record is not None and lifecycle is not None:
            lifecycle.finish_map(record)
    return results


def _serial_supervised(fn, items, labels, pending, retries, report,
                       collecting, finish) -> None:
    """Inline fallback: retry + annotate, no preemption."""
    for slot in pending:
        attempt = 0
        history: List[TaskFailure] = []
        while True:
            attempt += 1
            started = time.monotonic()
            try:
                if collecting:
                    # serial mode inside an active run: the parent hub
                    # already collects this process's simulators, so run
                    # the task directly (mirrors parallel_map jobs=1)
                    value = (fn(items[slot]), None)
                else:
                    value = fn(items[slot])
            except Exception as exc:
                failure = TaskFailure(
                    label=labels[slot], slot=slot, attempt=attempt,
                    kind="exception",
                    detail=traceback.format_exc(),
                    elapsed_s=time.monotonic() - started)
                report.record(failure)
                history.append(failure)
                if attempt > retries:
                    raise TaskFailedError(failure, items[slot],
                                          history) from exc
                report.retries += 1
                ambient_registry().counter("runner.supervisor.retries").inc()
            else:
                finish(slot, value)
                break


def _parallel_supervised(fn, items, labels, pending, costs, jobs,
                         task_timeout_s, retries, heartbeat_s,
                         heartbeat_timeout_s, report, collecting,
                         finish):
    """The supervised pool: assign, watch, kill, retry.

    Returns the map's lifecycle record (or None when not collecting) so
    the caller can add hub-merge timings and close it.
    """
    beat_limit = (heartbeat_timeout_s if heartbeat_timeout_s is not None
                  else max(4.0 * heartbeat_s, 5.0))
    queue = list(pending)
    if costs is not None:
        queue.sort(key=lambda slot: -costs[slot])
    queue.reverse()  # pop() takes the longest first

    attempts: Dict[int, int] = {slot: 0 for slot in pending}
    history: Dict[int, List[TaskFailure]] = {slot: [] for slot in pending}
    profile, trace = HUB.profiling, HUB.tracing
    ctx = _pool_context()
    lifecycle = HUB.lifecycle if collecting else None
    map_started = time.monotonic()
    workers: List[_Worker] = [_Worker(ctx, heartbeat_s)
                              for _ in range(min(jobs, len(pending)))]
    record = None
    if lifecycle is not None:
        record = lifecycle.begin_map("supervised",
                                     min(jobs, len(pending)))
        record.started_at = map_started
        record.fork_s = time.monotonic() - map_started
    tokens = iter(range(1, 1 << 62))
    outstanding = len(pending)

    def assign_next(worker: _Worker) -> None:
        while queue:
            slot = queue.pop()
            attempts[slot] += 1
            try:
                worker.assign(next(tokens), slot, labels[slot], fn,
                              items[slot], collecting, profile, trace)
                return
            except (BrokenPipeError, OSError):
                # the worker died between spawn and first task: charge
                # no attempt, replace it, and try the next fresh worker
                attempts[slot] -= 1
                queue.append(slot)
                worker.kill()
                workers.remove(worker)
                worker = _Worker(ctx, heartbeat_s)
                workers.append(worker)

    def fail_task(worker: _Worker, kind: str, detail: str) -> _Worker:
        """Record a crash/hang, kill the worker, retry or abort.

        Killing starts with SIGTERM so the worker writes its own
        flight-recorder dump; the parent then records its side of the
        story (which task, which attempt, how long) as a second
        post-mortem — the pair is the black box of the failure.
        """
        nonlocal outstanding
        slot = worker.slot
        pid = worker.proc.pid
        elapsed = time.monotonic() - worker.started_at
        worker.kill()
        workers.remove(worker)
        replacement = _Worker(ctx, heartbeat_s)
        workers.append(replacement)
        failure = TaskFailure(label=labels[slot], slot=slot,
                              attempt=attempts[slot], kind=kind,
                              detail=detail, elapsed_s=elapsed)
        report.record(failure)
        history[slot].append(failure)
        flightrec.write_postmortem(
            f"supervisor-{kind}", detail=str(failure), sims=[],
            extra={"task": {"label": failure.label, "slot": slot,
                            "attempt": failure.attempt,
                            "elapsed_s": failure.elapsed_s,
                            "worker_pid": pid}})
        if attempts[slot] > retries:
            raise TaskFailedError(failure, items[slot], history[slot])
        report.retries += 1
        ambient_registry().counter("runner.supervisor.retries").inc()
        queue.append(slot)  # retried next; byte-identical by self-seeding
        return replacement

    try:
        for worker in workers:
            assign_next(worker)
        while outstanding > 0:
            conns = {worker.conn: worker for worker in workers}
            ready = _conn_wait(list(conns), timeout=_TICK_S)
            for conn in ready:
                worker = conns[conn]
                try:
                    message = conn.recv()
                except (EOFError, OSError):
                    if worker.busy:
                        replacement = fail_task(
                            worker, "crash",
                            f"worker pid {worker.proc.pid} died "
                            f"(pipe EOF, exitcode {worker.proc.exitcode})")
                        assign_next(replacement)
                    else:  # idle worker died: just replace it
                        worker.kill()
                        workers.remove(worker)
                        workers.append(_Worker(ctx, heartbeat_s))
                    continue
                kind = message[0]
                if kind == "beat":
                    if message[1] == worker.token:
                        worker.last_beat = time.monotonic()
                    continue
                if message[1] != worker.token:
                    continue  # stale result from a superseded attempt
                if kind == "done":
                    _mk, _token, slot, value = message
                    received = time.monotonic()
                    if collecting:
                        blob, timing = value
                        value = pickle.loads(blob)
                        if record is not None:
                            task = lifecycle.record_task(
                                record, slot, labels[slot], timing["pid"],
                                queue_wait_s=max(
                                    0.0,
                                    timing["started_at"] - map_started),
                                exec_s=timing["exec_s"],
                                serialize_s=timing["serialize_s"],
                                serialize_bytes=timing["serialize_bytes"],
                                ship_s=max(0.0, received
                                           - timing["finished_at"]))
                            # unpickling is part of merging the result
                            task.merge_s = time.monotonic() - received
                    worker.settle()
                    finish(slot, value)
                    outstanding -= 1
                    assign_next(worker)
                elif kind == "fail":
                    _mk, _token, slot, exc_type, tb_text = message
                    worker.settle()
                    elapsed = time.monotonic() - worker.started_at
                    failure = TaskFailure(
                        label=labels[slot], slot=slot,
                        attempt=attempts[slot], kind="exception",
                        detail=f"{exc_type} in worker:\n{tb_text}",
                        elapsed_s=elapsed)
                    report.record(failure)
                    history[slot].append(failure)
                    if attempts[slot] > retries:
                        raise TaskFailedError(failure, items[slot],
                                              history[slot])
                    report.retries += 1
                    ambient_registry().counter(
                        "runner.supervisor.retries").inc()
                    queue.append(slot)
                    assign_next(worker)
            # deadline / liveness scan
            now = time.monotonic()
            for worker in list(workers):
                if not worker.busy:
                    continue
                if (task_timeout_s is not None
                        and now - worker.started_at > task_timeout_s):
                    replacement = fail_task(
                        worker, "hang",
                        f"exceeded task deadline of {task_timeout_s:g}s")
                    assign_next(replacement)
                elif now - worker.last_beat > beat_limit:
                    if worker.proc.is_alive():
                        replacement = fail_task(
                            worker, "hang",
                            f"no heartbeat for {beat_limit:g}s "
                            f"(worker alive but silent)")
                    else:
                        replacement = fail_task(
                            worker, "crash",
                            f"worker pid {worker.proc.pid} died "
                            f"(exitcode {worker.proc.exitcode})")
                    assign_next(replacement)
    finally:
        for worker in workers:
            worker.stop()
    return record


class SupervisedRunner:
    """A configured supervised fan-out (the CLI's execution object)."""

    def __init__(self, jobs: Optional[int] = None,
                 task_timeout_s: Optional[float] = None,
                 retries: int = 0, heartbeat_s: float = 1.0) -> None:
        self.jobs = jobs if jobs is not None else get_jobs()
        if self.jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {self.jobs}")
        self.task_timeout_s = task_timeout_s
        self.retries = retries
        self.heartbeat_s = heartbeat_s
        self.report = SupervisorReport()

    def map(self, fn: Callable[[Any], Any], items: Sequence[Any],
            costs: Optional[Sequence[float]] = None,
            labels: Optional[Sequence[str]] = None,
            checkpoint=None,
            on_result: Optional[Callable[[int, str, Any], None]] = None
            ) -> List[Any]:
        """Supervised ordered map at this runner's configuration."""
        return supervised_map(
            fn, items, jobs=self.jobs, costs=costs, labels=labels,
            task_timeout_s=self.task_timeout_s, retries=self.retries,
            heartbeat_s=self.heartbeat_s, checkpoint=checkpoint,
            on_result=on_result, report=self.report)

    def __repr__(self) -> str:
        return (f"<SupervisedRunner jobs={self.jobs} "
                f"timeout={self.task_timeout_s} retries={self.retries}>")
