"""E18 (extension) — sustained data-plane overload: AQM + ECN vs drop-tail.

E17 overloaded the *control* plane (an attach storm against one MME).
E18 overloads the *user* plane: a town's worth of heavy-tailed web
fetches, video segments and VoIP spurts pushed through the rural
backhaul at multiples of its capacity, sustained for the whole horizon.
The operational question is the classic one: past saturation, does
goodput stay pinned at capacity (graceful), or does the network spend
its bottleneck on waste — bufferbloat-inflated RTTs, RTO storms and
go-back-N duplicates — so that *delivered* bytes fall as *offered*
bytes rise (congestion collapse)?

Each (architecture x load) cell runs twice:

* **drop-tail** — the seed's FIFO queue, ECN off: the control arm.
  Deep buffers absorb the overload as seconds of queueing delay until
  they tail-drop in bursts; senders RTO and refill go-back-N style,
  and the duplicates compete with fresh data for the same bottleneck.
* **AQM + ECN** — CoDel (or RED via ``aqm=``) on every access link,
  marking ECT traffic instead of dropping it: senders halve ``cwnd``
  without losing anything, sojourn stays near the 5 ms target, and
  goodput holds at capacity no matter how far past saturation the
  offered load climbs.

The centralized arm additionally installs a per-bearer QoS policer
(:mod:`repro.epc.qos`) at the S-GW/P-GW: VoIP bearers are GBR,
web is interactive, video is bulk, and when offered load exceeds the
policed aggregate the shed ordering is bulk first, guarantee last —
the data-plane mirror of E17's "Detach outranks bulk" discipline. The
dLTE arm has no gateway to police (local breakout); its VoIP rides on
AQM keeping the queue short, which is the architectural contrast.

Reported per (arch x mode x load): offered and delivered (goodput)
Mbps over the measurement window, web flow-completion P50/P99.9 and
video/VoIP chunk-delivery P99.9 (streaming P² quantiles, demand-to-
service), web flow completion rate, ECN marks, AQM vs tail drops,
policer sheds and the deepest access queue. The claim is the *shape*:
with AQM+ECN, goodput is monotone non-decreasing in load; with
drop-tail it declines past saturation.

Chaos scenarios and the invariant layer compose exactly as in E17
(``scenario=``/``invariants=``) — the managed links carry a byte-exact
conservation law, so a flapping backhaul under overload is one flag
away and still audited.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.network import CentralizedLTENetwork, DLTENetwork
from repro.epc.qos import (BearerPolicer, CLASS_BULK, CLASS_GBR,
                           CLASS_INTERACTIVE, QosPolicy)
from repro.epc.ue import UeState
from repro.faults import FaultInjector, compose_scenario, prepare_scenario
from repro.metrics.tables import ResultTable
from repro.net.aqm import make_aqm
from repro.runner import parallel_map
from repro.transport.base import ConnectionState, TransportDemux
from repro.transport.tcp import TcpConnection, TcpListener
from repro.workloads.topology import RuralTown
from repro.workloads.traffic import DiurnalCurve, make_app_source

#: SLA quantiles per app class (P50/P99/P99.9 via streaming P²)
QUANTILES = (0.5, 0.99, 0.999)

#: mean web fetch (heavy-tailed around this; see ParetoFlowSource)
WEB_MEAN_BYTES = 120_000

#: fixed per-stream video rate and cadence; the load sweep rides on web
#: flow churn (the busy hour multiplies page fetches, not stream rates)
VIDEO_BPS = 1.2e6
VIDEO_SEGMENT_S = 1.0

#: a stuck web fetch (handshake lost in the congested queue) is retried
#: by the "user" after this long, a few times, then abandoned — the
#: transport itself has no SYN retransmission
WEB_RETRY_S = 3.0
WEB_RETRIES = 3

#: AQM parameters sized to the rural path (~100 ms RTT): CoDel's 5 ms
#: LAN default would underutilize the pipe, RED's 5/15-packet
#: thresholds would fire below this path's bandwidth-delay product
AQM_KWARGS = {
    "codel": {"target_s": 0.02, "interval_s": 0.2},
    "red": {"min_th": 30.0, "max_th": 90.0},
}

#: per-UE app assignment cycle — web-dominant, like the measured mix
APP_CYCLE = ("web", "video", "voip", "web", "web", "web")

#: QoS classes per app — VoIP is the guaranteed bearer, video is bulk
QOS_CLASS = {"web": CLASS_INTERACTIVE, "video": CLASS_BULK,
             "voip": CLASS_GBR}

_MODES = (("drop-tail", False), ("AQM+ECN", True))


def _settle_dlte(net: DLTENetwork) -> None:
    """License + peer + monitors — the pre-traffic control phase."""
    granted = {"n": 0}

    def on_granted(_ok: bool) -> None:
        granted["n"] += 1
        if granted["n"] == len(net.aps):
            for ap in net.aps.values():
                ap.discover_and_peer(net.aps)

    for ap in net.aps.values():
        ap.register_spectrum(on_granted)
    net.sim.run(until=net.sim.now + 2.0)
    for ap in net.aps.values():
        ap.start_peer_monitor(heartbeat_s=1.0)


def _access_links(net) -> List:
    """Downlink access links (Internet -> town), the E18 bottlenecks.

    Both builds attach each site router to the Internet core at the
    town's backhaul rate; the EPC and server edges are effectively
    infinite, so congestion lives on exactly these links.
    """
    return [link for name, link in sorted(net.internet.links.items())
            if name not in ("server-edge", "epc-gw")]


def _run_cell(task: Tuple) -> Dict[str, float]:
    """One (arch, mode, load) cell; picklable for parallel_map."""
    (arch, aqm_on, load, n_aps, ue_per_ap, seed, scenario, invariants,
     qos, aqm, chaos_at_s, settle_s, warmup_s, measure_s,
     backhaul_bps) = task
    town = RuralTown(radius_m=1500.0, n_ues=n_aps * ue_per_ap,
                     n_aps=n_aps, seed=seed,
                     backhaul_rate_bps=backhaul_bps)
    if arch == "dlte":
        net = DLTENetwork.build(town, seed=seed)
    else:
        net = CentralizedLTENetwork.build(town, seed=seed)
    sim = net.sim

    # managed queues must be configured before any traffic crosses them
    bottlenecks = _access_links(net)
    if aqm_on:
        for link in bottlenecks:
            link.set_aqm(make_aqm(aqm, ecn=True,
                                  **AQM_KWARGS.get(aqm, {})))

    policer = None
    if qos and arch == "cent":
        # sized well above capacity: the policer's role is the shed
        # *ordering* under extreme load (bulk first, GBR never), not
        # rate-shaping — that would shield the queue and hide the
        # drop-tail collapse the control arm must show
        aggregate = 3.0 * n_aps * backhaul_bps
        policer = BearerPolicer(
            sim, QosPolicy(rate_bps=aggregate, gbr_bps=0.05 * aggregate,
                           burst_bytes=60_000),
            name="pgw-policer")
        net.epc_data.policer = policer

    if scenario:
        prepare_scenario(scenario, net)
    checker = None
    if invariants:
        from repro.invariants import watch_network
        checker = watch_network(net)
    if arch == "dlte":
        _settle_dlte(net)

    # -- attach phase: everyone gets a bearer before the load arrives --------
    ues = [net.ues[name] for name in sorted(net.ues)]
    for j, ue in enumerate(ues):
        sim.schedule(0.02 * j, ue.start_attach_with_retry)
    sim.run(until=sim.now + settle_s)
    online = [ue for ue in ues
              if ue.state is UeState.ATTACHED
              and net.ue_hosts[ue.ue_id].address is not None]

    # -- transport + workload wiring -----------------------------------------
    t1 = sim.now
    server_demux = TransportDemux(net.server)   # replaces the echo responder
    hists = {app: sim.metrics.histogram(f"e18.sla.{app}_s",
                                        quantiles=QUANTILES)
             for app in ("web", "video", "voip")}
    flows: Dict[str, dict] = {}
    totals = {"sent": 0, "delivered": 0, "web_started": 0, "web_done": 0}
    base = {"sent": 0, "delivered": 0}

    def on_accept(conn):
        st = flows.get(conn.conn_id)
        if st is None:
            return

        def on_receive(n_bytes: int, st=st, conn=conn) -> None:
            st["delivered"] += n_bytes
            totals["delivered"] += n_bytes
            if st["app"] == "web":
                if not st["done"] and st["delivered"] >= st["size"]:
                    st["done"] = True
                    totals["web_done"] += 1
                    hists["web"].observe(sim.now - st["born"])
                    conn.close()
                    st["server_conn"].close()
                    if policer is not None:
                        policer.deregister_bearer(conn.conn_id)
            else:
                pending = st["pending"]
                while pending and pending[0][0] <= st["delivered"]:
                    target, emitted_at = pending.popleft()
                    st["hist"].observe(sim.now - emitted_at)

        conn.on_receive = on_receive

    for ue in online:
        demux = TransportDemux(net.ue_hosts[ue.ue_id])
        listener = TcpListener(sim, demux, tls=False)
        listener.on_accept = on_accept

    # per-site capacity times the load multiple; video and voip run at
    # fixed per-stream rates, web flow churn carries the sweep
    per_app = {app: 0 for app in ("web", "video", "voip")}
    assignment = [(ue, APP_CYCLE[j % len(APP_CYCLE)])
                  for j, ue in enumerate(online)]
    for _ue, app in assignment:
        per_app[app] += 1
    target_bps = load * n_aps * backhaul_bps
    web_bps = max(target_bps - per_app["video"] * VIDEO_BPS,
                  0.25 * target_bps)
    diurnal = DiurnalCurve(period_s=max(measure_s, 1.0), trough=0.5,
                           peak_at=t1 + warmup_s + measure_s / 2.0)

    def open_web_flow(ue_id: str, addr, size: int, counter: dict) -> None:
        counter["n"] += 1
        conn_id = f"web:{ue_id}:{counter['n']}"
        conn = TcpConnection(sim, server_demux, conn_id=conn_id,
                             peer_addr=addr, tls=False, ecn=aqm_on)
        flows[conn_id] = {"app": "web", "size": size, "born": sim.now,
                          "delivered": 0, "done": False, "retries": 0,
                          "addr": addr, "server_conn": conn}
        totals["sent"] += size
        totals["web_started"] += 1
        if policer is not None:
            policer.register_bearer(conn_id, CLASS_INTERACTIVE)
        conn.on_established = lambda c=conn, n=size: c.send_app_data(n)
        conn.connect()

    def web_retry_sweep():
        # the transport has no SYN retransmission: a handshake lost in
        # the congested queue leaves the connection CONNECTING forever.
        # Model the user hitting reload: replace the endpoint (same flow
        # id, so accounting and the bearer registration carry over), a
        # few times, then give up.
        while True:
            yield sim.timeout(1.0)
            for conn_id, st in flows.items():
                if st["app"] != "web" or st["done"]:
                    continue
                conn = st["server_conn"]
                if (conn.state is ConnectionState.CONNECTING
                        and sim.now - st["born"]
                        > WEB_RETRY_S * (st["retries"] + 1)):
                    conn.close()
                    if st["retries"] >= WEB_RETRIES:
                        st["done"] = True   # abandoned, never completes
                        continue
                    st["retries"] += 1
                    retry = TcpConnection(sim, server_demux,
                                          conn_id=conn_id,
                                          peer_addr=st["addr"], tls=False,
                                          ecn=aqm_on)
                    st["server_conn"] = retry
                    retry.on_established = (
                        lambda c=retry, n=st["size"]: c.send_app_data(n))
                    retry.connect()

    sim.process(web_retry_sweep(), name="web-retry-sweep")

    sources = []
    for ue, app in assignment:
        ue_id = ue.ue_id
        addr = net.ue_hosts[ue_id].address
        if app == "web":
            rate = web_bps / (8.0 * WEB_MEAN_BYTES) / per_app["web"]
            counter = {"n": 0}
            src = make_app_source(
                "web", sim,
                lambda size, u=ue_id, a=addr, c=counter:
                    open_web_flow(u, a, size, c),
                name=f"web-{ue_id}", rate_per_s=rate,
                mean_bytes=WEB_MEAN_BYTES, diurnal=diurnal)
        else:
            conn_id = f"{app}:{ue_id}"
            conn = TcpConnection(sim, server_demux, conn_id=conn_id,
                                 peer_addr=addr, tls=False, ecn=aqm_on)
            st = {"app": app, "sent": 0, "delivered": 0,
                  "pending": deque(), "hist": hists[app],
                  "server_conn": conn}
            flows[conn_id] = st
            if policer is not None:
                policer.register_bearer(conn_id, QOS_CLASS[app])

            def emit(n_bytes: int, st=st, conn=conn) -> None:
                if conn.state in (ConnectionState.CLOSED,
                                  ConnectionState.BROKEN):
                    return
                st["sent"] += n_bytes
                totals["sent"] += n_bytes
                st["pending"].append((st["sent"], sim.now))
                conn.send_app_data(n_bytes)

            overrides = {}
            if app == "video":
                overrides = {"bitrate_bps": VIDEO_BPS,
                             "segment_s": VIDEO_SEGMENT_S}
            src = make_app_source(app, sim, emit, name=f"{app}-{ue_id}",
                                  **overrides)
            conn.connect()
        src.start()
        sources.append(src)

    def snapshot() -> None:
        base["sent"] = totals["sent"]
        base["delivered"] = totals["delivered"]

    sim.schedule(warmup_s, snapshot)
    until = t1 + warmup_s + measure_s
    if scenario:
        injector = FaultInjector(sim)
        plan = compose_scenario(scenario, net, injector, t1 + chaos_at_s)
        until = max(until, plan.end_s + 10.0)
    sim.run(until=until)
    if checker is not None:
        checker.verify()

    # -- harvest -------------------------------------------------------------
    window_s = sim.now - (t1 + warmup_s)

    def q(app: str, quantile: float) -> float:
        hist = hists[app]
        return 0.0 if hist.count == 0 else hist.quantile(quantile)

    return {
        "load_x": load,
        "offered_mbps": (totals["sent"] - base["sent"]) * 8.0
                        / window_s / 1e6,
        "goodput_mbps": (totals["delivered"] - base["delivered"]) * 8.0
                        / window_s / 1e6,
        "web_done": totals["web_done"] / max(1, totals["web_started"]),
        "web_fct_p50_s": q("web", 0.5),
        "web_fct_p999_s": q("web", 0.999),
        "video_p999_s": q("video", 0.999),
        "voip_p999_ms": q("voip", 0.999) * 1e3,
        "ecn_marks": sim.ecn_marks,
        "aqm_drops": sum(link.dropped_aqm for link in bottlenecks),
        "tail_drops": sum(link.dropped_overflow for link in bottlenecks),
        "shed_gbr": 0 if policer is None else policer.shed_by_class[0],
        "shed_web": 0 if policer is None else policer.shed_by_class[1],
        "shed_bulk": 0 if policer is None else policer.shed_by_class[2],
        "peak_queue": sim.link_peak_queue,
    }


_ARCHITECTURES = (("Centralized LTE", "cent"), ("dLTE stubs", "dlte"))


def run(loads: Optional[Sequence[float]] = None, n_aps: int = 1,
        ue_per_ap: int = 6, seed: int = 11, scenario: str = "",
        invariants: bool = False, qos: bool = True, aqm: str = "codel",
        chaos_at_s: float = 2.0, settle_s: float = 6.0,
        warmup_s: float = 2.0, measure_s: float = 15.0,
        backhaul_bps: float = 6e6) -> ResultTable:
    """Goodput-vs-offered-load across architectures and queue disciplines.

    ``loads`` multiplies the aggregate access capacity: each cell
    offers ``load * n_aps * backhaul_bps`` of web/video traffic (plus
    fixed-rate VoIP) and is run once with the seed's drop-tail FIFO and
    once with ``aqm`` (+ ECN) on every access link. ``qos`` installs
    the per-bearer policer at the centralized gateway; ``scenario``
    overlays a named chaos storm at ``chaos_at_s`` after traffic
    starts; ``invariants`` arms the conservation-law checker (packet
    *and* byte exact on the managed links) and raises on any breach.
    """
    if loads is None:
        loads = (0.5, 2.0, 4.0)
    cells = [(arch_key, aqm_on, load, n_aps, ue_per_ap, seed, scenario,
              invariants, qos, aqm, chaos_at_s, settle_s, warmup_s,
              measure_s, backhaul_bps)
             for load in loads
             for _label, arch_key in _ARCHITECTURES
             for _mode, aqm_on in _MODES]
    results = parallel_map(_run_cell, cells,
                           costs=[cell[2] for cell in cells])

    suffix = f" under {scenario!r}" if scenario else ""
    table = ResultTable(
        f"E18: sustained overload{suffix} — goodput vs offered load, "
        f"{aqm}+ECN vs drop-tail",
        ["arch", "mode", "load_x", "offered_mbps", "goodput_mbps",
         "web_done", "web_fct_p50_s", "web_fct_p999_s", "video_p999_s",
         "voip_p999_ms", "ecn_marks", "aqm_drops", "tail_drops",
         "shed_gbr", "shed_web", "shed_bulk", "peak_queue"])
    labels = [(label, mode) for _load in loads
              for label, _key in _ARCHITECTURES
              for mode, _aqm_on in _MODES]
    for (label, mode), row in zip(labels, results):
        table.add_row(arch=label, mode=mode, **row)
    return table
