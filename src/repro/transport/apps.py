"""Applications over the transport layer.

Two OTT-style applications drive the experiments:

* :class:`BulkTransferApp` — a long download/upload (the "video stream"
  that crosses handovers in E6). It owns reconnection policy: when a TCP
  connection breaks it opens a fresh one and resumes at the acked byte
  offset (HTTP range semantics), paying handshake plus slow-start; a QUIC
  connection never breaks, so the app never intervenes.
* :class:`RequestResponseApp` — a ping-style exchange for measuring
  user-plane latency (F1) and the cost of consulting a distant OTT
  service (the §4.2 dwell-vs-RTT breakdown).
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple, Type

from repro.net.addressing import IPv4Address
from repro.simcore.simulator import Simulator
from repro.transport.base import ConnectionState, TransportConnection, TransportDemux


class BulkTransferApp:
    """Transfers ``total_bytes`` from this endpoint to a server.

    Records a time series of (time, cumulative acked bytes) and computes
    stall intervals, so E6 can report interruption time per handover.
    """

    def __init__(self, sim: Simulator, demux: TransportDemux,
                 server_addr: IPv4Address,
                 connection_cls: Type[TransportConnection],
                 total_bytes: int, **conn_kwargs) -> None:
        if total_bytes <= 0:
            raise ValueError("total_bytes must be positive")
        self.sim = sim
        self.demux = demux
        self.server_addr = server_addr
        self.connection_cls = connection_cls
        self.conn_kwargs = conn_kwargs
        self.total_bytes = total_bytes
        self.conn: Optional[TransportConnection] = None
        self.reconnects = 0
        self.progress: List[Tuple[float, int]] = []   # (time, bytes acked)
        self.done_at: Optional[float] = None
        self.on_done: Optional[Callable[[], None]] = None
        self._sent = 0
        self._completed_bytes = 0  # acked bytes banked from dead connections

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> None:
        """Open the first connection and begin pushing data."""
        self._open_connection()

    def _open_connection(self) -> None:
        conn = self.connection_cls(sim=self.sim, demux=self.demux,
                                   peer_addr=self.server_addr,
                                   **self.conn_kwargs)
        conn.on_established = self._on_established
        conn.on_broken = self._on_broken
        self.conn = conn
        conn.connect()

    def _on_established(self) -> None:
        remaining = self.total_bytes - self._acked_total()
        if remaining > 0:
            self.conn.send_app_data(remaining)
            self._sent = remaining
        self._watch()

    def _acked_total(self) -> int:
        """Bytes durably delivered across all connections so far."""
        live = self.conn.bytes_acked if self.conn else 0
        return self._completed_bytes + live

    def _on_broken(self) -> None:
        """TCP path death: bank the progress, reconnect, resume."""
        self._completed_bytes += self.conn.bytes_acked
        self.conn.close()
        self.reconnects += 1
        if self._completed_bytes < self.total_bytes:
            self._open_connection()

    def _watch(self) -> None:
        """Poll acked progress every 10 ms into the time series."""
        if self.done_at is not None:
            return
        total = self._acked_total()
        if not self.progress or self.progress[-1][1] != total:
            self.progress.append((self.sim.now, total))
        if total >= self.total_bytes:
            self.done_at = self.sim.now
            if self.on_done is not None:
                self.on_done()
            return
        if self.conn and self.conn.state in (ConnectionState.ESTABLISHED,
                                             ConnectionState.CONNECTING):
            self.sim.schedule(0.010, self._watch)

    # -- mobility hook -----------------------------------------------------------

    def on_address_change(self, new_addr: IPv4Address) -> None:
        """Propagate a handover's address change into the live connection."""
        if self.conn is not None and self.conn.state not in (
                ConnectionState.CLOSED,):
            self.conn.on_local_address_change(new_addr)

    # -- analysis ------------------------------------------------------------------

    def stall_intervals(self, min_gap_s: float = 0.1) -> List[Tuple[float, float]]:
        """Intervals longer than ``min_gap_s`` with no delivery progress."""
        gaps = []
        for (t0, _b0), (t1, _b1) in zip(self.progress, self.progress[1:]):
            if t1 - t0 > min_gap_s:
                gaps.append((t0, t1))
        return gaps

    @property
    def longest_stall_s(self) -> float:
        """Duration of the worst delivery gap."""
        gaps = self.stall_intervals(min_gap_s=0.0)
        return max((t1 - t0 for t0, t1 in gaps), default=0.0)


class RequestResponseApp:
    """Issues a request and waits for a fixed-size response.

    Measures completion latency over a fresh or resumed connection; used
    for the F1 path comparison and the OTT-RTT term in E6's breakdown
    model.
    """

    def __init__(self, sim: Simulator, demux: TransportDemux,
                 server_addr: IPv4Address,
                 connection_cls: Type[TransportConnection],
                 request_bytes: int = 400, response_bytes: int = 2000,
                 **conn_kwargs) -> None:
        self.sim = sim
        self.demux = demux
        self.server_addr = server_addr
        self.connection_cls = connection_cls
        self.request_bytes = request_bytes
        self.response_bytes = response_bytes
        self.conn_kwargs = conn_kwargs
        self.started_at: Optional[float] = None
        self.completed_at: Optional[float] = None
        self.conn: Optional[TransportConnection] = None

    def start(self) -> None:
        """Connect and send the request; completion is response receipt."""
        self.started_at = self.sim.now
        conn = self.connection_cls(sim=self.sim, demux=self.demux,
                                   peer_addr=self.server_addr,
                                   **self.conn_kwargs)
        self.conn = conn
        conn.on_established = lambda: conn.send_app_data(self.request_bytes)
        conn.connect()

    def attach_responder(self, server_conn: TransportConnection) -> None:
        """Server side: answer each fully-received request with the response."""
        received = {"n": 0}

        def on_receive(n_bytes: int) -> None:
            received["n"] += n_bytes
            if received["n"] >= self.request_bytes:
                received["n"] = 0
                server_conn.send_app_data(self.response_bytes)

        server_conn.on_receive = on_receive

    def watch_completion(self, client_received: dict) -> None:
        """Client side: mark completion when the full response arrived."""
        def on_receive(n_bytes: int) -> None:
            client_received["n"] = client_received.get("n", 0) + n_bytes
            if (client_received["n"] >= self.response_bytes
                    and self.completed_at is None):
                self.completed_at = self.sim.now

        self.conn.on_receive = on_receive

    @property
    def latency_s(self) -> Optional[float]:
        """Request-to-response completion time, or None if unfinished."""
        if self.started_at is None or self.completed_at is None:
            return None
        return self.completed_at - self.started_at
