"""The radio cell: one eNodeB's PHY/MAC face.

Combines a band, a resource grid, a scheduler, and a link budget into
per-TTI throughput evaluation for attached UEs. The coordination layer
(§4.3) manipulates the grid's reservations; the cell schedules inside
whatever slice it currently owns.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional

from repro.geo.points import Point
from repro.mac.arena import UeArena, batch_default
from repro.mac.schedulers import (
    LteScheduler,
    MaxCiScheduler,
    ProportionalFairScheduler,
    QosAwareScheduler,
    RoundRobinScheduler,
    SchedulableUser,
)
from repro.mac.uplink import ContiguousUplinkScheduler
from repro.phy.bands import Band
from repro.phy.harq import harq_goodput_factor
from repro.phy.linkbudget import LinkBudget, Radio
from repro.phy.mcs import select_lte_cqi
from repro.phy.resource_grid import ResourceGrid, bits_per_prb
from repro.telemetry import MetricsRegistry
from repro.telemetry.hub import ambient_registry


@dataclass
class UeRadioContext:
    """Cell-side radio state for one attached UE."""

    ue_id: str
    radio: Radio
    backlog_bits: float = float("inf")
    gbr_bps: float = 0.0
    priority: int = 9


#: Downlink scheduler classes with a verified batch (``_assign_batch``)
#: twin. Exact-type membership: a subclass overriding ``_assign`` would
#: silently diverge from an inherited batch twin, so subclasses take the
#: scalar path until they are added here.
_BATCH_DL_SCHEDULERS = (RoundRobinScheduler, MaxCiScheduler,
                        ProportionalFairScheduler, QosAwareScheduler)


class Cell:
    """One sector of an eNodeB.

    ``batch`` selects the TTI engine: the vectorized per-cell UE arena
    (default, see :mod:`repro.mac.arena`) or the scalar reference path.
    Both produce bit-identical grants, delivered bits, telemetry, and
    EWMA state; ``None`` defers to the process-wide default
    (``arena.batch_default()`` / ``REPRO_BATCH_TTI``).
    """

    def __init__(self, name: str, band: Band, position: Point,
                 link_budget: LinkBudget,
                 tx_power_dbm: float = 43.0,
                 antenna_gain_dbi: float = 15.0,
                 height_m: float = 30.0,
                 scheduler: Optional[LteScheduler] = None,
                 harq_enabled: bool = True,
                 harq_max_retx: int = 3,
                 metrics: Optional[MetricsRegistry] = None,
                 batch: Optional[bool] = None) -> None:
        self.name = name
        self.band = band
        self.radio = Radio(position=position, tx_power_dbm=tx_power_dbm,
                           antenna_gain_dbi=antenna_gain_dbi,
                           height_m=height_m, noise_figure_db=5.0)
        self.link_budget = link_budget
        self.grid = ResourceGrid(band.bandwidth_hz)
        self.scheduler = scheduler or ProportionalFairScheduler()
        #: PUSCH side: SC-FDMA requires contiguous per-UE blocks
        self.uplink_scheduler = ContiguousUplinkScheduler()
        self.harq_enabled = harq_enabled
        self.harq_max_retx = harq_max_retx
        self._ues: Dict[str, UeRadioContext] = {}
        self._batch = batch_default() if batch is None else bool(batch)
        self._arena = UeArena(self)
        #: PRBs this cell may use this TTI (set by coordination; default all)
        self.allowed_prbs: FrozenSet[int] = self.grid.all_prbs
        #: Interfering cells currently transmitting on overlapping PRBs.
        self.interferers: List["Cell"] = []
        # A Cell has no simulator of its own (it is driven by explicit
        # TTI calls), so it records into the ambient registry unless
        # handed one. Instruments cached; recording is passive.
        if metrics is None:
            metrics = ambient_registry()
        self._m_rsrp = metrics.histogram("phy.rsrp_dbm", cell=name)
        self._m_sinr = metrics.histogram("phy.sinr_db", cell=name)
        self._m_harq = metrics.histogram("phy.harq.goodput_factor", cell=name)
        self._m_no_cqi = metrics.counter("phy.mcs.below_cqi_floor", cell=name)
        self._m_ttis = metrics.counter("mac.cell.ttis", cell=name)
        self._m_prbs = metrics.histogram("mac.cell.granted_prbs", cell=name)
        self._m_attached = metrics.gauge("mac.cell.attached_ues", cell=name)

    @property
    def position(self) -> Point:
        """Cell site location."""
        return self.radio.position

    @property
    def batch(self) -> bool:
        """Whether the batch TTI engine is active for this cell."""
        return self._batch

    @batch.setter
    def batch(self, enabled: bool) -> None:
        enabled = bool(enabled)
        if self._batch and not enabled:
            # hand the array EWMA state back so the scalar path resumes
            # from identical averages
            self._arena.sync_stores_to_dicts()
        self._batch = enabled

    # -- UE management -----------------------------------------------------------

    def add_ue(self, ctx: UeRadioContext) -> None:
        """Attach a UE's radio context (rejects duplicates)."""
        if ctx.ue_id in self._ues:
            raise ValueError(f"UE {ctx.ue_id} already attached to {self.name}")
        self._ues[ctx.ue_id] = ctx
        self._arena.attach(ctx)
        self._m_attached.set(len(self._ues))
        # RSRP is deterministic in (cell, UE) positions (shadowing is
        # hash-based), so observing it here cannot perturb a run.
        self._m_rsrp.observe(self.rsrp_to(ctx.radio))

    def remove_ue(self, ue_id: str) -> None:
        """Detach a UE and drop its scheduler history."""
        if self._ues.pop(ue_id, None) is not None:
            self._arena.detach(ue_id)
            self._m_attached.set(len(self._ues))
        self.scheduler.forget(ue_id)

    @property
    def attached_ues(self) -> List[str]:
        """Ids of currently attached UEs."""
        return list(self._ues)

    # -- radio evaluation -----------------------------------------------------------

    def sinr_to(self, ue_radio: Radio,
                conflicting_cells: Optional[List["Cell"]] = None) -> float:
        """Downlink SINR at a UE, counting overlapping-PRB cells."""
        cells = self.interferers if conflicting_cells is None else conflicting_cells
        return self.link_budget.sinr_db(
            self.radio, ue_radio, interferers=[c.radio for c in cells
                                               if c is not self])

    def rsrp_to(self, ue_radio: Radio) -> float:
        """Reference signal received power (dBm) — the handover metric."""
        return self.link_budget.rx_power_dbm(self.radio, ue_radio)

    # -- per-TTI scheduling ------------------------------------------------------------

    def _use_batch(self, scheduler: LteScheduler, batch_types) -> bool:
        """Batch engine applies: enabled, a known policy (exact type —
        subclasses overriding ``_assign`` must not inherit a batch twin),
        and the scheduler's EWMA state not owned by another cell's
        arena."""
        if not self._batch or type(scheduler) not in batch_types:
            return False
        owner = scheduler._array_store_arena
        return owner is None or owner is self._arena

    def _deliver(self, grants: Dict[str, FrozenSet[int]],
                 sinrs: Dict[str, float]) -> Dict[str, float]:
        """Shared grant->bits tail: CQI lookup, HARQ factor, telemetry.

        Goodput per UE = granted PRBs x bits/PRB at its CQI x the HARQ
        delivery factor at its SINR. Used by both the downlink and
        uplink scalar paths (the empty-grant skip is a no-op for the
        downlink, whose allocator already filters empties).
        """
        delivered: Dict[str, float] = {}
        for ue_id, prbs in grants.items():
            if not prbs:
                continue
            sinr = sinrs[ue_id]
            entry = select_lte_cqi(sinr)
            if entry is None:
                self._m_no_cqi.inc()
                continue
            factor = 1.0
            if self.harq_enabled:
                factor = harq_goodput_factor(sinr, entry.min_sinr_db,
                                             max_retx=self.harq_max_retx)
                self._m_harq.observe(factor)
            self._m_prbs.observe(len(prbs))
            delivered[ue_id] = (len(prbs)
                                * bits_per_prb(entry.efficiency_bps_hz)
                                * factor)
        return delivered

    def schedule_tti(self) -> Dict[str, float]:
        """Run one TTI: allocate the allowed PRBs, return bits per UE."""
        if self._use_batch(self.scheduler, _BATCH_DL_SCHEDULERS):
            return self._schedule_tti_batch()
        self._m_ttis.inc()
        users = []
        sinrs: Dict[str, float] = {}
        for ctx in self._ues.values():
            sinr = self.sinr_to(ctx.radio)
            sinrs[ctx.ue_id] = sinr
            self._m_sinr.observe(sinr)
            users.append(SchedulableUser(user_id=ctx.ue_id, sinr_db=sinr,
                                         backlog_bits=ctx.backlog_bits,
                                         gbr_bps=ctx.gbr_bps,
                                         priority=ctx.priority))
        grants = self.scheduler.allocate(users, self.allowed_prbs)
        return self._deliver(grants, sinrs)

    def _schedule_tti_batch(self) -> Dict[str, float]:
        self._m_ttis.inc()
        arena = self._arena
        bank = arena.refresh_downlink()
        if arena.ids:
            self._m_sinr.observe_many(bank.sinr_arr)
        grants = self.scheduler.allocate_batch(arena, bank, self.allowed_prbs)
        return self._deliver_from_bank(arena, bank, grants)

    def _deliver_from_bank(self, arena: UeArena, bank,
                           grants: Dict[str, FrozenSet[int]]) -> Dict[str, float]:
        """Batch twin of :meth:`_deliver`: CQI/HARQ come from cached
        arena rows; the float expression and telemetry order match the
        scalar tail exactly (grants are pre-filtered non-empty)."""
        delivered: Dict[str, float] = {}
        slot_of = arena.slot_of
        cqi = bank.cqi
        harq = bank.harq
        b = bank.b
        harq_on = self.harq_enabled
        for ue_id, prbs in grants.items():
            s = slot_of[ue_id]
            if cqi[s] < 0:
                self._m_no_cqi.inc()
                continue
            factor = 1.0
            if harq_on:
                factor = harq[s]
                self._m_harq.observe(factor)
            self._m_prbs.observe(len(prbs))
            delivered[ue_id] = len(prbs) * b[s] * factor
        return delivered

    def uplink_sinr_from(self, ue_radio: Radio) -> float:
        """Uplink SINR at the cell from a UE (SC-FDMA PAPR credit applies
        via the UE radio's ``ul_papr_advantage_db``)."""
        return self.link_budget.sinr_db(ue_radio, self.radio)

    def schedule_uplink_tti(self) -> Dict[str, float]:
        """One PUSCH TTI: contiguous per-UE blocks, bits per UE.

        Uses the uplink link budget (UE transmits, cell receives) and the
        same HARQ goodput adjustment as the downlink.
        """
        if self._use_batch(self.uplink_scheduler, (ContiguousUplinkScheduler,)):
            return self._schedule_uplink_tti_batch()
        self._m_ttis.inc()
        users = []
        sinrs: Dict[str, float] = {}
        for ctx in self._ues.values():
            sinr = self.uplink_sinr_from(ctx.radio)
            sinrs[ctx.ue_id] = sinr
            users.append(SchedulableUser(user_id=ctx.ue_id, sinr_db=sinr,
                                         backlog_bits=ctx.backlog_bits,
                                         gbr_bps=ctx.gbr_bps,
                                         priority=ctx.priority))
        grants = self.uplink_scheduler.allocate(users, self.allowed_prbs)
        return self._deliver(grants, sinrs)

    def _schedule_uplink_tti_batch(self) -> Dict[str, float]:
        # the scalar uplink path does not observe per-UE SINR — neither
        # does this one
        self._m_ttis.inc()
        arena = self._arena
        bank = arena.refresh_uplink()
        grants = self.uplink_scheduler.allocate_batch(arena, bank,
                                                      self.allowed_prbs)
        return self._deliver_from_bank(arena, bank, grants)

    def throughput_bps(self, tti_results: List[Dict[str, float]]) -> Dict[str, float]:
        """Aggregate a list of per-TTI results into per-UE bits/s.

        Single-pass: each UE gets one accumulator cell on first sight
        (insertion order preserved), then per-TTI contributions add into
        the preallocated list — no per-TTI ``dict.get`` default churn.
        """
        if not tti_results:
            return {}
        index: Dict[str, int] = {}
        sums: List[float] = []
        for result in tti_results:
            for ue_id, bits in result.items():
                i = index.get(ue_id)
                if i is None:
                    index[ue_id] = len(sums)
                    sums.append(bits)
                else:
                    sums[i] += bits
        duration_s = len(tti_results) * 1e-3
        return {ue_id: sums[i] / duration_s for ue_id, i in index.items()}
