"""AQM disciplines (RED / CoDel), ECN marking, and managed-mode links.

Covers the PR-9 data-plane machinery: verdict state machines in
isolation, the ``make_aqm`` factory, AQM/ECN/``queue_bytes`` integration
on :class:`Link` (drop causes, byte conservation, gauge exactness), and
the default-off guarantee that an unmanaged link never touches the
managed ledger.
"""

import pytest

from repro.invariants.checks import InvariantChecker
from repro.net.aqm import (DROP, MARK, PASS, AqmDiscipline, CoDelDiscipline,
                           RedDiscipline, make_aqm)
from repro.net.links import Link
from repro.net.packet import ECN_CE, ECN_ECT, ECN_NOT_ECT, Packet
from repro.simcore.simulator import Simulator


@pytest.fixture
def sim():
    return Simulator(seed=0)


def _packet(size=500, ecn=ECN_NOT_ECT):
    return Packet(src=None, dst=None, size_bytes=size, ecn=ecn)


# -- factory ---------------------------------------------------------------

def test_make_aqm_drop_tail_names_mean_no_discipline():
    for name in ("", "drop-tail", "droptail", "none"):
        assert make_aqm(name) is None


def test_make_aqm_builds_disciplines_with_kwargs():
    red = make_aqm("red", min_th=2.0, max_th=8.0, ecn=True)
    assert isinstance(red, RedDiscipline)
    assert red.min_th == 2.0 and red.max_th == 8.0 and red.ecn
    codel = make_aqm("codel", target_s=0.02, interval_s=0.2)
    assert isinstance(codel, CoDelDiscipline)
    assert codel.target_s == 0.02 and codel.interval_s == 0.2


def test_make_aqm_rejects_unknown_name():
    with pytest.raises(ValueError):
        make_aqm("blue")


def test_base_discipline_passes_everything():
    aqm = AqmDiscipline()
    assert aqm.on_enqueue(50, 50_000, _packet(), 1.0) == PASS
    assert aqm.on_dequeue(10.0, 1.0) == PASS


# -- RED state machine -----------------------------------------------------

def test_red_validates_params():
    with pytest.raises(ValueError):
        RedDiscipline(min_th=5.0, max_th=5.0)
    with pytest.raises(ValueError):
        RedDiscipline(min_th=0.0, max_th=5.0)
    with pytest.raises(ValueError):
        RedDiscipline(max_p=0.0)
    with pytest.raises(ValueError):
        RedDiscipline(weight=1.5)


def test_red_passes_below_min_threshold():
    red = RedDiscipline(min_th=5.0, max_th=15.0, weight=1.0)
    for qlen in (0, 1, 2, 3, 4):
        assert red.on_enqueue(qlen, qlen * 500, _packet(), 0.0) == PASS


def test_red_forces_verdict_at_max_threshold():
    # weight=1.0 makes the EWMA track the instantaneous queue exactly,
    # so a queue at/above max_th is a deterministic drop (no RNG draw)
    red = RedDiscipline(min_th=5.0, max_th=15.0, weight=1.0)
    assert red.on_enqueue(20, 10_000, _packet(), 0.0) == DROP
    marked = RedDiscipline(min_th=5.0, max_th=15.0, weight=1.0, ecn=True)
    assert marked.on_enqueue(20, 10_000, _packet(), 0.0) == MARK


def test_red_probabilistic_region_is_seed_deterministic():
    def verdicts(seed):
        sim = Simulator(seed=seed)
        link = Link(sim, rate_bps=8000.0, delay_s=0.0, name="red-link")
        red = RedDiscipline(min_th=2.0, max_th=20.0, max_p=0.5, weight=1.0)
        red.bind(link)
        return [red.on_enqueue(10, 5000, _packet(), 0.0) for _ in range(50)]

    first = verdicts(0)
    assert first == verdicts(0)          # same seed, same drop pattern
    assert DROP in first and PASS in first  # genuinely probabilistic


def test_red_idle_gap_decays_average():
    sim = Simulator(seed=0)
    link = Link(sim, rate_bps=8000.0, delay_s=0.0, name="red-idle")
    red = RedDiscipline(min_th=2.0, max_th=4.0, weight=0.5)
    red.bind(link)
    for _ in range(20):
        red.on_enqueue(10, 5000, _packet(), 0.0)
    congested = red.avg
    assert congested > red.max_th
    # a long idle stretch must pull the average back under min_th
    red.on_enqueue(0, 0, _packet(), 1000.0)
    assert red.avg < congested
    assert red.on_enqueue(0, 0, _packet(), 2000.0) == PASS


# -- CoDel state machine ---------------------------------------------------

def test_codel_validates_params():
    with pytest.raises(ValueError):
        CoDelDiscipline(target_s=0.0)
    with pytest.raises(ValueError):
        CoDelDiscipline(interval_s=-1.0)


def test_codel_state_machine_follows_the_control_law():
    codel = CoDelDiscipline(target_s=0.005, interval_s=0.1)
    # below target: nothing happens
    assert codel.on_dequeue(0.001, 0.00) == PASS
    assert not codel.dropping
    # above target starts the interval timer, but no verdict yet
    assert codel.on_dequeue(0.010, 0.00) == PASS
    assert codel.on_dequeue(0.010, 0.05) == PASS
    # a full interval above target: enter dropping, first drop now
    assert codel.on_dequeue(0.010, 0.11) == DROP
    assert codel.dropping and codel.count == 1
    # next drop is scheduled interval/sqrt(count) later, not before
    assert codel.on_dequeue(0.010, 0.15) == PASS
    assert codel.on_dequeue(0.010, 0.22) == DROP
    assert codel.count == 2
    # sojourn back under target leaves the dropping state immediately
    assert codel.on_dequeue(0.001, 0.30) == PASS
    assert not codel.dropping


def test_codel_ecn_mode_marks_instead_of_dropping():
    codel = CoDelDiscipline(target_s=0.005, interval_s=0.1, ecn=True)
    codel.on_dequeue(0.010, 0.00)
    assert codel.on_dequeue(0.010, 0.11) == MARK


# -- link integration ------------------------------------------------------

def _congest(sim, link, n=5, size=500, ecn=ECN_NOT_ECT):
    """Blast ``n`` packets at t=0 into a 1000 B/s link and run it dry."""
    got = []
    link.connect(got.append)
    sent = [link.send(_packet(size, ecn=ecn)) for _ in range(n)]
    sim.run(until=60.0)
    return got, sent


def test_link_aqm_drops_are_counted_by_cause(sim):
    # RED with weight=1.0, max_th=2: the 4th+ packets of a burst see a
    # queue of >= 2 and are deterministically dropped with cause "aqm"
    link = Link(sim, rate_bps=8000.0, delay_s=0.0, queue_packets=50,
                name="aqm-drop")
    link.set_aqm(RedDiscipline(min_th=1.0, max_th=2.0, weight=1.0))
    got, sent = _congest(sim, link, n=5)
    assert sent == [True, True, True, False, False]
    assert len(got) == 3
    assert link.dropped_aqm == 2
    assert link.dropped == 2 == (link.dropped_overflow + link.dropped_down
                                 + link.dropped_loss + link.dropped_aqm)
    assert link.offered == link.delivered + link.dropped + link.in_flight


def test_link_aqm_marks_ect_packets_instead(sim):
    link = Link(sim, rate_bps=8000.0, delay_s=0.0, queue_packets=50,
                name="aqm-mark")
    link.set_aqm(RedDiscipline(min_th=1.0, max_th=2.0, weight=1.0, ecn=True))
    got, sent = _congest(sim, link, n=5, ecn=ECN_ECT)
    # every packet survives: congestion became CE marks, not drops
    assert sent == [True] * 5
    assert len(got) == 5
    assert link.dropped == 0
    assert link.marked_ecn == 2
    assert sim.ecn_marks == 2
    assert [p.ecn for p in got] == [ECN_ECT, ECN_ECT, ECN_ECT, ECN_CE, ECN_CE]


def test_link_aqm_mark_falls_back_to_drop_for_non_ect(sim):
    # an ECN-enabled AQM still has to drop packets whose transport never
    # negotiated ECN (codepoint not-ECT)
    link = Link(sim, rate_bps=8000.0, delay_s=0.0, queue_packets=50,
                name="aqm-fallback")
    link.set_aqm(RedDiscipline(min_th=1.0, max_th=2.0, weight=1.0, ecn=True))
    got, sent = _congest(sim, link, n=5, ecn=ECN_NOT_ECT)
    assert sent == [True, True, True, False, False]
    assert link.dropped_aqm == 2
    assert link.marked_ecn == 0


def test_link_codel_drops_on_sojourn(sim):
    # 1000 B/s serialization means the Nth queued packet waits N/2
    # seconds — far above target, so CoDel must engage at dequeue time
    link = Link(sim, rate_bps=8000.0, delay_s=0.0, queue_packets=50,
                name="codel-link")
    link.set_aqm(CoDelDiscipline(target_s=0.005, interval_s=0.1))
    got, sent = _congest(sim, link, n=10)
    assert all(sent)                    # CoDel never rejects at enqueue
    assert link.dropped_aqm > 0         # ... but culls at dequeue
    assert len(got) == 10 - link.dropped_aqm
    assert link.offered_bytes == (link.delivered_bytes + link.dropped_bytes
                                  + link.in_flight_bytes)


def test_link_queue_bytes_capacity(sim):
    # byte cap of 1000 B admits exactly two queued 500 B packets
    link = Link(sim, rate_bps=8000.0, delay_s=0.0, queue_packets=100,
                queue_bytes=1000, name="byte-cap")
    assert link._managed
    got, sent = _congest(sim, link, n=5)
    assert sent == [True, True, True, False, False]
    assert link.dropped_overflow == 2
    assert link.dropped_bytes == 1000
    assert len(got) == 3


def test_link_queue_bytes_validates(sim):
    with pytest.raises(ValueError):
        Link(sim, rate_bps=8000.0, delay_s=0.0, queue_bytes=0)


def test_managed_byte_conservation_under_mixed_causes(sim):
    # loss + AQM + overflow together must still close the byte ledger
    link = Link(sim, rate_bps=8000.0, delay_s=0.0, queue_packets=3,
                queue_bytes=1200, name="mixed")
    link.set_aqm(RedDiscipline(min_th=1.0, max_th=2.0, weight=1.0, ecn=True))
    link.set_loss_rate(0.2)
    got = []
    link.connect(got.append)
    for i in range(30):
        sim.schedule(i * 0.1, link.send, _packet(400, ecn=ECN_ECT))
    sim.run(until=60.0)
    assert link.offered == 30
    assert link.offered_bytes == 30 * 400
    assert link.offered == link.delivered + link.dropped + link.in_flight
    assert link.offered_bytes == (link.delivered_bytes + link.dropped_bytes
                                  + link.in_flight_bytes)
    assert link.dropped_loss > 0


def test_invariant_checker_audits_managed_links(sim):
    link = Link(sim, rate_bps=8000.0, delay_s=0.0, queue_packets=50,
                queue_bytes=2000, name="audited")
    link.set_aqm(CoDelDiscipline(target_s=0.005, interval_s=0.05, ecn=True))
    checker = InvariantChecker(sim)
    checker.watch_link(link)
    link.connect(lambda p: None)
    for i in range(20):
        sim.schedule(i * 0.05, link.send, _packet(ecn=ECN_ECT))
    sim.run(until=30.0)
    assert checker.check_now() == []
    # the byte law is actually armed: a fabricated leak must trip it
    link.delivered_bytes += 1
    violations = checker.check_now()
    assert any("byte leak" in v.detail for v in violations)


def test_queue_depth_gauge_is_exact_in_both_modes(sim):
    for kwargs in ({}, {"queue_bytes": 100_000}):
        link = Link(sim, rate_bps=8000.0, delay_s=0.0, queue_packets=50,
                    name=f"gauge-{len(kwargs)}", **kwargs)
        link.connect(lambda p: None)
        gauge = sim.metrics.gauge("net.link.queue_depth", link=link.name)
        for _ in range(5):
            link.send(_packet())
        # one packet in service, four queued
        assert link.queue_depth == 4
        assert gauge.value == 4
        sim.run(until=sim.now + 1.01)   # two more serialized out
        assert gauge.value == link.queue_depth == 2


def test_peak_queue_telemetry_tracks_high_water(sim):
    link = Link(sim, rate_bps=8000.0, delay_s=0.0, queue_packets=50,
                name="peak")
    link.connect(lambda p: None)
    for _ in range(7):
        link.send(_packet())
    sim.run(until=60.0)
    assert sim.link_peak_queue == 6     # 7 sends, one straight to service


def test_unmanaged_link_never_touches_the_managed_ledger(sim):
    # default-off guarantee: no AQM, no queue_bytes -> the seed's exact
    # drop-tail path, with the byte ledger provably untouched
    link = Link(sim, rate_bps=8000.0, delay_s=0.0, queue_packets=2,
                name="plain")
    got, sent = _congest(sim, link, n=5)
    assert not link._managed
    assert sent == [True, True, True, False, False]
    assert link.dropped_overflow == 2 and link.dropped_aqm == 0
    assert (link.offered_bytes == link.delivered_bytes == link.dropped_bytes
            == link.in_flight_bytes == 0)
    assert link._egress_times is None


def test_enable_managed_after_traffic_is_rejected(sim):
    link = Link(sim, rate_bps=8000.0, delay_s=0.0, name="too-late")
    link.connect(lambda p: None)
    link.send(_packet())
    with pytest.raises(RuntimeError):
        link.set_aqm(make_aqm("codel"))


def test_set_aqm_none_is_a_no_op(sim):
    link = Link(sim, rate_bps=8000.0, delay_s=0.0, name="still-plain")
    link.set_aqm(make_aqm("drop-tail"))
    assert not link._managed
