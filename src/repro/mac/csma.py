"""WiFi DCF: slotted CSMA/CA with binary exponential backoff.

Two implementations of the same MAC, used to cross-validate each other:

* :class:`CsmaSimulation` — an event-level slotted simulation over an
  explicit *hearing graph*, so hidden terminals (nodes that contend for
  the same receiver but cannot sense each other) are modelled exactly.
  This is the engine behind E5 (legacy-WiFi baseline) and E8 (hidden
  terminal losses vs registry coordination).
* :func:`bianchi_throughput` — Bianchi's analytic saturation-throughput
  model (all-hear-all, no hiddens), the standard closed form the
  simulation must agree with in the fully-connected case.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional

import numpy as np

from repro.telemetry.hub import ambient_registry
from repro.telemetry.registry import MetricsRegistry

#: 802.11 DCF defaults (802.11b/g-era, matching Bianchi's parametrization).
CW_MIN = 16
CW_MAX = 1024


@dataclass
class CsmaNode:
    """One contending station.

    Attributes:
        node_id: unique name.
        hears: node_ids whose transmissions this node can carrier-sense.
        destination: node_id of the receiver of this node's frames (an AP,
            or None for broadcast-style accounting at all neighbours).
        saturated: if True the node always has a frame queued.
    """

    node_id: str
    hears: FrozenSet[str] = frozenset()
    destination: Optional[str] = None
    saturated: bool = True

    # runtime state (managed by the simulation)
    backoff: int = field(default=0, repr=False)
    cw: int = field(default=CW_MIN, repr=False)
    tx_remaining: int = field(default=0, repr=False)
    sent: int = field(default=0, repr=False)
    delivered: int = field(default=0, repr=False)
    collided: int = field(default=0, repr=False)


@dataclass
class CsmaResult:
    """Aggregate outcome of a CSMA run."""

    slots: int
    frame_slots: int
    delivered: Dict[str, int]
    collided: Dict[str, int]
    busy_slots: int

    @property
    def total_delivered(self) -> int:
        """Frames successfully received across all nodes."""
        return sum(self.delivered.values())

    @property
    def total_collided(self) -> int:
        """Frames lost to collisions across all nodes."""
        return sum(self.collided.values())

    @property
    def collision_rate(self) -> float:
        """Fraction of transmitted frames that collided."""
        attempts = self.total_delivered + self.total_collided
        return self.total_collided / attempts if attempts else 0.0

    @property
    def channel_utilization(self) -> float:
        """Fraction of slots carrying a *successful* frame's payload."""
        return self.total_delivered * self.frame_slots / self.slots if self.slots else 0.0


class CsmaSimulation:
    """Slotted DCF over a hearing graph.

    Each slot: every idle node with a pending frame decrements its backoff
    if it senses the medium idle (no currently-transmitting node in its
    ``hears`` set); at backoff zero it transmits for ``frame_slots`` slots.
    A frame is delivered iff no other transmission overlapped in time at
    the *receiver's* hearing set; otherwise every overlapped transmitter
    collides, doubles its CW (to CW_MAX) and redraws backoff.

    The slot clock abstracts SIFS/DIFS/ACK detail into the frame length;
    Bianchi's model makes the same abstraction, so they are comparable.
    """

    def __init__(self, nodes: List[CsmaNode], rng: np.random.Generator,
                 frame_slots: int = 50,
                 metrics: Optional[MetricsRegistry] = None) -> None:
        if frame_slots <= 0:
            raise ValueError("frame_slots must be positive")
        ids = [n.node_id for n in nodes]
        if len(set(ids)) != len(ids):
            raise ValueError("duplicate node ids")
        self.nodes = {n.node_id: n for n in nodes}
        self.rng = rng
        self.frame_slots = frame_slots
        self.busy_slots = 0
        # slot-loop MAC has no simulator; record into the ambient registry
        if metrics is None:
            metrics = ambient_registry()
        self._m_sent = metrics.counter("mac.csma.frames_sent")
        self._m_delivered = metrics.counter("mac.csma.frames_delivered")
        self._m_collisions = metrics.counter("mac.csma.collisions")
        self._m_backoff = metrics.histogram("mac.csma.backoff_slots")
        for node in nodes:
            node.cw = CW_MIN
            node.backoff = int(self.rng.integers(0, node.cw))
            node.tx_remaining = 0
        # transmissions in flight: node_id -> set of node_ids that
        # transmitted concurrently at any point (for collision detection)
        self._overlaps: Dict[str, set] = {}

    def _senses_busy(self, node: CsmaNode, transmitting: List[str]) -> bool:
        return any(t in node.hears for t in transmitting)

    def run(self, slots: int) -> CsmaResult:
        """Advance the simulation ``slots`` slots and return aggregates."""
        for _ in range(slots):
            self._step()
        delivered = {nid: n.delivered for nid, n in self.nodes.items()}
        collided = {nid: n.collided for nid, n in self.nodes.items()}
        return CsmaResult(slots=slots, frame_slots=self.frame_slots,
                          delivered=delivered, collided=collided,
                          busy_slots=self.busy_slots)

    def _step(self) -> None:
        transmitting = [nid for nid, n in self.nodes.items() if n.tx_remaining > 0]
        if transmitting:
            self.busy_slots += 1
        # record overlaps for in-flight frames
        for nid in transmitting:
            others = [o for o in transmitting if o != nid]
            self._overlaps.setdefault(nid, set()).update(others)

        # progress transmissions; finish ones that end this slot
        finished: List[str] = []
        for nid in transmitting:
            node = self.nodes[nid]
            node.tx_remaining -= 1
            if node.tx_remaining == 0:
                finished.append(nid)
        for nid in finished:
            self._complete(nid)

        # backoff countdown for idle contenders
        still_transmitting = [nid for nid, n in self.nodes.items()
                              if n.tx_remaining > 0]
        starters: List[CsmaNode] = []
        for node in self.nodes.values():
            if node.tx_remaining > 0 or not node.saturated:
                continue
            if self._senses_busy(node, still_transmitting):
                continue
            if node.backoff > 0:
                node.backoff -= 1
            if node.backoff == 0:
                starters.append(node)
        for node in starters:
            node.tx_remaining = self.frame_slots
            node.sent += 1
            self._m_sent.inc()
            self._overlaps[node.node_id] = set()

    def _complete(self, nid: str) -> None:
        node = self.nodes[nid]
        overlapped = self._overlaps.pop(nid, set())
        receiver = self.nodes.get(node.destination) if node.destination else None
        if receiver is not None:
            # only overlaps audible at the receiver corrupt the frame
            harmful = {o for o in overlapped
                       if o in receiver.hears or o == receiver.node_id}
        else:
            harmful = overlapped
        if harmful:
            node.collided += 1
            self._m_collisions.inc()
            node.cw = min(node.cw * 2, CW_MAX)
        else:
            node.delivered += 1
            self._m_delivered.inc()
            node.cw = CW_MIN
        node.backoff = int(self.rng.integers(0, node.cw))
        if node.backoff == 0:
            node.backoff = 1  # DIFS gap: never back-to-back zero-slot grab
        self._m_backoff.observe(node.backoff)


def bianchi_throughput(n_nodes: int, frame_slots: int = 50,
                       cw_min: int = CW_MIN, retry_stages: int = 6,
                       tol: float = 1e-10) -> float:
    """Bianchi (2000) saturation throughput, normalized to channel rate.

    Solves the (tau, p) fixed point for ``n_nodes`` saturated stations
    with binary exponential backoff over ``retry_stages`` doublings, then
    returns the fraction of time the channel carries successful payload.
    Payload, success, and collision durations are all ``frame_slots``
    slots (the same abstraction as :class:`CsmaSimulation`).
    """
    if n_nodes <= 0:
        raise ValueError("need at least one node")
    w = float(cw_min)
    m = retry_stages
    tau = 0.1
    for _ in range(10_000):
        p = 1.0 - (1.0 - tau) ** (n_nodes - 1)
        if p >= 1.0:
            p = 1.0 - 1e-12
        denom = ((1 - 2 * p) * (w + 1) + p * w * (1 - (2 * p) ** m))
        new_tau = 2 * (1 - 2 * p) / denom
        if abs(new_tau - tau) < tol:
            tau = new_tau
            break
        tau = 0.5 * tau + 0.5 * new_tau
    p_tr = 1.0 - (1.0 - tau) ** n_nodes
    if p_tr == 0.0:
        return 0.0
    p_s = n_nodes * tau * (1.0 - tau) ** (n_nodes - 1) / p_tr
    slot_idle = 1.0
    slot_busy = float(frame_slots)
    numerator = p_s * p_tr * slot_busy
    denominator = ((1 - p_tr) * slot_idle + p_tr * p_s * slot_busy
                   + p_tr * (1 - p_s) * slot_busy)
    return numerator / denominator
