"""Subscriber identity: SIM profiles and the HSS database."""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional


@dataclass(frozen=True)
class SubscriberProfile:
    """What a SIM (and its HSS record) holds.

    Attributes:
        imsi: the 15-digit subscriber identity.
        key: the 16-byte shared secret K.
        msisdn: phone number, informational.
        published: True for dLTE e-SIM profiles whose K is in the public
            registry (§4.2); carrier profiles keep this False.
    """

    imsi: str
    key: bytes
    msisdn: str = ""
    published: bool = False

    def __post_init__(self) -> None:
        if not (self.imsi.isdigit() and 14 <= len(self.imsi) <= 15):
            raise ValueError(f"IMSI must be 14-15 digits, got {self.imsi!r}")
        if len(self.key) != 16:
            raise ValueError("K must be 16 bytes")


def make_profile(imsi: str, published: bool = False) -> SubscriberProfile:
    """Deterministically derive a profile's key from its IMSI (test data)."""
    key = hashlib.sha256(f"sim-key:{imsi}".encode()).digest()[:16]
    return SubscriberProfile(imsi=imsi, key=key, published=published)


class SubscriberDb:
    """The HSS's private subscriber table."""

    def __init__(self) -> None:
        self._by_imsi: Dict[str, SubscriberProfile] = {}

    def provision(self, profile: SubscriberProfile) -> None:
        """Add a subscriber; re-provisioning an IMSI replaces the record."""
        self._by_imsi[profile.imsi] = profile

    def lookup(self, imsi: str) -> Optional[SubscriberProfile]:
        """Fetch a record, or None for unknown subscribers."""
        return self._by_imsi.get(imsi)

    def deprovision(self, imsi: str) -> None:
        """Remove a subscriber (KeyError if absent)."""
        del self._by_imsi[imsi]

    def __len__(self) -> int:
        return len(self._by_imsi)

    def __iter__(self) -> Iterator[SubscriberProfile]:
        return iter(self._by_imsi.values())
