"""The eNodeB: radio cell + control relay + X2 endpoint.

An eNodeB bridges three worlds: the air interface toward UEs (RRC/NAS
relay, measurement reports, PRB scheduling over its cell), the S1
interface toward whichever core serves it (carrier MME or local stub),
and the X2 interface toward peer eNodeBs (handover and the paper's dLTE
coordination extensions, §4.3).
"""

from repro.enodeb.cell import Cell
from repro.enodeb.relay import EnbControlRelay
from repro.enodeb.site import SectorSite

__all__ = ["Cell", "EnbControlRelay", "SectorSite"]
