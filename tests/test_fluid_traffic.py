"""The fluid background tier's equivalence contract (workloads/fluid.py).

For a stationary scheduler (max-C/I, static representatives, saturated
backlogs) the epoch-scaled capacity integral must equal the dense
per-TTI loop up to float summation order; demand-limited loads must be
served exactly; and every draw must come off the named per-cell stream
so the numbers are identical at any shard count.
"""

import math

import pytest

from repro.enodeb.cell import Cell
from repro.mac.schedulers import MaxCiScheduler
from repro.geo.points import Point
from repro.phy.bands import get_band
from repro.phy.linkbudget import LinkBudget
from repro.phy.propagation import model_for_frequency
from repro.simcore import Simulator
from repro.workloads.fluid import TTI_S, FluidCellLoad


def _cell(sim, scheduler=None):
    band = get_band("lte5")
    budget = LinkBudget(model_for_frequency(band.dl_mhz), band.dl_mhz,
                        band.bandwidth_hz)
    return Cell("cell0", band, Point(0.0, 0.0), budget,
                scheduler=scheduler, metrics=sim.metrics)


def test_fluid_matches_dense_tti_loop_for_stationary_scheduler():
    # fluid: 10 epochs of 0.1 s, capacity-limited (huge demand)
    sim = Simulator(11)
    fluid = FluidCellLoad(sim, _cell(sim, MaxCiScheduler()), n_ues=40,
                          demand_bps_per_ue=1e12, epoch_s=0.1)
    fluid.start(horizon_s=1.0)
    sim.run(until=1.0)
    assert fluid.epochs == 10

    # dense reference: same seed => same named stream => identical
    # representative placement; run every TTI of the same second
    sim2 = Simulator(11)
    cell2 = _cell(sim2, MaxCiScheduler())
    FluidCellLoad(sim2, cell2, n_ues=40, demand_bps_per_ue=1e12,
                  epoch_s=0.1)  # places the reps; never started
    dense_bits = 0.0
    for _ in range(int(round(1.0 / TTI_S))):
        dense_bits += sum(cell2.schedule_tti().values())

    assert dense_bits > 0
    # K equal additions vs one multiply by K: equal up to summation order
    assert math.isclose(fluid.served_bits, dense_bits, rel_tol=1e-9)


def test_fluid_demand_limited_serves_exactly_the_offer():
    sim = Simulator(11)
    # 0.25 is binary-exact, so the epoch clock lands on the horizon
    fluid = FluidCellLoad(sim, _cell(sim), n_ues=20,
                          demand_bps_per_ue=1e3, epoch_s=0.25)
    fluid.start(horizon_s=2.0)
    sim.run(until=2.0)
    assert fluid.epochs == 8
    assert fluid.offered_bits == pytest.approx(20 * 1e3 * 2.0)
    assert fluid.served_bits == fluid.offered_bits
    assert fluid.utilization == 1.0


def test_fluid_is_deterministic_from_the_seed():
    def run_once():
        sim = Simulator(42)
        fluid = FluidCellLoad(sim, _cell(sim), n_ues=60,
                              demand_bps_per_ue=50e3, epoch_s=0.05,
                              jitter=0.3)
        fluid.start(horizon_s=1.0)
        sim.run(until=1.0)
        return fluid.offered_bits, fluid.served_bits, fluid.epochs

    assert run_once() == run_once()


def test_fluid_population_and_rep_cap():
    sim = Simulator(11)
    cell = _cell(sim)
    fluid = FluidCellLoad(sim, cell, n_ues=3, rep_ues=8,
                          demand_bps_per_ue=1e3)
    assert len(cell.attached_ues) == 3  # reps capped at the population
    fluid.start(horizon_s=1.0)
    sim.run(until=1.0)
    assert fluid.epochs > 0

    sim = Simulator(11)
    cell = _cell(sim)
    empty = FluidCellLoad(sim, cell, n_ues=0, demand_bps_per_ue=1e3)
    empty.start(horizon_s=1.0)
    sim.run(until=1.0)
    assert empty.epochs == 0
    assert empty.utilization == 0.0


def test_fluid_validations():
    sim = Simulator(11)
    cell = _cell(sim)
    with pytest.raises(ValueError, match="population"):
        FluidCellLoad(sim, cell, n_ues=-1, demand_bps_per_ue=1e3)
    with pytest.raises(ValueError, match="epoch"):
        FluidCellLoad(sim, cell, n_ues=1, demand_bps_per_ue=1e3,
                      epoch_s=0.0)
    with pytest.raises(ValueError, match="jitter"):
        FluidCellLoad(sim, cell, n_ues=1, demand_bps_per_ue=1e3,
                      jitter=1.0)
