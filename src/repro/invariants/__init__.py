"""Runtime invariants: conservation laws audited during simulation.

Chaos experiments (see :mod:`repro.faults`) deliberately break the
network; this package proves the *simulator* stayed sound while they
did. An :class:`InvariantChecker` sweeps registered conservation checks
on the simulated clock — packet conservation per link with every drop
attributed to a cause, NAT binding accounting, aggregate GTP tunnel
conservation, event-clock monotonicity, spectrum-grant sanity and
PRB-slice non-overlap per contention domain, and NAS attach-state
legality on every transition. :func:`watch_network` wires all of them
onto a built network in one call.

Checks are passive: they read counters, draw no randomness, and
schedule only their own sweep, so instrumented runs produce
byte-identical tables and disabled runs pay nothing. ROBUSTNESS.md
lists every law and how E16 uses them.
"""

from repro.invariants.checks import (
    InvariantChecker,
    InvariantError,
    InvariantViolation,
)
from repro.invariants.network import (
    iter_control_agents,
    watch_federation,
    watch_network,
    watch_topology,
)

__all__ = [
    "InvariantChecker",
    "InvariantError",
    "InvariantViolation",
    "iter_control_agents",
    "watch_federation",
    "watch_network",
    "watch_topology",
]
