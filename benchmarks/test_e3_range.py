"""Bench E3 — coverage/range per band (§3.2 "Spectrum Bands")."""

from conftest import emit, once

from repro.experiments import e3_range


def test_e3_rate_vs_distance(benchmark):
    table = once(benchmark, e3_range.run)
    emit(table)
    by_band = {row["band"]: row for row in table.rows}
    # at 8 km, band 5 is going strong while WiFi is stone dead
    assert by_band["lte5"]["d8000m"] > 10.0
    assert by_band["wifi2g4"]["d8000m"] == 0.0
    assert by_band["wifi5g"]["d8000m"] == 0.0
    # WiFi dies from MAC timing by 4 km even where SNR might survive
    assert by_band["wifi2g4"]["d4000m"] == 0.0
    # sub-GHz LTE outlives mid-band LTE at long range
    assert by_band["lte5"]["d30000m"] > by_band["lte48cbrs"]["d30000m"]
    assert by_band["lte31"]["d30000m"] > 0.0
    # near the AP, wider channels win (the rural tradeoff cuts both ways)
    assert by_band["lte3"]["d250m"] > by_band["lte5"]["d250m"]


def test_e3_range_summary(benchmark):
    table = once(benchmark, e3_range.range_summary)
    emit(table)
    usable = {row["band"]: row["usable_km"] for row in table.rows}
    # the paper's headline ordering
    assert usable["lte5"] > 10 * usable["wifi2g4"]
    assert usable["lte31"] >= usable["lte5"] * 0.8  # 450 MHz at least as far
    assert usable["wifi2g4"] <= 2.7  # ACK-timing ceiling
    # one band-5 site covers a whole town (the §5 deployment)
    assert usable["lte5"] > 5.0
