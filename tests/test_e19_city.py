"""E19 city experiment: shard-count invariance and partition logic.

The headline determinism claim of the sharded engine: the E19 table is
a function of the scenario parameters only — shard count and execution
mode (serial/fork) change the schedule, never a digit of the output.
"""

import pytest

from repro.deploy.partition import ShardPlan
from repro.experiments import e19_city
from repro.geo.partition import stripe_partition
from repro.geo.points import Point

# one small city, reused by every invariance test in this module
_CFG = dict(n_cells=6, ue_per_cell=2, background_per_cell=18,
            horizon_s=4.0, seed=7)


def _render(shards, mode="serial", **overrides):
    cfg = dict(_CFG, shards=shards, mode=mode, **overrides)
    return e19_city.run(**cfg).render()


def test_e19_output_is_byte_identical_across_shard_counts():
    reference = _render(shards=1)
    assert _render(shards=2) == reference
    assert _render(shards=4) == reference


def test_e19_fork_matches_serial():
    assert _render(shards=2, mode="fork") == _render(shards=2)


def test_e19_invariants_hold_with_traffic_in_flight_at_horizon():
    # a horizon that cuts mid-storm leaves cross-shard packets pending;
    # the conservation audit must account for withheld records, and the
    # truncated run must still be shard-count invariant
    short = dict(_CFG, horizon_s=1.05, invariants=True)
    a = e19_city.run(shards=2, **short).render()
    b = e19_city.run(shards=3, **short).render()
    assert a == b


def test_e19_architecture_contrast():
    table = e19_city.run(shards=2, invariants=True, **_CFG)
    rows = {row["architecture"]: row for row in table.rows}
    cent = rows["centralized EPC"]
    dlte = rows["dLTE stubs"]
    assert cent["failures"] == dlte["failures"] == 0
    assert cent["attached"] == dlte["attached"] == 12
    # local breakout: attach never rides the WAN, and does better for it
    assert dlte["wan_ctl_mb"] == 0.0
    assert dlte["mean_attach_ms"] <= cent["mean_attach_ms"]
    # the fluid tier is independent of the control-plane architecture
    assert dlte["bg_served_mbit"] == cent["bg_served_mbit"]


# -- partitioning ----------------------------------------------------------


def test_stripe_partition_is_contiguous_and_balanced():
    positions = [Point(float(x), 0.0) for x in (5, 1, 3, 0, 4, 2, 6)]
    assignment = stripe_partition(positions, 3)
    # sorted by x: 0,1,2 | 3,4,5 | 6 -> sizes 3,2,2
    assert assignment == [2, 0, 1, 0, 1, 0, 2]
    counts = [assignment.count(s) for s in range(3)]
    assert sorted(counts) == [2, 2, 3]


def test_stripe_partition_validations():
    with pytest.raises(ValueError):
        stripe_partition([Point(0.0, 0.0)], 0)
    with pytest.raises(ValueError):
        stripe_partition([], 2)


def test_shard_plan_accessors():
    positions = [Point(float(x), 0.0) for x in range(5)]
    plan = ShardPlan.stripes(positions, 2)
    assert plan.n_shards == 2
    assert plan.counts == [3, 2]
    assert plan.sites_of(0) == [0, 1, 2]
    assert plan.shard_of(4) == 1
    assert plan.imbalance >= 1.0


def test_shard_plan_rejects_bad_assignment():
    with pytest.raises(ValueError):
        ShardPlan(2, (0, 2))  # shard index out of range
