"""E12 — §5: deployment economics of the Papua-style site.

"The deployment cost less than $8000 in materials … One site covers the
entire town."

Reproduced bottom-up: the itemized BoM must land under $8,000; a single
dLTE site's coverage must contain the whole town; and the coverage-per-
dollar comparison against WiFi and carrier femtocells must favor dLTE by
a wide margin for town-scale coverage.
"""

from __future__ import annotations

import math
from typing import List, Tuple

from repro.deploy.costs import (
    DeploymentPlan,
    PAPUA_REFERENCE_BOM,
    carrier_femtocell_plan,
    dlte_site_plan,
    wifi_site_plan,
)
from repro.metrics.tables import ResultTable

PAPER_BUDGET_USD = 8000.0


def bom_table() -> ResultTable:
    """The itemized Papua reference bill of materials."""
    table = ResultTable(
        "E12: Papua reference site bill of materials",
        ["item", "unit_usd", "qty", "total_usd"])
    for item in PAPUA_REFERENCE_BOM:
        table.add_row(item=item.name, unit_usd=item.unit_cost_usd,
                      qty=item.quantity, total_usd=item.total_usd)
    total = sum(i.total_usd for i in PAPUA_REFERENCE_BOM)
    table.add_row(item="TOTAL (paper: < $8000)", unit_usd="", qty="",
                  total_usd=total)
    return table


def sites_needed(plan: DeploymentPlan, town_radius_m: float) -> int:
    """Sites to cover a town disk, by area with a 1.2x packing factor."""
    if plan.coverage_radius_m >= town_radius_m:
        return 1
    town_area = math.pi * town_radius_m ** 2
    site_area = math.pi * plan.coverage_radius_m ** 2
    return max(1, math.ceil(1.2 * town_area / site_area))


def run(town_radius_m: float = 5000.0) -> ResultTable:
    """Whole-coverage-area cost per technology.

    Default 5 km radius: the town plus the surrounding farms and fields
    §3.2 argues rural access must reach ("'wide area' technologies
    operate at scales more appropriate to farms, ranches, and fields").
    """
    table = ResultTable(
        f"E12: covering a {town_radius_m/1000:g} km-radius town",
        ["technology", "site_capex_usd", "site_radius_km", "sites_needed",
         "town_capex_usd", "five_year_usd", "km2_per_kusd"])
    plans: List[Tuple[DeploymentPlan, str]] = [
        (dlte_site_plan(), "dLTE (band 5)"),
        (wifi_site_plan(), "WiFi (2.4 GHz)"),
        (carrier_femtocell_plan(), "carrier femtocell"),
    ]
    for plan, name in plans:
        n = sites_needed(plan, town_radius_m)
        table.add_row(
            technology=name,
            site_capex_usd=plan.capex_usd,
            site_radius_km=plan.coverage_radius_m / 1000.0,
            sites_needed=n,
            town_capex_usd=n * plan.capex_usd,
            five_year_usd=n * plan.five_year_cost_usd(),
            km2_per_kusd=plan.km2_per_kusd)
    return table


def under_paper_budget() -> bool:
    """The headline check: the dLTE site BoM lands below $8,000."""
    return dlte_site_plan().capex_usd < PAPER_BUDGET_USD
