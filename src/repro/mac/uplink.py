"""Uplink scheduling: SC-FDMA's contiguity constraint.

§3.2 credits "LTE's SC-FDMA uplink modulation" for range — the price of
its single-carrier property is a scheduling constraint: each UE's uplink
grant must be a *contiguous* block of PRBs (3GPP Rel-8 PUSCH). The
uplink scheduler therefore packs users into contiguous runs instead of
sprinkling PRBs freely like the downlink's OFDMA.

:class:`ContiguousUplinkScheduler` implements demand-proportional
contiguous allocation; :func:`contiguity_loss` quantifies what the
constraint costs versus an unconstrained (OFDMA-style) allocation — a
fragmentation-shaped penalty that only appears when the allowed PRB set
is itself fragmented (e.g. under ICIC slicing), which is why fair
sharing's *contiguous* slices (see ``compute_weighted_partition``)
compose so well with SC-FDMA uplinks.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Sequence, Tuple

import numpy as np

from repro.mac.schedulers import LteScheduler, SchedulableUser
from repro.phy.resource_grid import bits_per_prb


def contiguous_runs(prbs: FrozenSet[int]) -> List[Tuple[int, int]]:
    """Maximal runs of consecutive indices as (start, length), sorted."""
    runs: List[Tuple[int, int]] = []
    for prb in sorted(prbs):
        if runs and prb == runs[-1][0] + runs[-1][1]:
            runs[-1] = (runs[-1][0], runs[-1][1] + 1)
        else:
            runs.append((prb, 1))
    return runs


class ContiguousUplinkScheduler(LteScheduler):
    """PUSCH allocation: one contiguous PRB block per UE per TTI.

    Demand shares are proportional-fair-flavoured (inverse average
    rate), then users are laid out greedily into the allowed set's
    contiguous runs, largest-share-first into largest-run-first. A user
    never spans two runs; leftovers inside a run go to the next user
    that fits.
    """

    def _assign(self, users: List[SchedulableUser],
                prbs: List[int]) -> Dict[str, List[int]]:
        allowed = frozenset(prbs)
        runs = contiguous_runs(allowed)
        total = len(allowed)
        floor = 1e3
        # demand weight ~ PF metric: efficiency / average rate
        weights = {
            u.user_id: (bits_per_prb(u.efficiency) * 1e3
                        / max(self._avg_rate_bps.get(u.user_id, 0.0), floor))
            for u in users}
        weight_sum = sum(weights.values()) or 1.0
        target = {uid: max(1, round(total * w / weight_sum))
                  for uid, w in weights.items()}
        order = sorted(users, key=lambda u: (-target[u.user_id], u.user_id))
        runs = sorted(runs, key=lambda r: -r[1])
        grants: Dict[str, List[int]] = {u.user_id: [] for u in users}
        for user in order:
            want = target[user.user_id]
            # place into the first run with room; shrink to fit if needed
            for i, (start, length) in enumerate(runs):
                if length <= 0:
                    continue
                take = min(want, length)
                grants[user.user_id] = list(range(start, start + take))
                runs[i] = (start + take, length - take)
                break
        return grants

    def _assign_batch(self, arena, bank, store, elig: List[int],
                      prbs: List[int]) -> Dict[str, List[int]]:
        """Arena-array variant of :meth:`_assign`, bit-identical.

        The weight sum stays a sequential Python ``sum`` (eligible
        order) and targets use Python ``round`` — both are part of the
        scalar reference's float/rounding behavior.
        """
        ids = arena.ids
        runs = contiguous_runs(frozenset(prbs))
        total = len(prbs)
        floor = 1e3
        idx = np.array(elig)
        weights = (bank.b_arr[idx] * 1e3
                   / np.maximum(store.avg[idx], floor)).tolist()
        weight_sum = sum(weights) or 1.0
        targets = [max(1, round(total * w / weight_sum)) for w in weights]
        order = sorted(range(len(elig)),
                       key=lambda i: (-targets[i], ids[elig[i]]))
        runs = sorted(runs, key=lambda r: -r[1])
        grants: Dict[str, List[int]] = {ids[s]: [] for s in elig}
        for i in order:
            want = targets[i]
            for j, (start, length) in enumerate(runs):
                if length <= 0:
                    continue
                take = min(want, length)
                grants[ids[elig[i]]] = list(range(start, start + take))
                runs[j] = (start + take, length - take)
                break
        return grants


def contiguity_loss(users: Sequence[SchedulableUser],
                    allowed: FrozenSet[int]) -> float:
    """Fraction of PRBs an OFDMA allocator would use that SC-FDMA cannot.

    Both allocators want to serve every user; OFDMA uses every allowed
    PRB, while the contiguous packer may strand fragments smaller than
    any remaining user's block. 0.0 = no penalty.
    """
    if not allowed:
        return 0.0
    eligible = [u for u in users if u.efficiency > 0 and u.backlog_bits > 0]
    if not eligible:
        return 0.0
    scheduler = ContiguousUplinkScheduler()
    grants = scheduler.allocate(eligible, allowed)
    used = sum(len(g) for g in grants.values())
    return 1.0 - used / len(allowed)
