"""Batch TTI engine (per-cell UE arena) vs scalar reference path.

The contract (see DESIGN.md / PERFORMANCE.md): with ``batch=True`` a
cell's per-TTI downlink and uplink scheduling must be *bit-identical*
to the scalar reference — identical grant maps (values AND key order),
identical delivered-bits maps, identical telemetry histograms. These
tests randomize UE counts, positions, backlogs, GBR/priority, HARQ,
interferers and fragmented PRB masks, and drive paired scalar/batch
cells through mid-run mutations (mobility, backlog changes, detach,
scheduler swap) asserting equality at every TTI.
"""

import random

import pytest

from repro.enodeb.cell import Cell, UeRadioContext
from repro.geo.points import Point
from repro.mac import batch_default, batch_mode, set_batch_default
from repro.mac.schedulers import (
    MaxCiScheduler,
    ProportionalFairScheduler,
    QosAwareScheduler,
    RoundRobinScheduler,
    SchedulableUser,
)
from repro.mac.uplink import ContiguousUplinkScheduler
from repro.phy.bands import get_band
from repro.phy.linkbudget import LinkBudget, Radio
from repro.phy.propagation import FreeSpace, OkumuraHata
from repro.telemetry import MetricsRegistry

SCHEDULERS = [RoundRobinScheduler, MaxCiScheduler,
              ProportionalFairScheduler, QosAwareScheduler]

HISTOGRAMS = ("phy.sinr_db", "phy.harq.goodput_factor",
              "mac.cell.granted_prbs")


def _build_cell(batch, sched_cls, seed, n_ue, harq=True, n_inter=0,
                frag=False):
    """A cell plus registry with n_ue randomly-placed UEs."""
    rng = random.Random(seed)
    band = get_band("lte31")
    lb = LinkBudget(OkumuraHata(environment="open"), freq_mhz=band.dl_mhz,
                    bandwidth_hz=band.bandwidth_hz)
    reg = MetricsRegistry()
    cell = Cell("c0", band, Point(0.0, 0.0), lb, scheduler=sched_cls(),
                harq_enabled=harq, metrics=reg, batch=batch)
    cell.interferers = [
        Cell(f"i{k}", band, Point(3000.0 * (k + 1), -1200.0), lb,
             metrics=reg, batch=batch)
        for k in range(n_inter)]
    if frag:
        cell.allowed_prbs = frozenset(
            p for p in cell.grid.all_prbs if p % 3 != 1)
    for u in range(n_ue):
        backlog = rng.choice([float("inf"), float("inf"), 5e5, 0.0])
        gbr = rng.choice([0.0, 0.0, 0.0, 2e6])
        cell.add_ue(UeRadioContext(
            f"ue{u:03d}",
            Radio(Point(rng.uniform(-4000, 4000), rng.uniform(-4000, 4000)),
                  tx_power_dbm=23.0, ul_papr_advantage_db=3.0),
            backlog_bits=backlog, gbr_bps=gbr, priority=rng.randint(1, 9)))
    return cell, reg


def _assert_tti_equal(scalar_cell, batch_cell, where):
    ds = scalar_cell.schedule_tti()
    db = batch_cell.schedule_tti()
    assert ds == db, f"DL delivered mismatch at {where}"
    assert list(ds) == list(db), f"DL key order mismatch at {where}"
    us = scalar_cell.schedule_uplink_tti()
    ub = batch_cell.schedule_uplink_tti()
    assert us == ub, f"UL delivered mismatch at {where}"
    assert list(us) == list(ub), f"UL key order mismatch at {where}"


def _assert_metrics_equal(reg_a, reg_b):
    for name in HISTOGRAMS:
        ha = reg_a.histogram(name, cell="c0")
        hb = reg_b.histogram(name, cell="c0")
        assert ha.count == hb.count, name
        assert ha.sum == hb.sum, name
        assert ha.min == hb.min, name
        assert ha.max == hb.max, name
        assert ha.bucket_counts == hb.bucket_counts, name


@pytest.mark.parametrize("trial", range(12))
def test_randomized_cell_equivalence(trial):
    """Paired scalar/batch cells stay bit-identical through mutations."""
    sched_cls = SCHEDULERS[trial % 4]
    seed = 1000 + trial
    n_ue = [0, 1, 3, 17, 40][trial % 5]
    harq = trial % 3 != 0
    n_inter = trial % 3
    frag = trial % 2 == 0
    scalar, reg_s = _build_cell(False, sched_cls, seed, n_ue, harq,
                                n_inter, frag)
    batch, reg_b = _build_cell(True, sched_cls, seed, n_ue, harq,
                               n_inter, frag)
    for t in range(40):
        if t == 15 and n_ue > 2:
            for cell in (scalar, batch):
                ctx = cell._ues["ue001"]
                ctx.radio.position = Point(100.0 + trial, 50.0)
                cell._ues["ue002"].backlog_bits = 8e5
        if t == 25 and n_ue > 4:
            for cell in (scalar, batch):
                cell.remove_ue("ue003")
        _assert_tti_equal(scalar, batch, f"trial={trial} t={t}")
    _assert_metrics_equal(reg_s, reg_b)


def test_empty_cell():
    scalar, _ = _build_cell(False, RoundRobinScheduler, 1, 0)
    batch, _ = _build_cell(True, RoundRobinScheduler, 1, 0)
    for t in range(3):
        _assert_tti_equal(scalar, batch, f"empty t={t}")
    assert batch.schedule_tti() == {}


def test_single_ue():
    scalar, _ = _build_cell(False, ProportionalFairScheduler, 2, 1)
    batch, _ = _build_cell(True, ProportionalFairScheduler, 2, 1)
    for t in range(10):
        _assert_tti_equal(scalar, batch, f"single t={t}")


def test_all_below_cqi_floor():
    """UEs out of range: nobody schedulable, still bit-identical."""
    band = get_band("lte31")
    lb = LinkBudget(FreeSpace(), freq_mhz=band.dl_mhz,
                    bandwidth_hz=band.bandwidth_hz)
    cells = []
    for b in (False, True):
        cell = Cell("c0", band, Point(0.0, 0.0), lb,
                    scheduler=MaxCiScheduler(), batch=b)
        for u in range(4):
            cell.add_ue(UeRadioContext(
                f"ue{u}", Radio(Point(5e7 + u * 1e6, 5e7)),
                backlog_bits=float("inf")))
        cells.append(cell)
    scalar, batch = cells
    for t in range(5):
        ds, db = scalar.schedule_tti(), batch.schedule_tti()
        assert ds == db == {}
        us, ub = scalar.schedule_uplink_tti(), batch.schedule_uplink_tti()
        assert us == ub == {}


def test_zero_backlog_everywhere():
    scalar, _ = _build_cell(False, QosAwareScheduler, 3, 0)
    batch, _ = _build_cell(True, QosAwareScheduler, 3, 0)
    for cell in (scalar, batch):
        for u in range(5):
            cell.add_ue(UeRadioContext(
                f"ue{u}", Radio(Point(100.0 * u, 200.0)),
                backlog_bits=0.0))
    for t in range(4):
        _assert_tti_equal(scalar, batch, f"zero-backlog t={t}")


def test_scheduler_swap_mid_run():
    """Swapping the scheduler object mid-run re-binds the arena store."""
    scalar, _ = _build_cell(False, RoundRobinScheduler, 4, 9)
    batch, _ = _build_cell(True, RoundRobinScheduler, 4, 9)
    for t in range(6):
        _assert_tti_equal(scalar, batch, f"pre-swap t={t}")
    for cell in (scalar, batch):
        cell.scheduler = QosAwareScheduler()
    for t in range(6):
        _assert_tti_equal(scalar, batch, f"post-swap t={t}")


def test_batch_toggle_preserves_averages():
    """batch=False mid-run syncs EWMA arrays back to scheduler dicts."""
    ref, _ = _build_cell(False, ProportionalFairScheduler, 5, 8)
    cell, _ = _build_cell(True, ProportionalFairScheduler, 5, 8)
    for t in range(10):
        ref.schedule_tti()
        cell.schedule_tti()
    cell.batch = False
    for uid in cell._ues:
        assert (cell.scheduler.average_rate_bps(uid)
                == ref.scheduler.average_rate_bps(uid)), uid
    for t in range(10):
        assert ref.schedule_tti() == cell.schedule_tti()


def test_average_rate_readable_while_batched():
    """average_rate_bps must read through the arena array store."""
    scalar, _ = _build_cell(False, ProportionalFairScheduler, 6, 6)
    batch, _ = _build_cell(True, ProportionalFairScheduler, 6, 6)
    for t in range(8):
        scalar.schedule_tti()
        batch.schedule_tti()
        for uid in scalar._ues:
            assert (scalar.scheduler.average_rate_bps(uid)
                    == batch.scheduler.average_rate_bps(uid)), (t, uid)


def test_shared_scheduler_falls_back_to_scalar():
    """One scheduler driving two batch cells must not corrupt state:
    the second cell detects foreign store ownership and goes scalar."""
    band = get_band("lte31")
    lb = LinkBudget(FreeSpace(), freq_mhz=band.dl_mhz,
                    bandwidth_hz=band.bandwidth_hz)
    shared = ProportionalFairScheduler()
    a = Cell("a", band, Point(0.0, 0.0), lb, scheduler=shared, batch=True)
    b = Cell("b", band, Point(9000.0, 0.0), lb, scheduler=shared, batch=True)
    for i, cell in enumerate((a, b)):
        cell.add_ue(UeRadioContext(
            f"{cell.name}-u", Radio(Point(200.0 + i, 100.0)),
            backlog_bits=float("inf")))
    # reference: same topology, scalar everywhere
    shared_ref = ProportionalFairScheduler()
    ar = Cell("a", band, Point(0.0, 0.0), lb, scheduler=shared_ref,
              batch=False)
    br = Cell("b", band, Point(9000.0, 0.0), lb, scheduler=shared_ref,
              batch=False)
    for i, cell in enumerate((ar, br)):
        cell.add_ue(UeRadioContext(
            f"{cell.name}-u", Radio(Point(200.0 + i, 100.0)),
            backlog_bits=float("inf")))
    for t in range(6):
        assert a.schedule_tti() == ar.schedule_tti()
        assert b.schedule_tti() == br.schedule_tti()


def test_subclassed_scheduler_not_batched():
    """A subclass overriding _assign must never take the batch twin."""
    class GreedyScheduler(MaxCiScheduler):
        def _assign(self, users, prbs):
            best = max(users, key=lambda u: u.efficiency)
            return {best.user_id: list(prbs)}

    band = get_band("lte31")
    lb = LinkBudget(FreeSpace(), freq_mhz=band.dl_mhz,
                    bandwidth_hz=band.bandwidth_hz)
    cells = []
    for b in (False, True):
        cell = Cell("c0", band, Point(0.0, 0.0), lb,
                    scheduler=GreedyScheduler(), batch=b)
        for u in range(4):
            cell.add_ue(UeRadioContext(
                f"ue{u}", Radio(Point(150.0 + 40.0 * u, 80.0)),
                backlog_bits=float("inf")))
        cells.append(cell)
    scalar, batch = cells
    for t in range(5):
        assert scalar.schedule_tti() == batch.schedule_tti()


@pytest.mark.parametrize("sched_cls", SCHEDULERS + [ContiguousUplinkScheduler],
                         ids=lambda c: c.__name__)
def test_allocate_batch_matches_allocate(sched_cls):
    """Direct allocate() vs allocate_batch() on the same arena state."""
    rng = random.Random(77)
    cell, _ = _build_cell(True, RoundRobinScheduler, 77, 23)
    cell.scheduler = sched_cls()
    arena = cell._arena
    uplink = sched_cls is ContiguousUplinkScheduler
    bank = (arena.refresh_uplink() if uplink
            else arena.refresh_downlink())
    prbs = sorted(cell.allowed_prbs)
    for round_ in range(5):
        # mirror scheduler state: fresh twin fed the same averages
        twin = sched_cls()
        twin._avg_rate_bps = {
            uid: cell.scheduler.average_rate_bps(uid) for uid in arena.ids}
        users = []
        for s, uid in enumerate(arena.ids):
            if bank.eff[s] > 0.0 and arena.backlog[s] > 0.0:
                users.append(SchedulableUser(
                    user_id=uid, sinr_db=bank.sinr_l[s],
                    backlog_bits=arena.backlog[s],
                    gbr_bps=arena.gbr[s], priority=arena.priority[s]))
        if isinstance(twin, RoundRobinScheduler):
            twin._next = cell.scheduler._next
        expected = twin.allocate(users, frozenset(prbs))
        got = cell.scheduler.allocate_batch(arena, bank, frozenset(prbs))
        assert got == expected, f"round {round_}"
        assert list(got) == list(expected), f"round {round_} key order"
        # fragment the allowed set for later rounds
        prbs = [p for p in prbs if (p + round_) % 4 != 2] or prbs


def test_arena_tracks_attach_detach():
    cell, _ = _build_cell(True, RoundRobinScheduler, 8, 5)
    arena = cell._arena
    assert arena.ids == [f"ue{u:03d}" for u in range(5)]
    cell.remove_ue("ue002")
    assert arena.ids == ["ue000", "ue001", "ue003", "ue004"]
    assert [arena.slot_of[u] for u in arena.ids] == [0, 1, 2, 3]
    cell.add_ue(UeRadioContext(
        "ue009", Radio(Point(10.0, 10.0)), backlog_bits=1e5))
    assert arena.ids[-1] == "ue009"
    assert arena.slot_of["ue009"] == 4


def test_batch_mode_context_manager():
    with batch_mode(False):
        cell, _ = _build_cell(None, RoundRobinScheduler, 9, 2)
        assert cell.batch is False
    with batch_mode(True):
        cell, _ = _build_cell(None, RoundRobinScheduler, 9, 2)
        assert cell.batch is True


def test_env_default(monkeypatch):
    import repro.mac.arena as arena_mod
    for raw, expected in (("0", False), ("false", False), ("off", False),
                          ("no", False), ("1", True), ("yes", True)):
        monkeypatch.setenv("REPRO_BATCH_TTI", raw)
        assert arena_mod._env_default() is expected, raw
    monkeypatch.delenv("REPRO_BATCH_TTI")
    assert arena_mod._env_default() is True
    prev = set_batch_default(False)
    assert batch_default() is False
    set_batch_default(prev)
    assert batch_default() is prev


def test_observe_many_matches_sequential_observe():
    import numpy as np
    rega, regb = MetricsRegistry(), MetricsRegistry()
    ha = rega.histogram("x")
    hb = regb.histogram("x")
    rng = random.Random(11)
    vals = [rng.uniform(-40.0, 60.0) for _ in range(500)]
    for v in vals:
        ha.observe(v)
    for lo in range(0, 500, 37):  # uneven chunks: boundary-independent
        hb.observe_many(np.array(vals[lo:lo + 37]))
    assert ha.count == hb.count
    assert ha.sum == hb.sum
    assert ha.min == hb.min and ha.max == hb.max
    assert ha.bucket_counts == hb.bucket_counts
    assert ha.quantile(0.5) == hb.quantile(0.5)
    assert ha.quantile(0.99) == hb.quantile(0.99)
