"""Point-to-point links with rate, delay, drop-tail queues, and faults.

A link is the unit of backhaul modelling: the AP's Internet uplink, the
S1 path to a carrier EPC, the X2 path between peers. Serialization time
(size/rate) plus propagation delay plus queueing; a finite queue drops
from the tail, which is where "backhaul constrained" (E9) bites.

Links also carry the fault state the resilience experiments (E16) need:
an ``up`` flag (a down link drops everything offered to it and loses
whatever was queued or in flight) and a ``loss_rate`` (per-packet random
drops drawn from the link's own named RNG stream, so a run stays
reproducible from the seed). Drops are accounted *by cause* —
``dropped_overflow`` vs ``dropped_down`` vs ``dropped_loss`` — so
congestion can be told apart from failure.

Datapath fast lane (see PERFORMANCE.md): the link no longer schedules
two heap events per packet (serialization done + delivery). Because the
propagation delay is a per-link constant and serialization completions
are monotone, deliveries happen in send order — so a busy link keeps a
single live wake-up event aimed at the head of its in-flight deque and
drains every delivery that is due when it fires. Service completions
are pure float arithmetic (``done += tx``; ``deliver = done + delay``),
identical to the times the old per-event chain produced, and queued
packets are promoted into service *lazily* whenever the link is
touched. Net effect: one heap event per busy period segment instead of
two per packet, with byte-identical delivery times.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Optional, Tuple

from repro.net.aqm import DROP, MARK, PASS, AqmDiscipline
from repro.net.packet import ECN_CE, ECN_ECT, Packet
from repro.simcore.simulator import Simulator

_INF = float("inf")


class Link:
    """Unidirectional link delivering packets to a receive callback.

    Args:
        sim: the event kernel.
        rate_bps: serialization rate; ``float('inf')`` for ideal links.
        delay_s: propagation delay.
        queue_packets: drop-tail queue capacity (packets awaiting
            serialization); the packet in service is not counted.
        queue_bytes: optional byte-based queue capacity enforced
            alongside ``queue_packets`` (whichever bites first).
            Setting it switches the link into *managed* mode.
        name: for hop recording and diagnostics.

    Managed mode (default off): installing an AQM discipline
    (:meth:`set_aqm`) or a ``queue_bytes`` limit routes sends through
    :meth:`_send_managed`, which additionally keeps a byte-granular
    conservation ledger (``offered_bytes == delivered_bytes +
    dropped_bytes + in_flight_bytes``), per-packet enqueue timestamps
    for sojourn-time AQM, the ``aqm`` drop cause, and ECN
    mark-instead-of-drop. An unmanaged link pays exactly one extra
    predictable branch per send/delivery over the seed's fast path —
    the microbenchmark suite holds that line.
    """

    def __init__(self, sim: Simulator, rate_bps: float, delay_s: float,
                 queue_packets: int = 100, name: str = "link",
                 queue_bytes: Optional[int] = None) -> None:
        if rate_bps <= 0:
            raise ValueError("rate must be positive (use inf for ideal)")
        if delay_s < 0:
            raise ValueError("delay must be non-negative")
        if queue_packets < 1:
            raise ValueError("queue must hold at least one packet")
        self.sim = sim
        self.rate_bps = rate_bps
        self.delay_s = delay_s
        self.queue_packets = queue_packets
        self.name = name
        self.receiver: Optional[Callable[[Packet], None]] = None
        #: packets waiting for the serializer (the drop-tail queue)
        self._egress: Deque[Packet] = deque()
        #: serialized packets in propagation: (deliver_at, packet),
        #: deliver_at monotone because delay is a per-link constant
        self._flight: Deque[Tuple[float, Packet]] = deque()
        #: when the packet currently in service finishes serializing;
        #: the link is busy iff this is in the future
        self._service_done = 0.0
        #: True while the one live wake-up event (aimed at the flight
        #: head's delivery) is queued; wake-ups are never cancelled, so
        #: they ride the simulator's handle-free fast path
        self._wakeup = False
        # fault state
        self.up = True
        self.loss_rate = 0.0
        # counters; ``dropped`` is the running total across all causes.
        # ``offered`` and ``in_flight`` close the conservation law the
        # invariant checker audits: at any instant
        # ``offered == delivered + dropped + in_flight``.
        self.offered = 0
        self.in_flight = 0
        self.delivered = 0
        self.dropped = 0
        self.dropped_overflow = 0
        self.dropped_down = 0
        self.dropped_loss = 0
        self.bytes_sent = 0
        # managed-mode state (AQM / queue_bytes / byte ledger); all of
        # it stays inert — and the ledger stays zero — until
        # _enable_managed() flips the one flag send() checks
        self._managed = False
        self._aqm: Optional[AqmDiscipline] = None
        self.queue_bytes = queue_bytes
        self.dropped_aqm = 0
        self.marked_ecn = 0
        self.offered_bytes = 0
        self.delivered_bytes = 0
        self.dropped_bytes = 0
        self.in_flight_bytes = 0
        self._egress_bytes = 0
        self._egress_times: Optional[Deque[float]] = None
        #: the link's own loss stream, fetched once instead of a
        #: per-send f-string + registry lookup
        self._loss_rng = sim.rng(f"link-loss:{name}")
        # telemetry instruments, fetched once so the hot path is an
        # attribute access plus an integer add
        metrics = sim.metrics
        self._m_delivered = metrics.counter("net.link.delivered", link=name)
        self._m_bytes = metrics.counter("net.link.bytes_sent", link=name)
        self._m_queue = metrics.gauge("net.link.queue_depth", link=name)
        self._m_drops = {
            cause: metrics.counter("net.link.dropped", link=name, cause=cause)
            for cause in ("overflow", "down", "loss")
        }
        if queue_bytes is not None:
            if queue_bytes < 1:
                raise ValueError("queue_bytes must hold at least one byte")
            self._enable_managed()

    def connect(self, receiver: Callable[[Packet], None]) -> None:
        """Attach the downstream receive function."""
        self.receiver = receiver

    # -- managed mode (AQM / ECN / byte accounting) ------------------------

    def set_aqm(self, discipline: Optional[AqmDiscipline]) -> None:
        """Install an AQM discipline (or ``None`` to keep the current
        mode's drop-tail behaviour); installing one enables managed mode."""
        self._aqm = discipline
        if discipline is not None:
            discipline.bind(self)
            self._enable_managed()

    def _enable_managed(self) -> None:
        if self._managed:
            return
        if self.offered:
            raise RuntimeError(
                f"link {self.name!r}: AQM/queue_bytes must be configured "
                "before any traffic (the byte ledger starts at zero)")
        self._managed = True
        self._egress_times = deque()
        metrics = self.sim.metrics
        self._m_drops["aqm"] = metrics.counter(
            "net.link.dropped", link=self.name, cause="aqm")
        self._m_marks = metrics.counter("net.link.ecn_marked", link=self.name)

    def _mark(self, packet: Packet) -> bool:
        """CE-mark an ECT packet; False means the caller must drop."""
        if packet.ecn != ECN_ECT:
            return False
        packet.ecn = ECN_CE
        self.marked_ecn += 1
        self.sim.ecn_marks += 1
        self._m_marks.inc()
        return True

    @property
    def queue_depth(self) -> int:
        """Packets currently waiting (excludes the one being serialized)."""
        if self._egress and self._service_done <= self.sim.now:
            self._advance(self.sim.now)
        return len(self._egress)

    # -- fault state -------------------------------------------------------

    def set_up(self, up: bool) -> None:
        """Raise or cut the link; cutting loses every queued packet."""
        if up == self.up:
            return
        self.up = up
        self.sim.trace("fault", f"link {self.name} {'up' if up else 'down'}")
        if not up:
            # promote first: a serialization that already started stays
            # in flight and is dropped at its delivery time, exactly as
            # the old per-event chain behaved
            self._advance(self.sim.now)
            if self._egress:
                lost = len(self._egress)
                if self._managed:
                    self.dropped_bytes += self._egress_bytes
                    self.in_flight_bytes -= self._egress_bytes
                    self._egress_bytes = 0
                    self._egress_times.clear()
                self._egress.clear()
                self.dropped += lost
                self.dropped_down += lost
                self.in_flight -= lost
                self._m_drops["down"].inc(lost)
                self._m_queue.set(0)

    def set_loss_rate(self, loss_rate: float) -> None:
        """Set the per-packet drop probability (0 disables loss)."""
        if not 0.0 <= loss_rate <= 1.0:
            raise ValueError("loss rate must be in [0, 1]")
        if loss_rate != self.loss_rate:
            self.sim.trace("fault", f"link {self.name} loss={loss_rate:g}")
        self.loss_rate = loss_rate

    def _drop(self, cause: str) -> bool:
        self.dropped += 1
        if cause == "overflow":
            self.dropped_overflow += 1
        elif cause == "down":
            self.dropped_down += 1
        elif cause == "aqm":
            self.dropped_aqm += 1
        else:
            self.dropped_loss += 1
        self._m_drops[cause].inc()
        self.sim.trace("drop", f"link {self.name}: {cause}")
        return False

    def send(self, packet: Packet) -> bool:
        """Enqueue a packet; returns False (and counts a drop by cause)
        when the link is down, the loss draw fails, the queue is full,
        or — in managed mode — the AQM discipline says drop."""
        if self.receiver is None:
            raise RuntimeError(f"link {self.name!r} has no receiver connected")
        if self._managed:
            return self._send_managed(packet)
        self.offered += 1
        if not self.up:
            return self._drop("down")
        if self.loss_rate > 0.0 and self._loss_rng.random() < self.loss_rate:
            return self._drop("loss")
        now = self.sim.now
        if self._egress and self._service_done <= now:
            self._advance(now)
        if self._service_done > now:  # serializer busy: join the queue
            egress = self._egress
            if len(egress) >= self.queue_packets:
                return self._drop("overflow")
            egress.append(packet)
            self.in_flight += 1
            qlen = len(egress)
            self._m_queue.set(qlen)
            sim = self.sim
            if qlen > sim.link_peak_queue:
                sim.link_peak_queue = qlen
            return True
        self.in_flight += 1
        self._start_service(now, packet)
        return True

    def _send_managed(self, packet: Packet) -> bool:
        """Managed-mode send: byte ledger, byte capacity, AQM, ECN."""
        size = packet.size_bytes
        self.offered += 1
        self.offered_bytes += size
        if not self.up:
            self.dropped_bytes += size
            return self._drop("down")
        if self.loss_rate > 0.0 and self._loss_rng.random() < self.loss_rate:
            self.dropped_bytes += size
            return self._drop("loss")
        now = self.sim.now
        if self._egress and self._service_done <= now:
            self._advance_managed(now)
        aqm = self._aqm
        if self._service_done > now:  # serializer busy: join the queue
            egress = self._egress
            if len(egress) >= self.queue_packets or (
                    self.queue_bytes is not None
                    and self._egress_bytes + size > self.queue_bytes):
                self.dropped_bytes += size
                return self._drop("overflow")
            if aqm is not None:
                verdict = aqm.on_enqueue(len(egress), self._egress_bytes,
                                         packet, now)
                if verdict != PASS and (verdict == DROP
                                        or not self._mark(packet)):
                    self.dropped_bytes += size
                    return self._drop("aqm")
            egress.append(packet)
            self._egress_times.append(now)
            self._egress_bytes += size
            self.in_flight += 1
            self.in_flight_bytes += size
            qlen = len(egress)
            self._m_queue.set(qlen)
            sim = self.sim
            if qlen > sim.link_peak_queue:
                sim.link_peak_queue = qlen
            return True
        if aqm is not None:
            # empty queue: the enqueue hook still observes the arrival
            # (RED's average) and the dequeue hook sees a zero sojourn
            # (CoDel leaves its dropping state)
            verdict = aqm.on_enqueue(0, 0, packet, now)
            if verdict == PASS:
                verdict = aqm.on_dequeue(0.0, now)
            if verdict != PASS and (verdict == DROP or not self._mark(packet)):
                self.dropped_bytes += size
                return self._drop("aqm")
        self.in_flight += 1
        self.in_flight_bytes += size
        self._start_service(now, packet)
        return True

    def _start_service(self, start: float, packet: Packet) -> None:
        """Begin serializing ``packet`` at ``start`` and push its flight.

        The float chain (``done = start + tx``, ``deliver = done +
        delay``) reproduces the exact timestamps the old
        serialize/transmitted/deliver event pair computed.
        """
        size = packet.size_bytes
        rate = self.rate_bps
        done = start + (size * 8.0 / rate if rate != _INF else 0.0)
        self._service_done = done
        self.bytes_sent += size
        self._m_bytes.inc(size)
        flight = self._flight
        flight.append((done + self.delay_s, packet))
        if not self._wakeup:
            self._wakeup = True
            self.sim.post_at(flight[0][0], self._drain)

    def _advance(self, now: float) -> None:
        """Promote queued packets whose service has started by ``now``."""
        if self._managed:
            self._advance_managed(now)
            return
        egress = self._egress
        while egress and self._service_done <= now:
            packet = egress.popleft()
            self._start_service(self._service_done, packet)
            self._m_queue.set(len(egress))

    def _advance_managed(self, now: float) -> None:
        """Managed promotion: sojourn-time AQM at dequeue, byte ledger.

        The sojourn a dequeue-side discipline (CoDel) sees is measured
        against the packet's deterministic *service-start* time — the
        pre-update ``_service_done`` chain — not the wall-clock moment
        the lazy promotion happens to run, so verdicts are identical no
        matter when the link is next touched.
        """
        egress = self._egress
        times = self._egress_times
        aqm = self._aqm
        while egress and self._service_done <= now:
            packet = egress.popleft()
            enq_at = times.popleft()
            size = packet.size_bytes
            self._egress_bytes -= size
            if aqm is not None:
                start = self._service_done
                verdict = aqm.on_dequeue(start - enq_at, start)
                if verdict != PASS and (verdict == DROP
                                        or not self._mark(packet)):
                    self.in_flight -= 1
                    self.in_flight_bytes -= size
                    self.dropped_bytes += size
                    self._drop("aqm")
                    self._m_queue.set(len(egress))
                    continue
            self._start_service(self._service_done, packet)
            self._m_queue.set(len(egress))

    def _drain(self) -> None:
        """Wake-up event: hand over every delivery that is due."""
        self._wakeup = False
        now = self.sim.now
        flight = self._flight
        receiver = self.receiver
        managed = self._managed
        while flight and flight[0][0] <= now:
            _at, packet = flight.popleft()
            self.in_flight -= 1
            if not self.up:
                if managed:
                    size = packet.size_bytes
                    self.in_flight_bytes -= size
                    self.dropped_bytes += size
                self._drop("down")  # cut mid-flight
                continue
            if managed:
                size = packet.size_bytes
                self.in_flight_bytes -= size
                self.delivered_bytes += size
            self.delivered += 1
            self._m_delivered.inc()
            receiver(packet)
        self._advance(now)
        if flight and not self._wakeup:
            self._wakeup = True
            self.sim.post_at(flight[0][0], self._drain)

    def __repr__(self) -> str:
        rate = ("inf" if self.rate_bps == float("inf")
                else f"{self.rate_bps/1e6:g}Mbps")
        return (f"<Link {self.name} {rate} {self.delay_s*1e3:g}ms "
                f"q={self.queue_depth}/{self.queue_packets}>")
