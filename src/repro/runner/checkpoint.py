"""Resumable sweep journal: completed cells survive a killed run.

A long ``--all --jobs N`` regeneration that dies 90% through (OOM, a
pulled plug, Ctrl-C) should not start over. :class:`SweepCheckpoint`
journals every completed sweep cell as one JSON line in an append-only
manifest; ``python -m repro --all --resume <dir>`` loads the manifest,
replays the journaled cells' outputs byte-for-byte, and executes only
the unfinished ones. Because tasks are self-seeding (see
:mod:`repro.runner.seeds`), the merged tables are byte-identical to an
uninterrupted run.

Durability: records are flushed and fsync'd as they are written, and a
torn final line (the process died mid-write) is detected and dropped on
load — the cell it named simply re-runs.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, Iterator, Optional

__all__ = ["SweepCheckpoint"]

#: Manifest schema version, written in the header record.
_SCHEMA = 1


class SweepCheckpoint:
    """An append-only JSONL journal of completed sweep cells.

    Args:
        directory: where the manifest lives (created if missing).
        run_id: optional campaign name recorded in the header; a resume
            with a *different* run_id refuses to mix manifests.

    Keys are caller-chosen strings (the CLI uses ``exp:<id>``); payloads
    must be JSON-serializable. One instance may be shared between the
    journaling producer and the resume consumer — :meth:`record` keeps
    the in-memory view and the on-disk journal in step.
    """

    MANIFEST = "manifest.jsonl"

    def __init__(self, directory: str, run_id: Optional[str] = None) -> None:
        self.directory = directory
        os.makedirs(directory, exist_ok=True)
        self.path = os.path.join(directory, self.MANIFEST)
        self._done: Dict[str, Any] = {}
        self.dropped_torn_lines = 0
        self._load(run_id)
        self._handle = open(self.path, "a", encoding="utf-8")
        if self._fresh:
            self._append({"kind": "header", "schema": _SCHEMA,
                          "run_id": run_id or ""})

    # -- load ------------------------------------------------------------------

    def _load(self, run_id: Optional[str]) -> None:
        self._fresh = True
        if not os.path.exists(self.path):
            return
        with open(self.path, "r", encoding="utf-8") as handle:
            content = handle.read()
        lines = content.split("\n")
        for index, line in enumerate(lines):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                if all(not rest.strip() for rest in lines[index + 1:]):
                    # torn tail from a mid-write death: drop it — and
                    # truncate it from disk, or the next append would
                    # glue a fresh record onto the unterminated fragment
                    self.dropped_torn_lines += 1
                    clean = "\n".join(lines[:index])
                    if clean:
                        clean += "\n"
                    with open(self.path, "w", encoding="utf-8") as handle:
                        handle.write(clean)
                        handle.flush()
                        os.fsync(handle.fileno())
                    continue
                # a torn line *followed by* intact ones means the file
                # was corrupted some other way; refuse to guess
                raise ValueError(
                    f"{self.path}: corrupt manifest line {index + 1}")
            kind = record.get("kind")
            if kind == "header":
                self._fresh = False
                manifest_run = record.get("run_id", "")
                if run_id and manifest_run and manifest_run != run_id:
                    raise ValueError(
                        f"{self.path} belongs to run {manifest_run!r}, "
                        f"not {run_id!r}; use a fresh --resume directory")
            elif kind == "cell":
                self._done[record["key"]] = record["payload"]
        if self._done:
            self._fresh = False

    # -- journal ----------------------------------------------------------------

    def _append(self, record: dict) -> None:
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def record(self, key: str, payload: Any) -> None:
        """Journal one completed cell (idempotent for identical keys)."""
        if key in self._done:
            return
        self._done[key] = payload
        self._append({"kind": "cell", "key": key, "payload": payload})

    # -- queries ----------------------------------------------------------------

    def done(self, key: str) -> bool:
        """True when ``key`` was journaled (here or in a prior run)."""
        return key in self._done

    def get(self, key: str) -> Any:
        """The journaled payload for ``key`` (KeyError if not done)."""
        return self._done[key]

    def keys(self) -> Iterator[str]:
        """Journaled keys, in insertion order."""
        return iter(self._done)

    def __len__(self) -> int:
        return len(self._done)

    def close(self) -> None:
        """Close the journal handle (records already on disk stay)."""
        if not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "SweepCheckpoint":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return (f"<SweepCheckpoint {self.path} done={len(self._done)} "
                f"torn={self.dropped_torn_lines}>")
