"""MME: the mobility management entity — the EPC's control brain.

Runs the EPS attach state machine per UE (identity -> AKA challenge ->
security mode -> session setup -> accept), drives the S-GW over S11, and
handles handover path switches. One MME serves *all* eNodeBs in the
centralized architecture; its serial processing and its distance from
the eNodeBs are exactly the costs E7 measures.
"""

from __future__ import annotations

import enum
import hmac
import itertools
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.epc.agents import ControlAgent, ControlChannel, ControlMessage
from repro.epc.crypto import AuthVector
from repro.epc.nas import (
    AttachAccept,
    AttachComplete,
    AttachReject,
    AttachRequest,
    AuthenticationReject,
    AuthenticationRequest,
    AuthenticationResponse,
    AuthInfoAnswer,
    AuthInfoRequest,
    CreateSessionRequest,
    CreateSessionResponse,
    DeleteSessionRequest,
    DetachRequest,
    ModifyBearerRequest,
    ModifyBearerResponse,
    Paging,
    PathSwitchAck,
    PathSwitchRequest,
    SecurityModeCommand,
    SecurityModeComplete,
    ServiceAccept,
    ServiceRequest,
    UeContextRelease,
)
from repro.net.addressing import IPv4Address
from repro.simcore.simulator import Simulator


class UeContextState(enum.Enum):
    """MME-side per-UE attach state machine."""

    AWAITING_VECTOR = "awaiting-vector"
    AUTHENTICATING = "authenticating"
    SECURING = "securing"
    CREATING_SESSION = "creating-session"
    AWAITING_COMPLETE = "awaiting-complete"
    ATTACHED = "attached"


@dataclass
class UeContext:
    """Everything the MME remembers about one UE."""

    ue_id: str
    imsi: str
    serving_enb: str
    state: UeContextState = UeContextState.AWAITING_VECTOR
    vector: Optional[AuthVector] = None
    guti: str = ""
    ue_address: Optional[IPv4Address] = None
    attach_started_at: float = 0.0
    #: ECM connection state: False once the RRC connection is released.
    #: While idle the MME only knows the UE to tracking-area granularity,
    #: so downlink data triggers a paging fan-out.
    ecm_connected: bool = True


class Mme(ControlAgent):
    """Serial MME agent: attach, detach, and handover path switch."""

    def __init__(self, sim: Simulator, name: str = "mme",
                 service_time_s: float = 1e-3) -> None:
        super().__init__(sim, name, service_time_s)
        self.s1: Dict[str, ControlChannel] = {}     # eNB name -> channel
        self.s6a: Optional[ControlChannel] = None
        self.s11: Optional[ControlChannel] = None
        self.contexts: Dict[str, UeContext] = {}
        self._guti_counter = itertools.count(1)
        # metrics
        self.attaches_completed = 0
        self.attaches_rejected = 0
        self.path_switches = 0
        self.pages_sent = 0
        self.service_requests = 0
        metrics = sim.metrics
        self._m_completed = metrics.counter("epc.attach.completed", core=name)
        self._m_rejected = metrics.counter("epc.attach.rejected", core=name)
        self._m_switches = metrics.counter("epc.mme.path_switches", core=name)
        self._m_pages = metrics.counter("epc.mme.pages_sent", core=name)
        self._m_service = metrics.counter("epc.mme.service_requests",
                                          core=name)
        self._m_attach_s = metrics.histogram("epc.attach.mme_latency_s",
                                             core=name)
        #: open epc.attach spans keyed by ue_id
        self._attach_spans: Dict[str, object] = {}

    # -- wiring ----------------------------------------------------------------

    def connect_enb(self, enb_name: str, channel: ControlChannel) -> None:
        """Register the S1-MME channel from an eNodeB."""
        self.s1[enb_name] = channel

    def connect_hss(self, channel: ControlChannel) -> None:
        """Register the S6a channel toward the HSS."""
        self.s6a = channel

    def connect_sgw(self, channel: ControlChannel) -> None:
        """Register the S11 channel toward the S-GW."""
        self.s11 = channel

    def _to_ue(self, ctx: UeContext, nas) -> None:
        channel = self.s1.get(ctx.serving_enb)
        if channel is not None:
            channel.send(self, nas)

    # -- dispatch -----------------------------------------------------------------

    def handle(self, message: ControlMessage) -> None:
        payload = message.payload
        if isinstance(payload, AttachRequest):
            self._on_attach_request(message.sender.name, payload)
        elif isinstance(payload, AuthInfoAnswer):
            self._on_auth_info(payload)
        elif isinstance(payload, AuthenticationResponse):
            self._on_auth_response(payload)
        elif isinstance(payload, SecurityModeComplete):
            self._on_security_complete(payload)
        elif isinstance(payload, CreateSessionResponse):
            self._on_session_response(payload)
        elif isinstance(payload, AttachComplete):
            self._on_attach_complete(payload)
        elif isinstance(payload, DetachRequest):
            self._on_detach(payload)
        elif isinstance(payload, PathSwitchRequest):
            self._on_path_switch(payload)
        elif isinstance(payload, ModifyBearerResponse):
            self._on_bearer_moved(payload)
        elif isinstance(payload, UeContextRelease):
            self._on_context_release(payload)
        elif isinstance(payload, ServiceRequest):
            self._on_service_request(payload)

    def _reject_attach(self, ctx: UeContext, cause: str) -> None:
        self.attaches_rejected += 1
        self._m_rejected.inc()
        span = self._attach_spans.pop(ctx.ue_id, None)
        if span is not None:
            span.end(status="rejected", cause=cause)

    def _send_congestion_reject(self, message: ControlMessage,
                                backoff_s: float) -> None:
        """Admission control refused an AttachRequest at enqueue time:
        answer with the T3346-style congestion reject (costs no MME
        service time — that is the point of refusing early)."""
        request = message.payload
        channel = self.s1.get(message.sender.name)
        if channel is None:
            return
        self.attaches_rejected += 1
        self._m_rejected.inc()
        channel.send(self, AttachReject(ue_id=request.ue_id,
                                        cause="congestion",
                                        backoff_s=backoff_s))

    # -- attach procedure ------------------------------------------------------------

    def _on_attach_request(self, enb_name: str, request: AttachRequest) -> None:
        ctx = UeContext(ue_id=request.ue_id, imsi=request.imsi,
                        serving_enb=enb_name,
                        attach_started_at=self.sim.now)
        self.contexts[request.ue_id] = ctx
        stale = self._attach_spans.pop(request.ue_id, None)
        if stale is not None:
            stale.end(status="superseded")
        self._attach_spans[request.ue_id] = self.sim.span(
            "epc.attach", core=self.name, ue=request.ue_id, enb=enb_name)
        self.s6a.send(self, AuthInfoRequest(ue_id=request.ue_id,
                                            imsi=request.imsi))

    def _on_auth_info(self, answer: AuthInfoAnswer) -> None:
        ctx = self.contexts.get(answer.ue_id)
        if ctx is None or ctx.state is not UeContextState.AWAITING_VECTOR:
            return
        if answer.vector is None:
            self._reject_attach(ctx, answer.cause)
            self._to_ue(ctx, AttachReject(ue_id=ctx.ue_id, cause=answer.cause))
            del self.contexts[ctx.ue_id]
            return
        ctx.vector = answer.vector
        ctx.state = UeContextState.AUTHENTICATING
        self._to_ue(ctx, AuthenticationRequest(
            ue_id=ctx.ue_id, rand=answer.vector.rand,
            autn=answer.vector.autn, sqn=answer.vector.sqn))

    def _on_auth_response(self, response: AuthenticationResponse) -> None:
        ctx = self.contexts.get(response.ue_id)
        if ctx is None or ctx.state is not UeContextState.AUTHENTICATING:
            return
        if not hmac.compare_digest(response.res, ctx.vector.xres):
            self._reject_attach(ctx, "auth-failure")
            self._to_ue(ctx, AuthenticationReject(ue_id=ctx.ue_id))
            del self.contexts[ctx.ue_id]
            return
        ctx.state = UeContextState.SECURING
        self._to_ue(ctx, SecurityModeCommand(ue_id=ctx.ue_id))

    def _on_security_complete(self, msg: SecurityModeComplete) -> None:
        ctx = self.contexts.get(msg.ue_id)
        if ctx is None or ctx.state is not UeContextState.SECURING:
            return
        ctx.state = UeContextState.CREATING_SESSION
        self.s11.send(self, CreateSessionRequest(ue_id=ctx.ue_id,
                                                 imsi=ctx.imsi))

    def _on_session_response(self, response: CreateSessionResponse) -> None:
        ctx = self.contexts.get(response.ue_id)
        if ctx is None or ctx.state is not UeContextState.CREATING_SESSION:
            return
        if response.ue_address is None:
            self._reject_attach(ctx, response.cause)
            self._to_ue(ctx, AttachReject(ue_id=ctx.ue_id, cause=response.cause))
            del self.contexts[ctx.ue_id]
            return
        ctx.ue_address = response.ue_address
        ctx.guti = f"guti-{next(self._guti_counter)}"
        ctx.state = UeContextState.AWAITING_COMPLETE
        self._to_ue(ctx, AttachAccept(ue_id=ctx.ue_id,
                                      ue_address=response.ue_address,
                                      guti=ctx.guti))

    def _on_attach_complete(self, msg: AttachComplete) -> None:
        ctx = self.contexts.get(msg.ue_id)
        if ctx is None or ctx.state is not UeContextState.AWAITING_COMPLETE:
            return
        ctx.state = UeContextState.ATTACHED
        self.attaches_completed += 1
        self._m_completed.inc()
        self._m_attach_s.observe(self.sim.now - ctx.attach_started_at)
        span = self._attach_spans.pop(ctx.ue_id, None)
        if span is not None:
            span.end(status="ok")
        self.sim.trace("attach", f"{self.name}: attach complete",
                       ue=ctx.ue_id, enb=ctx.serving_enb)

    def _on_detach(self, msg: DetachRequest) -> None:
        ctx = self.contexts.pop(msg.ue_id, None)
        if ctx is not None and self.s11 is not None:
            self.s11.send(self, DeleteSessionRequest(ue_id=msg.ue_id))

    # -- handover path switch ------------------------------------------------------------

    def _on_path_switch(self, request: PathSwitchRequest) -> None:
        ctx = self.contexts.get(request.ue_id)
        if ctx is None or ctx.state is not UeContextState.ATTACHED:
            return
        ctx.serving_enb = request.target_enb
        self.s11.send(self, ModifyBearerRequest(
            ue_id=request.ue_id, imsi=ctx.imsi,
            new_enb_address=request.enb_address))

    def _on_bearer_moved(self, response: ModifyBearerResponse) -> None:
        ctx = self.contexts.get(response.ue_id)
        if ctx is None:
            return
        self.path_switches += 1
        self._m_switches.inc()
        self._to_ue(ctx, PathSwitchAck(ue_id=ctx.ue_id))

    # -- idle mode / paging ----------------------------------------------------------

    def _on_context_release(self, msg: UeContextRelease) -> None:
        ctx = self.contexts.get(msg.ue_id)
        if ctx is not None and ctx.state is UeContextState.ATTACHED:
            ctx.ecm_connected = False

    def page(self, ue_id: str) -> int:
        """Downlink data arrived for an idle UE: page the tracking area.

        Every connected eNB gets the page (the MME does not know which
        cell the UE camps on). Returns the number of pages sent; 0 when
        the UE is unknown or already connected.
        """
        ctx = self.contexts.get(ue_id)
        if ctx is None or ctx.ecm_connected:
            return 0
        for channel in self.s1.values():
            channel.send(self, Paging(ue_id=ue_id))
            self.pages_sent += 1
            self._m_pages.inc()
        return len(self.s1)

    def _on_service_request(self, msg: ServiceRequest) -> None:
        ctx = self.contexts.get(msg.ue_id)
        if ctx is None or ctx.state is not UeContextState.ATTACHED:
            return
        self.service_requests += 1
        self._m_service.inc()
        ctx.ecm_connected = True
        self._to_ue(ctx, ServiceAccept(ue_id=ctx.ue_id))
