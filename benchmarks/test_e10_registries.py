"""Bench E10 — SAS vs federated vs blockchain registries (§4.3)."""

from conftest import emit, once

from repro.experiments import e10_registries


def test_e10_registry_latencies(benchmark):
    table = once(benchmark, e10_registries.run)
    emit(table)
    rows = {row["registry"]: row for row in table.rows}
    sas = rows["SAS (centralized)"]
    fed = rows["federated (DNS-like)"]
    chain = rows["blockchain (PoW)"]
    # everyone eventually joins
    assert sas["joined"] == fed["joined"] == chain["joined"]
    # join latency: SAS < federated << blockchain (orders of magnitude)
    assert sas["join_mean_s"] < fed["join_mean_s"]
    assert chain["join_mean_s"] > 50 * fed["join_mean_s"]
    # blockchain reads are local: discovery is effectively free
    assert chain["discover_mean_ms"] < 1.0
    assert sas["discover_mean_ms"] > 10.0


def test_e10_service_continuity(benchmark):
    """CBRS leases turn a SAS outage into an air-interface outage."""
    table = once(benchmark, e10_registries.service_continuity_under_outage)
    emit(table)
    rows = {row["registry"]: row for row in table.rows}
    sas = rows["SAS (CBRS leases)"]
    assert sas["aps_running_before"] == 10
    assert sas["aps_running_after"] == 0        # everyone silenced
    # silence arrives within one lease of the outage, not instantly
    assert 0 < sas["mean_time_to_silence_s"] <= 60.0
    for name in ("federated (perpetual grants)",
                 "blockchain (perpetual grants)"):
        assert rows[name]["aps_running_after"] == 10


def test_e10_availability_under_failure(benchmark):
    table = once(benchmark, e10_registries.availability_under_failure)
    emit(table)
    rows = {row["registry"]: row for row in table.rows}
    # the availability ordering inverts the latency ordering
    assert (rows["blockchain (PoW)"]["availability_pct"]
            > rows["federated (DNS-like)"]["availability_pct"]
            > rows["SAS (centralized)"]["availability_pct"])
    assert rows["blockchain (PoW)"]["availability_pct"] == 100.0
    assert rows["SAS (centralized)"]["availability_pct"] < 60.0
    assert rows["federated (DNS-like)"]["availability_pct"] > 80.0
