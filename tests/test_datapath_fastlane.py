"""Tests for the packet-datapath fast lane (see PERFORMANCE.md).

Covers the three tentpole pieces — link egress pipelining, timer-heap
hygiene, and packet pooling — plus the scheduling fast path they ride
on. The contract under test everywhere is *semantic equivalence*: the
fast lane must produce the same delivery times, the same drop
accounting, and the same FIFO order as the naive implementations it
replaced.
"""

import ipaddress

import pytest

from repro.net import Host
from repro.net.links import Link
from repro.net.packet import Packet, PacketPool
from repro.simcore import Simulator
from repro.transport import BulkTransferApp, TcpConnection, TcpListener, \
    TransportDemux

IP = ipaddress.IPv4Address


@pytest.fixture
def sim():
    return Simulator(seed=7)


def _packet(size=1000, **kw):
    return Packet(src=IP("10.0.0.1"), dst=IP("10.0.0.2"), size_bytes=size,
                  **kw)


# -- link egress pipelining ---------------------------------------------------

def test_pipelined_deliveries_keep_serialization_chain(sim):
    """Back-to-back sends serialize sequentially; each delivery lands at
    its own serialization-done + propagation instant."""
    link = Link(sim, rate_bps=1e6, delay_s=0.01, name="l")
    arrivals = []
    link.connect(lambda p: arrivals.append((sim.now, p.seq)))
    for seq in range(4):
        assert link.send(_packet(size=1250, seq=seq))  # 10 ms each at 1 Mbps
    sim.run()
    expect = [(0.01 * (i + 1) + 0.01, i) for i in range(4)]
    assert [(pytest.approx(t), s) for t, s in expect] == arrivals


def test_busy_link_keeps_one_live_heap_event(sim):
    """A deep egress queue costs one wake-up event, not one per packet."""
    link = Link(sim, rate_bps=1e6, delay_s=0.05, queue_packets=100, name="l")
    link.connect(lambda p: None)
    for seq in range(50):
        link.send(_packet(size=1250, seq=seq))
    # 50 packets queued or in flight, but only the single drain wake-up
    # (plus nothing else) sits in the run queue
    assert link.in_flight == 50
    assert sim.live_queue_length == 1
    sim.run()
    assert link.delivered == 50


def test_overflow_at_depth_counts_and_conserves(sim):
    """Sends past the drop-tail cap are refused with cause=overflow and
    the conservation law (offered = delivered + dropped + in_flight)
    holds throughout."""
    link = Link(sim, rate_bps=1e6, delay_s=0.001, queue_packets=5, name="l")
    delivered = []
    link.connect(delivered.append)
    accepted = sum(link.send(_packet(size=1250, seq=i)) for i in range(10))
    # one in service + 5 queued fit; the other 4 overflow
    assert accepted == 6
    assert link.dropped_overflow == 4
    assert link.offered == link.delivered + link.dropped + link.in_flight
    sim.run()
    assert len(delivered) == 6
    assert link.queue_depth == 0
    assert link.offered == link.delivered + link.dropped + link.in_flight


def test_down_mid_flight_drops_at_delivery_time(sim):
    """A packet already serialized when the link is cut is lost at its
    delivery instant, not retroactively."""
    link = Link(sim, rate_bps=1e6, delay_s=0.1, name="l")
    arrivals = []
    link.connect(arrivals.append)
    link.send(_packet(size=1250))          # in service until t=0.01
    link.send(_packet(size=1250, seq=1))   # queued
    sim.schedule(0.005, link.set_up, False)
    sim.run()
    assert arrivals == []
    # the queued packet was lost to the cut immediately; the in-service
    # one rode out its flight and was dropped on arrival
    assert link.dropped_down == 2
    assert link.in_flight == 0
    assert link.offered == link.delivered + link.dropped


def test_loss_draws_deterministic_across_runs():
    """The cached per-link loss stream reproduces exactly from the seed."""
    def run_once():
        sim = Simulator(seed=42)
        link = Link(sim, rate_bps=1e9, delay_s=0.001, name="lossy")
        link.set_loss_rate(0.3)
        got = []
        link.connect(lambda p: got.append(p.seq))
        for seq in range(40):
            link.send(_packet(seq=seq))
        sim.run()
        return got
    first, second = run_once(), run_once()
    assert first == second
    assert 0 < len(first) < 40


def test_queue_depth_promotes_lazily(sim):
    """Reading queue_depth after time passed reflects completed service
    even though no event has touched the link in between."""
    link = Link(sim, rate_bps=1e6, delay_s=1.0, name="l")
    link.connect(lambda p: None)
    for seq in range(3):
        link.send(_packet(size=1250, seq=seq))
    assert link.queue_depth == 2
    sim.run(until=0.025)  # 2 of 3 serializations (10 ms each) done
    assert link.queue_depth == 0


# -- timer-heap hygiene -------------------------------------------------------

def test_same_time_fifo_survives_cancellation_and_compaction():
    """Cancelling enough entries to trigger heap compaction must not
    disturb the FIFO order of surviving same-time events."""
    sim = Simulator()
    order = []
    survivors = []
    doomed = []
    for i in range(200):
        handle = sim.at(1.0, order.append, i)
        (doomed if i % 3 else survivors).append((i, handle))
    before = sim.queue_length
    for _i, handle in doomed:
        handle.cancel()
    # compaction fired at least once along the way: most of the dead
    # entries are physically gone, and the live count is exact
    assert sim.queue_length < before
    assert sim.live_queue_length == len(survivors)
    sim.run()
    assert order == [i for i, _h in survivors]


def test_cancel_counts_and_compaction_threshold():
    sim = Simulator()
    handles = [sim.at(1.0, lambda: None) for _ in range(100)]
    for handle in handles[:60]:
        handle.cancel()
    # 60 cancelled of 100: compaction (needs >64) has not fired yet,
    # but live_queue_length already excludes the garbage
    assert sim.queue_length == 100
    assert sim.live_queue_length == 40
    for handle in handles[60:70]:
        handle.cancel()
    # the 65th cancellation crossed the threshold (>64 with garbage
    # dominating) and compacted down to the then-live 35; the last five
    # cancels accumulate as fresh garbage
    assert sim.queue_length == 35
    assert sim.live_queue_length == 30


def test_double_cancel_counted_once():
    sim = Simulator()
    keep = sim.at(1.0, lambda: None)
    handle = sim.at(1.0, lambda: None)
    handle.cancel()
    handle.cancel()
    assert sim.live_queue_length == 1
    sim.run()  # dispatch decrements the garbage counter exactly once
    assert sim.live_queue_length == 0
    assert keep.cancelled is False


def test_post_at_interleaves_fifo_with_at():
    """Handle-free fast-path events share the same (time, seq) ordering
    as normal ones."""
    sim = Simulator()
    order = []
    sim.at(1.0, order.append, "a")
    sim.post_at(1.0, order.append, "b")
    sim.at(1.0, order.append, "c")
    sim.post_at(0.5, order.append, "early")
    sim.run()
    assert order == ["early", "a", "b", "c"]


def test_rto_rearm_churn_does_not_grow_heap():
    """A bulk transfer re-arms its RTO on every ack; the lazy-deadline
    timer must keep the live queue flat instead of pushing one heap
    entry per ack."""
    sim = Simulator(seed=3)
    a = Host(sim, "a", IP("10.0.0.1"))
    b = Host(sim, "b", IP("10.0.0.2"))
    a.connect_bidirectional(b, rate_bps=50e6, delay_s=0.01)
    demux_a, demux_b = TransportDemux(a), TransportDemux(b)
    TcpListener(sim, demux_b)
    app = BulkTransferApp(sim, demux_a, b.address, TcpConnection,
                          total_bytes=400_000)
    app.start()
    sim.run(until=30)
    assert app.done_at is not None
    # every acked MSS re-armed the RTO at least once
    assert app.conn.bytes_acked >= 400_000
    # cancel/re-push per ack would have driven the high-water mark (or
    # the garbage count) toward one entry per ack; the lazy timer keeps
    # the whole footprint near the handful of live events
    assert sim.heap_high_water < 32
    assert sim.live_queue_length <= sim.queue_length <= \
        sim.live_queue_length + 2


# -- packet pooling -----------------------------------------------------------

def test_pool_recycles_shell_with_fresh_identity():
    pool = PacketPool(capacity=4)
    p = pool.acquire(IP("10.0.0.1"), IP("10.0.0.2"), 500, flow_id="f",
                     payload={"k": 1}, created_at=1.5)
    old_id = p.packet_id
    p.record_hop("r1")
    pool.release(p)
    q = pool.acquire(IP("10.0.0.3"), IP("10.0.0.4"), 700, seq=9)
    assert q is p  # same shell ...
    assert q.packet_id != old_id  # ... new life
    assert q.payload is None and q.hops is None and q.encap_stack is None
    assert (q.src, q.dst, q.size_bytes, q.seq) == \
        (IP("10.0.0.3"), IP("10.0.0.4"), 700, 9)
    assert pool.acquired == 2 and pool.recycled == 1


def test_pool_capacity_caps_free_list():
    pool = PacketPool(capacity=2)
    packets = [pool.acquire(None, None, 100) for _ in range(5)]
    for p in packets:
        pool.release(p)
    assert len(pool) == 2


def test_pool_validates_size_on_recycle():
    pool = PacketPool()
    pool.release(pool.acquire(None, None, 100))
    with pytest.raises(ValueError):
        pool.acquire(None, None, 0)


def test_transport_pooling_preserves_transfer():
    """End-to-end: the pooled segment path completes a transfer with the
    same byte accounting as ever."""
    sim = Simulator(seed=11)
    a = Host(sim, "a", IP("10.0.0.1"))
    b = Host(sim, "b", IP("10.0.0.2"))
    a.connect_bidirectional(b, rate_bps=50e6, delay_s=0.005)
    demux_a, demux_b = TransportDemux(a), TransportDemux(b)
    TcpListener(sim, demux_b)
    app = BulkTransferApp(sim, demux_a, b.address, TcpConnection,
                          total_bytes=250_000)
    app.start()
    sim.run(until=30)
    assert app.done_at is not None
    assert app._acked_total() == 250_000


# -- observability plumbing ---------------------------------------------------

def test_heap_high_water_reported_through_hub():
    from repro.telemetry.hub import HUB

    HUB.start_run()
    try:
        sim = Simulator()
        for i in range(10):
            sim.schedule(i * 0.1, lambda: None)
        sim.run()
    except BaseException:
        HUB.abort_run()
        raise
    run = HUB.finish_run()
    assert run.heap_high_water == sim.heap_high_water == 10
