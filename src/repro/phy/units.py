"""Unit conversions for RF arithmetic (dB, dBm, watts, thermal noise)."""

from __future__ import annotations

import math

#: Boltzmann constant times reference temperature (290 K), in watts/Hz.
_KT_W_PER_HZ = 1.380649e-23 * 290.0

#: Thermal noise density at 290 K in dBm/Hz (the familiar -174).
THERMAL_NOISE_DENSITY_DBM_HZ = 10.0 * math.log10(_KT_W_PER_HZ * 1e3)


def db_to_linear(db: float) -> float:
    """Convert a dB ratio to a linear ratio."""
    return 10.0 ** (db / 10.0)


def linear_to_db(ratio: float) -> float:
    """Convert a linear power ratio to dB. Requires ratio > 0."""
    if ratio <= 0:
        raise ValueError(f"cannot take dB of non-positive ratio {ratio}")
    return 10.0 * math.log10(ratio)


def dbm_to_watts(dbm: float) -> float:
    """Convert dBm to watts."""
    return 10.0 ** ((dbm - 30.0) / 10.0)


def watts_to_dbm(watts: float) -> float:
    """Convert watts to dBm. Requires watts > 0."""
    if watts <= 0:
        raise ValueError(f"cannot take dBm of non-positive power {watts}")
    return 10.0 * math.log10(watts) + 30.0


def thermal_noise_dbm(bandwidth_hz: float, noise_figure_db: float = 0.0) -> float:
    """Thermal noise power over ``bandwidth_hz``, plus receiver noise figure.

    kTB at 290 K: -174 dBm/Hz + 10 log10(B) + NF.
    """
    if bandwidth_hz <= 0:
        raise ValueError(f"bandwidth must be positive, got {bandwidth_hz}")
    return THERMAL_NOISE_DENSITY_DBM_HZ + 10.0 * math.log10(bandwidth_hz) + noise_figure_db
