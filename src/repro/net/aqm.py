"""Active queue management disciplines for :class:`repro.net.links.Link`.

The seed's links are pure drop-tail: a queue only signals congestion by
overflowing, which under sustained overload means deep standing queues,
inflated RTTs, and eventually congestion collapse (E18's control arm).
This module adds the two classic AQM families, both deterministic on the
sim clock so a run stays reproducible from ``(seed, topology)``:

* :class:`RedDiscipline` — Random Early Detection: an EWMA of the queue
  length drives an early drop/mark probability between two thresholds.
  Randomness comes from the link's own named RNG stream
  (``link-aqm:<name>``), never the global one.
* :class:`CoDelDiscipline` — Controlled Delay: drops/marks at *dequeue*
  based on packet sojourn time, per the CoDel control law
  (``interval / sqrt(count)``). No randomness at all.

Either discipline can run in ECN mode (``ecn=True``): instead of
dropping, it asks the link to rewrite an ECT packet's codepoint to CE
(mark-instead-of-drop); non-ECT packets are still dropped. The link owns
the actual drop/mark bookkeeping — a discipline only returns a verdict.

Verdict protocol (consumed by ``Link``):

* ``on_enqueue(queue_len, queue_bytes, packet, now)`` — called for every
  accepted arrival *before* it joins the queue; returns ``PASS``,
  ``DROP``, or ``MARK``.
* ``on_dequeue(sojourn_s, now)`` — called when a packet is promoted into
  service; same verdicts (a ``DROP`` here removes the packet before it
  ever serializes).

Everything is default-off: a link with no discipline installed runs the
exact drop-tail fast path the seed shipped.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.net.packet import Packet

__all__ = ["PASS", "DROP", "MARK", "AqmDiscipline", "RedDiscipline",
           "CoDelDiscipline", "make_aqm"]

#: verdicts a discipline may return
PASS = 0
DROP = 1
MARK = 2


class AqmDiscipline:
    """Base discipline: pass everything (drop-tail behaviour)."""

    #: True when congestion should mark ECT packets instead of dropping
    ecn = False

    def bind(self, link) -> None:
        """Called once when installed on a link (RNG stream, name)."""

    def on_enqueue(self, queue_len: int, queue_bytes: int, packet: Packet,
                   now: float) -> int:
        return PASS

    def on_dequeue(self, sojourn_s: float, now: float) -> int:
        return PASS


class RedDiscipline(AqmDiscipline):
    """Random Early Detection over the *packet* queue length.

    The EWMA average queue tracks arrivals (with the standard idle-time
    correction: an empty queue decays the average by the packets that
    could have been serviced during the idle gap). Between ``min_th``
    and ``max_th`` the drop/mark probability ramps linearly to
    ``max_p``; at or above ``max_th`` every arrival is dropped/marked.
    """

    def __init__(self, min_th: float = 5.0, max_th: float = 15.0,
                 max_p: float = 0.1, weight: float = 0.2,
                 ecn: bool = False) -> None:
        if not 0 < min_th < max_th:
            raise ValueError("need 0 < min_th < max_th")
        if not 0.0 < max_p <= 1.0:
            raise ValueError("max_p must be in (0, 1]")
        if not 0.0 < weight <= 1.0:
            raise ValueError("weight must be in (0, 1]")
        self.min_th = min_th
        self.max_th = max_th
        self.max_p = max_p
        self.weight = weight
        self.ecn = ecn
        self.avg = 0.0
        self._rng = None
        self._idle_since: Optional[float] = 0.0
        self._service_rate_pps = 0.0

    def bind(self, link) -> None:
        self._rng = link.sim.rng(f"link-aqm:{link.name}")
        # idle decay needs a notion of "packets that could have left":
        # approximate with the link's rate over a nominal 1200 B packet
        if link.rate_bps != float("inf"):
            self._service_rate_pps = link.rate_bps / (1200.0 * 8.0)

    def on_enqueue(self, queue_len: int, queue_bytes: int, packet: Packet,
                   now: float) -> int:
        if queue_len == 0:
            if self._idle_since is None:
                self._idle_since = now
            idle = now - self._idle_since
            if idle > 0 and self._service_rate_pps > 0:
                self.avg *= (1.0 - self.weight) ** (idle
                                                    * self._service_rate_pps)
        else:
            self._idle_since = None
        self.avg += self.weight * (queue_len - self.avg)
        self._idle_since = now if queue_len == 0 else None
        if self.avg < self.min_th:
            return PASS
        congest = MARK if self.ecn else DROP
        if self.avg >= self.max_th:
            return congest
        p = self.max_p * (self.avg - self.min_th) / (self.max_th - self.min_th)
        if float(self._rng.random()) < p:
            return congest
        return PASS


class CoDelDiscipline(AqmDiscipline):
    """Controlled Delay: sojourn-time AQM, deterministic on the sim clock.

    Standard state machine (RFC 8289): once sojourn stays above
    ``target_s`` for a full ``interval_s``, enter the dropping state and
    drop/mark at ``interval / sqrt(count)`` spacing until sojourn falls
    below target.
    """

    def __init__(self, target_s: float = 0.005, interval_s: float = 0.1,
                 ecn: bool = False) -> None:
        if target_s <= 0 or interval_s <= 0:
            raise ValueError("target and interval must be positive")
        self.target_s = target_s
        self.interval_s = interval_s
        self.ecn = ecn
        self.count = 0
        self.dropping = False
        self._first_above: Optional[float] = None
        self._drop_next = 0.0

    def on_dequeue(self, sojourn_s: float, now: float) -> int:
        if sojourn_s < self.target_s:
            self._first_above = None
            self.dropping = False
            return PASS
        if not self.dropping:
            if self._first_above is None:
                self._first_above = now + self.interval_s
                return PASS
            if now < self._first_above:
                return PASS
            # sojourn has been above target for a full interval: start
            self.dropping = True
            # control-law memory: recent dropping states resume near the
            # previous rate instead of from scratch
            self.count = max(1, self.count - 2) if self.count > 2 else 1
            self._drop_next = now + self.interval_s / math.sqrt(self.count)
            return MARK if self.ecn else DROP
        if now >= self._drop_next:
            self.count += 1
            self._drop_next += self.interval_s / math.sqrt(self.count)
            return MARK if self.ecn else DROP
        return PASS


def make_aqm(name: str, **kwargs) -> Optional[AqmDiscipline]:
    """Discipline by name: ``"drop-tail"``/``""`` -> None (no AQM),
    ``"red"`` -> :class:`RedDiscipline`, ``"codel"`` ->
    :class:`CoDelDiscipline`. Extra kwargs reach the constructor."""
    if name in ("", "drop-tail", "droptail", "none"):
        return None
    if name == "red":
        return RedDiscipline(**kwargs)
    if name == "codel":
        return CoDelDiscipline(**kwargs)
    raise ValueError(f"unknown AQM discipline {name!r}")
