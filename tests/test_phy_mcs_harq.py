"""Unit tests for the rate tables and HARQ model."""

import pytest

from repro.phy import (
    LTE_CQI_TABLE,
    WIFI_MCS_TABLE,
    HarqProcess,
    harq_goodput_factor,
    lte_efficiency_for_sinr,
    select_lte_cqi,
    select_wifi_mcs,
    wifi_rate_for_snr,
)
from repro.phy.harq import block_error_rate


# -- rate tables ----------------------------------------------------------------

def test_lte_table_monotone():
    effs = [e.efficiency_bps_hz for e in LTE_CQI_TABLE]
    thresholds = [e.min_sinr_db for e in LTE_CQI_TABLE]
    assert effs == sorted(effs)
    assert thresholds == sorted(thresholds)
    assert len(LTE_CQI_TABLE) == 15


def test_wifi_table_monotone():
    effs = [e.efficiency_bps_hz for e in WIFI_MCS_TABLE]
    assert effs == sorted(effs)
    assert len(WIFI_MCS_TABLE) == 8


def test_lte_reaches_lower_sinr_than_wifi():
    """The E4 structural fact: LTE CQI1 works ~9 dB below WiFi MCS0."""
    assert LTE_CQI_TABLE[0].min_sinr_db < WIFI_MCS_TABLE[0].min_sinr_db - 5.0


def test_select_lte_cqi_at_thresholds():
    assert select_lte_cqi(-6.7).index == 1
    assert select_lte_cqi(22.7).index == 15
    assert select_lte_cqi(100).index == 15
    assert select_lte_cqi(-10) is None


def test_select_lte_cqi_between_thresholds():
    entry = select_lte_cqi(9.0)  # between CQI8 (8.1) and CQI9 (10.3)
    assert entry.index == 8


def test_select_wifi_mcs():
    assert select_wifi_mcs(1.9) is None
    assert select_wifi_mcs(2.0).index == 0
    assert select_wifi_mcs(30).index == 7


def test_efficiency_zero_below_floor():
    assert lte_efficiency_for_sinr(-20) == 0.0
    assert wifi_rate_for_snr(-5) == 0.0


def test_wifi_rate_scales_with_bandwidth():
    assert wifi_rate_for_snr(30, 20e6) == pytest.approx(65e6)
    assert wifi_rate_for_snr(30, 40e6) == pytest.approx(130e6)


# -- BLER / HARQ ------------------------------------------------------------------

def test_bler_ten_percent_at_threshold():
    assert block_error_rate(10.0, 10.0) == pytest.approx(0.10, abs=1e-6)


def test_bler_monotone_in_sinr():
    blers = [block_error_rate(s, 0.0) for s in range(-10, 11)]
    assert all(a >= b for a, b in zip(blers, blers[1:]))
    assert blers[0] > 0.99
    assert blers[-1] < 1e-4


def test_harq_factor_near_one_at_good_sinr():
    assert harq_goodput_factor(20.0, 0.0) == pytest.approx(1.0, abs=0.01)


def test_harq_combining_beats_plain_arq_below_threshold():
    """§3.2: HARQ increases throughput under weak signal conditions."""
    # At 2 dB shortfall combining nearly doubles goodput; by 4-6 dB the
    # plain-ARQ link has collapsed while HARQ still delivers ~1/3.
    assert (harq_goodput_factor(-2, 0.0, combining=True)
            > 1.5 * harq_goodput_factor(-2, 0.0, combining=False))
    for shortfall in (4, 6):
        with_harq = harq_goodput_factor(-shortfall, 0.0, combining=True)
        plain = harq_goodput_factor(-shortfall, 0.0, combining=False)
        assert with_harq > 10 * plain


def test_harq_factor_bounded():
    for sinr in (-20, -5, 0, 5, 20):
        f = harq_goodput_factor(sinr, 0.0)
        assert 0.0 <= f <= 1.0


def test_harq_more_retx_helps_weak_links():
    weak = -4.0
    assert (harq_goodput_factor(weak, 0.0, max_retx=3)
            > harq_goodput_factor(weak, 0.0, max_retx=0))


def test_harq_factor_rejects_negative_retx():
    with pytest.raises(ValueError):
        harq_goodput_factor(0, 0, max_retx=-1)


# -- HarqProcess state machine ------------------------------------------------

def test_process_succeeds_on_good_draw():
    p = HarqProcess(process_id=0)
    assert p.attempt(raw_sinr_db=20, mcs_threshold_db=0, uniform_draw=0.5)
    assert p.delivered and p.finished


def test_process_combining_gain_accumulates():
    p = HarqProcess(process_id=1)
    assert p.effective_sinr_db(0.0) == 0.0
    p.attempt(0.0, 10.0, uniform_draw=0.0)  # guaranteed failure draw
    assert p.effective_sinr_db(0.0) == 3.0
    p.attempt(0.0, 10.0, uniform_draw=0.0)
    assert p.effective_sinr_db(0.0) == 6.0


def test_process_exhausts_after_max_retx():
    p = HarqProcess(process_id=2, max_retx=2)
    for _ in range(3):  # initial + 2 retx
        p.attempt(-30, 10.0, uniform_draw=0.0)
    assert p.exhausted and not p.delivered
    with pytest.raises(RuntimeError):
        p.attempt(-30, 10.0, 0.0)


def test_process_reset_recycles():
    p = HarqProcess(process_id=3, max_retx=0)
    p.attempt(-30, 10, 0.0)
    assert p.finished
    p.reset()
    assert not p.finished and p.attempts == 0


def test_process_no_combining_mode():
    p = HarqProcess(process_id=4, combining=False)
    p.attempt(0.0, 10.0, uniform_draw=0.0)
    assert p.effective_sinr_db(0.0) == 0.0
