"""Provisioning advisor (§7 future work).

"One area is investigating how tools can support users in making
provisioning decisions beneficial to the health of the entire ecosystem.
We are interested in how both human-in-the-loop and automated systems
can help avoid the degradation of WiFi typical in chaotic deployments."

The advisor scores candidate AP sites against the registry's picture of
the incumbents: how much *new* area a site would cover, how many
incumbents it would force into its contention domain (coordination
burden), and whether turning its power down would decouple it. The
score rewards coverage the ecosystem lacks and penalizes crowding —
the anti-chaos objective in one number.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.geo.points import Point
from repro.phy.bands import Band
from repro.spectrum.grants import ApRecord, contention_radius_m, in_contention


@dataclass(frozen=True)
class SiteAssessment:
    """The advisor's verdict on one candidate site.

    Attributes:
        position: the candidate location.
        eirp_dbm: the evaluated transmit EIRP.
        new_coverage_km2: area the candidate would serve that no
            incumbent currently covers (Monte-Carlo estimate).
        overlap_fraction: share of the candidate's own footprint already
            served by incumbents.
        new_peers: incumbents pulled into the candidate's contention
            domain (each one is ongoing coordination work).
        score: the ranking figure (higher = better for the ecosystem).
    """

    position: Point
    eirp_dbm: float
    new_coverage_km2: float
    overlap_fraction: float
    new_peers: int
    score: float


#: service radius as a fraction of the interference footprint: the area a
#: site actually serves well is much smaller than the area it pollutes.
SERVICE_RADIUS_FACTOR = 0.25
#: score penalty per incumbent forced into coordination, as a fraction of
#: the candidate's own service disk — crowding a big footprint costs more.
PEER_PENALTY_FRACTION = 0.05


class ProvisioningAdvisor:
    """Scores and ranks candidate sites against registry incumbents."""

    def __init__(self, band: Band, incumbents: Sequence[ApRecord],
                 seed: int = 0, mc_samples: int = 2000) -> None:
        if mc_samples < 100:
            raise ValueError("need at least 100 Monte-Carlo samples")
        self.band = band
        self.incumbents = list(incumbents)
        self._rng = np.random.default_rng(seed)
        self.mc_samples = mc_samples

    def _service_radius_m(self, eirp_dbm: float) -> float:
        return SERVICE_RADIUS_FACTOR * contention_radius_m(self.band,
                                                           eirp_dbm)

    def _covered_by_incumbent(self, point: Point) -> bool:
        for record in self.incumbents:
            radius = self._service_radius_m(record.eirp_dbm)
            if record.position.distance_to(point) <= radius:
                return True
        return False

    def assess(self, position: Point, eirp_dbm: float) -> SiteAssessment:
        """Evaluate one (position, EIRP) candidate."""
        radius = self._service_radius_m(eirp_dbm)
        # Monte-Carlo the candidate's service disk against incumbents
        rr = radius * np.sqrt(self._rng.random(self.mc_samples))
        theta = self._rng.random(self.mc_samples) * 2 * math.pi
        fresh = 0
        for r, t in zip(rr, theta):
            sample = Point(position.x + r * math.cos(t),
                           position.y + r * math.sin(t))
            if not self._covered_by_incumbent(sample):
                fresh += 1
        disk_km2 = math.pi * (radius / 1000.0) ** 2
        new_km2 = disk_km2 * fresh / self.mc_samples
        overlap = 1.0 - fresh / self.mc_samples

        candidate = ApRecord("candidate", position, self.band, eirp_dbm)
        peers = sum(1 for record in self.incumbents
                    if in_contention(candidate, record))
        score = new_km2 - PEER_PENALTY_FRACTION * disk_km2 * peers
        return SiteAssessment(position=position, eirp_dbm=eirp_dbm,
                              new_coverage_km2=new_km2,
                              overlap_fraction=overlap,
                              new_peers=peers, score=score)

    def rank(self, candidates: Sequence[Point],
             eirp_dbm: float) -> List[SiteAssessment]:
        """Assess every candidate; best ecosystem score first."""
        if not candidates:
            raise ValueError("no candidate sites given")
        assessments = [self.assess(p, eirp_dbm) for p in candidates]
        return sorted(assessments, key=lambda a: -a.score)

    def recommend_eirp(self, position: Point,
                       eirp_options_dbm: Sequence[float]) -> SiteAssessment:
        """Among power levels at one site, pick the best score.

        This is the "turn it down" advice: past the point where extra
        EIRP only adds overlap and peers, less power scores higher.
        """
        if not eirp_options_dbm:
            raise ValueError("no EIRP options given")
        return max((self.assess(position, e) for e in eirp_options_dbm),
                   key=lambda a: a.score)
