"""E3 — §3.2 "Spectrum Bands": coverage and range per band.

One AP per band at realistic regulatory power; one UE swept outward.
Reported per distance: downlink SNR, achievable rate, and whether the
MAC's timing limits still allow operation (WiFi's ACK window dies near
2.7 km regardless of SNR; LTE's timing advance reaches 100 km). The
paper's claim is the ordering: band 31 ≥ band 5 ≫ mid-band LTE ≫ WiFi.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, List, Optional, Tuple

from repro.geo.points import Point
from repro.mac.timing import max_range_supported_m
from repro.metrics.tables import ResultTable
from repro.phy.bands import Band, get_band
from repro.phy.linkbudget import LinkBudget, Radio
from repro.phy.mcs import lte_efficiency_for_sinr, wifi_rate_for_snr
from repro.phy.propagation import model_for_frequency

#: (band key, is_lte, AP tx power dBm, AP antenna gain dBi)
BAND_SETUPS: List[Tuple[str, bool, float, float]] = [
    ("lte31", True, 43.0, 15.0),
    ("lte5", True, 43.0, 15.0),
    ("lte3", True, 43.0, 15.0),
    ("lte48cbrs", True, 30.0, 15.0),
    ("wifi2g4", False, 23.0, 13.0),
    ("wifi5g", False, 20.0, 13.0),
]

DISTANCES_M = [250, 500, 1000, 2000, 4000, 8000, 16000, 30000]


def _rate_bps(band: Band, is_lte: bool, snr_db: float) -> float:
    if is_lte:
        return lte_efficiency_for_sinr(snr_db) * band.bandwidth_hz
    return wifi_rate_for_snr(snr_db, band.bandwidth_hz)


def _band_setup(key: str, tx_dbm: float,
                gain_dbi: float) -> Tuple[Band, LinkBudget, Radio, Radio]:
    """One band's geometry: budget, AP radio, and the swept-UE template."""
    band = get_band(key)
    budget = LinkBudget(model_for_frequency(band.dl_mhz),
                        band.dl_mhz, band.bandwidth_hz)
    ap = Radio(Point(0, 0), tx_power_dbm=tx_dbm, antenna_gain_dbi=gain_dbi,
               height_m=30.0)
    ue = Radio(Point(0, 0), tx_power_dbm=23, height_m=1.5)
    return band, budget, ap, ue


def run(distances_m: Optional[List[float]] = None) -> ResultTable:
    """Downlink rate vs distance per band; 0 after the MAC range limit.

    The whole distance grid is one vectorized link-budget evaluation per
    band (:meth:`LinkBudget.snr_db_grid`) instead of a per-point scalar
    loop — the PHY fast path the microbenchmarks pin to the scalar model.
    """
    distances = distances_m or DISTANCES_M
    table = ResultTable(
        "E3: downlink rate (Mbps) vs distance per band",
        ["band", "freq_mhz", "mac_limit_km"] +
        [f"d{int(d)}m" for d in distances])
    for key, is_lte, tx_dbm, gain in BAND_SETUPS:
        band, budget, ap, ue = _band_setup(key, tx_dbm, gain)
        snrs = budget.snr_db_grid(ap, ue, distances)
        mac_limit = max_range_supported_m("lte" if is_lte else "wifi")
        row: Dict[str, object] = {
            "band": key, "freq_mhz": band.dl_mhz,
            "mac_limit_km": mac_limit / 1000.0}
        for d, snr in zip(distances, snrs):
            rate = _rate_bps(band, is_lte, float(snr)) if d <= mac_limit else 0.0
            row[f"d{int(d)}m"] = rate / 1e6
        table.add_row(**row)
    return table


@lru_cache(maxsize=64)
def _link_range_m(key: str, is_lte: bool, tx_dbm: float,
                  gain_dbi: float) -> float:
    """Bisect the pure link-budget range (no MAC limit), memoized.

    Both the headline and the summary table need this number; the cache
    (plus the budget's distance memo underneath) makes the second ask
    free instead of re-running the 60-step bisection.
    """
    band, budget, ap, ue = _band_setup(key, tx_dbm, gain_dbi)
    lo, hi = 50.0, 150_000.0
    for _ in range(60):
        mid = (lo + hi) / 2
        snr = float(budget.snr_db_grid(ap, ue, [mid])[0])
        if _rate_bps(band, is_lte, snr) > 0:
            lo = mid
        else:
            hi = mid
    return lo


def max_usable_range(key: str, is_lte: bool, tx_dbm: float,
                     gain_dbi: float) -> float:
    """Bisect the edge: min(link-budget range, MAC timing range)."""
    mac_limit = max_range_supported_m("lte" if is_lte else "wifi")
    return min(_link_range_m(key, is_lte, tx_dbm, gain_dbi), mac_limit)


def range_summary() -> ResultTable:
    """One row per band: the usable-range headline."""
    table = ResultTable(
        "E3 summary: maximum usable range per band",
        ["band", "link_range_km", "mac_limit_km", "usable_km",
         "area_km2"])
    import math

    for key, is_lte, tx_dbm, gain in BAND_SETUPS:
        link_range = _link_range_m(key, is_lte, tx_dbm, gain)
        usable = max_usable_range(key, is_lte, tx_dbm, gain)
        mac_limit = max_range_supported_m("lte" if is_lte else "wifi")
        table.add_row(band=key, link_range_km=link_range / 1000.0,
                      mac_limit_km=mac_limit / 1000.0,
                      usable_km=usable / 1000.0,
                      area_km2=math.pi * (usable / 1000.0) ** 2)
    return table
