"""Simulation-aware observability: metrics, spans, profiling, export.

Four parts (see OBSERVABILITY.md for conventions):

* :mod:`repro.telemetry.registry` — named, labelled counters / gauges /
  histograms, hierarchical by subsystem, cheap enough to stay on;
* :mod:`repro.telemetry.spans` — causal spans on the simulated clock for
  multi-step procedures (attach, handover, paging, lease renewal);
* :mod:`repro.telemetry.profiler` — wall-clock attribution per callback
  site over the simulator heap loop (opt-in);
* :mod:`repro.telemetry.exporters` — JSONL / CSV / metrics-text /
  terminal-table output, wired into ``python -m repro`` via
  ``--metrics-out``, ``--trace-out``, and ``--profile``.

Every :class:`~repro.simcore.simulator.Simulator` owns a
:class:`Telemetry` (``sim.metrics``, ``sim.span(...)``); the
:data:`~repro.telemetry.hub.HUB` collects across all simulators an
experiment builds.
"""

from repro.telemetry.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    P2Quantile,
)
from repro.telemetry.spans import Span, SpanTracker
from repro.telemetry.profiler import RunProfiler
from repro.telemetry.hub import HUB, RunTelemetry, TelemetryHub, ambient_registry

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "P2Quantile",
    "Span",
    "SpanTracker",
    "RunProfiler",
    "HUB",
    "RunTelemetry",
    "TelemetryHub",
    "ambient_registry",
    "Telemetry",
]


class Telemetry:
    """Per-simulator telemetry bundle: one registry + one span tracker."""

    __slots__ = ("metrics", "spans")

    def __init__(self, clock) -> None:
        self.metrics = MetricsRegistry()
        self.spans = SpanTracker(clock, metrics=self.metrics)
