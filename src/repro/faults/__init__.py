"""Fault injection: deterministic, schedulable failure scenarios (E16).

The subsystem that makes the paper's robustness claims *measurable*:
link cuts and flaps, probabilistic loss, AP crash/restart, core and
registry outages — all named, logged, and reproducible from
``(seed, schedule)``. :mod:`repro.faults.scenarios` composes the
primitives into named chaos scenarios (flapping backhaul, cascading
stub crashes, SAS outage during lease renewal) with deterministic
schedules and known recovery envelopes; see ROBUSTNESS.md for the
catalog.
"""

from repro.faults.injector import FaultInjector, FaultRecord
from repro.faults.scenarios import (
    SCENARIOS,
    ChaosScenario,
    ScenarioPlan,
    compose_scenario,
    get_scenario,
    list_scenarios,
    prepare_scenario,
)

__all__ = [
    "SCENARIOS",
    "ChaosScenario",
    "FaultInjector",
    "FaultRecord",
    "ScenarioPlan",
    "compose_scenario",
    "get_scenario",
    "list_scenarios",
    "prepare_scenario",
]
