"""Peer-to-peer coordination between dLTE access points (§4.3).

"dLTE access points establish connections with their neighboring APs via
a standardized protocol over the Internet backhaul. AP owners can elect
to either run their access points in a default fair sharing mode, or
fuse resources with their neighbors in a cooperative mode."

* :mod:`x2` — the X2-AP message vocabulary plus the paper's dLTE
  extensions (operating mode, peer status), running over Internet-latency
  channels with byte accounting (E9's coordination-bandwidth numbers).
* :mod:`fair_sharing` — the default mode: a distributed protocol that
  converges on a fair time-frequency split of the shared grid.
* :mod:`cooperative` — the opt-in mode: best-AP client assignment,
  demand-weighted resource fusion, QoS-aware joint scheduling, and
  coordinated handoff.
* :mod:`icic` — classic frequency-reuse partitions, used as a
  coordination-quality reference.
* :mod:`mesh` — §7's future-work extension: multi-hop backhaul sharing
  between neighbouring APs for redundancy and aggregation (E11).
"""

from repro.coordination.x2 import (
    DlteModeInfo,
    HandoverRequest,
    HandoverRequestAck,
    LoadInformation,
    PrbClaim,
    X2Endpoint,
)
from repro.coordination.fair_sharing import FairSharingCoordinator
from repro.coordination.cooperative import CooperativeCluster
from repro.coordination.icic import reuse_partition
from repro.coordination.mesh import BackhaulMesh
from repro.coordination.peer_monitor import PeerMonitor

__all__ = [
    "X2Endpoint",
    "LoadInformation",
    "HandoverRequest",
    "HandoverRequestAck",
    "DlteModeInfo",
    "PrbClaim",
    "FairSharingCoordinator",
    "CooperativeCluster",
    "reuse_partition",
    "BackhaulMesh",
    "PeerMonitor",
]
