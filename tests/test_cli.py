"""Tests for the ``python -m repro`` experiment runner."""

import csv
import json
import re

import pytest

from repro.__main__ import main


def test_list_exits_clean(capsys):
    assert main(["--list"]) == 0
    out = capsys.readouterr().out
    for exp_id in ("T1", "F1", "E3", "E14"):
        assert exp_id in out


def test_run_one_experiment(capsys):
    assert main(["T1"]) == 0
    out = capsys.readouterr().out
    assert "Table 1" in out
    assert "dLTE" in out
    assert "[T1 done" in out


def test_run_multiple(capsys):
    assert main(["E12", "E13"]) == 0
    out = capsys.readouterr().out
    assert "E12" in out and "E13" in out


def test_unknown_id_errors(capsys):
    assert main(["E99"]) == 2
    assert "unknown experiment" in capsys.readouterr().err


def test_no_args_prints_help(capsys):
    assert main([]) == 2
    assert "usage" in capsys.readouterr().out.lower()


# -- telemetry flags --------------------------------------------------------


def _strip_wall_times(text):
    """Normalize the only nondeterministic output: wall-clock stamps."""
    return re.sub(r"done in [0-9.]+ s", "done in X s", text)


def test_metrics_out_csv_well_formed(tmp_path, capsys):
    path = tmp_path / "metrics.csv"
    assert main(["E16", "--metrics-out", str(path)]) == 0
    out = capsys.readouterr().out
    assert "telemetry summary" in out
    with open(path, newline="") as handle:
        rows = list(csv.DictReader(handle))
    assert rows, "metrics snapshot must not be empty"
    assert set(rows[0]) >= {"sim", "kind", "name", "labels", "value"}
    kinds = {row["kind"] for row in rows}
    assert kinds <= {"counter", "gauge", "histogram"}
    names = {row["name"] for row in rows}
    subsystems = {name.split(".")[0] for name in names}
    assert len(subsystems) >= 6  # acceptance: >= 6 instrumented subsystems
    for row in rows:
        if row["kind"] == "histogram":  # histograms use count/sum instead
            assert float(row["count"]) >= 0 and row["value"] == ""
        else:
            float(row["value"])


def test_metrics_out_text_format(tmp_path, capsys):
    path = tmp_path / "metrics.txt"
    assert main(["E16", "--metrics-out", str(path)]) == 0
    text = path.read_text()
    assert re.search(r'^epc_attach_completed\{.*\} \d', text, re.M)
    assert re.search(r'_count\{.*\} \d', text)  # histogram series
    assert 'quantile="0.95"' in text


def test_trace_out_jsonl_well_formed(tmp_path, capsys):
    path = tmp_path / "events.jsonl"
    assert main(["E16", "--trace-out", str(path)]) == 0
    records = [json.loads(line) for line in path.read_text().splitlines()]
    assert records
    assert {record["type"] for record in records} <= {"trace", "span"}
    spans = [r for r in records if r["type"] == "span"]
    assert any(s["name"] == "nas.attach" for s in spans)
    for span in spans:
        assert span["end_s"] >= span["start_s"]


def test_profile_reports_hot_paths(capsys):
    assert main(["E16", "--profile"]) == 0
    out = capsys.readouterr().out
    assert "events/s" in out
    assert "callback_site" in out  # hot-path table header
    assert "us_per_call" in out


def test_multi_experiment_suffixes_artifacts(tmp_path, capsys):
    path = tmp_path / "m.csv"
    assert main(["E12", "E13", "--metrics-out", str(path)]) == 0
    assert (tmp_path / "m-E12.csv").exists()
    assert (tmp_path / "m-E13.csv").exists()
    assert not path.exists()


def test_telemetry_off_output_unchanged(tmp_path, capsys):
    """Collecting metrics must not change the experiment tables."""
    assert main(["E16"]) == 0
    plain = _strip_wall_times(capsys.readouterr().out)
    assert main(["E16", "--metrics-out", str(tmp_path / "m.csv")]) == 0
    collected = _strip_wall_times(capsys.readouterr().out)
    # the telemetry-on output is the plain output plus appended
    # telemetry sections before the closing "done in" line
    plain_table = plain.split("[E16 done")[0]
    assert collected.startswith(plain_table)


# -- robustness flags (PR 4) ------------------------------------------------


def test_flag_validation_errors():
    with pytest.raises(SystemExit):
        main(["E12", "--retries", "-1"])
    with pytest.raises(SystemExit):
        main(["E12", "--task-timeout", "0"])
    with pytest.raises(SystemExit):
        main(["E12", "--jobs", "0"])


def test_resume_refuses_telemetry_flags(tmp_path):
    with pytest.raises(SystemExit):
        main(["E12", "--resume", str(tmp_path), "--profile"])
    with pytest.raises(SystemExit):
        main(["E12", "--resume", str(tmp_path),
              "--metrics-out", str(tmp_path / "m.csv")])


def test_unwritable_artifact_paths_fail_before_running(tmp_path, capsys):
    missing_dir = tmp_path / "no" / "such" / "dir"
    for flag in ("--metrics-out", "--trace-out", "--profile-out"):
        with pytest.raises(SystemExit):
            main(["E12", flag, str(missing_dir / "out.dat")])
        err = capsys.readouterr().err
        assert flag in err and "does not exist" in err
    # a directory where a file is expected fails too
    with pytest.raises(SystemExit):
        main(["E12", "--metrics-out", str(tmp_path)])
    # fail-fast means E12 never printed its table
    assert "deployment" not in capsys.readouterr().out


def test_profile_out_writes_folded_stacks(tmp_path, capsys):
    folded = tmp_path / "e13.folded"
    assert main(["E13", "--profile-out", str(folded)]) == 0
    out = capsys.readouterr().out
    assert "folded:" in out
    lines = folded.read_text().splitlines()
    assert lines
    for line in lines:
        stack, _, value = line.rpartition(" ")
        assert stack and int(value) > 0
    assert any(line.startswith("wall;") for line in lines)


def test_exp_arg_validation(tmp_path):
    with pytest.raises(SystemExit):  # needs exactly one experiment
        main(["E12", "E13", "--exp-arg", "invariants=True"])
    with pytest.raises(SystemExit):  # malformed KEY=VAL
        main(["E12", "--exp-arg", "justakey"])
    with pytest.raises(SystemExit):  # incompatible with --resume
        main(["E16", "--exp-arg", "invariants=True",
              "--resume", str(tmp_path / "ckpt")])


def test_exp_arg_unknown_keyword_fails_loudly():
    with pytest.raises(TypeError):
        main(["E12", "--exp-arg", "no_such_kwarg=1"])


def test_supervised_run_output_matches_serial(capsys):
    assert main(["E12", "E13"]) == 0
    serial = _strip_wall_times(capsys.readouterr().out)
    assert main(["E12", "E13", "--jobs", "2", "--retries", "1",
                 "--task-timeout", "300"]) == 0
    supervised = _strip_wall_times(capsys.readouterr().out)
    assert supervised == serial


def test_resume_replays_byte_identical(tmp_path, capsys):
    run_dir = str(tmp_path / "ckpt")
    assert main(["E12", "E13"]) == 0
    reference = _strip_wall_times(capsys.readouterr().out)

    assert main(["E12", "E13", "--resume", run_dir]) == 0
    first = capsys.readouterr()
    assert _strip_wall_times(first.out) == reference

    # second run replays every experiment from the journal; the tables
    # are byte-identical and the resume notice goes to stderr only
    assert main(["E12", "E13", "--resume", run_dir]) == 0
    second = capsys.readouterr()
    assert _strip_wall_times(second.out) == reference
    assert "[resume: 2 experiment(s) replayed" in second.err


def test_chaos_scenario_exp_args_run_e16(capsys):
    assert main(["E16", "--exp-arg", "scenario=flapping-backhaul",
                 "--exp-arg", "invariants=True"]) == 0
    out = capsys.readouterr().out
    assert "flapping-backhaul" in out
    assert "min_reach" in out
