"""Unit tests for LTE PRB schedulers."""

import pytest

from repro.mac import (
    MaxCiScheduler,
    ProportionalFairScheduler,
    QosAwareScheduler,
    RoundRobinScheduler,
    SchedulableUser,
)


def _users(*sinrs, **kw):
    return [SchedulableUser(user_id=f"u{i}", sinr_db=s, **kw)
            for i, s in enumerate(sinrs)]


PRBS = frozenset(range(50))


def _granted(result):
    return {uid: len(prbs) for uid, prbs in result.items()}


def test_round_robin_even_split():
    sched = RoundRobinScheduler()
    result = sched.allocate(_users(10, 10, 10, 10, 10), PRBS)
    counts = _granted(result)
    assert sum(counts.values()) == 50
    assert all(c == 10 for c in counts.values())


def test_round_robin_rotates_start():
    sched = RoundRobinScheduler()
    first = sched.allocate(_users(10, 10, 10), frozenset(range(4)))
    second = sched.allocate(_users(10, 10, 10), frozenset(range(4)))
    # 4 PRBs over 3 users: the extra PRB should rotate between calls
    def extra_user(result):
        return max(result, key=lambda uid: len(result[uid]))
    assert extra_user(first) != extra_user(second)


def test_each_prb_assigned_once():
    for sched in (RoundRobinScheduler(), ProportionalFairScheduler(),
                  MaxCiScheduler(), QosAwareScheduler()):
        result = sched.allocate(_users(5, 10, 15), PRBS)
        all_prbs = [p for prbs in result.values() for p in prbs]
        assert len(all_prbs) == len(set(all_prbs))
        assert set(all_prbs) <= PRBS


def test_unreachable_users_get_nothing():
    sched = RoundRobinScheduler()
    users = _users(-30, 10)  # u0 below CQI1
    result = sched.allocate(users, PRBS)
    assert "u0" not in result
    assert len(result["u1"]) == 50


def test_zero_backlog_users_skipped():
    sched = RoundRobinScheduler()
    users = [SchedulableUser("idle", 20, backlog_bits=0),
             SchedulableUser("busy", 20)]
    result = sched.allocate(users, PRBS)
    assert "idle" not in result and len(result["busy"]) == 50


def test_empty_inputs():
    sched = ProportionalFairScheduler()
    assert sched.allocate([], PRBS) == {}
    assert sched.allocate(_users(10), frozenset()) == {}


def test_max_ci_takes_all():
    result = MaxCiScheduler().allocate(_users(3, 20, 10), PRBS)
    assert _granted(result) == {"u1": 50}


def test_pf_spreads_within_single_tti():
    result = ProportionalFairScheduler().allocate(_users(15, 15, 15, 15), PRBS)
    counts = _granted(result)
    assert len(counts) == 4
    assert max(counts.values()) - min(counts.values()) <= 2


def test_pf_long_run_fair_in_time_not_rate():
    """PF gives weaker users PRBs but not equal throughput."""
    sched = ProportionalFairScheduler()
    users = _users(0, 20)  # weak, strong
    tallies = {"u0": 0, "u1": 0}
    for _ in range(300):
        for uid, prbs in sched.allocate(users, PRBS).items():
            tallies[uid] += len(prbs)
    # both get meaningful airtime
    assert tallies["u0"] > 0.2 * tallies["u1"]
    # but the strong user ends with higher average rate
    assert sched.average_rate_bps("u1") > sched.average_rate_bps("u0")


def test_pf_average_rate_tracks_and_forgets():
    sched = ProportionalFairScheduler()
    users = _users(15)
    for _ in range(50):
        sched.allocate(users, PRBS)
    assert sched.average_rate_bps("u0") > 0
    sched.forget("u0")
    assert sched.average_rate_bps("u0") == 0.0


def test_qos_gbr_served_first():
    sched = QosAwareScheduler()
    users = [
        SchedulableUser("video", sinr_db=5, gbr_bps=2e6, priority=1),
        SchedulableUser("bulk", sinr_db=25),
    ]
    result = sched.allocate(users, PRBS)
    # video at 5 dB -> CQI6 eff 1.1758 -> ~212 bits/PRB; 2 Mbps needs
    # 2000 bits/TTI -> ~10 PRBs guaranteed despite bulk's better channel.
    assert len(result["video"]) >= 9
    assert len(result["bulk"]) >= 1


def test_qos_priority_order_between_gbr_users():
    sched = QosAwareScheduler()
    users = [
        SchedulableUser("low", sinr_db=0, gbr_bps=50e6, priority=5),
        SchedulableUser("high", sinr_db=0, gbr_bps=50e6, priority=1),
    ]
    # demands exceed the cell: the high-priority bearer should win more.
    result = sched.allocate(users, PRBS)
    assert len(result.get("high", ())) > len(result.get("low", ()))


def test_qos_without_gbr_reduces_to_pf():
    qos = QosAwareScheduler()
    pf = ProportionalFairScheduler()
    users = _users(10, 12, 14)
    assert _granted(qos.allocate(users, PRBS)) == _granted(pf.allocate(users, PRBS))
