"""Unit tests for deployment cost models and the provisioning advisor."""

import math

import pytest

from repro.deploy import (
    BomItem,
    DeploymentPlan,
    PAPUA_REFERENCE_BOM,
    ProvisioningAdvisor,
    carrier_femtocell_plan,
    coverage_area_km2,
    dlte_site_plan,
    wifi_site_plan,
)
from repro.geo import Point
from repro.phy import get_band
from repro.spectrum.grants import ApRecord

BAND5 = get_band("lte5")


# -- BoM / plans --------------------------------------------------------------

def test_bom_item_totals():
    item = BomItem("widget", 100.0, 3)
    assert item.total_usd == 300.0
    with pytest.raises(ValueError):
        BomItem("bad", -1.0)


def test_papua_reference_under_8000():
    assert sum(i.total_usd for i in PAPUA_REFERENCE_BOM) < 8000.0


def test_dlte_plan_matches_reference_total():
    assert dlte_site_plan(sectors=2).capex_usd == pytest.approx(
        sum(i.total_usd for i in PAPUA_REFERENCE_BOM))


def test_more_sectors_cost_more():
    assert dlte_site_plan(sectors=3).capex_usd > dlte_site_plan(2).capex_usd
    with pytest.raises(ValueError):
        dlte_site_plan(sectors=0)


def test_coverage_area():
    assert coverage_area_km2(1000.0) == pytest.approx(math.pi)
    with pytest.raises(ValueError):
        coverage_area_km2(-1)


def test_plan_economics_fields():
    plan = DeploymentPlan("x", [BomItem("a", 1000.0)], 2000.0,
                          recurring_usd_per_month=10.0)
    assert plan.capex_usd == 1000.0
    assert plan.coverage_km2 == pytest.approx(math.pi * 4)
    assert plan.km2_per_kusd == pytest.approx(math.pi * 4)
    assert plan.five_year_cost_usd() == 1000.0 + 600.0


def test_femtocell_recurring_dominates():
    plan = carrier_femtocell_plan(monthly_fee_usd=20.0)
    assert plan.five_year_cost_usd() > 4 * plan.capex_usd


def test_wifi_radius_capped_by_ack_timing():
    assert wifi_site_plan().coverage_radius_m <= 2700.0


# -- advisor ----------------------------------------------------------------------

def _incumbent(x, y=0.0, eirp=58.0):
    return ApRecord(f"inc@{x},{y}", Point(x, y), BAND5, eirp)


def test_greenfield_site_scores_high():
    advisor = ProvisioningAdvisor(BAND5, incumbents=[], seed=1)
    a = advisor.assess(Point(0, 0), eirp_dbm=58.0)
    assert a.overlap_fraction == 0.0
    assert a.new_peers == 0
    assert a.score == pytest.approx(a.new_coverage_km2)
    assert a.new_coverage_km2 > 100  # band-5 footprints are big


def test_colocated_site_scores_terribly():
    incumbent = _incumbent(0.0)
    advisor = ProvisioningAdvisor(BAND5, [incumbent], seed=1)
    a = advisor.assess(Point(500, 0), eirp_dbm=58.0)
    assert a.overlap_fraction > 0.9     # nearly everything double-covered
    assert a.new_peers == 1
    assert a.score < 0                  # the ecosystem loses


def test_rank_prefers_the_gap():
    incumbents = [_incumbent(0.0)]
    advisor = ProvisioningAdvisor(BAND5, incumbents, seed=1)
    near = Point(2_000, 0)
    far = Point(200_000, 0)   # beyond even band-5 contention coupling
    ranked = advisor.rank([near, far], eirp_dbm=58.0)
    assert ranked[0].position == far
    assert ranked[0].new_peers == 0
    assert ranked[-1].position == near


def test_recommend_eirp_turns_power_down_in_crowds():
    """Near an incumbent, the advisor prefers a power level that stays
    out of the incumbent's contention domain."""
    incumbents = [_incumbent(0.0, eirp=47.0)]
    advisor = ProvisioningAdvisor(BAND5, incumbents, seed=2)
    site = Point(35_000, 0)
    best = advisor.recommend_eirp(site, [30.0, 47.0, 58.0])
    # full power would couple with the incumbent; the pick avoids that
    full = advisor.assess(site, 58.0)
    assert full.new_peers >= 1
    assert best.new_peers <= full.new_peers
    assert best.score >= full.score


def test_advisor_validates():
    advisor = ProvisioningAdvisor(BAND5, [], seed=0)
    with pytest.raises(ValueError):
        advisor.rank([], 47.0)
    with pytest.raises(ValueError):
        advisor.recommend_eirp(Point(0, 0), [])
    with pytest.raises(ValueError):
        ProvisioningAdvisor(BAND5, [], mc_samples=10)


def test_assessments_deterministic_per_seed():
    incumbents = [_incumbent(0.0)]
    a = ProvisioningAdvisor(BAND5, incumbents, seed=5).assess(
        Point(10_000, 0), 47.0)
    b = ProvisioningAdvisor(BAND5, incumbents, seed=5).assess(
        Point(10_000, 0), 47.0)
    assert a == b
