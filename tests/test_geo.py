"""Unit tests for repro.geo (points and placements)."""

import math

import numpy as np
import pytest

from repro.geo import (
    Point,
    cluster_placement,
    distance_m,
    grid_placement,
    road_placement,
    uniform_disk_placement,
)


def test_distance_pythagorean():
    assert Point(0, 0).distance_to(Point(3, 4)) == 5.0


def test_distance_symmetric_and_zero():
    a, b = Point(1, 2), Point(-3, 7)
    assert a.distance_to(b) == b.distance_to(a)
    assert a.distance_to(a) == 0.0
    assert distance_m(a, b) == a.distance_to(b)


def test_bearing_cardinal_directions():
    origin = Point(0, 0)
    assert origin.bearing_to(Point(1, 0)) == 0.0
    assert origin.bearing_to(Point(0, 1)) == pytest.approx(math.pi / 2)
    assert origin.bearing_to(Point(-1, 0)) == pytest.approx(math.pi)


def test_offset():
    assert Point(1, 1).offset(2, -3) == Point(3, -2)


def test_toward_moves_correct_distance():
    p = Point(0, 0).toward(Point(10, 0), 4)
    assert p == Point(4, 0)


def test_toward_clamps_at_target():
    assert Point(0, 0).toward(Point(3, 0), 100) == Point(3, 0)


def test_toward_zero_distance_stays():
    p = Point(5, 5)
    assert p.toward(p, 10) == p


def test_point_unpacks():
    x, y = Point(2.5, -1.0)
    assert (x, y) == (2.5, -1.0)


def test_points_hashable_frozen():
    s = {Point(1, 2), Point(1, 2), Point(3, 4)}
    assert len(s) == 2
    with pytest.raises(Exception):
        Point(1, 2).x = 5


# -- placements --------------------------------------------------------------

def test_uniform_disk_within_radius():
    rng = np.random.default_rng(0)
    center = Point(100, -50)
    pts = uniform_disk_placement(rng, 500, 1000.0, center)
    assert len(pts) == 500
    assert all(center.distance_to(p) <= 1000.0 for p in pts)


def test_uniform_disk_is_area_uniform():
    # Half the points should fall within r/sqrt(2) of the center.
    rng = np.random.default_rng(1)
    pts = uniform_disk_placement(rng, 4000, 1000.0)
    inner = sum(1 for p in pts if Point(0, 0).distance_to(p) <= 1000 / math.sqrt(2))
    assert 0.45 < inner / 4000 < 0.55


def test_uniform_disk_validates():
    rng = np.random.default_rng(0)
    with pytest.raises(ValueError):
        uniform_disk_placement(rng, -1, 100)
    with pytest.raises(ValueError):
        uniform_disk_placement(rng, 5, 0)


def test_grid_placement_shape():
    pts = grid_placement(3, 2, 10.0, origin=Point(1, 1))
    assert len(pts) == 6
    assert pts[0] == Point(1, 1)
    assert pts[1] == Point(11, 1)       # row-major
    assert pts[3] == Point(1, 11)


def test_grid_placement_validates():
    with pytest.raises(ValueError):
        grid_placement(0, 3, 10)


def test_road_placement_spacing():
    pts = road_placement(4, 500.0, y_m=2.0, start_x_m=100.0)
    assert pts == [Point(100, 2), Point(600, 2), Point(1100, 2), Point(1600, 2)]


def test_cluster_placement_counts_and_spread():
    rng = np.random.default_rng(2)
    centers = [Point(0, 0), Point(10_000, 0)]
    pts = cluster_placement(rng, centers, per_cluster=100, spread_m=50.0)
    assert len(pts) == 200
    # each point should be near one of the centers
    for p in pts:
        assert min(c.distance_to(p) for c in centers) < 500.0
