"""The telemetry hub: collect everything one experiment run produced.

Experiments build their own simulators internally (E16 builds two, one
per architecture arm), so the CLI cannot thread a registry through every
``run()`` signature. Instead, every :class:`Simulator` announces itself
to the process-wide :data:`HUB` at construction. While no run is active
that is a single flag check; when the CLI (or a test) brackets an
experiment with :meth:`TelemetryHub.start_run` / :meth:`finish_run`, the
hub keeps a reference to each simulator born in between, optionally
arms a profiler and a tracer on each, and at the end hands back one
:class:`RunTelemetry` with every registry, span tracker, tracer, and a
merged profile.

Components that have no simulator (a :class:`Cell` driven by explicit
TTI calls, a :class:`CsmaSimulation` slot loop) record into the
*ambient* registry — the hub's shared registry during a run, a
process-global default otherwise — unless handed an explicit one.
"""

from __future__ import annotations

from typing import Any, List, Optional, Tuple

from repro.telemetry.lifecycle import RunnerLifecycle
from repro.telemetry.profiler import RunProfiler
from repro.telemetry.registry import MetricsRegistry

__all__ = ["HUB", "TelemetryHub", "RunTelemetry", "WorkerSimTelemetry",
           "ambient_registry"]

#: Fallback registry for sim-less components outside any hub run.
_DEFAULT_REGISTRY = MetricsRegistry()


class RunTelemetry:
    """Everything collected between start_run() and finish_run()."""

    def __init__(self, registries: List[Tuple[str, MetricsRegistry]],
                 span_trackers: List[Tuple[str, Any]],
                 tracers: List[Tuple[str, Any]],
                 profiler: Optional[RunProfiler],
                 heap_high_water: int = 0,
                 agent_peak_queue: int = 0,
                 agents_shed: int = 0,
                 link_peak_queue: int = 0,
                 ecn_marks: int = 0,
                 lifecycle: Optional[RunnerLifecycle] = None,
                 shard_stats: Optional[List[dict]] = None) -> None:
        self.registries = registries
        self.span_trackers = span_trackers
        self.tracers = tracers
        self.profiler = profiler
        #: runner-lifecycle log of the run's parallel maps (always
        #: present; empty — no maps — for serial runs)
        self.lifecycle = lifecycle if lifecycle is not None \
            else RunnerLifecycle()
        #: largest run-queue footprint any collected simulator reached
        #: (max over sims of ``Simulator.heap_high_water``)
        self.heap_high_water = heap_high_water
        #: deepest control-agent queue across every collected simulator
        #: (max over sims of ``Simulator.agent_peak_queue``)
        self.agent_peak_queue = agent_peak_queue
        #: control messages shed by overload protection, run-wide
        #: (sum over sims of ``Simulator.agents_shed``)
        self.agents_shed = agents_shed
        #: deepest link egress queue across every collected simulator
        #: (max over sims of ``Simulator.link_peak_queue``)
        self.link_peak_queue = link_peak_queue
        #: ECN CE-marks applied by AQM, run-wide
        #: (sum over sims of ``Simulator.ecn_marks``)
        self.ecn_marks = ecn_marks
        #: per-shard stats dicts noted by ShardedSimulator runs (events,
        #: heap_hwm, windows, exec_s, barrier_wait_s per shard); empty
        #: for unsharded runs
        self.shard_stats = shard_stats if shard_stats is not None else []

    def metrics_rows(self) -> List[dict]:
        """Tagged snapshot rows across every collected registry."""
        from repro.telemetry.exporters import tagged_rows
        return tagged_rows(self.registries)

    def subsystems(self) -> List[str]:
        """Distinct metric subsystems seen anywhere in the run."""
        seen = set()
        for _tag, registry in self.registries:
            seen.update(registry.subsystems())
        return sorted(seen)


class WorkerSimTelemetry:
    """Picklable stand-in for one simulator collected in a worker process.

    Exposes exactly the attributes :meth:`TelemetryHub.finish_run` reads
    off a live :class:`~repro.simcore.simulator.Simulator` — ``telemetry``
    (metrics + spans), ``tracer``, ``profiler`` — so absorbed worker
    simulators and parent-process simulators merge identically.
    """

    __slots__ = ("telemetry", "tracer", "profiler", "heap_high_water",
                 "agent_peak_queue", "agents_shed", "link_peak_queue",
                 "ecn_marks")

    def __init__(self, telemetry: Any, tracer: Any, profiler: Any,
                 heap_high_water: int = 0, agent_peak_queue: int = 0,
                 agents_shed: int = 0, link_peak_queue: int = 0,
                 ecn_marks: int = 0) -> None:
        self.telemetry = telemetry
        self.tracer = tracer
        self.profiler = profiler
        self.heap_high_water = heap_high_water
        self.agent_peak_queue = agent_peak_queue
        self.agents_shed = agents_shed
        self.link_peak_queue = link_peak_queue
        self.ecn_marks = ecn_marks


class TelemetryHub:
    """Process-wide collection point for experiment runs."""

    def __init__(self) -> None:
        self.active = False
        self._profile = False
        self._trace = False
        self._trace_capacity = 1_000_000
        self._sims: List[Any] = []
        self._shared = MetricsRegistry()
        self._worker_shared: List[MetricsRegistry] = []
        self._lifecycle: Optional[RunnerLifecycle] = None
        self._shard_stats: List[dict] = []

    @property
    def registry(self) -> MetricsRegistry:
        """The ambient registry for sim-less components during a run."""
        return self._shared

    @property
    def lifecycle(self) -> Optional[RunnerLifecycle]:
        """The active run's runner-lifecycle log (None outside a run).

        The parallel runners record fork/queue/exec/pickle/ship/merge
        timings here; serial paths never touch it.
        """
        return self._lifecycle if self.active else None

    @property
    def profiling(self) -> bool:
        """True when the active run arms a profiler on each simulator."""
        return self.active and self._profile

    @property
    def tracing(self) -> bool:
        """True when the active run arms a tracer on each simulator."""
        return self.active and self._trace

    # -- run lifecycle -----------------------------------------------------

    def start_run(self, profile: bool = False, trace: bool = False,
                  trace_capacity: int = 1_000_000) -> None:
        """Begin collecting; simulators built from now on are adopted."""
        if self.active:
            raise RuntimeError("a telemetry run is already active")
        self.active = True
        self._profile = profile
        self._trace = trace
        self._trace_capacity = trace_capacity
        self._sims = []
        self._shared = MetricsRegistry()
        self._worker_shared = []
        self._lifecycle = RunnerLifecycle()
        self._shard_stats = []

    def adopt(self, sim: Any) -> None:
        """Called by every Simulator constructor; no-op outside a run."""
        if not self.active:
            return
        self._sims.append(sim)
        if self._profile and sim.profiler is None:
            sim.profiler = RunProfiler()
        if self._trace and sim.tracer is None:
            from repro.simcore.trace import Tracer
            sim.tracer = Tracer(max_events=self._trace_capacity)

    def note_shards(self, stats: List[dict]) -> None:
        """Record per-shard stats from a ShardedSimulator; no-op outside
        a run. Called once per sharded run (an experiment with several
        arms notes once per arm)."""
        if self.active:
            self._shard_stats.extend(stats)

    def finish_run(self) -> RunTelemetry:
        """Stop collecting and return everything gathered."""
        if not self.active:
            raise RuntimeError("no telemetry run is active")
        self.active = False
        registries: List[Tuple[str, MetricsRegistry]] = []
        span_trackers: List[Tuple[str, Any]] = []
        tracers: List[Tuple[str, Any]] = []
        profiler: Optional[RunProfiler] = \
            RunProfiler() if self._profile else None
        heap_high_water = 0
        agent_peak_queue = 0
        agents_shed = 0
        link_peak_queue = 0
        ecn_marks = 0
        for index, sim in enumerate(self._sims):
            tag = f"s{index}"
            registries.append((tag, sim.telemetry.metrics))
            span_trackers.append((tag, sim.telemetry.spans))
            if sim.tracer is not None:
                tracers.append((tag, sim.tracer))
            if profiler is not None and sim.profiler is not None:
                profiler.merge(sim.profiler)
            hwm = getattr(sim, "heap_high_water", 0)
            if hwm > heap_high_water:
                heap_high_water = hwm
            peak = getattr(sim, "agent_peak_queue", 0)
            if peak > agent_peak_queue:
                agent_peak_queue = peak
            agents_shed += getattr(sim, "agents_shed", 0)
            lpeak = getattr(sim, "link_peak_queue", 0)
            if lpeak > link_peak_queue:
                link_peak_queue = lpeak
            ecn_marks += getattr(sim, "ecn_marks", 0)
        if len(self._shared):
            registries.append(("shared", self._shared))
        for index, registry in enumerate(self._worker_shared):
            registries.append((f"shared-w{index}", registry))
        lifecycle = self._lifecycle or RunnerLifecycle()
        if len(lifecycle.registry):
            # tagged "runner" so byte-identity checks can exclude the one
            # family that legitimately differs between serial and --jobs
            registries.append(("runner", lifecycle.registry))
        shard_stats = self._shard_stats
        self._sims = []
        self._worker_shared = []
        self._lifecycle = None
        self._shard_stats = []
        return RunTelemetry(registries, span_trackers, tracers, profiler,
                            heap_high_water, agent_peak_queue, agents_shed,
                            link_peak_queue, ecn_marks, lifecycle=lifecycle,
                            shard_stats=shard_stats)

    def abort_run(self) -> None:
        """Drop an active run without collecting (test cleanup)."""
        self.active = False
        self._sims = []
        self._worker_shared = []
        self._lifecycle = None
        self._shard_stats = []

    # -- worker shipping (see repro.runner.parallel) -----------------------

    def export_worker_run(self) -> dict:
        """Harvest this (worker-side) run into a picklable payload.

        Ends the run: the worker collected telemetry only to ship it
        home. Span trackers drop their clock closure in transit (see
        ``SpanTracker.__getstate__``); finished spans travel intact.
        """
        if not self.active:
            raise RuntimeError("no telemetry run is active")
        payload = {
            "sims": [WorkerSimTelemetry(sim.telemetry, sim.tracer,
                                        sim.profiler,
                                        getattr(sim, "heap_high_water", 0),
                                        getattr(sim, "agent_peak_queue", 0),
                                        getattr(sim, "agents_shed", 0),
                                        getattr(sim, "link_peak_queue", 0),
                                        getattr(sim, "ecn_marks", 0))
                     for sim in self._sims],
            "shared": self._shared if len(self._shared) else None,
            "shards": self._shard_stats,
        }
        self.active = False
        self._sims = []
        self._lifecycle = None
        self._shard_stats = []
        return payload

    def absorb_worker_run(self, payload: dict) -> None:
        """Splice a worker payload into the active run, in call order.

        Each shipped simulator joins ``_sims`` exactly where a locally
        built one would have, so tags, exports, and the merged profile
        come out in the same order as a serial run.
        """
        if not self.active:
            return
        self._sims.extend(payload["sims"])
        if payload["shared"] is not None:
            self._worker_shared.append(payload["shared"])
        self._shard_stats.extend(payload.get("shards", ()))


#: The process-wide hub every Simulator announces itself to.
HUB = TelemetryHub()


def ambient_registry() -> MetricsRegistry:
    """Registry for components with no simulator of their own."""
    return HUB.registry if HUB.active else _DEFAULT_REGISTRY
