"""Command-line experiment runner: ``python -m repro [ids...]``.

Runs the named experiments (or all of them) and prints their tables —
the same rows the benchmarks assert on and EXPERIMENTS.md records.

Examples::

    python -m repro T1 E3 E12      # quick ones
    python -m repro --list
    python -m repro --all          # everything (several minutes: E6/E7)
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List

from repro.experiments import ALL_EXPERIMENTS
from repro.metrics.tables import ResultTable


def _print_result(result) -> None:
    if isinstance(result, ResultTable):
        print(result.render())
        print()
    elif isinstance(result, (tuple, list)):
        for item in result:
            _print_result(item)
    else:
        print(result)


def run_experiment(exp_id: str) -> None:
    """Run one experiment module's ``run()`` and print its tables."""
    module = ALL_EXPERIMENTS[exp_id]
    started = time.time()
    print(f"=== {exp_id}: {module.__doc__.strip().splitlines()[0]}")
    print()
    _print_result(module.run())
    print(f"[{exp_id} done in {time.time() - started:.1f} s]")
    print()


def main(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="dLTE reproduction: run paper experiments")
    parser.add_argument("ids", nargs="*",
                        help=f"experiment ids: {', '.join(ALL_EXPERIMENTS)}")
    parser.add_argument("--all", action="store_true",
                        help="run every experiment")
    parser.add_argument("--list", action="store_true",
                        help="list experiments and exit")
    args = parser.parse_args(argv)

    if args.list:
        for exp_id, module in ALL_EXPERIMENTS.items():
            headline = module.__doc__.strip().splitlines()[0]
            print(f"{exp_id:>4}  {headline}")
        return 0

    ids = list(ALL_EXPERIMENTS) if args.all else args.ids
    if not ids:
        parser.print_help()
        return 2
    unknown = [i for i in ids if i not in ALL_EXPERIMENTS]
    if unknown:
        print(f"unknown experiment ids: {unknown}; "
              f"choices: {list(ALL_EXPERIMENTS)}", file=sys.stderr)
        return 2
    for exp_id in ids:
        run_experiment(exp_id)
    return 0


if __name__ == "__main__":
    sys.exit(main())
