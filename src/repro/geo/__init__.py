"""Planar geometry: positions, distances, and placement generators."""

from repro.geo.points import Point, distance_m
from repro.geo.placement import (
    cluster_placement,
    grid_placement,
    road_placement,
    uniform_disk_placement,
)

__all__ = [
    "Point",
    "distance_m",
    "uniform_disk_placement",
    "grid_placement",
    "road_placement",
    "cluster_placement",
]
