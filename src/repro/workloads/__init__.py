"""Workloads: traffic generators and deployment topologies."""

from repro.workloads.fluid import FluidCellLoad
from repro.workloads.topology import CityGrid, FarmCorridor, RuralTown
from repro.workloads.traffic import (
    CbrSource,
    FlashCrowdAttachSource,
    OnOffSource,
    PoissonChurnAttachSource,
    PoissonSource,
    VideoStreamSource,
    WebSessionSource,
)

__all__ = [
    "RuralTown",
    "FarmCorridor",
    "CityGrid",
    "FluidCellLoad",
    "CbrSource",
    "PoissonSource",
    "OnOffSource",
    "WebSessionSource",
    "VideoStreamSource",
    "FlashCrowdAttachSource",
    "PoissonChurnAttachSource",
]
