"""Bench E12 — deployment economics of the §5 Papua-style site."""

from conftest import emit, once

from repro.experiments import e12_deployment_cost


def test_e12_bom_under_paper_budget(benchmark):
    table = once(benchmark, e12_deployment_cost.bom_table)
    emit(table)
    total = table.rows[-1]["total_usd"]
    # the paper's headline number: "less than $8000 in materials"
    assert total < e12_deployment_cost.PAPER_BUDGET_USD
    assert e12_deployment_cost.under_paper_budget()
    # and it genuinely includes the two sectors + EPC computer + cabling
    items = " | ".join(str(row["item"]) for row in table.rows)
    assert "eNodeB" in items and "EPC computer" in items


def test_e12_town_coverage_costs(benchmark):
    table = once(benchmark, e12_deployment_cost.run)
    emit(table)
    rows = {row["technology"]: row for row in table.rows}
    dlte = rows["dLTE (band 5)"]
    wifi = rows["WiFi (2.4 GHz)"]
    femto = rows["carrier femtocell"]
    # one dLTE site covers the whole area; WiFi needs a farm of sites
    assert dlte["sites_needed"] == 1
    assert wifi["sites_needed"] >= 4
    # coverage per dollar: dLTE dominates by more than an order of
    # magnitude, femtocells are hopeless for area coverage
    assert dlte["km2_per_kusd"] > 10 * wifi["km2_per_kusd"]
    assert wifi["km2_per_kusd"] > 10 * femto["km2_per_kusd"]
    # the recurring carrier fee makes femtocells even worse over 5 years
    assert femto["five_year_usd"] > 5 * femto["town_capex_usd"]
