"""Unit tests for the fault-injection subsystem and control-plane hardening.

Covers the E16 substrate: link up/down/loss with per-cause drop
accounting, the :class:`FaultInjector` schedule, control-channel cuts,
stub crash/restart, supervised NAS attach retries, spectrum-lease
renewal and lapse, and SAS lease expiry authority.
"""

import ipaddress

import pytest

from repro.core.access_point import DLTEAccessPoint
from repro.epc.agents import ControlAgent, ControlChannel
from repro.epc.keys import PublishedKeyRegistry
from repro.epc.stub import LocalCoreStub
from repro.epc.subscriber import make_profile
from repro.epc.ue import UeState, UserEquipment
from repro.enodeb.relay import EnbControlRelay
from repro.faults import FaultInjector, FaultRecord
from repro.geo.points import Point
from repro.net.addressing import AddressPool
from repro.net.internet import InternetCore
from repro.net.links import Link
from repro.net.packet import Packet
from repro.phy.bands import get_band
from repro.simcore import Simulator
from repro.spectrum.grants import ApRecord
from repro.spectrum.sas import SasRegistry


def _pkt(size=100):
    return Packet(src=None, dst=None, size_bytes=size)


# -- link fault state --------------------------------------------------------------


def test_link_down_drops_and_clears_queue():
    sim = Simulator(0)
    link = Link(sim, rate_bps=8.0, delay_s=0, queue_packets=5, name="l")
    link.connect(lambda p: None)
    for _ in range(3):  # one serializing + two queued
        assert link.send(_pkt())
    link.set_up(False)
    assert link.dropped_down == 2  # the queued packets are lost
    assert link.send(_pkt()) is False
    assert link.dropped_down == 3
    link.set_up(True)
    assert link.send(_pkt()) is True


def test_link_cut_loses_in_flight_packet():
    sim = Simulator(0)
    got = []
    link = Link(sim, rate_bps=8000.0, delay_s=0.5, name="l")
    link.connect(got.append)
    link.send(_pkt(100))
    sim.at(0.2, link.set_up, False)  # cut during propagation
    sim.run()
    assert got == []
    assert link.dropped_down == 1


def test_overflow_counted_separately_from_faults():
    sim = Simulator(0)
    link = Link(sim, rate_bps=8.0, delay_s=0, queue_packets=1)
    link.connect(lambda p: None)
    results = [link.send(_pkt()) for _ in range(3)]
    assert results == [True, True, False]
    assert link.dropped_overflow == 1
    assert link.dropped_down == 0 and link.dropped_loss == 0
    assert link.dropped == 1  # running total across causes


def _lossy_outcomes(seed):
    sim = Simulator(seed)
    link = Link(sim, rate_bps=float("inf"), delay_s=1e-3, name="lossy")
    link.connect(lambda p: None)
    link.set_loss_rate(0.5)
    results = [link.send(_pkt()) for _ in range(100)]
    sim.run()
    return results, link


def test_link_loss_rate_drops_and_is_deterministic():
    results, link = _lossy_outcomes(42)
    assert link.dropped_loss == results.count(False)
    assert 20 <= link.dropped_loss <= 80
    assert link.delivered == 100 - link.dropped_loss
    # the draws come from the link's own named stream: reproducible
    results2, link2 = _lossy_outcomes(42)
    assert results2 == results


def test_loss_rate_validated():
    sim = Simulator(0)
    link = Link(sim, rate_bps=1e6, delay_s=0)
    with pytest.raises(ValueError):
        link.set_loss_rate(1.5)
    with pytest.raises(ValueError):
        link.set_loss_rate(-0.1)


# -- fault injector -----------------------------------------------------------------


def test_injector_link_down_and_heal():
    sim = Simulator(0)
    link = Link(sim, rate_bps=1e6, delay_s=0, name="uplink")
    link.connect(lambda p: None)
    injector = FaultInjector(sim)
    fault = injector.link_down(link, at_s=1.0, duration_s=2.0)
    assert fault == "link-down:uplink"
    sim.run(until=0.5)
    assert link.up
    sim.run(until=1.5)
    assert not link.up
    sim.run(until=3.5)
    assert link.up
    assert [r.action for r in injector.log] == ["down", "up"]
    assert injector.faults_injected == 2
    assert all(isinstance(r, FaultRecord) for r in injector.log)
    assert "link-down:uplink" in injector.dump()


def test_injector_flap_cycles():
    sim = Simulator(0)
    link = Link(sim, rate_bps=1e6, delay_s=0, name="flappy")
    link.connect(lambda p: None)
    injector = FaultInjector(sim)
    injector.link_flap(link, at_s=1.0, down_s=0.5, up_s=0.5, cycles=3)
    sim.run(until=1.25)
    assert not link.up
    sim.run(until=1.75)
    assert link.up
    sim.run(until=10.0)
    assert link.up  # flapping over, link healthy — no stuck state
    assert len(injector.log) == 6
    assert injector.log[-1].action == "up"


def test_injector_names_are_unique():
    sim = Simulator(0)
    link = Link(sim, rate_bps=1e6, delay_s=0, name="x")
    link.connect(lambda p: None)
    injector = FaultInjector(sim)
    first = injector.link_down(link, at_s=1.0)
    second = injector.link_down(link, at_s=2.0)
    assert first != second and second.endswith("#2")


def test_injector_validates():
    sim = Simulator(0)
    link = Link(sim, rate_bps=1e6, delay_s=0)
    link.connect(lambda p: None)
    injector = FaultInjector(sim)
    with pytest.raises(ValueError):
        injector.link_down(link, at_s=1.0, duration_s=0)
    with pytest.raises(ValueError):
        injector.link_flap(link, at_s=1.0, down_s=0, up_s=1, cycles=1)
    with pytest.raises(ValueError):
        injector.link_flap(link, at_s=1.0, down_s=1, up_s=1, cycles=0)
    with pytest.raises(ValueError):
        injector.outage(lambda: None, lambda: None, at_s=1.0, duration_s=-1)
    with pytest.raises(ValueError):  # fail at schedule time, not mid-run
        injector.link_loss(link, at_s=1.0, loss_rate=1.5)


def test_injector_registry_outage():
    sim = Simulator(0)
    sas = SasRegistry(sim)
    injector = FaultInjector(sim)
    injector.registry_outage(sas, at_s=1.0, duration_s=2.0)
    sim.run(until=1.5)
    assert not sas.is_available()
    sim.run(until=4.0)
    assert sas.is_available()


# -- control channel faults ---------------------------------------------------------


class _Recorder(ControlAgent):
    def __init__(self, sim, name):
        super().__init__(sim, name, service_time_s=1e-4)
        self.got = []

    def handle(self, message):
        self.got.append(message.payload)


def test_control_channel_down_drops_messages():
    sim = Simulator(0)
    a, b = _Recorder(sim, "a"), _Recorder(sim, "b")
    channel = ControlChannel(sim, a, b, 1e-3, name="s1-test")
    channel.send(a, "hello")
    channel.set_up(False)
    channel.send(a, "lost")
    sim.run(until=1.0)
    assert b.got == ["hello"]
    assert channel.dropped == 1
    channel.set_up(True)
    channel.send(a, "back")
    sim.run(until=2.0)
    assert b.got == ["hello", "back"]


# -- stub crash/restart -------------------------------------------------------------


def _stub(sim, registry=None):
    stub = LocalCoreStub(sim, "stub", AddressPool("100.64.0.0/24"),
                         registry=registry)
    enb = EnbControlRelay(sim, "enb0")
    s1 = ControlChannel(sim, enb, stub, 0.1e-3, "s1-local")
    enb.connect_core(s1)
    stub.connect_enb(s1)
    return stub, enb


def _published_ue(sim, imsi):
    registry = PublishedKeyRegistry(sim, lookup_rtt_s=0.01)
    profile = make_profile(imsi, published=True)
    registry.publish(profile)
    return registry, UserEquipment(sim, profile)


def _wire_air(sim, ue, enb):
    air = ControlChannel(sim, ue, enb, 0.005, f"air:{ue.name}")
    ue.connect_air(air)
    enb.attach_ue(ue.ue_id, air)


def test_stub_crash_releases_sessions_then_restarts_empty():
    sim = Simulator(1)
    registry, ue = _published_ue(sim, "999010000000001")
    stub, enb = _stub(sim, registry)
    _wire_air(sim, ue, enb)
    ue.start_attach()
    sim.run(until=2.0)
    assert ue.state is UeState.ATTACHED
    assert stub.pool.in_use == 1 and stub._key_cache

    stub.crash()
    assert stub.crashes == 1
    assert stub.sessions == {} and stub.pool.in_use == 0

    # messages offered while down are dropped, not queued
    ue2 = UserEquipment(sim, make_profile("999010000000009"))
    _wire_air(sim, ue2, enb)
    ue2.start_attach()
    sim.run(until=4.0)
    assert ue2.state is not UeState.ATTACHED
    assert stub.dropped_while_down >= 1

    stub.restart()
    assert stub.alive
    # RAM state did not survive the power cycle
    assert stub._key_cache == {} and stub._sqn == {}


# -- supervised attach (NAS retry with backoff) -------------------------------------


def test_attach_retry_survives_stub_outage():
    sim = Simulator(2)
    registry, ue = _published_ue(sim, "999010000000002")
    stub, enb = _stub(sim, registry)
    _wire_air(sim, ue, enb)
    stub.crash()
    ue.start_attach_with_retry(timeout_s=0.5, base_backoff_s=0.25)
    sim.run(until=2.0)
    assert ue.state is not UeState.ATTACHED
    assert ue.attach_attempts >= 2  # kept trying into the outage
    stub.restart()
    sim.run(until=15.0)
    assert ue.state is UeState.ATTACHED
    assert ue.ue_address is not None
    assert ue.attach_retries_exhausted == 0


def test_attach_retry_exhaustion_counted():
    sim = Simulator(3)
    registry, ue = _published_ue(sim, "999010000000003")
    stub, enb = _stub(sim, registry)
    _wire_air(sim, ue, enb)
    stub.crash()  # never restarted
    ue.start_attach_with_retry(max_attempts=3, timeout_s=0.2,
                               base_backoff_s=0.1)
    sim.run(until=10.0)
    assert ue.attach_attempts == 3
    assert ue.attach_retries_exhausted == 1
    assert ue.state is not UeState.ATTACHED


def test_attach_retry_waits_for_coverage():
    sim = Simulator(4)
    registry, ue = _published_ue(sim, "999010000000004")
    stub, enb = _stub(sim, registry)
    # no air channel yet: the supervisor idles through backoffs
    ue.start_attach_with_retry(timeout_s=0.5, base_backoff_s=0.25)
    sim.run(until=1.0)
    assert ue.attach_attempts == 0
    _wire_air(sim, ue, enb)  # coverage returns
    sim.run(until=20.0)
    assert ue.state is UeState.ATTACHED
    assert ue.attach_attempts == 1


def test_radio_lost_collapses_nas_state():
    sim = Simulator(5)
    registry, ue = _published_ue(sim, "999010000000005")
    stub, enb = _stub(sim, registry)
    _wire_air(sim, ue, enb)
    ue.start_attach()
    sim.run(until=2.0)
    assert ue.state is UeState.ATTACHED
    ue.radio_lost()
    assert ue.state is UeState.IDLE
    assert ue.air is None and ue.ue_address is None


# -- spectrum lease renewal and lapse -----------------------------------------------


def _standalone_ap(sim, sas):
    internet = InternetCore(sim)
    return DLTEAccessPoint(sim, "ap0", Point(0.0, 0.0), get_band("lte5"),
                           internet, sas, None, pool_prefix="10.1.0.0/16")


def test_lease_renewed_on_timer_and_lapses_during_outage():
    sim = Simulator(7)
    sas = SasRegistry(sim, lease_s=4.0)
    ap = _standalone_ap(sim, sas)
    ap.register_spectrum()
    sim.run(until=1.0)
    assert ap.grant_active

    # the renewal loop keeps the grant alive far past the initial lease
    sim.run(until=20.0)
    assert ap.grant_active
    assert ap.lease_renewals >= 3

    # a registry outage outliving the lease silences the AP (CBRS rule)
    sas.fail()
    sim.run(until=sim.now + 10.0)
    assert not ap.grant_active
    assert ap.lease_renewal_failures >= 1

    # registry back: the loop re-registers and the AP transmits again
    sas.restore()
    sim.run(until=sim.now + 10.0)
    assert ap.grant_active


def test_lease_renewal_stops_on_crash():
    sim = Simulator(8)
    sas = SasRegistry(sim, lease_s=2.0)
    ap = _standalone_ap(sim, sas)
    ap.register_spectrum()
    sim.run(until=1.0)
    ap.crash()
    renewals_at_crash = ap.lease_renewals
    sim.run(until=sim.now + 10.0)
    assert ap.lease_renewals == renewals_at_crash
    assert not ap.grant_active  # nobody heartbeats a dead AP's lease


# -- SAS lease expiry authority ------------------------------------------------------


def _record(ap_id, x=0.0):
    return ApRecord(ap_id=ap_id, position=Point(x, 0.0),
                    band=get_band("lte5"), eirp_dbm=40.0,
                    contact=f"{ap_id}-gw")


def test_sas_expiry_sweep_reclaims_lapsed_grants():
    sim = Simulator(9)
    sas = SasRegistry(sim, lease_s=2.0)
    sas.start_expiry_sweep()
    got = []
    sas.request_grant(_record("apX"), got.append)
    sim.run(until=1.0)
    assert got[0] is not None
    assert sas.active_grants == 1
    # nobody renews: active_at flips at expiry, the sweep reclaims
    sim.run(until=10.0)
    assert sas.active_grants == 0
    assert sas.grants_expired == 1
    assert "apX" not in sas._grants


def test_lapsed_grant_cannot_merely_heartbeat():
    sim = Simulator(10)
    sas = SasRegistry(sim, lease_s=1.0)
    sas.request_grant(_record("apY"), lambda g: None)
    sim.run(until=0.5)
    sim.run(until=5.0)  # lease long gone
    answers = []
    sas.heartbeat("apY", answers.append)
    sim.run(until=6.0)
    assert answers == [None]  # must re-register, not renew
    assert sas.heartbeats_served == 0


def test_expired_grants_invisible_to_discovery():
    sim = Simulator(11)
    sas = SasRegistry(sim, lease_s=3.0)
    sas.request_grant(_record("apA"), lambda g: None)
    sas.request_grant(_record("apB", x=100.0), lambda g: None)
    sim.run(until=1.0)

    # keep apA renewed; let apB lapse
    def keep_renewing():
        while True:
            sas.heartbeat("apA", lambda g: None)
            yield sim.timeout(1.0)

    sim.process(keep_renewing())
    sim.run(until=10.0)
    neighbors = []
    sas.discover_neighbors("apA", neighbors.extend)
    sim.run(until=11.0)
    assert neighbors == []  # apB's lapsed grant is not discoverable
    assert sas.active_grants == 1


# -- injector edge cases (PR 4) -----------------------------------------------------


def test_overlapping_cuts_on_same_link_heal_after_last_window():
    # two link-down windows overlap on the SAME link: the inner window's
    # heal must not resurrect a link the outer window still holds down
    sim = Simulator(0)
    link = Link(sim, rate_bps=1e6, delay_s=0, name="shared")
    link.connect(lambda p: None)
    injector = FaultInjector(sim)
    injector.link_down(link, at_s=1.0, duration_s=4.0)  # cut 1.0 .. 5.0
    injector.link_down(link, at_s=2.0, duration_s=1.0)  # cut 2.0 .. 3.0
    sim.run(until=2.5)
    assert not link.up
    sim.run(until=3.5)
    assert not link.up  # the inner heal fired; the outer cut still holds
    sim.run(until=5.5)
    assert link.up  # only the last heal raises the link


def test_flap_overlapping_a_cut_cannot_resurrect_the_link():
    sim = Simulator(0)
    link = Link(sim, rate_bps=1e6, delay_s=0, name="contested")
    link.connect(lambda p: None)
    injector = FaultInjector(sim)
    injector.link_down(link, at_s=0.5, duration_s=6.0)  # cut 0.5 .. 6.5
    injector.link_flap(link, at_s=1.0, down_s=0.5, up_s=0.5, cycles=2)
    # every flap "up" phase lands inside the long cut: stay down
    for probe in (1.25, 1.75, 2.25, 2.75, 4.0):
        sim.run(until=probe)
        assert not link.up
    sim.run(until=7.0)
    assert link.up


def test_restart_mid_backoff_lets_the_pending_retry_succeed():
    sim = Simulator(6)
    registry, ue = _published_ue(sim, "999010000000006")
    stub, enb = _stub(sim, registry)
    _wire_air(sim, ue, enb)
    stub.crash()
    ue.start_attach_with_retry(timeout_s=0.5, base_backoff_s=2.0)
    # attempt 1 times out at ~0.5 and the supervisor sleeps until ~2.5;
    # the restart lands in the middle of that backoff window
    sim.at(1.5, stub.restart)
    sim.run(until=10.0)
    assert ue.state is UeState.ATTACHED
    assert ue.attach_attempts == 2  # exactly the pending retry, no extras
    assert ue.attach_retries_exhausted == 0


def test_lease_lapsing_exactly_at_the_renewal_tick_is_too_late():
    sim = Simulator(12)
    sas = SasRegistry(sim, lease_s=2.0)
    got = []
    sas.request_grant(_record("apZ"), got.append)
    sim.run(until=1.0)
    grant = got[0]
    assert grant is not None and grant.expires_at is not None
    # a lease is over AT its expiry instant (strict <) ...
    assert grant.active_at(grant.expires_at - 1e-9)
    assert not grant.active_at(grant.expires_at)
    # ... so a renewal landing exactly on the tick must be refused:
    # time the heartbeat so _renew executes precisely at expiry
    answers = []
    lead = sas.rtt_s + sas.processing_s
    sim.at(grant.expires_at - lead, sas.heartbeat, "apZ", answers.append)
    sim.run(until=grant.expires_at + 1.0)
    assert answers == [None]  # lapsed: must re-register, not renew
    assert sas.heartbeats_served == 0
