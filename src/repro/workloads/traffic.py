"""Traffic sources: processes that emit (time, bytes) demands.

Each source runs as a simcore process and calls an ``emit(bytes)``
callback — typically wired to a transport connection's
``send_app_data`` or a cell backlog. Rates and shapes follow the
workloads the paper's rural deployment actually carries (§5: "data only,
with voice and messaging provided via OTT services"): messaging bursts,
web sessions, and adaptive video.

The attach generators at the bottom stress the *control* plane instead
of the data plane: :class:`FlashCrowdAttachSource` models a stadium
letting out (every UE storms the attach procedure inside one short
window — E17's workload), :class:`PoissonChurnAttachSource` models
steady-state churn (Poisson attach arrivals, exponential session holds,
then detach). Both draw only from the sim's named RNG streams, so a
storm is reproducible from ``(seed, topology)`` and identical across
architecture arms.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Dict, Iterable, Optional

import numpy as np

from repro.simcore.simulator import Simulator

Emit = Callable[[int], None]


class _Source:
    """Shared lifecycle: start/stop a generator process."""

    def __init__(self, sim: Simulator, emit: Emit, name: str) -> None:
        self.sim = sim
        self.emit = emit
        self.name = name
        self.bytes_emitted = 0
        self.bursts_emitted = 0
        self._process = None

    def start(self) -> None:
        """Begin emitting."""
        if self._process is not None and self._process.is_alive:
            raise RuntimeError(f"{self.name} already running")
        self._process = self.sim.process(self._run(), name=self.name)

    def stop(self) -> None:
        """Stop emitting (idempotent)."""
        if self._process is not None and self._process.is_alive:
            self._process.kill("source stopped")

    def _emit(self, n_bytes: int) -> None:
        self.bytes_emitted += n_bytes
        self.bursts_emitted += 1
        self.emit(n_bytes)

    def _run(self):
        raise NotImplementedError
        yield  # pragma: no cover


class CbrSource(_Source):
    """Constant bit rate: ``packet_bytes`` every ``interval_s``."""

    def __init__(self, sim: Simulator, emit: Emit, rate_bps: float,
                 packet_bytes: int = 1200, name: str = "cbr") -> None:
        super().__init__(sim, emit, name)
        if rate_bps <= 0 or packet_bytes <= 0:
            raise ValueError("rate and packet size must be positive")
        self.packet_bytes = packet_bytes
        self.interval_s = packet_bytes * 8.0 / rate_bps

    def _run(self):
        while True:
            yield self.sim.timeout(self.interval_s)
            self._emit(self.packet_bytes)


class PoissonSource(_Source):
    """Poisson packet arrivals at ``rate_pps``."""

    def __init__(self, sim: Simulator, emit: Emit, rate_pps: float,
                 packet_bytes: int = 1200, name: str = "poisson") -> None:
        super().__init__(sim, emit, name)
        if rate_pps <= 0:
            raise ValueError("rate must be positive")
        self.rate_pps = rate_pps
        self.packet_bytes = packet_bytes

    def _run(self):
        rng = self.sim.rng(f"traffic:{self.name}")
        while True:
            yield self.sim.timeout(float(rng.exponential(1.0 / self.rate_pps)))
            self._emit(self.packet_bytes)


class OnOffSource(_Source):
    """Exponential on/off bursts — the classic bursty-user model."""

    def __init__(self, sim: Simulator, emit: Emit, on_rate_bps: float,
                 mean_on_s: float = 2.0, mean_off_s: float = 8.0,
                 packet_bytes: int = 1200, name: str = "onoff") -> None:
        super().__init__(sim, emit, name)
        if min(on_rate_bps, mean_on_s, mean_off_s) <= 0:
            raise ValueError("rates and durations must be positive")
        self.on_rate_bps = on_rate_bps
        self.mean_on_s = mean_on_s
        self.mean_off_s = mean_off_s
        self.packet_bytes = packet_bytes

    def _run(self):
        rng = self.sim.rng(f"traffic:{self.name}")
        interval = self.packet_bytes * 8.0 / self.on_rate_bps
        while True:
            on_until = self.sim.now + float(rng.exponential(self.mean_on_s))
            while self.sim.now < on_until:
                yield self.sim.timeout(interval)
                self._emit(self.packet_bytes)
            yield self.sim.timeout(float(rng.exponential(self.mean_off_s)))


class WebSessionSource(_Source):
    """Page views: a burst of objects, then a think time."""

    def __init__(self, sim: Simulator, emit: Emit,
                 mean_page_bytes: int = 1_500_000,
                 mean_think_s: float = 15.0, name: str = "web") -> None:
        super().__init__(sim, emit, name)
        if mean_page_bytes <= 0 or mean_think_s <= 0:
            raise ValueError("page size and think time must be positive")
        self.mean_page_bytes = mean_page_bytes
        self.mean_think_s = mean_think_s

    def _run(self):
        rng = self.sim.rng(f"traffic:{self.name}")
        while True:
            # lognormal page sizes (heavy tail), mean ~ mean_page_bytes
            page = int(rng.lognormal(mean=np.log(self.mean_page_bytes) - 0.5,
                                     sigma=1.0))
            self._emit(max(page, 1000))
            yield self.sim.timeout(float(rng.exponential(self.mean_think_s)))


class _AttachSource(_Source):
    """Shared shape for control-plane (attach) workload generators.

    Drives each UE's *supervised* attach (``start_attach_with_retry``),
    so rejected or timed-out attempts back off and retry per the UE's
    own policy — the generator only decides *when demand appears*.
    """

    def __init__(self, sim: Simulator, ues: Iterable, name: str,
                 retry_kwargs: Optional[dict] = None) -> None:
        super().__init__(sim, self._no_bytes, name)
        self.ues = list(ues)
        self.retry_kwargs = dict(retry_kwargs or {})
        self.attaches_started = 0
        #: sim time each UE's demand appeared (time-to-attach baseline)
        self.demand_at: Dict[str, float] = {}

    @staticmethod
    def _no_bytes(n_bytes: int) -> None:
        """Attach generators move procedures, not payload bytes."""

    def _kick(self, ue) -> None:
        self.attaches_started += 1
        self.demand_at[ue.ue_id] = self.sim.now
        ue.start_attach_with_retry(**self.retry_kwargs)


class FlashCrowdAttachSource(_AttachSource):
    """A flash crowd: every UE wants the network within ``window_s``.

    Offsets are drawn uniformly from the source's own named RNG stream
    and assigned to UEs in (sorted-offset, given-UE) order, so the same
    seed produces the same storm against any architecture under test.
    """

    def __init__(self, sim: Simulator, ues: Iterable, window_s: float = 1.0,
                 name: str = "flash-crowd",
                 retry_kwargs: Optional[dict] = None) -> None:
        super().__init__(sim, ues, name, retry_kwargs)
        if window_s <= 0:
            raise ValueError("storm window must be positive")
        self.window_s = window_s

    def _run(self):
        rng = self.sim.rng(f"traffic:{self.name}")
        offsets = sorted(float(rng.uniform(0.0, self.window_s))
                         for _ in self.ues)
        start = self.sim.now
        for ue, offset in zip(self.ues, offsets):
            delay = start + offset - self.sim.now
            if delay > 0:
                yield self.sim.timeout(delay)
            self._kick(ue)


class PoissonChurnAttachSource(_AttachSource):
    """Steady churn: Poisson attach arrivals, exponential holds, detach.

    Idle UEs cycle through a FIFO; each arrival attaches the next idle
    UE, holds the session for an exponential time, then detaches it and
    returns it to the pool. With no idle UE an arrival is skipped (and
    counted), modelling a population cap rather than queued demand.
    """

    def __init__(self, sim: Simulator, ues: Iterable, rate_per_s: float,
                 mean_hold_s: float = 30.0, name: str = "churn",
                 retry_kwargs: Optional[dict] = None) -> None:
        super().__init__(sim, ues, name, retry_kwargs)
        if rate_per_s <= 0 or mean_hold_s <= 0:
            raise ValueError("rate and hold time must be positive")
        self.rate_per_s = rate_per_s
        self.mean_hold_s = mean_hold_s
        self.detaches = 0
        self.arrivals_skipped = 0
        self._idle = deque(self.ues)

    def _release(self, ue) -> None:
        ue.detach()
        self.detaches += 1
        self._idle.append(ue)

    def _run(self):
        rng = self.sim.rng(f"traffic:{self.name}")
        while True:
            yield self.sim.timeout(
                float(rng.exponential(1.0 / self.rate_per_s)))
            if not self._idle:
                self.arrivals_skipped += 1
                continue
            ue = self._idle.popleft()
            self._kick(ue)
            hold = float(rng.exponential(self.mean_hold_s))
            self.sim.post_at(self.sim.now + hold, self._release, ue)


class VideoStreamSource(_Source):
    """Segmented streaming: one segment every ``segment_s`` at the bitrate."""

    def __init__(self, sim: Simulator, emit: Emit, bitrate_bps: float = 1.5e6,
                 segment_s: float = 4.0, name: str = "video") -> None:
        super().__init__(sim, emit, name)
        if bitrate_bps <= 0 or segment_s <= 0:
            raise ValueError("bitrate and segment length must be positive")
        self.bitrate_bps = bitrate_bps
        self.segment_s = segment_s

    def _run(self):
        segment_bytes = int(self.bitrate_bps * self.segment_s / 8)
        while True:
            self._emit(segment_bytes)
            yield self.sim.timeout(self.segment_s)


class DiurnalCurve:
    """Deterministic time-of-day load multiplier (Elnashar's busy hour).

    A raised cosine over ``period_s``: 1.0 at the peak (``peak_at`` into
    the period), ``trough`` at the opposite phase. Pure arithmetic on
    the sim clock — no RNG, no events — so two sources modulated by the
    same curve stay phase-locked and a run stays reproducible.

    For experiments that cannot afford a 24 h horizon, compress the
    period: a 60 s period sweeps trough -> peak -> trough inside one
    E18 cell, which is the shape (not the wall-clock) the SLA tables
    need.
    """

    def __init__(self, period_s: float = 86_400.0, trough: float = 0.2,
                 peak_at: float = 0.0) -> None:
        if period_s <= 0:
            raise ValueError("period must be positive")
        if not 0.0 < trough <= 1.0:
            raise ValueError("trough must be in (0, 1]")
        self.period_s = period_s
        self.trough = trough
        self.peak_at = peak_at

    def factor(self, now: float) -> float:
        """Load multiplier in [trough, 1.0] at sim time ``now``."""
        phase = 2.0 * np.pi * ((now - self.peak_at) / self.period_s)
        mid = (1.0 + self.trough) / 2.0
        amp = (1.0 - self.trough) / 2.0
        return mid + amp * float(np.cos(phase))


class ParetoFlowSource(_Source):
    """Heavy-tailed flow arrivals: Poisson starts, Pareto sizes.

    The defining property of measured Internet traffic (and the reason
    drop-tail queues collapse in E18): most flows are mice, a rare few
    are elephants carrying most of the bytes. ``alpha`` close to 1
    makes the tail heavier; sizes are capped at ``max_bytes`` so a
    single draw cannot exceed an experiment's horizon.

    An optional :class:`DiurnalCurve` modulates the *arrival rate*
    (thinning: an arrival survives with probability ``factor(now)``),
    so offered load follows the time-of-day shape while per-flow sizes
    keep their distribution.
    """

    def __init__(self, sim: Simulator, emit: Emit, rate_per_s: float,
                 mean_bytes: int = 200_000, alpha: float = 1.3,
                 max_bytes: int = 50_000_000,
                 diurnal: Optional[DiurnalCurve] = None,
                 name: str = "pareto") -> None:
        super().__init__(sim, emit, name)
        if rate_per_s <= 0 or mean_bytes <= 0:
            raise ValueError("rate and mean size must be positive")
        if alpha <= 1.0:
            raise ValueError("alpha must exceed 1 (finite mean)")
        if max_bytes < mean_bytes:
            raise ValueError("max_bytes must be >= mean_bytes")
        self.rate_per_s = rate_per_s
        self.alpha = alpha
        #: Pareto scale chosen so E[size] = mean_bytes: x_m = m (a-1)/a
        self.scale_bytes = mean_bytes * (alpha - 1.0) / alpha
        self.max_bytes = max_bytes
        self.diurnal = diurnal
        self.flows_started = 0
        self.arrivals_thinned = 0

    def _run(self):
        rng = self.sim.rng(f"traffic:{self.name}")
        while True:
            yield self.sim.timeout(
                float(rng.exponential(1.0 / self.rate_per_s)))
            if self.diurnal is not None:
                if float(rng.random()) >= self.diurnal.factor(self.sim.now):
                    self.arrivals_thinned += 1
                    continue
            # numpy's pareto() is the Lomax form; add 1 for classic Pareto
            size = int(self.scale_bytes * (1.0 + float(
                rng.pareto(self.alpha))))
            self.flows_started += 1
            self._emit(min(max(size, 1), self.max_bytes))


class VoipSource(_Source):
    """Talk-spurt VoIP: small CBR frames while talking, silence between.

    The GBR workload for QoS policing: tiny packets (a G.711-ish 20 ms
    frame), strict latency sensitivity, negligible aggregate rate — the
    class a policer must keep flowing while bulk flows shed.
    """

    def __init__(self, sim: Simulator, emit: Emit, frame_bytes: int = 200,
                 frame_interval_s: float = 0.02, mean_talk_s: float = 3.0,
                 mean_silence_s: float = 3.0, name: str = "voip") -> None:
        super().__init__(sim, emit, name)
        if min(frame_bytes, frame_interval_s,
               mean_talk_s, mean_silence_s) <= 0:
            raise ValueError("frame and spurt parameters must be positive")
        self.frame_bytes = frame_bytes
        self.frame_interval_s = frame_interval_s
        self.mean_talk_s = mean_talk_s
        self.mean_silence_s = mean_silence_s

    def _run(self):
        rng = self.sim.rng(f"traffic:{self.name}")
        while True:
            talk_until = self.sim.now + float(
                rng.exponential(self.mean_talk_s))
            while self.sim.now < talk_until:
                self._emit(self.frame_bytes)
                yield self.sim.timeout(self.frame_interval_s)
            yield self.sim.timeout(
                float(rng.exponential(self.mean_silence_s)))


#: E18's mixed application profiles: constructor + kwargs per app class,
#: keyed by the QoS class name the SLA tables report under. ``web``
#: rides ParetoFlowSource (heavy-tailed page fetches), ``video`` emits
#: steady segments, ``voip`` talk-spurts.
APP_PROFILES = {
    "web": (ParetoFlowSource, {"rate_per_s": 0.5, "mean_bytes": 120_000,
                               "alpha": 1.3}),
    "video": (VideoStreamSource, {"bitrate_bps": 1.0e6, "segment_s": 4.0}),
    "voip": (VoipSource, {}),
}


def make_app_source(app: str, sim: Simulator, emit: Emit, name: str,
                    **overrides) -> _Source:
    """Instantiate one of :data:`APP_PROFILES` (``web``/``video``/``voip``).

    ``overrides`` land on top of the profile's defaults, so an
    experiment can scale a profile (e.g. ``rate_per_s``) per load cell
    without redefining it.
    """
    try:
        cls, defaults = APP_PROFILES[app]
    except KeyError:
        raise ValueError(f"unknown app profile {app!r} "
                         f"(have {sorted(APP_PROFILES)})") from None
    kwargs = {**defaults, **overrides}
    return cls(sim, emit, name=name, **kwargs)
