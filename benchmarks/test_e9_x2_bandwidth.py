"""Bench E9 — X2 coordination bandwidth and backhaul fit (§4.3, ref [28])."""

from conftest import emit, once

from repro.experiments import e9_x2_bandwidth


def test_e9_x2_bandwidth(benchmark):
    table = once(benchmark, e9_x2_bandwidth.run)
    emit(table)
    # bandwidth grows linearly with the number of *peers* (n - 1)...
    aggressive = table.column("aggressive (100 ms)")
    peer_counts = table.column("n_peers")
    per_peer = [bps / (n - 1) for bps, n in zip(aggressive, peer_counts)]
    assert max(per_peer) - min(per_peer) < 0.05 * max(per_peer)
    # ...and linearly with the reporting rate (the minimization knob)
    for row in table.rows:
        assert row["aggressive (100 ms)"] > 50 * row["minimal (10 s)"]


def test_e9_backhaul_fit(benchmark):
    table = once(benchmark, e9_x2_bandwidth.backhaul_fit)
    emit(table)
    rows = {row["level"]: row for row in table.rows}
    # the paper's claim: minimized coordination fits a 64 kbps trickle
    assert rows["minimal (10 s)"]["of_64kbps_pct"] < 5.0
    # standard reporting is still well under typical rural DSL
    assert rows["standard (1 s)"]["of_1000kbps_pct"] < 2.0
    # aggressive reporting genuinely does not fit the thinnest links —
    # which is *why* the level must be tunable
    assert rows["aggressive (100 ms)"]["of_64kbps_pct"] > 100.0
    # a handover burst is a few hundred bytes: noise
    assert e9_x2_bandwidth.handover_burst_bytes() < 1000
