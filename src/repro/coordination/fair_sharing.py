"""Fair-sharing mode: distributed convergence to a fair grid split.

§4.3: "If fair sharing, the APs programatically coordinate the bare
minimum of fair time-frequency sharing of the underlying RF resource
between the APs, more efficiently achieving an equilibrium with similar
fairness characteristics to what WiFi achieves today."

The protocol: every AP in a contention domain broadcasts a
:class:`PrbClaim` over X2. When an AP has current-epoch claims from its
whole peer set, it deterministically partitions the grid — equal
contiguous slices over the sorted participant ids (or demand-weighted
slices when weights differ) — and installs its own slice in its cell.
Determinism means no negotiation rounds: every participant computes the
same partition from the same claims, so the system converges in one
claim exchange (one X2 one-way latency), and any membership change just
bumps the epoch and repeats.

Unlike CSMA, the result has zero collision overhead: each AP transmits
on disjoint PRBs — the E5 comparison in one sentence.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, FrozenSet, Optional

from repro.coordination.x2 import PrbClaim, X2Endpoint, X2Message
from repro.phy.resource_grid import ResourceGrid


class FairSharingCoordinator:
    """Runs the claim protocol for one AP over its X2 endpoint.

    Args:
        x2: the AP's X2 stack (peers must be connected already).
        grid: the cell's resource grid (slices get installed here).
        demand_weight: this AP's claim weight; 1.0 = plain fair share.
        on_converged: callback(prb_set) fired whenever a new partition
            is installed.
    """

    def __init__(self, x2: X2Endpoint, grid: ResourceGrid,
                 demand_weight: float = 1.0,
                 on_converged: Optional[Callable[[FrozenSet[int]], None]] = None
                 ) -> None:
        if demand_weight <= 0:
            raise ValueError("demand weight must be positive")
        self.x2 = x2
        self.grid = grid
        self.demand_weight = demand_weight
        self.on_converged = on_converged
        self.epoch = 0
        self._claims: Dict[str, PrbClaim] = {}
        self.my_prbs: FrozenSet[int] = grid.all_prbs
        self.partitions_installed = 0
        x2.add_handler(self._on_x2)

    # -- protocol ------------------------------------------------------------------

    def announce(self) -> None:
        """(Re)broadcast this AP's claim; starts or restarts convergence."""
        self.epoch += 1
        self._claims = {self.x2.ap_id: self._my_claim()}
        self.x2.broadcast(self._my_claim())
        self._maybe_partition()

    def _my_claim(self) -> PrbClaim:
        return PrbClaim(sender_ap=self.x2.ap_id, n_prbs=self.grid.n_prbs,
                        demand_weight=self.demand_weight, epoch=self.epoch)

    def set_demand_weight(self, weight: float) -> None:
        """Update this AP's demand and re-announce (demand-weighted mode)."""
        if weight <= 0:
            raise ValueError("demand weight must be positive")
        self.demand_weight = weight
        self.announce()

    def _on_x2(self, from_ap: str, message: X2Message) -> None:
        if not isinstance(message, PrbClaim):
            return
        known = self._claims.get(from_ap)
        if known is not None and message.epoch < known.epoch:
            return  # stale claim from an old epoch
        is_new_member = known is None
        self._claims[from_ap] = message
        if message.epoch > self.epoch:
            # a peer with a newer epoch means membership changed under us:
            # adopt the epoch and refresh our own claim
            self.epoch = message.epoch
            self._claims[self.x2.ap_id] = self._my_claim()
            self.x2.broadcast(self._my_claim())
        elif is_new_member:
            # a first-time claimant has not heard our claim yet (it joined
            # after our last announce): re-send so it can converge too
            self.x2.broadcast(self._my_claim())
        self._maybe_partition()

    def _maybe_partition(self) -> None:
        expected = self.x2.peer_ids | {self.x2.ap_id}
        # require a claim from *every* expected member — a lingering
        # claim from a crashed ex-peer must not make the set look whole
        if not expected <= set(self._claims):
            return
        partition = compute_weighted_partition(
            self.grid.n_prbs,
            {ap: self._claims[ap].demand_weight for ap in expected})
        self.my_prbs = partition[self.x2.ap_id]
        self.partitions_installed += 1
        self.x2.sim.trace("coordination",
                          f"{self.x2.ap_id}: fair share installed",
                          epoch=self.epoch, n_prbs=len(self.my_prbs),
                          members=len(expected))
        if self.on_converged is not None:
            self.on_converged(self.my_prbs)


def compute_weighted_partition(n_prbs: int,
                               weights: Dict[str, float]
                               ) -> Dict[str, FrozenSet[int]]:
    """Deterministic contiguous split of ``n_prbs`` by weight.

    Pure function of its inputs (sorted by AP id), so every participant
    computes the same answer — the keystone of one-round convergence.
    Largest-remainder rounding keeps the slice sizes within one PRB of
    the exact weighted share.
    """
    if n_prbs < 0:
        raise ValueError("n_prbs must be non-negative")
    if not weights:
        raise ValueError("need at least one participant")
    if any(w <= 0 for w in weights.values()):
        raise ValueError("weights must be positive")
    total_weight = sum(weights.values())
    order = sorted(weights)
    exact = {ap: n_prbs * weights[ap] / total_weight for ap in order}
    floors = {ap: int(math.floor(exact[ap])) for ap in order}
    leftover = n_prbs - sum(floors.values())
    # hand the leftovers to the largest fractional remainders (ties by id)
    by_remainder = sorted(order, key=lambda ap: (-(exact[ap] - floors[ap]), ap))
    for ap in by_remainder[:leftover]:
        floors[ap] += 1
    partition: Dict[str, FrozenSet[int]] = {}
    start = 0
    for ap in order:
        partition[ap] = frozenset(range(start, start + floors[ap]))
        start += floors[ap]
    return partition
