"""The network report: what a built-and-run architecture measured."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.metrics.stats import summarize


@dataclass
class NetworkReport:
    """Results of one architecture run.

    Attributes:
        architecture: which network produced this.
        n_aps / n_ues: scenario size.
        attach_latencies_s: per-UE attach (or association) durations.
        attach_failures: UEs that never got service.
        throughput_bps: per-UE downlink goodput from the radio phase.
        rtt_s: per-sampled-UE round trip to the OTT server.
        hop_counts: forwarding hops on the one-way path to the server.
        tunnel_overhead_bytes: per-packet encapsulation overhead observed.
        control_bytes: control-plane bytes that crossed backhaul/X2.
        extras: architecture-specific observations.
    """

    architecture: str
    n_aps: int = 0
    n_ues: int = 0
    attach_latencies_s: List[float] = field(default_factory=list)
    attach_failures: int = 0
    throughput_bps: Dict[str, float] = field(default_factory=dict)
    rtt_s: Dict[str, float] = field(default_factory=dict)
    hop_counts: Dict[str, int] = field(default_factory=dict)
    tunnel_overhead_bytes: int = 0
    control_bytes: int = 0
    extras: Dict[str, float] = field(default_factory=dict)

    @property
    def mean_attach_s(self) -> Optional[float]:
        """Average attach latency, or None if nobody attached."""
        if not self.attach_latencies_s:
            return None
        return sum(self.attach_latencies_s) / len(self.attach_latencies_s)

    @property
    def mean_throughput_bps(self) -> float:
        """Average per-UE goodput (0 when no radio phase ran)."""
        if not self.throughput_bps:
            return 0.0
        return sum(self.throughput_bps.values()) / len(self.throughput_bps)

    @property
    def mean_rtt_s(self) -> Optional[float]:
        """Average ping RTT to the OTT server."""
        if not self.rtt_s:
            return None
        return sum(self.rtt_s.values()) / len(self.rtt_s)

    def summary(self) -> str:
        """Human-readable digest."""
        lines = [f"{self.architecture}: {self.n_aps} APs, {self.n_ues} UEs"]
        if self.attach_latencies_s:
            s = summarize(self.attach_latencies_s)
            lines.append(
                f"  attach: mean {s['mean']*1e3:.1f} ms, "
                f"p95 {s['p95']*1e3:.1f} ms, failures {self.attach_failures}")
        if self.throughput_bps:
            lines.append(
                f"  downlink: mean {self.mean_throughput_bps/1e6:.2f} Mbps "
                f"across {len(self.throughput_bps)} UEs")
        if self.rtt_s:
            hops = (f", path {min(self.hop_counts.values())}-"
                    f"{max(self.hop_counts.values())} hops"
                    if self.hop_counts else "")
            lines.append(f"  OTT RTT: mean {self.mean_rtt_s*1e3:.1f} ms{hops}")
        if self.tunnel_overhead_bytes:
            lines.append(f"  tunnel overhead: {self.tunnel_overhead_bytes} "
                         f"bytes/packet")
        if self.control_bytes:
            lines.append(f"  control plane: {self.control_bytes} bytes on "
                         f"backhaul")
        for key, value in sorted(self.extras.items()):
            lines.append(f"  {key}: {value:g}")
        return "\n".join(lines)
