"""Link budget: from transmit power and geometry to SINR.

This glues the pieces together: a :class:`Radio` (power, gains, noise
figure, height), a propagation model, optional shadowing, and a set of
interferers combine into a received power and an SINR. The §3.2 uplink
asymmetry appears here: LTE's SC-FDMA single-carrier uplink runs the PA
~3 dB closer to saturation than OFDM can (PAPR backoff), which we model
as an ``ul_papr_advantage_db`` credit on LTE client radios.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from functools import lru_cache
from typing import Dict, Iterable, Optional, Sequence, Tuple

import numpy as np

from repro.geo.points import Point
from repro.phy.fading import ShadowingField
from repro.phy.propagation import PropagationModel
from repro.phy.units import db_to_linear, linear_to_db, thermal_noise_dbm
from repro.phy.vmath import db_to_linear_exact, hypot_exact, log10_exact


@lru_cache(maxsize=512)
def _thermal_noise_cached(bandwidth_hz: float, noise_figure_db: float) -> float:
    """Noise floors recur per (bandwidth, NF): skip the log10 on repeats."""
    return thermal_noise_dbm(bandwidth_hz, noise_figure_db)


@dataclass
class Radio:
    """One end of a radio link.

    Attributes:
        position: location on the plane.
        tx_power_dbm: conducted transmit power.
        antenna_gain_dbi: scalar antenna gain (applies both ways); ignored
            in the direction computation when ``antenna`` is set.
        noise_figure_db: receiver noise figure.
        height_m: antenna height above ground.
        cable_loss_db: feeder loss between PA and antenna.
        ul_papr_advantage_db: extra usable PA headroom for single-carrier
            uplinks (SC-FDMA); 0 for OFDM clients.
        antenna: optional directional pattern (e.g.
            :class:`repro.phy.antenna.SectorAntenna`); when present, gain
            toward a peer is evaluated from the pattern.
    """

    position: Point
    tx_power_dbm: float = 23.0
    antenna_gain_dbi: float = 0.0
    noise_figure_db: float = 7.0
    height_m: float = 1.5
    cable_loss_db: float = 0.0
    ul_papr_advantage_db: float = 0.0
    antenna: Optional[object] = None

    def gain_toward_dbi(self, other: Point) -> float:
        """Antenna gain toward a peer position."""
        if self.antenna is not None:
            return self.antenna.gain_toward(self.position, other)
        return self.antenna_gain_dbi

    @property
    def peak_gain_dbi(self) -> float:
        """Best-case antenna gain (boresight for directional patterns)."""
        if self.antenna is not None:
            return self.antenna.peak_gain_dbi
        return self.antenna_gain_dbi

    @property
    def eirp_dbm(self) -> float:
        """Effective isotropic radiated power (at boresight)."""
        return (self.tx_power_dbm + self.ul_papr_advantage_db
                + self.peak_gain_dbi - self.cable_loss_db)


def received_power_dbm(tx: Radio, rx: Radio, model: PropagationModel,
                       freq_mhz: float,
                       shadowing: Optional[ShadowingField] = None) -> float:
    """Received signal power at ``rx`` from ``tx``, in dBm.

    Directional patterns apply on both ends: the transmitter's gain
    toward the receiver and vice versa.
    """
    dist = tx.position.distance_to(rx.position)
    loss = model.path_loss_db(dist, freq_mhz)
    if shadowing is not None:
        loss += shadowing.shadowing_db(tx.position, rx.position)
    tx_eirp = (tx.tx_power_dbm + tx.ul_papr_advantage_db
               + tx.gain_toward_dbi(rx.position) - tx.cable_loss_db)
    return tx_eirp - loss + rx.gain_toward_dbi(tx.position) - rx.cable_loss_db


def sinr_db(signal_dbm: float, interferer_dbms: Iterable[float],
            noise_dbm: float) -> float:
    """Combine a signal with interferers and noise into an SINR in dB."""
    denom_mw = db_to_linear(noise_dbm)
    for i_dbm in interferer_dbms:
        denom_mw += db_to_linear(i_dbm)
    return signal_dbm - linear_to_db(denom_mw)


@dataclass
class LinkBudget:
    """A configured point-to-point budget evaluator.

    Bundles the propagation model, frequency, bandwidth, and shadowing so
    callers evaluate links with one call::

        lb = LinkBudget(model, freq_mhz=881.5, bandwidth_hz=10e6)
        snr = lb.snr_db(ap_radio, ue_radio)
    """

    model: PropagationModel
    freq_mhz: float
    bandwidth_hz: float
    shadowing: Optional[ShadowingField] = None
    interferers: Tuple[Radio, ...] = field(default_factory=tuple)
    #: median-loss memo keyed by distance — propagation models are pure,
    #: and stationary links re-evaluate the same distances every TTI
    _loss_cache: Dict[float, float] = field(default_factory=dict, repr=False,
                                            compare=False)

    def path_loss_db(self, distance_m: float) -> float:
        """Median (pre-shadowing) loss at ``distance_m``, memoized."""
        loss = self._loss_cache.get(distance_m)
        if loss is None:
            loss = self.model.path_loss_db(distance_m, self.freq_mhz)
            self._loss_cache[distance_m] = loss
        return loss

    def rx_power_dbm(self, tx: Radio, rx: Radio) -> float:
        """Received power from ``tx`` at ``rx``."""
        dist = tx.position.distance_to(rx.position)
        loss = self.path_loss_db(dist)
        if self.shadowing is not None:
            loss += self.shadowing.shadowing_db(tx.position, rx.position)
        tx_eirp = (tx.tx_power_dbm + tx.ul_papr_advantage_db
                   + tx.gain_toward_dbi(rx.position) - tx.cable_loss_db)
        return (tx_eirp - loss + rx.gain_toward_dbi(tx.position)
                - rx.cable_loss_db)

    def noise_dbm(self, rx: Radio) -> float:
        """Noise floor at ``rx`` over the configured bandwidth."""
        return _thermal_noise_cached(self.bandwidth_hz, rx.noise_figure_db)

    def snr_db(self, tx: Radio, rx: Radio) -> float:
        """Signal-to-noise ratio (no interference term)."""
        return self.rx_power_dbm(tx, rx) - self.noise_dbm(rx)

    def snr_db_grid(self, tx: Radio, rx_template: Radio,
                    distances_m: Sequence[float]) -> np.ndarray:
        """Vectorized SNR over a boresight distance grid.

        The receiver described by ``rx_template`` is swept along +x from
        the transmitter; when both ends are omnidirectional and there is
        no shadowing, the whole grid collapses to one vectorized
        path-loss evaluation (E3's sweep and bisections). Directional or
        shadowed geometries fall back to the exact scalar path per point.
        """
        if (tx.antenna is None and rx_template.antenna is None
                and self.shadowing is None):
            losses = self.model.path_loss_db_many(distances_m, self.freq_mhz)
            tx_eirp = (tx.tx_power_dbm + tx.ul_papr_advantage_db
                       + tx.antenna_gain_dbi - tx.cable_loss_db)
            fixed = (tx_eirp + rx_template.antenna_gain_dbi
                     - rx_template.cable_loss_db
                     - self.noise_dbm(rx_template))
            return fixed - losses
        out = []
        for d in distances_m:
            rx = replace(rx_template,
                         position=Point(tx.position.x + float(d),
                                        tx.position.y))
            out.append(self.snr_db(tx, rx))
        return np.array(out)

    def sinr_db(self, tx: Radio, rx: Radio,
                interferers: Optional[Iterable[Radio]] = None) -> float:
        """SINR including the configured (or overridden) interferer set."""
        sources = self.interferers if interferers is None else tuple(interferers)
        interference = [self.rx_power_dbm(i, rx) for i in sources if i is not tx]
        return sinr_db(self.rx_power_dbm(tx, rx), interference,
                       self.noise_dbm(rx))

    # -- batch-engine fast paths -------------------------------------------------
    #
    # The methods below evaluate one fixed endpoint against arrays of
    # peers in a single pass, *bit-identically* to calling the scalar
    # methods per link: distances via the libm hypot map, loss via the
    # model's ``path_loss_db_exact_many``, and dB<->linear conversions
    # via the libm element maps (see ``repro.phy.vmath``). They require
    # omnidirectional ends and no shadowing — exactly the geometries
    # where the scalar path has no per-link state — and the UE arena
    # falls back to the scalar calls per row otherwise.

    def _require_plain(self, *radios: Radio) -> None:
        if self.shadowing is not None:
            raise ValueError("vectorized link evaluation requires no shadowing")
        for radio in radios:
            if radio.antenna is not None:
                raise ValueError(
                    "vectorized link evaluation requires omni antennas")

    def rx_power_dbm_fixed_tx_many(self, tx: Radio,
                                   rx_x: np.ndarray, rx_y: np.ndarray,
                                   rx_gain_dbi: np.ndarray,
                                   rx_cable_db: np.ndarray) -> np.ndarray:
        """Received power from one transmitter at many receivers (the
        downlink/interference direction of the UE arena)."""
        self._require_plain(tx)
        dist = hypot_exact(tx.position.x - rx_x, tx.position.y - rx_y)
        loss = self.model.path_loss_db_exact_many(dist, self.freq_mhz)
        tx_eirp = (tx.tx_power_dbm + tx.ul_papr_advantage_db
                   + tx.antenna_gain_dbi - tx.cable_loss_db)
        return tx_eirp - loss + rx_gain_dbi - rx_cable_db

    def sinr_db_fixed_tx_many(self, tx: Radio,
                              rx_x: np.ndarray, rx_y: np.ndarray,
                              rx_gain_dbi: np.ndarray,
                              rx_cable_db: np.ndarray,
                              noise_dbm_arr: np.ndarray,
                              interferers: Sequence[Radio]) -> np.ndarray:
        """Downlink SINR at many receivers with vectorized interference
        summation.

        The interference accumulation follows the scalar path's order —
        noise first, then each interferer in sequence — so the float
        result matches :meth:`sinr_db` per receiver bit for bit.
        """
        signal = self.rx_power_dbm_fixed_tx_many(tx, rx_x, rx_y,
                                                 rx_gain_dbi, rx_cable_db)
        denom_mw = db_to_linear_exact(noise_dbm_arr)
        for interferer in interferers:
            if interferer is tx:
                continue
            i_dbm = self.rx_power_dbm_fixed_tx_many(
                interferer, rx_x, rx_y, rx_gain_dbi, rx_cable_db)
            denom_mw = denom_mw + db_to_linear_exact(i_dbm)
        return signal - (10.0 * log10_exact(denom_mw))

    def rx_power_dbm_many_tx_fixed_rx(self, tx_x: np.ndarray,
                                      tx_y: np.ndarray,
                                      tx_power_dbm: np.ndarray,
                                      tx_papr_db: np.ndarray,
                                      tx_gain_dbi: np.ndarray,
                                      tx_cable_db: np.ndarray,
                                      rx: Radio) -> np.ndarray:
        """Received power at one receiver from many transmitters (the
        uplink direction of the UE arena)."""
        self._require_plain(rx)
        dist = hypot_exact(tx_x - rx.position.x, tx_y - rx.position.y)
        loss = self.model.path_loss_db_exact_many(dist, self.freq_mhz)
        tx_eirp = tx_power_dbm + tx_papr_db + tx_gain_dbi - tx_cable_db
        return (tx_eirp - loss + rx.antenna_gain_dbi - rx.cable_loss_db)

    def sinr_db_many_tx_fixed_rx(self, tx_x: np.ndarray, tx_y: np.ndarray,
                                 tx_power_dbm: np.ndarray,
                                 tx_papr_db: np.ndarray,
                                 tx_gain_dbi: np.ndarray,
                                 tx_cable_db: np.ndarray,
                                 rx: Radio) -> np.ndarray:
        """Uplink SINR at one receiver from many transmitters.

        Only valid when the budget carries no configured interferers
        (the arena falls back to scalar rows otherwise, where the
        per-transmitter ``i is not tx`` exclusion applies).
        """
        if self.interferers:
            raise ValueError("vectorized uplink requires an interferer-free "
                             "budget (per-tx exclusions differ by row)")
        signal = self.rx_power_dbm_many_tx_fixed_rx(
            tx_x, tx_y, tx_power_dbm, tx_papr_db, tx_gain_dbi, tx_cable_db, rx)
        # replicate the scalar dB -> mW -> dB round trip on the noise floor
        return signal - linear_to_db(db_to_linear(self.noise_dbm(rx)))
