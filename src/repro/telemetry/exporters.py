"""Telemetry exporters: JSONL event streams, CSV/text snapshots, tables.

Three consumers, three formats:

* **JSONL** — one JSON object per line, for diffing runs and feeding
  external tooling. Trace events carry ``"type": "trace"``, finished
  spans ``"type": "span"``; both carry the source tag (``sim``) so
  multi-simulator experiments (E16 runs two arms) stay distinguishable.
* **CSV / metrics text** — flat snapshots of every instrument, one row
  (or Prometheus-style line) per (name, labels). CSV for spreadsheets,
  text for eyeballs and scrapers.
* **terminal summary** — a :class:`ResultTable` digest per subsystem,
  printed by the CLI after an instrumented run.
"""

from __future__ import annotations

import csv
import json
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.metrics.tables import ResultTable

__all__ = ["tagged_rows", "write_metrics_csv", "write_metrics_text",
           "write_events_jsonl", "write_folded", "summary_table",
           "METRICS_CSV_COLUMNS"]

#: Column order of the metrics CSV snapshot.
METRICS_CSV_COLUMNS = ["sim", "kind", "name", "labels", "value", "count",
                       "sum", "min", "max", "mean", "p50", "p95", "p99"]


def _render_labels(labels: Dict[str, str]) -> str:
    return ";".join(f"{k}={v}" for k, v in sorted(labels.items()))


def tagged_rows(registries: Sequence[Tuple[str, Any]]) -> List[Dict[str, Any]]:
    """Flatten (tag, MetricsRegistry) pairs into snapshot rows.

    Each row gains a ``sim`` key carrying the tag, so instruments with
    identical names from different simulators stay separate.
    """
    rows: List[Dict[str, Any]] = []
    for tag, registry in registries:
        for row in registry.snapshot():
            row = dict(row)
            row["sim"] = tag
            rows.append(row)
    return rows


def write_metrics_csv(rows: Iterable[Dict[str, Any]], path: str) -> int:
    """Write snapshot rows as CSV; returns the row count."""
    count = 0
    with open(path, "w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=METRICS_CSV_COLUMNS,
                                extrasaction="ignore")
        writer.writeheader()
        for row in rows:
            out = dict(row)
            out["labels"] = _render_labels(row.get("labels", {}))
            writer.writerow(out)
            count += 1
    return count


def _escape_label_value(value: Any) -> str:
    """Escape a label value per the Prometheus text exposition format:
    backslash, double-quote, and newline must be backslash-escaped."""
    return (str(value).replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def write_metrics_text(rows: Iterable[Dict[str, Any]], path: str) -> int:
    """Write a Prometheus-style text snapshot; returns the line count.

    Counters/gauges become ``name{labels} value``; histograms expand to
    ``_count``/``_sum`` plus ``{quantile="..."}`` series. Label values
    are escaped per the text exposition format, so values carrying
    quotes, backslashes, or newlines stay parseable.
    """
    lines: List[str] = []
    for row in rows:
        labels = dict(row.get("labels", {}))
        if row.get("sim"):
            labels["sim"] = row["sim"]
        inner = ",".join(f'{k}="{_escape_label_value(v)}"'
                         for k, v in sorted(labels.items()))
        base = row["name"].replace(".", "_")
        if row["kind"] == "histogram":
            lines.append(f"{base}_count{{{inner}}} {row['count']}")
            lines.append(f"{base}_sum{{{inner}}} {row['sum']:g}")
            for q in ("p50", "p95", "p99"):
                q_inner = inner + ("," if inner else "") + \
                    f'quantile="0.{q[1:]}"'
                lines.append(f"{base}{{{q_inner}}} {row[q]:g}")
        else:
            lines.append(f"{base}{{{inner}}} {row['value']:g}")
    with open(path, "w") as fh:
        fh.write("\n".join(lines) + ("\n" if lines else ""))
    return len(lines)


def write_events_jsonl(path: str,
                       tracers: Sequence[Tuple[str, Any]] = (),
                       span_trackers: Sequence[Tuple[str, Any]] = (),
                       lifecycle: Any = None) -> int:
    """Write trace events and finished spans as JSONL; returns line count.

    ``tracers``/``span_trackers`` are (tag, Tracer) / (tag, SpanTracker)
    pairs; lines are grouped by source and time-ordered within each.
    ``lifecycle`` (a :class:`~repro.telemetry.lifecycle.RunnerLifecycle`)
    appends the run's runner-lifecycle records (``"type": "runner"``) —
    the wall-clock parallel-path timings, present only for ``--jobs``
    runs, so byte-identity tooling filters on the type.
    """
    count = 0
    with open(path, "w") as fh:
        for tag, tracer in tracers:
            for event in tracer.events():
                record = {"type": "trace", "sim": tag,
                          "time_s": event.time_s,
                          "category": event.category,
                          "message": event.message,
                          "fields": event.fields}
                fh.write(json.dumps(record, default=str) + "\n")
                count += 1
        for tag, tracker in span_trackers:
            for span in tracker.finished:
                record = span.to_dict()
                record["sim"] = tag
                fh.write(json.dumps(record, default=str) + "\n")
                count += 1
        if lifecycle is not None:
            for record in lifecycle.records():
                fh.write(json.dumps(record, default=str) + "\n")
                count += 1
    return count


def _folded_frames(site: str) -> str:
    """``module.qualname`` -> semicolon-joined frames for folded stacks."""
    return site.replace(";", "_").replace(".", ";")


def write_folded(path: str, profiler: Any = None,
                 span_trackers: Sequence[Tuple[str, Any]] = ()) -> int:
    """Write collapsed-stack ("folded") lines; returns the line count.

    The format every flamegraph consumer reads (flamegraph.pl,
    speedscope): ``frame;frame;leaf <count>``, one stack per line.
    Two stack families are emitted:

    * ``wall;<module frames>;<qualname>`` — the profiler's per-callback-
      site wall time, in integer microseconds (real time);
    * ``sim:<tag>;<span name chain>`` — each simulator's finished span
      tree (causal parent chain), in integer microseconds of *simulated*
      time, self-time per node (children subtracted, clamped at zero).
    """
    lines: List[str] = []
    if profiler is not None:
        for stats in profiler.top_sites(len(profiler.sites)):
            us = int(round(stats.wall_s * 1e6))
            if us > 0:
                lines.append(f"wall;{_folded_frames(stats.site)} {us}")
    for tag, tracker in span_trackers:
        finished = list(tracker.finished)
        by_id = {span.span_id: span for span in finished}
        child_time: Dict[int, float] = {}
        for span in finished:
            if span.parent_id is not None and span.parent_id in by_id:
                child_time[span.parent_id] = \
                    child_time.get(span.parent_id, 0.0) + \
                    (span.duration_s or 0.0)
        stacks: Dict[str, int] = {}
        for span in finished:
            names = [span.name]
            seen = {span.span_id}
            parent = by_id.get(span.parent_id)
            while parent is not None and parent.span_id not in seen:
                names.append(parent.name)
                seen.add(parent.span_id)
                parent = by_id.get(parent.parent_id)
            names.reverse()
            self_s = max(0.0, (span.duration_s or 0.0)
                         - child_time.get(span.span_id, 0.0))
            us = int(round(self_s * 1e6))
            if us > 0:
                stack = f"sim:{tag};" + ";".join(
                    name.replace(";", "_") for name in names)
                stacks[stack] = stacks.get(stack, 0) + us
        lines.extend(f"{stack} {us}" for stack, us in sorted(stacks.items()))
    with open(path, "w") as fh:
        fh.write("\n".join(lines) + ("\n" if lines else ""))
    return len(lines)


def summary_table(rows: Sequence[Dict[str, Any]],
                  title: str = "Telemetry summary") -> ResultTable:
    """Digest snapshot rows into a per-subsystem terminal table."""
    per: Dict[str, Dict[str, float]] = {}
    for row in rows:
        subsystem = row["name"].split(".", 1)[0]
        agg = per.setdefault(subsystem, {"instruments": 0, "counter_total": 0.0,
                                         "samples": 0})
        agg["instruments"] += 1
        if row["kind"] == "counter":
            agg["counter_total"] += row["value"]
        elif row["kind"] == "histogram":
            agg["samples"] += row["count"]
    table = ResultTable(title, ["subsystem", "instruments", "counter_total",
                                "histogram_samples"])
    for subsystem in sorted(per):
        agg = per[subsystem]
        table.add_row(subsystem=subsystem,
                      instruments=int(agg["instruments"]),
                      counter_total=agg["counter_total"],
                      histogram_samples=int(agg["samples"]))
    return table
