"""Integration: a client roams across a dLTE federation end to end.

Exercises the full §4.2/§4.3 mobility story inside one simulation:
movement model -> A3 measurements -> X2 handover with security-context
transfer -> re-attach at the target stub (no registry fetch) -> new
address from the target's pool.
"""

import pytest

from repro.core import DLTENetwork
from repro.epc.ue import UeState
from repro.mobility import A3HandoverTrigger, LinearMover
from repro.geo import Point
from repro.phy import Radio
from repro.workloads import RuralTown


@pytest.fixture
def roaming_setup():
    town = RuralTown(radius_m=2500, n_ues=2, n_aps=2, seed=5)
    net = DLTENetwork.build(town, seed=5)
    net.run(duration_s=3.0)  # brings up registry, peering, attaches
    return net


def _ue_entry(net, index=0):
    ue_id = sorted(net.ues)[index]
    return net.ues[ue_id], net.ue_hosts[ue_id], net.ue_radios[ue_id]


def _serving_ap(net, ue):
    for ap in net.aps.values():
        if ue.ue_id in ap.stub.sessions:
            return ap
    return None


def test_everyone_starts_attached(roaming_setup):
    net = roaming_setup
    for ue in net.ues.values():
        assert ue.state is UeState.ATTACHED
        assert _serving_ap(net, ue) is not None


def test_x2_handover_transfers_context(roaming_setup):
    net = roaming_setup
    ue, host, radio = _ue_entry(net)
    source = _serving_ap(net, ue)
    target = next(ap for ap in net.aps.values() if ap is not source)
    old_address = host.address

    decisions = []
    source.request_handover(ue, target.ap_id, decisions.append)
    net.sim.run(until=net.sim.now + 1.0)
    assert decisions == [True]
    assert target.handovers_in == 1
    assert source.handovers_out == 1
    # the context arrived: the target stub holds the key already
    assert ue.profile.imsi in target.stub._key_cache

    # execute the move: detach from source, attach at target
    ue.detach()
    net.sim.run(until=net.sim.now + 1.0)
    source.disconnect_ue(ue)
    fetches_before = target.stub.registry_fetches
    target.connect_ue(ue, host, radio)
    ue.start_attach()
    net.sim.run(until=net.sim.now + 3.0)

    assert ue.state is UeState.ATTACHED
    # no registry fetch: the X2 context made it a cache hit
    assert target.stub.registry_fetches == fetches_before
    assert target.stub.cache_hits >= 1
    # renumbered into the target's pool (dLTE does NOT preserve IPs)
    assert host.address != old_address
    assert target.pool.contains(host.address)
    assert not source.pool.contains(host.address)


def test_handover_to_unpeered_ap_raises(roaming_setup):
    net = roaming_setup
    ue, _host, _radio = _ue_entry(net)
    source = _serving_ap(net, ue)
    with pytest.raises(KeyError):
        source.request_handover(ue, "nonexistent-ap")


def test_a3_trigger_drives_handover_decision(roaming_setup):
    """The measurement chain: move the radio, watch A3 pick the target."""
    net = roaming_setup
    ue, host, radio = _ue_entry(net)
    source = _serving_ap(net, ue)
    target = next(ap for ap in net.aps.values() if ap is not source)

    cells = [ap.cell for ap in net.aps.values()]
    trigger = A3HandoverTrigger(cells, source.cell.name,
                                hysteresis_db=3.0, time_to_trigger_s=0.4)
    # drive the UE from the source site toward (and past) the target site
    start = source.position
    beyond = target.position.offset(
        *(0.3 * (target.position.x - source.position.x),
          0.3 * (target.position.y - source.position.y)))
    probe = Radio(start, tx_power_dbm=23)
    fired = []
    step = start
    for k in range(60):
        step = step.toward(beyond, 150.0)
        probe = Radio(step, tx_power_dbm=23)
        decision = trigger.measure(k * 0.5, probe)
        if decision:
            fired.append((k * 0.5, decision))
    assert fired, "A3 never triggered along the path"
    assert fired[0][1] == target.cell.name
    assert trigger.handovers >= 1


def test_second_roamer_reuses_transferred_context(roaming_setup):
    """Context transfer is per-IMSI: each client carries its own."""
    net = roaming_setup
    ue0, host0, radio0 = _ue_entry(net, 0)
    ue1, host1, radio1 = _ue_entry(net, 1)
    source0 = _serving_ap(net, ue0)
    target0 = next(ap for ap in net.aps.values() if ap is not source0)
    source0.request_handover(ue0, target0.ap_id)
    net.sim.run(until=net.sim.now + 1.0)
    assert ue0.profile.imsi in target0.stub._key_cache
    # the other client's key was not shipped along
    source1 = _serving_ap(net, ue1)
    other = next(ap for ap in net.aps.values() if ap is not source1)
    if other is target0 and source1 is source0:
        assert ue1.profile.imsi not in target0.stub._key_cache
