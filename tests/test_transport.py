"""Unit/integration tests for the transport layer (TCP vs QUIC models)."""

import ipaddress

import pytest

from repro.net import Host, InternetCore, Router
from repro.simcore import Simulator
from repro.transport import (
    BulkTransferApp,
    ConnectionState,
    QuicConnection,
    QuicListener,
    TcpConnection,
    TcpListener,
    TransportDemux,
)
from repro.transport.base import INITIAL_CWND

IP = ipaddress.IPv4Address


class Net:
    """A client behind AP-A, a second AP-B, and an OTT server."""

    def __init__(self, seed=1, access_delay_s=0.02):
        self.sim = Simulator(seed)
        sim = self.sim
        self.inet = InternetCore(sim)
        self.ap_a = Router(sim, "ap_a")
        self.ap_b = Router(sim, "ap_b")
        self.server_edge = Router(sim, "server_edge")
        self.inet.attach(self.ap_a, "10.1.0.0/16", access_delay_s=access_delay_s)
        self.inet.attach(self.ap_b, "10.2.0.0/16", access_delay_s=access_delay_s)
        self.inet.attach(self.server_edge, "203.0.113.0/24", access_delay_s=0.005)

        self.client = Host(sim, "client", IP("10.1.0.5"))
        self.client.connect_bidirectional(self.ap_a, rate_bps=20e6, delay_s=0.005)
        self.ap_a.add_route("10.1.0.5/32", "client")

        self.server = Host(sim, "server", IP("203.0.113.10"))
        self.server.connect_bidirectional(self.server_edge, rate_bps=1e9,
                                          delay_s=0.001)
        self.server_edge.add_route("203.0.113.10/32", "server")

        self.cd = TransportDemux(self.client)
        self.sd = TransportDemux(self.server)

    def move_client_to_b(self):
        """Re-home the client: new address from AP-B's pool, new links."""
        new_addr = IP("10.2.0.7")
        # detach from A (old address routes now blackhole at ap_a, and
        # the radio link is gone in both directions)
        self.ap_a.remove_routes_to("client")
        self.client.links.pop("ap_a", None)
        self.ap_a.links.pop("client", None)
        # attach to B
        self.client.connect_bidirectional(self.ap_b, rate_bps=20e6, delay_s=0.005)
        self.ap_b.add_route("10.2.0.7/32", "client")
        self.client.addresses = [new_addr]
        self.client.default_gateway = "ap_b"
        return new_addr


def _bulk(net, cls, listener_cls, nbytes=100_000, **kw):
    listener_cls(net.sim, net.sd)
    app = BulkTransferApp(net.sim, net.cd, net.server.address, cls,
                          total_bytes=nbytes, **kw)
    app.start()
    return app


# -- basic delivery -------------------------------------------------------------

def test_tcp_completes_transfer():
    net = Net()
    app = _bulk(net, TcpConnection, TcpListener)
    net.sim.run(until=30)
    assert app.done_at is not None
    assert app._acked_total() == 100_000


def test_quic_completes_transfer():
    net = Net()
    app = _bulk(net, QuicConnection, QuicListener)
    net.sim.run(until=30)
    assert app.done_at is not None


def test_quic_fresh_setup_faster_than_tcp_tls():
    """1-RTT QUIC vs 2-RTT TCP+TLS on the same network."""
    tcp_net, quic_net = Net(), Net()
    tcp_app = _bulk(tcp_net, TcpConnection, TcpListener, nbytes=1200)
    quic_app = _bulk(quic_net, QuicConnection, QuicListener, nbytes=1200)
    tcp_net.sim.run(until=10)
    quic_net.sim.run(until=10)
    rtt = 2 * (0.02 + 0.005 + 0.005)  # ~60 ms client<->server
    assert tcp_app.done_at - quic_app.done_at == pytest.approx(rtt, rel=0.5)


def test_tcp_without_tls_saves_one_rtt():
    with_tls, without = Net(), Net()
    a = _bulk(with_tls, TcpConnection, TcpListener, nbytes=1200)
    b = _bulk(without, TcpConnection, lambda s, d: TcpListener(s, d, tls=False),
              nbytes=1200, tls=False)
    with_tls.sim.run(until=10)
    without.sim.run(until=10)
    assert b.done_at < a.done_at


def test_quic_0rtt_resumption():
    """Second QUIC connection to the same server starts with data in flight."""
    net = Net()
    QuicListener(net.sim, net.sd)
    first = BulkTransferApp(net.sim, net.cd, net.server.address,
                            QuicConnection, total_bytes=1200)
    first.start()
    net.sim.run(until=5)
    assert first.done_at is not None
    assert not first.conn.used_0rtt

    second = BulkTransferApp(net.sim, net.cd, net.server.address,
                             QuicConnection, total_bytes=1200)
    second.start()
    t0 = net.sim.now
    net.sim.run(until=10)
    assert second.conn.used_0rtt
    # one-way request + acks: completion ~1 RTT total, vs ~2 RTT fresh
    assert (second.done_at - t0) < (first.done_at * 0.75)


def test_cwnd_grows_during_transfer():
    net = Net()
    app = _bulk(net, TcpConnection, TcpListener, nbytes=500_000)
    net.sim.run(until=30)
    assert app.conn.cwnd > INITIAL_CWND


def test_send_on_closed_connection_rejected():
    net = Net()
    conn = TcpConnection(sim=net.sim, demux=net.cd, peer_addr=net.server.address)
    conn.close()
    with pytest.raises(RuntimeError):
        conn.send_app_data(100)


def test_send_zero_bytes_rejected():
    net = Net()
    conn = TcpConnection(sim=net.sim, demux=net.cd, peer_addr=net.server.address)
    with pytest.raises(ValueError):
        conn.send_app_data(0)


def test_bulk_app_validates_total():
    net = Net()
    with pytest.raises(ValueError):
        BulkTransferApp(net.sim, net.cd, net.server.address, TcpConnection,
                        total_bytes=0)


# -- loss recovery -----------------------------------------------------------------

def test_recovery_from_queue_drops():
    """A tight bottleneck forces drops; the transfer still completes."""
    net = Net()
    # throttle the client uplink hard
    net.client.links["ap_a"].rate_bps = 2e6
    net.client.links["ap_a"].queue_packets = 5
    app = _bulk(net, TcpConnection, TcpListener, nbytes=300_000)
    net.sim.run(until=60)
    assert app.done_at is not None
    assert app.conn.retransmissions > 0


# -- migration: the E6 contrast ------------------------------------------------------

def _run_until_partial(net, app, fraction=0.3, deadline=30.0):
    """Advance sim until the transfer is partially complete."""
    target = app.total_bytes * fraction
    while net.sim.now < deadline and app._acked_total() < target:
        net.sim.run(until=net.sim.now + 0.05)


def test_tcp_breaks_on_address_change():
    net = Net()
    app = _bulk(net, TcpConnection, TcpListener, nbytes=2_000_000)
    _run_until_partial(net, app, 0.2)
    first_conn = app.conn
    new_addr = net.move_client_to_b()
    app.on_address_change(new_addr)
    net.sim.run(until=net.sim.now + 10)
    assert first_conn.state in (ConnectionState.BROKEN, ConnectionState.CLOSED)
    assert app.reconnects >= 1
    net.sim.run(until=120)
    assert app.done_at is not None  # resumed on a fresh connection


def test_quic_survives_address_change():
    net = Net()
    app = _bulk(net, QuicConnection, QuicListener, nbytes=2_000_000)
    _run_until_partial(net, app, 0.2)
    first_conn = app.conn
    new_addr = net.move_client_to_b()
    app.on_address_change(new_addr)
    net.sim.run(until=120)
    assert app.done_at is not None
    assert app.conn is first_conn           # same connection throughout
    assert app.reconnects == 0
    assert first_conn.migrations == 1


def test_quic_interruption_much_shorter_than_tcp():
    """The §4.2 claim, end to end: endpoint mobility is cheap with QUIC."""
    stalls = {}
    for name, cls, listener in (("tcp", TcpConnection, TcpListener),
                                ("quic", QuicConnection, QuicListener)):
        net = Net()
        app = _bulk(net, cls, listener, nbytes=2_000_000)
        _run_until_partial(net, app, 0.2)
        new_addr = net.move_client_to_b()
        app.on_address_change(new_addr)
        net.sim.run(until=120)
        assert app.done_at is not None
        stalls[name] = app.longest_stall_s
    assert stalls["quic"] < stalls["tcp"] / 2


def test_quic_keeps_congestion_state_across_migration():
    """Adjacent-path heuristic: migration does not reset the window."""
    net = Net()
    app = _bulk(net, QuicConnection, QuicListener, nbytes=2_000_000)
    _run_until_partial(net, app, 0.2)
    cwnd_before = app.conn.cwnd
    assert cwnd_before > 10  # grown past the initial window
    new_addr = net.move_client_to_b()
    app.on_address_change(new_addr)
    assert app.conn.cwnd == cwnd_before


def test_quic_strict_rfc_mode_resets_window():
    net = Net()
    app = _bulk(net, QuicConnection, QuicListener, nbytes=2_000_000)
    _run_until_partial(net, app, 0.2)
    app.conn.reset_cwnd_on_migration = True
    assert app.conn.cwnd > 10
    new_addr = net.move_client_to_b()
    app.on_address_change(new_addr)
    assert app.conn.cwnd == 10.0


def test_quic_migration_judgment_detects_blackout_loss():
    """After a break-before-make handover with a radio blackout, the
    deferred migration judgment finds the lost downlink window and
    burst-recovers it instead of paying one RTO per hole."""
    from repro.experiments.e6_mobility import CorridorHarness, SERVER_ADDR

    harness = CorridorHarness(n_aps=2, seed=3)
    sim = harness.sim
    harness.attach_dlte(0)
    QuicListener(sim, harness.server_demux)
    app = BulkTransferApp(sim, harness.client_demux, SERVER_ADDR,
                          QuicConnection, total_bytes=3_000_000)
    app.start()
    sim.run(until=2.0)
    assert 0 < app._acked_total() < 3_000_000
    # handover with a 100 ms radio gap: the in-flight window dies at the
    # detached AP router
    harness._detach()
    sim.run(until=sim.now + 0.1)
    retx_before = app.conn.retransmissions
    new_addr = harness.attach_dlte(1)
    app.on_address_change(new_addr)
    sim.run(until=sim.now + 2.0)
    # the whole lost window was repaired, not one segment per RTO
    assert app.conn.retransmissions - retx_before > 5
    sim.run(until=60)
    assert app.done_at is not None


def test_quic_server_adopts_new_client_address():
    net = Net()
    app = _bulk(net, QuicConnection, QuicListener, nbytes=1_000_000)
    _run_until_partial(net, app, 0.2)
    new_addr = net.move_client_to_b()
    app.on_address_change(new_addr)
    net.sim.run(until=60)
    server_conn = next(iter(net.sd.listener.accepted.values()))
    assert server_conn.peer_addr == new_addr
