"""Unit tests for the carrier user-plane data path (repro.core.datapath)."""

import ipaddress

import pytest

from repro.core.datapath import EnbDataPlane, EpcDataPlane
from repro.net import Host, InternetCore, Packet, Router
from repro.net.tunnel import GTP_HEADER_BYTES
from repro.simcore import Simulator

IP = ipaddress.IPv4Address


class CarrierPath:
    """Minimal carrier user plane: UE -- eNB -- (internet) -- EPC -- server."""

    def __init__(self, seed=0):
        self.sim = Simulator(seed)
        sim = self.sim
        self.internet = InternetCore(sim)
        # EPC site
        epc_router = Router(sim, "epc-gw")
        self.internet.attach(epc_router, "10.200.0.0/16",
                             access_delay_s=0.030)
        self.internet.add_route("172.16.0.0/24", "epc-gw")
        self.epc_data = EpcDataPlane(sim, "epc-data", IP("172.16.0.1"),
                                     internet_via="epc-gw")
        self.epc_data.connect_bidirectional(epc_router)
        epc_router.add_route("172.16.0.1/32", "epc-data")
        epc_router.add_route("10.200.0.0/16", "epc-data")
        epc_router.default_route = "internet"
        # cell site
        site_router = Router(sim, "site-gw")
        self.internet.attach(site_router, "172.17.0.0/24",
                             access_delay_s=0.020)
        self.enb_data = EnbDataPlane(sim, "enb-data", IP("172.17.0.1"),
                                     epc_address=IP("172.16.0.1"),
                                     uplink_via="site-gw")
        self.enb_data.connect_bidirectional(site_router)
        site_router.add_route("172.17.0.1/32", "enb-data")
        site_router.default_route = "internet"
        self.enb_data.open_bearer()
        # server
        server_edge = Router(sim, "server-edge")
        self.internet.attach(server_edge, "203.0.113.0/24",
                             access_delay_s=0.005)
        self.server = Host(sim, "server", IP("203.0.113.10"))
        self.server.connect_bidirectional(server_edge)
        server_edge.add_route("203.0.113.10/32", "server")
        # UE
        self.ue_host = Host(sim, "ue-host", IP("10.200.0.5"))
        self.ue_host.connect_bidirectional(self.enb_data)
        self.ue_host.default_gateway = "enb-data"
        self.enb_data.register_ue(IP("10.200.0.5"), self.ue_host)
        self.epc_data.register_ue(IP("10.200.0.5"), IP("172.17.0.1"))


def test_uplink_traverses_epc_and_sheds_gtp():
    path = CarrierPath()
    got = []
    path.server.on_packet = lambda p: got.append(p)
    path.ue_host.send(Packet(src=IP("10.200.0.5"), dst=IP("203.0.113.10"),
                             size_bytes=500))
    path.sim.run()
    assert len(got) == 1
    packet = got[0]
    assert packet.size_bytes == 500           # GTP removed at the EPC
    assert packet.tunnel_depth == 0
    assert "epc-data" in packet.hops          # the detour happened
    assert path.epc_data.uplink_packets == 1


def test_downlink_wrapped_and_delivered():
    path = CarrierPath()
    got = []
    path.ue_host.on_packet = lambda p: got.append(p)
    path.server.send(Packet(src=IP("203.0.113.10"), dst=IP("10.200.0.5"),
                            size_bytes=800))
    path.sim.run()
    assert len(got) == 1
    packet = got[0]
    assert packet.size_bytes == 800           # decapsulated at the eNB
    assert packet.tunnel_depth == 0
    assert "enb-data" in packet.hops
    assert path.epc_data.downlink_packets == 1


def test_downlink_for_unknown_ue_dropped():
    path = CarrierPath()
    path.epc_data.deregister_ue(IP("10.200.0.5"))
    got = []
    path.ue_host.on_packet = lambda p: got.append(p)
    path.server.send(Packet(src=IP("203.0.113.10"), dst=IP("10.200.0.5"),
                            size_bytes=100))
    path.sim.run()
    assert got == []


def test_uplink_before_bearer_dropped():
    sim = Simulator(0)
    enb = EnbDataPlane(sim, "enb", IP("172.17.0.1"),
                       epc_address=IP("172.16.0.1"), uplink_via="nowhere")
    # no open_bearer() call
    enb.receive(Packet(src=IP("10.200.0.5"), dst=IP("8.8.8.8"),
                       size_bytes=100))
    sim.run()  # no crash, packet dropped


def test_open_bearer_idempotent():
    path = CarrierPath()
    teid1 = path.enb_data.open_bearer()
    teid2 = path.enb_data.open_bearer()
    assert teid1 == teid2


def test_handover_repoints_downlink():
    """Re-registering the UE at a new eNB address moves the tunnel."""
    path = CarrierPath()
    sim = path.sim
    # second site
    site2 = Router(sim, "site2-gw")
    path.internet.attach(site2, "172.18.0.0/24", access_delay_s=0.020)
    enb2 = EnbDataPlane(sim, "enb2-data", IP("172.18.0.1"),
                        epc_address=IP("172.16.0.1"), uplink_via="site2-gw")
    enb2.connect_bidirectional(site2)
    site2.add_route("172.18.0.1/32", "enb2-data")
    site2.default_route = "internet"
    enb2.open_bearer()
    # move the UE host
    path.enb_data.deregister_ue(IP("10.200.0.5"))
    path.ue_host.links.clear()
    path.ue_host.connect_bidirectional(enb2)
    path.ue_host.default_gateway = "enb2-data"
    enb2.register_ue(IP("10.200.0.5"), path.ue_host)
    path.epc_data.register_ue(IP("10.200.0.5"), IP("172.18.0.1"))

    got = []
    path.ue_host.on_packet = lambda p: got.append(p)
    path.server.send(Packet(src=IP("203.0.113.10"), dst=IP("10.200.0.5"),
                            size_bytes=200))
    sim.run()
    assert len(got) == 1
    assert "enb2-data" in got[0].hops
    assert "enb-data" not in got[0].hops


def test_gtp_overhead_on_the_wire():
    """Between eNB and EPC the packet carries the 36-byte GTP header."""
    path = CarrierPath()
    seen_sizes = []
    original = path.epc_data.handle

    def spy(packet):
        seen_sizes.append(packet.size_bytes)
        original(packet)

    path.epc_data.handle = spy
    path.ue_host.send(Packet(src=IP("10.200.0.5"), dst=IP("203.0.113.10"),
                             size_bytes=500))
    path.sim.run()
    assert seen_sizes == [500 + GTP_HEADER_BYTES]
